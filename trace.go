package doublechecker

import (
	"context"
	"fmt"
	"io"

	"doublechecker/internal/core"
	"doublechecker/internal/lang"
	"doublechecker/internal/supervise"
	"doublechecker/internal/trace"
	"doublechecker/internal/vm"
)

// Trace decode errors, re-exported so callers can classify a bad trace file
// with errors.Is without importing internal packages.
var (
	// ErrTraceCorrupt reports a trace whose framing, checksums, or content
	// checks failed.
	ErrTraceCorrupt = trace.ErrCorrupt
	// ErrTraceTruncated reports a trace that ends before its end marker.
	ErrTraceTruncated = trace.ErrTruncated
	// ErrTraceVersion reports a trace written by an incompatible format
	// version.
	ErrTraceVersion = trace.ErrVersion
	// ErrNotATrace reports input that is not a trace file at all.
	ErrNotATrace = trace.ErrBadMagic
)

// traceMode maps a recording/replay-compatible Mode onto its analysis.
// ModeMultiRun is excluded: it is defined over several executions, while a
// trace captures exactly one.
func traceMode(mode Mode) (core.Analysis, error) {
	switch mode {
	case ModeSingleRun:
		return core.DCSingle, nil
	case ModeVelodrome:
		return core.Velodrome, nil
	case ModeMultiRun:
		return 0, fmt.Errorf("doublechecker: mode %q spans multiple executions; a trace captures one (use %q or %q)",
			mode, ModeSingleRun, ModeVelodrome)
	default:
		return 0, fmt.Errorf("doublechecker: unknown mode %q", mode)
	}
}

// RecordSource executes a workload-language program once — under
// Options.Seed and Options.Stickiness — and writes its complete
// instrumentation event stream to w as a versioned binary trace, while
// checking it live under Options.Mode (ModeSingleRun or ModeVelodrome). The
// returned Report is the live run's. The trace embeds the program and its
// atomicity specification, so CheckTrace needs nothing but the trace.
//
// Options.Trials must be 0 or 1: a trace captures exactly one execution.
// On error, any bytes already written to w do not form a valid trace and
// should be discarded.
func RecordSource(src string, w io.Writer, opts Options) (*Report, error) {
	return RecordSourceContext(context.Background(), src, w, opts)
}

// RecordSourceContext is RecordSource under a context: cancellation aborts
// the recording promptly with ErrCanceled.
func RecordSourceContext(ctx context.Context, src string, w io.Writer, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Trials > 1 {
		return nil, fmt.Errorf("doublechecker: RecordSource records one execution; Trials %d > 1", opts.Trials)
	}
	analysis, err := traceMode(opts.Mode)
	if err != nil {
		return nil, err
	}
	unit, err := lang.ParseAndLower(src)
	if err != nil {
		return nil, err
	}
	prog := unit.Prog
	sp := specFromUnit(unit)
	var atomicIDs []vm.MethodID
	for _, m := range prog.Methods {
		if sp.Atomic(m.ID) {
			atomicIDs = append(atomicIDs, m.ID)
		}
	}
	tw, err := trace.NewWriter(w, trace.Header{
		Program: prog,
		Atomic:  atomicIDs,
		Seed:    opts.Seed,
		Sched:   fmt.Sprintf("sticky(%g)", opts.Stickiness),
		Source:  prog.Name,
	})
	if err != nil {
		return nil, err
	}
	// One attempt, no retries: a retry would append a second execution's
	// events onto the partially-written trace. A failed recording is fatal
	// and the bytes written so far are discarded by the caller.
	budget := supervise.Budget{TrialTimeout: opts.TrialTimeout}
	out, err := supervise.Trial(ctx, budget, "record-"+analysis.String(), opts.Seed,
		func(ctx context.Context, seed int64) (*core.Result, error) {
			return core.RecordRun(ctx, prog, tw, core.RecordConfig{
				Config: core.Config{
					Analysis: analysis,
					Sched:    vm.NewSticky(seed, opts.Stickiness),
					Atomic:   sp.Atomic,
					MaxSteps: opts.MaxSteps,
				},
				Source: prog.Name,
			})
		})
	if err != nil {
		return nil, err
	}
	report := &Report{Program: prog.Name, AtomicMethods: sp.Size()}
	report.recordFailures(out.Failures)
	if !out.OK {
		if f := out.LastFailure(); f != nil {
			return nil, fmt.Errorf("doublechecker: recording failed: %w", f.Err)
		}
		return nil, fmt.Errorf("doublechecker: recording failed")
	}
	report.CompletedTrials = 1
	fillViolations(report, prog, out.Value, out.Seed)
	return report, nil
}

// CheckTrace re-checks a recorded trace read from r under Options.Mode
// (ModeSingleRun or ModeVelodrome) — no program source, no VM, no
// scheduling: the checker consumes the recorded event stream, so its
// findings are exactly what the same checker would have reported live on
// that interleaving. Options.Seed and Options.Stickiness are ignored; the
// interleaving is the recorded one.
func CheckTrace(r io.Reader, opts Options) (*Report, error) {
	return CheckTraceContext(context.Background(), r, opts)
}

// CheckTraceContext is CheckTrace under a context: cancellation aborts the
// replay promptly with ErrCanceled.
func CheckTraceContext(ctx context.Context, r io.Reader, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Trials > 1 {
		return nil, fmt.Errorf("doublechecker: a trace is one recorded execution; Trials %d > 1 (replay is deterministic)", opts.Trials)
	}
	analysis, err := traceMode(opts.Mode)
	if err != nil {
		return nil, err
	}
	d, err := trace.Read(r)
	if err != nil {
		return nil, err
	}
	prog := d.Header.Program
	report := &Report{Program: prog.Name, AtomicMethods: len(d.Header.Atomic)}
	out, err := supervise.Trial(ctx, opts.budget(), "replay-"+analysis.String(), d.Header.Seed,
		func(ctx context.Context, _ int64) (*core.Result, error) {
			return core.RunTrace(ctx, d, core.Config{Analysis: analysis})
		})
	if err != nil {
		return nil, err
	}
	report.recordFailures(out.Failures)
	if !out.OK {
		if f := out.LastFailure(); f != nil {
			return nil, fmt.Errorf("doublechecker: replay failed: %w", f.Err)
		}
		return nil, fmt.Errorf("doublechecker: replay failed")
	}
	report.CompletedTrials = 1
	fillViolations(report, prog, out.Value, d.Header.Seed)
	return report, nil
}

// fillViolations converts one run's violations into the public report form.
func fillViolations(report *Report, prog *vm.Program, res *core.Result, seed int64) {
	blamed := map[string]bool{}
	for _, v := range res.Violations {
		pv := Violation{Seed: seed, CycleSize: len(v.Cycle)}
		for _, m := range v.BlamedMethods {
			name := prog.MethodName(m)
			pv.Methods = append(pv.Methods, name)
			blamed[name] = true
		}
		report.Violations = append(report.Violations, pv)
	}
	report.BlamedMethods = sortedKeys(blamed)
}
