// Package doublechecker is the public face of this DoubleChecker
// reproduction (Biswas, Huang, Sengupta, Bond — PLDI 2014): a sound and
// precise dynamic atomicity (conflict-serializability) checker built from
// two cooperating analyses, plus the Velodrome baseline, a workload
// language, a 19-benchmark suite, and the paper's full evaluation harness.
//
// The simplest entry point checks a workload-language program — methods
// marked `atomic` form the atomicity specification:
//
//	report, err := doublechecker.CheckSource(src, doublechecker.Options{Trials: 10})
//	if len(report.BlamedMethods) > 0 { ... }
//
// Modes mirror the paper: ModeSingleRun is the fully sound and precise
// ICD+PCD configuration; ModeMultiRun runs cheap ICD-only first runs and a
// filtered second run; ModeVelodrome is the prior-work baseline.
// RefineSource derives a specification by iterative refinement (Figure 6).
// The deeper APIs — the VM, the checkers, the evaluation harness — live in
// the internal packages and are exercised through the cmd/ tools and
// examples/.
//
// # Supervision
//
// Every check runs under a supervisor: trials are budgeted
// (Options.TrialTimeout, Options.MaxSteps), canceled checks return
// ErrCanceled promptly (the Context entry points), a panicking checker is
// quarantined into a Report.Failures record instead of crashing the caller,
// schedule-dependent failures are retried under rotated seeds, and a
// ModeSingleRun trial that trips Options.MemoryBudget is automatically
// downgraded to the multi-run pipeline — the paper's own single-run →
// multi-run tradeoff (§5.1). A check fails outright only when it is
// canceled, its options are invalid, or every trial fails.
package doublechecker

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"doublechecker/internal/core"
	"doublechecker/internal/cost"
	"doublechecker/internal/lang"
	"doublechecker/internal/spec"
	"doublechecker/internal/supervise"
	"doublechecker/internal/telemetry"
	"doublechecker/internal/vm"
)

// Supervision errors; match with errors.Is.
var (
	// ErrCanceled reports that the check's context was canceled before it
	// finished; no further trials were started.
	ErrCanceled = supervise.ErrCanceled
	// ErrTrialTimeout reports that a trial exceeded Options.TrialTimeout;
	// it appears on TrialFailure.Err records, and as the check's error when
	// every trial timed out.
	ErrTrialTimeout = supervise.ErrTrialTimeout
)

// Mode selects the checker configuration.
type Mode string

// The supported checker configurations.
const (
	// ModeSingleRun is DoubleChecker's single-run mode (ICD+PCD): fully
	// sound and precise for the observed execution.
	ModeSingleRun Mode = "single-run"
	// ModeMultiRun runs the paper's multi-run pipeline: FirstRuns
	// ICD-only executions, then one ICD+PCD second run restricted to the
	// static transaction information they report.
	ModeMultiRun Mode = "multi-run"
	// ModeVelodrome is the prior state-of-the-art baseline.
	ModeVelodrome Mode = "velodrome"
)

// Options configures a check. The zero value is usable.
type Options struct {
	// Mode defaults to ModeSingleRun.
	Mode Mode
	// Trials is how many schedules (seeds) to check; default 1.
	Trials int
	// Seed is the first schedule seed; trial i uses Seed+i. Must be
	// non-negative.
	Seed int64
	// Stickiness is the scheduler's per-step switch probability in (0,1];
	// default 0.1. Lower values preempt less often.
	Stickiness float64
	// FirstRuns is the number of first runs in ModeMultiRun; default 10.
	FirstRuns int

	// TrialTimeout bounds each trial's wall-clock time; 0 means unbounded.
	// A trial that exceeds it is recorded as a timeout on Report.Failures
	// and the check moves on to the next trial.
	TrialTimeout time.Duration
	// MaxSteps bounds each execution's step count (0: the VM default). A
	// trial that exceeds it fails with vm.ErrStepLimit and is retried under
	// a rotated seed.
	MaxSteps uint64
	// Retries is how many extra attempts (under rotated seeds) a trial gets
	// after a schedule-dependent failure (vm.ErrDeadlock, vm.ErrStepLimit);
	// 0 means the default (1). Retried-away failures stay on
	// Report.Failures, marked Recovered.
	Retries int
	// MemoryBudget models a heap limit in bytes for analysis metadata
	// (§5.1's 32-bit OOMs); 0 means unlimited. A ModeSingleRun trial that
	// trips it is automatically re-run through the multi-run pipeline for
	// the same seed — the paper's cheap fallback — and the downgrade is
	// recorded on Report.Downgrades.
	MemoryBudget int64

	// inject, when set (tests only), may mutate a run's configuration just
	// before it starts — the deterministic fault-injection hook. seed is
	// the scheduler seed of that particular run (trial seed, or first-run
	// seed for ModeMultiRun's first runs).
	inject func(analysis core.Analysis, seed int64, cfg *core.Config)

	// telemetry is the check-wide metric registry, created by
	// CheckUnitContext and shared by every run and the supervisor; its
	// deterministic snapshot becomes Report.Telemetry.
	telemetry *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.Mode == "" {
		o.Mode = ModeSingleRun
	}
	if o.Trials == 0 {
		o.Trials = 1
	}
	if o.Stickiness == 0 {
		o.Stickiness = 0.1
	}
	if o.FirstRuns == 0 {
		o.FirstRuns = 10
	}
	if o.Retries == 0 {
		o.Retries = 1
	}
	return o
}

// validate rejects option misuse with an error instead of letting internal
// constructors (e.g. vm.NewSticky) panic on user input. It runs after
// withDefaults, so zero values have already become defaults.
func (o Options) validate() error {
	switch o.Mode {
	case ModeSingleRun, ModeMultiRun, ModeVelodrome:
	default:
		return fmt.Errorf("doublechecker: unknown mode %q", o.Mode)
	}
	if o.Trials < 0 {
		return fmt.Errorf("doublechecker: Trials %d is negative", o.Trials)
	}
	if o.Seed < 0 {
		return fmt.Errorf("doublechecker: Seed %d is negative (trial seeds Seed+i must stay non-negative)", o.Seed)
	}
	if o.Stickiness < 0 || o.Stickiness > 1 {
		return fmt.Errorf("doublechecker: Stickiness %v outside (0,1]", o.Stickiness)
	}
	if o.FirstRuns < 0 {
		return fmt.Errorf("doublechecker: FirstRuns %d is negative", o.FirstRuns)
	}
	if o.TrialTimeout < 0 {
		return fmt.Errorf("doublechecker: TrialTimeout %v is negative", o.TrialTimeout)
	}
	if o.Retries < 0 {
		return fmt.Errorf("doublechecker: Retries %d is negative", o.Retries)
	}
	if o.MemoryBudget < 0 {
		return fmt.Errorf("doublechecker: MemoryBudget %d is negative", o.MemoryBudget)
	}
	return nil
}

// budget derives the supervision budget from the options.
func (o Options) budget() supervise.Budget {
	return supervise.Budget{TrialTimeout: o.TrialTimeout, Retries: o.Retries, Telemetry: o.telemetry}
}

// Violation is one detected conflict-serializability violation.
type Violation struct {
	// Seed is the schedule that exposed it.
	Seed int64
	// Methods are the blamed methods (the transactions that completed the
	// dependence cycle); empty only for cycles among purely
	// non-transactional accesses.
	Methods []string
	// CycleSize is the number of transactions in the precise cycle.
	CycleSize int
}

// TrialFailure records one trial attempt the supervisor absorbed instead of
// aborting the check: a quarantined checker panic, a blown wall-clock or
// step budget, a deadlocked schedule, or a lost multi-run first run.
type TrialFailure struct {
	// Analysis names the configuration that failed: the Mode for whole-trial
	// failures, "dc-first" for a lost multi-run first run.
	Analysis string
	// Seed is the schedule seed of the failing attempt.
	Seed int64
	// Attempt is the 1-based attempt number within the trial.
	Attempt int
	// Kind is the failure class: "panic", "timeout", "deadlock",
	// "step-limit", "oom" or "error".
	Kind string
	// Err is the underlying error; errors.Is sees through it (e.g. to
	// vm.ErrDeadlock or ErrTrialTimeout).
	Err error
	// StackDigest is a stable 8-hex-digit digest of a quarantined panic's
	// stack; empty otherwise. Equal digests across runs point at the same
	// checker bug.
	StackDigest string
	// Recovered reports that a retry, a downgrade, or the surviving rest of
	// the first-run ensemble completed the trial anyway.
	Recovered bool
}

// Downgrade records one trial's automatic fallback from single-run mode to
// the multi-run pipeline after tripping Options.MemoryBudget — the paper's
// degradation order: single-run → multi-run → fail.
type Downgrade struct {
	// Seed is the trial seed that was re-run under the cheaper mode.
	Seed int64
	// From and To are the modes involved (currently always single-run →
	// multi-run).
	From, To Mode
	// Reason says why the trial was downgraded.
	Reason string
}

// Report summarizes a check.
type Report struct {
	// Program is the checked program's name.
	Program string
	// AtomicMethods is the size of the specification checked against.
	AtomicMethods int
	// Violations lists every distinct dynamic violation found across
	// trials.
	Violations []Violation
	// BlamedMethods is the union of blamed method names, sorted.
	BlamedMethods []string

	// CompletedTrials is how many trials produced a result (possibly after
	// retry or downgrade); the remainder are covered by Failures.
	CompletedTrials int
	// Failures records every absorbed trial failure, in trial order.
	Failures []TrialFailure
	// Downgrades records the single-run → multi-run fallbacks taken.
	Downgrades []Downgrade

	// Telemetry is the check's machine-readable metric snapshot — the
	// cumulative pipeline counters, histograms, and phase spans across every
	// trial, as indented JSON with nondeterministic fields (span wall times)
	// stripped: checking the same program with the same options twice yields
	// byte-identical bytes. It is raw JSON so callers can embed or forward
	// it without depending on internal types.
	Telemetry json.RawMessage
}

// recordFailures converts supervised failures into public records.
func (r *Report) recordFailures(fs []supervise.TrialFailure) {
	for _, f := range fs {
		r.Failures = append(r.Failures, TrialFailure{
			Analysis:    f.Analysis,
			Seed:        f.Seed,
			Attempt:     f.Attempt,
			Kind:        string(f.Kind),
			Err:         f.Err,
			StackDigest: f.StackDigest,
			Recovered:   f.Recovered,
		})
	}
}

// CheckSource parses a workload-language program and checks it under the
// given options. Methods marked `atomic` in the source form the atomicity
// specification.
func CheckSource(src string, opts Options) (*Report, error) {
	return CheckSourceContext(context.Background(), src, opts)
}

// CheckSourceContext is CheckSource under a context: cancellation aborts the
// check promptly with ErrCanceled.
func CheckSourceContext(ctx context.Context, src string, opts Options) (*Report, error) {
	unit, err := lang.ParseAndLower(src)
	if err != nil {
		return nil, err
	}
	return CheckUnitContext(ctx, unit, opts)
}

// CheckUnit checks an already-lowered program unit.
func CheckUnit(unit *lang.Unit, opts Options) (*Report, error) {
	return CheckUnitContext(context.Background(), unit, opts)
}

// CheckUnitContext is CheckUnit under a context. Trials run supervised: see
// the package comment's Supervision section for the recovery semantics. It
// returns an error only for invalid options, cancellation (ErrCanceled), or
// when every trial failed — in which case the error wraps the trial
// failures, so errors.Is still matches e.g. vm.ErrDeadlock.
func CheckUnitContext(ctx context.Context, unit *lang.Unit, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	prog := unit.Prog
	sp := specFromUnit(unit)
	report := &Report{
		Program:       prog.Name,
		AtomicMethods: sp.Size(),
	}
	if opts.telemetry == nil {
		opts.telemetry = telemetry.NewRegistry()
	}
	budget := opts.budget()
	blamed := map[string]bool{}
	var trialErrs []error
	for trial := 0; trial < opts.Trials; trial++ {
		seed := opts.Seed + int64(trial)
		out, err := supervise.Trial(ctx, budget, string(opts.Mode), seed,
			func(ctx context.Context, s int64) (trialOutcome, error) {
				return runMode(ctx, prog, sp, s, opts)
			})
		if err != nil {
			return nil, err
		}
		report.recordFailures(out.Failures)
		if out.OK && opts.Mode == ModeSingleRun && opts.MemoryBudget > 0 && out.Value.res.Cost.OOM {
			// Degradation order: single-run → multi-run → fail (§5.1). The
			// OOM'd single-run result is discarded; the same seed re-runs
			// through the cheaper pipeline.
			report.Downgrades = append(report.Downgrades, Downgrade{
				Seed: out.Seed, From: ModeSingleRun, To: ModeMultiRun,
				Reason: "analysis memory budget exceeded",
			})
			opts.telemetry.Counter(telemetry.SuperviseDowngrades).Inc()
			fallback := opts
			fallback.Mode = ModeMultiRun
			out, err = supervise.Trial(ctx, budget, string(ModeMultiRun)+" (downgrade)", out.Seed,
				func(ctx context.Context, s int64) (trialOutcome, error) {
					return runMode(ctx, prog, sp, s, fallback)
				})
			if err != nil {
				return nil, err
			}
			report.recordFailures(out.Failures)
		}
		if !out.OK {
			if f := out.LastFailure(); f != nil {
				trialErrs = append(trialErrs, fmt.Errorf("trial %d (seed %d): %w", trial, f.Seed, f.Err))
			}
			continue
		}
		report.CompletedTrials++
		report.Failures = append(report.Failures, out.Value.notes...)
		for _, v := range out.Value.res.Violations {
			pv := Violation{Seed: out.Seed, CycleSize: len(v.Cycle)}
			for _, m := range v.BlamedMethods {
				name := prog.MethodName(m)
				pv.Methods = append(pv.Methods, name)
				blamed[name] = true
			}
			report.Violations = append(report.Violations, pv)
		}
	}
	report.BlamedMethods = sortedKeys(blamed)
	if opts.Trials > 0 && report.CompletedTrials == 0 {
		return nil, fmt.Errorf("doublechecker: all %d trials failed: %w", opts.Trials, errors.Join(trialErrs...))
	}
	report.Telemetry = json.RawMessage(opts.telemetry.Snapshot().Deterministic().JSON())
	return report, nil
}

// RefineReport is the outcome of iterative specification refinement.
type RefineReport struct {
	// Removed lists the methods refinement excluded, in removal order —
	// the methods that are not actually atomic.
	Removed []string
	// AtomicMethods lists the final specification's methods, sorted.
	AtomicMethods []string
	// Trials is how many checking trials ran.
	Trials int
}

// RefineSource runs the paper's Figure 6 iterative refinement on a
// workload-language program: starting from the `atomic`-marked methods, it
// repeatedly checks (single-run mode) and removes blamed methods until no
// new violations appear for 10 consecutive trials.
func RefineSource(src string, opts Options) (*RefineReport, error) {
	return RefineSourceContext(context.Background(), src, opts)
}

// RefineSourceContext is RefineSource under a context: cancellation aborts
// the refinement promptly with ErrCanceled.
func RefineSourceContext(ctx context.Context, src string, opts Options) (*RefineReport, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	unit, err := lang.ParseAndLower(src)
	if err != nil {
		return nil, err
	}
	prog := unit.Prog
	initial := specFromUnit(unit)
	check := func(sp *spec.Spec, trial int) ([]vm.MethodID, error) {
		res, err := core.RunContext(ctx, prog, core.Config{
			Analysis: core.DCSingle,
			Sched:    vm.NewSticky(opts.Seed+int64(trial), opts.Stickiness),
			Atomic:   sp.Atomic,
			MaxSteps: opts.MaxSteps,
		})
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, fmt.Errorf("%w: %w", ErrCanceled, cerr)
			}
			return nil, err
		}
		var out []vm.MethodID
		for m := range res.BlamedMethods {
			out = append(out, m)
		}
		return out, nil
	}
	res, err := spec.Refine(initial, check, spec.Options{})
	if err != nil {
		return nil, err
	}
	report := &RefineReport{Trials: res.Trials}
	for _, m := range res.ExclusionOrder {
		report.Removed = append(report.Removed, prog.MethodName(m))
	}
	for _, m := range res.Final.AtomicMethods() {
		report.AtomicMethods = append(report.AtomicMethods, prog.MethodName(m))
	}
	return report, nil
}

func specFromUnit(unit *lang.Unit) *spec.Spec {
	atomicSet := make(map[string]bool, len(unit.AtomicMethods))
	for _, n := range unit.AtomicMethods {
		atomicSet[n] = true
	}
	sp := spec.New(unit.Prog)
	for _, m := range unit.Prog.Methods {
		if !atomicSet[m.Name] {
			sp.Exclude(m.ID)
		}
	}
	return sp
}

// trialOutcome is one trial's result plus the sub-failures the trial
// tolerated internally (lost multi-run first runs).
type trialOutcome struct {
	res   *core.Result
	notes []TrialFailure
}

func runMode(ctx context.Context, prog *vm.Program, sp *spec.Spec, seed int64, opts Options) (trialOutcome, error) {
	newCfg := func(analysis core.Analysis, schedSeed int64) core.Config {
		cfg := core.Config{
			Analysis:  analysis,
			Sched:     vm.NewSticky(schedSeed, opts.Stickiness),
			Atomic:    sp.Atomic,
			MaxSteps:  opts.MaxSteps,
			Telemetry: opts.telemetry,
		}
		if opts.MemoryBudget > 0 {
			cfg.Meter = cost.NewMeter(cost.Default())
			cfg.MemoryBudget = opts.MemoryBudget
		}
		return cfg
	}
	exec := func(cfg core.Config, schedSeed int64) (*core.Result, error) {
		if opts.inject != nil {
			opts.inject(cfg.Analysis, schedSeed, &cfg)
		}
		return core.RunContext(ctx, prog, cfg)
	}
	switch opts.Mode {
	case ModeSingleRun:
		res, err := exec(newCfg(core.DCSingle, seed), seed)
		return trialOutcome{res: res}, err
	case ModeVelodrome:
		res, err := exec(newCfg(core.Velodrome, seed), seed)
		return trialOutcome{res: res}, err
	case ModeMultiRun:
		var firsts []*core.Result
		var notes []TrialFailure
		var firstErrs []error
		for i := 0; i < opts.FirstRuns; i++ {
			fseed := seed*1000 + int64(i)
			res, err := exec(newCfg(core.DCFirst, fseed), fseed)
			if err != nil {
				if ctx.Err() != nil {
					return trialOutcome{}, err
				}
				// The first runs are an ensemble; record the loss and let
				// the survivors feed the second run.
				notes = append(notes, TrialFailure{
					Analysis: core.DCFirst.String(), Seed: fseed, Attempt: 1,
					Kind: string(supervise.Classify(err)), Err: err, Recovered: true,
				})
				firstErrs = append(firstErrs, fmt.Errorf("first run %d (seed %d): %w", i, fseed, err))
				continue
			}
			firsts = append(firsts, res)
		}
		if len(firsts) == 0 && opts.FirstRuns > 0 {
			return trialOutcome{}, fmt.Errorf("all %d first runs failed: %w", opts.FirstRuns, errors.Join(firstErrs...))
		}
		cfg := newCfg(core.DCSecond, seed)
		cfg.Filter = core.UnionFilter(firsts)
		res, err := exec(cfg, seed)
		if err != nil {
			return trialOutcome{}, err
		}
		if res.Cost.OOM {
			// Even the degraded pipeline can trip the budget; note it so
			// the caller knows this result is from a budget-stressed run.
			notes = append(notes, TrialFailure{
				Analysis: core.DCSecond.String(), Seed: seed, Attempt: 1,
				Kind:      string(supervise.KindOOM),
				Err:       fmt.Errorf("second run exceeded the %d-byte analysis memory budget", opts.MemoryBudget),
				Recovered: true,
			})
		}
		return trialOutcome{res: res, notes: notes}, nil
	default:
		return trialOutcome{}, fmt.Errorf("doublechecker: unknown mode %q", opts.Mode)
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
