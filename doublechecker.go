// Package doublechecker is the public face of this DoubleChecker
// reproduction (Biswas, Huang, Sengupta, Bond — PLDI 2014): a sound and
// precise dynamic atomicity (conflict-serializability) checker built from
// two cooperating analyses, plus the Velodrome baseline, a workload
// language, a 19-benchmark suite, and the paper's full evaluation harness.
//
// The simplest entry point checks a workload-language program — methods
// marked `atomic` form the atomicity specification:
//
//	report, err := doublechecker.CheckSource(src, doublechecker.Options{Trials: 10})
//	if len(report.BlamedMethods) > 0 { ... }
//
// Modes mirror the paper: ModeSingleRun is the fully sound and precise
// ICD+PCD configuration; ModeMultiRun runs cheap ICD-only first runs and a
// filtered second run; ModeVelodrome is the prior-work baseline.
// RefineSource derives a specification by iterative refinement (Figure 6).
// The deeper APIs — the VM, the checkers, the evaluation harness — live in
// the internal packages and are exercised through the cmd/ tools and
// examples/.
package doublechecker

import (
	"fmt"

	"doublechecker/internal/core"
	"doublechecker/internal/lang"
	"doublechecker/internal/spec"
	"doublechecker/internal/vm"
)

// Mode selects the checker configuration.
type Mode string

// The supported checker configurations.
const (
	// ModeSingleRun is DoubleChecker's single-run mode (ICD+PCD): fully
	// sound and precise for the observed execution.
	ModeSingleRun Mode = "single-run"
	// ModeMultiRun runs the paper's multi-run pipeline: FirstRuns
	// ICD-only executions, then one ICD+PCD second run restricted to the
	// static transaction information they report.
	ModeMultiRun Mode = "multi-run"
	// ModeVelodrome is the prior state-of-the-art baseline.
	ModeVelodrome Mode = "velodrome"
)

// Options configures a check. The zero value is usable.
type Options struct {
	// Mode defaults to ModeSingleRun.
	Mode Mode
	// Trials is how many schedules (seeds) to check; default 1.
	Trials int
	// Seed is the first schedule seed; trial i uses Seed+i.
	Seed int64
	// Stickiness is the scheduler's per-step switch probability in (0,1];
	// default 0.1. Lower values preempt less often.
	Stickiness float64
	// FirstRuns is the number of first runs in ModeMultiRun; default 10.
	FirstRuns int
}

func (o Options) withDefaults() Options {
	if o.Mode == "" {
		o.Mode = ModeSingleRun
	}
	if o.Trials == 0 {
		o.Trials = 1
	}
	if o.Stickiness == 0 {
		o.Stickiness = 0.1
	}
	if o.FirstRuns == 0 {
		o.FirstRuns = 10
	}
	return o
}

// Violation is one detected conflict-serializability violation.
type Violation struct {
	// Seed is the schedule that exposed it.
	Seed int64
	// Methods are the blamed methods (the transactions that completed the
	// dependence cycle); empty only for cycles among purely
	// non-transactional accesses.
	Methods []string
	// CycleSize is the number of transactions in the precise cycle.
	CycleSize int
}

// Report summarizes a check.
type Report struct {
	// Program is the checked program's name.
	Program string
	// AtomicMethods is the size of the specification checked against.
	AtomicMethods int
	// Violations lists every distinct dynamic violation found across
	// trials.
	Violations []Violation
	// BlamedMethods is the union of blamed method names, sorted.
	BlamedMethods []string
}

// CheckSource parses a workload-language program and checks it under the
// given options. Methods marked `atomic` in the source form the atomicity
// specification.
func CheckSource(src string, opts Options) (*Report, error) {
	unit, err := lang.ParseAndLower(src)
	if err != nil {
		return nil, err
	}
	return CheckUnit(unit, opts)
}

// CheckUnit checks an already-lowered program unit.
func CheckUnit(unit *lang.Unit, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	prog := unit.Prog
	sp := specFromUnit(unit)
	report := &Report{
		Program:       prog.Name,
		AtomicMethods: sp.Size(),
	}
	blamed := map[string]bool{}
	for trial := 0; trial < opts.Trials; trial++ {
		seed := opts.Seed + int64(trial)
		res, err := runMode(prog, sp, seed, opts)
		if err != nil {
			return nil, err
		}
		for _, v := range res.Violations {
			pv := Violation{Seed: seed, CycleSize: len(v.Cycle)}
			for _, m := range v.BlamedMethods {
				name := prog.MethodName(m)
				pv.Methods = append(pv.Methods, name)
				blamed[name] = true
			}
			report.Violations = append(report.Violations, pv)
		}
	}
	report.BlamedMethods = sortedKeys(blamed)
	return report, nil
}

// RefineReport is the outcome of iterative specification refinement.
type RefineReport struct {
	// Removed lists the methods refinement excluded, in removal order —
	// the methods that are not actually atomic.
	Removed []string
	// AtomicMethods lists the final specification's methods, sorted.
	AtomicMethods []string
	// Trials is how many checking trials ran.
	Trials int
}

// RefineSource runs the paper's Figure 6 iterative refinement on a
// workload-language program: starting from the `atomic`-marked methods, it
// repeatedly checks (single-run mode) and removes blamed methods until no
// new violations appear for 10 consecutive trials.
func RefineSource(src string, opts Options) (*RefineReport, error) {
	opts = opts.withDefaults()
	unit, err := lang.ParseAndLower(src)
	if err != nil {
		return nil, err
	}
	prog := unit.Prog
	initial := specFromUnit(unit)
	check := func(sp *spec.Spec, trial int) ([]vm.MethodID, error) {
		res, err := core.Run(prog, core.Config{
			Analysis: core.DCSingle,
			Sched:    vm.NewSticky(opts.Seed+int64(trial), opts.Stickiness),
			Atomic:   sp.Atomic,
		})
		if err != nil {
			return nil, err
		}
		var out []vm.MethodID
		for m := range res.BlamedMethods {
			out = append(out, m)
		}
		return out, nil
	}
	res, err := spec.Refine(initial, check, spec.Options{})
	if err != nil {
		return nil, err
	}
	report := &RefineReport{Trials: res.Trials}
	for _, m := range res.ExclusionOrder {
		report.Removed = append(report.Removed, prog.MethodName(m))
	}
	for _, m := range res.Final.AtomicMethods() {
		report.AtomicMethods = append(report.AtomicMethods, prog.MethodName(m))
	}
	return report, nil
}

func specFromUnit(unit *lang.Unit) *spec.Spec {
	atomicSet := make(map[string]bool, len(unit.AtomicMethods))
	for _, n := range unit.AtomicMethods {
		atomicSet[n] = true
	}
	sp := spec.New(unit.Prog)
	for _, m := range unit.Prog.Methods {
		if !atomicSet[m.Name] {
			sp.Exclude(m.ID)
		}
	}
	return sp
}

func runMode(prog *vm.Program, sp *spec.Spec, seed int64, opts Options) (*core.Result, error) {
	sched := vm.NewSticky(seed, opts.Stickiness)
	switch opts.Mode {
	case ModeSingleRun:
		return core.Run(prog, core.Config{
			Analysis: core.DCSingle, Sched: sched, Atomic: sp.Atomic,
		})
	case ModeVelodrome:
		return core.Run(prog, core.Config{
			Analysis: core.Velodrome, Sched: sched, Atomic: sp.Atomic,
		})
	case ModeMultiRun:
		var firsts []*core.Result
		for i := 0; i < opts.FirstRuns; i++ {
			res, err := core.Run(prog, core.Config{
				Analysis: core.DCFirst,
				Sched:    vm.NewSticky(seed*1000+int64(i), opts.Stickiness),
				Atomic:   sp.Atomic,
			})
			if err != nil {
				return nil, err
			}
			firsts = append(firsts, res)
		}
		return core.Run(prog, core.Config{
			Analysis: core.DCSecond, Sched: sched, Atomic: sp.Atomic,
			Filter: core.UnionFilter(firsts),
		})
	default:
		return nil, fmt.Errorf("doublechecker: unknown mode %q", opts.Mode)
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
