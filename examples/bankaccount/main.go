// Bank account: the motivating example written in the workload language.
// A `transfer` locks correctly, but `audit` reads two balances in one
// atomic region without holding the lock — the classic check-then-act bug.
// The example runs Velodrome and DoubleChecker single-run on the identical
// interleaving and shows they agree, then demonstrates iterative
// specification refinement (paper Figure 6).
package main

import (
	"fmt"
	"log"

	"doublechecker/internal/core"
	"doublechecker/internal/lang"
	"doublechecker/internal/spec"
	"doublechecker/internal/vm"
)

const src = `
program bank

object checking
object savings
lock ledger

atomic method transfer {
    acquire ledger
    read checking.balance
    write checking.balance
    read savings.balance
    write savings.balance
    release ledger
}

# BUG: audit double-checks the balance without the lock, so a concurrent
# transfer can change it between the two reads (a non-repeatable read) —
# the atomic region is not serializable.
atomic method audit {
    read checking.balance
    compute 12
    read checking.balance
    write checking.audited
}

method teller0 { loop 25 { call transfer } }
method teller1 { loop 25 { call transfer } }
method auditor { loop 12 { call audit compute 5 } }

thread teller0
thread teller1
thread auditor
`

func main() {
	unit, err := lang.ParseAndLower(src)
	if err != nil {
		log.Fatal(err)
	}
	prog := unit.Prog
	atomicSet := map[string]bool{}
	for _, n := range unit.AtomicMethods {
		atomicSet[n] = true
	}
	isAtomic := func(m vm.MethodID) bool { return atomicSet[prog.Methods[m].Name] }

	fmt.Println("== checking the same interleaving with both checkers ==")
	for seed := int64(0); seed < 6; seed++ {
		velo, err := core.Run(prog, core.Config{Analysis: core.Velodrome, Seed: seed, Atomic: isAtomic})
		if err != nil {
			log.Fatal(err)
		}
		dc, err := core.Run(prog, core.Config{Analysis: core.DCSingle, Seed: seed, Atomic: isAtomic})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("seed %d: velodrome blames %v; doublechecker blames %v\n",
			seed, velo.BlamedMethodNames(prog), dc.BlamedMethodNames(prog))
	}

	fmt.Println("\n== iterative refinement (Figure 6) ==")
	initial := spec.New(prog)
	for _, m := range prog.Methods {
		if !atomicSet[m.Name] {
			initial.Exclude(m.ID)
		}
	}
	check := func(sp *spec.Spec, trial int) ([]vm.MethodID, error) {
		res, err := core.Run(prog, core.Config{
			Analysis: core.DCSingle, Seed: int64(trial), Atomic: sp.Atomic,
		})
		if err != nil {
			return nil, err
		}
		var blamed []vm.MethodID
		for m := range res.BlamedMethods {
			blamed = append(blamed, m)
		}
		return blamed, nil
	}
	res, err := spec.Refine(initial, check, spec.Options{StableTrials: 6})
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range res.ExclusionOrder {
		fmt.Printf("refinement removed %q from the specification\n", prog.MethodName(m))
	}
	fmt.Printf("final specification has %d atomic method(s)\n", res.Final.Size())
	if res.Final.Atomic(prog.MethodByName("transfer").ID) {
		fmt.Println("transfer stays in the specification — it really is atomic")
	}
}
