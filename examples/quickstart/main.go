// Quickstart: build a tiny multithreaded program with the VM builder API,
// declare one method atomic, and let DoubleChecker's single-run mode find
// the classic read-modify-write atomicity violation.
package main

import (
	"fmt"
	"log"

	"doublechecker/internal/core"
	"doublechecker/internal/vm"
)

func main() {
	// Two threads each run the atomic method `increment` on a shared
	// counter — but increment takes no lock, so its read-then-write is not
	// atomic under an unlucky interleaving.
	b := vm.NewBuilder("quickstart")
	counter := b.Object()

	increment := b.Method("increment")
	increment.Read(counter, 0).Compute(5).Write(counter, 0)

	for i := 0; i < 2; i++ {
		main := b.Method(fmt.Sprintf("main%d", i))
		main.CallN(increment, 20)
		b.Thread(main)
	}
	prog := b.MustBuild()

	// The atomicity specification: increment is expected to be atomic.
	incID := prog.MethodByName("increment").ID
	atomic := func(m vm.MethodID) bool { return m == incID }

	// Try a few schedules; the violation manifests under most of them.
	for seed := int64(0); seed < 5; seed++ {
		res, err := core.Run(prog, core.Config{
			Analysis: core.DCSingle, // ICD + PCD in one execution
			Seed:     seed,
			Atomic:   atomic,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("seed %d: ICD found %d potential cycles (SCCs); PCD confirmed %d violations\n",
			seed, res.ICD.SCCs, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Printf("  cycle of %d transactions; blamed: %v\n",
				len(v.Cycle), res.BlamedMethodNames(prog))
			break // one is enough for the demo
		}
		if len(res.Violations) > 0 {
			fmt.Println("\nincrement is not conflict-serializable: its read and write can be",
				"\nsplit by the other thread's update. Guard it with a lock and re-run —",
				"\nthe checker then reports nothing.")
			return
		}
	}
	fmt.Println("no violation in these schedules; try more seeds")
}
