// Philosophers: dining philosophers with correct ordered locking are
// conflict-serializable — no violations under any schedule. Removing the
// forks from one philosopher's eat method makes it racy, and the checker
// pins the blame precisely on that method. Also shows the Octet statistics:
// almost all accesses stay on the fast path.
package main

import (
	"fmt"
	"log"

	"doublechecker/internal/core"
	"doublechecker/internal/lang"
	"doublechecker/internal/vm"
)

func build(broken bool) string {
	// Philosopher i shares seat i with the left neighbour and seat i+1
	// with the right one; the common fork protects each shared seat.
	eat2 := `
atomic method eat2 {
    acquire fork2
    acquire fork3
    read table.seat2
    write table.seat2
    read table.seat3
    write table.seat3
    release fork3
    release fork2
}`
	if broken {
		// Philosopher 2 "forgot the forks": same accesses, no locking.
		eat2 = `
atomic method eat2 {
    read table.seat2
    write table.seat2
    read table.seat3
    compute 15
    write table.seat3
}`
	}
	return `
program philosophers
object table
lock fork0 fork1 fork2 fork3
` + eat2 + `
atomic method eat0 {
    acquire fork0 acquire fork1
    read table.seat0 write table.seat0
    read table.seat1 write table.seat1
    release fork1 release fork0
}
atomic method eat1 {
    acquire fork1 acquire fork2
    read table.seat1 write table.seat1
    read table.seat2 write table.seat2
    release fork2 release fork1
}
method philosopher0 { loop 20 { call eat0 compute 4 } }
method philosopher1 { loop 20 { call eat1 compute 4 } }
method philosopher2 { loop 20 { call eat2 compute 4 } }
thread philosopher0
thread philosopher1
thread philosopher2
`
}

func check(label string, broken bool) {
	unit, err := lang.ParseAndLower(build(broken))
	if err != nil {
		log.Fatal(err)
	}
	prog := unit.Prog
	atomicSet := map[string]bool{}
	for _, n := range unit.AtomicMethods {
		atomicSet[n] = true
	}
	isAtomic := func(m vm.MethodID) bool { return atomicSet[prog.Methods[m].Name] }

	blamed := map[string]bool{}
	var sccs uint64
	for seed := int64(0); seed < 10; seed++ {
		res, err := core.Run(prog, core.Config{
			Analysis: core.DCSingle,
			Sched:    vm.NewSticky(seed, 0.2),
			Atomic:   isAtomic,
		})
		if err != nil {
			log.Fatal(err)
		}
		sccs += res.ICD.SCCs
		for _, n := range res.BlamedMethodNames(prog) {
			blamed[n] = true
		}
	}
	fmt.Printf("%s: %d imprecise SCCs across 10 schedules; blamed methods: ", label, sccs)
	if len(blamed) == 0 {
		fmt.Println("none (conflict-serializable)")
	} else {
		for n := range blamed {
			fmt.Printf("%s ", n)
		}
		fmt.Println()
	}
}

func main() {
	check("ordered forks  ", false)
	check("philosopher 2 forgot the forks", true)
	fmt.Println("\nWith proper ordered locking the whole table is serializable despite")
	fmt.Println("many imprecise SCCs — PCD rejects them all. Dropping the forks from")
	fmt.Println("philosopher 2 breaks the seats it shares: eat2 races, and its neighbour")
	fmt.Println("eat1 lands in the same dependence cycles (a victim the cycle includes).")
}
