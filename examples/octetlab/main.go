// Octetlab: a guided tour of the Octet concurrency-control state machine
// DoubleChecker builds on (paper Table 1 and Figure 2). It drives the
// engine directly through the paper's Figure 2 interleaving and prints
// every state transition, then runs a realistic workload and shows the
// fast-path ratio that makes ICD cheap.
package main

import (
	"fmt"
	"log"

	"doublechecker/internal/core"
	"doublechecker/internal/octet"
	"doublechecker/internal/spec"
	"doublechecker/internal/vm"
	"doublechecker/internal/workloads"
)

// hooks prints each dependence-relevant event as ICD would see it.
type hooks struct{}

func (hooks) HandleConflicting(resp, req vm.ThreadID, old, new octet.State, explicit bool) {
	proto := "explicit round trip"
	if !explicit {
		proto = "implicit flag"
	}
	fmt.Printf("      -> IDG edge: currTX(t%d) -> currTX(t%d)  [%s]\n", resp, req, proto)
}
func (hooks) HandleUpgrading(t vm.ThreadID, rdExOwner vm.ThreadID, old, new octet.State) {
	fmt.Printf("      -> IDG edges: t%d.lastRdEx -> currTX(t%d), gLastRdSh -> currTX(t%d)\n",
		rdExOwner, t, t)
}
func (hooks) HandleFence(t vm.ThreadID, c uint64) {
	fmt.Printf("      -> IDG edge: gLastRdSh -> currTX(t%d)  [fence, counter %d]\n", t, c)
}

func main() {
	fmt.Println("== the Figure 2 interleaving, step by step ==")
	e := octet.New(hooks{}, nil, nil)
	for t := vm.ThreadID(1); t <= 7; t++ {
		e.ThreadStart(t)
	}
	o, p := vm.ObjectID(0), vm.ObjectID(1)
	step := func(what string, tr octet.Transition) {
		fmt.Printf("  %-14s %-11s: %v -> %v\n", what, tr.Kind, tr.Old, tr.New)
	}
	step("t1 wr o.f", e.BeforeWrite(1, o))
	step("t7 wr p.q", e.BeforeWrite(7, p))
	step("t5 rd p.q", e.BeforeRead(5, p))
	step("t6 rd p.q", e.BeforeRead(6, p)) // upgrade p to RdSh_c
	step("t2 rd o.f", e.BeforeRead(2, o)) // conflict WrEx -> RdEx
	step("t3 rd o.f", e.BeforeRead(3, o)) // upgrade o to RdSh_{c+1}
	step("t4 rd o.h", e.BeforeRead(4, o)) // fence: t4's counter is stale
	step("t4 rd p.q", e.BeforeRead(4, p)) // no fence: counter already newer
	st := e.Stats()
	fmt.Printf("\n  totals: %d fast paths, %d upgrades, %d fences, %d conflicts\n",
		st.FastPath, st.Upgrading, st.Fences, st.Conflicting)

	fmt.Println("\n== fast-path ratio on a real workload (raytracer) ==")
	built, err := workloads.Build("raytracer", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	sp := spec.Initial(built.Prog)
	if err := sp.ExcludeByName(built.InitialExclusions...); err != nil {
		log.Fatal(err)
	}
	res, err := core.Run(built.Prog, core.Config{
		Analysis: core.DCFirst,
		Sched:    vm.NewSticky(1, built.Stickiness),
		Atomic:   sp.Atomic,
	})
	if err != nil {
		log.Fatal(err)
	}
	total := res.ICD.RegularAccesses + res.ICD.UnaryAccesses
	fmt.Printf("  %d accesses instrumented, only %d IDG edges added (%.2f%%)\n",
		total, res.ICD.IDGEdges, 100*float64(res.ICD.IDGEdges)/float64(total))
	fmt.Println("\nMost accesses hit Octet's read-only fast path — the whole reason ICD")
	fmt.Println("can over-approximate dependences so much more cheaply than Velodrome's")
	fmt.Println("per-access synchronized metadata updates.")
}
