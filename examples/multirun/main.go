// Multirun: demonstrates DoubleChecker's multi-run mode end to end on the
// tsp workload — ten cheap first runs (ICD only, no logging) produce the
// static transaction information, one second run (ICD+PCD, filtered)
// confirms the violations — and compares the modelled cost of every
// configuration, reproducing the paper's headline performance claims in
// miniature.
package main

import (
	"fmt"
	"log"

	"doublechecker/internal/core"
	"doublechecker/internal/cost"
	"doublechecker/internal/spec"
	"doublechecker/internal/vm"
	"doublechecker/internal/workloads"
)

func main() {
	built, err := workloads.Build("tsp", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	prog := built.Prog
	sp := spec.Initial(prog)
	if err := sp.ExcludeByName(built.InitialExclusions...); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== multi-run mode: first runs (ICD only, no logging) ==")
	var firsts []*core.Result
	for i := 0; i < 10; i++ {
		res, err := core.Run(prog, core.Config{
			Analysis: core.DCFirst,
			Sched:    vm.NewSticky(int64(i), built.Stickiness),
			Atomic:   sp.Atomic,
		})
		if err != nil {
			log.Fatal(err)
		}
		firsts = append(firsts, res)
	}
	filter := core.UnionFilter(firsts)
	fmt.Printf("union of 10 first runs: %d method(s) implicated, unary accesses implicated: %v\n",
		len(filter.Methods), filter.Unary)
	for m := range filter.Methods {
		fmt.Printf("  monitored in second run: %s\n", prog.MethodName(m))
	}

	fmt.Println("\n== second run (ICD+PCD on the filtered subset) ==")
	second, err := core.Run(prog, core.Config{
		Analysis: core.DCSecond,
		Sched:    vm.NewSticky(99, built.Stickiness),
		Atomic:   sp.Atomic,
		Filter:   filter,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second run: %d violations, blamed %v\n",
		len(second.Violations), second.BlamedMethodNames(prog))

	fmt.Println("\n== modelled cost of each configuration (same schedule) ==")
	for _, a := range []core.Analysis{
		core.Velodrome, core.DCSingle, core.DCFirst, core.DCSecond,
	} {
		base := cost.NewMeter(cost.Default())
		if _, err := core.Run(prog, core.Config{
			Analysis: core.Baseline, Sched: vm.NewSticky(7, built.Stickiness),
			Atomic: sp.Atomic, Meter: base,
		}); err != nil {
			log.Fatal(err)
		}
		meter := cost.NewMeter(cost.Default())
		cfg := core.Config{
			Analysis: a, Sched: vm.NewSticky(7, built.Stickiness),
			Atomic: sp.Atomic, Meter: meter,
		}
		if a == core.DCSecond {
			cfg.Filter = filter
		}
		if _, err := core.Run(prog, cfg); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22v %.2fx normalized execution time\n", a, meter.Report().Normalized(base.Total()))
	}
	fmt.Println("\nThe first run is the cheapest (no logging), the second run beats")
	fmt.Println("single-run mode (filtered instrumentation), and every DoubleChecker")
	fmt.Println("configuration beats Velodrome — the paper's Figure 7 in miniature.")
}
