package crosscheck

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"doublechecker/internal/core"
	"doublechecker/internal/trace"
	"doublechecker/internal/vm"
	"doublechecker/internal/workloads"
)

// tinyrace returns the tinyrace source and the ID of its atomic "inc" method.
func tinyrace(t *testing.T) (Source, vm.MethodID) {
	t.Helper()
	for _, tp := range workloads.Tiny() {
		if tp.Name != "tinyrace" {
			continue
		}
		for _, m := range tp.Prog.Methods {
			if m.Name == "inc" {
				return Source{Name: tp.Name, Prog: tp.Prog, Atomic: tp.Atomic}, m.ID
			}
		}
	}
	t.Fatal("tinyrace/inc not found in the tiny corpus")
	return Source{}, 0
}

// buggyVeloDisagreement models an injected checker bug: a hypothetical
// Velodrome that never blames "inc". The two checkers then disagree exactly
// when DoubleChecker blames inc, so that is the failure the shrinker must
// preserve.
func buggyVeloDisagreement(ctx context.Context, inc vm.MethodID) Predicate {
	return func(d *trace.Data) bool {
		res, err := core.RunTrace(ctx, d, core.Config{Analysis: core.DCSingle})
		return err == nil && res.BlamedMethods[inc]
	}
}

// findDisagreeingTrace records tinyrace under the random scheduler at
// increasing seeds until the injected disagreement fires. The seed walk is
// deterministic, so the same trace is found every run.
func findDisagreeingTrace(t *testing.T, ctx context.Context, src Source, pred Predicate) (*trace.Data, int64) {
	t.Helper()
	sched := DefaultSchedulers()[0]
	for seed := int64(1); seed <= 64; seed++ {
		d, err := Record(ctx, src, seed, sched, 1<<14)
		if err != nil {
			t.Fatalf("record seed %d: %v", seed, err)
		}
		if pred(d) {
			return d, seed
		}
	}
	t.Fatal("no seed in 1..64 produced the injected disagreement")
	return nil, 0
}

// TestShrinkInjectedDisagreement is the acceptance check for the shrinker:
// an injected, seeded checker disagreement on tinyrace must minimize to at
// most 8 events, and the written repro must replay deterministically while
// still exhibiting the failure.
func TestShrinkInjectedDisagreement(t *testing.T) {
	ctx := context.Background()
	src, inc := tinyrace(t)
	pred := buggyVeloDisagreement(ctx, inc)
	d, seed := findDisagreeingTrace(t, ctx, src, pred)
	t.Logf("disagreement at seed %d with %d events", seed, len(d.Events))

	small := Shrink(d, pred)
	if !pred(small) {
		t.Fatal("shrunk trace no longer exhibits the failure")
	}
	if len(small.Events) > 8 {
		t.Fatalf("shrunk to %d events, want <= 8", len(small.Events))
	}
	t.Logf("shrunk %d -> %d events", len(d.Events), len(small.Events))

	path := filepath.Join(t.TempDir(), "tinyrace_injected.dct")
	if err := WriteRepro(small, path, "injected buggy-velodrome disagreement (test)"); err != nil {
		t.Fatalf("write repro: %v", err)
	}
	back, err := trace.ReadFile(path)
	if err != nil {
		t.Fatalf("re-read repro: %v", err)
	}
	if !pred(back) {
		t.Fatal("repro round-trip lost the failure")
	}
	// Deterministic replay: two independent replays must render identically.
	r1, err := core.RunTrace(ctx, back, core.Config{Analysis: core.DCSingle})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.RunTrace(ctx, back, core.Config{Analysis: core.DCSingle})
	if err != nil {
		t.Fatal(err)
	}
	rep1 := core.ReplayReport("repro", back, r1)
	rep2 := core.ReplayReport("repro", back, r2)
	if rep1 != rep2 {
		t.Fatalf("repro replay is not deterministic:\n%s\n---\n%s", rep1, rep2)
	}
}

// TestShrinkReturnsInputWhenPredicateFails: a predicate that never holds must
// leave the trace untouched.
func TestShrinkReturnsInputWhenPredicateFails(t *testing.T) {
	ctx := context.Background()
	src, _ := tinyrace(t)
	d, err := Record(ctx, src, 1, DefaultSchedulers()[0], 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	out := Shrink(d, func(*trace.Data) bool { return false })
	if out != d {
		t.Fatal("Shrink modified a trace whose predicate never held")
	}
}

// TestGuardPredicateSwallowsPanics: a panicking checker counts as "not the
// same failure", never as a shrinker crash.
func TestGuardPredicateSwallowsPanics(t *testing.T) {
	p := GuardPredicate(func(*trace.Data) bool { panic("checker crash") })
	if p(nil) {
		t.Fatal("panicking predicate reported true")
	}
}

// TestReproCorpusReplays replays every committed repro in testdata/repros
// through DoubleChecker twice and requires byte-identical reports: a repro
// that does not replay deterministically is useless for debugging.
func TestReproCorpusReplays(t *testing.T) {
	ctx := context.Background()
	paths, err := filepath.Glob("../../testdata/repros/*.dct")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed repros found; testdata/repros must hold at least the example repro")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			d, err := trace.ReadFile(path)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			var reports []string
			for i := 0; i < 2; i++ {
				res, err := core.RunTrace(ctx, d, core.Config{Analysis: core.DCSingle})
				if err != nil {
					t.Fatalf("replay %d: %v", i, err)
				}
				reports = append(reports, core.ReplayReport(filepath.Base(path), d, res))
			}
			if reports[0] != reports[1] {
				t.Fatalf("nondeterministic replay:\n%s\n---\n%s", reports[0], reports[1])
			}
		})
	}
}

// TestRegenExampleRepro regenerates the committed example repro. Gated behind
// REGEN_REPROS=1 so normal runs never rewrite testdata; run it after changing
// the trace format, the tiny corpus, or the shrinker.
func TestRegenExampleRepro(t *testing.T) {
	if os.Getenv("REGEN_REPROS") != "1" {
		t.Skip("set REGEN_REPROS=1 to regenerate testdata/repros")
	}
	ctx := context.Background()
	src, inc := tinyrace(t)
	pred := buggyVeloDisagreement(ctx, inc)
	d, seed := findDisagreeingTrace(t, ctx, src, pred)
	small := Shrink(d, pred)
	path := "../../testdata/repros/tinyrace_random_seed_example.dct"
	prov := fmt.Sprintf("crosscheck shrink example: tinyrace under random scheduler seed %d, minimized to %d events (injected buggy-velodrome oracle)", seed, len(small.Events))
	if err := WriteRepro(small, path, prov); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d events)", path, len(small.Events))
}
