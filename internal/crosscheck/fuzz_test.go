package crosscheck

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"doublechecker/internal/core"
	"doublechecker/internal/trace"
)

// FuzzICDOverApprox fuzzes the paper's §3 soundness theorem at the trace
// level: for any decodable trace, every method DoubleChecker's precise pass
// blames must appear in the cycles ICD's imprecise pass reports — ICD is an
// over-approximation, never an under-approximation. Seeds are the raw bytes
// of the golden corpus; the fuzzer mutates frames, headers, and event
// payloads from there. Undecodable inputs are the reader's problem (covered
// by its own fuzzing) and are skipped here.
func FuzzICDOverApprox(f *testing.F) {
	paths, err := filepath.Glob("../../testdata/traces/*.dct")
	if err != nil || len(paths) == 0 {
		f.Fatalf("golden corpus not found: %v (%d files)", err, len(paths))
	}
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		if len(raw) > 1<<18 {
			continue // keep the seed corpus small; big traces add little
		}
		f.Add(raw)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 1<<20 {
			t.Skip("oversized input")
		}
		d, err := trace.Read(bytes.NewReader(raw))
		if err != nil {
			t.Skip()
		}
		// Mutated headers can declare arbitrarily large programs; the
		// checkers allocate proportionally (per-object metadata, per-thread
		// clocks), so bound the decoded shape rather than the input bytes.
		prog := d.Header.Program
		if prog.NumObjects > 1<<12 || len(prog.Threads) > 64 ||
			len(prog.Methods) > 1<<10 || len(d.Events) > 1<<16 {
			t.Skip("oversized decoded program")
		}
		ctx := context.Background()
		dc, err := core.RunTrace(ctx, d, core.Config{Analysis: core.DCSingle})
		if err != nil {
			t.Skip()
		}
		first, err := core.RunTrace(ctx, d, core.Config{Analysis: core.DCFirst})
		if err != nil {
			t.Skip()
		}
		for m := range dc.BlamedMethods {
			if _, ok := first.StaticMethods[m]; !ok {
				t.Fatalf("soundness breach: precise pass blamed method %d (%s) but ICD's cycle set does not contain it",
					m, d.Header.Program.MethodName(m))
			}
		}
	})
}
