package crosscheck

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"doublechecker/internal/trace"
	"doublechecker/internal/workloads"
)

// TestExploreSweep runs the budgeted triple sweep and requires every oracle
// to pass. CI raises the budget to >= 500 via CROSSCHECK_TRIPLES; the
// default keeps `go test ./...` quick.
func TestExploreSweep(t *testing.T) {
	budget := 66
	if s := os.Getenv("CROSSCHECK_TRIPLES"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("CROSSCHECK_TRIPLES=%q: %v", s, err)
		}
		budget = v
	}
	rep, err := Explore(context.Background(), Options{Budget: budget})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if rep.Triples != budget {
		t.Fatalf("explored %d triples, want %d", rep.Triples, budget)
	}
	for _, f := range rep.Failures {
		t.Errorf("oracle failure on %s: agree=%v det=%v only-dc=%v only-velo=%v icd-missed=%v %s",
			f.Triple, f.Agree, f.Deterministic, f.OnlyDC, f.OnlyVelo, f.ICDMissed, f.DetDiag)
	}
	if rep.Agreed != rep.Triples || rep.Deterministic != rep.Triples {
		t.Fatalf("agreed %d / deterministic %d of %d", rep.Agreed, rep.Deterministic, rep.Triples)
	}
	// The sweep must actually exercise violating executions — an all-quiet
	// corpus would make the oracles vacuous.
	if rep.WithViolations == 0 {
		t.Fatal("no explored triple produced a violation; the sweep is vacuous")
	}
	t.Logf("%s (%d with violations)", rep.Summary(), rep.WithViolations)
}

// TestExplorePlanDeterministic: the same options must enumerate the same
// triples and verdicts (this is what makes BENCH_crosscheck byte-stable).
func TestExplorePlanDeterministic(t *testing.T) {
	opts := Options{Budget: 12}
	a, err := Explore(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatalf("two identical sweeps diverged:\n%+v\n%+v", a, b)
	}
}

// TestEnumerateTinyCorpus exhaustively walks every interleaving of every
// tiny program and checks all four oracles on each one. For these programs
// the soundness and precision theorems are verified over the *entire*
// schedule space, not a sample.
func TestEnumerateTinyCorpus(t *testing.T) {
	ctx := context.Background()
	wantInterleavings := map[string]uint64{
		// tinyrace is the 2-thread/4-op program: 4!/(2!2!) = 6 interleavings.
		"tinyrace": 6,
		"tinypair": 6,
		// tinylock: lock contention prunes the schedule tree — once a thread
		// holds the lock the other is runnable only to attempt-and-block
		// (one step), then leaves the runnable set until the release. Per
		// leader: the follower blocks after the leader's acquire, read, or
		// write, or never contends = 4 shapes; 2 leaders = 8 interleavings.
		"tinylock": 8,
		// tinydisjoint: 3 threads x 2 ops = 6!/(2!2!2!) = 90.
		"tinydisjoint": 90,
	}
	for _, tp := range workloads.Tiny() {
		tp := tp
		t.Run(tp.Name, func(t *testing.T) {
			rep, err := Enumerate(ctx, Source{Name: tp.Name, Prog: tp.Prog, Atomic: tp.Atomic},
				64, 0, []int{0, 2})
			if err != nil {
				t.Fatalf("enumerate: %v", err)
			}
			if rep.Truncated {
				t.Fatal("enumeration truncated on a tiny program")
			}
			if want, ok := wantInterleavings[tp.Name]; ok && rep.Interleavings != want {
				t.Fatalf("enumerated %d interleavings, want %d", rep.Interleavings, want)
			}
			if rep.Agreed != rep.Interleavings || rep.Deterministic != rep.Interleavings {
				t.Fatalf("oracles failed: %d agreed, %d deterministic of %d interleavings",
					rep.Agreed, rep.Deterministic, rep.Interleavings)
			}
			if tp.MayViolate && rep.WithViolations == 0 {
				t.Fatalf("%s can violate atomicity but no interleaving did", tp.Name)
			}
			if !tp.MayViolate && rep.WithViolations != 0 {
				t.Fatalf("%s is violation-free but %d interleavings violated", tp.Name, rep.WithViolations)
			}
			t.Logf("%s: %d interleavings, %d with violations, all oracles passed",
				tp.Name, rep.Interleavings, rep.WithViolations)
		})
	}
}

// TestCheckTripleAcrossSchedulers smoke-checks each scheduler constructor
// end to end on one rich workload.
func TestCheckTripleAcrossSchedulers(t *testing.T) {
	ctx := context.Background()
	prog, atomic := workloads.RandomRich(7)
	src := Source{Name: prog.Name, Prog: prog, Atomic: atomic}
	opts, err := Options{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range DefaultSchedulers() {
		r, d, err := CheckTriple(ctx, src, 42, sched, opts)
		if err != nil {
			t.Fatalf("%s: %v", sched.Name, err)
		}
		if d == nil || r.Events == 0 {
			t.Fatalf("%s: empty trace", sched.Name)
		}
		if !r.OK() {
			t.Fatalf("%s: oracle failure: %+v", sched.Name, r)
		}
		if d.Header.Sched != sched.Name {
			t.Fatalf("trace header records scheduler %q, want %q", d.Header.Sched, sched.Name)
		}
	}
}

// TestGoldenCorpusOracles runs all four oracles on every committed golden
// trace: the frozen interleavings must satisfy soundness, precision, and
// pool determinism just like freshly explored ones.
func TestGoldenCorpusOracles(t *testing.T) {
	ctx := context.Background()
	paths, err := filepath.Glob("../../testdata/traces/*.dct")
	if err != nil || len(paths) == 0 {
		t.Fatalf("golden corpus not found: %v (%d files)", err, len(paths))
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			d, err := trace.ReadFile(path)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			r, err := CheckData(ctx, d, []int{0, 2, 4})
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if !r.OK() {
				t.Fatalf("oracle failure: agree=%v det=%v only-dc=%v only-velo=%v icd-missed=%v %s",
					r.Agree, r.Deterministic, r.OnlyDC, r.OnlyVelo, r.ICDMissed, r.DetDiag)
			}
		})
	}
}
