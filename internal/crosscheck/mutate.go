// Metamorphic trace transforms: rewritings of a recorded trace that a sound
// and precise checker's verdict must be invariant under. Each transform
// produces a structurally valid trace of a (possibly rewritten) program; the
// golden-corpus invariance tests replay the original and the mutant through
// core.DiffTrace and require identical blamed-method verdicts.

package crosscheck

import (
	"fmt"
	"math/rand"
	"sort"

	"doublechecker/internal/trace"
	"doublechecker/internal/vm"
)

// PermuteThreads renames thread IDs by perm (new ID = perm[old ID]) across
// the whole trace: thread declarations, fork/join targets in method bodies,
// event thread fields, blocked sets, and the synthesized per-thread handle
// objects. The result is the isomorphic execution of the isomorphic program,
// so every checker's blamed-method verdict must be unchanged.
func PermuteThreads(d *trace.Data, perm []int) (*trace.Data, error) {
	prog := d.Header.Program
	n := len(prog.Threads)
	if len(perm) != n {
		return nil, fmt.Errorf("crosscheck: perm length %d, program has %d threads", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("crosscheck: %v is not a permutation of %d threads", perm, n)
		}
		seen[p] = true
	}

	mapThread := func(t vm.ThreadID) vm.ThreadID { return vm.ThreadID(perm[t]) }
	mapObj := func(o vm.ObjectID) vm.ObjectID {
		if int(o) >= prog.NumObjects { // a thread handle object
			return vm.ObjectID(prog.NumObjects + perm[int(o)-prog.NumObjects])
		}
		return o
	}

	np := &vm.Program{
		Name:       prog.Name + "-perm",
		Methods:    make([]*vm.Method, len(prog.Methods)),
		Threads:    make([]vm.ThreadDecl, n),
		NumObjects: prog.NumObjects,
		ArrayLens:  prog.ArrayLens,
	}
	for i, m := range prog.Methods {
		nm := &vm.Method{ID: m.ID, Name: m.Name, Body: make([]vm.Op, len(m.Body))}
		copy(nm.Body, m.Body)
		for j, op := range nm.Body {
			if op.Kind == vm.OpFork || op.Kind == vm.OpJoin {
				nm.Body[j].Target = int32(perm[op.Target])
			}
		}
		np.Methods[i] = nm
	}
	for _, td := range prog.Threads {
		nid := mapThread(td.ID)
		np.Threads[nid] = vm.ThreadDecl{ID: nid, Entry: td.Entry, AutoStart: td.AutoStart}
	}
	if err := np.Validate(); err != nil {
		return nil, fmt.Errorf("crosscheck: permuted program invalid: %w", err)
	}

	nd := &trace.Data{
		Header:   d.Header,
		Events:   make([]trace.Event, len(d.Events)),
		Counts:   d.Counts,
		Complete: d.Complete,
	}
	nd.Header.Program = np
	for i, ev := range d.Events {
		ne := ev
		switch ev.Kind {
		case trace.EvThreadStart, trace.EvThreadExit, trace.EvTxBegin, trace.EvTxEnd:
			ne.Thread = mapThread(ev.Thread)
		case trace.EvAccess:
			ne.Access.Thread = mapThread(ev.Access.Thread)
			ne.Access.Obj = mapObj(ev.Access.Obj)
		case trace.EvBlockedSet:
			ne.Blocked = make([]vm.ThreadID, len(ev.Blocked))
			for j, t := range ev.Blocked {
				ne.Blocked[j] = mapThread(t)
			}
			sort.Slice(ne.Blocked, func(a, b int) bool { return ne.Blocked[a] < ne.Blocked[b] })
		}
		nd.Events[i] = ne
	}
	return nd, nil
}

// ReverseThreads is PermuteThreads with the reversing permutation — the
// default mutation used by the invariance tests.
func ReverseThreads(d *trace.Data) (*trace.Data, error) {
	n := len(d.Header.Program.Threads)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = n - 1 - i
	}
	return PermuteThreads(d, perm)
}

// SwapCommutative swaps up to n adjacent event pairs that commute: both are
// data (non-synchronization) accesses, by different threads, to different
// objects. Such a swap preserves each thread's program order, the
// synchronization order, and every per-object access order — only the
// interleaving of independent operations changes — so the transactional
// dependence graph, and with it every checker's verdict, is untouched. The
// two events exchange positions and clock values, keeping the access clock
// strictly ascending. Pairs are chosen by a seeded walk; the number of swaps
// actually applied is returned.
func SwapCommutative(d *trace.Data, seed int64, n int) (*trace.Data, int) {
	nd := &trace.Data{
		Header:   d.Header,
		Events:   make([]trace.Event, len(d.Events)),
		Counts:   d.Counts,
		Complete: d.Complete,
	}
	copy(nd.Events, d.Events)
	rng := rand.New(rand.NewSource(seed))
	swapped := 0
	for attempts := 0; swapped < n && attempts < 16*n; attempts++ {
		if len(nd.Events) < 2 {
			break
		}
		i := rng.Intn(len(nd.Events) - 1)
		a, b := nd.Events[i], nd.Events[i+1]
		if !commutes(a, b) {
			continue
		}
		a.Access.Seq, b.Access.Seq = b.Access.Seq, a.Access.Seq
		nd.Events[i], nd.Events[i+1] = b, a
		swapped++
	}
	return nd, swapped
}

// commutes reports whether two adjacent events may be exchanged without
// changing any order a checker observes: both must be plain data accesses
// (field or array — synchronization accesses order threads), from different
// threads (program order is sacred), on different objects (per-object access
// order is what dependence edges are built from; object granularity, so
// distinct fields of one object stay ordered too).
func commutes(a, b trace.Event) bool {
	if a.Kind != trace.EvAccess || b.Kind != trace.EvAccess {
		return false
	}
	ax, bx := a.Access, b.Access
	if ax.Class == vm.ClassSync || bx.Class == vm.ClassSync {
		return false
	}
	return ax.Thread != bx.Thread && ax.Obj != bx.Obj
}

// RenameMethods rewrites every method name to a fresh, deterministic name
// (the ID stays, so the ID-based atomicity specification is untouched). A
// checker's verdict must be the same violations modulo the renaming; the
// invariance tests compare blamed-method ID sets, which renaming cannot
// move.
func RenameMethods(d *trace.Data) *trace.Data {
	prog := d.Header.Program
	np := &vm.Program{
		Name:       prog.Name + "-renamed",
		Methods:    make([]*vm.Method, len(prog.Methods)),
		Threads:    prog.Threads,
		NumObjects: prog.NumObjects,
		ArrayLens:  prog.ArrayLens,
	}
	for i, m := range prog.Methods {
		np.Methods[i] = &vm.Method{
			ID:   m.ID,
			Name: fmt.Sprintf("renamed_%03d", m.ID),
			Body: m.Body,
		}
	}
	nd := *d
	nd.Header.Program = np
	return &nd
}
