package crosscheck

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"doublechecker/internal/core"
	"doublechecker/internal/trace"
	"doublechecker/internal/vm"
)

// Predicate reports whether a candidate trace still exhibits the failure
// being minimized. Shrink only keeps a deletion when the predicate still
// holds on the repaired candidate.
type Predicate func(d *trace.Data) bool

// GuardPredicate wraps p so that a panic inside a checker counts as "not the
// same failure": the shrinker is allowed to propose structurally odd traces,
// and a crash on one of them must not be confused with the oracle failure
// under reduction.
func GuardPredicate(p Predicate) Predicate {
	return func(d *trace.Data) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		return p(d)
	}
}

// Shrink minimizes d's event list with delta debugging while pred keeps
// holding: whole-thread removal first, then chunk removal at halving
// granularity down to single events. Every candidate is repaired to a
// well-formed stream (thread starts present, transactions paired) before the
// predicate sees it, so the result is a standalone replayable trace. The
// input trace is returned unchanged if pred does not hold on it.
func Shrink(d *trace.Data, pred Predicate) *trace.Data {
	pred = GuardPredicate(pred)
	cur := repair(d, d.Events)
	if !pred(cur) {
		return d
	}

	// Pass 1: drop entire threads.
	for t := 0; t < len(d.Header.Program.Threads); t++ {
		var kept []trace.Event
		for _, ev := range cur.Events {
			if threadOf(ev) == vm.ThreadID(t) {
				continue
			}
			kept = append(kept, ev)
		}
		if len(kept) == len(cur.Events) {
			continue
		}
		if cand := repair(d, kept); pred(cand) {
			cur = cand
		}
	}

	// Pass 2: ddmin-style chunk removal, iterated to a fixpoint.
	for {
		before := len(cur.Events)
		for chunk := len(cur.Events) / 2; chunk >= 1; chunk /= 2 {
			for start := 0; start < len(cur.Events); {
				end := start + chunk
				if end > len(cur.Events) {
					end = len(cur.Events)
				}
				kept := make([]trace.Event, 0, len(cur.Events)-(end-start))
				kept = append(kept, cur.Events[:start]...)
				kept = append(kept, cur.Events[end:]...)
				// Accept only strictly smaller candidates: repair may
				// re-insert what was deleted (a thread start, a closing
				// TxEnd), and keeping an equal-sized candidate at the same
				// offset would loop forever.
				if cand := repair(d, kept); len(cand.Events) < len(cur.Events) && pred(cand) {
					cur = cand // retry the same offset: events shifted left
				} else {
					start = end
				}
			}
		}
		if len(cur.Events) == before {
			return cur
		}
	}
}

// threadOf returns the thread an event belongs to, or -1 for thread-less
// events (blocked-set, program-end).
func threadOf(ev trace.Event) vm.ThreadID {
	switch ev.Kind {
	case trace.EvThreadStart, trace.EvThreadExit, trace.EvTxBegin, trace.EvTxEnd:
		return ev.Thread
	case trace.EvAccess:
		return ev.Access.Thread
	}
	return -1
}

// repair rebuilds a well-formed trace from an arbitrary subsequence of d's
// events: blocked-set and program-end events are dropped (the candidate is a
// partial execution), a thread start is inserted before a thread's first
// surviving event, unmatched transaction ends are dropped, and transactions
// left open are closed at the end of the stream. Deletion preserves the
// strictly ascending access clock, so the result encodes and replays.
func repair(d *trace.Data, events []trace.Event) *trace.Data {
	n := len(d.Header.Program.Threads)
	started := make([]bool, n)
	inTx := make([]bool, n)
	txMethod := make([]vm.MethodID, n)
	out := make([]trace.Event, 0, len(events)+n)
	for _, ev := range events {
		switch ev.Kind {
		case trace.EvBlockedSet, trace.EvProgramEnd:
			continue
		}
		t := threadOf(ev)
		if ev.Kind == trace.EvThreadStart {
			if started[t] {
				continue // duplicate start
			}
			started[t] = true
			out = append(out, ev)
			continue
		}
		if !started[t] {
			out = append(out, trace.Event{Kind: trace.EvThreadStart, Thread: t})
			started[t] = true
		}
		switch ev.Kind {
		case trace.EvTxBegin:
			if inTx[t] {
				continue // nested begins are never recorded; drop strays
			}
			inTx[t] = true
			txMethod[t] = ev.Method
		case trace.EvTxEnd:
			if !inTx[t] {
				continue
			}
			inTx[t] = false
			ev.Method = txMethod[t]
		}
		out = append(out, ev)
	}
	for t := 0; t < n; t++ {
		if inTx[t] {
			out = append(out, trace.Event{Kind: trace.EvTxEnd, Thread: vm.ThreadID(t), Method: txMethod[t]})
		}
	}
	nd := &trace.Data{Header: d.Header, Events: out, Counts: tally(out), Complete: false}
	return nd
}

// tally recomputes the per-kind event counts of a rebuilt stream.
func tally(events []trace.Event) vm.EventCounts {
	var c vm.EventCounts
	for _, ev := range events {
		switch ev.Kind {
		case trace.EvThreadStart:
			c.ThreadStarts++
		case trace.EvThreadExit:
			c.ThreadExits++
		case trace.EvTxBegin:
			c.TxBegins++
		case trace.EvTxEnd:
			c.TxEnds++
		case trace.EvAccess:
			switch ev.Access.Class {
			case vm.ClassField:
				c.FieldAccesses++
			case vm.ClassArray:
				c.ArrayAccesses++
			default:
				c.SyncAccesses++
			}
		}
	}
	return c
}

// WriteRepro encodes a (typically shrunk) trace as a standalone .dct file:
// the full program and specification are embedded, so the repro replays with
// no other inputs. The header's source notes the provenance.
func WriteRepro(d *trace.Data, path, provenance string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	hdr := d.Header
	hdr.Source = provenance
	w, err := trace.NewWriter(f, trace.Header{
		Program: hdr.Program,
		Atomic:  append([]vm.MethodID(nil), hdr.Atomic...),
		Seed:    hdr.Seed,
		Sched:   hdr.Sched,
		Source:  provenance,
	})
	if err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	for _, ev := range d.Events {
		switch ev.Kind {
		case trace.EvThreadStart:
			w.ThreadStart(ev.Thread)
		case trace.EvThreadExit:
			w.ThreadExit(ev.Thread)
		case trace.EvTxBegin:
			w.TxBegin(ev.Thread, ev.Method)
		case trace.EvTxEnd:
			w.TxEnd(ev.Thread, ev.Method)
		case trace.EvAccess:
			w.Access(ev.Access)
		case trace.EvBlockedSet:
			w.BlockedSet(ev.Blocked)
		case trace.EvProgramEnd:
			w.ProgramEnd()
		}
	}
	if err := w.Close(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}

// shrinkAndWrite minimizes a failing triple's trace against "the same oracle
// still fails" and writes the repro into opts.ReproDir.
func shrinkAndWrite(ctx context.Context, d *trace.Data, r TripleResult, opts Options) (string, int, error) {
	pred := FailurePredicate(ctx, r, opts.PCDWorkers)
	small := Shrink(d, pred)
	name := fmt.Sprintf("%s_%s_seed%d.dct", sanitize(r.Source), sanitize(r.Sched), r.Seed)
	path := filepath.Join(opts.ReproDir, name)
	prov := fmt.Sprintf("crosscheck shrink of %s (%s)", r.Triple, failureKind(r))
	if err := WriteRepro(small, path, prov); err != nil {
		return "", 0, err
	}
	return path, len(small.Events), nil
}

// FailurePredicate builds the shrinker predicate matching r's failure kind:
// an agreement failure must still disagree, a determinism failure must still
// diverge.
func FailurePredicate(ctx context.Context, r TripleResult, pcdWorkers []int) Predicate {
	if !r.Agree {
		return func(d *trace.Data) bool {
			td, err := core.DiffTrace(ctx, d)
			return err == nil && !td.Agree()
		}
	}
	return func(d *trace.Data) bool {
		ok, _, err := CheckDeterminism(ctx, d, pcdWorkers)
		return err == nil && !ok
	}
}

func failureKind(r TripleResult) string {
	if !r.Agree {
		return "checker disagreement"
	}
	return "determinism divergence: " + r.DetDiag
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, s)
}
