// Package crosscheck is the systematic schedule-exploration and
// differential-testing harness: it hunts for executions on which this
// repository's checkers disagree with each other or with their own
// determinism contract, and shrinks any counterexample to a minimal
// standalone trace.
//
// Four oracles are checked on every explored execution:
//
//  1. Soundness containment (paper §3): every method blamed by a precise
//     checker appears in ICD's imprecise-cycle over-approximation
//     (core.TraceDiff.ICDMissed empty).
//  2. Precision equivalence (paper §5): DoubleChecker's single-run verdict
//     equals the sound-and-precise Velodrome verdict at blamed-method
//     granularity (core.TraceDiff.OnlyDC / OnlyVelo empty).
//  3. Determinism: the rendered replay report, the deterministic telemetry
//     snapshot, and the violation signatures are byte-identical for every
//     PCD worker count.
//  4. Engine agreement: ICD's scan and incremental detection engines render
//     byte-identical reports and violation signatures (they may do different
//     amounts of work, never find different things).
//
// Executions come from three exploration modes: a budgeted sweep of
// (workload, seed, scheduler) triples over the workload generators; random
// schedulers augmented with a PCT priority scheduler (vm.NewPCT); and
// exhaustive interleaving enumeration (vm.Enumerator) of the tiny corpus,
// where the oracles are checked on *every* interleaving.
package crosscheck

import (
	"bytes"
	"context"
	"fmt"
	"sort"

	"doublechecker/internal/core"
	"doublechecker/internal/icd"
	"doublechecker/internal/spec"
	"doublechecker/internal/trace"
	"doublechecker/internal/vm"
	"doublechecker/internal/workloads"
)

// NamedScheduler couples a scheduler constructor with the stable name that
// identifies it in triples, trace headers, and reports.
type NamedScheduler struct {
	Name string
	New  func(seed int64) vm.Scheduler
}

// pctHorizon is the step horizon PCT change points are sampled from; it
// comfortably covers every workload the harness generates.
const pctHorizon = 1 << 14

// DefaultSchedulers returns the harness's scheduler pool: uniform random,
// sticky random (realistic quantum-style preemption), and PCT with three
// priority-change points (adversarial targeted preemption).
func DefaultSchedulers() []NamedScheduler {
	return []NamedScheduler{
		{Name: "random", New: func(seed int64) vm.Scheduler { return vm.NewRandom(seed) }},
		{Name: "sticky(0.1)", New: func(seed int64) vm.Scheduler { return vm.NewSticky(seed, 0.1) }},
		{Name: "pct(3)", New: func(seed int64) vm.Scheduler { return vm.NewPCT(seed, 3, pctHorizon) }},
	}
}

// Source is one program the harness can execute: a workload plus its
// atomicity specification.
type Source struct {
	Name   string
	Prog   *vm.Program
	Atomic func(vm.MethodID) bool
}

// DefaultSources assembles the harness's workload pool: the tiny enumerable
// corpus, randN Random and richN RandomRich generated programs, and the
// named registry workloads (micros and stress generators) built at scale.
func DefaultSources(randN, richN int, micros []string, scale float64) ([]Source, error) {
	var out []Source
	for _, tp := range workloads.Tiny() {
		out = append(out, Source{Name: tp.Name, Prog: tp.Prog, Atomic: tp.Atomic})
	}
	for i := 0; i < randN; i++ {
		prog, atomic := workloads.Random(int64(1000 + i))
		out = append(out, Source{Name: prog.Name, Prog: prog, Atomic: atomic})
	}
	for i := 0; i < richN; i++ {
		prog, atomic := workloads.RandomRich(int64(2000 + i))
		out = append(out, Source{Name: prog.Name, Prog: prog, Atomic: atomic})
	}
	for _, name := range micros {
		b, err := workloads.Build(name, scale)
		if err != nil {
			return nil, err
		}
		sp := spec.Initial(b.Prog)
		if err := sp.ExcludeByName(b.InitialExclusions...); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, Source{Name: name, Prog: b.Prog, Atomic: sp.Atomic})
	}
	return out, nil
}

// Options configures an exploration sweep.
type Options struct {
	// Sources is the workload pool (default: DefaultSources(4, 3, nil, 0)).
	Sources []Source
	// Schedulers is the scheduler pool (default: DefaultSchedulers()).
	Schedulers []NamedScheduler
	// Budget is how many (workload, seed, scheduler) triples to explore
	// (default 60). The plan is deterministic: triple i pairs source
	// i%len(Sources) with scheduler (i/len(Sources))%len(Schedulers) and
	// seed SeedBase + i/(len(Sources)*len(Schedulers)), so any budget yields
	// distinct, reproducible triples.
	Budget int
	// SeedBase is the first schedule seed (default 1).
	SeedBase int64
	// PCDWorkers are the worker counts the determinism oracle compares; the
	// first entry is the reference (default 0, 2, 4).
	PCDWorkers []int
	// MaxSteps bounds each recorded execution (0: vm default).
	MaxSteps uint64
	// ReproDir, when non-empty, receives a shrunk standalone .dct repro for
	// every oracle failure.
	ReproDir string
}

func (o Options) withDefaults() (Options, error) {
	if len(o.Sources) == 0 {
		srcs, err := DefaultSources(4, 3, nil, 0)
		if err != nil {
			return o, err
		}
		o.Sources = srcs
	}
	if len(o.Schedulers) == 0 {
		o.Schedulers = DefaultSchedulers()
	}
	if o.Budget == 0 {
		o.Budget = 60
	}
	if o.SeedBase == 0 {
		o.SeedBase = 1
	}
	if len(o.PCDWorkers) == 0 {
		o.PCDWorkers = []int{0, 2, 4}
	}
	return o, nil
}

// Triple identifies one explored execution.
type Triple struct {
	Source string `json:"source"`
	Sched  string `json:"sched"`
	Seed   int64  `json:"seed"`
}

func (t Triple) String() string {
	return fmt.Sprintf("%s/%s/seed=%d", t.Source, t.Sched, t.Seed)
}

// TripleResult is one explored execution's oracle verdicts.
type TripleResult struct {
	Triple
	// Events is the recorded execution's event count.
	Events uint64 `json:"events"`
	// Violations is DoubleChecker's single-run violation count.
	Violations int `json:"violations"`
	// Agree reports oracles 1 and 2: ICD containment held and
	// DC ≡ Velodrome at blamed-method granularity.
	Agree bool `json:"agree"`
	// Deterministic reports oracle 3: report bytes, deterministic telemetry,
	// and violation signatures identical across all PCD worker counts.
	Deterministic bool `json:"deterministic"`
	// OnlyDC, OnlyVelo and ICDMissed carry the disagreement detail when
	// Agree is false (see core.TraceDiff).
	OnlyDC    []string `json:"only_dc,omitempty"`
	OnlyVelo  []string `json:"only_velo,omitempty"`
	ICDMissed []string `json:"icd_missed,omitempty"`
	// DetDiag names what diverged when Deterministic is false.
	DetDiag string `json:"det_diag,omitempty"`
	// EngineAgree reports oracle 4: scan and incremental ICD engines agree
	// byte for byte.
	EngineAgree bool `json:"engine_agree"`
	// EngineDiag names what diverged when EngineAgree is false.
	EngineDiag string `json:"engine_diag,omitempty"`
}

// OK reports whether every oracle passed.
func (r TripleResult) OK() bool { return r.Agree && r.Deterministic && r.EngineAgree }

// Record executes src once under the named scheduler and seed, teeing the
// event stream into an in-memory trace, and returns the decoded trace. The
// live run uses the Baseline analysis: recording is the only job; every
// checker then replays the identical interleaving.
func Record(ctx context.Context, src Source, seed int64, sched NamedScheduler, maxSteps uint64) (*trace.Data, error) {
	var atomicIDs []vm.MethodID
	for _, m := range src.Prog.Methods {
		if src.Atomic(m.ID) {
			atomicIDs = append(atomicIDs, m.ID)
		}
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{
		Program: src.Prog,
		Atomic:  atomicIDs,
		Seed:    seed,
		Sched:   sched.Name,
		Source:  fmt.Sprintf("crosscheck:%s", src.Name),
	})
	if err != nil {
		return nil, err
	}
	_, err = core.RecordRun(ctx, src.Prog, w, core.RecordConfig{
		Config: core.Config{
			Analysis: core.Baseline,
			Sched:    sched.New(seed),
			Atomic:   src.Atomic,
			MaxSteps: maxSteps,
		},
		Source: fmt.Sprintf("crosscheck:%s", src.Name),
	})
	if err != nil {
		return nil, fmt.Errorf("record %s: %w", src.Name, err)
	}
	return trace.Read(bytes.NewReader(buf.Bytes()))
}

// CheckData runs all four oracles over one decoded trace.
func CheckData(ctx context.Context, d *trace.Data, pcdWorkers []int) (TripleResult, error) {
	var r TripleResult
	r.Events = d.Counts.Total()

	td, err := core.DiffTrace(ctx, d)
	if err != nil {
		return r, err
	}
	r.Violations = len(td.DCViolations)
	r.Agree = td.Agree()
	r.OnlyDC, r.OnlyVelo, r.ICDMissed = td.OnlyDC, td.OnlyVelo, td.ICDMissed

	ok, diag, err := CheckDeterminism(ctx, d, pcdWorkers)
	if err != nil {
		return r, err
	}
	r.Deterministic = ok
	r.DetDiag = diag

	ok, diag, err = CheckEngineAgreement(ctx, d)
	if err != nil {
		return r, err
	}
	r.EngineAgree = ok
	r.EngineDiag = diag
	return r, nil
}

// CheckEngineAgreement is oracle 4 on its own: replay DoubleChecker
// single-run mode under each ICD detection engine and require byte-identical
// rendered reports and violation signatures.
func CheckEngineAgreement(ctx context.Context, d *trace.Data) (bool, string, error) {
	var refReport, refSigs string
	for i, engine := range []icd.Engine{icd.EngineScan, icd.EngineIncremental} {
		res, err := core.RunTrace(ctx, d, core.Config{Analysis: core.DCSingle, ICDEngine: engine})
		if err != nil {
			return false, "", fmt.Errorf("icd-engine=%v: %w", engine, err)
		}
		report := core.ReplayReport(d.Header.Source, d, res)
		sigs := fmt.Sprint(core.ViolationSignatures(res, d.Header.Program))
		if i == 0 {
			refReport, refSigs = report, sigs
			continue
		}
		switch {
		case report != refReport:
			return false, fmt.Sprintf("report bytes diverge between icd engines (%v vs %v)", engine, icd.EngineScan), nil
		case sigs != refSigs:
			return false, fmt.Sprintf("violation signatures diverge between icd engines (%v vs %v)", engine, icd.EngineScan), nil
		}
	}
	return true, "", nil
}

// CheckDeterminism is oracle 3 on its own: replay DoubleChecker single-run
// mode at every worker count and require byte-identical rendered reports,
// deterministic telemetry snapshots, and violation signatures. Returns a
// diagnosis naming the first divergence found.
func CheckDeterminism(ctx context.Context, d *trace.Data, pcdWorkers []int) (bool, string, error) {
	if len(pcdWorkers) == 0 {
		pcdWorkers = []int{0, 2, 4}
	}
	var refReport string
	var refTel []byte
	var refSigs string
	for i, w := range pcdWorkers {
		res, err := core.RunTrace(ctx, d, core.Config{Analysis: core.DCSingle, PCDWorkers: w})
		if err != nil {
			return false, "", fmt.Errorf("pcd-workers=%d: %w", w, err)
		}
		if len(res.PCDQuarantined) != 0 {
			return false, fmt.Sprintf("pcd-workers=%d quarantined %d SCC(s)", w, len(res.PCDQuarantined)), nil
		}
		report := core.ReplayReport(d.Header.Source, d, res)
		tel := res.Telemetry.Deterministic().JSON()
		sigs := fmt.Sprint(core.ViolationSignatures(res, d.Header.Program))
		if i == 0 {
			refReport, refTel, refSigs = report, tel, sigs
			continue
		}
		switch {
		case report != refReport:
			return false, fmt.Sprintf("report bytes diverge at pcd-workers=%d vs %d", w, pcdWorkers[0]), nil
		case sigs != refSigs:
			return false, fmt.Sprintf("violation signatures diverge at pcd-workers=%d vs %d", w, pcdWorkers[0]), nil
		case !bytes.Equal(tel, refTel):
			return false, fmt.Sprintf("deterministic telemetry diverges at pcd-workers=%d vs %d", w, pcdWorkers[0]), nil
		}
	}
	return true, "", nil
}

// CheckTriple records one triple and runs the oracles, returning the decoded
// trace alongside so a failure can be shrunk.
func CheckTriple(ctx context.Context, src Source, seed int64, sched NamedScheduler, opts Options) (TripleResult, *trace.Data, error) {
	d, err := Record(ctx, src, seed, sched, opts.MaxSteps)
	if err != nil {
		return TripleResult{}, nil, err
	}
	r, err := CheckData(ctx, d, opts.PCDWorkers)
	r.Triple = Triple{Source: src.Name, Sched: sched.Name, Seed: seed}
	return r, d, err
}

// Failure is one oracle failure, with the shrunk repro's path when a repro
// directory was configured.
type Failure struct {
	TripleResult
	ReproPath   string `json:"repro_path,omitempty"`
	ReproEvents int    `json:"repro_events,omitempty"`
}

// Report summarizes one exploration sweep.
type Report struct {
	Triples        int `json:"triples"`
	Agreed         int `json:"agreed"`
	Deterministic  int `json:"deterministic"`
	EngineAgreed   int `json:"engine_agreed"`
	WithViolations int `json:"with_violations"`
	// Failures lists every triple on which an oracle failed; empty means the
	// sweep found no checker discrepancy.
	Failures []Failure `json:"failures,omitempty"`
}

// Summary renders the report in one line.
func (rep *Report) Summary() string {
	if len(rep.Failures) == 0 {
		return fmt.Sprintf("crosscheck: %d triple(s) explored, %d with violations, all oracles passed",
			rep.Triples, rep.WithViolations)
	}
	return fmt.Sprintf("crosscheck: %d triple(s) explored, %d ORACLE FAILURE(S)",
		rep.Triples, len(rep.Failures))
}

// Explore runs a budgeted sweep of (workload, seed, scheduler) triples and
// checks the four oracles on each. Oracle failures are shrunk and written
// into Options.ReproDir when set.
func Explore(ctx context.Context, opts Options) (*Report, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	perRound := len(opts.Sources) * len(opts.Schedulers)
	for i := 0; i < opts.Budget; i++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		src := opts.Sources[i%len(opts.Sources)]
		sched := opts.Schedulers[(i/len(opts.Sources))%len(opts.Schedulers)]
		seed := opts.SeedBase + int64(i/perRound)
		r, d, err := CheckTriple(ctx, src, seed, sched, opts)
		if err != nil {
			return rep, fmt.Errorf("%s/%s/seed=%d: %w", src.Name, sched.Name, seed, err)
		}
		rep.Triples++
		if r.Agree {
			rep.Agreed++
		}
		if r.Deterministic {
			rep.Deterministic++
		}
		if r.EngineAgree {
			rep.EngineAgreed++
		}
		if r.Violations > 0 {
			rep.WithViolations++
		}
		if !r.OK() {
			f := Failure{TripleResult: r}
			if opts.ReproDir != "" {
				path, events, err := shrinkAndWrite(ctx, d, r, opts)
				if err != nil {
					return rep, fmt.Errorf("shrinking %s: %w", r.Triple, err)
				}
				f.ReproPath, f.ReproEvents = path, events
			}
			rep.Failures = append(rep.Failures, f)
		}
	}
	return rep, nil
}

// EnumReport is one tiny program's exhaustive enumeration result.
type EnumReport struct {
	Source string `json:"source"`
	// Interleavings is how many complete interleavings exist (and were all
	// checked) within the step limit.
	Interleavings uint64 `json:"interleavings"`
	// Truncated reports that some run exceeded the step limit, making the
	// walk exhaustive only up to it.
	Truncated bool `json:"truncated"`
	// Agreed, Deterministic and EngineAgreed count interleavings that passed
	// oracles 1+2, 3 and 4; all equal Interleavings when every oracle held
	// everywhere.
	Agreed         uint64 `json:"agreed"`
	Deterministic  uint64 `json:"deterministic"`
	EngineAgreed   uint64 `json:"engine_agreed"`
	WithViolations uint64 `json:"with_violations"`
}

// Enumerate exhaustively walks every interleaving of src (up to stepLimit
// scheduling decisions per run) and checks the four oracles on each one.
// maxRuns caps the walk as a safety net against schedule-tree explosion; 0
// means no cap.
func Enumerate(ctx context.Context, src Source, stepLimit int, maxRuns uint64, pcdWorkers []int) (*EnumReport, error) {
	en := vm.NewEnumerator(stepLimit)
	rep := &EnumReport{Source: src.Name}
	sched := NamedScheduler{Name: "enumerate", New: func(int64) vm.Scheduler { return en }}
	for {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		d, err := Record(ctx, src, 0, sched, 0)
		if err != nil {
			return rep, err
		}
		r, err := CheckData(ctx, d, pcdWorkers)
		if err != nil {
			return rep, err
		}
		if r.Agree {
			rep.Agreed++
		}
		if r.Deterministic {
			rep.Deterministic++
		}
		if r.EngineAgree {
			rep.EngineAgreed++
		}
		if r.Violations > 0 {
			rep.WithViolations++
		}
		if !en.Advance() {
			break
		}
		if maxRuns > 0 && en.Runs() >= maxRuns {
			rep.Truncated = true
			break
		}
	}
	rep.Interleavings = en.Runs()
	rep.Truncated = rep.Truncated || en.Overflowed()
	return rep, nil
}

// sortedMethodIDs renders a blamed-method ID set in stable order; mutation
// invariance checks compare these (names may be renamed, IDs may not).
func sortedMethodIDs(set map[vm.MethodID]bool) []int {
	out := make([]int, 0, len(set))
	for m := range set {
		out = append(out, int(m))
	}
	sort.Ints(out)
	return out
}
