package crosscheck

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"doublechecker/internal/core"
	"doublechecker/internal/trace"
)

// goldenTraces returns the committed golden corpus paths.
func goldenTraces(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob("../../testdata/traces/*.dct")
	if err != nil || len(paths) == 0 {
		t.Fatalf("golden corpus not found: %v (%d files)", err, len(paths))
	}
	return paths
}

// verdict reduces a DiffTrace to the mutation-invariant comparison unit:
// agreement plus each precise checker's blamed-method ID set (IDs survive
// renaming; names do not).
func verdict(td *core.TraceDiff) string {
	return fmt.Sprintf("agree=%v dc=%v velo=%v",
		td.Agree(), sortedMethodIDs(td.DC.BlamedMethods), sortedMethodIDs(td.Velo.BlamedMethods))
}

// TestMutationInvarianceGoldenCorpus replays every golden trace and its
// three metamorphic mutants through the differential oracle and requires the
// blamed-method verdict to be identical: thread renaming and commutative
// swaps yield isomorphic executions, and method renaming cannot move an ID.
func TestMutationInvarianceGoldenCorpus(t *testing.T) {
	ctx := context.Background()
	for _, path := range goldenTraces(t) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			d, err := trace.ReadFile(path)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if testing.Short() && d.Counts.Total() > 20_000 {
				t.Skip("large trace in -short mode")
			}
			base, err := core.DiffTrace(ctx, d)
			if err != nil {
				t.Fatalf("base diff: %v", err)
			}
			want := verdict(base)

			mutants := map[string]*trace.Data{}
			rev, err := ReverseThreads(d)
			if err != nil {
				t.Fatalf("reverse threads: %v", err)
			}
			mutants["reverse-threads"] = rev
			swapped, n := SwapCommutative(d, 1, 16)
			mutants[fmt.Sprintf("swap-commutative(%d)", n)] = swapped
			mutants["rename-methods"] = RenameMethods(d)

			for name, m := range mutants {
				md, err := core.DiffTrace(ctx, m)
				if err != nil {
					t.Fatalf("%s: diff: %v", name, err)
				}
				if got := verdict(md); got != want {
					t.Errorf("%s changed the verdict:\n  base:   %s\n  mutant: %s", name, want, got)
				}
			}
		})
	}
}

// TestMutantsEncode round-trips one mutant of each kind through the binary
// format: mutations must produce traces the writer accepts and the reader
// decodes back, byte-validated (CRC, digests, count trailer).
func TestMutantsEncode(t *testing.T) {
	d, err := trace.ReadFile("../../testdata/traces/tsp.dct")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	rev, err := ReverseThreads(d)
	if err != nil {
		t.Fatal(err)
	}
	swapped, n := SwapCommutative(d, 3, 16)
	if n == 0 {
		t.Fatal("no commutative pair found in the tsp trace")
	}
	for name, m := range map[string]*trace.Data{
		"reverse-threads":  rev,
		"swap-commutative": swapped,
		"rename-methods":   RenameMethods(d),
	} {
		path := filepath.Join(t.TempDir(), name+".dct")
		if err := WriteRepro(m, path, "mutant round-trip test"); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		back, err := trace.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: decode round-trip: %v", name, err)
		}
		if back.Counts != m.Counts {
			t.Fatalf("%s: counts changed in round-trip: %v vs %v", name, back.Counts, m.Counts)
		}
	}
}

// TestPermuteThreadsRejectsBadPerm pins the permutation validation.
func TestPermuteThreadsRejectsBadPerm(t *testing.T) {
	d, err := trace.ReadFile("../../testdata/traces/philo.dct")
	if err != nil {
		t.Fatal(err)
	}
	n := len(d.Header.Program.Threads)
	for _, perm := range [][]int{
		{},             // wrong length
		make([]int, n), // all zeros: not a bijection
		func() []int { // out of range
			p := make([]int, n)
			for i := range p {
				p[i] = i
			}
			p[0] = n
			return p
		}(),
	} {
		if _, err := PermuteThreads(d, perm); err == nil {
			t.Fatalf("perm %v accepted", perm)
		}
	}
}

// TestSwapCommutativeOnlySwapsCommutingPairs verifies the swap respects
// per-thread and per-object order: replaying the mutant must keep the access
// clock strictly ascending and the event count identical.
func TestSwapCommutativeOnlySwapsCommutingPairs(t *testing.T) {
	d, err := trace.ReadFile("../../testdata/traces/tsp.dct")
	if err != nil {
		t.Fatal(err)
	}
	m, n := SwapCommutative(d, 3, 32)
	if n == 0 {
		t.Skip("no commutative pair in this trace")
	}
	if len(m.Events) != len(d.Events) {
		t.Fatalf("swap changed event count: %d vs %d", len(m.Events), len(d.Events))
	}
	last := uint64(0)
	perThread := map[int]uint64{}
	perObj := map[int]uint64{}
	for _, ev := range m.Events {
		if ev.Kind != trace.EvAccess {
			continue
		}
		a := ev.Access
		if a.Seq <= last {
			t.Fatalf("access clock not ascending after swap: %d after %d", a.Seq, last)
		}
		last = a.Seq
		perThread[int(a.Thread)] = a.Seq
		perObj[int(a.Obj)] = a.Seq
	}
	// Per-thread / per-object orders are subsequences of the ascending clock,
	// so reaching here means both are preserved; cross-check against the
	// original's final positions.
	if len(perThread) == 0 {
		t.Fatal("no accesses in mutant")
	}
}
