package pcd

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"doublechecker/internal/txn"
	"doublechecker/internal/vm"
)

// violationKey renders a violation as a comparable identity: sorted cycle
// member IDs, sorted blamed IDs, sorted blamed methods, and the detection
// clock. The pool replays clones, so comparisons go through IDs, never
// pointers.
func violationKey(v txn.Violation) string {
	ids := func(txs []*txn.Txn) []uint64 {
		out := make([]uint64, len(txs))
		for i, tx := range txs {
			out[i] = tx.ID
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	ms := append([]vm.MethodID(nil), v.BlamedMethods...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	return fmt.Sprintf("cycle=%v blamed=%v methods=%v seq=%d", ids(v.Cycle), ids(v.Blamed), ms, v.Seq)
}

func violationKeys(vs []txn.Violation) []string {
	keys := make([]string, len(vs))
	for i, v := range vs {
		keys[i] = violationKey(v)
	}
	return keys
}

// buildFuzzRun interprets fuzz bytes as a synthetic ICD session — begins,
// ends, accesses, and cross edges over a few threads — and returns the SCC
// groups a detector would have handed to PCD (consecutive chunks of the
// created transactions, sizes also driven by the input; overlap included so
// cross-SCC dedup is exercised).
func buildFuzzRun(data []byte) [][]*txn.Txn {
	e := newEnv()
	const nThreads = 3
	var created []*txn.Txn
	active := make(map[vm.ThreadID]*txn.Txn)
	i := 0
	next := func() byte {
		if i >= len(data) {
			return 0
		}
		b := data[i]
		i++
		return b
	}
	steps := 0
	for i < len(data) && steps < 512 {
		steps++
		th := vm.ThreadID(next() % nThreads)
		switch next() % 8 {
		case 0:
			if active[th] == nil {
				tx := e.begin(th, vm.MethodID(next()%4+1))
				active[th] = tx
				created = append(created, tx)
			}
		case 1:
			if active[th] != nil {
				e.end(th)
				active[th] = nil
			}
		case 2, 3, 4, 5:
			obj := vm.ObjectID(next()%3 + 1)
			f := vm.FieldID(next() % 2)
			write := next()%2 == 0
			if active[th] == nil {
				tx := e.begin(th, vm.MethodID(next()%4+1))
				active[th] = tx
				created = append(created, tx)
			}
			e.access(th, obj, f, write)
		default:
			if len(created) >= 2 {
				src := created[int(next())%len(created)]
				dst := created[int(next())%len(created)]
				if src != dst && src.Thread != dst.Thread {
					e.edge(src, dst)
				}
			}
		}
	}
	for th, tx := range active {
		if tx != nil {
			e.end(th)
		}
	}
	// Chunk into SCC groups; a second pass re-reports a prefix so the same
	// cycle can be found in two groups (dedup must keep exactly one).
	var groups [][]*txn.Txn
	for start := 0; start < len(created); {
		n := 1 + int(next()%6)
		end := start + n
		if end > len(created) {
			end = len(created)
		}
		groups = append(groups, created[start:end])
		start = end
	}
	if len(created) > 1 {
		groups = append(groups, created[:len(created)/2+1])
	}
	return groups
}

// FuzzPCDProcess: on any synthetic SCC log, the serial checker and the
// concurrent pool must report the identical violation sequence and stats.
func FuzzPCDProcess(f *testing.F) {
	// The canonical racy increment, a no-conflict run, and edge-heavy noise.
	f.Add([]byte{0, 0, 10, 1, 0, 20, 0, 2, 1, 0, 0, 1, 2, 1, 0, 1, 6, 0, 1, 0, 2, 1, 0, 1, 1, 1, 0, 1})
	f.Add([]byte{0, 0, 1, 1, 2, 1, 0, 1, 0, 1})
	f.Add([]byte{2, 2, 1, 0, 0, 1, 3, 1, 1, 1, 6, 1, 0, 2, 4, 2, 0, 1, 6, 0, 1, 5, 2, 1, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, order := range []ReplayOrder{BySeq, ByEdges} {
			groups := buildFuzzRun(data)

			serial := NewChecker(nil, order)
			for _, g := range groups {
				serial.Process(g)
			}

			pool := NewPool(PoolConfig{Workers: 3, Order: order})
			for _, g := range groups {
				pool.Submit(g)
			}
			merged := pool.Drain(context.Background())

			sk, pk := violationKeys(serial.Violations()), violationKeys(merged.Violations)
			if len(sk) != len(pk) {
				t.Fatalf("order %v: serial %d violations %v, pool %d %v", order, len(sk), sk, len(pk), pk)
			}
			for i := range sk {
				if sk[i] != pk[i] {
					t.Fatalf("order %v: violation %d: serial %q pool %q", order, i, sk[i], pk[i])
				}
			}
			if serial.Stats() != merged.Stats {
				t.Fatalf("order %v: stats serial %+v pool %+v", order, serial.Stats(), merged.Stats)
			}
		}
	})
}

// TestPropertyOrdersAgreeOnAcyclicSCC: on fixtures whose true dependence
// graph is acyclic within the reported SCC, both replay orders must agree
// there is no violation, however badly the imprecise SCC over-approximated.
// The fixtures run transactions strictly one at a time (begin → accesses →
// end before the next begins), so every true dependence points forward in
// time and the precise graph cannot have a cycle — yet the whole set is
// reported as one SCC, cross edges and all.
func TestPropertyOrdersAgreeOnAcyclicSCC(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := newEnv()
		nThreads := 2 + rng.Intn(4)
		nObjs := 1 + rng.Intn(3)
		var all []*txn.Txn
		// lastTouched[obj] is the most recent transaction to access obj; the
		// recorded cross edge always points from it to the newer transaction.
		lastTouched := make(map[vm.ObjectID]*txn.Txn)
		for k := 0; k < 6+rng.Intn(12); k++ {
			th := vm.ThreadID(rng.Intn(nThreads))
			tx := e.begin(th, vm.MethodID(rng.Intn(3)+1))
			all = append(all, tx)
			for a := 0; a < 1+rng.Intn(4); a++ {
				obj := vm.ObjectID(rng.Intn(nObjs) + 1)
				if prev := lastTouched[obj]; prev != nil && prev.Thread != th {
					e.edge(prev, tx)
				}
				e.access(th, obj, vm.FieldID(rng.Intn(2)), rng.Intn(3) == 0)
				lastTouched[obj] = tx
			}
			e.end(th)
		}
		bySeq := NewChecker(nil, BySeq)
		byEdges := NewChecker(nil, ByEdges)
		vs, ve := bySeq.Process(all), byEdges.Process(all)
		if len(vs) != 0 || len(ve) != 0 {
			t.Errorf("seed %d: acyclic fixture produced violations: BySeq %d, ByEdges %d",
				seed, len(vs), len(ve))
		}
	}
}
