// Concurrent PCD executor (paper §5.3): the insight that "PCD could be
// performed concurrently with the program: each SCC replays independently"
// realized as a bounded worker pool. The VM thread hands each SCC off at
// discovery; workers replay it on their own Checker shard; Drain merges the
// shards' raw finds back into the exact serial result.
//
// Determinism contract. The merged Violations, Stats, and every metric
// outside the telemetry.LiveOnlyPrefix namespace are byte-identical to the
// serial checker's, for any worker count and any interleaving:
//
//   - Submit deep-clones the SCC (plus its transitive mark-peer closure)
//     on the VM thread, so workers see an immutable snapshot — finished
//     transactions still receive marks from later barriers, and the ICD GC
//     nils logs, so sharing live manager state would race.
//   - Shards run in deferred mode (NewShard): they record raw cycle Finds
//     without cross-SCC dedup or blame. Dedup order and the "first" find
//     would otherwise depend on worker scheduling.
//   - Drain sorts job results by hand-off index — the order the serial
//     checker would have processed them — dedups cycles globally in that
//     order, and only then assigns blame, once per distinct cycle.
//   - Distinct-transaction accounting happens at Submit (single-threaded,
//     hand-off order), not on shards.
//   - When metered, each job replays under a fresh off-critical-path meter;
//     per-job reports merge in hand-off index order, so cost accounting is
//     independent of worker assignment.
package pcd

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"doublechecker/internal/cost"
	"doublechecker/internal/obs"
	"doublechecker/internal/supervise"
	"doublechecker/internal/telemetry"
	"doublechecker/internal/txn"
)

// PoolConfig configures a concurrent PCD pool.
type PoolConfig struct {
	// Workers is the number of replay goroutines; NewPool requires ≥ 1.
	Workers int
	// Order selects the shards' replay strategy.
	Order ReplayOrder
	// MainMeter, when non-nil, is the critical-path meter: Submit charges
	// the hand-off snapshot to it, and each job replays under a fresh
	// off-path meter built from the same model.
	MainMeter *cost.Meter
	// Budget, when positive, applies the memory budget to each job's
	// off-path meter (mirrors core.Config.MemoryBudget).
	Budget int64
	// Telemetry, when non-nil, receives the PCD counters (identical names
	// and values as the serial checker) plus live pool metrics under
	// telemetry.LiveOnlyPrefix.
	Telemetry *telemetry.Registry
	// QueueCap bounds the job channel (default 4×Workers); a full queue
	// blocks Submit, back-pressuring the VM thread.
	QueueCap int
	// Hook, when set, runs on the worker just before each SCC replay; a
	// panic in it is quarantined exactly like a checker panic. It is the
	// pool's deterministic fault-injection seam (compare core.Config.WrapInst).
	Hook func(index uint64, scc []*txn.Txn)
	// TraceSpan is the request-scoped parent for the pool's obs spans: the
	// VM-thread hand-off and the per-worker replays. The zero Span — the
	// default — disables them; the resulting timeline is what makes the
	// off-critical-path claim visible per request.
	TraceSpan obs.Span
}

// poolJob is one handed-off SCC: an immutable snapshot plus its hand-off
// index, which defines the canonical merge order.
type poolJob struct {
	index uint64
	scc   []*txn.Txn
}

// jobResult is what a worker hands back for one job.
type jobResult struct {
	index  uint64
	finds  []Find
	stats  Stats
	report cost.Report
	quar   *Quarantine
}

// Quarantine records a worker panic contained to its SCC: the run goes on
// and every other SCC is still checked; only this SCC's findings are lost.
type Quarantine struct {
	// Index is the SCC's hand-off index.
	Index uint64
	// Txns is the SCC's member count.
	Txns int
	// Err is the panic value, stringified.
	Err string
	// Digest is the stable stack fingerprint (supervise.PanicDigest).
	Digest string
}

// Merged is Drain's result: the pool's findings in canonical serial order.
type Merged struct {
	// Violations are the distinct precise violations, deduped and blamed in
	// hand-off order — element-for-element what the serial checker returns.
	Violations []txn.Violation
	// Stats is the summed shard accounting plus the pool's distinct-txn
	// count; equal to the serial checker's Stats.
	Stats Stats
	// OffCritical is the modelled off-critical-path cost: per-job reports
	// summed in hand-off order (PeakBytes is the per-job maximum — jobs
	// release their temporaries, so concurrent peaks don't stack
	// adversarially in the model).
	OffCritical cost.Report
	// Quarantined lists per-SCC worker panics the pool absorbed.
	Quarantined []Quarantine
	// Dropped counts jobs discarded by cancellation before replay.
	Dropped uint64
}

// Pool is a bounded concurrent PCD executor. Submit, Drain, and Abort must
// be called from a single goroutine (the VM thread); workers run internally.
type Pool struct {
	cfg  PoolConfig
	jobs chan poolJob
	wg   sync.WaitGroup

	aborted atomic.Bool
	closed  bool

	// Submit-side state (single-threaded).
	submitted uint64
	distinct  map[uint64]struct{}
	queueMax  int64

	mu      sync.Mutex
	results []jobResult
	dropped uint64

	queued atomic.Int64

	// Telemetry handles (nil without a registry).
	reg         *telemetry.Registry
	ptel        *tel
	jobsCtr     *telemetry.Counter
	droppedCtr  *telemetry.Counter
	quarCtr     *telemetry.Counter
	queueMaxGau *telemetry.Gauge
}

// NewPool starts a pool with cfg.Workers replay goroutines.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4 * cfg.Workers
	}
	p := &Pool{
		cfg:      cfg,
		jobs:     make(chan poolJob, cfg.QueueCap),
		distinct: make(map[uint64]struct{}),
		reg:      cfg.Telemetry,
	}
	if p.reg != nil {
		// Register the serial checker's full handle set up front so a
		// zero-SCC run snapshots the same metric names either way.
		p.ptel = newTel(p.reg)
		p.jobsCtr = p.reg.Counter(telemetry.PCDPoolJobs)
		p.droppedCtr = p.reg.Counter(telemetry.PCDPoolDropped)
		p.quarCtr = p.reg.Counter(telemetry.PCDPoolQuarantined)
		p.queueMaxGau = p.reg.Gauge(telemetry.PCDPoolQueueMax)
		p.reg.Gauge(telemetry.PCDPoolWorkers).Set(float64(cfg.Workers))
	}
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker(i)
	}
	return p
}

// Submit hands one SCC to the pool; it is the icd.Options.OnSCC hand-off
// point. It runs on the VM thread, snapshots the SCC before publishing, and
// blocks when the queue is full.
func (p *Pool) Submit(scc []*txn.Txn) {
	var span telemetry.Span
	if p.reg != nil {
		span = p.reg.StartSpan(telemetry.SpanPCDHandoff, p.cfg.MainMeter)
	}
	osp := p.cfg.TraceSpan.Child(telemetry.SpanPCDHandoff)
	clone, entries := snapshotSCC(scc)
	if osp.Live() {
		osp.SetInt("entries", int64(entries))
		osp.SetInt("scc_txns", int64(len(scc)))
	}
	if p.cfg.MainMeter != nil {
		p.cfg.MainMeter.ChargeN(p.cfg.MainMeter.Model().PCDHandoffPerEntry, int64(entries))
	}
	for _, tx := range scc {
		if _, ok := p.distinct[tx.ID]; !ok {
			p.distinct[tx.ID] = struct{}{}
			if p.ptel != nil {
				p.ptel.txnsSent.Inc()
			}
		}
	}
	job := poolJob{index: p.submitted, scc: clone}
	p.submitted++
	if p.jobsCtr != nil {
		p.jobsCtr.Inc()
	}
	if depth := p.queued.Add(1); depth > p.queueMax {
		p.queueMax = depth
		if p.queueMaxGau != nil {
			p.queueMaxGau.Set(float64(depth))
		}
	}
	span.End()
	osp.End()
	p.jobs <- job
}

// worker consumes jobs until the channel closes. After an abort it keeps
// draining, discarding jobs without replaying them, so a blocked Submit and
// queued snapshots are always released.
func (p *Pool) worker(id int) {
	defer p.wg.Done()
	for job := range p.jobs {
		p.queued.Add(-1)
		if p.aborted.Load() {
			p.mu.Lock()
			p.dropped++
			p.mu.Unlock()
			if p.droppedCtr != nil {
				p.droppedCtr.Inc()
			}
			continue
		}
		res := p.runJob(id, job)
		p.mu.Lock()
		p.results = append(p.results, res)
		p.mu.Unlock()
	}
}

// runJob replays one SCC on a fresh shard, quarantining panics to the job.
func (p *Pool) runJob(worker int, job poolJob) (res jobResult) {
	res.index = job.index
	var span telemetry.Span
	if p.reg != nil {
		span = p.reg.StartSpan(telemetry.SpanPCDPoolWorker+strconv.Itoa(worker), nil)
		defer span.End()
	}
	osp := p.cfg.TraceSpan.Child(telemetry.SpanPCDPoolWorker + strconv.Itoa(worker))
	if osp.Live() {
		osp.SetInt("index", int64(job.index))
		osp.SetInt("scc_txns", int64(len(job.scc)))
	}
	// Registered before the recover below (LIFO), so the span closes even
	// when the replay panics into quarantine.
	defer osp.End()
	defer func() {
		if r := recover(); r != nil {
			res.quar = &Quarantine{
				Index:  job.index,
				Txns:   len(job.scc),
				Err:    fmt.Sprint(r),
				Digest: supervise.PanicDigest(debug.Stack()),
			}
			osp.SetStr("quarantined", res.quar.Digest)
			if p.quarCtr != nil {
				p.quarCtr.Inc()
			}
		}
	}()
	if p.cfg.Hook != nil {
		p.cfg.Hook(job.index, job.scc)
	}
	var meter *cost.Meter
	if p.cfg.MainMeter != nil {
		meter = cost.NewMeter(p.cfg.MainMeter.Model())
		if p.cfg.Budget > 0 {
			meter.SetBudget(p.cfg.Budget)
		}
	}
	sh := NewShard(meter, p.cfg.Order)
	if p.reg != nil {
		sh.SetTelemetry(p.reg)
	}
	sh.Process(job.scc)
	res.finds = sh.TakeFinds()
	res.stats = sh.Stats()
	if meter != nil {
		res.report = meter.Report()
	}
	return res
}

// Drain closes the pool, waits for in-flight jobs, and merges. A canceled
// ctx flips the pool to abort mode — queued jobs are discarded, in-flight
// replays finish — so cancellation cannot hang behind a deep queue; the
// partial merge is still returned.
func (p *Pool) Drain(ctx context.Context) *Merged {
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		p.aborted.Store(true)
		<-done
	}
	return p.merge()
}

// Abort discards queued jobs and stops the workers without merging; the
// run's error path uses it so cancellation never leaks pool goroutines.
func (p *Pool) Abort() {
	p.aborted.Store(true)
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.wg.Wait()
}

// merge folds job results into the canonical serial order: sort by hand-off
// index, sum shard stats and per-job cost reports, dedup cycle finds
// globally, and assign blame once per distinct cycle.
func (p *Pool) merge() *Merged {
	p.mu.Lock()
	results := p.results
	dropped := p.dropped
	p.mu.Unlock()
	sort.Slice(results, func(i, j int) bool { return results[i].index < results[j].index })

	m := &Merged{Dropped: dropped}
	m.Stats.DistinctTxns = uint64(len(p.distinct))
	seen := make(map[string]bool)
	for _, r := range results {
		if r.quar != nil {
			m.Quarantined = append(m.Quarantined, *r.quar)
			continue
		}
		m.Stats.SCCsProcessed += r.stats.SCCsProcessed
		m.Stats.TxnsProcessed += r.stats.TxnsProcessed
		m.Stats.EntriesReplayed += r.stats.EntriesReplayed
		m.Stats.PDGEdges += r.stats.PDGEdges
		m.Stats.CycleChecks += r.stats.CycleChecks
		m.Stats.PreciseCycles += r.stats.PreciseCycles
		m.OffCritical.Total += r.report.Total
		m.OffCritical.GC += r.report.GC
		m.OffCritical.AllocBytes += r.report.AllocBytes
		m.OffCritical.GCCount += r.report.GCCount
		if r.report.PeakBytes > m.OffCritical.PeakBytes {
			m.OffCritical.PeakBytes = r.report.PeakBytes
		}
		m.OffCritical.OOM = m.OffCritical.OOM || r.report.OOM
		for _, f := range r.finds {
			key := cycleKey(f.Cycle)
			if seen[key] {
				continue
			}
			seen[key] = true
			var blame telemetry.Span
			if p.reg != nil {
				blame = p.reg.StartSpan(telemetry.SpanPCDBlame, nil)
			}
			v := f.Violation()
			blame.End()
			m.Violations = append(m.Violations, v)
		}
	}
	return m
}

// snapshotSCC deep-clones an SCC for hand-off: member transactions with
// their logs, plus the transitive mark-peer closure — the same anchor set
// the ByEdges replay walks — remapped onto the clones. Only the fields
// Process reads are copied; manager-internal state (edge maps, GC flags)
// stays behind. Returns the clones and the number of log entries copied,
// the hand-off cost driver.
func snapshotSCC(scc []*txn.Txn) ([]*txn.Txn, int) {
	// Bound the closure like orderByEdges bounds its anchors; past the cap,
	// peers become bare ID/Thread stubs (stamps still usable, no more pull).
	const maxClones = 1 << 16
	clones := make(map[*txn.Txn]*txn.Txn, len(scc))
	order := make([]*txn.Txn, 0, len(scc))
	for _, tx := range scc {
		if _, ok := clones[tx]; !ok {
			clones[tx] = &txn.Txn{}
			order = append(order, tx)
		}
	}
	for i := 0; i < len(order) && len(order) < maxClones; i++ {
		for _, mk := range order[i].Marks {
			if mk.Other == nil {
				continue
			}
			if _, ok := clones[mk.Other]; !ok {
				clones[mk.Other] = &txn.Txn{}
				order = append(order, mk.Other)
				if len(order) >= maxClones {
					break
				}
			}
		}
	}
	entries := 0
	for _, tx := range order {
		c := clones[tx]
		c.ID, c.Thread, c.Method, c.Unary = tx.ID, tx.Thread, tx.Method, tx.Unary
		c.StartSeq, c.EndSeq, c.Finished = tx.StartSeq, tx.EndSeq, tx.Finished
		if len(tx.Log) > 0 {
			c.Log = append([]txn.LogEntry(nil), tx.Log...)
			entries += len(tx.Log)
		}
		if len(tx.Marks) > 0 {
			marks := make([]txn.Mark, len(tx.Marks))
			for i, mk := range tx.Marks {
				o := clones[mk.Other]
				if o == nil && mk.Other != nil {
					o = &txn.Txn{ID: mk.Other.ID, Thread: mk.Other.Thread, Finished: true}
				}
				marks[i] = txn.Mark{In: mk.In, Other: o, Seq: mk.Seq}
			}
			c.Marks = marks
		}
	}
	out := make([]*txn.Txn, len(scc))
	for i, tx := range scc {
		out[i] = clones[tx]
	}
	return out, entries
}
