// Package pcd implements DoubleChecker's precise cycle detection analysis
// (paper §3.3).
//
// PCD is not a standalone dynamic analysis: it consumes, for each SCC that
// ICD reports, (1) the set of transactions, (2) their read/write logs, and
// (3) the cross-thread IDG edges recorded relative to log entries. It
// "replays" that slice of the execution, rebuilding precise per-field
// last-access information — W(f), the last transaction to write f, and
// R(T,f), the last transaction of each thread T to read f — and adds
// precise dependence edges to a precise dependence graph (PDG) using the
// rules of the paper's Figure 5. A cycle in the PDG is a real conflict
// serializability violation; blame assignment (§3.3) marks the
// transaction(s) that completed each cycle.
//
// Two replay orders are implemented. ReplayBySeq uses the VM's global access
// clock, which is exact. ReplayByEdges reconstructs an order purely from the
// per-transaction log order plus the edge-relative positions ICD recorded —
// what the paper's implementation must do, since a JVM has no global access
// clock. Both orders are consistent with the actual execution, so they find
// the same cycles; a property test asserts that.
package pcd

import (
	"fmt"
	"sort"

	"doublechecker/internal/cost"
	"doublechecker/internal/graph"
	"doublechecker/internal/obs"
	"doublechecker/internal/telemetry"
	"doublechecker/internal/txn"
	"doublechecker/internal/vm"
)

// ReplayOrder selects how PCD linearizes the SCC's log entries.
type ReplayOrder int

const (
	// BySeq replays in global access-clock order (exact).
	BySeq ReplayOrder = iota
	// ByEdges replays in an order reconstructed from log positions and
	// edge-relative coordinates (paper-faithful).
	ByEdges
)

// Stats counts PCD activity.
type Stats struct {
	SCCsProcessed   uint64
	TxnsProcessed   uint64 // SCC members fed to Process (re-reports included)
	DistinctTxns    uint64 // distinct transactions ever sent to PCD
	EntriesReplayed uint64
	PDGEdges        uint64
	CycleChecks     uint64
	PreciseCycles   uint64 // dynamic precise cycles (pre-dedup)
}

// tel holds pre-resolved telemetry handles (nil when no registry attached).
type tel struct {
	reg      *telemetry.Registry
	sccs     *telemetry.Counter
	txns     *telemetry.Counter
	txnsSent *telemetry.Counter
	entries  *telemetry.Counter
	edges    *telemetry.Counter
	cycles   *telemetry.Counter
	fieldMap *telemetry.Histogram
}

// Checker is a PCD instance. It is fed SCCs by ICD (via core) and
// accumulates precise violations.
type Checker struct {
	meter *cost.Meter
	order ReplayOrder

	violations []txn.Violation
	seen       map[string]bool     // cycle identity (sorted txn IDs) dedup
	seenTxns   map[uint64]struct{} // distinct txn IDs sent to PCD (nil on shards)
	deferred   bool                // shard mode: record Finds, defer dedup/blame
	finds      []Find
	stats      Stats
	tel        *tel
	tspan      obs.Span // request-scoped parent for pcd.replay spans
	tempBytes  int64    // live replay temporaries (released per Process)
}

// SetTelemetry attaches a registry: Process then records live counters, the
// per-field map-size histogram, and the pcd.replay / pcd.blame phase spans.
func (c *Checker) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.tel = newTel(reg)
}

// SetTraceSpan attaches a request-scoped parent span: Process then opens a
// pcd.replay obs child per SCC. The zero Span (the default) disables them.
func (c *Checker) SetTraceSpan(sp obs.Span) { c.tspan = sp }

// newTel resolves the full PCD handle set eagerly. The pool calls it too
// (before any SCC exists), so a zero-SCC run registers the same metric names
// under the serial and the pooled paths — a requirement of the byte-identical
// Deterministic() snapshot contract.
func newTel(reg *telemetry.Registry) *tel {
	return &tel{
		reg:      reg,
		sccs:     reg.Counter(telemetry.PCDSCCs),
		txns:     reg.Counter(telemetry.PCDTxns),
		txnsSent: reg.Counter(telemetry.PCDTxnsSent),
		entries:  reg.Counter(telemetry.PCDEntries),
		edges:    reg.Counter(telemetry.PCDEdges),
		cycles:   reg.Counter(telemetry.PCDCycles),
		fieldMap: reg.Histogram(telemetry.PCDFieldMap, telemetry.MapSizeBuckets),
	}
}

// tempAlloc meters a replay-temporary allocation.
func (c *Checker) tempAlloc(n int64) {
	c.tempBytes += n
	if c.meter != nil {
		c.meter.Alloc(n)
	}
}

// NewChecker returns a PCD checker using the given replay order; meter may
// be nil.
func NewChecker(meter *cost.Meter, order ReplayOrder) *Checker {
	return &Checker{
		meter:    meter,
		order:    order,
		seen:     make(map[string]bool),
		seenTxns: make(map[uint64]struct{}),
	}
}

// NewShard returns a pool-worker checker: Process records raw cycle Finds
// instead of deduplicating and assigning blame, and distinct-transaction
// accounting is left to the pool (which sees SCCs in hand-off order).
// Deferring both is what makes the merged result independent of how SCCs
// were assigned to workers: cross-SCC dedup keeps the first find in hand-off
// order, and blame runs exactly once per distinct cycle — just as the serial
// checker behaves.
func NewShard(meter *cost.Meter, order ReplayOrder) *Checker {
	return &Checker{meter: meter, order: order, deferred: true}
}

// Find is one raw precise cycle recorded by a shard in deferred mode: the
// cycle path, the detection clock, and the PDG edge orders of the cycle's
// adjacent pairs — everything blame assignment (txn.BlameWith) will ask for,
// captured before the per-Process PDG is discarded.
type Find struct {
	Cycle []*txn.Txn
	Seq   uint64
	Out   []uint64 // Out[i] orders the Cycle[i] -> Cycle[i+1] edge
	OutOK []bool
}

// Violation runs blame assignment over the find, exactly as the serial
// checker would have at detection time.
func (f *Find) Violation() txn.Violation {
	n := len(f.Cycle)
	idx := make(map[*txn.Txn]int, n)
	for i, tx := range f.Cycle {
		idx[tx] = i
	}
	order := func(src, dst *txn.Txn) (uint64, bool) {
		i, ok := idx[src]
		if !ok || f.Cycle[(i+1)%n] != dst || !f.OutOK[i] {
			return 0, false
		}
		return f.Out[i], true
	}
	return txn.NewViolationWith(f.Cycle, f.Seq, order)
}

// TakeFinds returns and clears the cycle finds recorded in deferred (shard)
// mode, in discovery order.
func (c *Checker) TakeFinds() []Find {
	f := c.finds
	c.finds = nil
	return f
}

// Violations returns the distinct precise violations found so far.
func (c *Checker) Violations() []txn.Violation { return c.violations }

// Stats returns PCD counters.
func (c *Checker) Stats() Stats { return c.stats }

func (c *Checker) charge(u cost.Units) {
	if c.meter != nil {
		c.meter.Charge(u)
	}
}

func (c *Checker) model() cost.Model {
	if c.meter != nil {
		return c.meter.Model()
	}
	return cost.Model{}
}

// entryRef locates one log entry during replay.
type entryRef struct {
	tx  *txn.Txn
	idx int
}

// fieldKey is PCD's per-field metadata key; sync accesses use a separate
// metadata space (they model the paper's per-object lock-release word).
type fieldKey struct {
	obj   vm.ObjectID
	field vm.FieldID
	sync  bool
}

// pdg is the precise dependence graph over one Process invocation.
type pdg struct {
	adj   map[*txn.Txn]map[*txn.Txn]uint64 // -> edge order (first occurrence)
	succs map[*txn.Txn][]*txn.Txn
}

func newPDG() *pdg {
	return &pdg{
		adj:   make(map[*txn.Txn]map[*txn.Txn]uint64),
		succs: make(map[*txn.Txn][]*txn.Txn),
	}
}

// add inserts an edge with the given order if absent; reports whether it was
// new.
func (g *pdg) add(src, dst *txn.Txn, order uint64) bool {
	if src == dst {
		return false
	}
	m := g.adj[src]
	if m == nil {
		m = make(map[*txn.Txn]uint64)
		g.adj[src] = m
	}
	if _, ok := m[dst]; ok {
		return false
	}
	m[dst] = order
	g.succs[src] = append(g.succs[src], dst)
	return true
}

func (g *pdg) order(src, dst *txn.Txn) (uint64, bool) {
	o, ok := g.adj[src][dst]
	return o, ok
}

// segState tracks the current PDG node ("segment") of one replayed
// transaction. Regular transactions are a single node. Unary transactions
// are re-split during replay: ICD merged their accesses based on the
// imprecise IDG edges, but the merging optimization is only valid between
// accesses uninterrupted by edges — judged precisely here. An incoming
// precise edge therefore starts a fresh segment, restoring exactly the
// partition a fully precise online analysis (Velodrome) would have used.
// Without this, a merged unary can manufacture a cycle that the singleton
// ground truth does not have.
type segState struct {
	node  *txn.Txn
	count int // entries replayed into node
	idx   int // segment index (for deterministic synthetic IDs)
}

// Process replays one SCC and records any precise violations. It returns
// the violations newly found in this SCC (already added to Violations).
func (c *Checker) Process(scc []*txn.Txn) []txn.Violation {
	c.stats.SCCsProcessed++
	c.stats.TxnsProcessed += uint64(len(scc))
	var span telemetry.Span
	if c.tel != nil {
		span = c.tel.reg.StartSpan(telemetry.SpanPCDReplay, c.meter)
		defer span.End()
		c.tel.sccs.Inc()
		c.tel.txns.Add(uint64(len(scc)))
	}
	osp := c.tspan.Child(telemetry.SpanPCDReplay)
	var ocost0 cost.Units
	if osp.Live() {
		osp.SetInt("scc_txns", int64(len(scc)))
		if c.meter != nil {
			ocost0 = c.meter.Total()
		}
	}
	defer c.endReplaySpan(osp, ocost0)

	inSCC := make(map[*txn.Txn]bool, len(scc))
	for _, tx := range scc {
		inSCC[tx] = true
		// Shards (seenTxns nil) skip distinct accounting: per-shard sets
		// would depend on which worker got which SCC, so the pool tracks
		// distinct IDs at submission instead.
		if c.seenTxns != nil {
			if _, ok := c.seenTxns[tx.ID]; !ok {
				c.seenTxns[tx.ID] = struct{}{}
				c.stats.DistinctTxns++
				if c.tel != nil {
					c.tel.txnsSent.Inc()
				}
			}
		}
	}

	var entries []entryRef
	switch c.order {
	case ByEdges:
		entries = orderByEdges(scc, inSCC)
	default:
		entries = orderBySeq(scc)
	}

	// Replay temporaries (the ordered entry list, the PDG, last-access
	// maps) are real allocations made while every input log is still live;
	// for a giant SCC — above all the PCD-only straw man's whole-execution
	// replay — this heap spike is what drives GC cost and the paper's
	// out-of-memory failures. The temporaries are released when Process
	// returns.
	c.tempBytes = 0
	defer func() {
		if c.meter != nil {
			c.meter.Free(c.tempBytes)
		}
		c.tempBytes = 0
	}()
	c.tempAlloc(24 * int64(len(entries)))

	g := newPDG()
	segs := make(map[*txn.Txn]*segState, len(scc))
	seg := func(tx *txn.Txn) *segState {
		st := segs[tx]
		if st == nil {
			st = &segState{node: tx}
			segs[tx] = st
		}
		return st
	}
	// threadChain tracks each thread's most recent replayed node, to add
	// intra-thread program-order edges lazily (same-thread transactions
	// never overlap, so replay order visits them sequentially).
	threadChain := make(map[vm.ThreadID]*txn.Txn)

	// Last-access information (Figure 5), holding segment nodes.
	lastWrite := make(map[fieldKey]*txn.Txn)
	lastReads := make(map[fieldKey]map[vm.ThreadID]*txn.Txn)

	model := c.model()
	var found []txn.Violation
	for _, ref := range entries {
		e := ref.tx.Log[ref.idx]
		c.stats.EntriesReplayed++
		c.charge(model.PCDPerEntry)
		key := fieldKey{obj: e.Obj, field: e.Field, sync: e.Sync}
		st := seg(ref.tx)

		// Will this entry receive a cross-thread edge?
		incoming := false
		if w := lastWrite[key]; w != nil && w.Thread != ref.tx.Thread {
			incoming = true
		}
		if e.Write && !incoming {
			for t := range lastReads[key] {
				if t != ref.tx.Thread {
					incoming = true
					break
				}
			}
		}
		if incoming && ref.tx.Unary && st.count > 0 {
			// Cut the merged unary: fresh segment node.
			st.idx++
			fresh := &txn.Txn{
				ID:       ref.tx.ID<<16 | uint64(st.idx),
				Thread:   ref.tx.Thread,
				Method:   ref.tx.Method,
				Unary:    true,
				StartSeq: e.Seq,
				Finished: true,
			}
			g.add(st.node, fresh, e.Seq)
			st.node = fresh
			st.count = 0
		}
		cur := st.node

		// Intra-thread program order.
		if prev := threadChain[ref.tx.Thread]; prev != nil && prev != cur {
			g.add(prev, cur, e.Seq)
		}
		threadChain[ref.tx.Thread] = cur

		if e.Write {
			if w := lastWrite[key]; w != nil && w.Thread != cur.Thread {
				found = c.addPDGEdge(g, w, cur, e.Seq, found)
			}
			// Readers in thread order: a write racing several readers inserts
			// its anti-dependence edges — and so detects cycles — in a fixed
			// sequence, keeping replay deterministic (map iteration is not).
			for _, t := range sortedThreads(lastReads[key]) {
				if t != cur.Thread {
					found = c.addPDGEdge(g, lastReads[key][t], cur, e.Seq, found)
				}
			}
			lastWrite[key] = cur
			delete(lastReads, key)
		} else {
			if w := lastWrite[key]; w != nil && w.Thread != cur.Thread {
				found = c.addPDGEdge(g, w, cur, e.Seq, found)
			}
			m := lastReads[key]
			if m == nil {
				m = make(map[vm.ThreadID]*txn.Txn)
				lastReads[key] = m
			}
			m[cur.Thread] = cur
		}
		st.count++
	}
	if c.tel != nil {
		c.tel.entries.Add(uint64(len(entries)))
		// The live per-field metadata at end of replay: W(f) plus R(T,f)
		// key sets — the heap spike §3.3's replay pays for.
		c.tel.fieldMap.Observe(uint64(len(lastWrite) + len(lastReads)))
	}
	return found
}

// addPDGEdge inserts a precise dependence edge and checks for a cycle
// through it.
func (c *Checker) addPDGEdge(g *pdg, src, dst *txn.Txn, seq uint64, found []txn.Violation) []txn.Violation {
	if !g.add(src, dst, seq) {
		return found
	}
	c.stats.PDGEdges++
	if c.tel != nil {
		c.tel.edges.Inc()
	}
	c.tempAlloc(64)
	c.charge(c.model().PCDPerEdge)
	c.stats.CycleChecks++
	model := c.model()
	succ := func(t *txn.Txn) []*txn.Txn {
		c.charge(model.PCDCycleNode)
		return g.succs[t]
	}
	path := graph.FindPath(dst, src, succ)
	if path == nil {
		return found
	}
	c.stats.PreciseCycles++
	if c.tel != nil {
		c.tel.cycles.Inc()
	}
	if c.deferred {
		n := len(path)
		f := Find{Cycle: path, Seq: seq, Out: make([]uint64, n), OutOK: make([]bool, n)}
		for i := range path {
			f.Out[i], f.OutOK[i] = g.order(path[i], path[(i+1)%n])
		}
		c.finds = append(c.finds, f)
		return found
	}
	key := cycleKey(path)
	if c.seen[key] {
		return found
	}
	c.seen[key] = true
	var blame telemetry.Span
	if c.tel != nil {
		blame = c.tel.reg.StartSpan(telemetry.SpanPCDBlame, c.meter)
	}
	v := txn.NewViolationWith(path, seq, g.order)
	blame.End()
	c.violations = append(c.violations, v)
	return append(found, v)
}

// endReplaySpan closes a pcd.replay obs span, charging the meter's cost
// delta since cost0 as an attribute; open-coded as a method defer so the
// disabled path stays allocation-free.
func (c *Checker) endReplaySpan(osp obs.Span, cost0 cost.Units) {
	if !osp.Live() {
		return
	}
	if c.meter != nil {
		osp.SetInt("cost_units", int64(c.meter.Total()-cost0))
	}
	osp.End()
}

// sortedThreads returns a reader map's thread keys in ascending order.
func sortedThreads(m map[vm.ThreadID]*txn.Txn) []vm.ThreadID {
	if len(m) == 0 {
		return nil
	}
	ts := make([]vm.ThreadID, 0, len(m))
	for t := range m {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts
}

// cycleKey builds a canonical identity for a cycle: its sorted member IDs.
func cycleKey(cycle []*txn.Txn) string {
	ids := make([]uint64, len(cycle))
	for i, tx := range cycle {
		ids[i] = tx.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	key := ""
	for _, id := range ids {
		key += fmt.Sprintf("%d,", id)
	}
	return key
}

// orderBySeq sorts all log entries of the SCC by the global access clock.
func orderBySeq(scc []*txn.Txn) []entryRef {
	var refs []entryRef
	for _, tx := range scc {
		for i := range tx.Log {
			refs = append(refs, entryRef{tx, i})
		}
	}
	sort.Slice(refs, func(i, j int) bool {
		return refs[i].tx.Log[refs[i].idx].Seq < refs[j].tx.Log[refs[j].idx].Seq
	})
	return refs
}

// orderByEdges reconstructs a replay order from the §3.2.4 machinery: each
// transaction's log with its special edge-mark entries, plus per-thread
// program order between transactions.
//
// Marks carry a globally ordered creation stamp. This is legitimate
// run-time information (not a replay-side oracle): an IDG edge is created
// on an already-synchronized Octet slow path, so stamping it from a global
// counter costs nothing — the same trick Octet itself uses for gRdShCnt.
//
// A mark on a transaction of thread T at stamp s is evidence that T had, by
// stamp s, executed everything that precedes the mark: the mark's own
// transaction's log prefix, and all of T's earlier transactions. The replay
// therefore processes marks in stamp order and flushes those prefixes
// before each one. The SCC's own marks are not always enough — a
// happens-before chain between two SCC accesses can run through
// transactions outside the reported SCC (ones unfinished at detection
// time, say) — so ordering anchors are pulled transitively through the
// recorded edge structure: every mark names its peer transaction, whose own
// marks are further evidence. Entries after a thread's last anchor follow
// in a deterministic tail.
func orderByEdges(scc []*txn.Txn, inSCC map[*txn.Txn]bool) []entryRef {
	// Pull the anchor set: SCC transactions plus everything reachable
	// through mark peers (bounded — real chains are short; the cap only
	// guards pathological graphs).
	const maxAnchors = 1 << 16
	anchors := make(map[*txn.Txn]bool, len(scc))
	queue := append([]*txn.Txn(nil), scc...)
	for _, tx := range scc {
		anchors[tx] = true
	}
	for len(queue) > 0 && len(anchors) < maxAnchors {
		tx := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, mk := range tx.Marks {
			if mk.Other != nil && !anchors[mk.Other] {
				anchors[mk.Other] = true
				queue = append(queue, mk.Other)
			}
		}
	}

	// Per-thread program-order chains over SCC members. Same-thread
	// transactions are created in program order, so IDs order them strictly
	// (StartSeq can tie when a retirement and a successor share one clock
	// tick).
	byThread := make(map[vm.ThreadID][]*txn.Txn)
	for _, tx := range scc {
		byThread[tx.Thread] = append(byThread[tx.Thread], tx)
	}
	prevOf := make(map[*txn.Txn]*txn.Txn)
	for _, txs := range byThread {
		sort.Slice(txs, func(i, j int) bool { return txs[i].ID < txs[j].ID })
		for i := 1; i < len(txs); i++ {
			prevOf[txs[i]] = txs[i-1]
		}
	}

	emitted := make(map[*txn.Txn]int, len(scc))
	var refs []entryRef

	// flushTo emits tx's entries with index < cut (and first, everything in
	// tx's same-thread SCC predecessors).
	var flushTo func(tx *txn.Txn, cut int)
	flushTo = func(tx *txn.Txn, cut int) {
		if prev := prevOf[tx]; prev != nil {
			flushTo(prev, len(prev.Log))
		}
		for i := emitted[tx]; i < cut; i++ {
			refs = append(refs, entryRef{tx, i})
		}
		if cut > emitted[tx] {
			emitted[tx] = cut
		}
	}

	// flushThreadBefore flushes, fully, every SCC transaction of th with
	// ID < beforeID: a mark on a later transaction of th proves they are
	// all in the past.
	flushThreadBefore := func(th vm.ThreadID, beforeID uint64) {
		txs := byThread[th]
		for i := len(txs) - 1; i >= 0; i-- {
			if txs[i].ID < beforeID {
				flushTo(txs[i], len(txs[i].Log))
				return // flushTo covers the predecessors
			}
		}
	}

	// Global anchor sequence. For equal stamps (several edges from one
	// barrier), out-marks flush before in-marks so a dependence's source
	// side is emitted first.
	type gmark struct {
		tx  *txn.Txn
		cut int // entries of tx preceding the mark (SCC members only)
		seq uint64
		in  bool
	}
	var marks []gmark
	for tx := range anchors {
		li := 0
		member := inSCC[tx]
		for _, mk := range tx.Marks {
			cut := 0
			if member {
				// Entries strictly before the mark; an equal-Seq entry
				// comes after it (the barrier fires before the access is
				// logged).
				for li < len(tx.Log) && tx.Log[li].Seq < mk.Seq {
					li++
				}
				cut = li
			}
			marks = append(marks, gmark{tx: tx, cut: cut, seq: mk.Seq, in: mk.In})
		}
	}
	sort.Slice(marks, func(i, j int) bool {
		if marks[i].seq != marks[j].seq {
			return marks[i].seq < marks[j].seq
		}
		if marks[i].in != marks[j].in {
			return !marks[i].in // out-marks first
		}
		return marks[i].tx.ID < marks[j].tx.ID
	})
	for _, m := range marks {
		flushThreadBefore(m.tx.Thread, m.tx.ID)
		if inSCC[m.tx] {
			flushTo(m.tx, m.cut)
		}
	}

	// Deterministic tail: remaining entries per thread, in ID order.
	tail := make([]*txn.Txn, 0, len(byThread))
	for _, txs := range byThread {
		tail = append(tail, txs[len(txs)-1])
	}
	sort.Slice(tail, func(i, j int) bool { return tail[i].ID < tail[j].ID })
	for _, tx := range tail {
		flushTo(tx, len(tx.Log))
	}
	return refs
}
