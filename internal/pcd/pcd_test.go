package pcd

import (
	"testing"

	"doublechecker/internal/txn"
	"doublechecker/internal/vm"
)

// env builds transactions and logs with a controllable clock, simulating
// what ICD hands to PCD.
type env struct {
	mgr *txn.Manager
	now uint64
}

func newEnv() *env {
	e := &env{}
	e.mgr = txn.NewManager(true, func() uint64 { e.now++; return e.now }, nil)
	return e
}

func (e *env) begin(t vm.ThreadID, m vm.MethodID) *txn.Txn { return e.mgr.BeginRegular(t, m) }
func (e *env) end(t vm.ThreadID)                           { e.mgr.EndRegular(t) }

func (e *env) access(t vm.ThreadID, obj vm.ObjectID, f vm.FieldID, write bool) {
	e.now++
	e.mgr.Record(t, obj, f, write, false, e.now)
}

// edge mimics an ICD-recorded IDG edge with occurrence coordinates.
func (e *env) edge(src, dst *txn.Txn) { e.mgr.AddCrossEdge(src, dst) }

// TestTwoTxnCycle replays the canonical racy increment: A and B both read
// then write the same field, interleaved rdA rdB wrB wrA.
func TestTwoTxnCycle(t *testing.T) {
	for _, order := range []ReplayOrder{BySeq, ByEdges} {
		e := newEnv()
		a := e.begin(0, 1)
		b := e.begin(1, 2)
		e.access(0, 9, 0, false) // A rd x
		e.access(1, 9, 0, false) // B rd x
		e.edge(a, b)             // IDG edge at B's write (A read before)
		e.access(1, 9, 0, true)  // B wr x
		e.end(1)
		e.edge(b, a)            // IDG edge at A's write
		e.access(0, 9, 0, true) // A wr x
		e.end(0)

		c := NewChecker(nil, order)
		found := c.Process([]*txn.Txn{a, b})
		if len(found) != 1 {
			t.Fatalf("order %v: found %d violations, want 1", order, len(found))
		}
		v := found[0]
		if len(v.Cycle) != 2 {
			t.Errorf("order %v: cycle size %d, want 2", order, len(v.Cycle))
		}
		if len(v.Blamed) != 1 || v.Blamed[0] != a {
			t.Errorf("order %v: blamed %v, want [A] (its outgoing edge came first)", order, v.Blamed)
		}
		if len(v.BlamedMethods) != 1 || v.BlamedMethods[0] != 1 {
			t.Errorf("order %v: blamed methods %v", order, v.BlamedMethods)
		}
	}
}

// TestImpreciseSCCNoPreciseCycle mirrors the paper's §3.2.3 example: the IDG
// has a cycle because ICD tracks object granularity, but the precise fields
// differ, so PCD must find nothing.
func TestImpreciseSCCNoPreciseCycle(t *testing.T) {
	e := newEnv()
	a := e.begin(0, 1)
	b := e.begin(1, 2)
	e.access(0, 5, 0, true)  // A wr o.f
	e.access(1, 6, 0, true)  // B wr p.q
	e.edge(b, a)             // IDG edge: A reads p (conflict with B)
	e.access(0, 6, 0, false) // A rd p.q — true dependence B -> A
	e.edge(a, b)             // IDG edge: B reads o (object-granularity conflict)
	e.access(1, 5, 1, false) // B rd o.g — DIFFERENT FIELD: no true dependence
	e.end(0)
	e.end(1)

	c := NewChecker(nil, BySeq)
	if found := c.Process([]*txn.Txn{a, b}); len(found) != 0 {
		t.Fatalf("imprecise SCC must yield no precise violation, got %v", found)
	}
	if c.Stats().PDGEdges != 1 {
		t.Errorf("expected exactly the one true dependence edge, got %d", c.Stats().PDGEdges)
	}
}

// TestPreciseCycleWhenFieldsMatch is the same scenario with B actually
// reading o.f, which makes the cycle precise (paper: "Note that PCD detects
// a precise cycle involving Tx1i and Tx3k").
func TestPreciseCycleWhenFieldsMatch(t *testing.T) {
	e := newEnv()
	a := e.begin(0, 1)
	b := e.begin(1, 2)
	e.access(0, 5, 0, true) // A wr o.f
	e.access(1, 6, 0, true) // B wr p.q
	e.edge(b, a)
	e.access(0, 6, 0, false) // A rd p.q
	e.edge(a, b)
	e.access(1, 5, 0, false) // B rd o.f — same field: true dependence A -> B
	e.end(0)
	e.end(1)

	c := NewChecker(nil, BySeq)
	if found := c.Process([]*txn.Txn{a, b}); len(found) != 1 {
		t.Fatalf("expected 1 precise violation, got %d", len(found))
	}
}

// TestIntraThreadEdgeCycle: B overlaps two transactions of thread 0; the
// precise cycle B -> A1 -> A2 -> B needs the intra-thread program-order
// edge A1 -> A2.
func TestIntraThreadEdgeCycle(t *testing.T) {
	for _, order := range []ReplayOrder{BySeq, ByEdges} {
		e := newEnv()
		b := e.begin(1, 2)
		e.access(1, 7, 0, true) // B wr w
		a1 := e.begin(0, 1)
		e.edge(b, a1)
		e.access(0, 7, 0, false) // A1 rd w  (dep B -> A1)
		e.end(0)
		a2 := e.begin(0, 3)
		e.access(0, 8, 0, true) // A2 wr z
		e.end(0)
		e.edge(a2, b)
		e.access(1, 8, 0, false) // B rd z  (dep A2 -> B)
		e.end(1)

		c := NewChecker(nil, order)
		found := c.Process([]*txn.Txn{a1, a2, b})
		if len(found) != 1 {
			t.Fatalf("order %v: found %d, want 1 (cycle through intra edge)", order, len(found))
		}
		if got := len(found[0].Cycle); got != 3 {
			t.Errorf("order %v: cycle size %d, want 3", order, got)
		}
	}
}

// TestSyncMetadataSeparateFromData: a sync access and a data access to the
// same (object, field) must not be confused.
func TestSyncMetadataSeparateFromData(t *testing.T) {
	e := newEnv()
	a := e.begin(0, 1)
	b := e.begin(1, 2)
	e.now++
	e.mgr.Record(0, 5, 0, true, true, e.now) // A releases lock o5 (sync write)
	e.access(1, 5, 0, false)                 // B reads data field o5.0
	e.end(0)
	e.end(1)

	c := NewChecker(nil, BySeq)
	c.Process([]*txn.Txn{a, b})
	if c.Stats().PDGEdges != 0 {
		t.Errorf("sync and data metadata must be separate, got %d edges", c.Stats().PDGEdges)
	}
}

// TestSyncDependenceDetected: release (write) then acquire (read) on the
// same lock creates a sync dependence edge.
func TestSyncDependenceDetected(t *testing.T) {
	e := newEnv()
	a := e.begin(0, 1)
	b := e.begin(1, 2)
	e.now++
	e.mgr.Record(0, 5, 0, true, true, e.now) // A release
	e.now++
	e.mgr.Record(1, 5, 0, false, true, e.now) // B acquire
	e.end(0)
	e.end(1)

	c := NewChecker(nil, BySeq)
	c.Process([]*txn.Txn{a, b})
	if c.Stats().PDGEdges != 1 {
		t.Errorf("release-acquire should create one edge, got %d", c.Stats().PDGEdges)
	}
}

// TestDedupAcrossOverlappingSCCs: processing a superset SCC must not
// re-report the same precise cycle.
func TestDedupAcrossOverlappingSCCs(t *testing.T) {
	e := newEnv()
	a := e.begin(0, 1)
	b := e.begin(1, 2)
	e.access(0, 9, 0, false)
	e.access(1, 9, 0, false)
	e.edge(a, b)
	e.access(1, 9, 0, true)
	e.end(1)
	e.edge(b, a)
	e.access(0, 9, 0, true)
	e.end(0)
	cNew := e.begin(2, 3)
	e.end(2)

	c := NewChecker(nil, BySeq)
	if found := c.Process([]*txn.Txn{a, b}); len(found) != 1 {
		t.Fatalf("first SCC: %d violations", len(found))
	}
	if found := c.Process([]*txn.Txn{a, b, cNew}); len(found) != 0 {
		t.Fatalf("superset SCC re-reported the cycle")
	}
	if len(c.Violations()) != 1 {
		t.Errorf("total violations = %d, want 1", len(c.Violations()))
	}
}

// TestReadWriteClearsReaders: Figure 5's WRITE rule clears all last
// readers; a later write by the same reader-thread must not produce a
// stale-read edge.
func TestWriteClearsReaders(t *testing.T) {
	e := newEnv()
	a := e.begin(0, 1)
	b := e.begin(1, 2)
	e.access(0, 9, 0, false) // A rd x
	e.edge(a, b)
	e.access(1, 9, 0, true) // B wr x: clears A's read, edge A -> B
	e.access(1, 9, 0, true) // B wr x again (elided anyway)
	e.end(0)
	e.end(1)
	cNew := e.begin(2, 3)
	e.edge(b, cNew)
	e.access(2, 9, 0, true) // C wr x: edge B -> C only (A's read cleared)
	e.end(2)

	c := NewChecker(nil, BySeq)
	c.Process([]*txn.Txn{a, b, cNew})
	if got := c.Stats().PDGEdges; got != 2 {
		t.Errorf("edges = %d, want 2 (A->B, B->C)", got)
	}
}

// TestEmptySCCLogs: transactions with empty logs (everything elided or
// filtered) must not crash replay.
func TestEmptySCCLogs(t *testing.T) {
	e := newEnv()
	a := e.begin(0, 1)
	b := e.begin(1, 2)
	e.end(0)
	e.end(1)
	c := NewChecker(nil, ByEdges)
	if found := c.Process([]*txn.Txn{a, b}); len(found) != 0 {
		t.Errorf("empty logs produced violations: %v", found)
	}
}

// TestByEdgesOrderRespectsConstraints: with edge occurrences recorded, the
// ByEdges replay must order the dependence correctly even though the source
// transaction has a larger ID and would otherwise be scanned later.
func TestByEdgesOrderRespectsConstraints(t *testing.T) {
	e := newEnv()
	// b created FIRST so a has the higher ID (scan order would pick a
	// first without constraints).
	b := e.begin(1, 2)
	a := e.begin(0, 1)
	e.access(0, 9, 0, true)  // a wr x (comes first in time)
	e.edge(a, b)             // recorded at b's read
	e.access(1, 9, 0, false) // b rd x
	e.end(0)
	e.end(1)

	c := NewChecker(nil, ByEdges)
	c.Process([]*txn.Txn{a, b})
	if c.Stats().PDGEdges != 1 {
		t.Errorf("dependence a->b must be reconstructed, got %d edges", c.Stats().PDGEdges)
	}
}

func TestStatsAccumulate(t *testing.T) {
	e := newEnv()
	a := e.begin(0, 1)
	e.access(0, 1, 0, true)
	e.end(0)
	c := NewChecker(nil, BySeq)
	c.Process([]*txn.Txn{a})
	st := c.Stats()
	if st.SCCsProcessed != 1 || st.TxnsProcessed != 1 || st.EntriesReplayed != 1 {
		t.Errorf("stats: %+v", st)
	}
}

// TestSegmentationPreventsOverMergeFalsePositive pins the unary
// re-splitting behavior directly: ICD's object-granular edges can merge two
// unary accesses (w1 = wr x.0, w2 = wr x.1) into one unary transaction even
// though an atomic transaction's accesses interleave between them
// (tx: wr x.1 ... rd x.0). Replayed naively, the merged unary forms a
// cycle; re-splitting at the precise incoming edge (w2 starts a fresh
// segment) restores the singleton ground truth, which is serializable.
func TestSegmentationPreventsOverMergeFalsePositive(t *testing.T) {
	e := newEnv()
	tx := e.begin(1, 7)
	e.access(1, 3, 1, true)  // tx wr x.1   @~seq1
	u := e.mgr.Current(0)    // merged unary on thread 0
	e.access(0, 3, 0, true)  // u wr x.0  (w1)
	e.edge(tx, u)            // imprecise IDG edge lands before w2
	e.access(0, 3, 1, true)  // u wr x.1  (w2) -- precise incoming edge from tx
	e.access(1, 3, 0, false) // tx rd x.0 -- precise incoming edge from u (w1)
	e.end(1)
	_ = u

	c := NewChecker(nil, BySeq)
	found := c.Process(append(e.mgr.All()[:0:0], e.mgr.All()...))
	if len(found) != 0 {
		t.Fatalf("over-merged unary produced a false positive: %v", found)
	}
	// The same log WITHOUT segmentation would cycle: verify the precise
	// edges exist in both directions between tx and the unary's segments.
	if c.Stats().PDGEdges < 2 {
		t.Errorf("expected both precise dependences, got %d edges", c.Stats().PDGEdges)
	}
}

// TestSegmentationStillFindsRealCycle: when the in-edge lands on the unary
// segment's FIRST access and a later access feeds back, the cycle is real
// (in-point precedes out-point) and must survive segmentation.
func TestSegmentationStillFindsRealCycle(t *testing.T) {
	e := newEnv()
	tx := e.begin(1, 7)
	e.access(1, 3, 1, true) // tx wr x.1
	e.edge(tx, e.mgr.Current(0))
	e.access(0, 3, 1, false) // u rd x.1  (in-edge at first access)
	e.access(0, 3, 0, true)  // u wr x.0  (same segment, later)
	e.edge(e.mgr.Current(0), tx)
	e.access(1, 3, 0, false) // tx rd x.0 (out from u back into tx)
	e.end(1)

	c := NewChecker(nil, BySeq)
	found := c.Process(append(e.mgr.All()[:0:0], e.mgr.All()...))
	if len(found) != 1 {
		t.Fatalf("real cycle lost by segmentation: %d violations", len(found))
	}
}
