// Package supervise makes checking trials survivable and budgeted.
//
// The paper's own evaluation is full of runs that fail: PCD-only runs
// exhaust memory (§5.4), 32-bit heaps go OOM (§5.1), and multi-run mode
// exists precisely as a degraded-but-cheap fallback to single-run mode. A
// production checker therefore needs a supervisor between "run one trial"
// and "run a 100-trial check": one pathological schedule, one checker
// panic, or one runaway execution must not sink the whole check.
//
// Trial runs a single attempt function under that supervision:
//
//   - cancellation: the parent context aborts the whole check promptly
//     (ErrCanceled);
//   - wall-clock budget: each attempt runs under an optional deadline,
//     surfaced as ErrTrialTimeout;
//   - panic quarantine: a panicking checker is recovered and converted into
//     a structured TrialFailure with a stable stack digest;
//   - bounded retry: schedule-dependent failures (vm.ErrDeadlock,
//     vm.ErrStepLimit) are retried under rotated seeds, and the retried-away
//     failures stay on the record, marked Recovered.
//
// The package is deliberately generic over the attempt's result type so the
// public API, the CLI, and tests can all reuse the same supervision.
package supervise

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"doublechecker/internal/obs"
	"doublechecker/internal/telemetry"
	"doublechecker/internal/vm"
)

// Typed supervision errors. Callers match them with errors.Is.
var (
	// ErrCanceled reports that the check's parent context was canceled; the
	// supervisor aborts promptly instead of starting further attempts.
	ErrCanceled = errors.New("supervise: check canceled")
	// ErrTrialTimeout reports that one trial attempt exceeded its wall-clock
	// budget (Budget.TrialTimeout).
	ErrTrialTimeout = errors.New("supervise: trial deadline exceeded")
)

// FailureKind classifies why a trial attempt failed.
type FailureKind string

// The failure kinds the supervisor distinguishes.
const (
	// KindPanic is a quarantined checker panic.
	KindPanic FailureKind = "panic"
	// KindTimeout is a trial that exceeded its wall-clock budget.
	KindTimeout FailureKind = "timeout"
	// KindDeadlock is a schedule that deadlocked the program (retryable).
	KindDeadlock FailureKind = "deadlock"
	// KindStepLimit is an execution that exceeded its step budget (retryable).
	KindStepLimit FailureKind = "step-limit"
	// KindOOM is a run that tripped its analysis memory budget.
	KindOOM FailureKind = "oom"
	// KindError is any other attempt error.
	KindError FailureKind = "error"
)

// Classify maps an attempt error to its FailureKind.
func Classify(err error) FailureKind {
	switch {
	case errors.Is(err, ErrTrialTimeout), errors.Is(err, context.DeadlineExceeded):
		return KindTimeout
	case errors.Is(err, vm.ErrDeadlock):
		return KindDeadlock
	case errors.Is(err, vm.ErrStepLimit):
		return KindStepLimit
	default:
		return KindError
	}
}

// Transient reports whether err is schedule-dependent and therefore worth
// retrying under a rotated seed: a deadlock or a blown step budget may not
// recur on a different interleaving, whereas a panic or a parse error will.
func Transient(err error) bool {
	return errors.Is(err, vm.ErrDeadlock) || errors.Is(err, vm.ErrStepLimit)
}

// TrialFailure is the structured record of one failed trial attempt — what
// the supervisor puts on the report instead of aborting the check.
type TrialFailure struct {
	// Analysis names the configuration that failed (e.g. "single-run",
	// "dc-first").
	Analysis string
	// Seed is the schedule seed of the failing attempt (retries rotate it).
	Seed int64
	// Attempt is the 1-based attempt number within the trial.
	Attempt int
	// Kind classifies the failure.
	Kind FailureKind
	// Err is the underlying error; errors.Is sees through it (e.g. to
	// vm.ErrDeadlock or ErrTrialTimeout).
	Err error
	// StackDigest is a stable 8-hex-digit digest of the panicking
	// goroutine's stack; empty for non-panic failures. Equal digests across
	// runs point at the same checker bug.
	StackDigest string
	// Recovered reports that a later attempt (or a mode downgrade) completed
	// the trial anyway, so the failure cost coverage of one seed, not the
	// trial.
	Recovered bool
	// FlightRecord is the flight recorder's snapshot at quarantine time —
	// the spans and log lines leading up to a panic, captured alongside the
	// stack digest so a post-mortem sees context, not just a fingerprint.
	// Populated only for panics and only when Budget.Recorder is set.
	FlightRecord []obs.Event
}

func (f TrialFailure) String() string {
	s := fmt.Sprintf("%s trial (seed %d, attempt %d) %s: %v", f.Analysis, f.Seed, f.Attempt, f.Kind, f.Err)
	if f.StackDigest != "" {
		s += " [stack " + f.StackDigest + "]"
	}
	if f.Recovered {
		s += " (recovered)"
	}
	return s
}

// DefaultSeedStride is the seed rotation between retry attempts: a prime far
// larger than any realistic trial count, so retry seeds stay disjoint from
// the check's own seed range.
const DefaultSeedStride = 7919

// DefaultMaxBackoff caps exponential retry backoff when Budget.MaxRetryBackoff
// is zero.
const DefaultMaxBackoff = 30 * time.Second

// BackoffFor returns the pause before retry attempt a (a >= 2): base doubled
// per retry past the first, capped at max. It is exported so other retry
// loops (the checking service's transient-failure path) pace themselves
// exactly like Trial does.
func BackoffFor(base, max time.Duration, attempt int) time.Duration {
	if base <= 0 || attempt < 2 {
		return 0
	}
	if max <= 0 {
		max = DefaultMaxBackoff
	}
	d := base
	for i := 2; i < attempt; i++ {
		d *= 2
		// d <= 0 is doubling overflow — past max by definition. The guard
		// also bounds the loop (~63 doublings), so a giant attempt count
		// returns promptly instead of iterating attempt times.
		if d >= max || d <= 0 {
			return max
		}
	}
	if d > max {
		d = max
	}
	return d
}

// sleepCtx pauses for d, returning early with the context's error when ctx
// is done first. A non-positive d returns immediately.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Budget bounds one supervised trial.
type Budget struct {
	// TrialTimeout is the per-attempt wall-clock budget; 0 means unbounded.
	TrialTimeout time.Duration
	// Retries is how many extra attempts a Transient failure earns.
	Retries int
	// RetryBackoff is the pause before the first retry; each further retry
	// doubles it (capped at MaxRetryBackoff). 0 retries immediately. The
	// pause is context-aware: cancellation during a backoff aborts the trial
	// promptly with ErrCanceled instead of consuming the retry.
	RetryBackoff time.Duration
	// MaxRetryBackoff caps the doubled backoff; 0 means DefaultMaxBackoff.
	MaxRetryBackoff time.Duration
	// SeedStride is added to the seed on each retry; 0 means
	// DefaultSeedStride.
	SeedStride int64
	// Telemetry, if non-nil, counts supervision outcomes (attempts, retries,
	// quarantined panics, timeouts, terminal failures, recoveries) under the
	// telemetry.Supervise* names.
	Telemetry *telemetry.Registry
	// Recorder, if non-nil, receives a flight-recorder event for every
	// quarantined panic, and its snapshot at that instant is attached to
	// the TrialFailure (FlightRecord) — the post-mortem record of what the
	// process was doing when the checker blew up.
	Recorder *obs.FlightRecorder
}

// count bumps one supervision counter when a registry is attached.
func (b Budget) count(name string) {
	if b.Telemetry != nil {
		b.Telemetry.Counter(name).Inc()
	}
}

// Outcome is the result of one supervised trial.
type Outcome[T any] struct {
	// Value is the successful attempt's result; meaningful only when OK.
	Value T
	// OK reports whether any attempt completed.
	OK bool
	// Seed is the seed of the successful attempt (it differs from the trial
	// seed when a retry recovered the trial); the trial seed when none did.
	Seed int64
	// Attempts is how many attempts ran.
	Attempts int
	// Failures records every failed attempt in order. When OK, they are all
	// marked Recovered.
	Failures []TrialFailure
}

// LastFailure returns the final attempt's failure, or nil.
func (o *Outcome[T]) LastFailure() *TrialFailure {
	if o.OK || len(o.Failures) == 0 {
		return nil
	}
	return &o.Failures[len(o.Failures)-1]
}

// Trial runs one supervised trial of attempt. The returned error is non-nil
// only for whole-check aborts (a canceled parent context, as ErrCanceled);
// every per-trial failure — panic, timeout, deadlock, step limit — is
// absorbed into the Outcome so the caller's remaining trials continue.
func Trial[T any](ctx context.Context, b Budget, analysis string, seed int64,
	attempt func(ctx context.Context, seed int64) (T, error)) (Outcome[T], error) {

	out := Outcome[T]{Seed: seed}
	stride := b.SeedStride
	if stride == 0 {
		stride = DefaultSeedStride
	}
	trialSpan, ctx := obs.StartSpan(ctx, telemetry.SpanTrial)
	trialSpan.SetStr("analysis", analysis)
	defer func() {
		trialSpan.SetInt("attempts", int64(out.Attempts))
		trialSpan.End()
	}()
	for a := 1; ; a++ {
		if cerr := ctx.Err(); cerr != nil {
			return out, fmt.Errorf("%w: %w", ErrCanceled, cerr)
		}
		// Pace retries: a transient failure earns another attempt only after
		// a doubling pause, and a cancellation that lands inside the pause
		// aborts the trial without consuming the retry (Attempts stays at the
		// failed attempt's count and no rotated seed is burned).
		if cerr := sleepCtx(ctx, BackoffFor(b.RetryBackoff, b.MaxRetryBackoff, a)); cerr != nil {
			return out, fmt.Errorf("%w: %w", ErrCanceled, cerr)
		}
		s := seed + int64(a-1)*stride
		out.Attempts = a
		b.count(telemetry.SuperviseAttempts)
		if a > 1 {
			b.count(telemetry.SuperviseRetries)
		}
		attemptSpan, actx := obs.StartSpan(ctx, telemetry.SpanTrialAttempt)
		if attemptSpan.Live() {
			attemptSpan.SetInt("attempt", int64(a))
			attemptSpan.SetInt("seed", s)
		}
		v, err, panicked, digest := runAttempt(actx, b.TrialTimeout, s, attempt)
		if err == nil {
			attemptSpan.End()
			out.Value, out.OK, out.Seed = v, true, s
			for i := range out.Failures {
				out.Failures[i].Recovered = true
				b.count(telemetry.SuperviseRecovered)
			}
			return out, nil
		}
		// A failing attempt under a done parent context means the check was
		// canceled, not that the trial hit its own budget.
		if cerr := ctx.Err(); cerr != nil && !panicked {
			attemptSpan.End()
			return out, fmt.Errorf("%w: %w", ErrCanceled, cerr)
		}
		f := TrialFailure{Analysis: analysis, Seed: s, Attempt: a, Err: err, StackDigest: digest}
		switch {
		case panicked:
			f.Kind = KindPanic
			b.count(telemetry.SupervisePanics)
			// The flight recorder's state at this instant IS the post-mortem:
			// record the panic itself, then snapshot the recent span/log
			// history into the quarantine record.
			b.Recorder.Add(obs.Event{
				Kind:    obs.EventPanic,
				Name:    digest,
				Msg:     fmt.Sprintf("%s trial (seed %d, attempt %d): %v", analysis, s, a, err),
				TraceID: attemptSpan.TraceID(),
				SpanID:  attemptSpan.SpanID(),
			})
			if b.Recorder != nil {
				f.FlightRecord = b.Recorder.Snapshot()
			}
		case errors.Is(err, context.DeadlineExceeded):
			f.Kind = KindTimeout
			f.Err = fmt.Errorf("%w: %w", ErrTrialTimeout, err)
			b.count(telemetry.SuperviseTimeouts)
		default:
			f.Kind = Classify(err)
		}
		if attemptSpan.Live() {
			attemptSpan.SetStr("failure", string(f.Kind))
		}
		attemptSpan.End()
		out.Failures = append(out.Failures, f)
		if !Transient(err) || a > b.Retries {
			b.count(telemetry.SuperviseFailures)
			return out, nil
		}
	}
}

// runAttempt executes one attempt under an optional deadline, quarantining
// panics into (err, panicked, digest).
func runAttempt[T any](ctx context.Context, timeout time.Duration, seed int64,
	attempt func(context.Context, int64) (T, error)) (v T, err error, panicked bool, digest string) {

	actx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			digest = stackDigest(debug.Stack())
			err = fmt.Errorf("checker panic: %v", r)
			panicked = true
		}
	}()
	v, err = attempt(actx, seed)
	return v, err, false, ""
}

// stackDigest hashes a panic stack into a stable 8-hex-digit fingerprint.
// Only the frames between the panic site and the supervisor's recover point
// are hashed, and goroutine IDs, argument values, and code offsets are
// stripped: the same checker bug digests identically across trials, seeds,
// and processes, so repeated failures can be recognized as one bug.
func stackDigest(stack []byte) string {
	return digestBelow(stack, "supervise.runAttempt")
}

// PanicDigest hashes a panic stack captured with debug.Stack into the same
// stable fingerprint TrialFailure carries. Other recovery points — the PCD
// worker pool quarantining a per-SCC panic — use it so one underlying bug
// digests identically whether a trial supervisor or a pool worker caught it.
func PanicDigest(stack []byte) string {
	return digestBelow(stack, "supervise.runAttempt", "pcd.(*Pool).runJob")
}

// digestBelow implements stack digesting, cutting the trace at the first
// frame matching any of the recover-point markers.
func digestBelow(stack []byte, stops ...string) string {
	lines := strings.Split(string(stack), "\n")
	// The traceback reads: deferred recover frames, runtime.gopanic (shown
	// as "panic(...)"), the panic site's frames, then the recover point and
	// its callers. Keep the slice between the last panic frame and the
	// recover point.
	start := 0
	for i, ln := range lines {
		if strings.HasPrefix(ln, "panic(") {
			start = i + 2 // skip the panic frame's own file line too
		}
	}
	end := len(lines)
scan:
	for i := start; i < len(lines); i++ {
		for _, stop := range stops {
			if strings.Contains(lines[i], stop) {
				end = i
				break scan
			}
		}
	}
	var b strings.Builder
	for _, ln := range lines[start:end] {
		if strings.HasPrefix(ln, "goroutine ") {
			continue
		}
		if i := strings.LastIndexByte(ln, '('); i > 0 {
			ln = ln[:i] // drop argument values
		}
		if i := strings.Index(ln, " +0x"); i > 0 {
			ln = ln[:i] // drop code offsets
		}
		b.WriteString(ln)
		b.WriteByte('\n')
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:4])
}
