package supervise

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"doublechecker/internal/vm"
)

// TestBackoffForEdgeCases pins the boundary behavior of the retry pacing
// function: disabled backoff, pre-retry attempts, the doubling cap, the
// default cap, and attempt counts large enough to overflow the doubling.
func TestBackoffForEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		base    time.Duration
		max     time.Duration
		attempt int
		want    time.Duration
	}{
		{"zero retry budget: base 0 disables backoff", 0, time.Minute, 5, 0},
		{"negative base disables backoff", -time.Second, time.Minute, 5, 0},
		{"attempt 0 pays nothing", time.Second, time.Minute, 0, 0},
		{"first attempt pays nothing", time.Second, time.Minute, 1, 0},
		{"negative attempt pays nothing", time.Second, time.Minute, -3, 0},
		{"first retry pays base", time.Second, time.Minute, 2, time.Second},
		{"second retry doubles", time.Second, time.Minute, 3, 2 * time.Second},
		{"doubling caps at max", time.Second, 5 * time.Second, 6, 5 * time.Second},
		{"base above max clamps", 10 * time.Second, 5 * time.Second, 2, 5 * time.Second},
		{"zero max means DefaultMaxBackoff", time.Second, 0, 60, DefaultMaxBackoff},
		{"negative max means DefaultMaxBackoff", time.Second, -1, 60, DefaultMaxBackoff},
		// Overflow territory: the doubling must hit the cap, never wrap
		// negative or spin attempt-many iterations.
		{"max-attempt overflow returns max", time.Nanosecond, math.MaxInt64, math.MaxInt, math.MaxInt64},
		{"huge attempt with default cap", time.Second, 0, math.MaxInt, DefaultMaxBackoff},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			start := time.Now()
			got := BackoffFor(tc.base, tc.max, tc.attempt)
			if got != tc.want {
				t.Fatalf("BackoffFor(%v, %v, %d) = %v, want %v", tc.base, tc.max, tc.attempt, got, tc.want)
			}
			if got < 0 {
				t.Fatalf("negative backoff %v", got)
			}
			if elapsed := time.Since(start); elapsed > time.Second {
				t.Fatalf("BackoffFor took %v; the doubling loop is not bounded", elapsed)
			}
		})
	}
}

// TestTrialAlreadyCanceledContext: a trial under an already-canceled context
// aborts with ErrCanceled before running any attempt.
func TestTrialAlreadyCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	out, err := Trial(ctx, Budget{Retries: 3}, "test", 1,
		func(context.Context, int64) (int, error) {
			ran = true
			return 0, nil
		})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ran {
		t.Fatal("attempt ran under a canceled context")
	}
	if out.OK || out.Attempts != 0 {
		t.Fatalf("outcome %+v, want no attempts", out)
	}
}

// TestTrialCanceledDuringBackoff: cancellation landing inside the retry
// pause aborts with ErrCanceled without consuming the retry — the failed
// attempt count stands and no rotated seed is burned.
func TestTrialCanceledDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	attempts := 0
	out, err := Trial(ctx, Budget{Retries: 2, RetryBackoff: time.Minute}, "test", 7,
		func(context.Context, int64) (int, error) {
			attempts++
			// Cancel while the supervisor is about to pause before retry 2.
			time.AfterFunc(10*time.Millisecond, cancel)
			return 0, vm.ErrDeadlock
		})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if attempts != 1 || out.Attempts != 1 {
		t.Fatalf("attempts = %d (outcome %d), want exactly 1: the backoff cancellation must not consume the retry", attempts, out.Attempts)
	}
	if out.OK {
		t.Fatal("outcome marked OK after cancellation")
	}
}
