package supervise

import (
	"context"
	"testing"

	"doublechecker/internal/obs"
)

// TestTrialPanicCapturesFlightRecord: a quarantined panic must carry the
// flight recorder's snapshot at quarantine time — including the panic event
// itself and whatever the process was doing before (here, a log line and a
// finished span), so a post-mortem has context beyond the stack digest.
func TestTrialPanicCapturesFlightRecord(t *testing.T) {
	rec := obs.NewFlightRecorder(16)
	rec.Add(obs.Event{Kind: obs.EventLog, Name: "INFO", Msg: "pre-panic activity"})
	rec.Add(obs.Event{Kind: obs.EventSpan, Name: "warmup"})

	out, err := Trial(context.Background(), Budget{Retries: 3, Recorder: rec}, "single-run", 1,
		func(_ context.Context, _ int64) (int, error) { panic("checker bug") })
	if err != nil {
		t.Fatal(err)
	}
	f := out.LastFailure()
	if f == nil || f.Kind != KindPanic {
		t.Fatalf("want panic failure, got %+v", out.Failures)
	}
	if len(f.FlightRecord) == 0 {
		t.Fatal("panic quarantine captured no flight record")
	}
	var panics, logs int
	for _, e := range f.FlightRecord {
		switch e.Kind {
		case obs.EventPanic:
			panics++
			if e.Name != f.StackDigest {
				t.Errorf("panic event named %q, want the stack digest %q", e.Name, f.StackDigest)
			}
		case obs.EventLog:
			logs++
		}
	}
	if panics != 1 {
		t.Errorf("flight record holds %d panic events, want 1", panics)
	}
	if logs != 1 {
		t.Error("pre-panic log line missing from the flight record")
	}
	// The snapshot is a copy: later recorder traffic must not mutate the
	// quarantine record.
	before := len(f.FlightRecord)
	rec.Add(obs.Event{Kind: obs.EventLog, Name: "INFO", Msg: "post-quarantine"})
	if len(f.FlightRecord) != before {
		t.Error("quarantine record aliases the live ring")
	}
}

// TestTrialPanicWithoutRecorder: a nil Budget.Recorder is the common case;
// the panic path must stay nil-safe and simply attach no flight record.
func TestTrialPanicWithoutRecorder(t *testing.T) {
	out, err := Trial(context.Background(), Budget{}, "single-run", 1,
		func(_ context.Context, _ int64) (int, error) { panic("checker bug") })
	if err != nil {
		t.Fatal(err)
	}
	f := out.LastFailure()
	if f == nil || f.Kind != KindPanic {
		t.Fatalf("want panic failure, got %+v", out.Failures)
	}
	if f.FlightRecord != nil {
		t.Errorf("recorderless trial attached a flight record: %+v", f.FlightRecord)
	}
}
