package supervise

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"doublechecker/internal/vm"
)

func TestTrialFirstAttemptSucceeds(t *testing.T) {
	out, err := Trial(context.Background(), Budget{}, "test", 7,
		func(_ context.Context, seed int64) (int, error) { return int(seed) * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK || out.Value != 14 || out.Seed != 7 || out.Attempts != 1 || len(out.Failures) != 0 {
		t.Fatalf("unexpected outcome: %+v", out)
	}
}

func TestTrialPanicQuarantine(t *testing.T) {
	calls := 0
	out, err := Trial(context.Background(), Budget{Retries: 3}, "test", 1,
		func(_ context.Context, _ int64) (int, error) { calls++; panic("checker bug") })
	if err != nil {
		t.Fatal(err)
	}
	if out.OK {
		t.Fatal("panic attempt reported OK")
	}
	if calls != 1 {
		t.Fatalf("panics must not be retried; attempt ran %d times", calls)
	}
	f := out.LastFailure()
	if f == nil || f.Kind != KindPanic {
		t.Fatalf("want panic failure, got %+v", out.Failures)
	}
	if len(f.StackDigest) != 8 {
		t.Fatalf("want 8-hex stack digest, got %q", f.StackDigest)
	}
	if f.Err == nil || f.Recovered {
		t.Fatalf("bad failure record: %+v", f)
	}
}

func TestTrialPanicDigestIsStable(t *testing.T) {
	boom := func(_ context.Context, _ int64) (int, error) { panic("same site") }
	a, _ := Trial(context.Background(), Budget{}, "test", 1, boom)
	b, _ := Trial(context.Background(), Budget{}, "test", 2, boom)
	if a.Failures[0].StackDigest == "" || a.Failures[0].StackDigest != b.Failures[0].StackDigest {
		t.Fatalf("digests differ for the same panic site: %q vs %q",
			a.Failures[0].StackDigest, b.Failures[0].StackDigest)
	}
}

func TestTrialRetriesTransientWithSeedRotation(t *testing.T) {
	var seeds []int64
	out, err := Trial(context.Background(), Budget{Retries: 2}, "test", 100,
		func(_ context.Context, seed int64) (int64, error) {
			seeds = append(seeds, seed)
			if len(seeds) < 3 {
				return 0, fmt.Errorf("schedule %d: %w", seed, vm.ErrDeadlock)
			}
			return seed, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK || out.Attempts != 3 {
		t.Fatalf("unexpected outcome: %+v", out)
	}
	want := []int64{100, 100 + DefaultSeedStride, 100 + 2*DefaultSeedStride}
	for i, s := range want {
		if seeds[i] != s {
			t.Fatalf("attempt %d ran seed %d, want %d", i+1, seeds[i], s)
		}
	}
	if out.Seed != want[2] {
		t.Fatalf("Outcome.Seed = %d, want the succeeding seed %d", out.Seed, want[2])
	}
	for _, f := range out.Failures {
		if !f.Recovered || f.Kind != KindDeadlock {
			t.Fatalf("retried-away failure not marked recovered: %+v", f)
		}
	}
}

func TestTrialRetriesExhausted(t *testing.T) {
	calls := 0
	out, err := Trial(context.Background(), Budget{Retries: 2}, "test", 1,
		func(_ context.Context, _ int64) (int, error) { calls++; return 0, vm.ErrStepLimit })
	if err != nil {
		t.Fatal(err)
	}
	if out.OK || calls != 3 || len(out.Failures) != 3 {
		t.Fatalf("want 3 failed attempts, got calls=%d outcome=%+v", calls, out)
	}
	if f := out.LastFailure(); !errors.Is(f.Err, vm.ErrStepLimit) || f.Kind != KindStepLimit || f.Recovered {
		t.Fatalf("bad final failure: %+v", f)
	}
	if out.Failures[0].Recovered {
		t.Fatal("failure marked recovered although the trial never completed")
	}
}

func TestTrialNonTransientNotRetried(t *testing.T) {
	calls := 0
	out, _ := Trial(context.Background(), Budget{Retries: 5}, "test", 1,
		func(_ context.Context, _ int64) (int, error) { calls++; return 0, errors.New("parse error") })
	if out.OK || calls != 1 {
		t.Fatalf("non-transient error retried %d times", calls)
	}
	if out.Failures[0].Kind != KindError {
		t.Fatalf("want KindError, got %+v", out.Failures[0])
	}
}

func TestTrialTimeout(t *testing.T) {
	out, err := Trial(context.Background(), Budget{TrialTimeout: 20 * time.Millisecond}, "test", 1,
		func(ctx context.Context, _ int64) (int, error) {
			<-ctx.Done() // a well-behaved trial observes its deadline
			return 0, fmt.Errorf("aborted: %w", ctx.Err())
		})
	if err != nil {
		t.Fatal(err)
	}
	if out.OK {
		t.Fatal("timed-out trial reported OK")
	}
	f := out.LastFailure()
	if f.Kind != KindTimeout || !errors.Is(f.Err, ErrTrialTimeout) {
		t.Fatalf("want ErrTrialTimeout failure, got %+v", f)
	}
}

func TestTrialCanceledParentAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	_, err := Trial(ctx, Budget{}, "test", 1,
		func(_ context.Context, _ int64) (int, error) { calls++; return 1, nil })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if calls != 0 {
		t.Fatalf("attempt ran %d times under a canceled context", calls)
	}
}

func TestTrialCancellationMidTrialIsNotATimeout(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	_, err := Trial(ctx, Budget{TrialTimeout: time.Hour}, "test", 1,
		func(actx context.Context, _ int64) (int, error) {
			cancel() // the user hits ^C while the trial runs
			<-actx.Done()
			return 0, actx.Err()
		})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled for parent cancellation, got %v", err)
	}
}

// TestTrialCancellationRacingRetry: a context canceled between a transient
// failure and its retry must abort the trial promptly, classified as a
// cancellation (never retried as if transient), without burning a retry or a
// rotated seed on the canceled attempt.
func TestTrialCancellationRacingRetry(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var seeds []int64
	start := time.Now()
	out, err := Trial(ctx, Budget{Retries: 5, RetryBackoff: time.Hour}, "test", 1,
		func(_ context.Context, seed int64) (int, error) {
			seeds = append(seeds, seed)
			cancel() // cancellation lands after the failure, before the retry
			return 0, vm.ErrDeadlock
		})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !Transient(err) == false {
		t.Fatalf("cancellation classified transient: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation did not interrupt the backoff pause (took %v)", elapsed)
	}
	if len(seeds) != 1 || seeds[0] != 1 {
		t.Fatalf("canceled trial consumed rotated seeds: ran %v", seeds)
	}
	if out.Attempts != 1 {
		t.Fatalf("canceled trial recorded %d attempts, want 1", out.Attempts)
	}
}

// TestTrialCanceledAttemptDoesNotConsumeRetryBudget: when the parent context
// dies mid-attempt, the failing attempt is reported as a cancellation — the
// retry budget and the seed rotation stay untouched, so a later caller (the
// service retrying after drain, say) still has its full budget.
func TestTrialCanceledAttemptDoesNotConsumeRetryBudget(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	out, err := Trial(ctx, Budget{Retries: 3}, "test", 42,
		func(_ context.Context, _ int64) (int, error) {
			calls++
			cancel()
			return 0, vm.ErrStepLimit // transient on its face, but the check is dead
		})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("canceled check retried: attempt ran %d times", calls)
	}
	if len(out.Failures) != 0 {
		t.Fatalf("cancellation recorded as a trial failure: %+v", out.Failures)
	}
}

func TestTrialRetryBackoffPacesAttempts(t *testing.T) {
	const base = 20 * time.Millisecond
	var times []time.Time
	out, err := Trial(context.Background(), Budget{Retries: 2, RetryBackoff: base}, "test", 1,
		func(_ context.Context, _ int64) (int, error) {
			times = append(times, time.Now())
			if len(times) < 3 {
				return 0, vm.ErrDeadlock
			}
			return 1, nil
		})
	if err != nil || !out.OK || out.Attempts != 3 {
		t.Fatalf("outcome: %+v, err %v", out, err)
	}
	if gap := times[1].Sub(times[0]); gap < base {
		t.Errorf("first retry after %v, want >= %v", gap, base)
	}
	if gap := times[2].Sub(times[1]); gap < 2*base {
		t.Errorf("second retry after %v, want >= %v (doubled)", gap, 2*base)
	}
}

func TestClassifyAndTransient(t *testing.T) {
	cases := []struct {
		err       error
		kind      FailureKind
		transient bool
	}{
		{fmt.Errorf("x: %w", vm.ErrDeadlock), KindDeadlock, true},
		{fmt.Errorf("x: %w", vm.ErrStepLimit), KindStepLimit, true},
		{fmt.Errorf("x: %w", ErrTrialTimeout), KindTimeout, false},
		{context.DeadlineExceeded, KindTimeout, false},
		{errors.New("other"), KindError, false},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.kind {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.kind)
		}
		if got := Transient(c.err); got != c.transient {
			t.Errorf("Transient(%v) = %v, want %v", c.err, got, c.transient)
		}
	}
}

func TestFailureString(t *testing.T) {
	f := TrialFailure{Analysis: "single-run", Seed: 3, Attempt: 2, Kind: KindPanic,
		Err: errors.New("checker panic: boom"), StackDigest: "deadbeef", Recovered: true}
	s := f.String()
	for _, want := range []string{"single-run", "seed 3", "attempt 2", "panic", "deadbeef", "recovered"} {
		if !containsStr(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
