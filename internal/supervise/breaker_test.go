package supervise

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker cooldown tests.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1000, 0)} }
func testBreaker(c *fakeClock, n int) *Breaker {
	return NewBreaker(BreakerConfig{Threshold: n, Cooldown: time.Minute, Clock: c.Now})
}

func TestBreakerOpensAfterThresholdSameDigest(t *testing.T) {
	c := newFakeClock()
	b := testBreaker(c, 3)
	for i := 0; i < 2; i++ {
		if tripped := b.Failure("w", "digest-a"); tripped {
			t.Fatalf("failure %d tripped early", i+1)
		}
		if ok, _ := b.Allow("w"); !ok {
			t.Fatalf("closed breaker rejected after %d failures", i+1)
		}
	}
	if !b.Failure("w", "digest-a") {
		t.Fatal("third same-digest failure did not trip")
	}
	if got := b.State("w"); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	ok, retry := b.Allow("w")
	if ok {
		t.Fatal("open breaker admitted work")
	}
	if retry <= 0 || retry > time.Minute {
		t.Fatalf("retryAfter = %v, want in (0, cooldown]", retry)
	}
	// Other keys are unaffected.
	if ok, _ := b.Allow("healthy"); !ok {
		t.Fatal("healthy key rejected")
	}
}

func TestBreakerDigestChangeRestartsCount(t *testing.T) {
	b := testBreaker(newFakeClock(), 2)
	b.Failure("w", "digest-a")
	b.Failure("w", "digest-b") // different bug: count restarts at 1
	if got := b.State("w"); got != BreakerClosed {
		t.Fatalf("state = %v, want closed (digests alternate)", got)
	}
	if !b.Failure("w", "digest-b") {
		t.Fatal("second consecutive digest-b failure should trip")
	}
}

func TestBreakerSuccessResets(t *testing.T) {
	b := testBreaker(newFakeClock(), 2)
	b.Failure("w", "d")
	b.Success("w")
	if b.Failure("w", "d") {
		t.Fatal("tripped after success reset the count")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	c := newFakeClock()
	b := testBreaker(c, 1)
	b.Failure("w", "d")
	if ok, _ := b.Allow("w"); ok {
		t.Fatal("open breaker admitted before cooldown")
	}
	c.advance(2 * time.Minute)
	// One probe admitted, concurrent callers rejected while it is in flight.
	if ok, _ := b.Allow("w"); !ok {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	if got := b.State("w"); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	if ok, retry := b.Allow("w"); ok || retry != 0 {
		t.Fatalf("second caller during probe: ok=%v retry=%v, want rejected with 0", ok, retry)
	}
	// Probe fails: re-open with a fresh cooldown.
	if !b.Failure("w", "d") {
		t.Fatal("probe failure did not re-trip")
	}
	if ok, _ := b.Allow("w"); ok {
		t.Fatal("re-opened breaker admitted immediately")
	}
	// Next probe succeeds: circuit closes fully.
	c.advance(2 * time.Minute)
	if ok, _ := b.Allow("w"); !ok {
		t.Fatal("second probe not admitted")
	}
	b.Success("w")
	if got := b.State("w"); got != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	if ok, _ := b.Allow("w"); !ok {
		t.Fatal("closed breaker rejected")
	}
}

func TestBreakerOpenKeys(t *testing.T) {
	b := testBreaker(newFakeClock(), 1)
	b.Failure("zeta", "d")
	b.Failure("alpha", "d")
	b.Failure("closed-key", "d") // threshold 1: also opens
	b.Success("closed-key")      // ...but success clears it
	got := b.OpenKeys()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("OpenKeys = %v, want [alpha zeta]", got)
	}
}

func TestBackoffFor(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	wants := map[int]time.Duration{
		1: 0, // first attempt never waits
		2: 10 * time.Millisecond,
		3: 20 * time.Millisecond,
		4: 40 * time.Millisecond,
		5: 80 * time.Millisecond,
		6: 80 * time.Millisecond, // capped
	}
	for attempt, want := range wants {
		if got := BackoffFor(base, max, attempt); got != want {
			t.Errorf("BackoffFor(attempt=%d) = %v, want %v", attempt, got, want)
		}
	}
	if got := BackoffFor(0, max, 5); got != 0 {
		t.Errorf("zero base should disable backoff, got %v", got)
	}
}
