package supervise

import (
	"sort"
	"sync"
	"time"
)

// BreakerState is one key's position in the circuit-breaker state machine.
type BreakerState int

// The breaker states. Closed admits work; Open rejects it until the cooldown
// elapses; HalfOpen admits exactly one probe whose outcome decides between
// re-closing and re-opening.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "BreakerState(?)"
}

// BreakerConfig tunes a Breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive failures with the same panic digest
	// open a key's circuit; 0 means DefaultBreakerThreshold. Failures with
	// differing digests restart the count: one flaky bug and one stable bug
	// interleaved do not pool their failures.
	Threshold int
	// Cooldown is how long an opened key rejects work before a single
	// half-open probe is admitted; 0 means DefaultBreakerCooldown.
	Cooldown time.Duration
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// Breaker defaults.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 30 * time.Second
)

// Breaker is a keyed circuit breaker over repeated supervised failures: the
// key names what keeps failing (a workload, a trace's program+spec identity)
// and the digest names how it fails (PanicDigest's stable fingerprint, or
// any stable failure label). After Threshold consecutive same-digest
// failures the key's circuit opens: further work on that key is rejected —
// quarantined — until the cooldown admits one probe. The rest of the
// system keeps serving healthy keys; this is PR 1's panic quarantine lifted
// from "one trial's failure record" to "an always-on service's admission
// decision".
//
// All methods are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig
	mu  sync.Mutex
	m   map[string]*breakerEntry
}

type breakerEntry struct {
	state    BreakerState
	digest   string // the digest the consecutive-failure count is tracking
	count    int
	openedAt time.Time
	probing  bool // half-open and the single probe slot is taken
	trips    int  // times this key has opened (diagnostics)
}

// NewBreaker returns a Breaker with cfg's thresholds (zero fields take the
// defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = DefaultBreakerThreshold
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultBreakerCooldown
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Breaker{cfg: cfg, m: make(map[string]*breakerEntry)}
}

// Allow reports whether work on key may proceed. When it may not, retryAfter
// is how long until the circuit will admit a probe (0 when a probe is
// already in flight — retry after it resolves). An open key whose cooldown
// has elapsed transitions to half-open and admits the caller as the probe.
func (b *Breaker) Allow(key string) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.m[key]
	if e == nil {
		return true, 0
	}
	switch e.state {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		remaining := e.openedAt.Add(b.cfg.Cooldown).Sub(b.cfg.Clock())
		if remaining > 0 {
			return false, remaining
		}
		e.state = BreakerHalfOpen
		e.probing = true
		return true, 0
	default: // BreakerHalfOpen
		if e.probing {
			return false, 0
		}
		e.probing = true
		return true, 0
	}
}

// Failure records one failure of key with the given stable digest and
// reports whether this failure tripped the circuit open. A half-open probe
// failure re-opens immediately regardless of digest.
func (b *Breaker) Failure(key, digest string) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.m[key]
	if e == nil {
		e = &breakerEntry{}
		b.m[key] = e
	}
	if e.state == BreakerHalfOpen {
		e.state = BreakerOpen
		e.openedAt = b.cfg.Clock()
		e.probing = false
		e.trips++
		return true
	}
	if e.state == BreakerOpen {
		return false
	}
	if e.digest == digest {
		e.count++
	} else {
		e.digest = digest
		e.count = 1
	}
	if e.count >= b.cfg.Threshold {
		e.state = BreakerOpen
		e.openedAt = b.cfg.Clock()
		e.trips++
		return true
	}
	return false
}

// Success records that work on key completed: a half-open probe's success
// closes the circuit, and any success resets the consecutive-failure count.
func (b *Breaker) Success(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.m[key]; e != nil {
		delete(b.m, key)
	}
}

// State returns key's current state (Closed for unknown keys). An open key
// past its cooldown still reports Open: the transition to half-open happens
// on the next Allow.
func (b *Breaker) State(key string) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.m[key]; e != nil {
		return e.state
	}
	return BreakerClosed
}

// OpenKeys lists the keys whose circuits are open or half-open, sorted — the
// service's quarantine roster for health reporting.
func (b *Breaker) OpenKeys() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var keys []string
	for k, e := range b.m {
		if e.state != BreakerClosed {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
