package vm

import "fmt"

// AccessClass distinguishes the three access populations the paper treats
// differently: ordinary field accesses, array element accesses (evaluated
// separately in §5.4), and synchronization accesses (lock acquire/release,
// wait/notify, fork/join — treated as reads and writes on the synchronized
// object, §3.2.2 "Handling synchronization operations").
type AccessClass uint8

const (
	// ClassField is an ordinary object-field access.
	ClassField AccessClass = iota
	// ClassArray is an array element access.
	ClassArray
	// ClassSync is a synchronization operation surfaced as an access.
	ClassSync
)

func (c AccessClass) String() string {
	switch c {
	case ClassField:
		return "field"
	case ClassArray:
		return "array"
	case ClassSync:
		return "sync"
	}
	return fmt.Sprintf("AccessClass(%d)", uint8(c))
}

// Access describes one dynamic shared-memory access as a checker barrier
// sees it.
type Access struct {
	Thread ThreadID
	Obj    ObjectID
	Field  FieldID
	Write  bool // release-like synchronization surfaces as a write
	Class  AccessClass
	Seq    uint64 // global step clock at the access; strictly increasing
}

func (a Access) String() string {
	rw := "rd"
	if a.Write {
		rw = "wr"
	}
	return fmt.Sprintf("t%d %s o%d.%d (%s, seq %d)", a.Thread, rw, a.Obj, a.Field, a.Class, a.Seq)
}

// ExecView is the read-only view of a running execution that checkers may
// consult between events: the global access clock, thread blocked-ness (the
// Octet coordination protocol chooses explicit vs implicit by it), and the
// transactional context of a thread. The live executor (*Exec) implements
// it directly; a trace replayer (internal/trace) reconstructs the same view
// from the recorded event stream, which is what lets any checker run over a
// file with no VM at all.
type ExecView interface {
	// Now returns the global access clock: the Seq of the most recent
	// Access event (0 before the first).
	Now() uint64
	// Blocked reports whether thread t is currently blocked (waiting for a
	// monitor, a join, or a notification) or not running at all.
	Blocked(t ThreadID) bool
	// InTx reports whether thread t is inside a regular transaction.
	InTx(t ThreadID) bool
	// TxMethod returns the method that began t's current regular
	// transaction, or NoMethod.
	TxMethod(t ThreadID) MethodID
}

// Instrumentation receives the execution's event stream. It is the Go
// analogue of the barrier and transaction-demarcation instrumentation the
// paper's compilers insert. Methods are invoked synchronously from the
// executor's single-threaded step loop, so implementations need no locking.
type Instrumentation interface {
	// ProgramStart is invoked once before the first step, with a view of
	// the execution (for clock/blocked/transaction-context queries).
	ProgramStart(e ExecView)
	// ThreadStart is invoked when a thread becomes runnable for the first
	// time, before any of its operations.
	ThreadStart(t ThreadID)
	// ThreadExit is invoked after a thread's last operation.
	ThreadExit(t ThreadID)
	// TxBegin is invoked when thread t enters atomic method m from a
	// non-transactional context, beginning a regular transaction. Nested
	// atomic calls are flattened and do not produce events.
	TxBegin(t ThreadID, m MethodID)
	// TxEnd is invoked when the outermost atomic method of the current
	// regular transaction returns.
	TxEnd(t ThreadID, m MethodID)
	// Access is invoked before each shared-memory access (data, array, or
	// desugared synchronization).
	Access(a Access)
	// ProgramEnd is invoked once after the last step.
	ProgramEnd()
}

// NopInst implements Instrumentation with no-ops. Embed it to implement a
// subset of the interface.
type NopInst struct{}

// ProgramStart implements Instrumentation.
func (NopInst) ProgramStart(ExecView) {}

// ThreadStart implements Instrumentation.
func (NopInst) ThreadStart(ThreadID) {}

// ThreadExit implements Instrumentation.
func (NopInst) ThreadExit(ThreadID) {}

// TxBegin implements Instrumentation.
func (NopInst) TxBegin(ThreadID, MethodID) {}

// TxEnd implements Instrumentation.
func (NopInst) TxEnd(ThreadID, MethodID) {}

// Access implements Instrumentation.
func (NopInst) Access(Access) {}

// ProgramEnd implements Instrumentation.
func (NopInst) ProgramEnd() {}

// MultiInst fans one event stream out to several instrumentations in order.
type MultiInst []Instrumentation

// ProgramStart implements Instrumentation.
func (m MultiInst) ProgramStart(e ExecView) {
	for _, i := range m {
		i.ProgramStart(e)
	}
}

// ThreadStart implements Instrumentation.
func (m MultiInst) ThreadStart(t ThreadID) {
	for _, i := range m {
		i.ThreadStart(t)
	}
}

// ThreadExit implements Instrumentation.
func (m MultiInst) ThreadExit(t ThreadID) {
	for _, i := range m {
		i.ThreadExit(t)
	}
}

// TxBegin implements Instrumentation.
func (m MultiInst) TxBegin(t ThreadID, meth MethodID) {
	for _, i := range m {
		i.TxBegin(t, meth)
	}
}

// TxEnd implements Instrumentation.
func (m MultiInst) TxEnd(t ThreadID, meth MethodID) {
	for _, i := range m {
		i.TxEnd(t, meth)
	}
}

// Access implements Instrumentation.
func (m MultiInst) Access(a Access) {
	for _, i := range m {
		i.Access(a)
	}
}

// ProgramEnd implements Instrumentation.
func (m MultiInst) ProgramEnd() {
	for _, i := range m {
		i.ProgramEnd()
	}
}
