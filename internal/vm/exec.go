package vm

import (
	"context"
	"errors"
	"fmt"

	"doublechecker/internal/cost"
)

// Executor errors.
var (
	// ErrDeadlock is returned when no thread is runnable but threads remain.
	ErrDeadlock = errors.New("vm: deadlock: no runnable threads")
	// ErrStepLimit is returned when execution exceeds Config.MaxSteps.
	ErrStepLimit = errors.New("vm: step limit exceeded")
)

// Config configures an execution.
type Config struct {
	// Sched chooses the interleaving. Defaults to NewRandom(1).
	Sched Scheduler
	// Inst receives the event stream; nil means uninstrumented.
	Inst Instrumentation
	// Atomic reports whether a method is in the atomicity specification
	// (i.e. expected to execute atomically). nil means no method is atomic:
	// every access runs in a unary transaction.
	Atomic func(MethodID) bool
	// Meter, if non-nil, is charged the program's base execution cost.
	// Checkers attached via Inst charge the same meter.
	Meter *cost.Meter
	// MaxSteps bounds execution; 0 means the default (100M).
	MaxSteps uint64
	// MaxCallDepth bounds recursion; 0 means the default (1024).
	MaxCallDepth int
}

// thread run states.
type tstate uint8

const (
	tsNotStarted tstate = iota
	tsRunnable
	tsBlockedLock // trying to acquire blockOn (possibly a wait-reacquire)
	tsBlockedJoin // waiting for thread blockJoin to exit
	tsWaiting     // in the wait set of blockOn
	tsDone
)

type frame struct {
	m             *Method
	pc            int
	atomicEntered bool // this frame began or nested an atomic region
}

type thread struct {
	id          ThreadID
	state       tstate
	frames      []frame
	blockOn     ObjectID
	blockJoin   ThreadID
	savedRec    int32 // monitor recursion to restore after wait
	reacquiring bool  // current op is a wait resuming via reacquisition
	txDepth     int   // nesting depth of atomic frames
	txMethod    MethodID
}

type monitor struct {
	owner   ThreadID // -1 when free
	rec     int32
	waitSet []ThreadID // FIFO wait set (OpWait)
	permits int32      // banked notifies (see OpWait/OpNotify semantics)
}

// Exec runs one program under one configuration. Construct with NewExec and
// drive with Run; an Exec is single-use.
type Exec struct {
	prog     *Program
	cfg      Config
	inst     Instrumentation
	threads  []*thread
	mons     map[ObjectID]*monitor
	step     uint64
	seq      uint64
	stats    Stats
	runnable []ThreadID // scratch
}

var _ ExecView = (*Exec)(nil)

// NewExec prepares an execution of prog.
func NewExec(prog *Program, cfg Config) *Exec {
	if cfg.Sched == nil {
		cfg.Sched = NewRandom(1)
	}
	if cfg.Inst == nil {
		cfg.Inst = NopInst{}
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 100_000_000
	}
	if cfg.MaxCallDepth == 0 {
		cfg.MaxCallDepth = 1024
	}
	e := &Exec{
		prog: prog,
		cfg:  cfg,
		inst: cfg.Inst,
		mons: make(map[ObjectID]*monitor),
	}
	for _, td := range prog.Threads {
		e.threads = append(e.threads, &thread{id: td.ID, state: tsNotStarted, txMethod: NoMethod})
	}
	return e
}

// Prog returns the program under execution.
func (e *Exec) Prog() *Program { return e.prog }

// Now returns the global access clock: the Seq of the most recent Access
// event. Checkers stamp transaction boundaries and edge marks with it, so
// those stamps are directly comparable with Access.Seq values.
func (e *Exec) Now() uint64 { return e.seq }

// Blocked reports whether thread t is currently blocked (waiting for a
// monitor, a join, or a notification) or not running at all. Octet's
// coordination protocol consults this to choose the implicit protocol.
func (e *Exec) Blocked(t ThreadID) bool {
	switch e.threads[t].state {
	case tsRunnable:
		return false
	default:
		return true
	}
}

// CurrentMethod returns the method executing on top of t's stack, or
// NoMethod if the thread has no frames.
func (e *Exec) CurrentMethod(t ThreadID) MethodID {
	th := e.threads[t]
	if len(th.frames) == 0 {
		return NoMethod
	}
	return th.frames[len(th.frames)-1].m.ID
}

// InTx reports whether thread t is inside a regular transaction.
func (e *Exec) InTx(t ThreadID) bool { return e.threads[t].txDepth > 0 }

// TxMethod returns the method that began t's current regular transaction,
// or NoMethod.
func (e *Exec) TxMethod(t ThreadID) MethodID {
	if e.threads[t].txDepth == 0 {
		return NoMethod
	}
	return e.threads[t].txMethod
}

// ctxCheckMask controls how often RunContext polls its context: every
// (ctxCheckMask+1) steps, keeping the hot loop nearly free of context
// overhead while still bounding cancellation latency.
const ctxCheckMask = 255

// Run executes the program to completion and returns execution statistics.
func (e *Exec) Run() (*Stats, error) { return e.RunContext(context.Background()) }

// RunContext is Run under a context: cancellation or an expired deadline
// aborts the execution within ctxCheckMask+1 steps, surfacing the context's
// error (errors.Is sees context.Canceled / context.DeadlineExceeded).
func (e *Exec) RunContext(ctx context.Context) (*Stats, error) {
	if err := ctx.Err(); err != nil {
		return &e.stats, fmt.Errorf("vm: aborted before start: %w", err)
	}
	e.inst.ProgramStart(e)
	for _, td := range e.prog.Threads {
		if td.AutoStart {
			if err := e.startThread(td.ID); err != nil {
				return &e.stats, err
			}
		}
	}
	for {
		if e.step&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return &e.stats, fmt.Errorf("vm: aborted at step %d: %w", e.step, err)
			}
		}
		run := e.collectRunnable()
		if len(run) == 0 {
			if e.allDone() {
				break
			}
			return &e.stats, fmt.Errorf("%w (%s)", ErrDeadlock, e.describeBlocked())
		}
		t := e.cfg.Sched.Next(run, e.step)
		if err := e.stepThread(e.threads[t]); err != nil {
			return &e.stats, err
		}
		e.step++
		e.stats.Steps++
		if e.step > e.cfg.MaxSteps {
			return &e.stats, ErrStepLimit
		}
	}
	// On clean completion every frame has unwound, so every begun
	// transaction must have ended; mid-run (or on an aborted run) the
	// counters legitimately differ — see Stats.AbortedTx.
	if e.stats.TxEnds != e.stats.RegularTx {
		return &e.stats, fmt.Errorf("vm: internal: clean completion with %d transactions begun but %d ended",
			e.stats.RegularTx, e.stats.TxEnds)
	}
	e.inst.ProgramEnd()
	return &e.stats, nil
}

func (e *Exec) collectRunnable() []ThreadID {
	e.runnable = e.runnable[:0]
	for _, th := range e.threads {
		if th.state == tsRunnable {
			e.runnable = append(e.runnable, th.id)
		}
	}
	return e.runnable
}

func (e *Exec) allDone() bool {
	for _, th := range e.threads {
		if th.state != tsDone && th.state != tsNotStarted {
			return false
		}
	}
	return true
}

func (e *Exec) describeBlocked() string {
	s := ""
	for _, th := range e.threads {
		switch th.state {
		case tsBlockedLock:
			s += fmt.Sprintf(" t%d:lock(o%d)", th.id, th.blockOn)
		case tsBlockedJoin:
			s += fmt.Sprintf(" t%d:join(t%d)", th.id, th.blockJoin)
		case tsWaiting:
			s += fmt.Sprintf(" t%d:wait(o%d)", th.id, th.blockOn)
		}
	}
	return "blocked:" + s
}

// startThread makes a thread runnable, emits its start events, and performs
// the acquire-like read on its handle object that orders it after the fork.
func (e *Exec) startThread(t ThreadID) error {
	th := e.threads[t]
	if th.state != tsNotStarted {
		return fmt.Errorf("vm: thread t%d started twice", t)
	}
	th.state = tsRunnable
	e.stats.ThreadStarts++
	e.inst.ThreadStart(t)
	e.pushFrame(th, e.prog.Methods[e.prog.Threads[t].Entry])
	e.emitAccess(t, e.prog.ThreadObject(t), 0, false, ClassSync)
	// An entry method may be empty; settle frames immediately.
	return e.unwind(th)
}

// pushFrame pushes m on th's stack, beginning a regular transaction if m is
// atomic and th is not already inside one.
func (e *Exec) pushFrame(th *thread, m *Method) {
	atomic := e.cfg.Atomic != nil && e.cfg.Atomic(m.ID)
	fr := frame{m: m}
	if atomic {
		fr.atomicEntered = true
		if th.txDepth == 0 {
			th.txMethod = m.ID
			e.stats.RegularTx++
			e.inst.TxBegin(th.id, m.ID)
		}
		th.txDepth++
	}
	th.frames = append(th.frames, fr)
}

// unwind pops completed frames, ending transactions and exiting the thread
// as needed.
func (e *Exec) unwind(th *thread) error {
	for len(th.frames) > 0 {
		top := &th.frames[len(th.frames)-1]
		if top.pc < len(top.m.Body) {
			return nil
		}
		if top.atomicEntered {
			th.txDepth--
			if th.txDepth == 0 {
				e.stats.TxEnds++
				e.inst.TxEnd(th.id, th.txMethod)
				th.txMethod = NoMethod
			}
		}
		th.frames = th.frames[:len(th.frames)-1]
	}
	// Thread exit: release-like write on the handle object orders joiners.
	e.emitAccess(th.id, e.prog.ThreadObject(th.id), 0, true, ClassSync)
	e.stats.ThreadExits++
	e.inst.ThreadExit(th.id)
	th.state = tsDone
	for _, other := range e.threads {
		if other.state == tsBlockedJoin && other.blockJoin == th.id {
			other.state = tsRunnable
		}
	}
	return nil
}

func (e *Exec) emitAccess(t ThreadID, obj ObjectID, f FieldID, write bool, class AccessClass) {
	e.seq++
	switch class {
	case ClassField:
		e.stats.FieldAccesses++
	case ClassArray:
		e.stats.ArrayAccesses++
	case ClassSync:
		e.stats.SyncAccesses++
	}
	e.inst.Access(Access{Thread: t, Obj: obj, Field: f, Write: write, Class: class, Seq: e.seq})
}

func (e *Exec) charge(u cost.Units) {
	if e.cfg.Meter != nil {
		e.cfg.Meter.Charge(u)
	}
}

func (e *Exec) mon(obj ObjectID) *monitor {
	m, ok := e.mons[obj]
	if !ok {
		m = &monitor{owner: -1}
		e.mons[obj] = m
	}
	return m
}

// wakeLockWaiters makes every thread blocked acquiring obj runnable again;
// they retry their acquire when next scheduled.
func (e *Exec) wakeLockWaiters(obj ObjectID) {
	for _, th := range e.threads {
		if th.state == tsBlockedLock && th.blockOn == obj {
			th.state = tsRunnable
		}
	}
}

// stepThread executes (or attempts) one operation of th.
func (e *Exec) stepThread(th *thread) error {
	if e.cfg.Meter != nil {
		e.charge(e.cfg.Meter.Model().BaseOp)
	}
	top := &th.frames[len(th.frames)-1]
	op := top.m.Body[top.pc]
	e.stats.Ops++

	switch op.Kind {
	case OpRead, OpWrite:
		e.emitAccess(th.id, op.Obj, op.Field, op.Kind == OpWrite, ClassField)
		top.pc++

	case OpArrayRead, OpArrayWrite:
		e.emitAccess(th.id, op.Obj, op.Field, op.Kind == OpArrayWrite, ClassArray)
		top.pc++

	case OpAcquire:
		m := e.mon(op.Obj)
		if m.owner != -1 && m.owner != th.id {
			th.state = tsBlockedLock
			th.blockOn = op.Obj
			e.stats.BlockEvents++
			return nil // retry when woken
		}
		m.owner = th.id
		m.rec++
		e.emitAccess(th.id, op.Obj, 0, false, ClassSync) // acquire reads
		top.pc++

	case OpRelease:
		m := e.mon(op.Obj)
		if m.owner != th.id {
			return fmt.Errorf("vm: t%d releases o%d without owning it (%s+%d)",
				th.id, op.Obj, top.m.Name, top.pc)
		}
		e.emitAccess(th.id, op.Obj, 0, true, ClassSync) // release writes
		m.rec--
		if m.rec == 0 {
			m.owner = -1
			e.wakeLockWaiters(op.Obj)
		}
		top.pc++

	case OpCall:
		if len(th.frames) >= e.cfg.MaxCallDepth {
			return fmt.Errorf("vm: t%d exceeds call depth %d", th.id, e.cfg.MaxCallDepth)
		}
		top.pc++ // return past the call
		e.pushFrame(th, e.prog.Methods[op.Target])
		e.stats.Calls++

	case OpFork:
		child := ThreadID(op.Target)
		// Release-like write on the handle happens-before the child's start.
		e.emitAccess(th.id, e.prog.ThreadObject(child), 0, true, ClassSync)
		top.pc++
		e.stats.Forks++
		if err := e.startThread(child); err != nil {
			return err
		}

	case OpJoin:
		target := e.threads[op.Target]
		if target.state == tsDone {
			e.emitAccess(th.id, e.prog.ThreadObject(target.id), 0, false, ClassSync)
			top.pc++
		} else {
			th.state = tsBlockedJoin
			th.blockJoin = target.id
			e.stats.BlockEvents++
			return nil
		}

	case OpWait:
		m := e.mon(op.Obj)
		if th.reacquiring {
			// Resuming after notify: reacquire the monitor.
			if m.owner != -1 && m.owner != th.id {
				th.state = tsBlockedLock
				th.blockOn = op.Obj
				return nil
			}
			m.owner = th.id
			m.rec = th.savedRec
			th.reacquiring = false
			e.emitAccess(th.id, op.Obj, 0, false, ClassSync) // acquire reads
			top.pc++
			break
		}
		if m.owner != th.id {
			return fmt.Errorf("vm: t%d waits on o%d without owning it (%s+%d)",
				th.id, op.Obj, top.m.Name, top.pc)
		}
		if m.permits > 0 {
			// A banked notify: consume it without blocking. Wait/notify
			// here are semaphore-like — a notify with no waiter is banked
			// rather than lost — because the workload language has no
			// conditionals for the guarded-wait idiom, and lost signals
			// would make termination schedule-dependent. The dependence
			// structure (release-write then acquire-read on the monitor)
			// is identical to monitor semantics.
			m.permits--
			e.emitAccess(th.id, op.Obj, 0, true, ClassSync)  // release half
			e.emitAccess(th.id, op.Obj, 0, false, ClassSync) // acquire half
			e.stats.Waits++
			top.pc++
			break
		}
		e.emitAccess(th.id, op.Obj, 0, true, ClassSync) // wait releases
		th.savedRec = m.rec
		m.rec = 0
		m.owner = -1
		e.wakeLockWaiters(op.Obj)
		m.waitSet = append(m.waitSet, th.id)
		th.state = tsWaiting
		th.blockOn = op.Obj
		th.reacquiring = true
		e.stats.Waits++
		return nil // pc unchanged; resumes in reacquire phase

	case OpNotify, OpNotifyAll:
		m := e.mon(op.Obj)
		if m.owner != th.id {
			return fmt.Errorf("vm: t%d notifies o%d without owning it (%s+%d)",
				th.id, op.Obj, top.m.Name, top.pc)
		}
		e.emitAccess(th.id, op.Obj, 0, true, ClassSync) // notify writes
		n := len(m.waitSet)
		if op.Kind == OpNotify && n > 1 {
			n = 1
		}
		if op.Kind == OpNotify && n == 0 {
			m.permits++ // bank the signal (see OpWait)
		}
		for i := 0; i < n; i++ {
			w := e.threads[m.waitSet[i]]
			w.state = tsRunnable // will reacquire via its OpWait
		}
		m.waitSet = m.waitSet[n:]
		e.stats.Notifies++
		top.pc++

	case OpCompute:
		if e.cfg.Meter != nil {
			e.cfg.Meter.ChargeN(e.cfg.Meter.Model().ComputeUnit, int64(op.Target))
		}
		e.stats.ComputeUnits += uint64(op.Target)
		top.pc++

	default:
		return fmt.Errorf("vm: t%d unknown op %v", th.id, op)
	}

	return e.unwind(th)
}
