package vm

import (
	"fmt"
	"strings"
	"testing"
)

// rawOpsProgram builds nThreads auto-start threads whose entries are
// straight-line bodies of opsPerThread writes to thread-private objects:
// every operation is exactly one scheduled step, so the interleaving count
// is the multinomial (n*k)! / (k!)^n.
func rawOpsProgram(t *testing.T, nThreads, opsPerThread int) *Program {
	t.Helper()
	b := NewBuilder(fmt.Sprintf("raw%dx%d", nThreads, opsPerThread))
	objs := b.Objects(nThreads)
	for i := 0; i < nThreads; i++ {
		m := b.Method(fmt.Sprintf("t%d", i))
		for j := 0; j < opsPerThread; j++ {
			m.Write(objs[i], FieldID(j))
		}
		b.Thread(m)
	}
	return b.MustBuild()
}

// interleavingKey runs prog under sched and returns the thread order of its
// access stream — a canonical name for the interleaving.
func interleavingKey(t *testing.T, prog *Program, sched Scheduler) string {
	t.Helper()
	var sb strings.Builder
	inst := &funcInst{access: func(a Access) { fmt.Fprintf(&sb, "%d.", a.Thread) }}
	if _, err := NewExec(prog, Config{Sched: sched, Inst: inst}).Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return sb.String()
}

// funcInst adapts a function to Instrumentation for these tests.
type funcInst struct {
	NopInst
	access func(Access)
}

func (f *funcInst) Access(a Access) { f.access(a) }

func TestEnumeratorCoversAllInterleavings(t *testing.T) {
	// (n*k)! / (k!)^n distinct interleavings of n threads of k steps each.
	cases := []struct {
		threads, ops int
		want         uint64
	}{
		{2, 2, 6}, // the ISSUE's 2-thread/4-op micro program
		{2, 3, 20},
		{3, 2, 90},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%dx%d", tc.threads, tc.ops), func(t *testing.T) {
			prog := rawOpsProgram(t, tc.threads, tc.ops)
			en := NewEnumerator(256)
			seen := make(map[string]bool)
			for {
				key := interleavingKey(t, prog, en)
				if seen[key] {
					t.Fatalf("interleaving %q enumerated twice", key)
				}
				seen[key] = true
				if !en.Advance() {
					break
				}
				if en.Runs() > 10*tc.want {
					t.Fatalf("runaway enumeration: %d runs for %d interleavings", en.Runs(), tc.want)
				}
			}
			if en.Overflowed() {
				t.Fatal("enumerator overflowed its step limit on a tiny program")
			}
			if uint64(len(seen)) != tc.want || en.Runs() != tc.want {
				t.Fatalf("enumerated %d distinct interleavings in %d runs, want exactly %d",
					len(seen), en.Runs(), tc.want)
			}
		})
	}
}

func TestEnumeratorOverflowTruncates(t *testing.T) {
	prog := rawOpsProgram(t, 2, 3)
	en := NewEnumerator(2) // far below the 6 steps a run needs
	runs := uint64(0)
	for {
		if _, err := NewExec(prog, Config{Sched: en}).Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		if !en.Advance() {
			break
		}
	}
	runs = en.Runs()
	if !en.Overflowed() {
		t.Fatal("expected overflow with a 2-step limit")
	}
	// Only the first two decision levels are explored: at most 2*2 branches.
	if runs > 4 {
		t.Fatalf("truncated enumeration ran %d times, want <= 4", runs)
	}
}

func TestPCTDeterministicAndSeedSensitive(t *testing.T) {
	prog := rawOpsProgram(t, 3, 4)
	// Same seed, same interleaving — run to run.
	for seed := int64(1); seed <= 5; seed++ {
		a := interleavingKey(t, prog, NewPCT(seed, 3, 64))
		b := interleavingKey(t, prog, NewPCT(seed, 3, 64))
		if a != b {
			t.Fatalf("seed %d: PCT not deterministic:\n%s\n%s", seed, a, b)
		}
	}
	// Across seeds the schedule space is actually explored.
	distinct := make(map[string]bool)
	for seed := int64(1); seed <= 30; seed++ {
		distinct[interleavingKey(t, prog, NewPCT(seed, 3, 64))] = true
	}
	if len(distinct) < 5 {
		t.Fatalf("30 PCT seeds produced only %d distinct interleavings", len(distinct))
	}
}

func TestPCTChangePointsForcePreemption(t *testing.T) {
	// With depth 1 there are no change points: the highest-priority thread
	// runs to completion, so the interleaving has no preemption at all
	// (each thread's steps are contiguous). Runnable-set shrinkage is the
	// only reason another thread ever runs.
	prog := rawOpsProgram(t, 2, 5)
	for seed := int64(1); seed <= 10; seed++ {
		key := interleavingKey(t, prog, NewPCT(seed, 1, 64))
		// The first two accesses are the auto-start sync accesses, emitted in
		// thread order before any scheduling; drop them, then the scheduled
		// stream of a preemption-free run switches threads exactly once.
		parts := strings.Split(strings.TrimSuffix(key, "."), ".")
		parts = parts[2:]
		switches := 0
		for i := 1; i < len(parts); i++ {
			if parts[i] != parts[i-1] {
				switches++
			}
		}
		if switches > 1 {
			t.Fatalf("seed %d: depth-1 PCT preempted mid-thread: %s", seed, key)
		}
	}
}
