package vm

import (
	"fmt"
	"math/rand"
)

// Scheduler picks which runnable thread executes the next operation. The
// runnable slice is always sorted by thread ID and non-empty; schedulers
// must return one of its elements. Determinism contract: given the same
// program and the same scheduler state, the executor produces the same
// interleaving — checkers are passive, so the same seed exposes every
// checker to the identical execution.
type Scheduler interface {
	Next(runnable []ThreadID, step uint64) ThreadID
}

// RandomScheduler picks uniformly at random from the runnable set using a
// seeded source. This models the paper's run-to-run nondeterminism: distinct
// trials use distinct seeds.
type RandomScheduler struct {
	rng *rand.Rand
}

// NewRandom returns a RandomScheduler with the given seed.
func NewRandom(seed int64) *RandomScheduler {
	return &RandomScheduler{rng: rand.New(rand.NewSource(seed))}
}

// Next implements Scheduler.
func (s *RandomScheduler) Next(runnable []ThreadID, _ uint64) ThreadID {
	return runnable[s.rng.Intn(len(runnable))]
}

// StickyRandomScheduler is like RandomScheduler but keeps running the same
// thread for a geometric number of steps (expected run length 1/switchProb)
// before re-picking. Longer runs between preemptions make interleavings more
// realistic (real schedulers preempt at quantum boundaries, not per
// instruction) and make atomicity violations rarer but still possible —
// useful for workloads that should have few cycles.
type StickyRandomScheduler struct {
	rng        *rand.Rand
	switchProb float64
	current    ThreadID
	hasCurrent bool
}

// NewSticky returns a StickyRandomScheduler. switchProb in (0,1] is the
// per-step probability of re-picking the running thread.
func NewSticky(seed int64, switchProb float64) *StickyRandomScheduler {
	if switchProb <= 0 || switchProb > 1 {
		panic(fmt.Sprintf("vm: switchProb %v out of (0,1]", switchProb))
	}
	return &StickyRandomScheduler{rng: rand.New(rand.NewSource(seed)), switchProb: switchProb}
}

// Next implements Scheduler.
func (s *StickyRandomScheduler) Next(runnable []ThreadID, _ uint64) ThreadID {
	if s.hasCurrent && s.rng.Float64() >= s.switchProb {
		for _, t := range runnable {
			if t == s.current {
				return t
			}
		}
	}
	s.current = runnable[s.rng.Intn(len(runnable))]
	s.hasCurrent = true
	return s.current
}

// RoundRobinScheduler rotates through runnable threads.
type RoundRobinScheduler struct {
	last ThreadID
}

// NewRoundRobin returns a RoundRobinScheduler.
func NewRoundRobin() *RoundRobinScheduler { return &RoundRobinScheduler{last: -1} }

// Next implements Scheduler: the smallest runnable ID strictly greater than
// the previously scheduled ID, wrapping around.
func (s *RoundRobinScheduler) Next(runnable []ThreadID, _ uint64) ThreadID {
	for _, t := range runnable {
		if t > s.last {
			s.last = t
			return t
		}
	}
	s.last = runnable[0]
	return runnable[0]
}

// PCTScheduler implements probabilistic concurrency testing (Burckhardt et
// al., ASPLOS 2010): every thread gets a distinct random priority on first
// sight, the highest-priority runnable thread always runs, and depth-1
// priority-change points are placed at uniformly random steps — at such a
// step the thread about to run is demoted below every other thread, forcing
// a preemption exactly there. For a bug needing d ordering constraints, a
// PCT run finds it with probability >= 1/(n*k^(d-1)) (n threads, k steps),
// which makes a modest seed sweep far more adversarial than uniform random
// scheduling. Fully deterministic given the seed.
type PCTScheduler struct {
	rng    *rand.Rand
	change map[uint64]bool // steps at which a priority-change point fires
	prio   map[ThreadID]int64
	low    int64 // next demotion priority; strictly decreasing, always < 0
}

// NewPCT returns a PCTScheduler with depth-1 priority-change points placed
// uniformly in [0, horizon). depth < 1 or horizon 0 panic: a PCT schedule is
// parameterized by both.
func NewPCT(seed int64, depth int, horizon uint64) *PCTScheduler {
	if depth < 1 {
		panic(fmt.Sprintf("vm: PCT depth %d < 1", depth))
	}
	if horizon == 0 {
		panic("vm: PCT horizon 0")
	}
	rng := rand.New(rand.NewSource(seed))
	s := &PCTScheduler{
		rng:    rng,
		change: make(map[uint64]bool, depth-1),
		prio:   make(map[ThreadID]int64),
		low:    0,
	}
	for i := 1; i < depth; i++ {
		s.change[uint64(rng.Int63n(int64(horizon)))] = true
	}
	return s
}

// Next implements Scheduler: the highest-priority runnable thread, demoted
// first when this step is a change point. Unseen threads draw a positive
// random priority in runnable order (deterministic: runnable is sorted);
// demotions use a decreasing negative counter so each demoted thread sinks
// below everything demoted before it. Priority ties (vanishingly rare) break
// toward the lower thread ID.
func (s *PCTScheduler) Next(runnable []ThreadID, step uint64) ThreadID {
	for _, t := range runnable {
		if _, ok := s.prio[t]; !ok {
			s.prio[t] = 1 + s.rng.Int63n(1<<31)
		}
	}
	best := func() ThreadID {
		b := runnable[0]
		for _, t := range runnable[1:] {
			if s.prio[t] > s.prio[b] {
				b = t
			}
		}
		return b
	}
	t := best()
	if s.change[step] && len(runnable) > 1 {
		s.low--
		s.prio[t] = s.low
		t = best()
	}
	return t
}

// enumFrame records one scheduling decision of the current enumeration run:
// which index into the (sorted, deterministic) runnable set was chosen, out
// of how many options.
type enumFrame struct {
	choice  int
	options int
}

// Enumerator walks the schedule tree of a deterministic program
// exhaustively: it is a Scheduler for one execution at a time, recording
// (choice, option-count) at every step, and Advance moves depth-first to the
// lexicographically next unexplored branch. Because the executor is
// deterministic given the scheduling choices, the runnable set at any
// choice-prefix is a pure function of the prefix, so distinct choice
// sequences are distinct interleavings and the walk covers all of them.
//
//	en := vm.NewEnumerator(64)
//	for {
//		run one execution with Config{Sched: en}
//		if !en.Advance() { break }
//	}
//
// Runs deeper than the step limit follow the first runnable thread beyond it
// without recording; Overflowed reports whether any run was truncated that
// way (the walk is then exhaustive only up to the limit).
type Enumerator struct {
	limit      int
	prefix     []int
	frames     []enumFrame
	runs       uint64
	overflowed bool
}

// NewEnumerator returns an Enumerator that explores every scheduling choice
// in the first limit steps of each run.
func NewEnumerator(limit int) *Enumerator {
	if limit < 1 {
		panic(fmt.Sprintf("vm: enumerator limit %d < 1", limit))
	}
	return &Enumerator{limit: limit}
}

// Next implements Scheduler: replay the prefix, then always take the first
// (lowest-ID) runnable thread, recording every decision point.
func (en *Enumerator) Next(runnable []ThreadID, _ uint64) ThreadID {
	depth := len(en.frames)
	if depth >= en.limit {
		en.overflowed = true
		return runnable[0]
	}
	choice := 0
	if depth < len(en.prefix) {
		choice = en.prefix[depth]
	}
	if choice >= len(runnable) {
		// The runnable set at a prefix is deterministic, so a recorded choice
		// is always in range on replay; out of range means the program or
		// executor is not deterministic — unusable for enumeration.
		panic(fmt.Sprintf("vm: enumerator: choice %d of %d at depth %d — nondeterministic execution",
			choice, len(runnable), depth))
	}
	en.frames = append(en.frames, enumFrame{choice: choice, options: len(runnable)})
	return runnable[choice]
}

// Advance finishes the current run and steps to the next unexplored branch,
// returning false when the schedule tree is exhausted. Call it after every
// execution, including the first.
func (en *Enumerator) Advance() bool {
	en.runs++
	for i := len(en.frames) - 1; i >= 0; i-- {
		if en.frames[i].choice+1 < en.frames[i].options {
			next := make([]int, i+1)
			for j := 0; j < i; j++ {
				next[j] = en.frames[j].choice
			}
			next[i] = en.frames[i].choice + 1
			en.prefix = next
			en.frames = en.frames[:0]
			return true
		}
	}
	en.frames = en.frames[:0]
	return false
}

// Runs returns how many complete executions Advance has accounted for.
func (en *Enumerator) Runs() uint64 { return en.runs }

// Overflowed reports whether any run needed more scheduling decisions than
// the step limit; if true the enumeration covered only the tree up to the
// limit.
func (en *Enumerator) Overflowed() bool { return en.overflowed }

// ScriptedScheduler replays an explicit thread sequence; unit tests use it
// to pin exact interleavings (e.g. the paper's Figure 3). If the scripted
// thread is not runnable at its step, Next panics in strict mode (test bug)
// or skips forward otherwise. When the script is exhausted it falls back to
// round-robin.
type ScriptedScheduler struct {
	script []ThreadID
	pos    int
	strict bool
	rr     *RoundRobinScheduler
}

// NewScripted returns a ScriptedScheduler replaying script.
func NewScripted(script []ThreadID, strict bool) *ScriptedScheduler {
	return &ScriptedScheduler{script: script, strict: strict, rr: NewRoundRobin()}
}

// Next implements Scheduler.
func (s *ScriptedScheduler) Next(runnable []ThreadID, step uint64) ThreadID {
	for s.pos < len(s.script) {
		want := s.script[s.pos]
		s.pos++
		for _, t := range runnable {
			if t == want {
				return t
			}
		}
		if s.strict {
			panic(fmt.Sprintf("vm: scripted thread t%d not runnable at step %d (runnable %v)",
				want, step, runnable))
		}
	}
	return s.rr.Next(runnable, step)
}
