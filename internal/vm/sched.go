package vm

import (
	"fmt"
	"math/rand"
)

// Scheduler picks which runnable thread executes the next operation. The
// runnable slice is always sorted by thread ID and non-empty; schedulers
// must return one of its elements. Determinism contract: given the same
// program and the same scheduler state, the executor produces the same
// interleaving — checkers are passive, so the same seed exposes every
// checker to the identical execution.
type Scheduler interface {
	Next(runnable []ThreadID, step uint64) ThreadID
}

// RandomScheduler picks uniformly at random from the runnable set using a
// seeded source. This models the paper's run-to-run nondeterminism: distinct
// trials use distinct seeds.
type RandomScheduler struct {
	rng *rand.Rand
}

// NewRandom returns a RandomScheduler with the given seed.
func NewRandom(seed int64) *RandomScheduler {
	return &RandomScheduler{rng: rand.New(rand.NewSource(seed))}
}

// Next implements Scheduler.
func (s *RandomScheduler) Next(runnable []ThreadID, _ uint64) ThreadID {
	return runnable[s.rng.Intn(len(runnable))]
}

// StickyRandomScheduler is like RandomScheduler but keeps running the same
// thread for a geometric number of steps (expected run length 1/switchProb)
// before re-picking. Longer runs between preemptions make interleavings more
// realistic (real schedulers preempt at quantum boundaries, not per
// instruction) and make atomicity violations rarer but still possible —
// useful for workloads that should have few cycles.
type StickyRandomScheduler struct {
	rng        *rand.Rand
	switchProb float64
	current    ThreadID
	hasCurrent bool
}

// NewSticky returns a StickyRandomScheduler. switchProb in (0,1] is the
// per-step probability of re-picking the running thread.
func NewSticky(seed int64, switchProb float64) *StickyRandomScheduler {
	if switchProb <= 0 || switchProb > 1 {
		panic(fmt.Sprintf("vm: switchProb %v out of (0,1]", switchProb))
	}
	return &StickyRandomScheduler{rng: rand.New(rand.NewSource(seed)), switchProb: switchProb}
}

// Next implements Scheduler.
func (s *StickyRandomScheduler) Next(runnable []ThreadID, _ uint64) ThreadID {
	if s.hasCurrent && s.rng.Float64() >= s.switchProb {
		for _, t := range runnable {
			if t == s.current {
				return t
			}
		}
	}
	s.current = runnable[s.rng.Intn(len(runnable))]
	s.hasCurrent = true
	return s.current
}

// RoundRobinScheduler rotates through runnable threads.
type RoundRobinScheduler struct {
	last ThreadID
}

// NewRoundRobin returns a RoundRobinScheduler.
func NewRoundRobin() *RoundRobinScheduler { return &RoundRobinScheduler{last: -1} }

// Next implements Scheduler: the smallest runnable ID strictly greater than
// the previously scheduled ID, wrapping around.
func (s *RoundRobinScheduler) Next(runnable []ThreadID, _ uint64) ThreadID {
	for _, t := range runnable {
		if t > s.last {
			s.last = t
			return t
		}
	}
	s.last = runnable[0]
	return runnable[0]
}

// ScriptedScheduler replays an explicit thread sequence; unit tests use it
// to pin exact interleavings (e.g. the paper's Figure 3). If the scripted
// thread is not runnable at its step, Next panics in strict mode (test bug)
// or skips forward otherwise. When the script is exhausted it falls back to
// round-robin.
type ScriptedScheduler struct {
	script []ThreadID
	pos    int
	strict bool
	rr     *RoundRobinScheduler
}

// NewScripted returns a ScriptedScheduler replaying script.
func NewScripted(script []ThreadID, strict bool) *ScriptedScheduler {
	return &ScriptedScheduler{script: script, strict: strict, rr: NewRoundRobin()}
}

// Next implements Scheduler.
func (s *ScriptedScheduler) Next(runnable []ThreadID, step uint64) ThreadID {
	for s.pos < len(s.script) {
		want := s.script[s.pos]
		s.pos++
		for _, t := range runnable {
			if t == want {
				return t
			}
		}
		if s.strict {
			panic(fmt.Sprintf("vm: scripted thread t%d not runnable at step %d (runnable %v)",
				want, step, runnable))
		}
	}
	return s.rr.Next(runnable, step)
}
