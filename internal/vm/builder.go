package vm

import "fmt"

// Builder constructs Programs programmatically. The workload generators and
// the examples use it; parsed surface programs are lowered through it as
// well, so validation lives in one place.
//
//	b := vm.NewBuilder("bank")
//	acct := b.Object()
//	lock := b.Object()
//	deposit := b.Method("deposit")
//	deposit.Acquire(lock).Read(acct, 0).Write(acct, 0).Release(lock)
//	main := b.Method("main")
//	main.CallN(deposit, 100)
//	b.Thread(main)
//	prog, err := b.Build()
type Builder struct {
	name     string
	methods  []*Method
	builders []*MethodBuilder
	threads  []ThreadDecl
	objects  int
	arrays   map[ObjectID]int
}

// NewBuilder returns an empty program builder.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, arrays: make(map[ObjectID]int)}
}

// Object allocates a fresh shared object and returns its ID.
func (b *Builder) Object() ObjectID {
	id := ObjectID(b.objects)
	b.objects++
	return id
}

// Objects allocates n fresh objects and returns their IDs.
func (b *Builder) Objects(n int) []ObjectID {
	ids := make([]ObjectID, n)
	for i := range ids {
		ids[i] = b.Object()
	}
	return ids
}

// Array allocates an array object of the given length.
func (b *Builder) Array(length int) ObjectID {
	id := b.Object()
	b.arrays[id] = length
	return id
}

// Method creates a new empty method with the given name.
func (b *Builder) Method(name string) *MethodBuilder {
	m := &Method{ID: MethodID(len(b.methods)), Name: name}
	b.methods = append(b.methods, m)
	mb := &MethodBuilder{m: m}
	b.builders = append(b.builders, mb)
	return mb
}

// Thread declares an auto-start thread with the given entry method and
// returns its ID.
func (b *Builder) Thread(entry *MethodBuilder) ThreadID {
	id := ThreadID(len(b.threads))
	b.threads = append(b.threads, ThreadDecl{ID: id, Entry: entry.m.ID, AutoStart: true})
	return id
}

// ForkedThread declares a thread that must be started with Fork.
func (b *Builder) ForkedThread(entry *MethodBuilder) ThreadID {
	id := ThreadID(len(b.threads))
	b.threads = append(b.threads, ThreadDecl{ID: id, Entry: entry.m.ID, AutoStart: false})
	return id
}

// Build validates and returns the program.
func (b *Builder) Build() (*Program, error) {
	p := &Program{
		Name:       b.name,
		Methods:    b.methods,
		Threads:    b.threads,
		NumObjects: b.objects,
		ArrayLens:  b.arrays,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build for static programs that cannot fail; it panics on
// validation errors.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("vm: MustBuild: %v", err))
	}
	return p
}

// MethodBuilder appends operations to one method. All append methods return
// the receiver for chaining.
type MethodBuilder struct {
	m *Method
}

// ID returns the method's identifier.
func (mb *MethodBuilder) ID() MethodID { return mb.m.ID }

// Name returns the method's name.
func (mb *MethodBuilder) Name() string { return mb.m.Name }

func (mb *MethodBuilder) add(op Op) *MethodBuilder {
	mb.m.Body = append(mb.m.Body, op)
	return mb
}

// Read appends a field read.
func (mb *MethodBuilder) Read(obj ObjectID, f FieldID) *MethodBuilder {
	return mb.add(Op{Kind: OpRead, Obj: obj, Field: f})
}

// Write appends a field write.
func (mb *MethodBuilder) Write(obj ObjectID, f FieldID) *MethodBuilder {
	return mb.add(Op{Kind: OpWrite, Obj: obj, Field: f})
}

// ArrayRead appends an array element read.
func (mb *MethodBuilder) ArrayRead(arr ObjectID, idx int) *MethodBuilder {
	return mb.add(Op{Kind: OpArrayRead, Obj: arr, Field: FieldID(idx)})
}

// ArrayWrite appends an array element write.
func (mb *MethodBuilder) ArrayWrite(arr ObjectID, idx int) *MethodBuilder {
	return mb.add(Op{Kind: OpArrayWrite, Obj: arr, Field: FieldID(idx)})
}

// Acquire appends a monitor acquire.
func (mb *MethodBuilder) Acquire(obj ObjectID) *MethodBuilder {
	return mb.add(Op{Kind: OpAcquire, Obj: obj})
}

// Release appends a monitor release.
func (mb *MethodBuilder) Release(obj ObjectID) *MethodBuilder {
	return mb.add(Op{Kind: OpRelease, Obj: obj})
}

// Call appends a method call.
func (mb *MethodBuilder) Call(callee *MethodBuilder) *MethodBuilder {
	return mb.add(Op{Kind: OpCall, Target: int32(callee.m.ID)})
}

// CallN appends n calls to callee.
func (mb *MethodBuilder) CallN(callee *MethodBuilder, n int) *MethodBuilder {
	for i := 0; i < n; i++ {
		mb.Call(callee)
	}
	return mb
}

// Fork appends a fork of thread t.
func (mb *MethodBuilder) Fork(t ThreadID) *MethodBuilder {
	return mb.add(Op{Kind: OpFork, Target: int32(t)})
}

// Join appends a join on thread t.
func (mb *MethodBuilder) Join(t ThreadID) *MethodBuilder {
	return mb.add(Op{Kind: OpJoin, Target: int32(t)})
}

// Wait appends a monitor wait.
func (mb *MethodBuilder) Wait(obj ObjectID) *MethodBuilder {
	return mb.add(Op{Kind: OpWait, Obj: obj})
}

// Notify appends a monitor notify.
func (mb *MethodBuilder) Notify(obj ObjectID) *MethodBuilder {
	return mb.add(Op{Kind: OpNotify, Obj: obj})
}

// NotifyAll appends a monitor notify-all.
func (mb *MethodBuilder) NotifyAll(obj ObjectID) *MethodBuilder {
	return mb.add(Op{Kind: OpNotifyAll, Obj: obj})
}

// Compute appends n units of pure local work.
func (mb *MethodBuilder) Compute(n int) *MethodBuilder {
	return mb.add(Op{Kind: OpCompute, Target: int32(n)})
}

// Op appends a raw operation (used by the lowerer).
func (mb *MethodBuilder) Op(op Op) *MethodBuilder { return mb.add(op) }
