package vm

import (
	"strings"
	"testing"
)

func TestMultiInstFansOut(t *testing.T) {
	r1 := &recorder{}
	r2 := &recorder{}
	b := NewBuilder("p")
	o := b.Object()
	m := b.Method("main")
	m.Write(o, 0)
	b.Thread(m)
	prog := b.MustBuild()
	_, err := NewExec(prog, Config{
		Inst:   MultiInst{r1, r2},
		Atomic: func(MethodID) bool { return true },
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.events) == 0 || len(r1.events) != len(r2.events) {
		t.Errorf("fan-out mismatch: %d vs %d events", len(r1.events), len(r2.events))
	}
	for i := range r1.events {
		if r1.events[i] != r2.events[i] {
			t.Fatalf("event %d differs: %q vs %q", i, r1.events[i], r2.events[i])
		}
	}
	if !r1.has("txbegin t0 m0") {
		t.Errorf("tx events missing: %v", r1.events)
	}
}

func TestNopInstSatisfiesInterface(t *testing.T) {
	var inst Instrumentation = NopInst{}
	inst.ProgramStart(nil)
	inst.ThreadStart(0)
	inst.ThreadExit(0)
	inst.TxBegin(0, 0)
	inst.TxEnd(0, 0)
	inst.Access(Access{})
	inst.ProgramEnd()
}

func TestAccessStringAndClassString(t *testing.T) {
	a := Access{Thread: 1, Obj: 2, Field: 3, Write: true, Class: ClassSync, Seq: 9}
	s := a.String()
	for _, want := range []string{"t1", "wr", "o2.3", "sync", "seq 9"} {
		if !strings.Contains(s, want) {
			t.Errorf("%q missing %q", s, want)
		}
	}
	if ClassField.String() != "field" || ClassArray.String() != "array" {
		t.Error("class strings")
	}
	if AccessClass(99).String() == "" {
		t.Error("unknown class should still render")
	}
	if OpKind(200).String() == "" {
		t.Error("unknown op kind should still render")
	}
}

func TestBuilderAccessors(t *testing.T) {
	b := NewBuilder("p")
	ids := b.Objects(3)
	if len(ids) != 3 || ids[2] != 2 {
		t.Errorf("Objects: %v", ids)
	}
	m := b.Method("work")
	if m.Name() != "work" || m.ID() != 0 {
		t.Errorf("accessors: %q %d", m.Name(), m.ID())
	}
	m.Read(ids[0], 0)
	b.Thread(m)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestMustBuildPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on invalid program")
		}
	}()
	b := NewBuilder("bad") // no threads
	b.Method("m")
	b.MustBuild()
}

// TestNotifyPermitBanked: a notify with no waiter is banked; a later wait
// consumes it without blocking, so notify-before-wait terminates under the
// round-robin schedule that would otherwise deadlock.
func TestNotifyPermitBanked(t *testing.T) {
	b := NewBuilder("p")
	mon := b.Object()
	o := b.Object()
	notifier := b.Method("notifier")
	notifier.Acquire(mon).Notify(mon).Release(mon).Write(o, 0)
	waiter := b.Method("waiter")
	waiter.Compute(20).Acquire(mon).Wait(mon).Release(mon).Write(o, 1)
	b.Thread(notifier)
	b.Thread(waiter)
	st, err := NewExec(b.MustBuild(), Config{Sched: NewRoundRobin()}).Run()
	if err != nil {
		t.Fatalf("banked notify should prevent deadlock: %v", err)
	}
	if st.Waits != 1 || st.Notifies != 1 {
		t.Errorf("waits=%d notifies=%d", st.Waits, st.Notifies)
	}
}

// TestNotifyAllNotBanked: notifyAll with no waiters is a no-op; the waiter
// then blocks forever and the executor reports deadlock.
func TestNotifyAllNotBanked(t *testing.T) {
	b := NewBuilder("p")
	mon := b.Object()
	notifier := b.Method("notifier")
	notifier.Acquire(mon).NotifyAll(mon).Release(mon)
	waiter := b.Method("waiter")
	waiter.Compute(20).Acquire(mon).Wait(mon).Release(mon)
	b.Thread(notifier)
	b.Thread(waiter)
	_, err := NewExec(b.MustBuild(), Config{Sched: NewRoundRobin()}).Run()
	if err == nil {
		t.Error("expected deadlock: notifyAll must not bank permits")
	}
}

// TestPermitAccountingMultiple: two banked notifies satisfy two waits.
func TestPermitAccountingMultiple(t *testing.T) {
	b := NewBuilder("p")
	mon := b.Object()
	notifier := b.Method("notifier")
	notifier.Acquire(mon).Notify(mon).Notify(mon).Release(mon)
	waiter := b.Method("waiter")
	waiter.Compute(10).Acquire(mon).Wait(mon).Wait(mon).Release(mon)
	b.Thread(notifier)
	b.Thread(waiter)
	if _, err := NewExec(b.MustBuild(), Config{Sched: NewRoundRobin()}).Run(); err != nil {
		t.Fatalf("two permits should satisfy two waits: %v", err)
	}
}

// probeCtx records executor context queries at every access.
type probeCtx struct {
	NopInst
	e       *Exec
	inTx    []bool
	txMeth  []MethodID
	curMeth []MethodID
}

func (p *probeCtx) ProgramStart(e ExecView) { p.e = e.(*Exec) }
func (p *probeCtx) Access(Access) {
	p.inTx = append(p.inTx, p.e.InTx(0))
	p.txMeth = append(p.txMeth, p.e.TxMethod(0))
	p.curMeth = append(p.curMeth, p.e.CurrentMethod(0))
}

func TestExecContextQueries(t *testing.T) {
	b := NewBuilder("p")
	o := b.Object()
	atomicM := b.Method("atomicM")
	atomicM.Write(o, 0)
	m := b.Method("main")
	m.Read(o, 1).Call(atomicM).Read(o, 2)
	b.Thread(m)
	prog := b.MustBuild()
	atomicID := prog.MethodByName("atomicM").ID
	p := &probeCtx{}
	_, err := NewExec(prog, Config{
		Inst:   p,
		Atomic: func(id MethodID) bool { return id == atomicID },
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Accesses on thread 0: start handle read (not in tx), rd o.1 (not),
	// wr o.0 (in atomicM), rd o.2 (not), exit handle write (not).
	wantInTx := []bool{false, false, true, false, false}
	if len(p.inTx) != len(wantInTx) {
		t.Fatalf("%d accesses, want %d", len(p.inTx), len(wantInTx))
	}
	for i, want := range wantInTx {
		if p.inTx[i] != want {
			t.Errorf("access %d: inTx=%v want %v", i, p.inTx[i], want)
		}
	}
	if p.txMeth[2] != atomicID {
		t.Errorf("txMethod during atomic access = %d", p.txMeth[2])
	}
	if p.txMeth[1] != NoMethod {
		t.Errorf("txMethod outside tx = %d, want NoMethod", p.txMeth[1])
	}
	if p.curMeth[2] != atomicID {
		t.Errorf("currentMethod = %d", p.curMeth[2])
	}
	if p.e.Prog() != prog {
		t.Error("Prog accessor")
	}
}

func TestStatsString(t *testing.T) {
	s := &Stats{Steps: 3, FieldAccesses: 2}
	if !strings.Contains(s.String(), "steps=3") {
		t.Errorf("stats string: %q", s.String())
	}
	if s.TotalAccesses() != 2 {
		t.Errorf("total accesses: %d", s.TotalAccesses())
	}
}

func TestProgramHelpers(t *testing.T) {
	b := NewBuilder("p")
	arr := b.Array(4)
	obj := b.Object()
	m := b.Method("main")
	m.ArrayRead(arr, 0).Read(obj, 0)
	b.Thread(m)
	prog := b.MustBuild()
	if !prog.IsArray(arr) || prog.IsArray(obj) {
		t.Error("IsArray")
	}
	if prog.TotalObjects() != 2+1 { // two objects + one thread handle
		t.Errorf("TotalObjects = %d", prog.TotalObjects())
	}
	if prog.MethodName(NoMethod) != "<unary>" {
		t.Error("MethodName(NoMethod)")
	}
	if prog.MethodByName("nope") != nil {
		t.Error("MethodByName miss")
	}
}
