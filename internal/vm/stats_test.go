package vm

import "testing"

// TestAbortedTx: the begin/end delta surfaces as a non-negative aborted
// count — begun-but-never-ended transactions, never a negative artifact of
// unary transaction ends.
func TestAbortedTx(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    Stats
		want uint64
	}{
		{"balanced", Stats{RegularTx: 4, TxEnds: 4}, 0},
		{"aborted", Stats{RegularTx: 5, TxEnds: 3}, 2},
		{"ends exceed begins", Stats{RegularTx: 2, TxEnds: 6}, 0},
		{"zero", Stats{}, 0},
	} {
		if got := tc.s.AbortedTx(); got != tc.want {
			t.Errorf("%s: AbortedTx() = %d, want %d", tc.name, got, tc.want)
		}
	}
}
