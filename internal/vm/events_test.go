package vm

import "testing"

// tallyInst counts events the way a trace recorder does.
type tallyInst struct {
	NopInst
	c EventCounts
}

func (ti *tallyInst) ThreadStart(ThreadID)       { ti.c.ThreadStarts++ }
func (ti *tallyInst) ThreadExit(ThreadID)        { ti.c.ThreadExits++ }
func (ti *tallyInst) TxBegin(ThreadID, MethodID) { ti.c.TxBegins++ }
func (ti *tallyInst) TxEnd(ThreadID, MethodID)   { ti.c.TxEnds++ }
func (ti *tallyInst) Access(a Access) {
	switch a.Class {
	case ClassField:
		ti.c.FieldAccesses++
	case ClassArray:
		ti.c.ArrayAccesses++
	case ClassSync:
		ti.c.SyncAccesses++
	}
}

// TestStatsEventsMatchEmittedEvents: the per-kind event counters in Stats
// agree exactly with what instrumentation observes — the completeness
// invariant trace recording asserts.
func TestStatsEventsMatchEmittedEvents(t *testing.T) {
	b := NewBuilder("p")
	arr := b.Array(3)
	lock := b.Object()
	o := b.Object()
	atomicM := b.Method("atomicM")
	atomicM.Write(o, 0).ArrayRead(arr, 1)
	worker := b.Method("worker")
	worker.Acquire(lock).Read(o, 0).Release(lock).Call(atomicM)
	b.Thread(worker)
	b.Thread(worker)
	prog := b.MustBuild()
	atomicID := prog.MethodByName("atomicM").ID

	ti := &tallyInst{}
	st, err := NewExec(prog, Config{
		Inst:   ti,
		Atomic: func(m MethodID) bool { return m == atomicID },
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Events(); got != ti.c {
		t.Errorf("stats.Events() = {%v}, instrumentation saw {%v}", got, ti.c)
	}
	if ti.c.ThreadStarts != 2 || ti.c.ThreadExits != 2 {
		t.Errorf("thread lifecycle counts: %+v", ti.c)
	}
	if ti.c.TxBegins != ti.c.TxEnds || ti.c.TxBegins == 0 {
		t.Errorf("tx counts unbalanced: %+v", ti.c)
	}
	if ti.c.Total() == 0 || ti.c.String() == "" {
		t.Error("Total/String")
	}
}
