package vm

import (
	"context"
	"errors"
	"testing"
)

// longProg builds a single-thread program with far more steps than
// ctxCheckMask, so mid-run cancellation has room to bite.
func longProg() *Program {
	b := NewBuilder("long")
	obj := b.Object()
	m := b.Method("work")
	m.Read(obj, 0).Write(obj, 0)
	main := b.Method("main")
	main.CallN(m, 5000)
	b.Thread(main)
	return b.MustBuild()
}

func TestRunContextPreCanceledReturnsBeforeAnyStep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := NewExec(longProg(), Config{}).RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if stats.Steps != 0 {
		t.Fatalf("executed %d steps under a pre-canceled context", stats.Steps)
	}
}

func TestRunContextCancelMidRunStopsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from instrumentation once the run is underway: the executor
	// must notice within ctxCheckMask+1 steps.
	canceler := &cancelAtAccess{n: 100, cancel: cancel}
	stats, err := NewExec(longProg(), Config{Inst: canceler}).RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if stats.Steps == 0 {
		t.Fatal("canceled before any step despite a live context at start")
	}
	if stats.Steps > 100+ctxCheckMask+1 {
		t.Fatalf("ran %d steps after cancellation around step 100", stats.Steps)
	}
}

func TestRunContextBackgroundCompletes(t *testing.T) {
	stats, err := NewExec(longProg(), Config{}).RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps == 0 {
		t.Fatal("no steps executed")
	}
}

type cancelAtAccess struct {
	NopInst
	seen   uint64
	n      uint64
	cancel context.CancelFunc
}

func (c *cancelAtAccess) Access(Access) {
	c.seen++
	if c.seen == c.n {
		c.cancel()
	}
}
