package vm

import "fmt"

// Stats counts what an execution did. Checker-specific counters (IDG edges,
// SCCs, instrumented accesses) live in the checkers; these are the ground
// truth totals of the execution itself.
type Stats struct {
	Steps         uint64 // scheduler steps (operations attempted)
	Ops           uint64 // operations executed or retried
	FieldAccesses uint64 // data field accesses
	ArrayAccesses uint64 // array element accesses
	SyncAccesses  uint64 // synchronization operations surfaced as accesses
	RegularTx     uint64 // regular (non-unary) transactions begun
	TxEnds        uint64 // regular transactions ended (== RegularTx only on clean completion)
	ThreadStarts  uint64 // ThreadStart events emitted
	ThreadExits   uint64 // ThreadExit events emitted
	Calls         uint64
	Forks         uint64
	Waits         uint64
	Notifies      uint64
	BlockEvents   uint64 // times a thread blocked on a lock or join
	ComputeUnits  uint64
}

// AbortedTx returns the transactions begun but never ended — nonzero only
// when the run was cut short (cancellation, step limit, deadlock, a VM
// error), since a clean completion unwinds every frame. The two counters are
// intentionally asymmetric mid-run; asserting equality is only valid at
// clean completion (RunContext checks it there).
func (s *Stats) AbortedTx() uint64 {
	if s.TxEnds >= s.RegularTx {
		return 0
	}
	return s.RegularTx - s.TxEnds
}

// TotalAccesses returns all accesses surfaced to instrumentation.
func (s *Stats) TotalAccesses() uint64 {
	return s.FieldAccesses + s.ArrayAccesses + s.SyncAccesses
}

func (s *Stats) String() string {
	return fmt.Sprintf("steps=%d accesses=%d (field=%d array=%d sync=%d) tx=%d forks=%d",
		s.Steps, s.TotalAccesses(), s.FieldAccesses, s.ArrayAccesses, s.SyncAccesses,
		s.RegularTx, s.Forks)
}

// EventCounts tallies, per kind, the instrumentation events an execution
// emitted. A trace recorder keeps the same tally for the events it wrote,
// so recorder completeness is assertable: recorded events == emitted events.
type EventCounts struct {
	ThreadStarts  uint64
	ThreadExits   uint64
	TxBegins      uint64
	TxEnds        uint64
	FieldAccesses uint64
	ArrayAccesses uint64
	SyncAccesses  uint64
}

// Total returns the number of events across all kinds (ProgramStart and
// ProgramEnd, which occur at most once, are not counted).
func (c EventCounts) Total() uint64 {
	return c.ThreadStarts + c.ThreadExits + c.TxBegins + c.TxEnds +
		c.FieldAccesses + c.ArrayAccesses + c.SyncAccesses
}

func (c EventCounts) String() string {
	return fmt.Sprintf("threads=%d/%d tx=%d/%d accesses(field=%d array=%d sync=%d)",
		c.ThreadStarts, c.ThreadExits, c.TxBegins, c.TxEnds,
		c.FieldAccesses, c.ArrayAccesses, c.SyncAccesses)
}

// Events returns the per-kind tally of instrumentation events this
// execution emitted.
func (s *Stats) Events() EventCounts {
	return EventCounts{
		ThreadStarts:  s.ThreadStarts,
		ThreadExits:   s.ThreadExits,
		TxBegins:      s.RegularTx,
		TxEnds:        s.TxEnds,
		FieldAccesses: s.FieldAccesses,
		ArrayAccesses: s.ArrayAccesses,
		SyncAccesses:  s.SyncAccesses,
	}
}
