package vm

import "fmt"

// Stats counts what an execution did. Checker-specific counters (IDG edges,
// SCCs, instrumented accesses) live in the checkers; these are the ground
// truth totals of the execution itself.
type Stats struct {
	Steps         uint64 // scheduler steps (operations attempted)
	Ops           uint64 // operations executed or retried
	FieldAccesses uint64 // data field accesses
	ArrayAccesses uint64 // array element accesses
	SyncAccesses  uint64 // synchronization operations surfaced as accesses
	RegularTx     uint64 // regular (non-unary) transactions begun
	Calls         uint64
	Forks         uint64
	Waits         uint64
	Notifies      uint64
	BlockEvents   uint64 // times a thread blocked on a lock or join
	ComputeUnits  uint64
}

// TotalAccesses returns all accesses surfaced to instrumentation.
func (s *Stats) TotalAccesses() uint64 {
	return s.FieldAccesses + s.ArrayAccesses + s.SyncAccesses
}

func (s *Stats) String() string {
	return fmt.Sprintf("steps=%d accesses=%d (field=%d array=%d sync=%d) tx=%d forks=%d",
		s.Steps, s.TotalAccesses(), s.FieldAccesses, s.ArrayAccesses, s.SyncAccesses,
		s.RegularTx, s.Forks)
}
