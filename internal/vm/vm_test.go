package vm

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"doublechecker/internal/cost"
)

// recorder captures the event stream for assertions.
type recorder struct {
	NopInst
	events   []string
	accesses []Access
}

func (r *recorder) ThreadStart(t ThreadID) { r.events = append(r.events, fmt.Sprintf("start t%d", t)) }
func (r *recorder) ThreadExit(t ThreadID)  { r.events = append(r.events, fmt.Sprintf("exit t%d", t)) }
func (r *recorder) TxBegin(t ThreadID, m MethodID) {
	r.events = append(r.events, fmt.Sprintf("txbegin t%d m%d", t, m))
}
func (r *recorder) TxEnd(t ThreadID, m MethodID) {
	r.events = append(r.events, fmt.Sprintf("txend t%d m%d", t, m))
}
func (r *recorder) Access(a Access) {
	r.accesses = append(r.accesses, a)
	rw := "rd"
	if a.Write {
		rw = "wr"
	}
	r.events = append(r.events, fmt.Sprintf("%s t%d o%d.%d %s", rw, a.Thread, a.Obj, a.Field, a.Class))
}

func (r *recorder) has(sub string) bool {
	for _, e := range r.events {
		if e == sub {
			return true
		}
	}
	return false
}

func run(t *testing.T, p *Program, cfg Config) (*Stats, *recorder) {
	t.Helper()
	rec := &recorder{}
	if cfg.Inst != nil {
		cfg.Inst = MultiInst{cfg.Inst, rec}
	} else {
		cfg.Inst = rec
	}
	st, err := NewExec(p, cfg).Run()
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return st, rec
}

func TestSingleThreadReadsWrites(t *testing.T) {
	b := NewBuilder("p")
	o := b.Object()
	m := b.Method("main")
	m.Read(o, 0).Write(o, 1).Read(o, 2)
	b.Thread(m)
	st, rec := run(t, b.MustBuild(), Config{})
	if st.FieldAccesses != 3 {
		t.Errorf("field accesses = %d, want 3", st.FieldAccesses)
	}
	if !rec.has("rd t0 o0.0 field") || !rec.has("wr t0 o0.1 field") {
		t.Errorf("missing expected accesses: %v", rec.events)
	}
}

func TestSeqStrictlyIncreasing(t *testing.T) {
	b := NewBuilder("p")
	o := b.Object()
	m := b.Method("main")
	for i := 0; i < 20; i++ {
		m.Write(o, FieldID(i))
	}
	b.Thread(m)
	_, rec := run(t, b.MustBuild(), Config{})
	var last uint64
	for _, a := range rec.accesses {
		if a.Seq <= last {
			t.Fatalf("seq not strictly increasing: %d after %d", a.Seq, last)
		}
		last = a.Seq
	}
}

func TestLockMutualExclusionAndEvents(t *testing.T) {
	b := NewBuilder("p")
	lk := b.Object()
	o := b.Object()
	work := b.Method("work")
	work.Acquire(lk).Read(o, 0).Write(o, 0).Release(lk)
	m0 := b.Method("m0")
	m0.CallN(work, 5)
	m1 := b.Method("m1")
	m1.CallN(work, 5)
	b.Thread(m0)
	b.Thread(m1)
	st, rec := run(t, b.MustBuild(), Config{Sched: NewRandom(7)})
	if st.SyncAccesses < 20 { // 10 acquires + 10 releases (+ thread handles)
		t.Errorf("sync accesses = %d, want >= 20", st.SyncAccesses)
	}
	if !rec.has("rd t0 o0.0 sync") || !rec.has("wr t1 o0.0 sync") {
		t.Errorf("acquire should read, release should write: %v", rec.events[:10])
	}
}

func TestLockBlocksAndUnblocks(t *testing.T) {
	// t0 holds the lock while t1 tries to take it; under round-robin t1
	// must block at least once.
	b := NewBuilder("p")
	lk := b.Object()
	o := b.Object()
	m0 := b.Method("m0")
	m0.Acquire(lk).Compute(1).Compute(1).Compute(1).Write(o, 0).Release(lk)
	m1 := b.Method("m1")
	m1.Acquire(lk).Write(o, 0).Release(lk)
	b.Thread(m0)
	b.Thread(m1)
	st, _ := run(t, b.MustBuild(), Config{Sched: NewRoundRobin()})
	if st.BlockEvents == 0 {
		t.Error("t1 should have blocked on the lock at least once")
	}
}

func TestReentrantLock(t *testing.T) {
	b := NewBuilder("p")
	lk := b.Object()
	o := b.Object()
	m := b.Method("main")
	m.Acquire(lk).Acquire(lk).Write(o, 0).Release(lk).Release(lk)
	b.Thread(m)
	if st, _ := run(t, b.MustBuild(), Config{}); st.FieldAccesses != 1 {
		t.Error("reentrant acquire should not deadlock")
	}
}

func TestReleaseWithoutOwnershipErrors(t *testing.T) {
	b := NewBuilder("p")
	lk := b.Object()
	m := b.Method("main")
	m.Release(lk)
	b.Thread(m)
	_, err := NewExec(b.MustBuild(), Config{}).Run()
	if err == nil || !strings.Contains(err.Error(), "without owning") {
		t.Errorf("expected ownership error, got %v", err)
	}
}

func TestWaitWithoutOwnershipErrors(t *testing.T) {
	b := NewBuilder("p")
	lk := b.Object()
	m := b.Method("main")
	m.Wait(lk)
	b.Thread(m)
	if _, err := NewExec(b.MustBuild(), Config{}).Run(); err == nil {
		t.Error("expected wait-without-lock error")
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Classic ABBA deadlock, forced by round-robin.
	b := NewBuilder("p")
	a := b.Object()
	c := b.Object()
	m0 := b.Method("m0")
	m0.Acquire(a).Compute(1).Acquire(c).Release(c).Release(a)
	m1 := b.Method("m1")
	m1.Acquire(c).Compute(1).Acquire(a).Release(a).Release(c)
	b.Thread(m0)
	b.Thread(m1)
	_, err := NewExec(b.MustBuild(), Config{Sched: NewRoundRobin()}).Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("expected ErrDeadlock, got %v", err)
	}
}

func TestWaitNotifyHandshake(t *testing.T) {
	// t1 waits on the monitor; t0 notifies. Under round-robin this is a
	// deterministic handshake; the program must terminate with both field
	// writes done.
	b := NewBuilder("p")
	mon := b.Object()
	o := b.Object()
	waiter := b.Method("waiter")
	waiter.Acquire(mon).Wait(mon).Write(o, 0).Release(mon)
	notifier := b.Method("notifier")
	notifier.Compute(5).Compute(5).Acquire(mon).Notify(mon).Release(mon).Write(o, 1)
	b.Thread(waiter)
	b.Thread(notifier)
	st, rec := run(t, b.MustBuild(), Config{Sched: NewRoundRobin()})
	if st.Waits != 1 || st.Notifies != 1 {
		t.Errorf("waits=%d notifies=%d, want 1/1", st.Waits, st.Notifies)
	}
	if !rec.has("wr t0 o1.0 field") {
		t.Error("waiter should have run after notify")
	}
}

func TestNotifyAllWakesEveryone(t *testing.T) {
	b := NewBuilder("p")
	mon := b.Object()
	o := b.Object()
	waiter := b.Method("waiter")
	waiter.Acquire(mon).Wait(mon).Write(o, 0).Release(mon)
	waiter2 := b.Method("waiter2")
	waiter2.Acquire(mon).Wait(mon).Write(o, 1).Release(mon)
	notifier := b.Method("notifier")
	for i := 0; i < 10; i++ {
		notifier.Compute(1)
	}
	notifier.Acquire(mon).NotifyAll(mon).Release(mon)
	b.Thread(waiter)
	b.Thread(waiter2)
	b.Thread(notifier)
	st, _ := run(t, b.MustBuild(), Config{Sched: NewRoundRobin()})
	if st.Waits != 2 {
		t.Errorf("waits = %d, want 2", st.Waits)
	}
}

func TestForkJoin(t *testing.T) {
	b := NewBuilder("p")
	o := b.Object()
	child := b.Method("child")
	child.Write(o, 0)
	childT := b.ForkedThread(child)
	m := b.Method("main")
	m.Fork(childT).Join(childT).Read(o, 0)
	b.Thread(m)
	st, rec := run(t, b.MustBuild(), Config{Sched: NewRoundRobin()})
	if st.Forks != 1 {
		t.Errorf("forks = %d, want 1", st.Forks)
	}
	// Handle object of the child is object NumObjects + child.
	handle := b.MustBuild().ThreadObject(childT)
	if !rec.has(fmt.Sprintf("wr t0 o%d.0 sync", handle)) {
		t.Error("fork should write the child's handle object")
	}
	if !rec.has(fmt.Sprintf("rd t1 o%d.0 sync", handle)) {
		t.Error("child start should read its handle object")
	}
	if !rec.has(fmt.Sprintf("wr t1 o%d.0 sync", handle)) {
		t.Error("child exit should write its handle object")
	}
}

func TestForkTwiceErrors(t *testing.T) {
	b := NewBuilder("p")
	child := b.Method("child")
	child.Compute(1)
	ct := b.ForkedThread(child)
	m := b.Method("main")
	m.Fork(ct).Fork(ct)
	b.Thread(m)
	if _, err := NewExec(b.MustBuild(), Config{}).Run(); err == nil {
		t.Error("expected double-fork error")
	}
}

func TestTransactionDemarcation(t *testing.T) {
	b := NewBuilder("p")
	o := b.Object()
	inner := b.Method("inner") // atomic, nested: must flatten
	inner.Write(o, 1)
	outer := b.Method("outer") // atomic
	outer.Read(o, 0).Call(inner).Read(o, 2)
	plain := b.Method("plain") // not atomic
	plain.Write(o, 3)
	m := b.Method("main")
	m.Call(outer).Call(plain)
	b.Thread(m)
	atomic := map[string]bool{"outer": true, "inner": true}
	prog := b.MustBuild()
	isAtomic := func(id MethodID) bool { return atomic[prog.Methods[id].Name] }
	st, rec := run(t, prog, Config{Atomic: isAtomic})
	if st.RegularTx != 1 {
		t.Errorf("regular transactions = %d, want 1 (nested atomic flattens)", st.RegularTx)
	}
	outerID := prog.MethodByName("outer").ID
	if !rec.has(fmt.Sprintf("txbegin t0 m%d", outerID)) {
		t.Errorf("missing txbegin for outer: %v", rec.events)
	}
	// txend must come after the accesses of inner and outer, before plain's.
	idxEnd, idxPlain := -1, -1
	for i, ev := range rec.events {
		if strings.HasPrefix(ev, "txend") {
			idxEnd = i
		}
		if ev == "wr t0 o0.3 field" {
			idxPlain = i
		}
	}
	if idxEnd == -1 || idxPlain == -1 || idxEnd > idxPlain {
		t.Errorf("txend (%d) should precede plain write (%d): %v", idxEnd, idxPlain, rec.events)
	}
}

func TestAtomicEntryMethodIsTransaction(t *testing.T) {
	b := NewBuilder("p")
	o := b.Object()
	m := b.Method("main")
	m.Write(o, 0)
	b.Thread(m)
	prog := b.MustBuild()
	st, rec := run(t, prog, Config{Atomic: func(MethodID) bool { return true }})
	if st.RegularTx != 1 {
		t.Errorf("regular transactions = %d, want 1", st.RegularTx)
	}
	if !rec.has("txbegin t0 m0") || !rec.has("txend t0 m0") {
		t.Errorf("entry transaction events missing: %v", rec.events)
	}
}

func TestNonAtomicCalleeInheritsContext(t *testing.T) {
	// plain is called from atomic outer: its access is inside the
	// transaction (no txend until outer returns).
	b := NewBuilder("p")
	o := b.Object()
	plain := b.Method("plain")
	plain.Write(o, 0)
	outer := b.Method("outer")
	outer.Call(plain)
	m := b.Method("main")
	m.Call(outer)
	b.Thread(m)
	prog := b.MustBuild()
	atomicOuter := func(id MethodID) bool { return prog.Methods[id].Name == "outer" }
	_, rec := run(t, prog, Config{Atomic: atomicOuter})
	iTxEnd, iWr := -1, -1
	for i, ev := range rec.events {
		if strings.HasPrefix(ev, "txend") {
			iTxEnd = i
		}
		if ev == "wr t0 o0.0 field" {
			iWr = i
		}
	}
	if iWr == -1 || iTxEnd == -1 || iWr > iTxEnd {
		t.Errorf("plain's write (%d) must fall inside the transaction (txend %d)", iWr, iTxEnd)
	}
}

func TestArrayAccessClass(t *testing.T) {
	b := NewBuilder("p")
	arr := b.Array(8)
	m := b.Method("main")
	m.ArrayWrite(arr, 3).ArrayRead(arr, 3)
	b.Thread(m)
	st, rec := run(t, b.MustBuild(), Config{})
	if st.ArrayAccesses != 2 {
		t.Errorf("array accesses = %d, want 2", st.ArrayAccesses)
	}
	if !rec.has("wr t0 o0.3 array") {
		t.Errorf("array write event missing: %v", rec.events)
	}
}

func TestComputeChargesMeter(t *testing.T) {
	model := cost.Default()
	meter := cost.NewMeter(model)
	b := NewBuilder("p")
	m := b.Method("main")
	m.Compute(100)
	b.Thread(m)
	if _, err := NewExec(b.MustBuild(), Config{Meter: meter}).Run(); err != nil {
		t.Fatal(err)
	}
	want := model.BaseOp + 100*model.ComputeUnit
	if meter.Total() != want {
		t.Errorf("meter total = %d, want %d", meter.Total(), want)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	prog := contentedProgram()
	tr1 := trace(t, prog, 42)
	tr2 := trace(t, prog, 42)
	if !reflect.DeepEqual(tr1, tr2) {
		t.Error("same seed must produce identical access traces")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	prog := contentedProgram()
	tr1 := trace(t, prog, 1)
	var differ bool
	for s := int64(2); s < 10; s++ {
		if !reflect.DeepEqual(tr1, trace(t, prog, s)) {
			differ = true
			break
		}
	}
	if !differ {
		t.Error("expected at least one different interleaving across seeds")
	}
}

func trace(t *testing.T, p *Program, seed int64) []Access {
	t.Helper()
	rec := &recorder{}
	if _, err := NewExec(p, Config{Sched: NewRandom(seed), Inst: rec}).Run(); err != nil {
		t.Fatal(err)
	}
	return rec.accesses
}

func contentedProgram() *Program {
	b := NewBuilder("contended")
	lk := b.Object()
	o := b.Object()
	work := b.Method("work")
	work.Acquire(lk).Read(o, 0).Write(o, 0).Release(lk).Read(o, 1).Write(o, 1)
	m0 := b.Method("m0")
	m0.CallN(work, 10)
	m1 := b.Method("m1")
	m1.CallN(work, 10)
	b.Thread(m0)
	b.Thread(m1)
	return b.MustBuild()
}

func TestStepLimit(t *testing.T) {
	b := NewBuilder("p")
	m := b.Method("main")
	for i := 0; i < 100; i++ {
		m.Compute(1)
	}
	b.Thread(m)
	_, err := NewExec(b.MustBuild(), Config{MaxSteps: 10}).Run()
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("expected ErrStepLimit, got %v", err)
	}
}

func TestCallDepthLimit(t *testing.T) {
	b := NewBuilder("p")
	rec := b.Method("rec")
	rec.Call(rec) // infinite recursion
	m := b.Method("main")
	m.Call(rec)
	b.Thread(m)
	_, err := NewExec(b.MustBuild(), Config{MaxCallDepth: 50}).Run()
	if err == nil || !strings.Contains(err.Error(), "call depth") {
		t.Errorf("expected call depth error, got %v", err)
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
	}{
		{"no threads", &Program{Name: "x", Methods: []*Method{{ID: 0, Name: "m"}}}},
		{"bad entry", &Program{Name: "x",
			Methods: []*Method{{ID: 0, Name: "m"}},
			Threads: []ThreadDecl{{ID: 0, Entry: 9, AutoStart: true}}}},
		{"object range", &Program{Name: "x",
			Methods: []*Method{{ID: 0, Name: "m", Body: []Op{{Kind: OpRead, Obj: 5}}}},
			Threads: []ThreadDecl{{ID: 0, Entry: 0, AutoStart: true}}}},
		{"dup method", &Program{Name: "x", NumObjects: 1,
			Methods: []*Method{{ID: 0, Name: "m"}, {ID: 1, Name: "m"}},
			Threads: []ThreadDecl{{ID: 0, Entry: 0, AutoStart: true}}}},
		{"fork autostart", &Program{Name: "x", NumObjects: 1,
			Methods: []*Method{{ID: 0, Name: "m", Body: []Op{{Kind: OpFork, Target: 0}}}},
			Threads: []ThreadDecl{{ID: 0, Entry: 0, AutoStart: true}}}},
		{"array bounds", func() *Program {
			b := NewBuilder("x")
			arr := b.Array(2)
			m := b.Method("m")
			m.Op(Op{Kind: OpArrayRead, Obj: arr, Field: 5})
			b.Thread(m)
			p := &Program{Name: "x", Methods: []*Method{m.m}, Threads: []ThreadDecl{{ID: 0, Entry: 0, AutoStart: true}}, NumObjects: 1, ArrayLens: map[ObjectID]int{arr: 2}}
			return p
		}()},
	}
	for _, c := range cases {
		if err := c.prog.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestSchedulers(t *testing.T) {
	runnable := []ThreadID{0, 2, 5}
	rr := NewRoundRobin()
	got := []ThreadID{rr.Next(runnable, 0), rr.Next(runnable, 1), rr.Next(runnable, 2), rr.Next(runnable, 3)}
	want := []ThreadID{0, 2, 5, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round robin = %v, want %v", got, want)
	}

	r := NewRandom(1)
	for i := 0; i < 100; i++ {
		n := r.Next(runnable, uint64(i))
		if n != 0 && n != 2 && n != 5 {
			t.Fatalf("random scheduler returned non-runnable %d", n)
		}
	}

	sticky := NewSticky(1, 0.1)
	same := 0
	prev := sticky.Next(runnable, 0)
	for i := 1; i < 100; i++ {
		n := sticky.Next(runnable, uint64(i))
		if n == prev {
			same++
		}
		prev = n
	}
	if same < 50 {
		t.Errorf("sticky scheduler switched too often: only %d repeats", same)
	}

	sc := NewScripted([]ThreadID{5, 0}, true)
	if sc.Next(runnable, 0) != 5 || sc.Next(runnable, 1) != 0 {
		t.Error("scripted scheduler did not follow script")
	}
	// Exhausted script falls back to round robin.
	if n := sc.Next(runnable, 2); n != 0 && n != 2 && n != 5 {
		t.Errorf("fallback returned non-runnable %d", n)
	}
}

func TestScriptedStrictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("strict scripted scheduler should panic on non-runnable choice")
		}
	}()
	NewScripted([]ThreadID{9}, true).Next([]ThreadID{0}, 0)
}

func TestBlockedQuery(t *testing.T) {
	b := NewBuilder("p")
	lk := b.Object()
	m0 := b.Method("m0")
	m0.Acquire(lk).Compute(1).Release(lk)
	m1 := b.Method("m1")
	m1.Acquire(lk).Release(lk)
	b.Thread(m0)
	b.Thread(m1)
	prog := b.MustBuild()

	var sawBlocked bool
	probe := &probeInst{check: func(e *Exec) {
		if e.Blocked(1) {
			sawBlocked = true
		}
	}}
	if _, err := NewExec(prog, Config{Sched: NewRoundRobin(), Inst: probe}).Run(); err != nil {
		t.Fatal(err)
	}
	if !sawBlocked {
		t.Error("t1 should have been observed blocked")
	}
}

type probeInst struct {
	NopInst
	e     *Exec
	check func(*Exec)
}

func (p *probeInst) ProgramStart(e ExecView) { p.e = e.(*Exec) }
func (p *probeInst) Access(Access)           { p.check(p.e) }

func TestOpStrings(t *testing.T) {
	ops := []Op{
		{Kind: OpRead, Obj: 1, Field: 2},
		{Kind: OpAcquire, Obj: 3},
		{Kind: OpCall, Target: 4},
		{Kind: OpFork, Target: 5},
		{Kind: OpCompute, Target: 6},
	}
	for _, op := range ops {
		if op.String() == "" {
			t.Errorf("empty string for %v", op.Kind)
		}
	}
}
