// Package vm implements the execution substrate of this reproduction: a
// deterministic multithreaded virtual machine.
//
// The paper instruments Java programs inside Jikes RVM; every load and store
// passes through compiler-inserted barriers, and atomic regions are
// demarcated by method entry/exit. Go offers no such hook, so we interpret
// method-structured programs ourselves. A program is a set of methods (flat
// operation lists) and a set of threads, each with an entry method. The
// executor (exec.go) runs one operation of one runnable thread per step,
// choosing the thread with a pluggable, seeded scheduler — which makes every
// interleaving reproducible and lets us run different checkers over the
// *identical* execution.
//
// Every operation that a JVM barrier would observe is surfaced to an
// Instrumentation: data reads/writes on object fields, array accesses,
// monitor acquire/release, wait/notify, fork/join (the latter four desugared
// into release-like writes and acquire-like reads on designated objects,
// exactly how the paper's checkers treat synchronization), and transaction
// begin/end events derived from the atomicity specification.
package vm

import (
	"fmt"
)

// ThreadID identifies a thread within a program. Threads are numbered
// densely from 0 in the order they are declared.
type ThreadID int32

// ObjectID identifies a shared object (any unit of shared memory: a data
// object, a lock, an array, or a synthesized per-thread handle object).
type ObjectID int32

// FieldID identifies a field within an object, or an element index within an
// array. Checkers may track dependences at object or field granularity.
type FieldID int32

// MethodID indexes Program.Methods.
type MethodID int32

// NoMethod marks the absence of a method (e.g. the method of a unary
// transaction).
const NoMethod MethodID = -1

// OpKind enumerates the virtual machine's operations.
type OpKind uint8

const (
	// OpRead reads Obj.Field.
	OpRead OpKind = iota
	// OpWrite writes Obj.Field.
	OpWrite
	// OpArrayRead reads element Field of array object Obj.
	OpArrayRead
	// OpArrayWrite writes element Field of array object Obj.
	OpArrayWrite
	// OpAcquire acquires the monitor of Obj (reentrant).
	OpAcquire
	// OpRelease releases the monitor of Obj.
	OpRelease
	// OpCall invokes method Target.
	OpCall
	// OpFork starts thread Target (which must be declared with AutoStart
	// false and not yet started).
	OpFork
	// OpJoin blocks until thread Target has exited.
	OpJoin
	// OpWait waits on the monitor of Obj, which the thread must hold; the
	// monitor is released while waiting and reacquired before continuing.
	// A banked notify (see OpNotify) is consumed without blocking.
	OpWait
	// OpNotify wakes one waiter on Obj's monitor (FIFO, for determinism).
	// With no waiter the signal is banked rather than lost (semaphore
	// semantics): the workload language has no conditionals for guarded
	// waits, and lost signals would make termination schedule-dependent.
	OpNotify
	// OpNotifyAll wakes every waiter on Obj's monitor.
	OpNotifyAll
	// OpCompute performs Target units of pure thread-local work. It touches
	// no shared memory and is invisible to checkers; it exists to shape the
	// ratio of instrumented to uninstrumented work per benchmark.
	OpCompute
)

var opKindNames = [...]string{
	OpRead: "read", OpWrite: "write",
	OpArrayRead: "aread", OpArrayWrite: "awrite",
	OpAcquire: "acquire", OpRelease: "release",
	OpCall: "call", OpFork: "fork", OpJoin: "join",
	OpWait: "wait", OpNotify: "notify", OpNotifyAll: "notifyall",
	OpCompute: "compute",
}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one virtual machine operation. The meaning of Obj, Field and Target
// depends on Kind; unused parts are zero.
type Op struct {
	Kind   OpKind
	Obj    ObjectID // object / lock / array / monitor operand
	Field  FieldID  // field or array element index
	Target int32    // MethodID for call; ThreadID for fork/join; work for compute
}

func (o Op) String() string {
	switch o.Kind {
	case OpRead, OpWrite, OpArrayRead, OpArrayWrite:
		return fmt.Sprintf("%s o%d.%d", o.Kind, o.Obj, o.Field)
	case OpAcquire, OpRelease, OpWait, OpNotify, OpNotifyAll:
		return fmt.Sprintf("%s o%d", o.Kind, o.Obj)
	case OpCall:
		return fmt.Sprintf("call m%d", o.Target)
	case OpFork, OpJoin:
		return fmt.Sprintf("%s t%d", o.Kind, o.Target)
	case OpCompute:
		return fmt.Sprintf("compute %d", o.Target)
	}
	return fmt.Sprintf("op(%d)", o.Kind)
}

// Method is a named, flat list of operations. Loops in the surface language
// are unrolled during lowering; recursion is permitted up to the executor's
// call-depth limit.
type Method struct {
	ID   MethodID
	Name string
	Body []Op
}

// ThreadDecl declares a thread. AutoStart threads begin runnable at step 0;
// the rest must be started with OpFork.
type ThreadDecl struct {
	ID        ThreadID
	Entry     MethodID
	AutoStart bool
}

// Program is a complete multithreaded program.
type Program struct {
	Name       string
	Methods    []*Method
	Threads    []ThreadDecl
	NumObjects int              // data/lock/array objects are 0..NumObjects-1
	ArrayLens  map[ObjectID]int // declared arrays and their lengths
}

// TotalObjects counts program objects plus the synthesized per-thread handle
// objects used to model fork/join dependences.
func (p *Program) TotalObjects() int { return p.NumObjects + len(p.Threads) }

// ThreadObject returns the synthesized handle object of thread t. Fork and
// thread start/exit/join are modelled as writes and reads on this object.
func (p *Program) ThreadObject(t ThreadID) ObjectID {
	return ObjectID(p.NumObjects + int(t))
}

// IsArray reports whether obj was declared as an array.
func (p *Program) IsArray(obj ObjectID) bool {
	_, ok := p.ArrayLens[obj]
	return ok
}

// MethodByName returns the method with the given name, or nil.
func (p *Program) MethodByName(name string) *Method {
	for _, m := range p.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// MethodName returns the name of m, or a placeholder for NoMethod.
func (p *Program) MethodName(m MethodID) string {
	if m == NoMethod {
		return "<unary>"
	}
	return p.Methods[m].Name
}

// Validate checks structural well-formedness: operand ranges, call targets,
// fork/join targets, array bounds, and that auto-start threads exist.
func (p *Program) Validate() error {
	if len(p.Threads) == 0 {
		return fmt.Errorf("program %q: no threads", p.Name)
	}
	auto := 0
	for i, t := range p.Threads {
		if t.ID != ThreadID(i) {
			return fmt.Errorf("program %q: thread %d has ID %d", p.Name, i, t.ID)
		}
		if int(t.Entry) < 0 || int(t.Entry) >= len(p.Methods) {
			return fmt.Errorf("program %q: thread %d entry method %d out of range", p.Name, i, t.Entry)
		}
		if t.AutoStart {
			auto++
		}
	}
	if auto == 0 {
		return fmt.Errorf("program %q: no auto-start threads", p.Name)
	}
	names := make(map[string]bool, len(p.Methods))
	for i, m := range p.Methods {
		if m.ID != MethodID(i) {
			return fmt.Errorf("program %q: method %q has ID %d at index %d", p.Name, m.Name, m.ID, i)
		}
		if names[m.Name] {
			return fmt.Errorf("program %q: duplicate method name %q", p.Name, m.Name)
		}
		names[m.Name] = true
		for pc, op := range m.Body {
			if err := p.validateOp(m, pc, op); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *Program) validateOp(m *Method, pc int, op Op) error {
	bad := func(msg string) error {
		return fmt.Errorf("program %q: %s+%d (%s): %s", p.Name, m.Name, pc, op, msg)
	}
	switch op.Kind {
	case OpRead, OpWrite:
		if int(op.Obj) < 0 || int(op.Obj) >= p.NumObjects {
			return bad("object out of range")
		}
		if op.Field < 0 {
			return bad("negative field")
		}
	case OpArrayRead, OpArrayWrite:
		n, ok := p.ArrayLens[op.Obj]
		if !ok {
			return bad("not a declared array")
		}
		if int(op.Field) < 0 || int(op.Field) >= n {
			return bad("array index out of bounds")
		}
	case OpAcquire, OpRelease, OpWait, OpNotify, OpNotifyAll:
		if int(op.Obj) < 0 || int(op.Obj) >= p.NumObjects {
			return bad("monitor object out of range")
		}
	case OpCall:
		if int(op.Target) < 0 || int(op.Target) >= len(p.Methods) {
			return bad("call target out of range")
		}
	case OpFork, OpJoin:
		if int(op.Target) < 0 || int(op.Target) >= len(p.Threads) {
			return bad("thread target out of range")
		}
		if op.Kind == OpFork && p.Threads[op.Target].AutoStart {
			return bad("fork of auto-start thread")
		}
	case OpCompute:
		if op.Target < 0 {
			return bad("negative compute amount")
		}
	default:
		return bad("unknown op kind")
	}
	return nil
}
