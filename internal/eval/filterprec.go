package eval

import (
	"fmt"
	"strings"

	"doublechecker/internal/core"
	"doublechecker/internal/cost"
)

// FilterPrecisionRow is one support threshold of the first-run -> second-run
// communication study.
type FilterPrecisionRow struct {
	Benchmark      string
	MinSupport     int
	MethodsChosen  int
	Normalized     float64 // second run, median over trials
	ViolationsSeen int     // distinct blamed methods across trials
}

// FilterPrecisionData implements the paper's closing future-work suggestion
// for multi-run mode: "devise an effective way for the first run to more
// precisely communicate potentially imprecise cycles to the second run"
// (§5.3). The first runs here report, per method, how many imprecise SCCs
// its transactions joined; the second run instruments only methods whose
// summed support reaches a threshold. Support 1 is the paper's behavior;
// higher thresholds shrink the instrumented set (cheaper second run) at the
// risk of losing rarely-cycling methods.
type FilterPrecisionData struct {
	Rows []FilterPrecisionRow
}

// FilterPrecision sweeps the support threshold.
func (r *Runner) FilterPrecision() (*FilterPrecisionData, error) {
	data := &FilterPrecisionData{}
	for _, name := range r.opts.Benchmarks {
		b, _, err := r.bench(name)
		if err != nil {
			return nil, err
		}
		if !b.ComputeBound {
			continue
		}
		final, err := r.FinalSpec(name)
		if err != nil {
			return nil, err
		}
		// Paper-style first runs under the benchmark's *initial* spec so
		// that violations still exist for the second run to find.
		_, initial, err := r.bench(name)
		if err != nil {
			return nil, err
		}
		var firsts []*core.Result
		for i := 0; i < r.opts.FirstRuns; i++ {
			res, err := r.run(name, core.DCFirst, initial, 9100+int64(i), nil, nil)
			if err != nil {
				return nil, err
			}
			firsts = append(firsts, res)
		}
		_ = final
		for _, support := range []int{1, 2, 4, 8} {
			filter := core.UnionFilterMinSupport(firsts, support)
			row := FilterPrecisionRow{
				Benchmark:     name,
				MinSupport:    support,
				MethodsChosen: len(filter.Methods),
			}
			blamed := map[string]bool{}
			var norms []float64
			for trial := 0; trial < r.opts.PerfTrials; trial++ {
				seed := int64(800 + trial)
				base := cost.NewMeter(cost.Default())
				if _, err := r.run(name, core.Baseline, initial, seed, base, nil); err != nil {
					return nil, err
				}
				meter := cost.NewMeter(cost.Default())
				res, err := r.run(name, core.DCSecond, initial, seed, meter,
					func(c *core.Config) { c.Filter = filter })
				if err != nil {
					return nil, err
				}
				norms = append(norms, res.Cost.Normalized(base.Total()))
				for _, n := range res.BlamedMethodNames(b.Prog) {
					blamed[n] = true
				}
			}
			row.Normalized = median(norms)
			row.ViolationsSeen = len(blamed)
			data.Rows = append(data.Rows, row)
		}
	}
	return data, nil
}

// RenderFilterPrecision renders the study.
func (d *FilterPrecisionData) RenderFilterPrecision() string {
	var b strings.Builder
	b.WriteString("First-run -> second-run communication precision (§5.3 future work)\n")
	b.WriteString("second run instruments only methods whose SCC support across first runs\n")
	b.WriteString("reaches the threshold; support 1 is the paper's behavior\n\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %12s %12s\n",
		"benchmark", "support", "methods", "norm time", "blamed")
	b.WriteString(strings.Repeat("-", 62) + "\n")
	prev := ""
	for _, r := range d.Rows {
		name := r.Benchmark
		if name == prev {
			name = ""
		}
		prev = r.Benchmark
		fmt.Fprintf(&b, "%-12s %10d %10d %11.2fx %12d\n",
			name, r.MinSupport, r.MethodsChosen, r.Normalized, r.ViolationsSeen)
	}
	return b.String()
}
