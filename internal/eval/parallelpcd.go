package eval

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"doublechecker/internal/core"
	"doublechecker/internal/telemetry"
	"doublechecker/internal/workloads"
)

// parallelPCDSeed is the fixed schedule seed for the determinism section;
// the timing section rotates seeds per trial.
const parallelPCDSeed = 1

// parallelPCDWorkers are the pool sizes compared, 0 being the in-line
// serial reference.
var parallelPCDWorkers = []int{0, 2, 4, 8}

// ParallelPCDConfig is one worker count's measurements on one benchmark.
type ParallelPCDConfig struct {
	Workers int `json:"workers"`
	// RunWallNanos is the mean whole-run wall time across the perf trials.
	RunWallNanos int64 `json:"run_wall_ns"`
	// CriticalPathPCDNanos is the mean wall time PCD work kept on the
	// program's critical path: the in-line replay spans when serial, only
	// the SCC hand-off (snapshot + enqueue) spans when pooled.
	CriticalPathPCDNanos int64 `json:"critical_path_pcd_ns"`
	// ReplayWallNanos is the mean total PCD replay wall time wherever it
	// ran: the replay spans when serial, the per-worker spans when pooled.
	ReplayWallNanos int64 `json:"replay_wall_ns"`
	// SpeedupRun and SpeedupPCDPhase are this config's ratios against the
	// serial reference (above 1 means faster / less critical-path time).
	SpeedupRun      float64 `json:"speedup_run"`
	SpeedupPCDPhase float64 `json:"speedup_pcd_phase"`
}

// ParallelPCDDet is the determinism self-check for one benchmark: the
// serial run's findings, and whether every pooled configuration reproduced
// the serial deterministic snapshot byte for byte.
type ParallelPCDDet struct {
	Violations int      `json:"violations"`
	Blamed     []string `json:"blamed"`
	SCCs       uint64   `json:"sccs"`
	// Identical reports that every worker count produced a byte-identical
	// deterministic telemetry snapshot and violation set. False is a
	// correctness failure of the pool, not a measurement artifact.
	Identical bool `json:"identical"`
	// Snapshot is the serial run's deterministic snapshot; with Identical
	// true it stands for every configuration.
	Snapshot *telemetry.Snapshot `json:"snapshot"`
}

// ParallelPCDBenchmark is one stress benchmark's full result.
type ParallelPCDBenchmark struct {
	Name    string              `json:"benchmark"`
	Det     ParallelPCDDet      `json:"determinism"`
	Configs []ParallelPCDConfig `json:"configs"`
}

// ParallelPCDData is the dump written by `dcbench -experiment parallelpcd`
// (BENCH_parallelpcd.json). The determinism section (DetJSON) is
// byte-reproducible across runs and machines; the timing section is not
// (wall clocks never are) and lives only in the full JSON.
type ParallelPCDData struct {
	Scale      float64                `json:"scale"`
	Seed       int64                  `json:"seed"`
	Trials     int                    `json:"trials"`
	Benchmarks []ParallelPCDBenchmark `json:"benchmarks"`
}

// ParallelPCD runs the concurrent-PCD experiment over the SCC-stress
// workloads: a determinism pass (every worker count must reproduce the
// serial findings and deterministic snapshot exactly) and a timing pass
// (whole-run wall time plus how much PCD wall time stays on the critical
// path, serial vs pooled).
func (r *Runner) ParallelPCD() (*ParallelPCDData, error) {
	data := &ParallelPCDData{Scale: r.opts.Scale, Seed: parallelPCDSeed, Trials: r.opts.PerfTrials}
	for _, name := range workloads.Stress() {
		_, initial, err := r.bench(name)
		if err != nil {
			return nil, err
		}
		bm := ParallelPCDBenchmark{Name: name}

		// Determinism pass: serial is the reference.
		var refJSON []byte
		var refSigs string
		bm.Det.Identical = true
		for _, w := range parallelPCDWorkers {
			w := w
			res, err := r.run(name, core.DCSingle, initial, parallelPCDSeed, nil,
				func(cfg *core.Config) { cfg.PCDWorkers = w })
			if err != nil {
				return nil, err
			}
			b, _, err := r.bench(name)
			if err != nil {
				return nil, err
			}
			snap := res.Telemetry.Deterministic()
			sigs := strings.Join(core.ViolationSignatures(res, b.Prog), ";")
			if w == 0 {
				refJSON = snap.JSON()
				refSigs = sigs
				bm.Det.Violations = len(res.Violations)
				bm.Det.Blamed = res.BlamedMethodNames(b.Prog)
				bm.Det.SCCs = res.ICD.SCCs
				bm.Det.Snapshot = snap
				continue
			}
			if !bytes.Equal(snap.JSON(), refJSON) || sigs != refSigs || len(res.PCDQuarantined) != 0 {
				bm.Det.Identical = false
			}
		}

		// Timing pass.
		trials := r.opts.PerfTrials
		if trials < 1 {
			trials = 1
		}
		var serial ParallelPCDConfig
		for _, w := range parallelPCDWorkers {
			w := w
			cfg := ParallelPCDConfig{Workers: w}
			for t := 0; t < trials; t++ {
				start := time.Now()
				res, err := r.run(name, core.DCSingle, initial, parallelPCDSeed+int64(t), nil,
					func(c *core.Config) { c.PCDWorkers = w })
				if err != nil {
					return nil, err
				}
				cfg.RunWallNanos += time.Since(start).Nanoseconds()
				spans := res.Telemetry.Spans
				if w >= 2 {
					cfg.CriticalPathPCDNanos += spans[telemetry.SpanPCDHandoff].WallNanos
					for n, sp := range spans {
						if strings.HasPrefix(n, telemetry.SpanPCDPoolWorker) {
							cfg.ReplayWallNanos += sp.WallNanos
						}
					}
				} else {
					replay := spans[telemetry.SpanPCDReplay].WallNanos
					cfg.CriticalPathPCDNanos += replay
					cfg.ReplayWallNanos += replay
				}
			}
			cfg.RunWallNanos /= int64(trials)
			cfg.CriticalPathPCDNanos /= int64(trials)
			cfg.ReplayWallNanos /= int64(trials)
			if w == 0 {
				serial = cfg
				cfg.SpeedupRun = 1
				cfg.SpeedupPCDPhase = 1
			} else {
				if cfg.RunWallNanos > 0 {
					cfg.SpeedupRun = float64(serial.RunWallNanos) / float64(cfg.RunWallNanos)
				}
				if cfg.CriticalPathPCDNanos > 0 {
					cfg.SpeedupPCDPhase = float64(serial.CriticalPathPCDNanos) / float64(cfg.CriticalPathPCDNanos)
				}
			}
			bm.Configs = append(bm.Configs, cfg)
		}
		data.Benchmarks = append(data.Benchmarks, bm)
	}
	return data, nil
}

// JSON renders the full dump (timing included) as indented JSON.
func (d *ParallelPCDData) JSON() []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		panic("eval: parallelpcd encode: " + err.Error())
	}
	return buf.Bytes()
}

// DetJSON renders only the determinism section: reproducible byte for byte
// across runs, so CI can record two fresh runs and require identical files.
func (d *ParallelPCDData) DetJSON() []byte {
	type detBench struct {
		Name string         `json:"benchmark"`
		Det  ParallelPCDDet `json:"determinism"`
	}
	out := struct {
		Scale      float64    `json:"scale"`
		Seed       int64      `json:"seed"`
		Benchmarks []detBench `json:"benchmarks"`
	}{Scale: d.Scale, Seed: d.Seed}
	for _, bm := range d.Benchmarks {
		out.Benchmarks = append(out.Benchmarks, detBench{Name: bm.Name, Det: bm.Det})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		panic("eval: parallelpcd det encode: " + err.Error())
	}
	return buf.Bytes()
}

// RenderParallelPCD prints the comparison table. Wall-time speedups depend
// on the host's core count (a single-core machine shows none); the
// critical-path column is the architectural effect and shows on any host.
func (d *ParallelPCDData) RenderParallelPCD() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Concurrent PCD (scale %.2g, seed %d, %d trial(s) per config)\n", d.Scale, d.Seed, d.Trials)
	fmt.Fprintf(&b, "%-10s %8s %10s %12s %12s %9s %9s  %s\n",
		"benchmark", "workers", "run-ms", "pcd-crit-ms", "replay-ms", "x-run", "x-pcd", "identical")
	for _, bm := range d.Benchmarks {
		ident := "yes"
		if !bm.Det.Identical {
			ident = "NO (pool diverged)"
		}
		for _, c := range bm.Configs {
			fmt.Fprintf(&b, "%-10s %8d %10.2f %12.3f %12.2f %9.2f %9.2f  %s\n",
				bm.Name, c.Workers,
				float64(c.RunWallNanos)/1e6,
				float64(c.CriticalPathPCDNanos)/1e6,
				float64(c.ReplayWallNanos)/1e6,
				c.SpeedupRun, c.SpeedupPCDPhase, ident)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}
