package eval

import (
	"strings"
	"testing"
)

// quickOpts keeps harness tests fast.
func quickOpts(benchmarks ...string) Options {
	return Options{
		Scale:        0.25,
		PerfTrials:   3,
		StatTrials:   2,
		RefineStable: 2,
		FirstRuns:    4,
		Benchmarks:   benchmarks,
	}
}

func TestTable2Quick(t *testing.T) {
	r := NewRunner(quickOpts("hsqldb6", "tsp", "philo", "xalan9"))
	d, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table2Row{}
	for _, row := range d.Rows {
		byName[row.Name] = row
	}
	if byName["philo"].Single != 0 {
		t.Errorf("philo should be clean, got %d", byName["philo"].Single)
	}
	if byName["hsqldb6"].Single == 0 {
		t.Error("hsqldb6 should report violations")
	}
	if byName["tsp"].Single == 0 {
		t.Error("tsp should report violations")
	}
	out := d.RenderTable2()
	if !strings.Contains(out, "hsqldb6") || !strings.Contains(out, "paper") {
		t.Error("render missing content")
	}
}

func TestMultiRunDetectsMost(t *testing.T) {
	r := NewRunner(quickOpts("hsqldb6", "tsp", "eclipse6"))
	d, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if d.DetectOverall < 0.4 {
		t.Errorf("multi-run detection rate %.2f suspiciously low", d.DetectOverall)
	}
}

func TestFigure7Quick(t *testing.T) {
	r := NewRunner(quickOpts("hsqldb6", "moldyn", "philo"))
	d, err := r.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	// philo is not compute bound: excluded.
	if len(d.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (philo excluded)", len(d.Rows))
	}
	idx := map[string]int{}
	for i, c := range d.Configs {
		idx[c.Label] = i
	}
	for _, row := range d.Rows {
		velo := row.Normalized[idx["Velodrome"]]
		single := row.Normalized[idx["Single-run (ICD+PCD)"]]
		first := row.Normalized[idx["First run (ICD w/o logging)"]]
		if !(first > 1 && single > first) {
			t.Errorf("%s: expected 1 < first(%v) < single(%v)", row.Name, first, single)
		}
		if velo < single {
			t.Errorf("%s: velodrome (%v) should cost more than single-run (%v)", row.Name, velo, single)
		}
	}
	out := d.RenderFigure7()
	if !strings.Contains(out, "geomean") {
		t.Error("render missing geomean")
	}
}

func TestTable3Quick(t *testing.T) {
	r := NewRunner(quickOpts("tsp", "jython9"))
	d, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table3Row{}
	for _, row := range d.Rows {
		byName[row.Name] = row
	}
	// tsp: non-transactional accesses dominate in single-run mode.
	if byName["tsp"].Single.NonTransAcc < byName["tsp"].Single.RegularAccesses {
		t.Errorf("tsp shape wrong: %+v", byName["tsp"].Single)
	}
	// jython9: no SCCs, so the second run instruments nothing.
	if byName["jython9"].Second.RegularAccesses != 0 {
		t.Errorf("jython9 second run should instrument nothing: %+v", byName["jython9"].Second)
	}
	if out := d.RenderTable3(); !strings.Contains(out, "tsp") {
		t.Error("render missing tsp")
	}
}

func TestRefinementStagesQuick(t *testing.T) {
	r := NewRunner(quickOpts("hsqldb6"))
	d, err := r.RefinementStages()
	if err != nil {
		t.Fatal(err)
	}
	if d.Initial <= 1 || d.Final <= 1 {
		t.Errorf("stages: %+v", d)
	}
	if out := d.RenderRefineStages(); !strings.Contains(out, "strictest") {
		t.Error("render broken")
	}
}

func TestArraysQuick(t *testing.T) {
	r := NewRunner(quickOpts("sor", "moldyn"))
	d, err := r.Arrays()
	if err != nil {
		t.Fatal(err)
	}
	if d.SingleWith <= d.SingleBase {
		t.Errorf("array instrumentation should add single-run cost: %+v", d)
	}
	if d.VeloWith <= d.VeloBase {
		t.Errorf("array instrumentation should add velodrome cost: %+v", d)
	}
	if out := d.RenderArrays(); !strings.Contains(out, "with arrays") {
		t.Error("render broken")
	}
}

func TestPCDOnlyQuick(t *testing.T) {
	r := NewRunner(quickOpts("hsqldb6", "montecarlo"))
	d, err := r.PCDOnly()
	if err != nil {
		t.Fatal(err)
	}
	if d.PCDOnly <= d.SingleBase {
		t.Errorf("PCD-only must cost more than filtered single-run: %+v", d)
	}
	if out := d.RenderPCDOnly(); !strings.Contains(out, "straw man") {
		t.Error("render broken")
	}
}

func TestStatisticsHelpers(t *testing.T) {
	if got := geomean([]float64{2, 8}); got < 3.99 || got > 4.01 {
		t.Errorf("geomean = %v", got)
	}
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median odd = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("median even = %v", got)
	}
	if got := mean([]float64{1, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
	if geomean(nil) != 0 || median(nil) != 0 || mean(nil) != 0 {
		t.Error("empty inputs should be 0")
	}
}

func TestPaperTablesComplete(t *testing.T) {
	for _, name := range []string{"eclipse6", "tsp", "raytracer"} {
		if _, ok := paperTable2[name]; !ok {
			t.Errorf("paperTable2 missing %s", name)
		}
		if _, ok := paperTable3[name]; !ok {
			t.Errorf("paperTable3 missing %s", name)
		}
	}
	if len(paperTable2) != 19 || len(paperTable3) != 19 {
		t.Errorf("paper tables: %d / %d entries, want 19", len(paperTable2), len(paperTable3))
	}
}

func TestAblationsQuick(t *testing.T) {
	r := NewRunner(quickOpts("tsp"))
	d, err := r.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != len(ablationVariants) {
		t.Fatalf("rows = %d, want %d", len(d.Rows), len(ablationVariants))
	}
	byVariant := map[string]AblationRow{}
	for _, row := range d.Rows {
		byVariant[row.Variant] = row
	}
	ref := byVariant["single-run (reference)"]
	if noMerge := byVariant["no unary merging"]; noMerge.Txns <= ref.Txns {
		t.Errorf("no-merge txns %d should exceed reference %d", noMerge.Txns, ref.Txns)
	}
	if noEl := byVariant["no log elision"]; noEl.LogElided != 0 || noEl.LogEntries <= ref.LogEntries {
		t.Errorf("no-elision row wrong: %+v vs ref %+v", noEl, ref)
	}
	if eager := byVariant["eager cycle detection"]; eager.SCCWork <= ref.SCCWork {
		t.Errorf("eager SCC work %d should exceed reference %d", eager.SCCWork, ref.SCCWork)
	}
	if noGC := byVariant["no transaction GC"]; noGC.PeakBytes < ref.PeakBytes {
		t.Errorf("no-GC peak %d should not undercut reference %d", noGC.PeakBytes, ref.PeakBytes)
	}
	if out := d.RenderAblations(); !strings.Contains(out, "no unary merging") {
		t.Error("render broken")
	}
}

func TestFilterPrecisionQuick(t *testing.T) {
	r := NewRunner(quickOpts("eclipse6"))
	d, err := r.FilterPrecision()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 support levels", len(d.Rows))
	}
	// Methods chosen must be non-increasing in support.
	for i := 1; i < len(d.Rows); i++ {
		if d.Rows[i].MethodsChosen > d.Rows[i-1].MethodsChosen {
			t.Errorf("support %d selects more methods (%d) than support %d (%d)",
				d.Rows[i].MinSupport, d.Rows[i].MethodsChosen,
				d.Rows[i-1].MinSupport, d.Rows[i-1].MethodsChosen)
		}
	}
	if out := d.RenderFilterPrecision(); !strings.Contains(out, "support") {
		t.Error("render broken")
	}
}

func TestCSVExports(t *testing.T) {
	r := NewRunner(quickOpts("tsp", "philo"))
	t2, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	csv2 := t2.CSVTable2()
	if !strings.Contains(csv2, "benchmark,velodrome") || !strings.Contains(csv2, "tsp,") {
		t.Errorf("table2 csv:\n%s", csv2)
	}
	if got := strings.Count(csv2, "\n"); got != 3 { // header + 2 benchmarks
		t.Errorf("table2 csv rows = %d", got)
	}
	f7, err := r.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	csv7 := f7.CSVFigure7()
	if !strings.Contains(csv7, "geomean,Velodrome") {
		t.Errorf("fig7 csv missing geomean rows:\n%s", csv7)
	}
	t3, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	csv3 := t3.CSVTable3()
	for _, want := range []string{"tsp,single", "tsp,second", "tsp,paper_single", "tsp,paper_second"} {
		if !strings.Contains(csv3, want) {
			t.Errorf("table3 csv missing %q", want)
		}
	}
	abl, err := r.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(abl.CSVAblations(), "no unary merging") {
		t.Error("ablations csv missing variant")
	}
}

func TestFigure7OOMBudget(t *testing.T) {
	opts := quickOpts("avrora9")
	opts.MemoryBudget = 16 * 1024 // small enough that single-run's logs trip it
	r := NewRunner(opts)
	d, err := r.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	idx := -1
	for i, c := range d.Configs {
		if c.Label == "Single-run (ICD+PCD)" {
			idx = i
		}
	}
	if idx < 0 || len(d.Rows) != 1 {
		t.Fatal("setup")
	}
	if !d.Rows[0].OOM[idx] {
		t.Error("single-run should trip the tiny budget (long-lived logs)")
	}
	if !strings.Contains(d.RenderFigure7(), "!") {
		t.Error("render should flag OOM rows")
	}
}
