package eval

import (
	"fmt"
	"math"
	"sort"

	"doublechecker/internal/core"
	"doublechecker/internal/cost"
	"doublechecker/internal/spec"
	"doublechecker/internal/txn"
	"doublechecker/internal/vm"
	"doublechecker/internal/workloads"
)

// Options tunes the evaluation. The zero value is filled with defaults by
// NewRunner.
type Options struct {
	// Scale is the workload scale factor (default 0.5).
	Scale float64
	// PerfTrials is the number of schedule seeds per performance point
	// (default 5; the paper uses 25 and takes the median, as we do).
	PerfTrials int
	// StatTrials is the number of trials averaged for Table 3 (default 3;
	// the paper uses 10).
	StatTrials int
	// RefineStable is the consecutive no-new-violation trial count that
	// ends iterative refinement (default 4; the paper uses 10).
	RefineStable int
	// FirstRuns is how many first runs feed the second run of multi-run
	// mode (default 10, as in the paper).
	FirstRuns int
	// Benchmarks restricts the suite (default: all).
	Benchmarks []string
	// MemoryBudget, when positive, models the paper's 32-bit heap limit
	// (§5.1): Figure 7 rows whose live analysis footprint exceeds it are
	// flagged OOM. Zero disables the check.
	MemoryBudget int64
	// CrosscheckBudget is the (workload, scheduler, seed) triple count of
	// the crosscheck experiment's sweep (default 120). The experiment is
	// fully deterministic at a fixed budget.
	CrosscheckBudget int
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.5
	}
	if o.PerfTrials == 0 {
		o.PerfTrials = 5
	}
	if o.StatTrials == 0 {
		o.StatTrials = 3
	}
	if o.RefineStable == 0 {
		o.RefineStable = 4
	}
	if o.FirstRuns == 0 {
		o.FirstRuns = 10
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = workloads.All()
	}
	if o.CrosscheckBudget == 0 {
		o.CrosscheckBudget = 120
	}
	return o
}

// refineKind names the three refinement configurations of §5.2.
type refineKind int

const (
	refineVelo refineKind = iota
	refineSingle
	refineMulti
)

// Runner caches built workloads and refinement results across experiments.
type Runner struct {
	opts    Options
	built   map[string]*workloads.Built
	initial map[string]*spec.Spec
	refined map[string]map[refineKind]*spec.Result
	finals  map[string]*spec.Spec
	filters map[string]*txn.Filter
}

// NewRunner returns a Runner with the given options.
func NewRunner(opts Options) *Runner {
	return &Runner{
		opts:    opts.withDefaults(),
		built:   make(map[string]*workloads.Built),
		initial: make(map[string]*spec.Spec),
		refined: make(map[string]map[refineKind]*spec.Result),
		finals:  make(map[string]*spec.Spec),
		filters: make(map[string]*txn.Filter),
	}
}

// bench returns the cached Built and paper-style initial specification.
func (r *Runner) bench(name string) (*workloads.Built, *spec.Spec, error) {
	if b, ok := r.built[name]; ok {
		return b, r.initial[name], nil
	}
	b, err := workloads.Build(name, r.opts.Scale)
	if err != nil {
		return nil, nil, err
	}
	s := spec.Initial(b.Prog)
	if err := s.ExcludeByName(b.InitialExclusions...); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", name, err)
	}
	r.built[name] = b
	r.initial[name] = s
	return b, s, nil
}

// run executes one configuration of one benchmark.
func (r *Runner) run(name string, analysis core.Analysis, sp *spec.Spec, seed int64, meter *cost.Meter, mut func(*core.Config)) (*core.Result, error) {
	b, _, err := r.bench(name)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Analysis: analysis,
		Sched:    vm.NewSticky(seed, b.Stickiness),
		Atomic:   sp.Atomic,
		Meter:    meter,
	}
	if mut != nil {
		mut(&cfg)
	}
	res, err := core.Run(b.Prog, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s/%v seed %d: %w", name, analysis, seed, err)
	}
	return res, nil
}

// refineFor runs (and caches) iterative refinement under one checker kind.
func (r *Runner) refineFor(name string, kind refineKind) (*spec.Result, error) {
	if m, ok := r.refined[name]; ok {
		if res, ok := m[kind]; ok {
			return res, nil
		}
	} else {
		r.refined[name] = make(map[refineKind]*spec.Result)
	}
	_, initial, err := r.bench(name)
	if err != nil {
		return nil, err
	}
	check := func(sp *spec.Spec, trial int) ([]vm.MethodID, error) {
		var res *core.Result
		var err error
		switch kind {
		case refineVelo:
			res, err = r.run(name, core.Velodrome, sp, int64(trial), nil, nil)
		case refineSingle:
			res, err = r.run(name, core.DCSingle, sp, int64(trial), nil, nil)
		case refineMulti:
			res, err = r.multiRun(name, sp, int64(trial))
		}
		if err != nil {
			return nil, err
		}
		var blamed []vm.MethodID
		for m := range res.BlamedMethods {
			blamed = append(blamed, m)
		}
		sort.Slice(blamed, func(i, j int) bool { return blamed[i] < blamed[j] })
		return blamed, nil
	}
	res, err := spec.Refine(initial, check, spec.Options{StableTrials: r.opts.RefineStable})
	if err != nil {
		return nil, fmt.Errorf("%s refinement: %w", name, err)
	}
	r.refined[name][kind] = res
	return res, nil
}

// multiRun executes the full multi-run pipeline for one logical trial:
// FirstRuns first runs with derived seeds, union, one second run.
func (r *Runner) multiRun(name string, sp *spec.Spec, trial int64) (*core.Result, error) {
	var firsts []*core.Result
	for i := 0; i < r.opts.FirstRuns; i++ {
		res, err := r.run(name, core.DCFirst, sp, trial*1000+int64(i), nil, nil)
		if err != nil {
			return nil, err
		}
		firsts = append(firsts, res)
	}
	filter := core.UnionFilter(firsts)
	return r.run(name, core.DCSecond, sp, trial, nil, func(c *core.Config) { c.Filter = filter })
}

// FinalSpec derives (and caches) the benchmark's final specification: the
// intersection of the Velodrome- and single-run-refined specifications
// (§5.1, "to avoid any bias toward one approach").
func (r *Runner) FinalSpec(name string) (*spec.Spec, error) {
	if s, ok := r.finals[name]; ok {
		return s, nil
	}
	velo, err := r.refineFor(name, refineVelo)
	if err != nil {
		return nil, err
	}
	single, err := r.refineFor(name, refineSingle)
	if err != nil {
		return nil, err
	}
	final := velo.Final.Intersect(single.Final)
	r.finals[name] = final
	return final, nil
}

// secondRunFilter derives (and caches) the static transaction information
// feeding the second run under the final specification.
func (r *Runner) secondRunFilter(name string) (*txn.Filter, error) {
	if f, ok := r.filters[name]; ok {
		return f, nil
	}
	final, err := r.FinalSpec(name)
	if err != nil {
		return nil, err
	}
	var firsts []*core.Result
	for i := 0; i < r.opts.FirstRuns; i++ {
		res, err := r.run(name, core.DCFirst, final, 9000+int64(i), nil, nil)
		if err != nil {
			return nil, err
		}
		firsts = append(firsts, res)
	}
	f := core.UnionFilter(firsts)
	r.filters[name] = f
	return f, nil
}

// ---------------------------------------------------------------------------
// Table 2.

// Table2Row is one benchmark's violation counts.
type Table2Row struct {
	Name       string
	Velo       int
	VeloUnique int
	Single     int
	Multi      int
	MultiUniq  int
	Paper      PaperTable2
}

// Table2Data is experiment E2.
type Table2Data struct {
	Rows []Table2Row
	// DetectOverall is multi-run's share of all single-run violations
	// (paper: 83%); DetectNormalized averages per-benchmark rates over
	// benchmarks with at least one single-run violation (paper: 90%).
	DetectOverall    float64
	DetectNormalized float64
}

// Table2 regenerates Table 2: iterative refinement to completion under
// Velodrome, single-run mode, and multi-run mode; every method blamed along
// the way counts as a violation.
func (r *Runner) Table2() (*Table2Data, error) {
	data := &Table2Data{}
	totalSingle, totalMultiHit := 0, 0
	var rates []float64
	for _, name := range r.opts.Benchmarks {
		velo, err := r.refineFor(name, refineVelo)
		if err != nil {
			return nil, err
		}
		single, err := r.refineFor(name, refineSingle)
		if err != nil {
			return nil, err
		}
		multi, err := r.refineFor(name, refineMulti)
		if err != nil {
			return nil, err
		}
		row := Table2Row{
			Name:   name,
			Velo:   len(velo.Blamed),
			Single: len(single.Blamed),
			Multi:  len(multi.Blamed),
			Paper:  paperTable2[name],
		}
		for m := range velo.Blamed {
			if !single.Blamed[m] {
				row.VeloUnique++
			}
		}
		hits := 0
		for m := range multi.Blamed {
			if !single.Blamed[m] {
				row.MultiUniq++
			} else {
				hits++
			}
		}
		totalSingle += row.Single
		totalMultiHit += hits
		if row.Single > 0 {
			rates = append(rates, float64(hits)/float64(row.Single))
		}
		data.Rows = append(data.Rows, row)
	}
	if totalSingle > 0 {
		data.DetectOverall = float64(totalMultiHit) / float64(totalSingle)
	}
	if len(rates) > 0 {
		sum := 0.0
		for _, x := range rates {
			sum += x
		}
		data.DetectNormalized = sum / float64(len(rates))
	}
	return data, nil
}

// ---------------------------------------------------------------------------
// Figure 7.

// Fig7Config identifies one bar group of Figure 7 (plus the §5.3 extras).
type Fig7Config struct {
	Label    string
	Analysis core.Analysis
	// Filtered marks configurations needing the second-run filter.
	Filtered bool
	// ForceUnary makes the second run instrument all non-transactional
	// accesses regardless of the filter boolean (§5.3's 169% variant).
	ForceUnary bool
}

// Fig7Configs returns the measured configurations in display order.
func Fig7Configs() []Fig7Config {
	return []Fig7Config{
		{Label: "Velodrome", Analysis: core.Velodrome},
		{Label: "Velodrome-unsound", Analysis: core.VelodromeUnsound},
		{Label: "Single-run (ICD+PCD)", Analysis: core.DCSingle},
		{Label: "First run (ICD w/o logging)", Analysis: core.DCFirst},
		{Label: "Second run (ICD+PCD)", Analysis: core.DCSecond, Filtered: true},
		{Label: "Second run (Velodrome)", Analysis: core.VeloSecond, Filtered: true},
		{Label: "Second run (all unary)", Analysis: core.DCSecond, Filtered: true, ForceUnary: true},
	}
}

// Fig7Row is one benchmark's normalized execution times.
type Fig7Row struct {
	Name       string
	Normalized []float64 // indexed like Fig7Configs
	GCFraction []float64
	OOM        []bool // exceeded Options.MemoryBudget (when set)
}

// Fig7Data is experiment E3.
type Fig7Data struct {
	Configs []Fig7Config
	Rows    []Fig7Row
	Geomean []float64
	GeoGC   []float64
}

// paperFig7Geomean returns the paper's geomean for each config label.
func paperFig7Geomean(label string) float64 {
	switch label {
	case "Velodrome":
		return PaperVelodrome
	case "Velodrome-unsound":
		return PaperVelodromeUnsnd
	case "Single-run (ICD+PCD)":
		return PaperSingleRun
	case "First run (ICD w/o logging)":
		return PaperFirstRun
	case "Second run (ICD+PCD)":
		return PaperSecondRun
	case "Second run (Velodrome)":
		return PaperVeloSecondRun
	case "Second run (all unary)":
		return PaperSecondAllUnary
	}
	return 0
}

// Figure7 regenerates Figure 7: normalized execution time (median over
// PerfTrials paired seeds) for every configuration over the compute-bound
// benchmarks, with modelled-GC sub-bars.
func (r *Runner) Figure7() (*Fig7Data, error) {
	configs := Fig7Configs()
	data := &Fig7Data{Configs: configs}
	for _, name := range r.opts.Benchmarks {
		b, _, err := r.bench(name)
		if err != nil {
			return nil, err
		}
		if !b.ComputeBound {
			continue // the paper excludes elevator, hedc and philo
		}
		final, err := r.FinalSpec(name)
		if err != nil {
			return nil, err
		}
		row := Fig7Row{Name: name}
		for _, cfgDesc := range configs {
			var norms, gcs []float64
			oom := false
			for trial := 0; trial < r.opts.PerfTrials; trial++ {
				seed := int64(100 + trial)
				baseMeter := cost.NewMeter(cost.Default())
				if _, err := r.run(name, core.Baseline, final, seed, baseMeter, nil); err != nil {
					return nil, err
				}
				meter := cost.NewMeter(cost.Default())
				if r.opts.MemoryBudget > 0 {
					meter.SetBudget(r.opts.MemoryBudget)
				}
				mut := func(c *core.Config) {}
				if cfgDesc.Filtered {
					filter, err := r.secondRunFilter(name)
					if err != nil {
						return nil, err
					}
					if cfgDesc.ForceUnary {
						f2 := &txn.Filter{Methods: filter.Methods, Unary: true}
						mut = func(c *core.Config) { c.Filter = f2 }
					} else {
						mut = func(c *core.Config) { c.Filter = filter }
					}
				}
				res, err := r.run(name, cfgDesc.Analysis, final, seed, meter, mut)
				if err != nil {
					return nil, err
				}
				norms = append(norms, res.Cost.Normalized(baseMeter.Total()))
				gcs = append(gcs, res.Cost.GCFraction())
				oom = oom || res.Cost.OOM
			}
			row.Normalized = append(row.Normalized, median(norms))
			row.GCFraction = append(row.GCFraction, median(gcs))
			row.OOM = append(row.OOM, oom)
		}
		data.Rows = append(data.Rows, row)
	}
	for i := range configs {
		var ns, gs []float64
		for _, row := range data.Rows {
			ns = append(ns, row.Normalized[i])
			gs = append(gs, row.GCFraction[i])
		}
		data.Geomean = append(data.Geomean, geomean(ns))
		data.GeoGC = append(data.GeoGC, mean(gs))
	}
	return data, nil
}

// ---------------------------------------------------------------------------
// Table 3.

// Table3Row is one benchmark's run-time characteristics, averaged over
// StatTrials, for single-run mode and the second run of multi-run mode.
type Table3Row struct {
	Name        string
	Single      Table3Stats
	Second      Table3Stats
	Paper       PaperTable3
	PaperSecond PaperTable3
}

// Table3Stats mirrors the table's columns.
type Table3Stats struct {
	RegularTx       float64
	RegularAccesses float64
	NonTransAcc     float64
	IDGEdges        float64
	SCCs            float64
}

// Table3Data is experiment E4.
type Table3Data struct {
	Rows []Table3Row
}

// Table3 regenerates Table 3 under the final specifications.
func (r *Runner) Table3() (*Table3Data, error) {
	data := &Table3Data{}
	for _, name := range r.opts.Benchmarks {
		final, err := r.FinalSpec(name)
		if err != nil {
			return nil, err
		}
		filter, err := r.secondRunFilter(name)
		if err != nil {
			return nil, err
		}
		row := Table3Row{Name: name, Paper: paperTable3[name], PaperSecond: paperTable3Second[name]}
		for trial := 0; trial < r.opts.StatTrials; trial++ {
			seed := int64(500 + trial)
			single, err := r.run(name, core.DCSingle, final, seed, nil, nil)
			if err != nil {
				return nil, err
			}
			accumulate(&row.Single, single)
			second, err := r.run(name, core.DCSecond, final, seed, nil,
				func(c *core.Config) { c.Filter = filter })
			if err != nil {
				return nil, err
			}
			accumulate(&row.Second, second)
		}
		divide(&row.Single, float64(r.opts.StatTrials))
		divide(&row.Second, float64(r.opts.StatTrials))
		data.Rows = append(data.Rows, row)
	}
	return data, nil
}

func accumulate(s *Table3Stats, res *core.Result) {
	s.RegularTx += float64(res.ICD.RegularTx)
	s.RegularAccesses += float64(res.ICD.RegularAccesses)
	s.NonTransAcc += float64(res.ICD.UnaryAccesses)
	s.IDGEdges += float64(res.ICD.IDGEdges)
	s.SCCs += float64(res.ICD.SCCs)
}

func divide(s *Table3Stats, n float64) {
	s.RegularTx /= n
	s.RegularAccesses /= n
	s.NonTransAcc /= n
	s.IDGEdges /= n
	s.SCCs /= n
}

// ---------------------------------------------------------------------------
// §5.4 experiments.

// RefineStagesData is experiment E6: single-run overhead at three
// specification refinement stages.
type RefineStagesData struct {
	Initial, Halfway, Final float64 // geomean normalized times
}

// RefinementStages measures single-run mode at the strictest, halfway, and
// final specifications (§5.4).
func (r *Runner) RefinementStages() (*RefineStagesData, error) {
	var inits, halves, finals []float64
	for _, name := range r.opts.Benchmarks {
		b, initial, err := r.bench(name)
		if err != nil {
			return nil, err
		}
		if !b.ComputeBound {
			continue
		}
		res, err := r.refineFor(name, refineSingle)
		if err != nil {
			return nil, err
		}
		half := res.HalfwaySpec(initial)
		final, err := r.FinalSpec(name)
		if err != nil {
			return nil, err
		}
		for stage, sp := range map[*[]float64]*spec.Spec{&inits: initial, &halves: half, &finals: final} {
			n, err := r.normalizedSingle(name, sp)
			if err != nil {
				return nil, err
			}
			*stage = append(*stage, n)
		}
	}
	return &RefineStagesData{
		Initial: geomean(inits), Halfway: geomean(halves), Final: geomean(finals),
	}, nil
}

func (r *Runner) normalizedSingle(name string, sp *spec.Spec) (float64, error) {
	var ns []float64
	for trial := 0; trial < r.opts.PerfTrials; trial++ {
		seed := int64(300 + trial)
		base := cost.NewMeter(cost.Default())
		if _, err := r.run(name, core.Baseline, sp, seed, base, nil); err != nil {
			return 0, err
		}
		meter := cost.NewMeter(cost.Default())
		res, err := r.run(name, core.DCSingle, sp, seed, meter, nil)
		if err != nil {
			return 0, err
		}
		ns = append(ns, res.Cost.Normalized(base.Total()))
	}
	return median(ns), nil
}

// ArraysData is experiment E7: overhead with and without array element
// instrumentation (conflated metadata, cycle detection off, xalan6/9
// excluded — exactly the paper's setup).
type ArraysData struct {
	SingleBase, SingleWith float64
	VeloBase, VeloWith     float64
}

// Arrays runs the §5.4 array-instrumentation experiment.
func (r *Runner) Arrays() (*ArraysData, error) {
	excluded := map[string]bool{"xalan6": true, "xalan9": true}
	var sb, sw, vb, vw []float64
	for _, name := range r.opts.Benchmarks {
		b, _, err := r.bench(name)
		if err != nil {
			return nil, err
		}
		if !b.ComputeBound || excluded[name] {
			continue
		}
		final, err := r.FinalSpec(name)
		if err != nil {
			return nil, err
		}
		measure := func(analysis core.Analysis, arrays bool) (float64, error) {
			var ns []float64
			for trial := 0; trial < r.opts.PerfTrials; trial++ {
				seed := int64(400 + trial)
				base := cost.NewMeter(cost.Default())
				if _, err := r.run(name, core.Baseline, final, seed, base, nil); err != nil {
					return 0, err
				}
				meter := cost.NewMeter(cost.Default())
				_, err := r.run(name, analysis, final, seed, meter, func(c *core.Config) {
					c.InstrumentArrays = arrays
					c.DisableCycleDetection = true
				})
				if err != nil {
					return 0, err
				}
				ns = append(ns, meter.Report().Normalized(base.Total()))
			}
			return median(ns), nil
		}
		for _, m := range []struct {
			dst      *[]float64
			analysis core.Analysis
			arrays   bool
		}{
			{&sb, core.DCSingle, false},
			{&sw, core.DCSingle, true},
			{&vb, core.Velodrome, false},
			{&vw, core.Velodrome, true},
		} {
			n, err := measure(m.analysis, m.arrays)
			if err != nil {
				return nil, err
			}
			*m.dst = append(*m.dst, n)
		}
	}
	return &ArraysData{
		SingleBase: geomean(sb), SingleWith: geomean(sw),
		VeloBase: geomean(vb), VeloWith: geomean(vw),
	}, nil
}

// PCDOnlyData is experiment E8: the straw man where PCD processes every
// transaction. PCDOnlyShort is the same measurement at a quarter of the
// run length: the gap between the two shows the straw man's overhead
// growing with run length (retained logs make GC work superlinear), which
// is what drives the paper's 16.6x and its out-of-memory failures on the
// four biggest benchmarks.
type PCDOnlyData struct {
	SingleBase, PCDOnly, PCDOnlyShort float64
}

// pcdOnlyScaleBoost inflates the workloads for the PCD-only experiment.
// The straw man's dominant cost — it collects nothing, so GC work grows
// with the retained-log footprint — is superlinear in run length; at the
// harness's ordinary heavily-scaled-down sizes it barely registers, exactly
// as a short JVM run would not show it either. Running this one experiment
// at a larger scale exposes the growth the paper reports. The final
// specifications derived at the ordinary scale transfer directly: the
// generators scale only dynamic counts, never the method set.
const pcdOnlyScaleBoost = 16

// PCDOnly runs the §5.4 PCD-only experiment (excluding the four benchmarks
// the paper excludes because the straw man exhausts memory on them).
func (r *Runner) PCDOnly() (*PCDOnlyData, error) {
	excluded := map[string]bool{"eclipse6": true, "xalan6": true, "avrora9": true, "xalan9": true}
	var base, straw, short []float64
	for _, name := range r.opts.Benchmarks {
		b, _, err := r.bench(name)
		if err != nil {
			return nil, err
		}
		if !b.ComputeBound || excluded[name] {
			continue
		}
		final, err := r.FinalSpec(name)
		if err != nil {
			return nil, err
		}
		// Rebuild at the inflated scale; the spec transfers by method
		// identity.
		big, err := workloads.Build(name, r.opts.Scale*pcdOnlyScaleBoost)
		if err != nil {
			return nil, err
		}
		small, err := workloads.Build(name, r.opts.Scale*pcdOnlyScaleBoost/4)
		if err != nil {
			return nil, err
		}
		measureOn := func(w *workloads.Built, analysis core.Analysis) (float64, error) {
			var ns []float64
			for trial := 0; trial < r.opts.PerfTrials; trial++ {
				seed := int64(300 + trial)
				bm := cost.NewMeter(cost.Default())
				if _, err := core.Run(w.Prog, core.Config{
					Analysis: core.Baseline, Sched: vm.NewSticky(seed, w.Stickiness),
					Atomic: final.Atomic, Meter: bm,
				}); err != nil {
					return 0, err
				}
				meter := cost.NewMeter(cost.Default())
				if _, err := core.Run(w.Prog, core.Config{
					Analysis: analysis, Sched: vm.NewSticky(seed, w.Stickiness),
					Atomic: final.Atomic, Meter: meter,
				}); err != nil {
					return 0, err
				}
				ns = append(ns, meter.Report().Normalized(bm.Total()))
			}
			return median(ns), nil
		}
		nb, err := measureOn(big, core.DCSingle)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		base = append(base, nb)
		ns, err := measureOn(big, core.PCDOnly)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		straw = append(straw, ns)
		nshort, err := measureOn(small, core.PCDOnly)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		short = append(short, nshort)
	}
	return &PCDOnlyData{
		SingleBase: geomean(base), PCDOnly: geomean(straw), PCDOnlyShort: geomean(short),
	}, nil
}

// ---------------------------------------------------------------------------
// small statistics helpers

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-9
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	n := len(ys)
	if n%2 == 1 {
		return ys[n/2]
	}
	return (ys[n/2-1] + ys[n/2]) / 2
}
