package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"doublechecker/internal/crosscheck"
	"doublechecker/internal/workloads"
)

// crosscheckEnumStepLimit bounds one enumerated run; the tiny corpus
// finishes far below it, so the walk is exhaustive.
const crosscheckEnumStepLimit = 64

// crosscheckEnumMaxRuns is the schedule-tree safety net for enumeration.
const crosscheckEnumMaxRuns = 4096

// CrosscheckData is the dump written by `dcbench -experiment crosscheck`
// (BENCH_crosscheck.json). Every field is a count or a verdict derived from
// seeded executions — no wall clocks — so the whole file is byte-reproducible
// across runs and machines at a fixed budget and seed base.
type CrosscheckData struct {
	// Budget is the sweep's (workload, scheduler, seed) triple count.
	Budget int `json:"budget"`
	// SeedBase is the sweep's first seed.
	SeedBase int64 `json:"seed_base"`
	// Enumerations is the tiny corpus walked exhaustively: every
	// interleaving of every program, each checked against all four oracles.
	Enumerations []crosscheck.EnumReport `json:"enumerations"`
	// Sweep is the budgeted random/sticky/PCT exploration over the default
	// source mix.
	Sweep *crosscheck.Report `json:"sweep"`
}

// Crosscheck runs the schedule-exploration cross-checking experiment: the
// paper's soundness (§3: ICD over-approximates PCD) and precision (§5:
// DoubleChecker ≡ Velodrome at blamed-method granularity) theorems plus the
// PCD pool's determinism contract and the scan/incremental ICD engine
// agreement contract, checked on every explored execution.
func (r *Runner) Crosscheck() (*CrosscheckData, error) {
	ctx := context.Background()
	data := &CrosscheckData{Budget: r.opts.CrosscheckBudget, SeedBase: 1}
	for _, tp := range workloads.Tiny() {
		rep, err := crosscheck.Enumerate(ctx,
			crosscheck.Source{Name: tp.Name, Prog: tp.Prog, Atomic: tp.Atomic},
			crosscheckEnumStepLimit, crosscheckEnumMaxRuns, []int{0, 2})
		if err != nil {
			return nil, fmt.Errorf("enumerate %s: %w", tp.Name, err)
		}
		data.Enumerations = append(data.Enumerations, *rep)
	}
	sweep, err := crosscheck.Explore(ctx, crosscheck.Options{
		Budget:   data.Budget,
		SeedBase: data.SeedBase,
	})
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	data.Sweep = sweep
	return data, nil
}

// OK reports that every oracle held on every enumerated interleaving and
// every swept triple.
func (d *CrosscheckData) OK() bool {
	for _, e := range d.Enumerations {
		if e.Agreed != e.Interleavings || e.Deterministic != e.Interleavings ||
			e.EngineAgreed != e.Interleavings {
			return false
		}
	}
	return d.Sweep != nil && len(d.Sweep.Failures) == 0 &&
		d.Sweep.Agreed == d.Sweep.Triples && d.Sweep.Deterministic == d.Sweep.Triples &&
		d.Sweep.EngineAgreed == d.Sweep.Triples
}

// JSON renders the dump as indented JSON; byte-reproducible at a fixed
// budget and seed base.
func (d *CrosscheckData) JSON() []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		panic("eval: crosscheck encode: " + err.Error())
	}
	return buf.Bytes()
}

// RenderCrosscheck prints the human-readable table.
func (d *CrosscheckData) RenderCrosscheck() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-checking (budget %d, seed base %d)\n", d.Budget, d.SeedBase)
	fmt.Fprintf(&b, "%-14s %14s %10s %8s %8s %8s %10s\n",
		"program", "interleavings", "truncated", "agree", "det", "engines", "violating")
	for _, e := range d.Enumerations {
		fmt.Fprintf(&b, "%-14s %14d %10v %8d %8d %8d %10d\n",
			e.Source, e.Interleavings, e.Truncated, e.Agreed, e.Deterministic, e.EngineAgreed, e.WithViolations)
	}
	if d.Sweep != nil {
		fmt.Fprintf(&b, "%s\n", d.Sweep.Summary())
		for _, f := range d.Sweep.Failures {
			fmt.Fprintf(&b, "  FAILURE %s: agree=%v det=%v engines=%v %s%s\n",
				f.Triple, f.Agree, f.Deterministic, f.EngineAgree, f.DetDiag, f.EngineDiag)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}
