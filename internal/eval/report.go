package eval

import (
	"fmt"
	"strings"
)

// RenderTable2 renders experiment E2 with paper columns.
func (d *Table2Data) RenderTable2() string {
	var b strings.Builder
	b.WriteString("Table 2: static atomicity violations during iterative refinement\n")
	b.WriteString("(measured | paper)   Unique = not reported by single-run mode\n\n")
	fmt.Fprintf(&b, "%-12s %18s %14s %18s || %14s %8s %16s\n",
		"benchmark", "velodrome (uniq)", "single-run", "multi-run (uniq)",
		"paper: velo", "single", "multi (uniq)")
	line := strings.Repeat("-", 110)
	b.WriteString(line + "\n")
	var tv, ts, tm int
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "%-12s %11d (%2d) %14d %13d (%2d) || %9d (%2d) %8d %11d (%2d)\n",
			r.Name, r.Velo, r.VeloUnique, r.Single, r.Multi, r.MultiUniq,
			r.Paper.Velo, r.Paper.VeloUnique, r.Paper.Single, r.Paper.Multi, r.Paper.MultiUniq)
		tv += r.Velo
		ts += r.Single
		tm += r.Multi
	}
	b.WriteString(line + "\n")
	fmt.Fprintf(&b, "%-12s %16d %14d %18d || %14d %8d %16d\n",
		"Total", tv, ts, tm, 467, 545, 453)
	fmt.Fprintf(&b, "\nmulti-run soundness: detects %.0f%% of single-run violations overall (paper %.0f%%),\n",
		100*d.DetectOverall, 100*PaperMultiDetectOverall)
	fmt.Fprintf(&b, "%.0f%% per-benchmark normalized (paper %.0f%%)\n",
		100*d.DetectNormalized, 100*PaperMultiDetectNormalized)
	return b.String()
}

// RenderFigure7 renders experiment E3 as a table (one row per benchmark,
// one column per configuration) plus geomeans with paper values.
func (d *Fig7Data) RenderFigure7() string {
	var b strings.Builder
	b.WriteString("Figure 7: normalized execution time (median of trials; GC fraction in parens)\n\n")
	fmt.Fprintf(&b, "%-12s", "benchmark")
	short := []string{"velo", "velo-uns", "single", "first", "second", "2nd-velo", "2nd-unary"}
	for _, s := range short {
		fmt.Fprintf(&b, " %12s", s)
	}
	b.WriteString("\n" + strings.Repeat("-", 12+13*len(short)) + "\n")
	anyOOM := false
	for _, row := range d.Rows {
		fmt.Fprintf(&b, "%-12s", row.Name)
		for i := range d.Configs {
			mark := " "
			if len(row.OOM) > i && row.OOM[i] {
				mark = "!"
				anyOOM = true
			}
			fmt.Fprintf(&b, " %5.2fx(%2.0f%%)%s", row.Normalized[i], 100*row.GCFraction[i], mark)
		}
		b.WriteString("\n")
	}
	b.WriteString(strings.Repeat("-", 12+13*len(short)) + "\n")
	fmt.Fprintf(&b, "%-12s", "geomean")
	for i := range d.Configs {
		fmt.Fprintf(&b, " %6.2fx(%2.0f%%)", d.Geomean[i], 100*d.GeoGC[i])
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-12s", "paper")
	for i := range d.Configs {
		fmt.Fprintf(&b, " %12s", fmt.Sprintf("%.1fx", paperFig7Geomean(d.Configs[i].Label)))
	}
	b.WriteString("\n")
	if anyOOM {
		b.WriteString("! = live analysis footprint exceeded the modelled heap budget (paper §5.1's 32-bit OOMs)\n")
	}
	return b.String()
}

// RenderTable3 renders experiment E4.
func (d *Table3Data) RenderTable3() string {
	var b strings.Builder
	b.WriteString("Table 3: run-time characteristics (mean of trials)\n")
	b.WriteString("single-run mode / second run of multi-run mode; paper single-run values for shape comparison\n\n")
	fmt.Fprintf(&b, "%-12s %10s %12s %12s %10s %8s   %s\n",
		"benchmark", "reg tx", "reg acc", "nontrans", "IDG edges", "SCCs", "(paper single-run)")
	line := strings.Repeat("-", 118)
	b.WriteString(line + "\n")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "%-12s %10.0f %12.0f %12.0f %10.0f %8.0f   (%s)\n",
			r.Name, r.Single.RegularTx, r.Single.RegularAccesses, r.Single.NonTransAcc,
			r.Single.IDGEdges, r.Single.SCCs, paperShape(r.Paper))
		fmt.Fprintf(&b, "%-12s %10.0f %12.0f %12.0f %10.0f %8.0f   (second run; paper: %s)\n",
			"", r.Second.RegularTx, r.Second.RegularAccesses, r.Second.NonTransAcc,
			r.Second.IDGEdges, r.Second.SCCs, paperShape(r.PaperSecond))
	}
	return b.String()
}

func paperShape(p PaperTable3) string {
	return fmt.Sprintf("%s tx, %s acc, %s non-tx, %s edges, %s SCCs",
		human(p.RegularTx), human(p.RegularAccesses), human(p.NonTransAcc),
		human(p.IDGEdges), human(p.SCCs))
}

func human(x float64) string {
	switch {
	case x >= 1e6:
		return fmt.Sprintf("%.3gM", x/1e6)
	case x >= 1e3:
		return fmt.Sprintf("%.3gK", x/1e3)
	default:
		return fmt.Sprintf("%.0f", x)
	}
}

// RenderRefineStages renders experiment E6.
func (d *RefineStagesData) RenderRefineStages() string {
	return fmt.Sprintf(`Section 5.4: single-run overhead across refinement stages (geomean)
  strictest spec : %.2fx   (paper %.1fx)
  halfway        : %.2fx   (paper %.1fx)
  final          : %.2fx   (paper %.1fx)
`, d.Initial, PaperRefineInitial, d.Halfway, PaperRefineHalfway, d.Final, PaperRefineFinal)
}

// RenderArrays renders experiment E7.
func (d *ArraysData) RenderArrays() string {
	return fmt.Sprintf(`Section 5.4: array instrumentation (cycle detection off, xalan6/9 excluded)
  single-run, no arrays  : %.2fx   (paper %.1fx)
  single-run, with arrays: %.2fx   (paper %.1fx)
  velodrome, no arrays   : %.2fx   (paper %.1fx)
  velodrome, with arrays : %.2fx   (paper %.1fx)
`, d.SingleBase, PaperArraysSingleBase, d.SingleWith, PaperArraysSingleWith,
		d.VeloBase, PaperArraysVeloBase, d.VeloWith, PaperArraysVeloWith)
}

// RenderPCDOnly renders experiment E8.
func (d *PCDOnlyData) RenderPCDOnly() string {
	return fmt.Sprintf(`Section 5.4: PCD-only straw man (eclipse6, xalan6, avrora9, xalan9 excluded)
  single-run (ICD filter)     : %.2fx   (paper %.1fx)
  PCD-only                    : %.2fx   (paper %.1fx)
  PCD-only at 1/4 run length  : %.2fx   (overhead grows with run length;
    the paper's full-length runs reach 16.6x and exhaust memory on the
    four excluded benchmarks)
`, d.SingleBase, PaperPCDOnlyBase, d.PCDOnly, PaperPCDOnly, d.PCDOnlyShort)
}
