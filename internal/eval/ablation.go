package eval

import (
	"fmt"
	"strings"

	"doublechecker/internal/core"
	"doublechecker/internal/cost"
)

// AblationRow is one design-choice ablation of DoubleChecker's single-run
// mode on one benchmark: normalized execution time plus the counters the
// choice is supposed to move.
type AblationRow struct {
	Benchmark  string
	Variant    string
	Normalized float64
	LogEntries uint64
	LogElided  uint64
	Txns       uint64 // regular + unary transactions created
	SCCWork    uint64 // nodes explored by cycle detection (incl. eager)
	PeakBytes  int64
}

// AblationData is the design-choice ablation study. It covers the paper's
// explicitly-argued choices — log duplicate elision (§4), unary-transaction
// merging (§4), deferred rather than per-edge cycle detection (§3.2.3),
// transaction graph collection (§4), conditional unary instrumentation in
// the second run (§5.3) — plus the §5.3 future-work idea of taking PCD off
// the critical path.
type AblationData struct {
	Rows []AblationRow
}

// ablationVariants defines the measured configurations; the first is the
// reference.
var ablationVariants = []struct {
	name string
	mut  func(*core.Config)
}{
	{"single-run (reference)", func(c *core.Config) {}},
	{"no log elision", func(c *core.Config) { c.NoElision = true }},
	{"no unary merging", func(c *core.Config) { c.NoUnaryMerge = true }},
	{"eager cycle detection", func(c *core.Config) { c.EagerDetect = true }},
	{"no transaction GC", func(c *core.Config) { c.GCPeriod = 1 << 62 }},
	{"parallel PCD (off critical path)", func(c *core.Config) { c.ParallelPCD = true }},
}

// Ablations measures every variant over the given benchmarks (callers
// typically pick one lock-heavy benchmark such as xalan6, where PCD and the
// transaction graph matter, and one log-heavy one).
func (r *Runner) Ablations() (*AblationData, error) {
	data := &AblationData{}
	for _, name := range r.opts.Benchmarks {
		b, _, err := r.bench(name)
		if err != nil {
			return nil, err
		}
		if !b.ComputeBound {
			continue
		}
		final, err := r.FinalSpec(name)
		if err != nil {
			return nil, err
		}
		for _, variant := range ablationVariants {
			var norms []float64
			row := AblationRow{Benchmark: name, Variant: variant.name}
			for trial := 0; trial < r.opts.PerfTrials; trial++ {
				seed := int64(700 + trial)
				base := cost.NewMeter(cost.Default())
				if _, err := r.run(name, core.Baseline, final, seed, base, nil); err != nil {
					return nil, err
				}
				meter := cost.NewMeter(cost.Default())
				res, err := r.run(name, core.DCSingle, final, seed, meter, func(c *core.Config) {
					// A tighter-than-default collection period so the GC
					// ablation has observable work at harness scales.
					c.GCPeriod = 2048
					variant.mut(c)
				})
				if err != nil {
					return nil, err
				}
				norms = append(norms, res.Cost.Normalized(base.Total()))
				row.LogEntries = res.Txn.LogEntries
				row.LogElided = res.Txn.LogElided
				row.Txns = res.Txn.RegularTxns + res.Txn.UnaryTxns
				row.SCCWork = res.ICD.SCCNodesExplored + res.ICD.EagerNodesExplored
				row.PeakBytes = res.Cost.PeakBytes
			}
			row.Normalized = median(norms)
			data.Rows = append(data.Rows, row)
		}
	}
	return data, nil
}

// RenderAblations renders the ablation study.
func (d *AblationData) RenderAblations() string {
	var b strings.Builder
	b.WriteString("Design-choice ablations of single-run mode\n")
	b.WriteString("(each optimization the paper argues for, turned off one at a time)\n\n")
	fmt.Fprintf(&b, "%-12s %-34s %9s %10s %8s %10s %10s %10s\n",
		"benchmark", "variant", "norm time", "log entr.", "elided", "txns", "SCC work", "peak KB")
	b.WriteString(strings.Repeat("-", 110) + "\n")
	prev := ""
	for _, r := range d.Rows {
		name := r.Benchmark
		if name == prev {
			name = ""
		}
		prev = r.Benchmark
		fmt.Fprintf(&b, "%-12s %-34s %8.2fx %10d %8d %10d %10d %10d\n",
			name, r.Variant, r.Normalized, r.LogEntries, r.LogElided,
			r.Txns, r.SCCWork, r.PeakBytes/1024)
	}
	b.WriteString(`
Readings: disabling elision grows the logs; disabling unary merging
multiplies transaction counts; eager (per-edge) cycle detection does the
graph work the paper's deferred strategy avoids; disabling the transaction
GC inflates the peak footprint; moving PCD off the critical path is the
paper's suggested fix for the xalan6 pathology.
`)
	return b.String()
}
