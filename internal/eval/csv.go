package eval

import (
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"
)

// CSV exporters: machine-readable versions of each experiment, one row per
// data point, suitable for plotting Figure 7-style charts from the
// regenerated data. All use encoding/csv so quoting is handled uniformly.

// CSVTable2 renders experiment E2 as CSV.
func (d *Table2Data) CSVTable2() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write([]string{
		"benchmark", "velodrome", "velodrome_unique", "single_run",
		"multi_run", "multi_run_unique",
		"paper_velodrome", "paper_single", "paper_multi",
	})
	for _, r := range d.Rows {
		_ = w.Write([]string{
			r.Name,
			strconv.Itoa(r.Velo), strconv.Itoa(r.VeloUnique), strconv.Itoa(r.Single),
			strconv.Itoa(r.Multi), strconv.Itoa(r.MultiUniq),
			strconv.Itoa(r.Paper.Velo), strconv.Itoa(r.Paper.Single), strconv.Itoa(r.Paper.Multi),
		})
	}
	w.Flush()
	return b.String()
}

// CSVFigure7 renders experiment E3 as CSV in long form: one row per
// (benchmark, configuration).
func (d *Fig7Data) CSVFigure7() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write([]string{"benchmark", "configuration", "normalized_time", "gc_fraction", "paper_geomean"})
	for _, row := range d.Rows {
		for i, cfg := range d.Configs {
			_ = w.Write([]string{
				row.Name, cfg.Label,
				fmt.Sprintf("%.4f", row.Normalized[i]),
				fmt.Sprintf("%.4f", row.GCFraction[i]),
				fmt.Sprintf("%.2f", paperFig7Geomean(cfg.Label)),
			})
		}
	}
	for i, cfg := range d.Configs {
		_ = w.Write([]string{
			"geomean", cfg.Label,
			fmt.Sprintf("%.4f", d.Geomean[i]),
			fmt.Sprintf("%.4f", d.GeoGC[i]),
			fmt.Sprintf("%.2f", paperFig7Geomean(cfg.Label)),
		})
	}
	w.Flush()
	return b.String()
}

// CSVTable3 renders experiment E4 as CSV: one row per (benchmark, run).
func (d *Table3Data) CSVTable3() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write([]string{
		"benchmark", "run", "regular_tx", "regular_accesses",
		"nontrans_accesses", "idg_edges", "sccs",
	})
	emit := func(name, run string, s Table3Stats) {
		_ = w.Write([]string{
			name, run,
			fmt.Sprintf("%.0f", s.RegularTx), fmt.Sprintf("%.0f", s.RegularAccesses),
			fmt.Sprintf("%.0f", s.NonTransAcc), fmt.Sprintf("%.0f", s.IDGEdges),
			fmt.Sprintf("%.0f", s.SCCs),
		})
	}
	fromPaper := func(p PaperTable3) Table3Stats {
		return Table3Stats{
			RegularTx: p.RegularTx, RegularAccesses: p.RegularAccesses,
			NonTransAcc: p.NonTransAcc, IDGEdges: p.IDGEdges, SCCs: p.SCCs,
		}
	}
	for _, r := range d.Rows {
		emit(r.Name, "single", r.Single)
		emit(r.Name, "second", r.Second)
		emit(r.Name, "paper_single", fromPaper(r.Paper))
		emit(r.Name, "paper_second", fromPaper(r.PaperSecond))
	}
	w.Flush()
	return b.String()
}

// CSVAblations renders experiment E11 as CSV.
func (d *AblationData) CSVAblations() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write([]string{
		"benchmark", "variant", "normalized_time", "log_entries",
		"log_elided", "transactions", "scc_work", "peak_bytes",
	})
	for _, r := range d.Rows {
		_ = w.Write([]string{
			r.Benchmark, r.Variant,
			fmt.Sprintf("%.4f", r.Normalized),
			strconv.FormatUint(r.LogEntries, 10),
			strconv.FormatUint(r.LogElided, 10),
			strconv.FormatUint(r.Txns, 10),
			strconv.FormatUint(r.SCCWork, 10),
			strconv.FormatInt(r.PeakBytes, 10),
		})
	}
	w.Flush()
	return b.String()
}
