package eval

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"doublechecker/internal/core"
	"doublechecker/internal/telemetry"
)

// TelemetryBenchmark is one benchmark's pipeline telemetry under single-run
// mode: the full deterministic snapshot, ready for machine consumption.
type TelemetryBenchmark struct {
	Name     string              `json:"benchmark"`
	Analysis string              `json:"analysis"`
	Seed     int64               `json:"seed"`
	Snapshot *telemetry.Snapshot `json:"telemetry"`
}

// TelemetryData is the machine-readable telemetry dump written by
// `dcbench -experiment telemetry` (BENCH_telemetry.json). Everything in it
// is deterministic for a given scale and benchmark set: snapshots are
// Deterministic() (span wall times stripped), and JSON marshals maps with
// sorted keys, so regenerating the file yields byte-identical output.
type TelemetryData struct {
	Scale      float64              `json:"scale"`
	Seed       int64                `json:"seed"`
	Benchmarks []TelemetryBenchmark `json:"benchmarks"`
}

// telemetrySeed is the fixed schedule seed for the telemetry experiment; one
// seed, so the dump stays cheap and reproducible.
const telemetrySeed = 1

// Telemetry runs every benchmark once under single-run mode (paper-style
// initial specification) and collects each run's telemetry snapshot: the
// Octet transition mix, IDG composition, SCC size distribution, PCD replay
// fraction, and phase cost spans that back the paper's quantitative claims.
func (r *Runner) Telemetry() (*TelemetryData, error) {
	data := &TelemetryData{Scale: r.opts.Scale, Seed: telemetrySeed}
	for _, name := range r.opts.Benchmarks {
		_, initial, err := r.bench(name)
		if err != nil {
			return nil, err
		}
		res, err := r.run(name, core.DCSingle, initial, telemetrySeed, nil, nil)
		if err != nil {
			return nil, err
		}
		data.Benchmarks = append(data.Benchmarks, TelemetryBenchmark{
			Name:     name,
			Analysis: "dc-single",
			Seed:     telemetrySeed,
			Snapshot: res.Telemetry.Deterministic(),
		})
	}
	return data, nil
}

// JSON renders the dump as stable, indented JSON with a trailing newline.
func (d *TelemetryData) JSON() []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		panic("eval: telemetry encode: " + err.Error())
	}
	return buf.Bytes()
}

// RenderTelemetry prints a one-line-per-benchmark summary of the headline
// pipeline quantities; the full detail lives in the JSON dump.
func (d *TelemetryData) RenderTelemetry() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Telemetry (dc-single, scale %.2g, seed %d)\n", d.Scale, d.Seed)
	fmt.Fprintf(&b, "%-12s %12s %10s %8s %8s %10s\n",
		"benchmark", "octet-trans", "idg-edges", "sccs", "pcd-tx", "pcd-frac")
	for _, bm := range d.Benchmarks {
		s := bm.Snapshot
		octet := s.Counter(telemetry.OctetFastPath) + s.Counter(telemetry.OctetInitial) +
			s.Counter(telemetry.OctetUpgrading) + s.Counter(telemetry.OctetFence) +
			s.Counter(telemetry.OctetConflicting)
		edges := uint64(0)
		for name, v := range s.Counters {
			if strings.HasPrefix(name, "icd.idg.edges.") {
				edges += v
			}
		}
		fmt.Fprintf(&b, "%-12s %12d %10d %8d %8d %10.3f\n",
			bm.Name, octet, edges,
			s.Counter(telemetry.ICDSCCs), s.Counter(telemetry.PCDTxnsSent),
			s.Gauge(telemetry.PCDTxFraction))
	}
	return strings.TrimRight(b.String(), "\n")
}
