// Package eval implements the evaluation harness: it regenerates every
// table and figure of the paper's §5 against the synthetic benchmark suite
// and prints measured values side by side with the paper's published
// numbers. Absolute values differ by construction (the substrate is a
// cost-modelled simulator and the workloads are scaled down ~10^3); the
// claims under test are the paper's *shapes* — who wins, by roughly what
// factor, and where the pathologies sit. EXPERIMENTS.md records the
// comparison.
package eval

// PaperTable2 holds the paper's Table 2: static atomicity violations
// reported during iterative refinement. Unique counts violations not
// reported by single-run mode.
type PaperTable2 struct {
	Velo       int
	VeloUnique int
	Single     int
	Multi      int
	MultiUniq  int
}

// paperTable2 is indexed by benchmark name.
var paperTable2 = map[string]PaperTable2{
	"eclipse6":   {230, 8, 244, 190, 8},
	"hsqldb6":    {10, 0, 57, 57, 0},
	"lusearch6":  {1, 0, 1, 1, 0},
	"xalan6":     {57, 0, 69, 54, 0},
	"avrora9":    {23, 0, 25, 18, 0},
	"jython9":    {0, 0, 0, 0, 0},
	"luindex9":   {0, 0, 0, 0, 0},
	"lusearch9":  {41, 1, 40, 38, 0},
	"pmd9":       {0, 0, 0, 0, 0},
	"sunflow9":   {13, 1, 13, 13, 0},
	"xalan9":     {78, 0, 82, 69, 0},
	"elevator":   {2, 0, 2, 2, 0},
	"hedc":       {3, 1, 3, 2, 0},
	"philo":      {0, 0, 0, 0, 0},
	"sor":        {0, 0, 0, 0, 0},
	"tsp":        {7, 0, 7, 7, 0},
	"moldyn":     {0, 0, 0, 0, 0},
	"montecarlo": {2, 0, 2, 2, 0},
	"raytracer":  {0, 0, 0, 0, 0},
}

// PaperTable3 holds the paper's Table 3 run-time characteristics for
// single-run mode (the second-run columns are also published; we embed the
// single-run side, which is what shapes our workloads).
type PaperTable3 struct {
	RegularTx       float64
	RegularAccesses float64
	NonTransAcc     float64
	IDGEdges        float64
	SCCs            float64
}

// paperTable3Second is the paper's Table 3 second-run side.
var paperTable3Second = map[string]PaperTable3{
	"eclipse6":   {617_000, 46_400_000, 7_100_000, 38_900, 80},
	"hsqldb6":    {86_400, 10_100_000, 148_000, 26_200, 75},
	"lusearch6":  {0, 0, 0, 0, 0},
	"xalan6":     {1_170_000, 70_900_000, 16_900_000, 211_000, 15_700},
	"avrora9":    {9_260_000, 122_000_000, 363_000_000, 2_340_000, 932},
	"jython9":    {0, 0, 0, 0, 0},
	"luindex9":   {0, 0, 0, 0, 0},
	"lusearch9":  {64_900, 13_500_000, 0, 142, 8},
	"pmd9":       {0, 0, 0, 0, 0},
	"sunflow9":   {10_600, 176_000_000, 129_000, 1_020, 24},
	"xalan9":     {1_480_000, 66_500_000, 15_100_000, 67_000, 457},
	"elevator":   {3_180, 16_100, 5_590, 427, 23},
	"hedc":       {25, 37_200, 114, 85, 3},
	"philo":      {0, 0, 0, 0, 0},
	"sor":        {0, 0, 0, 0, 0},
	"tsp":        {1_340, 6_650, 691_000_000, 11_500, 0},
	"moldyn":     {0, 0, 0, 0, 0},
	"montecarlo": {89_700, 145_000_000, 108_000_000, 30_800, 2_730},
	"raytracer":  {4, 113, 0, 9, 1},
}

var paperTable3 = map[string]PaperTable3{
	"eclipse6":   {793_000, 137_000_000, 6_610_000, 68_400, 124},
	"hsqldb6":    {87_000, 13_400_000, 147_000, 26_400, 76},
	"lusearch6":  {95_700, 143_000_000, 1_440_000, 17, 0},
	"xalan6":     {1_140_000, 70_400_000, 17_500_000, 211_000, 15_500},
	"avrora9":    {22_100_000, 264_000_000, 362_000_000, 2_310_000, 854},
	"jython9":    {8, 53_200_000, 29, 0, 0},
	"luindex9":   {7, 8_610_000, 25, 0, 0},
	"lusearch9":  {813_000, 115_000_000, 27_100_000, 141, 6},
	"pmd9":       {7, 2_650_000, 25, 0, 0},
	"sunflow9":   {35_000, 263_000_000, 129_000, 1_080, 25},
	"xalan9":     {1_580_000, 67_000_000, 14_500_000, 66_500, 444},
	"elevator":   {3_200, 17_000, 5_590, 419, 24},
	"hedc":       {79, 38_400, 114, 83, 3},
	"philo":      {6, 16, 458, 144, 0},
	"sor":        {2, 16, 18_700, 189, 0},
	"tsp":        {12_000, 386_000, 694_000_000, 14_100, 0},
	"moldyn":     {573_000, 194_000_000, 50_500_000, 38, 0},
	"montecarlo": {102_000, 179_000_000, 93_300_000, 30_600, 2_860},
	"raytracer":  {25_700, 890_000_000, 108_000_000, 215, 1},
}

// Paper geomean slowdowns (Figure 7 and §5.3 text).
const (
	PaperVelodrome      = 6.1
	PaperVelodromeUnsnd = 4.1
	PaperSingleRun      = 3.6
	PaperFirstRun       = 1.9
	PaperSecondRun      = 2.4
	PaperVeloSecondRun  = 2.9
	PaperSecondAllUnary = 2.69 // 169% overhead
	PaperVelodromePrior = 12.7 // the original Velodrome paper's slowdown
)

// Paper §5.4 numbers.
const (
	PaperRefineInitial = 3.4
	PaperRefineHalfway = 3.6
	PaperRefineFinal   = 3.6

	PaperArraysSingleBase = 3.1 // no arrays, cycle detection off, xalan6/9 excluded
	PaperArraysSingleWith = 3.7
	PaperArraysVeloBase   = 6.3
	PaperArraysVeloWith   = 7.3

	PaperPCDOnlyBase = 3.1 // excluding eclipse6, xalan6, avrora9, xalan9
	PaperPCDOnly     = 16.6
)

// Paper §5.2 multi-run soundness.
const (
	PaperMultiDetectOverall    = 0.83
	PaperMultiDetectNormalized = 0.90
)
