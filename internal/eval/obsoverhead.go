package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"doublechecker/internal/core"
	"doublechecker/internal/obs"
	"doublechecker/internal/trace"
	"doublechecker/internal/workloads"
)

// obsOverheadSeed anchors the recorded schedules so the replayed work is
// identical across trials and across the disabled/enabled arms.
const obsOverheadSeed = 47

// ObsOverheadBench is one benchmark's tracer-overhead measurement.
type ObsOverheadBench struct {
	Name string `json:"benchmark"`
	// Events is the replayed trace's event count (deterministic).
	Events uint64 `json:"events"`
	// DisabledNanos and EnabledNanos are median replay latencies with the
	// tracer off (no span in the context — the zero-value fast path) and
	// on (every pipeline span recorded). Host-bound; the ratio is the
	// architectural claim.
	DisabledNanos int64 `json:"disabled_ns"`
	EnabledNanos  int64 `json:"enabled_ns"`
	// Overhead is EnabledNanos / DisabledNanos. The disabled arm is the
	// one the zero-allocation claim is about: with no trace attached it
	// must sit in the noise (~1.0 against a build without obs at all);
	// this field instead reports what turning tracing ON costs.
	Overhead float64 `json:"overhead_enabled_vs_disabled"`
	// Spans is how many spans one serial (PCDWorkers=0) traced replay
	// records — deterministic for a fixed trace.
	Spans int `json:"spans"`
	// SpanNames are the distinct span names seen, sorted (deterministic).
	SpanNames []string `json:"span_names"`
}

// ObsOverheadData is the dump written by `dcbench -experiment obsoverhead`
// (BENCH_obs.json).
type ObsOverheadData struct {
	Scale  float64 `json:"scale"`
	Trials int     `json:"trials"`
	// MedianOverhead is the corpus median of the per-benchmark
	// enabled-vs-disabled overheads — the acceptance headline: enabling
	// full pipeline tracing should cost single-digit percent, and the
	// disabled path (what every untraced run pays) is zero-allocation by
	// construction (proven by TestDisabledPathZeroAlloc in internal/obs).
	MedianOverhead float64            `json:"median_overhead"`
	Benchmarks     []ObsOverheadBench `json:"benchmarks"`
}

// ObsOverhead measures what the obs tracer costs the replay pipeline on
// the SCC-stress corpus: per benchmark, the median latency of a serial
// replay with no trace in the context (disabled — the default for every
// run that didn't ask for tracing) versus with a live trace capturing the
// full span tree. Trials interleave the two arms so thermal drift and
// scheduler mood hit both equally.
func (r *Runner) ObsOverhead() (*ObsOverheadData, error) {
	trials := r.opts.PerfTrials
	if trials < 1 {
		trials = 1
	}
	data := &ObsOverheadData{Scale: r.opts.Scale, Trials: trials}
	ctx := context.Background()
	for _, name := range workloads.Stress() {
		raw, err := r.recordServeCacheTrace(name, obsOverheadSeed)
		if err != nil {
			return nil, err
		}
		d, err := trace.Read(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("%s: decode: %w", name, err)
		}
		bm := ObsOverheadBench{Name: name, Events: d.Counts.Total()}

		replay := func(ctx context.Context) error {
			_, err := core.RunTrace(ctx, d, core.Config{Analysis: core.DCSingle})
			return err
		}
		// Warm-up run so neither arm pays first-touch costs.
		if err := replay(ctx); err != nil {
			return nil, fmt.Errorf("%s: warmup: %w", name, err)
		}

		var disabled, enabled []float64
		for t := 0; t < trials; t++ {
			start := time.Now()
			if err := replay(ctx); err != nil {
				return nil, fmt.Errorf("%s trial %d: disabled: %w", name, t, err)
			}
			disabled = append(disabled, float64(time.Since(start).Nanoseconds()))

			tr := obs.NewTrace(obs.TraceConfig{Name: "obsoverhead"})
			tctx := obs.ContextWithSpan(ctx, tr.Root())
			start = time.Now()
			if err := replay(tctx); err != nil {
				return nil, fmt.Errorf("%s trial %d: enabled: %w", name, t, err)
			}
			enabled = append(enabled, float64(time.Since(start).Nanoseconds()))
			tr.Finish()
			if t == 0 {
				spans := tr.Snapshot()
				bm.Spans = len(spans)
				seen := make(map[string]bool)
				for _, sp := range spans {
					seen[sp.Name] = true
				}
				for n := range seen {
					bm.SpanNames = append(bm.SpanNames, n)
				}
				sort.Strings(bm.SpanNames)
			}
		}
		bm.DisabledNanos = int64(median(disabled))
		bm.EnabledNanos = int64(median(enabled))
		if bm.DisabledNanos > 0 {
			bm.Overhead = float64(bm.EnabledNanos) / float64(bm.DisabledNanos)
		}
		data.Benchmarks = append(data.Benchmarks, bm)
	}
	var overheads []float64
	for _, bm := range data.Benchmarks {
		overheads = append(overheads, bm.Overhead)
	}
	data.MedianOverhead = median(overheads)
	return data, nil
}

// JSON renders the dump as indented JSON.
func (d *ObsOverheadData) JSON() []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		panic("eval: obsoverhead encode: " + err.Error())
	}
	return buf.Bytes()
}

// RenderObsOverhead prints the overhead table. Absolute times are
// host-bound; the overhead column and span counts are the point.
func (d *ObsOverheadData) RenderObsOverhead() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tracer overhead on serial replay (scale %.2g, %d trial(s) per benchmark)\n", d.Scale, d.Trials)
	fmt.Fprintf(&b, "%-10s %8s %12s %12s %9s %6s\n",
		"benchmark", "events", "disabled-ms", "enabled-ms", "overhead", "spans")
	for _, bm := range d.Benchmarks {
		fmt.Fprintf(&b, "%-10s %8d %12.3f %12.3f %8.2fx %6d\n",
			bm.Name, bm.Events,
			float64(bm.DisabledNanos)/1e6,
			float64(bm.EnabledNanos)/1e6,
			bm.Overhead, bm.Spans)
	}
	fmt.Fprintf(&b, "corpus median enabled-vs-disabled overhead: %.2fx", d.MedianOverhead)
	return b.String()
}
