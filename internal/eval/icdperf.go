package eval

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"strings"

	"doublechecker/internal/core"
	"doublechecker/internal/cost"
	"doublechecker/internal/icd"
	"doublechecker/internal/workloads"
)

// icdPerfSeed is the fixed schedule seed; DCFirst replay is serial and
// deterministic, so every number in the dump reproduces byte for byte.
const icdPerfSeed = 1

// ICDPerfEngine is one detection engine's measurements on one benchmark:
// the modelled detection work (cost-model units and nodes explored), the
// finish-time filter counters, the detection outcomes both engines must
// agree on, and the measured heap allocations of one whole DCFirst run.
type ICDPerfEngine struct {
	Engine string `json:"engine"`
	// DetectionUnits is the modelled cost charged at transaction finish for
	// cycle detection (SCCPerNode/SCCPerEdge prices), the headline the
	// engines compete on. MaintenanceUnits is the incremental engine's
	// per-edge condensation upkeep (zero under scan): the cost the engine
	// pays continuously so detection becomes an O(1) component lookup.
	// TotalUnits is their sum — the honest whole-engine comparison.
	DetectionUnits   uint64 `json:"detection_units"`
	MaintenanceUnits uint64 `json:"maintenance_units,omitempty"`
	TotalUnits       uint64 `json:"total_units"`
	SCCNodesExplored uint64 `json:"scc_nodes_explored"`
	SCCDetections    uint64 `json:"scc_detections"`
	// FinishChecks and the two skip counters describe the shared
	// quick-reject filter in front of both engines.
	FinishChecks      uint64 `json:"finish_checks"`
	SkipNoEligibleOut uint64 `json:"skip_no_eligible_out"`
	SkipNoEligibleIn  uint64 `json:"skip_no_eligible_in"`
	// SCCs, SCCTxns and IDGEdges are detection outcomes; the engines must
	// report identical values (the parity contract).
	SCCs     uint64 `json:"sccs"`
	SCCTxns  uint64 `json:"scc_txns"`
	IDGEdges uint64 `json:"idg_edges"`
	// EligibleEdges, Reorders and Merges are the incremental engine's
	// internal work breakdown (zero under scan): condensation insertions,
	// insertions that disturbed the topological order, and insertions that
	// collapsed components.
	EligibleEdges uint64 `json:"eligible_edges,omitempty"`
	Reorders      uint64 `json:"reorders,omitempty"`
	Merges        uint64 `json:"merges,omitempty"`
	// Allocs is the heap allocation count of one full measured run
	// (GC-fenced, GOMAXPROCS(1)); AllocsPerAccess divides by the run's
	// access count. Deterministic for a fixed toolchain and machine.
	Allocs          uint64  `json:"allocs"`
	AllocsPerAccess float64 `json:"allocs_per_access"`
}

// ICDPerfBenchmark is one stress benchmark's scan-vs-incremental comparison.
type ICDPerfBenchmark struct {
	Name        string        `json:"benchmark"`
	Accesses    uint64        `json:"accesses"`
	Scan        ICDPerfEngine `json:"scan"`
	Incremental ICDPerfEngine `json:"incremental"`
	// UnitsRatio, TotalRatio, NodesRatio and AllocsRatio are
	// scan/incremental: above 1 means the incremental engine did less of
	// that work. UnitsRatio compares detection-time cost (the hot-path
	// headline); TotalRatio folds the incremental engine's maintenance back
	// in so the amortization is visible, not hidden.
	UnitsRatio  float64 `json:"units_ratio"`
	TotalRatio  float64 `json:"total_ratio"`
	NodesRatio  float64 `json:"nodes_ratio"`
	AllocsRatio float64 `json:"allocs_ratio"`
	// Agree reports that both engines produced identical detection
	// outcomes (SCCs, SCCTxns, IDGEdges).
	Agree bool `json:"agree"`
}

// ICDPerfData is the dump written by `dcbench -experiment icdperf`
// (BENCH_icdperf.json): the amortized-ICD experiment over the SCC-stress
// workloads, comparing the legacy per-finish scan engine against the
// incremental (Pearce–Kelly + union–find) engine at a fixed seed. No wall
// clocks — modelled units, counters, and GC-fenced allocation counts only —
// so the file is byte-reproducible across runs on one toolchain.
type ICDPerfData struct {
	Scale      float64            `json:"scale"`
	Seed       int64              `json:"seed"`
	Benchmarks []ICDPerfBenchmark `json:"benchmarks"`
}

// ICDPerf runs the amortized-ICD experiment: for each SCC-stress workload,
// one DCFirst run (the multi-run hot path: no logging, no SCC handoff,
// transaction recycling on) per engine, measuring modelled detection work
// and whole-run heap allocations.
func (r *Runner) ICDPerf() (*ICDPerfData, error) {
	data := &ICDPerfData{Scale: r.opts.Scale, Seed: icdPerfSeed}
	for _, name := range workloads.Stress() {
		bm := ICDPerfBenchmark{Name: name}
		for _, engine := range []icd.Engine{icd.EngineScan, icd.EngineIncremental} {
			res, allocs, err := r.icdPerfRun(name, engine)
			if err != nil {
				return nil, err
			}
			accesses := res.VMStats.FieldAccesses + res.VMStats.ArrayAccesses + res.VMStats.SyncAccesses
			e := ICDPerfEngine{
				Engine:            engine.String(),
				DetectionUnits:    res.ICD.DetectionUnits,
				MaintenanceUnits:  res.ICD.MaintenanceUnits,
				TotalUnits:        res.ICD.DetectionUnits + res.ICD.MaintenanceUnits,
				SCCNodesExplored:  res.ICD.SCCNodesExplored,
				SCCDetections:     res.ICD.SCCDetections,
				FinishChecks:      res.ICD.FinishChecks,
				SkipNoEligibleOut: res.ICD.SkipNoEligibleOut,
				SkipNoEligibleIn:  res.ICD.SkipNoEligibleIn,
				SCCs:              res.ICD.SCCs,
				SCCTxns:           res.ICD.SCCTxns,
				IDGEdges:          res.ICD.IDGEdges,
				EligibleEdges:     res.ICD.Engine.Eligible,
				Reorders:          res.ICD.Engine.Reorders,
				Merges:            res.ICD.Engine.Merges,
				Allocs:            allocs,
				AllocsPerAccess:   round3(float64(allocs) / float64(max(accesses, 1))),
			}
			if engine == icd.EngineScan {
				bm.Scan = e
				bm.Accesses = accesses
			} else {
				bm.Incremental = e
			}
		}
		bm.UnitsRatio = round2(ratio(bm.Scan.DetectionUnits, bm.Incremental.DetectionUnits))
		bm.TotalRatio = round2(ratio(bm.Scan.TotalUnits, bm.Incremental.TotalUnits))
		bm.NodesRatio = round2(ratio(bm.Scan.SCCNodesExplored, bm.Incremental.SCCNodesExplored))
		bm.AllocsRatio = round2(ratio(bm.Scan.Allocs, bm.Incremental.Allocs))
		bm.Agree = bm.Scan.SCCs == bm.Incremental.SCCs &&
			bm.Scan.SCCTxns == bm.Incremental.SCCTxns &&
			bm.Scan.IDGEdges == bm.Incremental.IDGEdges
		data.Benchmarks = append(data.Benchmarks, bm)
	}
	return data, nil
}

// icdPerfRun executes one warm-up run (builds and caches the workload, so
// construction never lands in the measurement) and one measured run with
// the garbage collector fenced and GOMAXPROCS pinned to 1, returning the
// measured run's result and its heap allocation count.
func (r *Runner) icdPerfRun(name string, engine icd.Engine) (*core.Result, uint64, error) {
	_, initial, err := r.bench(name)
	if err != nil {
		return nil, 0, err
	}
	mut := func(cfg *core.Config) { cfg.ICDEngine = engine }
	if _, err := r.run(name, core.DCFirst, initial, icdPerfSeed, cost.NewMeter(cost.Default()), mut); err != nil {
		return nil, 0, err
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := r.run(name, core.DCFirst, initial, icdPerfSeed, cost.NewMeter(cost.Default()), mut)
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, 0, err
	}
	return res, after.Mallocs - before.Mallocs, nil
}

// OK reports the experiment's acceptance bar: on every stress workload the
// engines agreed on detection outcomes, the incremental engine at least
// halved the modelled detection units, and it explored fewer SCC nodes.
func (d *ICDPerfData) OK() bool {
	for _, bm := range d.Benchmarks {
		if !bm.Agree || bm.UnitsRatio < 2 ||
			bm.Incremental.SCCNodesExplored >= bm.Scan.SCCNodesExplored {
			return false
		}
	}
	return len(d.Benchmarks) > 0
}

// JSON renders the dump as indented JSON; byte-reproducible at a fixed
// scale and seed on one toolchain.
func (d *ICDPerfData) JSON() []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		panic("eval: icdperf encode: " + err.Error())
	}
	return buf.Bytes()
}

// RenderICDPerf prints the comparison table.
func (d *ICDPerfData) RenderICDPerf() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Amortized ICD (scale %.2g, seed %d, DCFirst hot path)\n", d.Scale, d.Seed)
	fmt.Fprintf(&b, "%-10s %-12s %14s %12s %12s %12s %12s %10s  %s\n",
		"benchmark", "engine", "detect-units", "maint-units", "total-units", "scc-nodes", "allocs", "allocs/acc", "agree")
	for _, bm := range d.Benchmarks {
		agree := "yes"
		if !bm.Agree {
			agree = "NO (engines diverged)"
		}
		for _, e := range []ICDPerfEngine{bm.Scan, bm.Incremental} {
			fmt.Fprintf(&b, "%-10s %-12s %14d %12d %12d %12d %12d %10.3f  %s\n",
				bm.Name, e.Engine, e.DetectionUnits, e.MaintenanceUnits, e.TotalUnits,
				e.SCCNodesExplored, e.Allocs, e.AllocsPerAccess, agree)
		}
		fmt.Fprintf(&b, "%-10s %-12s %13.2fx %12s %11.2fx %11.2fx %11.2fx\n",
			bm.Name, "ratio", bm.UnitsRatio, "", bm.TotalRatio, bm.NodesRatio, bm.AllocsRatio)
	}
	return strings.TrimRight(b.String(), "\n")
}

func ratio(scan, inc uint64) float64 {
	if inc == 0 {
		inc = 1 // keep the dump JSON-encodable if a denominator is ever zero
	}
	return float64(scan) / float64(inc)
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }

func round3(x float64) float64 { return math.Round(x*1000) / 1000 }
