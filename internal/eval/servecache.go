package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"doublechecker/internal/core"
	"doublechecker/internal/server"
	"doublechecker/internal/store"
	"doublechecker/internal/trace"
	"doublechecker/internal/vm"
	"doublechecker/internal/workloads"
)

// serveCacheSeed anchors the schedule seeds; each trial records a fresh
// trace (different seed, different bytes, different content address) so
// cold measurements never accidentally hit.
const serveCacheSeed = 41

// serveCacheWaiters is the burst width for the coalesced measurement: one
// leader runs the check, the others join its flight.
const serveCacheWaiters = 4

// ServeCacheBench is one benchmark's latency medians across trials.
type ServeCacheBench struct {
	Name string `json:"benchmark"`
	// TraceBytes is the recorded trace size of the first trial.
	TraceBytes int `json:"trace_bytes"`
	// ColdNanos is the median first-request latency (a miss: full check).
	ColdNanos int64 `json:"cold_ns"`
	// WarmNanos is the median repeat-request latency (a memory-tier hit).
	WarmNanos int64 `json:"warm_ns"`
	// CoalescedNanos is the median latency of a request that joined
	// another request's in-flight check instead of running its own.
	CoalescedNanos int64 `json:"coalesced_ns"`
	// CoalescedSamples counts how many burst requests actually coalesced;
	// the burst is timing-dependent, so the sample size is reported rather
	// than assumed.
	CoalescedSamples int `json:"coalesced_samples"`
	// SpeedupWarm is ColdNanos / WarmNanos — what the cache saves a
	// repeat client.
	SpeedupWarm float64 `json:"speedup_warm"`
}

// ServeCacheData is the dump written by `dcbench -experiment servecache`
// (BENCH_servecache.json).
type ServeCacheData struct {
	Scale  float64 `json:"scale"`
	Trials int     `json:"trials"`
	// MedianSpeedupWarm is the corpus median of the per-benchmark warm
	// speedups — the acceptance headline.
	MedianSpeedupWarm float64           `json:"median_speedup_warm"`
	Benchmarks        []ServeCacheBench `json:"benchmarks"`
}

// recordServeCacheTrace records one stress benchmark under one seed and
// returns the trace bytes, using the same sticky scheduler the runner's
// live configurations use.
func (r *Runner) recordServeCacheTrace(name string, seed int64) ([]byte, error) {
	b, sp, err := r.bench(name)
	if err != nil {
		return nil, err
	}
	var atomicIDs []vm.MethodID
	for _, m := range b.Prog.Methods {
		if sp.Atomic(m.ID) {
			atomicIDs = append(atomicIDs, m.ID)
		}
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{
		Program: b.Prog,
		Atomic:  atomicIDs,
		Seed:    seed,
		Sched:   fmt.Sprintf("sticky(%g,%d)", b.Stickiness, seed),
		Source:  "dcbench servecache",
	})
	if err != nil {
		return nil, err
	}
	_, err = core.RecordRun(context.Background(), b.Prog, w, core.RecordConfig{
		Config: core.Config{
			Analysis: core.DCSingle,
			Sched:    vm.NewSticky(seed, b.Stickiness),
			Atomic:   sp.Atomic,
		},
		Source: "dcbench servecache",
	})
	if err != nil {
		return nil, fmt.Errorf("%s seed %d: record: %w", name, seed, err)
	}
	return buf.Bytes(), nil
}

// serveCachePost runs one /check request through the handler in process
// (no network) and returns the latency, cache state header, and status.
func serveCachePost(h http.Handler, raw []byte) (time.Duration, string, int) {
	req := httptest.NewRequest(http.MethodPost, "/check?name=servecache", bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	start := time.Now()
	h.ServeHTTP(rec, req)
	return time.Since(start), rec.Header().Get(server.CacheHeader), rec.Code
}

// ServeCache measures what the result store buys the checking service on
// the SCC-stress corpus: per benchmark, the latency of a cold check (miss),
// of a repeat of the same trace (memory-tier hit), and of a request that
// arrives while an identical check is already running (coalesced waiter).
// Every trial uses a freshly recorded trace so a "cold" request can never
// hit leftovers from a previous trial.
func (r *Runner) ServeCache() (*ServeCacheData, error) {
	trials := r.opts.PerfTrials
	if trials < 1 {
		trials = 1
	}
	data := &ServeCacheData{Scale: r.opts.Scale, Trials: trials}
	for _, name := range workloads.Stress() {
		cache, err := store.Open(store.Config{MemBudget: store.DefaultMemBudget})
		if err != nil {
			return nil, err
		}
		h := server.New(server.Config{Cache: cache, PCDBudget: 4}).Handler()
		bm := ServeCacheBench{Name: name}
		var colds, warms, coals []float64
		for t := 0; t < trials; t++ {
			raw, err := r.recordServeCacheTrace(name, serveCacheSeed+int64(t))
			if err != nil {
				return nil, err
			}
			if t == 0 {
				bm.TraceBytes = len(raw)
			}
			lat, state, code := serveCachePost(h, raw)
			if code != http.StatusOK || state != "miss" {
				return nil, fmt.Errorf("%s trial %d: cold request: status %d cache %q", name, t, code, state)
			}
			colds = append(colds, float64(lat.Nanoseconds()))
			lat, state, code = serveCachePost(h, raw)
			if code != http.StatusOK || state != "hit" {
				return nil, fmt.Errorf("%s trial %d: warm request: status %d cache %q", name, t, code, state)
			}
			warms = append(warms, float64(lat.Nanoseconds()))

			// Coalescing burst on its own fresh trace: the requests race,
			// one leads, the rest join its flight (or hit, if they arrive
			// after it finishes — those are not counted).
			burst, err := r.recordServeCacheTrace(name, serveCacheSeed+1000+int64(t))
			if err != nil {
				return nil, err
			}
			var (
				wg   sync.WaitGroup
				mu   sync.Mutex
				errc error
			)
			for i := 0; i < serveCacheWaiters; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					lat, state, code := serveCachePost(h, burst)
					mu.Lock()
					defer mu.Unlock()
					if code != http.StatusOK {
						errc = fmt.Errorf("%s trial %d: burst request: status %d", name, t, code)
						return
					}
					if state == "coalesced" {
						coals = append(coals, float64(lat.Nanoseconds()))
						bm.CoalescedSamples++
					}
				}()
			}
			wg.Wait()
			if errc != nil {
				return nil, errc
			}
		}
		bm.ColdNanos = int64(median(colds))
		bm.WarmNanos = int64(median(warms))
		bm.CoalescedNanos = int64(median(coals))
		if bm.WarmNanos > 0 {
			bm.SpeedupWarm = float64(bm.ColdNanos) / float64(bm.WarmNanos)
		}
		data.Benchmarks = append(data.Benchmarks, bm)
	}
	var speedups []float64
	for _, bm := range data.Benchmarks {
		speedups = append(speedups, bm.SpeedupWarm)
	}
	data.MedianSpeedupWarm = median(speedups)
	return data, nil
}

// JSON renders the dump as indented JSON.
func (d *ServeCacheData) JSON() []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		panic("eval: servecache encode: " + err.Error())
	}
	return buf.Bytes()
}

// RenderServeCache prints the latency table. Absolute times are host-bound;
// the warm-speedup column is the architectural effect.
func (d *ServeCacheData) RenderServeCache() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Result store service latency (scale %.2g, %d trial(s) per benchmark)\n", d.Scale, d.Trials)
	fmt.Fprintf(&b, "%-10s %12s %10s %10s %14s %9s\n",
		"benchmark", "trace-bytes", "cold-ms", "warm-ms", "coalesced-ms", "x-warm")
	for _, bm := range d.Benchmarks {
		coal := "-"
		if bm.CoalescedSamples > 0 {
			coal = fmt.Sprintf("%.3f(%d)", float64(bm.CoalescedNanos)/1e6, bm.CoalescedSamples)
		}
		fmt.Fprintf(&b, "%-10s %12d %10.2f %10.3f %14s %9.1f\n",
			bm.Name, bm.TraceBytes,
			float64(bm.ColdNanos)/1e6,
			float64(bm.WarmNanos)/1e6,
			coal, bm.SpeedupWarm)
	}
	fmt.Fprintf(&b, "corpus median warm speedup: %.1fx", d.MedianSpeedupWarm)
	return b.String()
}
