// HTTP surface: the check endpoints, the error taxonomy, and the health
// probes.
//
// Error taxonomy (every error response carries the machine-readable
// X-DC-Error header):
//
//	bad-request     400  malformed parameters (unknown analysis, bad number)
//	bad-trace       400  the upload decodes to no valid trace (magic,
//	                     version, CRC, truncation)
//	body-read       400  the request body itself failed mid-stream
//	                     (connection reset while uploading)
//	unknown-workload 404 no built-in workload by that name
//	faults-disabled 403  fault-injection parameters without AllowFaults
//	too-large       413  body exceeded MaxBodyBytes
//	queue-full      429  admission queue full; Retry-After hints a backoff
//	breaker-open    503  the circuit for this workload/trace is open;
//	                     Retry-After carries the cooldown remainder
//	draining        503  received while the server drains for shutdown
//	canceled        499  the client went away mid-check
//	timeout         504  the check exceeded the request deadline
//	panic           500  a checker panic was quarantined (X-DC-Panic-Digest
//	                     carries the stable stack digest)
//	check-failed    500  the check failed for any other reason

package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"doublechecker/internal/core"
	"doublechecker/internal/faultinject"
	"doublechecker/internal/obs"
	"doublechecker/internal/spec"
	"doublechecker/internal/store"
	"doublechecker/internal/supervise"
	"doublechecker/internal/telemetry"
	"doublechecker/internal/trace"
	"doublechecker/internal/vm"
	"doublechecker/internal/workloads"
)

// StatusClientClosedRequest is the nginx-convention status for a client
// that disconnected mid-check; net/http has no name for it.
const StatusClientClosedRequest = 499

// ErrorKindHeader carries the machine-readable error kind; PanicDigestHeader
// carries the quarantined panic's stable stack digest; CacheHeader reports
// how a trace check was satisfied when the result store is enabled.
const (
	ErrorKindHeader   = "X-DC-Error"
	PanicDigestHeader = "X-DC-Panic-Digest"
	CacheHeader       = "X-DC-Cache" // hit | miss | coalesced
)

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /check", s.handleCheckTrace)
	mux.HandleFunc("POST /check/workload", s.handleCheckWorkload)
	mux.HandleFunc("GET /workloads", s.handleWorkloads)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	// Observability endpoints. More specific than the GET /debug/ subtree
	// below, so they win pattern precedence.
	mux.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleDebugTrace)
	mux.HandleFunc("GET /debug/flightrecorder", s.handleFlightRecorder)
	mux.HandleFunc("GET /debug/bundle", s.handleDebugBundle)
	// The existing telemetry mux — Prometheus text, expvars, pprof — rides
	// along on the service port.
	tm := s.reg.NewMux()
	mux.Handle("GET /metrics", tm)
	mux.Handle("GET /debug/", tm)
	return mux
}

// writeErr emits one taxonomy error: status, X-DC-Error kind, optional
// Retry-After hint, human-readable body.
func (s *Server) writeErr(w http.ResponseWriter, status int, kind, msg string, retryAfter time.Duration) {
	w.Header().Set(ErrorKindHeader, kind)
	if retryAfter > 0 {
		secs := int(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(status)
	// A traced request's error body names its trace, so the timeline
	// behind any failure is one /debug/traces/<id> fetch away.
	if tid := w.Header().Get(TraceIDHeader); tid != "" {
		fmt.Fprintf(w, "%s: %s (trace %s)\n", kind, msg, tid)
		return
	}
	fmt.Fprintf(w, "%s: %s\n", kind, msg)
}

// checkFail is one taxonomy failure carried as a value: the singleflight
// leader hands it to coalesced waiters through the store's Flight, and the
// write is deferred to whichever request ends up responding.
type checkFail struct {
	status      int
	kind        string
	msg         string
	retryAfter  time.Duration
	panicDigest string
}

// Error makes a checkFail transportable through store.Finish's error slot.
func (f *checkFail) Error() string { return f.kind + ": " + f.msg }

// writeFail emits one checkFail as its taxonomy response.
func (s *Server) writeFail(w http.ResponseWriter, f *checkFail) {
	if f.panicDigest != "" {
		w.Header().Set(PanicDigestHeader, f.panicDigest)
	}
	s.writeErr(w, f.status, f.kind, f.msg, f.retryAfter)
}

// writeReport emits one successful check report; cacheState tags the
// response with X-DC-Cache when the result store is in play ("" omits it).
func (s *Server) writeReport(w http.ResponseWriter, cacheState, report string) {
	s.reg.Counter(telemetry.ServerOK).Inc()
	if cacheState != "" {
		w.Header().Set(CacheHeader, cacheState)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, report)
}

// writeCached renders a stored entry as the canonical replay report — the
// shared core renderer guarantees the bytes match a cold run — under the
// caller's own display name, which is never cached.
func (s *Server) writeCached(w http.ResponseWriter, name string, e *store.Entry, cacheState string) {
	s.writeReport(w, cacheState, core.ReplayReportFrom(
		name, e.Program, e.Key.Seed, e.Events, e.Key.Source, e.Violations, e.Blamed))
}

// admitFail runs admission control, converting a rejection into its
// taxonomy failure. The release closure is non-nil exactly when admission
// succeeded. Draining rejections carry a Retry-After of the drain deadline
// — the longest this instance can linger before a replacement serves.
func (s *Server) admitFail(ctx context.Context) (func(), *checkFail) {
	qsp, _ := obs.StartSpan(ctx, telemetry.SpanQueueWait)
	t0 := time.Now()
	release, verdict := s.admit(ctx)
	scopeFrom(ctx).setQueueWait(time.Since(t0))
	qsp.SetStr("verdict", admitVerdictName(verdict))
	qsp.End()
	switch verdict {
	case admitOK:
		s.reg.Counter(telemetry.ServerAdmitted).Inc()
		return release, nil
	case admitShed:
		s.reg.Counter(telemetry.ServerShedQueueFull).Inc()
		return nil, &checkFail{status: http.StatusTooManyRequests, kind: "queue-full",
			msg: "admission queue full; retry later", retryAfter: time.Second}
	case admitDraining:
		s.reg.Counter(telemetry.ServerShedDraining).Inc()
		return nil, &checkFail{status: http.StatusServiceUnavailable, kind: "draining",
			msg: "server is draining", retryAfter: s.cfg.DrainTimeout}
	default: // admitCanceled
		return nil, &checkFail{status: StatusClientClosedRequest, kind: "canceled",
			msg: "client went away while queued"}
	}
}

// admitOrReject is admitFail with the rejection written directly — the
// path for requests with no waiters to share the verdict with.
func (s *Server) admitOrReject(w http.ResponseWriter, r *http.Request) func() {
	release, cf := s.admitFail(r.Context())
	if cf != nil {
		s.writeFail(w, cf)
		return nil
	}
	return release
}

// handleCheckTrace checks an uploaded .dct trace: POST /check with the raw
// trace as the body. Query parameters: analysis (default dc-single), name
// (the display name in the report; default "upload"), pcd-workers (PCD pool
// grant to request; default Config.PCDPerRequest). The 200 response body is
// byte-identical to `dcheck -replay` on the same file — whether computed
// cold, served from the result store, or coalesced onto another request's
// in-flight run.
func (s *Server) handleCheckTrace(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter(telemetry.ServerRequests).Inc()
	tr, r := s.beginTrace(w, r, "check.trace")
	defer tr.Finish()
	q := r.URL.Query()
	analysisName := q.Get("analysis")
	if analysisName == "" {
		analysisName = "dc-single"
	}
	analysis, err := core.ParseAnalysis(analysisName)
	if err != nil || analysis == core.Baseline {
		s.reg.Counter(telemetry.ServerBadRequests).Inc()
		s.writeErr(w, http.StatusBadRequest, "bad-request",
			fmt.Sprintf("analysis %q is not replayable", analysisName), 0)
		return
	}
	displayName := q.Get("name")
	if displayName == "" {
		displayName = "upload"
	}
	want, perr := intParam(q.Get("pcd-workers"), s.cfg.PCDPerRequest)
	if perr != nil {
		s.reg.Counter(telemetry.ServerBadRequests).Inc()
		s.writeErr(w, http.StatusBadRequest, "bad-request", perr.Error(), 0)
		return
	}

	// Buffer the bounded body: the cache key hashes the raw bytes, and it
	// must exist before admission so hits can bypass the queue entirely. An
	// over-limit upload fails inside ReadAll with MaxBytesError; a reset
	// upload surfaces the transport error directly.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.reg.Counter(telemetry.ServerBadRequests).Inc()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeErr(w, http.StatusRequestEntityTooLarge, "too-large",
				fmt.Sprintf("trace body exceeds %d bytes", s.cfg.MaxBodyBytes), 0)
		} else {
			s.writeErr(w, http.StatusBadRequest, "body-read", err.Error(), 0)
		}
		return
	}
	// The header alone prices the request: it carries the breaker key (the
	// trace's program+spec identity) and, with the raw-byte digest, the
	// cache key — full event decode waits until a check actually runs.
	hdr, rest, err := trace.PeekHeader(bytes.NewReader(body))
	if err != nil {
		s.reg.Counter(telemetry.ServerBadRequests).Inc()
		s.writeErr(w, http.StatusBadRequest, "bad-trace", err.Error(), 0)
		return
	}
	bkey := fmt.Sprintf("trace:%016x.%016x", hdr.ProgramDigest, hdr.SpecDigest)

	if s.cache == nil {
		release := s.admitOrReject(w, r)
		if release == nil {
			return
		}
		defer release()
		d, err := trace.Read(rest)
		if err != nil {
			s.reg.Counter(telemetry.ServerBadRequests).Inc()
			s.writeErr(w, http.StatusBadRequest, "bad-trace", err.Error(), 0)
			return
		}
		report, cf := runSupervised(s, r, bkey, analysisName, hdr.Seed,
			func(ctx context.Context, seed int64) (string, error) {
				res, err := s.runTrace(ctx, d, analysis, want)
				if err != nil {
					return "", err
				}
				return core.ReplayReport(displayName, d, res), nil
			})
		if cf != nil {
			s.writeFail(w, cf)
			return
		}
		s.writeReport(w, "", report)
		return
	}

	ckey := store.TraceKey(hdr, store.BodyDigest(body), analysisName)
	for {
		gsp, _ := obs.StartSpan(r.Context(), telemetry.SpanStoreGet)
		entry, flight, leader := s.cache.Lookup(ckey)
		switch {
		case entry != nil:
			gsp.SetStr("state", "hit")
			gsp.End()
			s.writeCached(w, displayName, entry, "hit")
			return
		case leader:
			gsp.SetStr("state", "lead")
			gsp.End()
			s.leadCheck(w, r, ckey, flight, bkey, analysisName, analysis, body, displayName, want)
			return
		}
		gsp.SetStr("state", "coalesce")
		gsp.End()
		// Coalesced waiter: block on the leader's flight, the drain signal,
		// or our own client going away — whichever fires first.
		csp, _ := obs.StartSpan(r.Context(), telemetry.SpanCoalesceWait)
		select {
		case <-flight.Done():
			csp.SetStr("outcome", "leader-done")
			csp.End()
			e, ferr := flight.Result()
			if e != nil {
				s.writeCached(w, displayName, e, "coalesced")
				return
			}
			cf, ok := ferr.(*checkFail)
			if !ok {
				s.writeErr(w, http.StatusInternalServerError, "check-failed", ferr.Error(), 0)
				return
			}
			// A canceled leader says nothing about this request — its
			// *own* client went away. Unless we are draining or dead too,
			// loop: re-lookup and, if still missing, run the check
			// ourselves as the new leader.
			if cf.kind == "canceled" && r.Context().Err() == nil && !s.Draining() {
				continue
			}
			s.writeFail(w, cf)
			return
		case <-s.drainCh:
			csp.SetStr("outcome", "draining")
			csp.End()
			s.reg.Counter(telemetry.ServerShedDraining).Inc()
			s.writeErr(w, http.StatusServiceUnavailable, "draining",
				"server is draining", s.cfg.DrainTimeout)
			return
		case <-r.Context().Done():
			csp.SetStr("outcome", "canceled")
			csp.End()
			s.writeErr(w, StatusClientClosedRequest, "canceled",
				"client went away while coalesced", 0)
			return
		}
	}
}

// runTrace replays one decoded trace under the shared PCD budget.
func (s *Server) runTrace(ctx context.Context, d *trace.Data, analysis core.Analysis, want int) (*core.Result, error) {
	grant := s.pcd.acquire(want)
	defer s.pcd.release(grant)
	return core.RunTrace(ctx, d, core.Config{
		Analysis:   analysis,
		Telemetry:  s.reg,
		PCDWorkers: grant,
	})
}

// leadCheck is the singleflight leader's path: admit, decode, run the
// check, publish the result to the store and the flight's waiters, then
// answer its own request as a miss. Every exit calls Finish exactly once —
// an abandoned flight would strand its waiters until drain.
func (s *Server) leadCheck(w http.ResponseWriter, r *http.Request, ckey store.Key, flight *store.Flight,
	bkey, analysisName string, analysis core.Analysis, body []byte, displayName string, want int) {

	lsp, lctx := obs.StartSpan(r.Context(), telemetry.SpanLeadCheck)
	defer lsp.End()
	r = r.WithContext(lctx)

	fail := func(cf *checkFail) {
		s.cache.Finish(ckey, flight, nil, cf)
		s.writeFail(w, cf)
	}

	release, cf := s.admitFail(r.Context())
	if cf != nil {
		fail(cf)
		return
	}
	defer release()

	d, err := trace.Read(bytes.NewReader(body))
	if err != nil {
		s.reg.Counter(telemetry.ServerBadRequests).Inc()
		fail(&checkFail{status: http.StatusBadRequest, kind: "bad-trace", msg: err.Error()})
		return
	}

	res, cf := runSupervised(s, r, bkey, analysisName, d.Header.Seed,
		func(ctx context.Context, seed int64) (*core.Result, error) {
			return s.runTrace(ctx, d, analysis, want)
		})
	if cf != nil {
		fail(cf)
		return
	}

	entry := &store.Entry{
		Key:        ckey,
		Program:    d.Header.Program.Name,
		Events:     d.Counts.Total(),
		Violations: len(res.Violations),
		Blamed:     res.BlamedMethodNames(d.Header.Program),
	}
	// A run that quarantined PCD worker panics still answered — serve it,
	// share it with this flight's waiters — but do not make a transient
	// degradation permanent by persisting it.
	if len(res.PCDQuarantined) == 0 {
		psp, _ := obs.StartSpan(r.Context(), telemetry.SpanStorePut)
		s.cache.Put(ckey, entry)
		psp.End()
	}
	s.cache.Finish(ckey, flight, entry, nil)
	s.writeCached(w, displayName, entry, "miss")
}

// handleCheckWorkload checks a named built-in workload: POST
// /check/workload?name=...&seed=...&analysis=... . With Config.AllowFaults,
// the deterministic fault-injection parameters panic-at-access,
// panic-at-txend, stall-at-access and stall-ms inject faults into the
// checker mid-run — the chaos-testing seam.
func (s *Server) handleCheckWorkload(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter(telemetry.ServerRequests).Inc()
	tr, r := s.beginTrace(w, r, "check.workload")
	defer tr.Finish()
	q := r.URL.Query()
	name := q.Get("name")
	if name == "" {
		s.reg.Counter(telemetry.ServerBadRequests).Inc()
		s.writeErr(w, http.StatusBadRequest, "bad-request", "missing workload name", 0)
		return
	}
	analysisName := q.Get("analysis")
	if analysisName == "" {
		analysisName = "dc-single"
	}
	analysis, err := core.ParseAnalysis(analysisName)
	if err != nil {
		s.reg.Counter(telemetry.ServerBadRequests).Inc()
		s.writeErr(w, http.StatusBadRequest, "bad-request", err.Error(), 0)
		return
	}
	seed, serr := int64Param(q.Get("seed"), 1)
	want, perr := intParam(q.Get("pcd-workers"), s.cfg.PCDPerRequest)
	if serr != nil || perr != nil {
		s.reg.Counter(telemetry.ServerBadRequests).Inc()
		s.writeErr(w, http.StatusBadRequest, "bad-request", errors.Join(serr, perr).Error(), 0)
		return
	}
	plan, ferr := faultPlan(q)
	if ferr != nil {
		s.reg.Counter(telemetry.ServerBadRequests).Inc()
		s.writeErr(w, http.StatusBadRequest, "bad-request", ferr.Error(), 0)
		return
	}
	if plan != nil && !s.cfg.AllowFaults {
		s.reg.Counter(telemetry.ServerBadRequests).Inc()
		s.writeErr(w, http.StatusForbidden, "faults-disabled",
			"fault-injection parameters require AllowFaults", 0)
		return
	}
	built, err := workloads.Build(name, s.cfg.WorkloadScale)
	if err != nil {
		s.reg.Counter(telemetry.ServerBadRequests).Inc()
		s.writeErr(w, http.StatusNotFound, "unknown-workload", err.Error(), 0)
		return
	}
	sp := spec.Initial(built.Prog)
	if err := sp.ExcludeByName(built.InitialExclusions...); err != nil {
		s.writeErr(w, http.StatusInternalServerError, "check-failed", err.Error(), 0)
		return
	}

	release := s.admitOrReject(w, r)
	if release == nil {
		return
	}
	defer release()

	report, cf := runSupervised(s, r, "workload:"+name, analysisName, seed,
		func(ctx context.Context, trialSeed int64) (string, error) {
			grant := s.pcd.acquire(want)
			defer s.pcd.release(grant)
			cfg := core.Config{
				Analysis:   analysis,
				Seed:       trialSeed,
				Sched:      vm.NewSticky(trialSeed, built.Stickiness),
				Atomic:     sp.Atomic,
				Telemetry:  s.reg,
				PCDWorkers: grant,
			}
			if plan != nil {
				cfg.WrapInst = func(inner vm.Instrumentation) vm.Instrumentation {
					return faultinject.Inst(inner, plan)
				}
			}
			res, err := core.RunContext(ctx, built.Prog, cfg)
			if err != nil {
				return "", err
			}
			return workloadReport(name, built, trialSeed, res), nil
		})
	if cf != nil {
		s.writeFail(w, cf)
		return
	}
	s.writeReport(w, "", report)
}

// workloadReport renders a live workload check in the same shape as the
// canonical replay report: an identity line, then core.ViolationSummary.
func workloadReport(name string, b *workloads.Built, seed int64, res *core.Result) string {
	return fmt.Sprintf("workload %s: program %s, seed %d, %d methods, %d threads\n%s",
		name, b.Prog.Name, seed, len(b.Prog.Methods), len(b.Prog.Threads),
		core.ViolationSummary(b.Prog, res))
}

// runSupervised runs one admitted check under breaker + supervision and
// returns either its value or the taxonomy failure — the write is the
// caller's, so the singleflight leader can publish the outcome to its
// waiters before (or instead of) responding itself. The attempt closure
// does the actual work: a trace replay, a live workload run.
func runSupervised[T any](s *Server, r *http.Request, key, analysisName string, seed int64,
	attempt func(ctx context.Context, seed int64) (T, error)) (T, *checkFail) {

	var zero T
	if ok, retryAfter := s.breaker.Allow(key); !ok {
		s.reg.Counter(telemetry.ServerBreakerRejected).Inc()
		return zero, &checkFail{status: http.StatusServiceUnavailable, kind: "breaker-open",
			msg: fmt.Sprintf("circuit open for %s", key), retryAfter: retryAfter}
	}

	// The check's context merges the client's (disconnects abort the work)
	// with the server's in-flight context (drain's last-resort cancel).
	ctx, cancel := mergeCancel(r.Context(), s.inflightCtx)
	defer cancel()

	out, err := supervise.Trial(ctx, supervise.Budget{
		TrialTimeout: s.cfg.RequestTimeout,
		Retries:      s.cfg.Retries,
		RetryBackoff: s.cfg.RetryBackoff,
		Telemetry:    s.reg,
		Recorder:     s.rec,
	}, analysisName, seed, attempt)
	if err != nil {
		// Whole-check abort: the merged context fired. Attribute it.
		if s.inflightCtx.Err() != nil || s.Draining() {
			s.reg.Counter(telemetry.ServerShedDraining).Inc()
			return zero, &checkFail{status: http.StatusServiceUnavailable, kind: "draining",
				msg: "check canceled by server drain", retryAfter: s.cfg.DrainTimeout}
		}
		return zero, &checkFail{status: StatusClientClosedRequest, kind: "canceled",
			msg: "client went away mid-check"}
	}
	if out.OK {
		s.breaker.Success(key)
		return out.Value, nil
	}

	f := out.LastFailure()
	switch f.Kind {
	case supervise.KindPanic:
		s.reg.Counter(telemetry.ServerPanics).Inc()
		if s.breaker.Failure(key, f.StackDigest) {
			s.reg.Counter(telemetry.ServerBreakerTrips).Inc()
		}
		return zero, &checkFail{status: http.StatusInternalServerError, kind: "panic",
			msg:         fmt.Sprintf("checker panic quarantined (stack %s): %v", f.StackDigest, f.Err),
			panicDigest: f.StackDigest}
	case supervise.KindTimeout:
		s.reg.Counter(telemetry.ServerTimeouts).Inc()
		if s.breaker.Failure(key, "timeout") {
			s.reg.Counter(telemetry.ServerBreakerTrips).Inc()
		}
		return zero, &checkFail{status: http.StatusGatewayTimeout, kind: "timeout",
			msg: fmt.Sprintf("check exceeded %v", s.cfg.RequestTimeout)}
	default:
		return zero, &checkFail{status: http.StatusInternalServerError, kind: "check-failed", msg: f.String()}
	}
}

// mergeCancel returns a context canceled when either parent is done.
func mergeCancel(a, b context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(a)
	stop := context.AfterFunc(b, cancel)
	return ctx, func() { stop(); cancel() }
}

// handleWorkloads lists the built-in workloads, one "name\tdescription"
// line each.
func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, name := range workloads.All() {
		wl, err := workloads.Get(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "%s\t%s\n", wl.Name, wl.Desc)
	}
}

// handleHealthz reports liveness: 200 as long as the process serves, with
// any open circuits listed for operators.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
	open := s.breaker.OpenKeys()
	sort.Strings(open)
	for _, k := range open {
		fmt.Fprintf(w, "breaker open: %s\n", k)
	}
}

// handleReadyz reports readiness: 503 once drain starts, so load balancers
// stop routing before in-flight work finishes.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// intParam parses an optional non-negative integer query parameter.
func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad integer parameter %q", s)
	}
	return n, nil
}

// int64Param parses an optional int64 query parameter.
func int64Param(s string, def int64) (int64, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad integer parameter %q", s)
	}
	return n, nil
}

// uintParam parses an optional uint64 query parameter.
func uintParam(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad count parameter %q", s)
	}
	return n, nil
}

// faultPlan assembles a deterministic fault-injection plan from query
// parameters; nil when none are present.
func faultPlan(q interface{ Get(string) string }) (*faultinject.Plan, error) {
	pa, e1 := uintParam(q.Get("panic-at-access"))
	pt, e2 := uintParam(q.Get("panic-at-txend"))
	sa, e3 := uintParam(q.Get("stall-at-access"))
	ms, e4 := uintParam(q.Get("stall-ms"))
	if err := errors.Join(e1, e2, e3, e4); err != nil {
		return nil, err
	}
	if pa == 0 && pt == 0 && sa == 0 {
		return nil, nil
	}
	p := &faultinject.Plan{PanicAtAccess: pa, PanicAtTxEnd: pt, StallAtAccess: sa}
	if sa > 0 {
		if ms == 0 {
			ms = 1000
		}
		p.StallFor = time.Duration(ms) * time.Millisecond
	}
	return p, nil
}
