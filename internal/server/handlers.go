// HTTP surface: the check endpoints, the error taxonomy, and the health
// probes.
//
// Error taxonomy (every error response carries the machine-readable
// X-DC-Error header):
//
//	bad-request     400  malformed parameters (unknown analysis, bad number)
//	bad-trace       400  the upload decodes to no valid trace (magic,
//	                     version, CRC, truncation)
//	body-read       400  the request body itself failed mid-stream
//	                     (connection reset while uploading)
//	unknown-workload 404 no built-in workload by that name
//	faults-disabled 403  fault-injection parameters without AllowFaults
//	too-large       413  body exceeded MaxBodyBytes
//	queue-full      429  admission queue full; Retry-After hints a backoff
//	breaker-open    503  the circuit for this workload/trace is open;
//	                     Retry-After carries the cooldown remainder
//	draining        503  received while the server drains for shutdown
//	canceled        499  the client went away mid-check
//	timeout         504  the check exceeded the request deadline
//	panic           500  a checker panic was quarantined (X-DC-Panic-Digest
//	                     carries the stable stack digest)
//	check-failed    500  the check failed for any other reason

package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"doublechecker/internal/core"
	"doublechecker/internal/faultinject"
	"doublechecker/internal/spec"
	"doublechecker/internal/supervise"
	"doublechecker/internal/telemetry"
	"doublechecker/internal/trace"
	"doublechecker/internal/vm"
	"doublechecker/internal/workloads"
)

// StatusClientClosedRequest is the nginx-convention status for a client
// that disconnected mid-check; net/http has no name for it.
const StatusClientClosedRequest = 499

// ErrorKindHeader carries the machine-readable error kind; PanicDigestHeader
// carries the quarantined panic's stable stack digest.
const (
	ErrorKindHeader   = "X-DC-Error"
	PanicDigestHeader = "X-DC-Panic-Digest"
)

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /check", s.handleCheckTrace)
	mux.HandleFunc("POST /check/workload", s.handleCheckWorkload)
	mux.HandleFunc("GET /workloads", s.handleWorkloads)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	// The existing telemetry mux — Prometheus text, expvars, pprof — rides
	// along on the service port.
	tm := s.reg.NewMux()
	mux.Handle("GET /metrics", tm)
	mux.Handle("GET /debug/", tm)
	return mux
}

// writeErr emits one taxonomy error: status, X-DC-Error kind, optional
// Retry-After hint, human-readable body.
func (s *Server) writeErr(w http.ResponseWriter, status int, kind, msg string, retryAfter time.Duration) {
	w.Header().Set(ErrorKindHeader, kind)
	if retryAfter > 0 {
		secs := int(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(status)
	fmt.Fprintf(w, "%s: %s\n", kind, msg)
}

// admitOrReject runs admission control for one check request, emitting the
// taxonomy response itself when the request cannot run. The release closure
// is non-nil exactly when admission succeeded.
func (s *Server) admitOrReject(w http.ResponseWriter, r *http.Request) func() {
	s.reg.Counter(telemetry.ServerRequests).Inc()
	release, verdict := s.admit(r.Context())
	switch verdict {
	case admitOK:
		s.reg.Counter(telemetry.ServerAdmitted).Inc()
		return release
	case admitShed:
		s.reg.Counter(telemetry.ServerShedQueueFull).Inc()
		s.writeErr(w, http.StatusTooManyRequests, "queue-full",
			"admission queue full; retry later", time.Second)
	case admitDraining:
		s.reg.Counter(telemetry.ServerShedDraining).Inc()
		s.writeErr(w, http.StatusServiceUnavailable, "draining",
			"server is draining", 0)
	case admitCanceled:
		s.writeErr(w, StatusClientClosedRequest, "canceled",
			"client went away while queued", 0)
	}
	return nil
}

// handleCheckTrace checks an uploaded .dct trace: POST /check with the raw
// trace as the body. Query parameters: analysis (default dc-single), name
// (the display name in the report; default "upload"), pcd-workers (PCD pool
// grant to request; default Config.PCDPerRequest). The 200 response body is
// byte-identical to `dcheck -replay` on the same file.
func (s *Server) handleCheckTrace(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	analysisName := q.Get("analysis")
	if analysisName == "" {
		analysisName = "dc-single"
	}
	analysis, err := core.ParseAnalysis(analysisName)
	if err != nil || analysis == core.Baseline {
		s.reg.Counter(telemetry.ServerBadRequests).Inc()
		s.writeErr(w, http.StatusBadRequest, "bad-request",
			fmt.Sprintf("analysis %q is not replayable", analysisName), 0)
		return
	}
	displayName := q.Get("name")
	if displayName == "" {
		displayName = "upload"
	}
	want, perr := intParam(q.Get("pcd-workers"), s.cfg.PCDPerRequest)
	if perr != nil {
		s.reg.Counter(telemetry.ServerBadRequests).Inc()
		s.writeErr(w, http.StatusBadRequest, "bad-request", perr.Error(), 0)
		return
	}

	release := s.admitOrReject(w, r)
	if release == nil {
		return
	}
	defer release()

	// Decode the bounded body as a stream: the trace reader consumes the
	// wire format directly, so an over-limit or reset upload fails inside
	// the decode with the underlying transport error preserved (trace.ErrIO
	// wraps it) and is classified here without buffering the body.
	d, err := trace.Read(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.reg.Counter(telemetry.ServerBadRequests).Inc()
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			s.writeErr(w, http.StatusRequestEntityTooLarge, "too-large",
				fmt.Sprintf("trace body exceeds %d bytes", s.cfg.MaxBodyBytes), 0)
		case errors.Is(err, trace.ErrIO):
			s.writeErr(w, http.StatusBadRequest, "body-read", err.Error(), 0)
		default:
			s.writeErr(w, http.StatusBadRequest, "bad-trace", err.Error(), 0)
		}
		return
	}

	key := fmt.Sprintf("trace:%016x.%016x", d.Header.ProgramDigest, d.Header.SpecDigest)
	s.serveCheck(w, r, key, analysisName, d.Header.Seed,
		func(ctx context.Context, seed int64) (string, error) {
			grant := s.pcd.acquire(want)
			defer s.pcd.release(grant)
			res, err := core.RunTrace(ctx, d, core.Config{
				Analysis:   analysis,
				Telemetry:  s.reg,
				PCDWorkers: grant,
			})
			if err != nil {
				return "", err
			}
			return core.ReplayReport(displayName, d, res), nil
		})
}

// handleCheckWorkload checks a named built-in workload: POST
// /check/workload?name=...&seed=...&analysis=... . With Config.AllowFaults,
// the deterministic fault-injection parameters panic-at-access,
// panic-at-txend, stall-at-access and stall-ms inject faults into the
// checker mid-run — the chaos-testing seam.
func (s *Server) handleCheckWorkload(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("name")
	if name == "" {
		s.reg.Counter(telemetry.ServerBadRequests).Inc()
		s.writeErr(w, http.StatusBadRequest, "bad-request", "missing workload name", 0)
		return
	}
	analysisName := q.Get("analysis")
	if analysisName == "" {
		analysisName = "dc-single"
	}
	analysis, err := core.ParseAnalysis(analysisName)
	if err != nil {
		s.reg.Counter(telemetry.ServerBadRequests).Inc()
		s.writeErr(w, http.StatusBadRequest, "bad-request", err.Error(), 0)
		return
	}
	seed, serr := int64Param(q.Get("seed"), 1)
	want, perr := intParam(q.Get("pcd-workers"), s.cfg.PCDPerRequest)
	if serr != nil || perr != nil {
		s.reg.Counter(telemetry.ServerBadRequests).Inc()
		s.writeErr(w, http.StatusBadRequest, "bad-request", errors.Join(serr, perr).Error(), 0)
		return
	}
	plan, ferr := faultPlan(q)
	if ferr != nil {
		s.reg.Counter(telemetry.ServerBadRequests).Inc()
		s.writeErr(w, http.StatusBadRequest, "bad-request", ferr.Error(), 0)
		return
	}
	if plan != nil && !s.cfg.AllowFaults {
		s.reg.Counter(telemetry.ServerBadRequests).Inc()
		s.writeErr(w, http.StatusForbidden, "faults-disabled",
			"fault-injection parameters require AllowFaults", 0)
		return
	}
	built, err := workloads.Build(name, s.cfg.WorkloadScale)
	if err != nil {
		s.reg.Counter(telemetry.ServerBadRequests).Inc()
		s.writeErr(w, http.StatusNotFound, "unknown-workload", err.Error(), 0)
		return
	}
	sp := spec.Initial(built.Prog)
	if err := sp.ExcludeByName(built.InitialExclusions...); err != nil {
		s.writeErr(w, http.StatusInternalServerError, "check-failed", err.Error(), 0)
		return
	}

	release := s.admitOrReject(w, r)
	if release == nil {
		return
	}
	defer release()

	s.serveCheck(w, r, "workload:"+name, analysisName, seed,
		func(ctx context.Context, trialSeed int64) (string, error) {
			grant := s.pcd.acquire(want)
			defer s.pcd.release(grant)
			cfg := core.Config{
				Analysis:   analysis,
				Seed:       trialSeed,
				Sched:      vm.NewSticky(trialSeed, built.Stickiness),
				Atomic:     sp.Atomic,
				Telemetry:  s.reg,
				PCDWorkers: grant,
			}
			if plan != nil {
				cfg.WrapInst = func(inner vm.Instrumentation) vm.Instrumentation {
					return faultinject.Inst(inner, plan)
				}
			}
			res, err := core.RunContext(ctx, built.Prog, cfg)
			if err != nil {
				return "", err
			}
			return workloadReport(name, built, trialSeed, res), nil
		})
}

// workloadReport renders a live workload check in the same shape as the
// canonical replay report: an identity line, then core.ViolationSummary.
func workloadReport(name string, b *workloads.Built, seed int64, res *core.Result) string {
	return fmt.Sprintf("workload %s: program %s, seed %d, %d methods, %d threads\n%s",
		name, b.Prog.Name, seed, len(b.Prog.Methods), len(b.Prog.Threads),
		core.ViolationSummary(b.Prog, res))
}

// serveCheck runs one admitted check under supervision and writes either
// the report or the taxonomy error. The attempt closure does the actual
// work (trace replay or live run) and returns the rendered report.
func (s *Server) serveCheck(w http.ResponseWriter, r *http.Request, key, analysisName string, seed int64,
	attempt func(ctx context.Context, seed int64) (string, error)) {

	if ok, retryAfter := s.breaker.Allow(key); !ok {
		s.reg.Counter(telemetry.ServerBreakerRejected).Inc()
		s.writeErr(w, http.StatusServiceUnavailable, "breaker-open",
			fmt.Sprintf("circuit open for %s", key), retryAfter)
		return
	}

	// The check's context merges the client's (disconnects abort the work)
	// with the server's in-flight context (drain's last-resort cancel).
	ctx, cancel := mergeCancel(r.Context(), s.inflightCtx)
	defer cancel()

	out, err := supervise.Trial(ctx, supervise.Budget{
		TrialTimeout: s.cfg.RequestTimeout,
		Retries:      s.cfg.Retries,
		RetryBackoff: s.cfg.RetryBackoff,
		Telemetry:    s.reg,
	}, analysisName, seed, attempt)
	if err != nil {
		// Whole-check abort: the merged context fired. Attribute it.
		if s.inflightCtx.Err() != nil || s.Draining() {
			s.reg.Counter(telemetry.ServerShedDraining).Inc()
			s.writeErr(w, http.StatusServiceUnavailable, "draining",
				"check canceled by server drain", 0)
		} else {
			s.writeErr(w, StatusClientClosedRequest, "canceled",
				"client went away mid-check", 0)
		}
		return
	}
	if out.OK {
		s.breaker.Success(key)
		s.reg.Counter(telemetry.ServerOK).Inc()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, out.Value)
		return
	}

	f := out.LastFailure()
	switch f.Kind {
	case supervise.KindPanic:
		s.reg.Counter(telemetry.ServerPanics).Inc()
		if s.breaker.Failure(key, f.StackDigest) {
			s.reg.Counter(telemetry.ServerBreakerTrips).Inc()
		}
		w.Header().Set(PanicDigestHeader, f.StackDigest)
		s.writeErr(w, http.StatusInternalServerError, "panic",
			fmt.Sprintf("checker panic quarantined (stack %s): %v", f.StackDigest, f.Err), 0)
	case supervise.KindTimeout:
		s.reg.Counter(telemetry.ServerTimeouts).Inc()
		if s.breaker.Failure(key, "timeout") {
			s.reg.Counter(telemetry.ServerBreakerTrips).Inc()
		}
		s.writeErr(w, http.StatusGatewayTimeout, "timeout",
			fmt.Sprintf("check exceeded %v", s.cfg.RequestTimeout), 0)
	default:
		s.writeErr(w, http.StatusInternalServerError, "check-failed", f.String(), 0)
	}
}

// mergeCancel returns a context canceled when either parent is done.
func mergeCancel(a, b context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(a)
	stop := context.AfterFunc(b, cancel)
	return ctx, func() { stop(); cancel() }
}

// handleWorkloads lists the built-in workloads, one "name\tdescription"
// line each.
func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, name := range workloads.All() {
		wl, err := workloads.Get(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "%s\t%s\n", wl.Name, wl.Desc)
	}
}

// handleHealthz reports liveness: 200 as long as the process serves, with
// any open circuits listed for operators.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
	open := s.breaker.OpenKeys()
	sort.Strings(open)
	for _, k := range open {
		fmt.Fprintf(w, "breaker open: %s\n", k)
	}
}

// handleReadyz reports readiness: 503 once drain starts, so load balancers
// stop routing before in-flight work finishes.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// intParam parses an optional non-negative integer query parameter.
func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad integer parameter %q", s)
	}
	return n, nil
}

// int64Param parses an optional int64 query parameter.
func int64Param(s string, def int64) (int64, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad integer parameter %q", s)
	}
	return n, nil
}

// uintParam parses an optional uint64 query parameter.
func uintParam(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad count parameter %q", s)
	}
	return n, nil
}

// faultPlan assembles a deterministic fault-injection plan from query
// parameters; nil when none are present.
func faultPlan(q interface{ Get(string) string }) (*faultinject.Plan, error) {
	pa, e1 := uintParam(q.Get("panic-at-access"))
	pt, e2 := uintParam(q.Get("panic-at-txend"))
	sa, e3 := uintParam(q.Get("stall-at-access"))
	ms, e4 := uintParam(q.Get("stall-ms"))
	if err := errors.Join(e1, e2, e3, e4); err != nil {
		return nil, err
	}
	if pa == 0 && pt == 0 && sa == 0 {
		return nil, nil
	}
	p := &faultinject.Plan{PanicAtAccess: pa, PanicAtTxEnd: pt, StallAtAccess: sa}
	if sa > 0 {
		if ms == 0 {
			ms = 1000
		}
		p.StallFor = time.Duration(ms) * time.Millisecond
	}
	return p, nil
}
