package server_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"doublechecker/internal/cli"
	"doublechecker/internal/server"
	"doublechecker/internal/telemetry"
)

const goldenDir = "../../testdata/traces"

// newTestServer starts an httptest server around a fresh service.
func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postTrace uploads a trace body to /check with the given query string.
func postTrace(t *testing.T, ts *httptest.Server, query string, body []byte) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/check?"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /check: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, string(b)
}

// get fetches a path and returns the response plus body.
func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, string(b)
}

// dcheckReplay runs the dcheck CLI's replay mode on path and returns its
// stdout — the reference bytes the service must match.
func dcheckReplay(t *testing.T, path string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if code := cli.DCheck([]string{"-replay", path}, &out, &errb); code != 0 {
		t.Fatalf("dcheck -replay %s: exit %d: %s", path, code, errb.String())
	}
	return out.String()
}

// TestServeTraceMatchesDCheckReplay is the service's correctness contract:
// for every golden trace, the /check response body is byte-identical to
// `dcheck -replay` on the same file — with the PCD pool enabled and with it
// disabled.
func TestServeTraceMatchesDCheckReplay(t *testing.T) {
	traces, err := filepath.Glob(filepath.Join(goldenDir, "*.dct"))
	if err != nil || len(traces) == 0 {
		t.Fatalf("golden corpus: %v (%d traces)", err, len(traces))
	}
	budgets := []struct {
		name   string
		budget int
	}{
		{"pooled", 8},
		{"serial", -1}, // pooling disabled: every request replays in line
	}
	for _, bc := range budgets {
		t.Run(bc.name, func(t *testing.T) {
			_, ts := newTestServer(t, server.Config{PCDBudget: bc.budget})
			for _, path := range traces {
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				want := dcheckReplay(t, path)
				resp, got := postTrace(t, ts, "name="+path, raw)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("%s: status %d (%s): %s", path, resp.StatusCode,
						resp.Header.Get(server.ErrorKindHeader), got)
				}
				if got != want {
					t.Errorf("%s: served report differs from dcheck -replay\nserved:\n%s\ndcheck:\n%s",
						path, got, want)
				}
			}
		})
	}
}

// TestConcurrentUploadsDeterministic: many concurrent uploads of the same
// trace, all racing for a small shared PCD budget, serve identical bytes.
func TestConcurrentUploadsDeterministic(t *testing.T) {
	path := filepath.Join(goldenDir, "sccring.dct")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := dcheckReplay(t, path)
	_, ts := newTestServer(t, server.Config{PCDBudget: 3, PCDPerRequest: 2, MaxConcurrent: 8})
	var wg sync.WaitGroup
	results := make([]string, 12)
	errs := make([]error, 12)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/check?name="+path, "application/octet-stream", bytes.NewReader(raw))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, b)
				return
			}
			results[i] = string(b)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
		if results[i] != want {
			t.Errorf("upload %d served different bytes:\n%s", i, results[i])
		}
	}
}

// TestUploadErrorTaxonomy: corrupt, truncated, oversized and non-trace
// uploads map to the documented 4xx kinds.
func TestUploadErrorTaxonomy(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join(goldenDir, "elevator.dct"))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, server.Config{MaxBodyBytes: int64(len(raw)) - 1})

	flipped := bytes.Clone(raw)
	flipped[len(flipped)/2] ^= 0xff
	cases := []struct {
		name   string
		query  string
		body   []byte
		status int
		kind   string
	}{
		{"garbage", "", []byte("not a trace at all"), http.StatusBadRequest, "bad-trace"},
		{"truncated", "", raw[:len(raw)/2], http.StatusBadRequest, "bad-trace"},
		{"corrupt", "", flipped[:len(raw)-2], http.StatusBadRequest, "bad-trace"},
		{"too-large", "", raw, http.StatusRequestEntityTooLarge, "too-large"},
		{"bad-analysis", "analysis=nope", raw[:64], http.StatusBadRequest, "bad-request"},
		{"baseline-not-replayable", "analysis=baseline", raw[:64], http.StatusBadRequest, "bad-request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postTrace(t, ts, tc.query, tc.body)
			if resp.StatusCode != tc.status {
				t.Errorf("status %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			if got := resp.Header.Get(server.ErrorKindHeader); got != tc.kind {
				t.Errorf("%s = %q, want %q", server.ErrorKindHeader, got, tc.kind)
			}
		})
	}
}

// TestWorkloadEndpoints: a healthy named workload serves a report; unknown
// names 404; fault parameters are rejected without AllowFaults.
func TestWorkloadEndpoints(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	resp, body := postWorkload(t, ts, "name=pmd9&seed=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pmd9: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "workload pmd9:") || !strings.Contains(body, "dynamic violations") {
		t.Errorf("report:\n%s", body)
	}

	resp, _ = postWorkload(t, ts, "name=no-such-workload")
	if resp.StatusCode != http.StatusNotFound || resp.Header.Get(server.ErrorKindHeader) != "unknown-workload" {
		t.Errorf("unknown workload: status %d kind %q", resp.StatusCode, resp.Header.Get(server.ErrorKindHeader))
	}

	resp, _ = postWorkload(t, ts, "name=pmd9&panic-at-access=1")
	if resp.StatusCode != http.StatusForbidden || resp.Header.Get(server.ErrorKindHeader) != "faults-disabled" {
		t.Errorf("faults without AllowFaults: status %d kind %q", resp.StatusCode, resp.Header.Get(server.ErrorKindHeader))
	}

	resp, body = get(t, ts, "/workloads")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "pmd9\t") {
		t.Errorf("/workloads: status %d\n%s", resp.StatusCode, body)
	}
}

func postWorkload(t *testing.T, ts *httptest.Server, query string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/check/workload?"+query, "", nil)
	if err != nil {
		t.Fatalf("POST /check/workload: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// TestBreakerQuarantinesPoisonedWorkload: repeated same-digest panics open
// the circuit for that workload only; healthy workloads keep serving, and
// healthz lists the open circuit.
func TestBreakerQuarantinesPoisonedWorkload(t *testing.T) {
	s, ts := newTestServer(t, server.Config{
		AllowFaults:      true,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	var digest string
	for i := 0; i < 2; i++ {
		resp, body := postWorkload(t, ts, "name=pmd9&panic-at-access=1")
		if resp.StatusCode != http.StatusInternalServerError || resp.Header.Get(server.ErrorKindHeader) != "panic" {
			t.Fatalf("poisoned check %d: status %d kind %q: %s", i, resp.StatusCode,
				resp.Header.Get(server.ErrorKindHeader), body)
		}
		d := resp.Header.Get(server.PanicDigestHeader)
		if d == "" {
			t.Fatalf("poisoned check %d: no panic digest", i)
		}
		if digest == "" {
			digest = d
		} else if d != digest {
			t.Fatalf("digest changed between identical panics: %s vs %s", digest, d)
		}
	}

	resp, _ := postWorkload(t, ts, "name=pmd9&panic-at-access=1")
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get(server.ErrorKindHeader) != "breaker-open" {
		t.Fatalf("after threshold: status %d kind %q", resp.StatusCode, resp.Header.Get(server.ErrorKindHeader))
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("breaker-open response missing Retry-After")
	}

	// The poison is keyed: a healthy workload still serves.
	resp, body := postWorkload(t, ts, "name=elevator")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy workload during quarantine: status %d: %s", resp.StatusCode, body)
	}

	resp, body = get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "breaker open: workload:pmd9") {
		t.Errorf("healthz: status %d\n%s", resp.StatusCode, body)
	}
	if got := s.Registry().Counter(telemetry.ServerBreakerTrips).Value(); got != 1 {
		t.Errorf("breaker trips = %d, want 1", got)
	}
}

// TestQueueFullSheds: with one slot and a queue of one, a third concurrent
// check is shed with 429 and Retry-After instead of piling up.
func TestQueueFullSheds(t *testing.T) {
	s, ts := newTestServer(t, server.Config{
		MaxConcurrent: 1,
		MaxQueue:      1,
		AllowFaults:   true,
	})
	stall := "name=pmd9&stall-at-access=1&stall-ms=700"
	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, _ := http.Post(ts.URL+"/check/workload?"+stall, "", nil)
			if resp != nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				done <- resp.StatusCode
			} else {
				done <- 0
			}
		}()
		// Let request i occupy its place (slot, then queue) before the next.
		time.Sleep(150 * time.Millisecond)
	}

	resp, body := postWorkload(t, ts, stall)
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get(server.ErrorKindHeader) != "queue-full" {
		t.Fatalf("third check: status %d kind %q: %s", resp.StatusCode, resp.Header.Get(server.ErrorKindHeader), body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue-full response missing Retry-After")
	}
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Errorf("stalled check %d finished with %d, want 200", i, code)
		}
	}
	if got := s.Registry().Counter(telemetry.ServerShedQueueFull).Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
}

// TestDrainCleanAndForced: drain flips readyz, rejects new work, lets quick
// checks finish (clean drain), and cancels overlong ones at the deadline
// (forced drain).
func TestDrainCleanAndForced(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		s, ts := newTestServer(t, server.Config{DrainTimeout: 5 * time.Second})
		if resp, _ := get(t, ts, "/readyz"); resp.StatusCode != http.StatusOK {
			t.Fatalf("readyz before drain: %d", resp.StatusCode)
		}
		s.StartDrain()
		if resp, body := get(t, ts, "/readyz"); resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
			t.Errorf("readyz during drain: %d %q", resp.StatusCode, body)
		}
		resp, _ := postWorkload(t, ts, "name=pmd9")
		if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get(server.ErrorKindHeader) != "draining" {
			t.Errorf("new check during drain: status %d kind %q", resp.StatusCode, resp.Header.Get(server.ErrorKindHeader))
		}
		if !s.WaitDrain(context.Background()) {
			t.Error("idle drain was not clean")
		}
	})

	t.Run("forced", func(t *testing.T) {
		s, ts := newTestServer(t, server.Config{
			DrainTimeout: 50 * time.Millisecond,
			AllowFaults:  true,
		})
		done := make(chan *http.Response, 1)
		go func() {
			resp, err := http.Post(ts.URL+"/check/workload?name=pmd9&stall-at-access=1&stall-ms=600", "", nil)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			done <- resp
		}()
		time.Sleep(150 * time.Millisecond) // in-flight and stalled
		if s.WaitDrain(context.Background()) {
			t.Error("drain with a stalled check reported clean")
		}
		resp := <-done
		if resp == nil {
			t.Fatal("stalled check got no response")
		}
		if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get(server.ErrorKindHeader) != "draining" {
			t.Errorf("canceled in-flight check: status %d kind %q", resp.StatusCode, resp.Header.Get(server.ErrorKindHeader))
		}
	})
}

// TestRequestTimeout: a check that overruns the request deadline is cut off
// with 504.
func TestRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, server.Config{
		RequestTimeout: 80 * time.Millisecond,
		AllowFaults:    true,
	})
	resp, body := postWorkload(t, ts, "name=pmd9&stall-at-access=1&stall-ms=500")
	if resp.StatusCode != http.StatusGatewayTimeout || resp.Header.Get(server.ErrorKindHeader) != "timeout" {
		t.Fatalf("stalled check: status %d kind %q: %s", resp.StatusCode, resp.Header.Get(server.ErrorKindHeader), body)
	}
}

// TestMetricsServed: the telemetry mux rides along on the service port.
func TestMetricsServed(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	if resp, _ := postWorkload(t, ts, "name=pmd9"); resp.StatusCode != http.StatusOK {
		t.Fatalf("workload check: %d", resp.StatusCode)
	}
	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{"dc_server_requests", "dc_server_ok", "dc_vm_steps"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s:\n%.400s", want, body)
		}
	}
}
