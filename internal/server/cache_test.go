package server_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"doublechecker/internal/core"
	"doublechecker/internal/server"
	"doublechecker/internal/store"
	"doublechecker/internal/telemetry"
	"doublechecker/internal/trace"
)

// newCachedServer builds a server wired to a fresh result store. The store
// and the server share one registry so store.* counters are observable next
// to server.* ones, exactly as dcserve wires them.
func newCachedServer(t *testing.T, cfg server.Config, scfg store.Config) (*server.Server, *httptest.Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	scfg.Telemetry = reg
	cache, err := store.Open(scfg)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	cfg.Telemetry = reg
	cfg.Cache = cache
	s, ts := newTestServer(t, cfg)
	return s, ts, reg
}

// TestCacheContractGoldenCorpus is the result store's soundness contract on
// the wire: for every golden trace, the cold (miss) response is
// byte-identical to `dcheck -replay`, and the warm (hit) response is
// byte-identical to the cold one — the cache may save a recomputation but
// can never change an answer.
func TestCacheContractGoldenCorpus(t *testing.T) {
	traces, err := filepath.Glob(filepath.Join(goldenDir, "*.dct"))
	if err != nil || len(traces) == 0 {
		t.Fatalf("golden corpus: %v (%d traces)", err, len(traces))
	}
	_, ts, reg := newCachedServer(t, server.Config{PCDBudget: 4},
		store.Config{MemBudget: store.DefaultMemBudget})
	for _, path := range traces {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		want := dcheckReplay(t, path)
		resp, cold := postTrace(t, ts, "name="+path, raw)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s cold: status %d: %s", path, resp.StatusCode, cold)
		}
		if got := resp.Header.Get(server.CacheHeader); got != "miss" {
			t.Errorf("%s cold: %s = %q, want miss", path, server.CacheHeader, got)
		}
		if cold != want {
			t.Errorf("%s cold: served report differs from dcheck -replay\nserved:\n%s\ndcheck:\n%s", path, cold, want)
		}
		resp, warm := postTrace(t, ts, "name="+path, raw)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s warm: status %d: %s", path, resp.StatusCode, warm)
		}
		if got := resp.Header.Get(server.CacheHeader); got != "hit" {
			t.Errorf("%s warm: %s = %q, want hit", path, server.CacheHeader, got)
		}
		if warm != cold {
			t.Errorf("%s: hit bytes differ from miss bytes\nhit:\n%s\nmiss:\n%s", path, warm, cold)
		}
	}
	if hits := reg.Counter(telemetry.StoreHits).Value(); hits != uint64(len(traces)) {
		t.Errorf("store hits = %d, want %d", hits, len(traces))
	}
	if misses := reg.Counter(telemetry.StoreMisses).Value(); misses != uint64(len(traces)) {
		t.Errorf("store misses = %d, want %d", misses, len(traces))
	}
}

// TestCacheDiskTierSurvivesRestart: a result computed by one server
// instance is a hit for the next one sharing the cache directory —
// including for a request under a different display name, which must be
// re-rendered, not replayed verbatim.
func TestCacheDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(goldenDir, "elevator.dct")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	_, ts1, _ := newCachedServer(t, server.Config{}, store.Config{Dir: dir})
	resp, _ := postTrace(t, ts1, "name="+path, raw)
	if resp.StatusCode != http.StatusOK || resp.Header.Get(server.CacheHeader) != "miss" {
		t.Fatalf("first upload: status %d cache %q", resp.StatusCode, resp.Header.Get(server.CacheHeader))
	}

	_, ts2, reg2 := newCachedServer(t, server.Config{}, store.Config{Dir: dir})
	resp, body := postTrace(t, ts2, "name="+path, raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restart upload: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(server.CacheHeader); got != "hit" {
		t.Errorf("restart upload: %s = %q, want hit", server.CacheHeader, got)
	}
	if body != dcheckReplay(t, path) {
		t.Errorf("restarted hit differs from dcheck -replay:\n%s", body)
	}

	// A different display name re-renders around the same cached verdict.
	resp, renamed := postTrace(t, ts2, "name=other", raw)
	if resp.StatusCode != http.StatusOK || resp.Header.Get(server.CacheHeader) != "hit" {
		t.Fatalf("renamed upload: status %d cache %q", resp.StatusCode, resp.Header.Get(server.CacheHeader))
	}
	if !strings.HasPrefix(renamed, "trace other:") {
		t.Errorf("renamed hit kept the old display name:\n%s", renamed)
	}
	if reg2.Counter(telemetry.StoreQuarantined).Value() != 0 {
		t.Error("clean restart quarantined entries")
	}
}

// TestCacheCorruptEntryFailsClosed: a bit-flipped disk entry is served as a
// miss with the correct recomputed bytes, and the corrupt artifact is
// quarantined — never served, never silently deleted.
func TestCacheCorruptEntryFailsClosed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(goldenDir, "elevator.dct")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := dcheckReplay(t, path)

	// Memory tier disabled so the second request must re-read the file.
	_, ts, reg := newCachedServer(t, server.Config{}, store.Config{Dir: dir})
	if resp, _ := postTrace(t, ts, "name="+path, raw); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed upload: status %d", resp.StatusCode)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.dcr"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache dir: %v (%d files)", err, len(files))
	}
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(files[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	resp, body := postTrace(t, ts, "name="+path, raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-corruption upload: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(server.CacheHeader); got != "miss" {
		t.Errorf("corrupt entry served as %q, want miss", got)
	}
	if body != want {
		t.Errorf("post-corruption bytes differ from dcheck -replay:\n%s", body)
	}
	if got := reg.Counter(telemetry.StoreQuarantined).Value(); got != 1 {
		t.Errorf("quarantined = %d, want 1", got)
	}
	qfiles, _ := filepath.Glob(filepath.Join(dir, store.QuarantineDir, "*"))
	if len(qfiles) != 1 {
		t.Errorf("quarantine dir holds %d files, want 1", len(qfiles))
	}
}

// TestCacheCoalescedWaiter drives the singleflight path deterministically:
// the test claims leadership of a key before the HTTP request arrives, so
// the request must join the flight, wait, and serve the leader's entry as
// "coalesced" — rendered around its own display name.
func TestCacheCoalescedWaiter(t *testing.T) {
	path := filepath.Join(goldenDir, "elevator.dct")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := trace.ReadHeader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	s, ts, reg := newCachedServer(t, server.Config{},
		store.Config{MemBudget: store.DefaultMemBudget})
	cache := s.Cache()

	ckey := store.TraceKey(hdr, store.BodyDigest(raw), "dc-single")
	if e, f, leader := cache.Lookup(ckey); e != nil || !leader {
		t.Fatalf("test could not claim leadership: entry=%v leader=%v flight=%v", e, leader, f != nil)
	} else {
		entry := &store.Entry{
			Program:    hdr.Program.Name,
			Events:     12345,
			Violations: 2,
			Blamed:     []string{"alpha", "beta"},
		}
		bodyCh := make(chan string, 1)
		respCh := make(chan *http.Response, 1)
		go func() {
			resp, err := http.Post(ts.URL+"/check?name=waiter", "application/octet-stream", bytes.NewReader(raw))
			if err != nil {
				respCh <- nil
				bodyCh <- err.Error()
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			respCh <- resp
			bodyCh <- string(b)
		}()
		// The request has joined once the coalesced counter ticks.
		deadline := time.Now().Add(5 * time.Second)
		for reg.Counter(telemetry.StoreCoalesced).Value() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("request never joined the flight")
			}
			time.Sleep(5 * time.Millisecond)
		}
		cache.Put(ckey, entry)
		cache.Finish(ckey, f, entry, nil)

		resp, body := <-respCh, <-bodyCh
		if resp == nil {
			t.Fatalf("waiter request failed: %s", body)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("waiter: status %d: %s", resp.StatusCode, body)
		}
		if got := resp.Header.Get(server.CacheHeader); got != "coalesced" {
			t.Errorf("waiter: %s = %q, want coalesced", server.CacheHeader, got)
		}
		want := core.ReplayReportFrom("waiter", entry.Program, ckey.Seed, entry.Events,
			ckey.Source, entry.Violations, entry.Blamed)
		if body != want {
			t.Errorf("waiter bytes:\n%s\nwant:\n%s", body, want)
		}
	}
}

// TestCacheConcurrentIdenticalUploads: a burst of identical uploads against
// a cold cache serves identical bytes everywhere, runs the checker at least
// once but classifies every request as exactly one of miss, hit, or
// coalesced.
func TestCacheConcurrentIdenticalUploads(t *testing.T) {
	path := filepath.Join(goldenDir, "sccring.dct")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := dcheckReplay(t, path)
	_, ts, reg := newCachedServer(t,
		server.Config{PCDBudget: 3, MaxConcurrent: 16, MaxQueue: 16},
		store.Config{MemBudget: store.DefaultMemBudget})

	const n = 12
	var wg sync.WaitGroup
	states := make([]string, n)
	bodies := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/check?name="+path, "application/octet-stream", bytes.NewReader(raw))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			bodies[i] = string(b)
			states[i] = resp.Header.Get(server.CacheHeader)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("upload %d: %v", i, errs[i])
		}
		if bodies[i] != want {
			t.Errorf("upload %d (%s) served wrong bytes:\n%s", i, states[i], bodies[i])
		}
		switch states[i] {
		case "miss", "hit", "coalesced":
		default:
			t.Errorf("upload %d: unclassified cache state %q", i, states[i])
		}
	}
	hits := reg.Counter(telemetry.StoreHits).Value()
	misses := reg.Counter(telemetry.StoreMisses).Value()
	coalesced := reg.Counter(telemetry.StoreCoalesced).Value()
	if misses < 1 {
		t.Error("no request ran the checker")
	}
	if hits+misses+coalesced != n {
		t.Errorf("hits %d + misses %d + coalesced %d != %d requests", hits, misses, coalesced, n)
	}
}

// TestRetryAfterOnDrainingAndQueueFull pins the backoff contract on both
// rejection paths: a drained server's 503 carries Retry-After just like the
// admission queue's 429 — clients can treat both uniformly.
func TestRetryAfterOnDrainingAndQueueFull(t *testing.T) {
	t.Run("draining", func(t *testing.T) {
		s, ts := newTestServer(t, server.Config{DrainTimeout: 7 * time.Second})
		s.StartDrain()
		resp, _ := postWorkload(t, ts, "name=pmd9")
		if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get(server.ErrorKindHeader) != "draining" {
			t.Fatalf("status %d kind %q", resp.StatusCode, resp.Header.Get(server.ErrorKindHeader))
		}
		if got := resp.Header.Get("Retry-After"); got != "7" {
			t.Errorf("draining Retry-After = %q, want 7", got)
		}
		// The trace path drains with the same hint.
		raw, err := os.ReadFile(filepath.Join(goldenDir, "elevator.dct"))
		if err != nil {
			t.Fatal(err)
		}
		resp, _ = postTrace(t, ts, "", raw)
		if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") != "7" {
			t.Errorf("trace upload during drain: status %d Retry-After %q",
				resp.StatusCode, resp.Header.Get("Retry-After"))
		}
	})

	t.Run("queue-full", func(t *testing.T) {
		_, ts := newTestServer(t, server.Config{
			MaxConcurrent: 1,
			MaxQueue:      1,
			AllowFaults:   true,
		})
		stall := "name=pmd9&stall-at-access=1&stall-ms=700"
		done := make(chan struct{}, 2)
		for i := 0; i < 2; i++ {
			go func() {
				resp, err := http.Post(ts.URL+"/check/workload?"+stall, "", nil)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				done <- struct{}{}
			}()
			time.Sleep(150 * time.Millisecond)
		}
		resp, _ := postWorkload(t, ts, stall)
		if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get(server.ErrorKindHeader) != "queue-full" {
			t.Fatalf("status %d kind %q", resp.StatusCode, resp.Header.Get(server.ErrorKindHeader))
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("queue-full response missing Retry-After")
		}
		<-done
		<-done
	})
}

// TestChaosCacheFailClosed hammers a disk-backed cache with concurrent
// identical uploads while a saboteur continuously corrupts the cache files
// under it. Every 200 must carry the reference bytes regardless — corrupt
// entries quarantine and recompute, they never leak — and the server drains
// cleanly afterwards.
func TestChaosCacheFailClosed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(goldenDir, "elevator.dct")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := dcheckReplay(t, path)
	corrupt := bytes.Clone(raw)
	corrupt[len(corrupt)/2] ^= 0xff

	// Disk tier only: every hit re-reads (and re-verifies) the file the
	// saboteur is attacking.
	s, ts, reg := newCachedServer(t, server.Config{
		MaxConcurrent: 4,
		MaxQueue:      4,
		PCDBudget:     4,
		DrainTimeout:  5 * time.Second,
	}, store.Config{Dir: dir})

	const loadFor = 1200 * time.Millisecond
	deadline := time.Now().Add(loadFor)
	var (
		wg        sync.WaitGroup
		healthyOK atomic.Uint64
	)
	fail := func(format string, args ...any) { t.Errorf(format, args...) }

	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				resp, err := http.Post(ts.URL+"/check?name="+path, "application/octet-stream", bytes.NewReader(raw))
				if err != nil {
					fail("healthy upload: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					healthyOK.Add(1)
					if string(body) != want {
						fail("upload (%s) served wrong bytes:\n%s",
							resp.Header.Get(server.CacheHeader), body)
						return
					}
				case http.StatusTooManyRequests:
				default:
					fail("upload: unexpected status %d (%s)", resp.StatusCode,
						resp.Header.Get(server.ErrorKindHeader))
					return
				}
			}
		}()
	}

	// The saboteur: keep flipping a byte in every cache file.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			files, _ := filepath.Glob(filepath.Join(dir, "*.dcr"))
			for _, f := range files {
				if b, err := os.ReadFile(f); err == nil && len(b) > 0 {
					b[len(b)/2] ^= 0x01
					os.WriteFile(f, b, 0o644)
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Corrupt trace uploads stay classified even with the cache in front.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			resp, err := http.Post(ts.URL+"/check", "application/octet-stream", bytes.NewReader(corrupt))
			if err != nil {
				fail("corrupt upload: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusBadRequest, http.StatusTooManyRequests:
			default:
				fail("corrupt upload: unexpected status %d (%s)", resp.StatusCode,
					resp.Header.Get(server.ErrorKindHeader))
				return
			}
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}
	if healthyOK.Load() == 0 {
		t.Error("no healthy upload was served during the chaos load")
	}
	if reg.Counter(telemetry.StoreQuarantined).Value() == 0 {
		t.Error("the saboteur's corruption was never quarantined")
	}

	s.StartDrain()
	if !s.WaitDrain(context.Background()) {
		t.Error("drain after chaos load was not clean")
	}
}
