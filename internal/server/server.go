// Package server runs the checker as a long-lived service: dcserve accepts
// .dct trace uploads and named built-in workloads over HTTP and returns
// check reports, engineered for sustained availability rather than one-shot
// runs.
//
// The service composes the existing layers end to end:
//
//   - admission control: a bounded queue in front of a fixed number of
//     checking slots; when the queue is full the request is shed with 429
//     and a Retry-After hint instead of piling up goroutines;
//   - per-request deadlines: every check runs under supervise.Trial with the
//     request timeout as its trial budget, threaded into core via the
//     existing context plumbing;
//   - circuit breaking: repeated failures of the same key (a workload, a
//     trace's program+spec identity) with the same supervise.PanicDigest
//     open that key's circuit — the poisoned input is quarantined with 503
//     while healthy traffic keeps flowing;
//   - concurrency governance: a global PCD worker budget shared across
//     in-flight requests; a request gets concurrent SCC replay only when
//     budget is available, and reports are byte-identical either way (the
//     PR 4 pool's determinism contract);
//   - graceful drain: StartDrain stops admission (readyz flips to 503, new
//     checks are rejected), WaitDrain finishes in-flight work within the
//     drain deadline and cancels whatever remains;
//   - result caching: with a store.Store configured, trace checks are
//     keyed by content address (DESIGN.md §12); hits bypass the admission
//     queue entirely, concurrent identical uploads coalesce onto one
//     checker run, and every 200 carries X-DC-Cache: hit|miss|coalesced.
//
// A report served for a trace is byte-identical to `dcheck -replay` on the
// same file at any worker budget, cached or cold: hit and miss paths both
// render through core.ReplayReportFrom, and a corrupt cache entry is a
// quarantined miss, never an answer.
package server

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"time"

	"doublechecker/internal/obs"
	"doublechecker/internal/store"
	"doublechecker/internal/supervise"
	"doublechecker/internal/telemetry"
)

// Config tunes the service. Zero fields take the documented defaults.
type Config struct {
	// MaxConcurrent is how many checks may run at once (default:
	// GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue is how many admitted requests may wait for a slot before new
	// ones are shed with 429 (default DefaultMaxQueue).
	MaxQueue int
	// RequestTimeout is the per-check wall-clock budget, enforced by
	// supervise.Trial (default DefaultRequestTimeout; 0 keeps the default —
	// an always-on service never runs unbounded checks).
	RequestTimeout time.Duration
	// DrainTimeout bounds WaitDrain: in-flight checks get this long to
	// finish before they are canceled (default DefaultDrainTimeout).
	DrainTimeout time.Duration
	// MaxBodyBytes bounds an uploaded trace body; larger uploads get 413
	// (default DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// PCDBudget is the global number of PCD pool workers shared across all
	// in-flight requests (default DefaultPCDBudget). 0 keeps the default;
	// negative disables pooled replay entirely.
	PCDBudget int
	// PCDPerRequest is how many pool workers one request asks for (default
	// DefaultPCDPerRequest). The grant is whatever the budget has left;
	// under 2, the request replays serially — same bytes out either way.
	PCDPerRequest int
	// Retries is how many extra attempts a transient failure earns, and
	// RetryBackoff the doubling pause between them (defaults 1 and 50ms).
	Retries      int
	RetryBackoff time.Duration
	// BreakerThreshold and BreakerCooldown tune the circuit breaker
	// (defaults supervise.DefaultBreakerThreshold / 30s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// WorkloadScale is the scale factor for named built-in workloads
	// (default 0.2).
	WorkloadScale float64
	// AllowFaults enables the deterministic fault-injection query
	// parameters on workload checks (panic-at-access, stall-at-access, ...)
	// — the chaos-testing seam. Never enable it on a real deployment.
	AllowFaults bool
	// Telemetry receives the server.* metrics and every check's pipeline
	// metrics; nil creates a private registry (exposed at /metrics either
	// way).
	Telemetry *telemetry.Registry
	// Cache is the content-addressed result store. When set, trace checks
	// are keyed by (trace identity, raw-byte digest, analysis): hits are
	// answered straight from the store — bypassing the admission queue —
	// and concurrent identical uploads coalesce onto one checker run. Every
	// 200 carries X-DC-Cache: hit|miss|coalesced. nil disables caching.
	Cache *store.Store
	// Logger receives the structured request log (one line per check
	// request) and lifecycle diagnostics. nil keeps the server silent —
	// every log call is nil-safe.
	Logger *obs.Logger
	// Recorder is the flight recorder shared across the pipeline: span
	// ends, log lines, panic quarantines, and store quarantines all land
	// in its ring, served at /debug/flightrecorder and snapshotted into
	// quarantine records. nil creates a private recorder — the endpoint
	// works either way. Pass the same recorder to store.Open so cache
	// quarantines share the ring.
	Recorder *obs.FlightRecorder
	// TraceRetention is how many finished request traces stay fetchable
	// at /debug/traces/<id> (default DefaultTraceRetention).
	TraceRetention int
}

// Service defaults.
const (
	DefaultMaxQueue       = 64
	DefaultRequestTimeout = 60 * time.Second
	DefaultDrainTimeout   = 10 * time.Second
	DefaultMaxBodyBytes   = 32 << 20
	DefaultPCDBudget      = 8
	DefaultPCDPerRequest  = 4
	DefaultRetryBackoff   = 50 * time.Millisecond
	DefaultWorkloadScale  = 0.2
)

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = DefaultMaxQueue
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.PCDBudget == 0 {
		c.PCDBudget = DefaultPCDBudget
	}
	if c.PCDBudget < 0 {
		c.PCDBudget = 0
	}
	if c.PCDPerRequest <= 0 {
		c.PCDPerRequest = DefaultPCDPerRequest
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 1
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	if c.WorkloadScale <= 0 {
		c.WorkloadScale = DefaultWorkloadScale
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.NewRegistry()
	}
	if c.Recorder == nil {
		c.Recorder = obs.NewFlightRecorder(0)
	}
	if c.TraceRetention <= 0 {
		c.TraceRetention = DefaultTraceRetention
	}
	return c
}

// Server is the always-on checking service. Create one with New, mount
// Handler on an http.Server, and call StartDrain/WaitDrain on SIGTERM.
type Server struct {
	cfg     Config
	reg     *telemetry.Registry
	breaker *supervise.Breaker
	mux     *http.ServeMux

	slots   chan struct{} // checking slots (admission's running half)
	waiting counterGauge  // admission queue depth
	pcd     *workerBudget
	cache   *store.Store // nil: caching disabled

	log     *obs.Logger         // nil-safe structured log
	rec     *obs.FlightRecorder // shared flight recorder ring
	traces  *traceRing          // retained request traces
	handler http.Handler        // mux wrapped in the request-log middleware

	mu        sync.Mutex
	draining  bool
	drainCh   chan struct{} // closed when drain starts
	inflight  sync.WaitGroup
	inflightN int // gauge mirror of checks running now

	// inflightCtx parents every admitted check; cancelInflight is drain's
	// last resort when the deadline expires.
	inflightCtx    context.Context
	cancelInflight context.CancelFunc
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg: cfg,
		reg: cfg.Telemetry,
		breaker: supervise.NewBreaker(supervise.BreakerConfig{
			Threshold: cfg.BreakerThreshold,
			Cooldown:  cfg.BreakerCooldown,
		}),
		slots:          make(chan struct{}, cfg.MaxConcurrent),
		pcd:            newWorkerBudget(cfg.PCDBudget, cfg.Telemetry.Gauge(telemetry.ServerPCDBudgetInUse)),
		cache:          cfg.Cache,
		log:            cfg.Logger,
		rec:            cfg.Recorder,
		traces:         newTraceRing(cfg.TraceRetention),
		drainCh:        make(chan struct{}),
		inflightCtx:    ctx,
		cancelInflight: cancel,
	}
	s.waiting.gauge = cfg.Telemetry.Gauge(telemetry.ServerQueueDepth)
	s.mux = s.routes()
	s.handler = s.withObs(s.mux)
	return s
}

// Registry returns the server's telemetry registry (the one /metrics
// serves).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Breaker returns the server's circuit breaker, for health reporting and
// tests.
func (s *Server) Breaker() *supervise.Breaker { return s.breaker }

// Cache returns the server's result store (nil when caching is disabled).
func (s *Server) Cache() *store.Store { return s.cache }

// Handler returns the service's HTTP handler: the check endpoints, health
// probes, the telemetry mux (/metrics, /debug/vars, /debug/pprof), and
// the observability endpoints (/debug/traces, /debug/flightrecorder,
// /debug/bundle), all wrapped in the request-log middleware.
func (s *Server) Handler() http.Handler { return s.handler }

// FlightRecorder returns the server's shared flight recorder ring.
func (s *Server) FlightRecorder() *obs.FlightRecorder { return s.rec }

// Draining reports whether drain has started.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// StartDrain stops admission: readyz flips to 503, queued requests are
// released with 503, and new checks are rejected. Idempotent. In-flight
// checks keep running until WaitDrain's deadline.
func (s *Server) StartDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	close(s.drainCh)
	s.reg.Gauge(telemetry.ServerDraining).Set(1)
}

// WaitDrain blocks until every in-flight check finished, the configured
// drain deadline passed, or ctx was done. On deadline or ctx expiry the
// in-flight context is canceled — checks unwind promptly through the
// existing context plumbing — and WaitDrain waits for them to return.
// It reports whether the drain was clean (nothing had to be canceled).
func (s *Server) WaitDrain(ctx context.Context) bool {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	t := time.NewTimer(s.cfg.DrainTimeout)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-ctx.Done():
	case <-t.C:
	}
	s.cancelInflight()
	<-done
	return false
}

// admission outcomes.
type admitResult int

const (
	admitOK admitResult = iota
	admitShed
	admitDraining
	admitCanceled
)

// admitVerdictName renders an admission verdict for span attributes and
// log lines.
func admitVerdictName(v admitResult) string {
	switch v {
	case admitOK:
		return "ok"
	case admitShed:
		return "shed"
	case admitDraining:
		return "draining"
	default:
		return "canceled"
	}
}

// admit acquires a checking slot, queueing up to MaxQueue requests. The
// release closure must be called exactly once when the check finishes.
func (s *Server) admit(ctx context.Context) (release func(), verdict admitResult) {
	// Fast path: a free slot, no queueing.
	if release, ok := s.tryAcquire(); ok {
		return release, admitOK
	}
	// Queue — bounded: beyond MaxQueue the request is shed immediately.
	if int(s.waiting.inc()) > s.cfg.MaxQueue {
		s.waiting.dec()
		return nil, admitShed
	}
	defer s.waiting.dec()
	select {
	case s.slots <- struct{}{}:
		if release, ok := s.registerInflight(); ok {
			return release, admitOK
		}
		<-s.slots
		return nil, admitDraining
	case <-s.drainCh:
		return nil, admitDraining
	case <-ctx.Done():
		return nil, admitCanceled
	}
}

// tryAcquire takes a free slot without queueing.
func (s *Server) tryAcquire() (release func(), ok bool) {
	select {
	case s.slots <- struct{}{}:
	default:
		return nil, false
	}
	if release, ok := s.registerInflight(); ok {
		return release, true
	}
	<-s.slots
	return nil, false
}

// registerInflight adds the caller to the drain-tracked in-flight set; it
// fails when drain has already started (the slot must be returned).
func (s *Server) registerInflight() (release func(), ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false
	}
	s.inflight.Add(1)
	s.inflightN++
	g := s.reg.Gauge(telemetry.ServerInFlight)
	g.Set(float64(s.inflightN))
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			s.inflightN--
			g.Set(float64(s.inflightN))
			s.mu.Unlock()
			<-s.slots
			s.inflight.Done()
		})
	}, true
}

// counterGauge is an int64 counter mirrored into a telemetry gauge.
type counterGauge struct {
	mu    sync.Mutex
	n     int64
	gauge *telemetry.Gauge
}

func (c *counterGauge) inc() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	if c.gauge != nil {
		c.gauge.Set(float64(c.n))
	}
	return c.n
}

func (c *counterGauge) dec() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n--
	if c.gauge != nil {
		c.gauge.Set(float64(c.n))
	}
}

// workerBudget is the global PCD pool budget shared by all in-flight
// requests: a request is granted up to `want` workers if at least two are
// free (a pool under two workers is just a slower serial path), and returns
// them when its check completes. Reports are byte-identical at any grant —
// the pool's determinism contract — so the budget trades only latency,
// never answers.
type workerBudget struct {
	mu    sync.Mutex
	avail int
	total int
	gauge *telemetry.Gauge
}

func newWorkerBudget(total int, g *telemetry.Gauge) *workerBudget {
	return &workerBudget{avail: total, total: total, gauge: g}
}

// acquire grants min(want, available) workers, or 0 when fewer than two are
// free. Callers pass the grant as Config.PCDWorkers (0 selects serial
// replay) and must release it afterwards.
func (b *workerBudget) acquire(want int) int {
	if want < 2 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.avail < 2 {
		return 0
	}
	n := want
	if n > b.avail {
		n = b.avail
	}
	b.avail -= n
	if b.gauge != nil {
		b.gauge.Set(float64(b.total - b.avail))
	}
	return n
}

func (b *workerBudget) release(n int) {
	if n == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.avail += n
	if b.gauge != nil {
		b.gauge.Set(float64(b.total - b.avail))
	}
}
