package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"doublechecker/internal/obs"
	"doublechecker/internal/store"
	"doublechecker/internal/telemetry"
)

// wellFormedSpans asserts the span-tree invariants every request trace must
// satisfy: unique span IDs, every non-root parent present and started no
// later than its child, every ended span with End >= Start, and — because a
// served response means the request finished — no span left open.
func wellFormedSpans(t *testing.T, traceID string, spans []obs.SpanRecord) {
	t.Helper()
	if len(spans) == 0 {
		t.Errorf("trace %s: no spans", traceID)
		return
	}
	byID := make(map[uint64]obs.SpanRecord, len(spans))
	for _, sp := range spans {
		if _, dup := byID[sp.ID]; dup {
			t.Errorf("trace %s: duplicate span ID %d", traceID, sp.ID)
		}
		byID[sp.ID] = sp
	}
	for _, sp := range spans {
		if sp.Parent != 0 {
			parent, ok := byID[sp.Parent]
			if !ok {
				t.Errorf("trace %s: span %d %q has unknown parent %d", traceID, sp.ID, sp.Name, sp.Parent)
				continue
			}
			if parent.Start.After(sp.Start) {
				t.Errorf("trace %s: span %d %q starts before its parent %q", traceID, sp.ID, sp.Name, parent.Name)
			}
		}
		if sp.End.IsZero() {
			t.Errorf("trace %s: span %d %q left open", traceID, sp.ID, sp.Name)
		} else if sp.End.Before(sp.Start) {
			t.Errorf("trace %s: span %d %q ends before it starts", traceID, sp.ID, sp.Name)
		}
	}
}

// spanNames returns the set of span names in a snapshot, with worker-indexed
// names collapsed onto their prefix.
func spanNames(spans []obs.SpanRecord) map[string]int {
	names := make(map[string]int)
	for _, sp := range spans {
		name := sp.Name
		if strings.HasPrefix(name, telemetry.SpanPCDPoolWorker) {
			name = telemetry.SpanPCDPoolWorker
		}
		names[name]++
	}
	return names
}

// TestConcurrentCheckSpanTreesWellFormed is the observability contract under
// contention (run it with -race): many concurrent identical uploads — one
// singleflight leader driving PCD pool workers, the rest coalesced waiters —
// each get their own trace, every trace is a well-formed closed span tree,
// and the spans tell the true story: the leader's trace spans admission →
// supervise → core run → per-worker PCD replay → store put, while every
// follower either coalesced or hit the cache.
func TestConcurrentCheckSpanTreesWellFormed(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("../../testdata/traces", "sccring.dct"))
	if err != nil {
		t.Fatal(err)
	}
	cache, err := store.Open(store.Config{MemBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Cache: cache, MaxConcurrent: 4, PCDBudget: 4, PCDPerRequest: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	var wg sync.WaitGroup
	traceIDs := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/check?pcd-workers=2", "application/octet-stream", bytes.NewReader(raw))
			if err != nil {
				t.Errorf("upload %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("upload %d: status %d", i, resp.StatusCode)
				return
			}
			traceIDs[i] = resp.Header.Get(TraceIDHeader)
		}(i)
	}
	wg.Wait()

	leaders := 0
	for i, id := range traceIDs {
		if id == "" {
			t.Fatalf("upload %d: no %s header", i, TraceIDHeader)
		}
		tr := s.traces.get(id)
		if tr == nil {
			t.Fatalf("upload %d: trace %s not retained", i, id)
		}
		spans := tr.Snapshot()
		wellFormedSpans(t, id, spans)
		if tr.Dropped() != 0 {
			t.Errorf("trace %s dropped %d spans", id, tr.Dropped())
		}
		names := spanNames(spans)
		if names[telemetry.SpanStoreGet] == 0 {
			t.Errorf("trace %s: no %s span", id, telemetry.SpanStoreGet)
		}
		if names[telemetry.SpanLeadCheck] > 0 {
			leaders++
			// The leader's trace must span the whole pipeline, down to the
			// per-worker PCD replays and the result-store insert.
			for _, want := range []string{
				telemetry.SpanQueueWait, telemetry.SpanTrial, telemetry.SpanTrialAttempt,
				telemetry.SpanCoreRun, telemetry.SpanExecute, telemetry.SpanICDSCC,
				telemetry.SpanPCDHandoff, telemetry.SpanPCDPoolWorker, telemetry.SpanStorePut,
			} {
				if names[want] == 0 {
					t.Errorf("leader trace %s: no %s span (have %v)", id, want, names)
				}
			}
		} else if names[telemetry.SpanCoalesceWait] == 0 && names[telemetry.SpanStoreGet] > 0 {
			// Not the leader: either it blocked on the leader's flight or it
			// arrived late enough for a plain cache hit.
			hit := false
			for _, sp := range spans {
				for _, a := range sp.Attrs {
					if sp.Name == telemetry.SpanStoreGet && a.Key == "state" && a.Val == "hit" {
						hit = true
					}
				}
			}
			if !hit {
				t.Errorf("follower trace %s neither coalesced nor hit (names %v)", id, names)
			}
		}
	}
	if leaders != 1 {
		t.Errorf("%d leader traces, want exactly 1", leaders)
	}
}

// TestDebugObservabilityEndpoints exercises the debug surface end to end:
// a checked request's trace is fetchable as valid Chrome trace-event JSON,
// unknown IDs 404 with the taxonomy kind, the retention index lists the
// trace, the flight recorder serves its ring, and the bundle has all four
// sections.
func TestDebugObservabilityEndpoints(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("../../testdata/traces", "elevator.dct"))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/check", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check status %d", resp.StatusCode)
	}
	id := resp.Header.Get(TraceIDHeader)
	if id == "" {
		t.Fatalf("no %s header", TraceIDHeader)
	}

	fetch := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	// The trace itself: valid Chrome trace-event JSON naming the pipeline.
	code, body := fetch("/debug/traces/" + id)
	if code != http.StatusOK {
		t.Fatalf("trace fetch status %d: %s", code, body)
	}
	var chrome struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	seen := make(map[string]bool)
	for _, ev := range chrome.TraceEvents {
		seen[ev.Name] = true
	}
	for _, want := range []string{"check.trace", telemetry.SpanCoreRun, telemetry.SpanTrial} {
		if !seen[want] {
			t.Errorf("exported trace missing %q event", want)
		}
	}

	// Unknown IDs are a taxonomy 404, and the index lists the real one.
	if code, _ := fetch("/debug/traces/no-such-trace"); code != http.StatusNotFound {
		t.Errorf("unknown trace fetch status %d, want 404", code)
	}
	code, body = fetch("/debug/traces")
	if code != http.StatusOK || !strings.Contains(string(body), id) {
		t.Errorf("trace index (status %d) does not list %s: %s", code, id, body)
	}

	// The flight recorder holds the request's span history.
	code, body = fetch("/debug/flightrecorder")
	if code != http.StatusOK {
		t.Fatalf("flightrecorder status %d", code)
	}
	var flight struct {
		Total  uint64      `json:"total_events"`
		Events []obs.Event `json:"events"`
	}
	if err := json.Unmarshal(body, &flight); err != nil {
		t.Fatalf("flightrecorder is not valid JSON: %v", err)
	}
	if flight.Total == 0 || len(flight.Events) == 0 {
		t.Errorf("flight recorder empty after a checked request: %s", body)
	}

	// The bundle carries all four sections.
	code, body = fetch("/debug/bundle")
	if code != http.StatusOK {
		t.Fatalf("bundle status %d", code)
	}
	var bundle map[string]json.RawMessage
	if err := json.Unmarshal(body, &bundle); err != nil {
		t.Fatalf("bundle is not valid JSON: %v", err)
	}
	for _, key := range []string{"telemetry", "flight_recorder", "retained_traces", "goroutines"} {
		if _, ok := bundle[key]; !ok {
			t.Errorf("bundle missing %q section", key)
		}
	}
}

// TestTraceRetentionBounded: the ring keeps only the configured number of
// traces, evicting oldest-first, so an always-on service cannot grow
// without bound.
func TestTraceRetentionBounded(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("../../testdata/traces", "elevator.dct"))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{TraceRetention: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/check", "application/octet-stream", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		ids = append(ids, resp.Header.Get(TraceIDHeader))
	}
	retained := s.traces.ids()
	if len(retained) != 2 {
		t.Fatalf("retained %d traces, want 2: %v", len(retained), retained)
	}
	if s.traces.get(ids[0]) != nil {
		t.Error("oldest trace survived eviction")
	}
	for _, id := range ids[1:] {
		if s.traces.get(id) == nil {
			t.Errorf("recent trace %s evicted", id)
		}
	}
}

// TestRequestLogLine: the middleware emits one structured line per check
// request carrying the status, the cache disposition, and the trace ID —
// and probe endpoints stay out of the log.
func TestRequestLogLine(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("../../testdata/traces", "elevator.dct"))
	if err != nil {
		t.Fatal(err)
	}
	var buf syncBuffer
	cache, err := store.Open(store.Config{MemBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Logger: obs.NewLogger(&buf, obs.ParseLevel("info"), nil), Cache: cache})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func() *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/check", "application/octet-stream", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	first := post()
	second := post()
	if resp, err := http.Get(ts.URL + "/healthz"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	log := buf.String()
	lines := strings.Split(strings.TrimSpace(log), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 request log lines, got %d:\n%s", len(lines), log)
	}
	for i, want := range []struct{ resp *http.Response }{{first}, {second}} {
		for _, frag := range []string{
			"msg=request", "method=POST", "path=/check", "status=200",
			"cache=" + want.resp.Header.Get(CacheHeader),
			"trace_id=" + want.resp.Header.Get(TraceIDHeader),
		} {
			if !strings.Contains(lines[i], frag) {
				t.Errorf("request log line %d missing %q:\n%s", i, frag, lines[i])
			}
		}
	}
	if !strings.Contains(lines[0], "cache=miss") || !strings.Contains(lines[1], "cache=hit") {
		t.Errorf("cache dispositions not logged miss-then-hit:\n%s", log)
	}
	if strings.Contains(log, "healthz") {
		t.Errorf("probe endpoint leaked into the request log:\n%s", log)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for log capture.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
