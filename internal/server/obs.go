// Server-side observability: the per-request trace ring, the request-log
// middleware, and the debug endpoints that expose traces, the flight
// recorder, and the one-stop diagnostic bundle.
//
// Every check request gets its own obs.Trace; the root span is threaded
// through the request context so the whole pipeline — admission wait,
// singleflight, supervise attempts, core run, checker phases, per-worker
// PCD replay, store traffic — nests under it. The trace ID rides back on
// the X-DC-Trace-Id response header, and the finished trace stays
// fetchable at /debug/traces/<id> (Chrome trace-event JSON, loadable in
// Perfetto) until the bounded retention ring evicts it.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"doublechecker/internal/obs"
)

// TraceIDHeader carries the request's trace ID on every traced response —
// success or failure — so a client can always fetch the timeline behind
// the answer it got.
const TraceIDHeader = "X-DC-Trace-Id"

// DefaultTraceRetention is how many finished request traces the server
// keeps fetchable at /debug/traces/<id> before evicting the oldest.
const DefaultTraceRetention = 128

// traceRing retains the most recent request traces by ID, bounded so an
// always-on service cannot grow without limit.
type traceRing struct {
	mu    sync.Mutex
	byID  map[string]*obs.Trace
	order []string // insertion order; front is oldest
	cap   int
}

func newTraceRing(capacity int) *traceRing {
	if capacity <= 0 {
		capacity = DefaultTraceRetention
	}
	return &traceRing{byID: make(map[string]*obs.Trace), cap: capacity}
}

func (tr *traceRing) add(t *obs.Trace) {
	if t == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, dup := tr.byID[t.ID()]; dup {
		return
	}
	tr.byID[t.ID()] = t
	tr.order = append(tr.order, t.ID())
	for len(tr.order) > tr.cap {
		delete(tr.byID, tr.order[0])
		tr.order = tr.order[1:]
	}
}

func (tr *traceRing) get(id string) *obs.Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.byID[id]
}

func (tr *traceRing) ids() []string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]string, len(tr.order))
	copy(out, tr.order)
	return out
}

// reqScope carries per-request observability state between the middleware
// and the handlers it wraps — the trace (once a handler starts one) and
// the measured admission queue wait for the request log line.
type reqScope struct {
	mu        sync.Mutex
	trace     *obs.Trace
	queueWait time.Duration
}

type scopeKey struct{}

func scopeFrom(ctx context.Context) *reqScope {
	sc, _ := ctx.Value(scopeKey{}).(*reqScope)
	return sc
}

func (sc *reqScope) setTrace(t *obs.Trace) {
	if sc == nil {
		return
	}
	sc.mu.Lock()
	sc.trace = t
	sc.mu.Unlock()
}

func (sc *reqScope) setQueueWait(d time.Duration) {
	if sc == nil {
		return
	}
	sc.mu.Lock()
	sc.queueWait = d
	sc.mu.Unlock()
}

func (sc *reqScope) snapshot() (traceID string, queueWait time.Duration) {
	if sc == nil {
		return "", 0
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.trace != nil {
		traceID = sc.trace.ID()
	}
	return traceID, sc.queueWait
}

// statusWriter records the status code and whether anything was written,
// so the request log can report what actually went out on the wire.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

// withObs wraps the route mux with the request-scoped observability
// envelope: a reqScope in the context, a status-recording writer, and —
// for the check endpoints — one structured log line per request carrying
// method, path, status, taxonomy error kind, cache disposition, queue
// wait, latency, and trace ID.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sc := &reqScope{}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), scopeKey{}, sc)))
		if !strings.HasPrefix(r.URL.Path, "/check") {
			return // probes and debug endpoints stay out of the request log
		}
		traceID, queueWait := sc.snapshot()
		args := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"dur_ms", time.Since(start).Milliseconds(),
			"queue_wait_ms", queueWait.Milliseconds(),
		}
		if kind := sw.Header().Get(ErrorKindHeader); kind != "" {
			args = append(args, "error", kind)
		}
		if cache := sw.Header().Get(CacheHeader); cache != "" {
			args = append(args, "cache", cache)
		}
		if traceID != "" {
			args = append(args, "trace_id", traceID)
		}
		if sw.status >= 500 {
			s.log.Warn("request", args...)
		} else {
			s.log.Info("request", args...)
		}
	})
}

// beginTrace starts the request's trace, retains it for /debug/traces,
// stamps the response header, and rebases the request context onto the
// root span so every downstream StartSpan nests under it. The returned
// request must replace the handler's — its context carries the span.
func (s *Server) beginTrace(w http.ResponseWriter, r *http.Request, name string) (*obs.Trace, *http.Request) {
	tr := obs.NewTrace(obs.TraceConfig{Name: name, Recorder: s.rec})
	s.traces.add(tr)
	w.Header().Set(TraceIDHeader, tr.ID())
	scopeFrom(r.Context()).setTrace(tr)
	ctx := obs.ContextWithSpan(r.Context(), tr.Root())
	return tr, r.WithContext(ctx)
}

// handleDebugTrace serves one retained trace as Chrome trace-event JSON:
// GET /debug/traces/<id>. Load the body in Perfetto (ui.perfetto.dev) or
// chrome://tracing to see the request timeline.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr := s.traces.get(id)
	if tr == nil {
		s.writeErr(w, http.StatusNotFound, "unknown-trace",
			fmt.Sprintf("no retained trace %q (ring keeps the last %d)", id, s.traces.cap), 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(tr.Chrome())
}

// handleDebugTraces lists the retained trace IDs, oldest first — the
// index for /debug/traces/<id>.
func (s *Server) handleDebugTraces(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	out, _ := json.Marshal(struct {
		Retained []string `json:"retained"`
	}{Retained: s.traces.ids()})
	w.Write(out)
}

// handleFlightRecorder serves the flight recorder's current ring — the
// last N span/log/panic/quarantine events — as JSON.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.rec.JSON())
}

// handleDebugBundle serves the one-stop diagnostic bundle: the full
// telemetry snapshot, the flight recorder ring, the retained trace IDs,
// and a goroutine dump — everything a bug report needs, in one GET.
func (s *Server) handleDebugBundle(w http.ResponseWriter, _ *http.Request) {
	var goroutines strings.Builder
	if p := pprof.Lookup("goroutine"); p != nil {
		p.WriteTo(&goroutines, 1)
	}
	bundle := struct {
		Telemetry  json.RawMessage `json:"telemetry"`
		Flight     json.RawMessage `json:"flight_recorder"`
		Traces     []string        `json:"retained_traces"`
		Goroutines string          `json:"goroutines"`
	}{
		Telemetry:  json.RawMessage(s.reg.Snapshot().JSON()),
		Flight:     json.RawMessage(s.rec.JSON()),
		Traces:     s.traces.ids(),
		Goroutines: goroutines.String(),
	}
	out, err := json.MarshalIndent(bundle, "", "  ")
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, "check-failed", err.Error(), 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}
