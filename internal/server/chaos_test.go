package server_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"doublechecker/internal/server"
	"doublechecker/internal/supervise"
)

// TestChaosSustainedAvailability is the acceptance scenario: a saturating
// mixed client — healthy golden uploads, corrupt uploads, and a workload
// poisoned with a deterministic panic plan — hammers a small server
// concurrently. The server must never crash or emit an unclassified
// response: overload is shed with 429, the poisoned workload's circuit
// opens while healthy traces keep being served byte-identically to `dcheck
// -replay`, and when the load stops the server drains cleanly within its
// deadline.
func TestChaosSustainedAvailability(t *testing.T) {
	path := filepath.Join(goldenDir, "elevator.dct")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := dcheckReplay(t, path)
	corrupt := bytes.Clone(raw)
	corrupt[len(corrupt)/2] ^= 0xff

	s, ts := newTestServer(t, server.Config{
		MaxConcurrent:    3,
		MaxQueue:         2,
		PCDBudget:        4,
		AllowFaults:      true,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
		DrainTimeout:     5 * time.Second,
	})

	const loadFor = 1200 * time.Millisecond
	deadline := time.Now().Add(loadFor)
	var (
		wg          sync.WaitGroup
		healthyOK   atomic.Uint64
		shed        atomic.Uint64
		breakerHits atomic.Uint64
	)
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}

	// Healthy uploaders: every 200 must carry the reference bytes; the only
	// acceptable non-200 under saturation is a shed (429).
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				resp, err := http.Post(ts.URL+"/check?name="+path, "application/octet-stream", bytes.NewReader(raw))
				if err != nil {
					fail("healthy upload: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					healthyOK.Add(1)
					if string(body) != want {
						fail("healthy upload served wrong bytes:\n%s", body)
						return
					}
				case http.StatusTooManyRequests:
					shed.Add(1)
				default:
					fail("healthy upload: unexpected status %d (%s): %s",
						resp.StatusCode, resp.Header.Get(server.ErrorKindHeader), body)
					return
				}
			}
		}()
	}

	// Corrupt uploaders: always classified 400 bad-trace (or shed).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			resp, err := http.Post(ts.URL+"/check", "application/octet-stream", bytes.NewReader(corrupt))
			if err != nil {
				fail("corrupt upload: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusBadRequest, http.StatusTooManyRequests:
			default:
				fail("corrupt upload: unexpected status %d (%s)",
					resp.StatusCode, resp.Header.Get(server.ErrorKindHeader))
				return
			}
		}
	}()

	// The poisoned workload: panics until its circuit opens, then every
	// further request is rejected up front with breaker-open.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			resp, err := http.Post(ts.URL+"/check/workload?name=pmd9&panic-at-access=1", "", nil)
			if err != nil {
				fail("poisoned workload: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			kind := resp.Header.Get(server.ErrorKindHeader)
			switch {
			case resp.StatusCode == http.StatusInternalServerError && kind == "panic":
			case resp.StatusCode == http.StatusServiceUnavailable && kind == "breaker-open":
				breakerHits.Add(1)
			case resp.StatusCode == http.StatusTooManyRequests:
			default:
				fail("poisoned workload: unexpected status %d (%s)", resp.StatusCode, kind)
				return
			}
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}
	if healthyOK.Load() == 0 {
		t.Error("no healthy upload was served during the chaos load")
	}
	if breakerHits.Load() == 0 {
		t.Error("the poisoned workload's circuit never rejected a request")
	}
	if got := s.Breaker().State("workload:pmd9"); got != supervise.BreakerOpen {
		t.Errorf("poisoned workload breaker state = %v, want open", got)
	}

	// The load is gone: drain must complete cleanly within the deadline,
	// flipping readiness on the way.
	s.StartDrain()
	if resp, _ := get(t, ts, "/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: %d", resp.StatusCode)
	}
	start := time.Now()
	if !s.WaitDrain(context.Background()) {
		t.Error("post-chaos drain was forced")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("drain took %v, beyond the deadline", took)
	}
	t.Logf("chaos: %d healthy served, %d shed, %d breaker rejections",
		healthyOK.Load(), shed.Load(), breakerHits.Load())
}
