// Package cost implements the explicit cost model that stands in for
// wall-clock time in this reproduction.
//
// The paper (Figure 7) reports execution times of a real JVM on real
// hardware. Our substrate is a deterministic interpreter, so instead of
// timing it we charge every dynamic event — program operations, Octet barrier
// fast paths, coordination round trips, Velodrome metadata synchronization,
// log appends, garbage collection of analysis metadata, SCC computation, and
// PCD replay — a calibrated number of abstract cost units. The evaluation
// harness then reports "normalized execution time" exactly as the paper
// does: total cost with a checker attached divided by the total cost of the
// uninstrumented run.
//
// The default constants are calibrated (see EXPERIMENTS.md) so that the
// paper's qualitative structure holds: Velodrome's per-access atomic metadata
// updates dominate; Octet's fast path is nearly free; logging roughly
// doubles the first run's overhead; GC time is driven by the live bytes of
// retained logs.
package cost

import "fmt"

// Units is an abstract amount of execution cost. One unit is roughly "one
// cheap ALU op"; an uninstrumented memory access costs BaseOp units.
type Units int64

// Model holds the per-event charges. A Model is immutable once handed to a
// Meter; experiments that vary the model (e.g. §5.4) construct fresh copies.
type Model struct {
	// Program execution.
	BaseOp      Units // any interpreted operation (read, write, acquire, ...)
	ComputeUnit Units // one unit of pure local compute (OpCompute argument)

	// Octet barriers (ICD substrate).
	OctetFastPath         Units // state check that passes: no synchronization
	OctetUpgrade          Units // RdEx->RdSh or RdEx->WrEx atomic upgrade
	OctetFence            Units // RdSh fence transition (counter update + fence)
	OctetConflictExplicit Units // conflicting transition, responder running: round trip
	OctetConflictImplicit Units // conflicting transition, responder blocked: CAS on flag

	// ICD bookkeeping.
	IDGEdge    Units // append an edge to the imprecise dependence graph
	LogAppend  Units // one read/write log entry (single-run / second run)
	LogElide   Units // timestamp check that elides a duplicate entry
	SCCPerNode Units // Tarjan work per visited transaction
	SCCPerEdge Units // Tarjan work per visited edge

	// PCD replay.
	PCDPerEntry  Units // replay one log entry incl. last-access update
	PCDPerEdge   Units // add a PDG edge + incremental cycle check seed
	PCDCycleNode Units // per node visited during a PDG cycle check
	// PCDHandoffPerEntry is the critical-path price of handing an SCC to the
	// concurrent PCD pool: the VM thread snapshots the SCC's logs so workers
	// never touch live checker state. Charged per copied log entry; inert
	// unless a pool is active.
	PCDHandoffPerEntry Units

	// Velodrome.
	VeloSync       Units // lock word CAS + fences for analysis-access atomicity
	VeloNoSyncPath Units // unsound variant: metadata unchanged, no sync
	VeloMetadata   Units // update last writer/reader maps
	VeloEdge       Units // dependence edge append
	VeloCycleNode  Units // per node visited during online cycle check

	// Memory system. Allocation volume triggers collections; each collection
	// charges work proportional to the live analysis footprint, which is how
	// single-run mode's long-lived read/write logs surface as GC time
	// (paper §5.3).
	GCTriggerBytes int64 // a collection runs every this-many allocated bytes
	GCPerLiveKB    Units // collection cost per live kilobyte
}

// Default returns the calibrated model used by the evaluation harness.
func Default() Model {
	return Model{
		BaseOp:      10,
		ComputeUnit: 1,

		OctetFastPath:         2,
		OctetUpgrade:          40,
		OctetFence:            30,
		OctetConflictExplicit: 400,
		OctetConflictImplicit: 150,

		IDGEdge:            20,
		LogAppend:          26,
		LogElide:           2,
		SCCPerNode:         12,
		SCCPerEdge:         6,
		PCDPerEntry:        18,
		PCDPerEdge:         25,
		PCDCycleNode:       8,
		PCDHandoffPerEntry: 4,

		VeloSync:       48,
		VeloNoSyncPath: 6,
		VeloMetadata:   9,
		VeloEdge:       20,
		VeloCycleNode:  8,

		GCTriggerBytes: 1 << 16, // 64 KiB
		GCPerLiveKB:    360,
	}
}

// Meter accumulates cost and models the analysis-metadata memory footprint.
// The zero Meter is not usable; construct with NewMeter.
type Meter struct {
	model Model

	total Units
	gc    Units

	liveBytes    int64
	peakBytes    int64
	allocedBytes int64
	sinceGC      int64
	gcCount      int64

	budget int64 // 0 means unlimited
	oom    bool
}

// NewMeter returns a Meter charging according to model.
func NewMeter(model Model) *Meter {
	return &Meter{model: model}
}

// SetBudget installs a memory budget in bytes; once live analysis bytes
// exceed it, the meter records an out-of-memory condition (it keeps running —
// the harness reports the condition, mirroring the paper's 32-bit OOMs
// without killing the experiment).
func (m *Meter) SetBudget(bytes int64) { m.budget = bytes }

// Model returns the meter's cost model.
func (m *Meter) Model() Model { return m.model }

// Charge adds u units of analysis or program cost.
func (m *Meter) Charge(u Units) { m.total += u }

// ChargeN adds n times u units.
func (m *Meter) ChargeN(u Units, n int64) { m.total += u * Units(n) }

// Alloc records allocation of analysis metadata and triggers modelled
// collections as allocation volume accumulates.
func (m *Meter) Alloc(bytes int64) {
	m.liveBytes += bytes
	m.allocedBytes += bytes
	m.sinceGC += bytes
	if m.liveBytes > m.peakBytes {
		m.peakBytes = m.liveBytes
	}
	if m.budget > 0 && m.liveBytes > m.budget {
		m.oom = true
	}
	for m.model.GCTriggerBytes > 0 && m.sinceGC >= m.model.GCTriggerBytes {
		m.sinceGC -= m.model.GCTriggerBytes
		m.collect()
	}
}

// Free records that analysis metadata died (e.g. transactions swept by the
// reachability GC).
func (m *Meter) Free(bytes int64) {
	m.liveBytes -= bytes
	if m.liveBytes < 0 {
		m.liveBytes = 0
	}
}

// collect charges one modelled stop-the-world collection.
func (m *Meter) collect() {
	work := m.model.GCPerLiveKB * Units(m.liveBytes/1024+1)
	m.gc += work
	m.total += work
	m.gcCount++
}

// Total returns the cost accumulated so far, including GC cost.
func (m *Meter) Total() Units { return m.total }

// GC returns the portion of Total spent in modelled collections.
func (m *Meter) GC() Units { return m.gc }

// LiveBytes returns the current live analysis footprint.
func (m *Meter) LiveBytes() int64 { return m.liveBytes }

// Report summarizes a meter for the evaluation harness.
type Report struct {
	Total      Units
	GC         Units
	PeakBytes  int64
	AllocBytes int64
	GCCount    int64
	OOM        bool
}

// Report snapshots the meter.
func (m *Meter) Report() Report {
	return Report{
		Total:      m.total,
		GC:         m.gc,
		PeakBytes:  m.peakBytes,
		AllocBytes: m.allocedBytes,
		GCCount:    m.gcCount,
		OOM:        m.oom,
	}
}

// Normalized returns r.Total divided by base as a float, the "normalized
// execution time" of Figure 7. It panics on a zero base because that always
// indicates a harness bug (an empty baseline run).
func (r Report) Normalized(base Units) float64 {
	if base == 0 {
		panic("cost: zero baseline")
	}
	return float64(r.Total) / float64(base)
}

// GCFraction returns the fraction of total cost spent in modelled GC.
func (r Report) GCFraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.GC) / float64(r.Total)
}

func (r Report) String() string {
	return fmt.Sprintf("cost=%d gc=%d (%.1f%%) peak=%dB oom=%v",
		r.Total, r.GC, 100*r.GCFraction(), r.PeakBytes, r.OOM)
}
