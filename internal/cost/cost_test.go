package cost

import (
	"testing"
	"testing/quick"
)

func TestChargeAccumulates(t *testing.T) {
	m := NewMeter(Default())
	m.Charge(10)
	m.Charge(5)
	m.ChargeN(3, 4)
	if got := m.Total(); got != 27 {
		t.Errorf("total = %d, want 27", got)
	}
}

func TestGCTriggersOnAllocationVolume(t *testing.T) {
	model := Default()
	model.GCTriggerBytes = 1000
	model.GCPerLiveKB = 100
	m := NewMeter(model)
	m.Alloc(999)
	if m.GC() != 0 {
		t.Fatalf("no GC expected below trigger, got %d", m.GC())
	}
	m.Alloc(1)
	if m.GC() == 0 {
		t.Fatal("GC expected at trigger volume")
	}
	r := m.Report()
	if r.GCCount != 1 {
		t.Errorf("gcCount = %d, want 1", r.GCCount)
	}
}

func TestGCCostScalesWithLiveBytes(t *testing.T) {
	model := Default()
	model.GCTriggerBytes = 1 << 10
	m1 := NewMeter(model)
	m1.Alloc(1 << 10) // one GC with ~1KB live
	small := m1.GC()

	m2 := NewMeter(model)
	m2.Alloc(1 << 20) // many GCs, growing live set
	m2.Free(1 << 19)
	big := m2.GC()
	if big <= small {
		t.Errorf("GC with large live set (%d) should exceed small (%d)", big, small)
	}
}

func TestFreeReducesLiveBytes(t *testing.T) {
	model := Default()
	model.GCTriggerBytes = 0 // disable collections for this test
	m := NewMeter(model)
	m.Alloc(500)
	m.Free(200)
	if m.LiveBytes() != 300 {
		t.Errorf("live = %d, want 300", m.LiveBytes())
	}
	m.Free(10000) // over-free clamps at zero
	if m.LiveBytes() != 0 {
		t.Errorf("live = %d, want 0 after over-free", m.LiveBytes())
	}
	if m.Report().PeakBytes != 500 {
		t.Errorf("peak = %d, want 500", m.Report().PeakBytes)
	}
}

func TestBudgetOOM(t *testing.T) {
	model := Default()
	model.GCTriggerBytes = 0
	m := NewMeter(model)
	m.SetBudget(100)
	m.Alloc(99)
	if m.Report().OOM {
		t.Fatal("not OOM below budget")
	}
	m.Alloc(2)
	if !m.Report().OOM {
		t.Fatal("OOM expected above budget")
	}
}

func TestNormalized(t *testing.T) {
	r := Report{Total: 360}
	if got := r.Normalized(100); got != 3.6 {
		t.Errorf("normalized = %v, want 3.6", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("zero baseline should panic")
		}
	}()
	r.Normalized(0)
}

func TestGCFraction(t *testing.T) {
	r := Report{Total: 200, GC: 50}
	if got := r.GCFraction(); got != 0.25 {
		t.Errorf("gc fraction = %v, want 0.25", got)
	}
	if (Report{}).GCFraction() != 0 {
		t.Error("empty report GC fraction should be 0")
	}
}

func TestDefaultModelOrdering(t *testing.T) {
	// The calibration invariants the evaluation depends on.
	d := Default()
	if d.OctetFastPath >= d.VeloSync {
		t.Error("Octet fast path must be much cheaper than Velodrome sync")
	}
	if d.OctetConflictImplicit >= d.OctetConflictExplicit {
		t.Error("implicit protocol must be cheaper than explicit round trip")
	}
	if d.VeloNoSyncPath >= d.VeloSync {
		t.Error("unsound variant must be cheaper than sound sync")
	}
	if d.LogElide >= d.LogAppend {
		t.Error("eliding must be cheaper than appending")
	}
}

// TestPropertyTotalsMonotone: charging and allocating never decreases totals.
func TestPropertyTotalsMonotone(t *testing.T) {
	f := func(charges []uint16, allocs []uint16) bool {
		m := NewMeter(Default())
		prev := Units(0)
		for i := range charges {
			m.Charge(Units(charges[i]))
			if i < len(allocs) {
				m.Alloc(int64(allocs[i]))
			}
			if m.Total() < prev {
				return false
			}
			prev = m.Total()
		}
		return m.Total() >= m.GC()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReportString(t *testing.T) {
	m := NewMeter(Default())
	m.Charge(100)
	if s := m.Report().String(); s == "" {
		t.Error("report string should not be empty")
	}
}
