package lang

import (
	"fmt"
	"sort"
	"strings"

	"doublechecker/internal/txn"
)

// ExplainViolation renders a detected violation as a human-readable
// interleaving: the cycle's transactions and their logged accesses merged
// into timeline order, with the unit's source-level object and field names.
// Logs are available in single-run mode and the second run of multi-run
// mode (ICD records them for PCD); transactions without logs are listed
// structurally.
func ExplainViolation(u *Unit, v txn.Violation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "conflict-serializability violation: cycle of %d transaction(s)\n", len(v.Cycle))
	labels := make(map[*txn.Txn]string, len(v.Cycle))
	for i, tx := range v.Cycle {
		label := fmt.Sprintf("T%d", i+1)
		labels[tx] = label
		kind := "atomic " + u.Prog.MethodName(tx.Method)
		if tx.Unary {
			kind = "non-transactional accesses"
		}
		fmt.Fprintf(&b, "  %s = %s on thread %d\n", label, kind, tx.Thread)
	}
	blamed := map[*txn.Txn]bool{}
	for _, tx := range v.Blamed {
		blamed[tx] = true
	}

	type ev struct {
		tx    *txn.Txn
		entry txn.LogEntry
	}
	var events []ev
	for _, tx := range v.Cycle {
		for _, e := range tx.Log {
			events = append(events, ev{tx, e})
		}
	}
	if len(events) == 0 {
		b.WriteString("  (no access logs: run in single-run mode for a timeline)\n")
	} else {
		sort.Slice(events, func(i, j int) bool { return events[i].entry.Seq < events[j].entry.Seq })
		b.WriteString("\n  timeline (earliest first):\n")
		for _, e := range events {
			rw := "read "
			if e.entry.Write {
				rw = "write"
			}
			what := u.accessName(e.entry)
			if e.entry.Sync {
				rw = map[bool]string{false: "acquire-like read of", true: "release-like write of"}[e.entry.Write]
			}
			fmt.Fprintf(&b, "    @%-5d %s (thread %d): %s %s\n",
				e.entry.Seq, labels[e.tx], e.tx.Thread, rw, what)
		}
	}
	b.WriteString("\n  blame:")
	for _, tx := range v.Cycle {
		if blamed[tx] {
			fmt.Fprintf(&b, " %s", labels[tx])
		}
	}
	b.WriteString(" completed the cycle (outgoing dependence created before incoming)\n")
	return b.String()
}

// accessName renders an object.field with source names when available.
func (u *Unit) accessName(e txn.LogEntry) string {
	obj, okObj := u.ObjectNames[e.Obj]
	if !okObj {
		if int(e.Obj) >= u.Prog.NumObjects {
			// Synthesized thread-handle object.
			return fmt.Sprintf("thread-handle(t%d)", int(e.Obj)-u.Prog.NumObjects)
		}
		obj = fmt.Sprintf("o%d", e.Obj)
	}
	if e.Sync {
		return obj
	}
	if u.Prog.IsArray(e.Obj) {
		return fmt.Sprintf("%s[%d]", obj, e.Field)
	}
	if f, ok := u.FieldNames[e.Field]; ok {
		return obj + "." + f
	}
	return fmt.Sprintf("%s.f%d", obj, e.Field)
}
