package lang

import "strconv"

// Parse parses source text into a File (no name resolution; Lower does
// that).
func Parse(src string) (*File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.file()
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(t token, format string, args ...any) error {
	return errAt(t.line, t.col, format, args...)
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, p.errf(t, "expected %s (%s), got %s", kind, what, t)
	}
	return t, nil
}

// keyword consumes the exact identifier kw or fails.
func (p *parser) keyword(kw string) (token, error) {
	t := p.next()
	if t.kind != tokIdent || t.text != kw {
		return t, p.errf(t, "expected %q, got %s", kw, t)
	}
	return t, nil
}

// name consumes a non-keyword identifier.
func (p *parser) name(what string) (token, error) {
	t, err := p.expect(tokIdent, what)
	if err != nil {
		return t, err
	}
	if !validName(t.text) {
		return t, p.errf(t, "%q is a keyword and cannot name %s", t.text, what)
	}
	return t, nil
}

// integer consumes a non-negative integer literal.
func (p *parser) integer(what string) (int, token, error) {
	t, err := p.expect(tokInt, what)
	if err != nil {
		return 0, t, err
	}
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, t, p.errf(t, "bad %s %q", what, t.text)
	}
	return n, t, nil
}

func (p *parser) file() (*File, error) {
	if _, err := p.keyword("program"); err != nil {
		return nil, err
	}
	nameTok, err := p.name("the program")
	if err != nil {
		return nil, err
	}
	f := &File{Name: nameTok.text}
	for {
		t := p.cur()
		switch {
		case t.kind == tokEOF:
			return f, nil
		case t.kind != tokIdent:
			return nil, p.errf(t, "expected a declaration, got %s", t)
		}
		switch t.text {
		case "object", "lock":
			p.next()
			kind := KindObject
			if t.text == "lock" {
				kind = KindLock
			}
			// One or more names on a single declaration.
			first, err := p.name("an object")
			if err != nil {
				return nil, err
			}
			f.Objects = append(f.Objects, ObjectDecl{Kind: kind, Name: first.text, Line: first.line})
			for p.cur().kind == tokIdent && validName(p.cur().text) {
				n := p.next()
				f.Objects = append(f.Objects, ObjectDecl{Kind: kind, Name: n.text, Line: n.line})
			}
		case "array":
			p.next()
			n, err := p.name("an array")
			if err != nil {
				return nil, err
			}
			length, lt, err := p.integer("array length")
			if err != nil {
				return nil, err
			}
			if length == 0 {
				return nil, p.errf(lt, "array %q must have positive length", n.text)
			}
			f.Objects = append(f.Objects, ObjectDecl{Kind: KindArray, Name: n.text, Len: length, Line: n.line})
		case "atomic", "method":
			md, err := p.methodDecl()
			if err != nil {
				return nil, err
			}
			f.Methods = append(f.Methods, md)
		case "thread":
			p.next()
			n, err := p.name("a thread entry method")
			if err != nil {
				return nil, err
			}
			td := ThreadDecl{Entry: n.text, Line: n.line}
			if p.cur().kind == tokIdent && p.cur().text == "forked" {
				p.next()
				td.Forked = true
			}
			f.Threads = append(f.Threads, td)
		default:
			return nil, p.errf(t, "expected a declaration keyword, got %s", t)
		}
	}
}

func (p *parser) methodDecl() (MethodDecl, error) {
	var md MethodDecl
	t := p.next() // "atomic" or "method"
	if t.text == "atomic" {
		md.Atomic = true
		if _, err := p.keyword("method"); err != nil {
			return md, err
		}
	}
	n, err := p.name("a method")
	if err != nil {
		return md, err
	}
	md.Name = n.text
	md.Line = n.line
	md.Body, err = p.block()
	return md, err
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(tokLBrace, "a block"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for {
		t := p.cur()
		if t.kind == tokRBrace {
			p.next()
			return stmts, nil
		}
		if t.kind == tokEOF {
			return nil, p.errf(t, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
}

func (p *parser) stmt() (Stmt, error) {
	t := p.next()
	if t.kind != tokIdent {
		return Stmt{}, p.errf(t, "expected a statement, got %s", t)
	}
	s := Stmt{Line: t.line}
	switch t.text {
	case "read", "write":
		s.Kind = StRead
		if t.text == "write" {
			s.Kind = StWrite
		}
		return p.lvalue(s)
	case "acquire", "release", "wait", "notify", "notifyall":
		switch t.text {
		case "acquire":
			s.Kind = StAcquire
		case "release":
			s.Kind = StRelease
		case "wait":
			s.Kind = StWait
		case "notify":
			s.Kind = StNotify
		default:
			s.Kind = StNotifyAll
		}
		n, err := p.name("a monitor object")
		if err != nil {
			return s, err
		}
		s.Obj = n.text
		return s, nil
	case "call", "fork", "join":
		switch t.text {
		case "call":
			s.Kind = StCall
		case "fork":
			s.Kind = StFork
		default:
			s.Kind = StJoin
		}
		n, err := p.name("a target")
		if err != nil {
			return s, err
		}
		s.Target = n.text
		return s, nil
	case "compute":
		s.Kind = StCompute
		n, _, err := p.integer("compute amount")
		if err != nil {
			return s, err
		}
		s.N = n
		return s, nil
	case "loop":
		s.Kind = StLoop
		n, _, err := p.integer("loop count")
		if err != nil {
			return s, err
		}
		s.N = n
		body, err := p.block()
		if err != nil {
			return s, err
		}
		s.Body = body
		return s, nil
	default:
		return s, p.errf(t, "unknown statement %q", t.text)
	}
}

// lvalue parses obj.field or arr[idx] after read/write.
func (p *parser) lvalue(s Stmt) (Stmt, error) {
	n, err := p.name("an object")
	if err != nil {
		return s, err
	}
	s.Obj = n.text
	switch p.cur().kind {
	case tokDot:
		p.next()
		fieldTok := p.next()
		switch fieldTok.kind {
		case tokIdent:
			s.Field = fieldTok.text
		case tokInt:
			s.Field = "f" + fieldTok.text
		default:
			return s, p.errf(fieldTok, "expected a field name, got %s", fieldTok)
		}
		return s, nil
	case tokLBracket:
		p.next()
		idx, _, err := p.integer("array index")
		if err != nil {
			return s, err
		}
		s.Index = idx
		s.IsArray = true
		if _, err := p.expect(tokRBracket, "array index"); err != nil {
			return s, err
		}
		return s, nil
	default:
		return s, p.errf(p.cur(), "expected '.field' or '[index]' after %q", s.Obj)
	}
}
