package lang

import (
	"doublechecker/internal/vm"
)

// Unit is a lowered program: the executable VM program plus the language-
// level information the checkers and tools need (the initial atomicity
// specification's method names and the name tables for diagnostics).
type Unit struct {
	Prog *vm.Program
	// AtomicMethods are the names of methods marked `atomic`.
	AtomicMethods []string
	// ObjectNames maps object IDs back to their declared names.
	ObjectNames map[vm.ObjectID]string
	// FieldNames maps interned field IDs back to names.
	FieldNames map[vm.FieldID]string
}

// maxUnrolledOps bounds loop unrolling so a typo ("loop 1000000000") fails
// fast instead of exhausting memory.
const maxUnrolledOps = 20_000_000

// unrolledSize computes the fully unrolled statement count, saturating at
// maxUnrolledOps+1 so huge programs are rejected without building them.
func unrolledSize(stmts []Stmt) int {
	total := 0
	for _, s := range stmts {
		if s.Kind == StLoop {
			inner := unrolledSize(s.Body)
			if inner > 0 && s.N > maxUnrolledOps/inner {
				return maxUnrolledOps + 1
			}
			total += s.N * inner
		} else {
			total++
		}
		if total > maxUnrolledOps {
			return maxUnrolledOps + 1
		}
	}
	return total
}

// Lower resolves names and lowers a parsed File to a VM program, unrolling
// loops.
func Lower(f *File) (*Unit, error) {
	b := vm.NewBuilder(f.Name)
	u := &Unit{
		ObjectNames: make(map[vm.ObjectID]string),
		FieldNames:  make(map[vm.FieldID]string),
	}

	objects := make(map[string]vm.ObjectID)
	arrayLens := make(map[string]int)
	for _, od := range f.Objects {
		if _, dup := objects[od.Name]; dup {
			return nil, errAt(od.Line, 1, "duplicate object %q", od.Name)
		}
		var id vm.ObjectID
		if od.Kind == KindArray {
			id = b.Array(od.Len)
			arrayLens[od.Name] = od.Len
		} else {
			id = b.Object()
		}
		objects[od.Name] = id
		u.ObjectNames[id] = od.Name
	}

	fields := make(map[string]vm.FieldID)
	internField := func(name string) vm.FieldID {
		if id, ok := fields[name]; ok {
			return id
		}
		id := vm.FieldID(len(fields))
		fields[name] = id
		u.FieldNames[id] = name
		return id
	}

	methods := make(map[string]*vm.MethodBuilder)
	for _, md := range f.Methods {
		if _, dup := methods[md.Name]; dup {
			return nil, errAt(md.Line, 1, "duplicate method %q", md.Name)
		}
		methods[md.Name] = b.Method(md.Name)
		if md.Atomic {
			u.AtomicMethods = append(u.AtomicMethods, md.Name)
		}
	}

	// Threads: declared order gives IDs; entry methods must exist; a fork
	// target must be a forked thread's entry name.
	threadByEntry := make(map[string]vm.ThreadID)
	for _, td := range f.Threads {
		mb, ok := methods[td.Entry]
		if !ok {
			return nil, errAt(td.Line, 1, "thread entry method %q not defined", td.Entry)
		}
		if _, dup := threadByEntry[td.Entry]; dup {
			return nil, errAt(td.Line, 1, "duplicate thread for method %q", td.Entry)
		}
		var id vm.ThreadID
		if td.Forked {
			id = b.ForkedThread(mb)
		} else {
			id = b.Thread(mb)
		}
		threadByEntry[td.Entry] = id
	}

	env := &lowerEnv{
		objects: objects, arrayLens: arrayLens, methods: methods,
		threads: threadByEntry, intern: internField,
	}
	for _, md := range f.Methods {
		if unrolledSize(md.Body) > maxUnrolledOps {
			return nil, errAt(md.Line, 1, "method %q unrolls to more than %d operations", md.Name, maxUnrolledOps)
		}
		if err := env.lowerBody(methods[md.Name], md.Body); err != nil {
			return nil, err
		}
	}

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	u.Prog = prog
	return u, nil
}

// ParseAndLower parses and lowers source text in one step.
func ParseAndLower(src string) (*Unit, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(f)
}

type lowerEnv struct {
	objects   map[string]vm.ObjectID
	arrayLens map[string]int
	methods   map[string]*vm.MethodBuilder
	threads   map[string]vm.ThreadID
	intern    func(string) vm.FieldID
}

func (e *lowerEnv) lowerBody(mb *vm.MethodBuilder, stmts []Stmt) error {
	for _, s := range stmts {
		switch s.Kind {
		case StRead, StWrite:
			obj, ok := e.objects[s.Obj]
			if !ok {
				return errAt(s.Line, 1, "undefined object %q", s.Obj)
			}
			if s.IsArray {
				length, isArr := e.arrayLens[s.Obj]
				if !isArr {
					return errAt(s.Line, 1, "%q is not an array", s.Obj)
				}
				if s.Index >= length {
					return errAt(s.Line, 1, "index %d out of bounds for %q (len %d)", s.Index, s.Obj, length)
				}
				if s.Kind == StRead {
					mb.ArrayRead(obj, s.Index)
				} else {
					mb.ArrayWrite(obj, s.Index)
				}
			} else {
				if _, isArr := e.arrayLens[s.Obj]; isArr {
					return errAt(s.Line, 1, "%q is an array; use %s[index]", s.Obj, s.Obj)
				}
				f := e.intern(s.Field)
				if s.Kind == StRead {
					mb.Read(obj, f)
				} else {
					mb.Write(obj, f)
				}
			}
		case StAcquire, StRelease, StWait, StNotify, StNotifyAll:
			obj, ok := e.objects[s.Obj]
			if !ok {
				return errAt(s.Line, 1, "undefined monitor %q", s.Obj)
			}
			switch s.Kind {
			case StAcquire:
				mb.Acquire(obj)
			case StRelease:
				mb.Release(obj)
			case StWait:
				mb.Wait(obj)
			case StNotify:
				mb.Notify(obj)
			case StNotifyAll:
				mb.NotifyAll(obj)
			}
		case StCall:
			callee, ok := e.methods[s.Target]
			if !ok {
				return errAt(s.Line, 1, "undefined method %q", s.Target)
			}
			mb.Call(callee)
		case StFork, StJoin:
			tid, ok := e.threads[s.Target]
			if !ok {
				return errAt(s.Line, 1, "no thread with entry method %q", s.Target)
			}
			if s.Kind == StFork {
				mb.Fork(tid)
			} else {
				mb.Join(tid)
			}
		case StCompute:
			mb.Compute(s.N)
		case StLoop:
			for i := 0; i < s.N; i++ {
				if err := e.lowerBody(mb, s.Body); err != nil {
					return err
				}
			}
		default:
			return errAt(s.Line, 1, "unhandled statement kind %d", s.Kind)
		}
	}
	return nil
}
