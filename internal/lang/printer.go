package lang

import (
	"fmt"
	"strings"

	"doublechecker/internal/vm"
)

// Print renders a File back to source text. Parse(Print(f)) is equivalent
// to f (round-trip tested).
func Print(f *File) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n\n", f.Name)
	for _, od := range f.Objects {
		switch od.Kind {
		case KindLock:
			fmt.Fprintf(&b, "lock %s\n", od.Name)
		case KindArray:
			fmt.Fprintf(&b, "array %s %d\n", od.Name, od.Len)
		default:
			fmt.Fprintf(&b, "object %s\n", od.Name)
		}
	}
	if len(f.Objects) > 0 {
		b.WriteString("\n")
	}
	for _, md := range f.Methods {
		if md.Atomic {
			b.WriteString("atomic ")
		}
		fmt.Fprintf(&b, "method %s {\n", md.Name)
		printStmts(&b, md.Body, 1)
		b.WriteString("}\n\n")
	}
	for _, td := range f.Threads {
		if td.Forked {
			fmt.Fprintf(&b, "thread %s forked\n", td.Entry)
		} else {
			fmt.Fprintf(&b, "thread %s\n", td.Entry)
		}
	}
	return b.String()
}

func printStmts(b *strings.Builder, stmts []Stmt, depth int) {
	indent := strings.Repeat("    ", depth)
	for _, s := range stmts {
		switch s.Kind {
		case StRead, StWrite:
			kw := "read"
			if s.Kind == StWrite {
				kw = "write"
			}
			if s.IsArray {
				fmt.Fprintf(b, "%s%s %s[%d]\n", indent, kw, s.Obj, s.Index)
			} else {
				fmt.Fprintf(b, "%s%s %s.%s\n", indent, kw, s.Obj, s.Field)
			}
		case StAcquire:
			fmt.Fprintf(b, "%sacquire %s\n", indent, s.Obj)
		case StRelease:
			fmt.Fprintf(b, "%srelease %s\n", indent, s.Obj)
		case StWait:
			fmt.Fprintf(b, "%swait %s\n", indent, s.Obj)
		case StNotify:
			fmt.Fprintf(b, "%snotify %s\n", indent, s.Obj)
		case StNotifyAll:
			fmt.Fprintf(b, "%snotifyall %s\n", indent, s.Obj)
		case StCall:
			fmt.Fprintf(b, "%scall %s\n", indent, s.Target)
		case StFork:
			fmt.Fprintf(b, "%sfork %s\n", indent, s.Target)
		case StJoin:
			fmt.Fprintf(b, "%sjoin %s\n", indent, s.Target)
		case StCompute:
			fmt.Fprintf(b, "%scompute %d\n", indent, s.N)
		case StLoop:
			fmt.Fprintf(b, "%sloop %d {\n", indent, s.N)
			printStmts(b, s.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", indent)
		}
	}
}

// FromProgram reconstructs a File from a VM program (with synthesized
// names), so any workload — including the generated benchmark suite — can
// be dumped as source text. atomic reports which methods to mark atomic;
// nil marks none. Flat op lists are rendered as-is; the printer performs a
// simple run-length collapse of repeated operations into loops to keep
// dumps readable.
func FromProgram(prog *vm.Program, atomic func(vm.MethodID) bool) *File {
	f := &File{Name: prog.Name}
	for i := 0; i < prog.NumObjects; i++ {
		id := vm.ObjectID(i)
		od := ObjectDecl{Kind: KindObject, Name: objName(id)}
		if n, ok := prog.ArrayLens[id]; ok {
			od.Kind = KindArray
			od.Len = n
		}
		f.Objects = append(f.Objects, od)
	}
	for _, m := range prog.Methods {
		md := MethodDecl{Name: m.Name, Atomic: atomic != nil && atomic(m.ID)}
		md.Body = collapseRuns(opsToStmts(prog, m.Body))
		f.Methods = append(f.Methods, md)
	}
	for _, td := range prog.Threads {
		f.Threads = append(f.Threads, ThreadDecl{
			Entry:  prog.Methods[td.Entry].Name,
			Forked: !td.AutoStart,
		})
	}
	return f
}

func objName(id vm.ObjectID) string { return fmt.Sprintf("o%d", id) }

func opsToStmts(prog *vm.Program, ops []vm.Op) []Stmt {
	stmts := make([]Stmt, 0, len(ops))
	for _, op := range ops {
		var s Stmt
		switch op.Kind {
		case vm.OpRead, vm.OpWrite:
			s.Kind = StRead
			if op.Kind == vm.OpWrite {
				s.Kind = StWrite
			}
			s.Obj = objName(op.Obj)
			s.Field = fmt.Sprintf("f%d", op.Field)
		case vm.OpArrayRead, vm.OpArrayWrite:
			s.Kind = StRead
			if op.Kind == vm.OpArrayWrite {
				s.Kind = StWrite
			}
			s.Obj = objName(op.Obj)
			s.Index = int(op.Field)
			s.IsArray = true
		case vm.OpAcquire:
			s.Kind = StAcquire
			s.Obj = objName(op.Obj)
		case vm.OpRelease:
			s.Kind = StRelease
			s.Obj = objName(op.Obj)
		case vm.OpWait:
			s.Kind = StWait
			s.Obj = objName(op.Obj)
		case vm.OpNotify:
			s.Kind = StNotify
			s.Obj = objName(op.Obj)
		case vm.OpNotifyAll:
			s.Kind = StNotifyAll
			s.Obj = objName(op.Obj)
		case vm.OpCall:
			s.Kind = StCall
			s.Target = prog.Methods[op.Target].Name
		case vm.OpFork:
			s.Kind = StFork
			s.Target = prog.Methods[prog.Threads[op.Target].Entry].Name
		case vm.OpJoin:
			s.Kind = StJoin
			s.Target = prog.Methods[prog.Threads[op.Target].Entry].Name
		case vm.OpCompute:
			s.Kind = StCompute
			s.N = int(op.Target)
		}
		stmts = append(stmts, s)
	}
	return stmts
}

// collapseRuns rewrites maximal runs of an identical statement as loops.
func collapseRuns(stmts []Stmt) []Stmt {
	var out []Stmt
	for i := 0; i < len(stmts); {
		j := i + 1
		for j < len(stmts) && sameStmt(stmts[i], stmts[j]) {
			j++
		}
		if n := j - i; n >= 3 {
			out = append(out, Stmt{Kind: StLoop, N: n, Body: []Stmt{stmts[i]}})
		} else {
			out = append(out, stmts[i:j]...)
		}
		i = j
	}
	return out
}

func sameStmt(a, b Stmt) bool {
	return a.Kind == b.Kind && a.Obj == b.Obj && a.Field == b.Field &&
		a.Index == b.Index && a.IsArray == b.IsArray &&
		a.Target == b.Target && a.N == b.N && len(a.Body) == 0 && len(b.Body) == 0
}
