// Package lang implements the textual workload language (.dcp files): a
// lexer, recursive-descent parser, AST, a lowering pass onto the VM's
// program representation, and a pretty-printer.
//
// The language describes exactly what the paper's subject programs look
// like to the checkers: named shared objects, locks and arrays; methods as
// sequences of field/array accesses, monitor operations, wait/notify,
// fork/join, calls, and pure compute; and thread declarations. Methods
// marked `atomic` seed the initial atomicity specification.
//
//	program bank
//	object acct
//	lock l
//	atomic method deposit {
//	    acquire l
//	    read acct.balance
//	    write acct.balance
//	    release l
//	}
//	method main0 { loop 100 { call deposit } }
//	thread main0
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokDot
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokDot:
		return "'.'"
	}
	return fmt.Sprintf("tokenKind(%d)", uint8(k))
}

// token is one lexical token with its source position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokIdent || t.kind == tokInt {
		return fmt.Sprintf("%q", t.text)
	}
	return t.kind.String()
}

// Error is a positioned language error.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes src. Newlines and semicolons are whitespace (every
// statement starts with a keyword, so no separators are needed); comments
// run from // or # to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if src[i+k] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += n
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == ';':
			advance(1)
		case c == '#' || (c == '/' && i+1 < len(src) && src[i+1] == '/'):
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", line, col})
			advance(1)
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", line, col})
			advance(1)
		case c == '[':
			toks = append(toks, token{tokLBracket, "[", line, col})
			advance(1)
		case c == ']':
			toks = append(toks, token{tokRBracket, "]", line, col})
			advance(1)
		case c == '.':
			toks = append(toks, token{tokDot, ".", line, col})
			advance(1)
		case c >= '0' && c <= '9':
			start, l0, c0 := i, line, col
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				advance(1)
			}
			toks = append(toks, token{tokInt, src[start:i], l0, c0})
		case isIdentStart(rune(c)):
			start, l0, c0 := i, line, col
			for i < len(src) && isIdentPart(rune(src[i])) {
				advance(1)
			}
			toks = append(toks, token{tokIdent, src[start:i], l0, c0})
		default:
			return nil, errAt(line, col, "unexpected character %q", string(c))
		}
	}
	toks = append(toks, token{tokEOF, "", line, col})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// keywords reserved by the statement grammar; they cannot name objects or
// methods (catching this early gives far better errors than a parse
// failure later).
var keywords = map[string]bool{
	"program": true, "object": true, "lock": true, "array": true,
	"method": true, "atomic": true, "thread": true, "forked": true,
	"read": true, "write": true, "acquire": true, "release": true,
	"wait": true, "notify": true, "notifyall": true,
	"call": true, "fork": true, "join": true, "compute": true, "loop": true,
}

// validName reports whether s can name a declared entity.
func validName(s string) bool {
	return s != "" && !keywords[strings.ToLower(s)]
}
