package lang

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"doublechecker/internal/core"
	"doublechecker/internal/vm"
)

const bankSrc = `
# The classic bank account with a check-then-act race.
program bank

object acct
lock l
array hist 8

atomic method deposit {
    acquire l
    read acct.balance
    write acct.balance
    release l
}

atomic method audit {
    read acct.balance
    compute 5
    read acct.total
}

method log {
    write hist[3]
    read hist[3]
}

method main0 {
    loop 10 { call deposit }
    call log
}

method main1 {
    call audit
    loop 5 { call deposit }
}

thread main0
thread main1
`

func TestParseBank(t *testing.T) {
	f, err := Parse(bankSrc)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "bank" {
		t.Errorf("name = %q", f.Name)
	}
	if len(f.Objects) != 3 || len(f.Methods) != 5 || len(f.Threads) != 2 {
		t.Errorf("decl counts: %d objects %d methods %d threads",
			len(f.Objects), len(f.Methods), len(f.Threads))
	}
	if !f.Methods[0].Atomic || f.Methods[2].Atomic {
		t.Error("atomic flags wrong")
	}
	if f.Objects[2].Kind != KindArray || f.Objects[2].Len != 8 {
		t.Errorf("array decl: %+v", f.Objects[2])
	}
}

func TestLowerBank(t *testing.T) {
	u, err := ParseAndLower(bankSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog := u.Prog
	if prog.NumObjects != 3 {
		t.Errorf("objects = %d", prog.NumObjects)
	}
	if len(u.AtomicMethods) != 2 {
		t.Errorf("atomic methods = %v", u.AtomicMethods)
	}
	main0 := prog.MethodByName("main0")
	// loop 10 { call } + call log = 11 ops.
	if len(main0.Body) != 11 {
		t.Errorf("main0 unrolled to %d ops, want 11", len(main0.Body))
	}
	dep := prog.MethodByName("deposit")
	if dep.Body[0].Kind != vm.OpAcquire || dep.Body[1].Kind != vm.OpRead {
		t.Errorf("deposit body: %v", dep.Body)
	}
	// Field interning: balance and total are distinct fields.
	if dep.Body[1].Field == prog.MethodByName("audit").Body[2].Field {
		t.Error("balance and total should intern to distinct fields")
	}
}

func TestLoweredProgramRuns(t *testing.T) {
	u, err := ParseAndLower(bankSrc)
	if err != nil {
		t.Fatal(err)
	}
	atomicSet := make(map[string]bool)
	for _, n := range u.AtomicMethods {
		atomicSet[n] = true
	}
	atomic := func(m vm.MethodID) bool { return atomicSet[u.Prog.Methods[m].Name] }
	r, err := core.Run(u.Prog, core.Config{Analysis: core.DCSingle, Seed: 3, Atomic: atomic})
	if err != nil {
		t.Fatal(err)
	}
	if r.VMStats.RegularTx == 0 {
		t.Error("expected transactions from atomic methods")
	}
}

func TestForkJoinProgram(t *testing.T) {
	src := `
program forks
object o
method child { write o.x }
method main {
    fork child
    join child
    read o.x
}
thread main
thread child forked
`
	u, err := ParseAndLower(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.NewExec(u.Prog, vm.Config{}).Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestWaitNotifyProgram(t *testing.T) {
	src := `
program wn
object o
lock mon
method waiter { acquire mon wait mon release mon write o.x }
method notifier { compute 9 acquire mon notify mon release mon }
thread waiter
thread notifier
`
	u, err := ParseAndLower(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.NewExec(u.Prog, vm.Config{Sched: vm.NewRoundRobin()}).Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestNumericFieldSugar(t *testing.T) {
	u, err := ParseAndLower("program p\nobject o\nmethod main { read o.0 write o.1 }\nthread main")
	if err != nil {
		t.Fatal(err)
	}
	body := u.Prog.Methods[0].Body
	if body[0].Field == body[1].Field {
		t.Error("o.0 and o.1 must be distinct fields")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"", `expected "program"`},
		{"program", "identifier"},
		{"program p method m {", "unterminated block"},
		{"program p method m { read }", "expected identifier"},
		{"program p banana x", "declaration"},
		{"program p method m { jump x }", "unknown statement"},
		{"program p object o method m { read o }", "expected '.field'"},
		{"program p method m { read o.f }", "undefined object"},
		{"program p method m { call nope }\nthread m", "undefined method"},
		{"program p array a 0", "positive length"},
		{"program p array a 4 method m { read a[9] }", "out of bounds"},
		{"program p array a 4 method m { read a.f }", "is an array"},
		{"program p object o method m { read o[1] }", "not an array"},
		{"program p object o object o", "duplicate object"},
		{"program p method m { } method m { }", "duplicate method"},
		{"program p thread nope", "not defined"},
		{"program p method m { } thread m thread m", "duplicate thread"},
		{"program p method m { fork m }\nthread m", "fork of auto-start"},
		{"program p object loop", "keyword"},
		{"program p method m { compute -1 }", "unexpected character"},
		{"program p @", "unexpected character"},
	}
	for _, c := range cases {
		_, err := ParseAndLower(c.src)
		if err == nil {
			t.Errorf("%q: expected error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestErrorsArePositioned(t *testing.T) {
	_, err := ParseAndLower("program p\nobject o\nmethod m {\n    read q.f\n}\nthread m")
	if err == nil {
		t.Fatal("expected error")
	}
	le, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if le.Line != 4 {
		t.Errorf("line = %d, want 4", le.Line)
	}
}

func TestCommentsAndSeparators(t *testing.T) {
	src := "program p // trailing\n# full line\nobject o;;; method m { read o.f; write o.f }\nthread m"
	if _, err := ParseAndLower(src); err != nil {
		t.Fatal(err)
	}
}

func TestPrintRoundTrip(t *testing.T) {
	f1, err := Parse(bankSrc)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(f1)
	f2, err := Parse(printed)
	if err != nil {
		t.Fatalf("re-parse of printed source failed: %v\n%s", err, printed)
	}
	u1, err := Lower(f1)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := Lower(f2)
	if err != nil {
		t.Fatal(err)
	}
	// Structural equivalence of the lowered programs.
	if len(u1.Prog.Methods) != len(u2.Prog.Methods) || u1.Prog.NumObjects != u2.Prog.NumObjects {
		t.Fatal("round trip changed structure")
	}
	for i := range u1.Prog.Methods {
		a, b := u1.Prog.Methods[i], u2.Prog.Methods[i]
		if a.Name != b.Name || len(a.Body) != len(b.Body) {
			t.Errorf("method %s: %d vs %d ops", a.Name, len(a.Body), len(b.Body))
		}
		for j := range a.Body {
			if a.Body[j] != b.Body[j] {
				t.Errorf("method %s op %d: %v vs %v", a.Name, j, a.Body[j], b.Body[j])
			}
		}
	}
}

func TestFromProgramRoundTrip(t *testing.T) {
	b := vm.NewBuilder("gen")
	o := b.Object()
	arr := b.Array(4)
	work := b.Method("work")
	work.Acquire(o)
	for i := 0; i < 5; i++ {
		work.Read(o, 1) // run of 5: collapsed to a loop
	}
	work.ArrayWrite(arr, 2).Release(o).Compute(7)
	child := b.Method("child")
	child.Write(o, 0)
	ct := b.ForkedThread(child)
	main := b.Method("main")
	main.Call(work).Fork(ct).Join(ct)
	b.Thread(main)
	prog := b.MustBuild()

	f := FromProgram(prog, func(m vm.MethodID) bool { return prog.Methods[m].Name == "work" })
	src := Print(f)
	if !strings.Contains(src, "loop 5") {
		t.Errorf("runs should collapse to loops:\n%s", src)
	}
	u, err := ParseAndLower(src)
	if err != nil {
		t.Fatalf("generated source does not parse: %v\n%s", err, src)
	}
	if len(u.Prog.Methods) != len(prog.Methods) {
		t.Error("method count changed")
	}
	w1 := prog.MethodByName("work").Body
	w2 := u.Prog.MethodByName("work").Body
	if len(w1) != len(w2) {
		t.Errorf("work body %d vs %d ops", len(w1), len(w2))
	}
	if len(u.AtomicMethods) != 1 || u.AtomicMethods[0] != "work" {
		t.Errorf("atomic methods: %v", u.AtomicMethods)
	}
}

func TestLoopUnrollLimit(t *testing.T) {
	src := "program p\nobject o\nmethod m { loop 1000000 { loop 1000000 { read o.f } } }\nthread m"
	_, err := ParseAndLower(src)
	if err == nil || !strings.Contains(err.Error(), "unrolls") {
		t.Errorf("expected unroll-limit error, got %v", err)
	}
}

func TestExplainViolation(t *testing.T) {
	u, err := ParseAndLower(`
program p
object acct
lock l
atomic method racy { read acct.balance compute 8 write acct.balance }
array buf 4
atomic method touch { write buf[2] acquire l release l }
method main0 { loop 10 { call racy call touch } }
method main1 { loop 10 { call racy } }
thread main0
thread main1
`)
	if err != nil {
		t.Fatal(err)
	}
	atomicSet := map[string]bool{"racy": true, "touch": true}
	isAtomic := func(m vm.MethodID) bool { return atomicSet[u.Prog.Methods[m].Name] }
	var out string
	for seed := int64(0); seed < 10 && out == ""; seed++ {
		res, err := core.Run(u.Prog, core.Config{Analysis: core.DCSingle, Seed: seed, Atomic: isAtomic})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 {
			out = ExplainViolation(u, res.Violations[0])
		}
	}
	if out == "" {
		t.Skip("no violation surfaced in 10 seeds")
	}
	for _, want := range []string{"cycle of", "timeline", "acct.balance", "blame:", "atomic racy"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainWithoutLogs(t *testing.T) {
	// First-run transactions carry no logs; Explain must degrade cleanly.
	u, err := ParseAndLower(`
program p
object o
atomic method racy { read o.x compute 8 write o.x }
method main0 { loop 10 { call racy } }
method main1 { loop 10 { call racy } }
thread main0
thread main1
`)
	if err != nil {
		t.Fatal(err)
	}
	isAtomic := func(m vm.MethodID) bool { return u.Prog.Methods[m].Name == "racy" }
	// Use velodrome (no logging) to obtain a violation without logs.
	for seed := int64(0); seed < 10; seed++ {
		res, err := core.Run(u.Prog, core.Config{Analysis: core.Velodrome, Seed: seed, Atomic: isAtomic})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 {
			out := ExplainViolation(u, res.Violations[0])
			if !strings.Contains(out, "no access logs") {
				t.Errorf("log-less explain should say so:\n%s", out)
			}
			return
		}
	}
	t.Skip("no violation surfaced")
}

func TestViolationDot(t *testing.T) {
	u, err := ParseAndLower(`
program p
object o
atomic method racy { read o.x compute 8 write o.x }
method main0 { loop 10 { call racy } }
method main1 { loop 10 { call racy } }
thread main0
thread main1
`)
	if err != nil {
		t.Fatal(err)
	}
	isAtomic := func(m vm.MethodID) bool { return u.Prog.Methods[m].Name == "racy" }
	for seed := int64(0); seed < 10; seed++ {
		res, err := core.Run(u.Prog, core.Config{Analysis: core.DCSingle, Seed: seed, Atomic: isAtomic})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) == 0 {
			continue
		}
		dot := ViolationDot(u, res.Violations[0])
		for _, want := range []string{"digraph violation", "racy (thread", "->", "fillcolor"} {
			if !strings.Contains(dot, want) {
				t.Errorf("dot missing %q:\n%s", want, dot)
			}
		}
		if strings.Count(dot, "{") != strings.Count(dot, "}") {
			t.Error("unbalanced braces in dot output")
		}
		return
	}
	t.Skip("no violation surfaced")
}

// randomFile builds a random AST for printer round-trip property testing.
func randomFile(seed int64) *File {
	rng := rand.New(rand.NewSource(seed))
	f := &File{Name: "rand"}
	nObj := 1 + rng.Intn(3)
	var objNames []string
	for i := 0; i < nObj; i++ {
		name := fmt.Sprintf("obj%d", i)
		kind := ObjectKind(rng.Intn(3))
		od := ObjectDecl{Kind: kind, Name: name}
		if kind == KindArray {
			od.Len = 2 + rng.Intn(6)
		}
		f.Objects = append(f.Objects, od)
		objNames = append(objNames, name)
	}
	var genStmts func(depth int) []Stmt
	genStmts = func(depth int) []Stmt {
		var out []Stmt
		for i := 0; i < 1+rng.Intn(4); i++ {
			obj := rng.Intn(nObj)
			od := f.Objects[obj]
			s := Stmt{Obj: od.Name}
			switch rng.Intn(6) {
			case 0:
				s.Kind = StCompute
				s.N = rng.Intn(20)
				s.Obj = ""
			case 1:
				if depth < 2 {
					s = Stmt{Kind: StLoop, N: 1 + rng.Intn(4), Body: genStmts(depth + 1)}
				} else {
					s.Kind = StRead
					fillAccess(&s, od, rng)
				}
			case 2:
				s.Kind = StWrite
				fillAccess(&s, od, rng)
			default:
				s.Kind = StRead
				fillAccess(&s, od, rng)
			}
			out = append(out, s)
		}
		return out
	}
	nMeth := 1 + rng.Intn(3)
	for i := 0; i < nMeth; i++ {
		f.Methods = append(f.Methods, MethodDecl{
			Name:   fmt.Sprintf("m%d", i),
			Atomic: rng.Intn(2) == 0,
			Body:   genStmts(0),
		})
	}
	main := MethodDecl{Name: "main"}
	for i := 0; i < nMeth; i++ {
		main.Body = append(main.Body, Stmt{Kind: StCall, Target: fmt.Sprintf("m%d", i)})
	}
	f.Methods = append(f.Methods, main)
	f.Threads = []ThreadDecl{{Entry: "main"}}
	return f
}

func fillAccess(s *Stmt, od ObjectDecl, rng *rand.Rand) {
	if od.Kind == KindArray {
		s.IsArray = true
		s.Index = rng.Intn(od.Len)
	} else {
		s.Field = fmt.Sprintf("f%d", rng.Intn(3))
	}
}

// TestPropertyPrintParseRoundTrip: Print then Parse then Lower must yield
// the identical lowered program for random ASTs.
func TestPropertyPrintParseRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		f1 := randomFile(seed)
		u1, err := Lower(f1)
		if err != nil {
			t.Fatalf("seed %d: lower original: %v", seed, err)
		}
		f2, err := Parse(Print(f1))
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, Print(f1))
		}
		u2, err := Lower(f2)
		if err != nil {
			t.Fatalf("seed %d: lower reparsed: %v", seed, err)
		}
		if len(u1.Prog.Methods) != len(u2.Prog.Methods) {
			t.Fatalf("seed %d: method count changed", seed)
		}
		for i := range u1.Prog.Methods {
			a, b := u1.Prog.Methods[i], u2.Prog.Methods[i]
			if a.Name != b.Name || len(a.Body) != len(b.Body) {
				t.Fatalf("seed %d: method %s body %d vs %d", seed, a.Name, len(a.Body), len(b.Body))
			}
			for j := range a.Body {
				if a.Body[j] != b.Body[j] {
					t.Fatalf("seed %d: %s op %d: %v vs %v", seed, a.Name, j, a.Body[j], b.Body[j])
				}
			}
		}
		if len(u1.AtomicMethods) != len(u2.AtomicMethods) {
			t.Fatalf("seed %d: atomic set changed", seed)
		}
	}
}
