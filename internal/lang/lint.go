package lang

import (
	"fmt"
)

// Warning is one static-analysis finding on a parsed File.
type Warning struct {
	Line int
	Msg  string
}

func (w Warning) String() string { return fmt.Sprintf("%d: %s", w.Line, w.Msg) }

// Lint runs static well-formedness checks on a parsed File, before
// lowering. The workload language has no branches, so monitor discipline is
// statically decidable per method: Lint flags unbalanced acquire/release,
// release or wait without a held monitor, waits inside `atomic` methods
// (the paper's methodology excludes wait-containing methods from
// specifications because wait releases the monitor mid-region), unjoined
// forked threads, and methods that are never called or run.
func Lint(f *File) []Warning {
	var warns []Warning
	methods := make(map[string]*MethodDecl, len(f.Methods))
	for i := range f.Methods {
		methods[f.Methods[i].Name] = &f.Methods[i]
	}

	// Per-method monitor discipline (intra-procedural: calls are not
	// expanded — a method must be self-balanced, which also guarantees any
	// flattened composition is balanced).
	for i := range f.Methods {
		md := &f.Methods[i]
		held := map[string]int{}
		var walk func(stmts []Stmt)
		walk = func(stmts []Stmt) {
			for _, s := range stmts {
				switch s.Kind {
				case StAcquire:
					held[s.Obj]++
				case StRelease:
					if held[s.Obj] == 0 {
						warns = append(warns, Warning{s.Line,
							fmt.Sprintf("method %q releases %q without holding it", md.Name, s.Obj)})
					} else {
						held[s.Obj]--
					}
				case StWait, StNotify, StNotifyAll:
					if held[s.Obj] == 0 {
						warns = append(warns, Warning{s.Line,
							fmt.Sprintf("method %q uses %s on %q without holding its monitor",
								md.Name, stmtName(s.Kind), s.Obj)})
					}
					if s.Kind == StWait && md.Atomic {
						warns = append(warns, Warning{s.Line,
							fmt.Sprintf("atomic method %q waits on %q: wait releases the monitor mid-region, so the method cannot be atomic", md.Name, s.Obj)})
					}
				case StLoop:
					// A loop body that changes the held multiset would make
					// discipline iteration-dependent; require balance.
					before := copyCounts(held)
					walk(s.Body)
					if !sameCounts(before, held) {
						warns = append(warns, Warning{s.Line,
							fmt.Sprintf("method %q: loop body changes held monitors", md.Name)})
						held = before
					}
				}
			}
		}
		walk(md.Body)
		for obj, n := range held {
			if n > 0 {
				warns = append(warns, Warning{md.Line,
					fmt.Sprintf("method %q exits holding %q (%d unbalanced acquire(s))", md.Name, obj, n)})
			}
		}
	}

	// Reachability: methods called or used as thread entries.
	used := map[string]bool{}
	for _, td := range f.Threads {
		used[td.Entry] = true
	}
	var mark func(stmts []Stmt)
	mark = func(stmts []Stmt) {
		for _, s := range stmts {
			if s.Kind == StCall {
				used[s.Target] = true
			}
			if s.Kind == StLoop {
				mark(s.Body)
			}
		}
	}
	for i := range f.Methods {
		mark(f.Methods[i].Body)
	}
	for i := range f.Methods {
		if !used[f.Methods[i].Name] {
			warns = append(warns, Warning{f.Methods[i].Line,
				fmt.Sprintf("method %q is never called or run", f.Methods[i].Name)})
		}
	}

	// Fork/join pairing: every forked thread should be forked somewhere,
	// and forks should eventually be joined (unjoined threads make program
	// end racy with their tails).
	forked := map[string]int{}
	joined := map[string]int{}
	var scanFJ func(stmts []Stmt)
	scanFJ = func(stmts []Stmt) {
		for _, s := range stmts {
			switch s.Kind {
			case StFork:
				forked[s.Target]++
			case StJoin:
				joined[s.Target]++
			case StLoop:
				scanFJ(s.Body)
			}
		}
	}
	for i := range f.Methods {
		scanFJ(f.Methods[i].Body)
	}
	for _, td := range f.Threads {
		if !td.Forked {
			continue
		}
		if forked[td.Entry] == 0 {
			warns = append(warns, Warning{td.Line,
				fmt.Sprintf("forked thread %q is never forked (it will never run)", td.Entry)})
		}
		if forked[td.Entry] > 0 && joined[td.Entry] == 0 {
			warns = append(warns, Warning{td.Line,
				fmt.Sprintf("forked thread %q is never joined", td.Entry)})
		}
	}
	return warns
}

func stmtName(k StmtKind) string {
	switch k {
	case StWait:
		return "wait"
	case StNotify:
		return "notify"
	case StNotifyAll:
		return "notifyall"
	}
	return "?"
}

func copyCounts(m map[string]int) map[string]int {
	c := make(map[string]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func sameCounts(a, b map[string]int) bool {
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	for k, v := range b {
		if a[k] != v {
			return false
		}
	}
	return true
}
