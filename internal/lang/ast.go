package lang

// File is a parsed program before lowering.
type File struct {
	Name    string
	Objects []ObjectDecl
	Methods []MethodDecl
	Threads []ThreadDecl
}

// ObjectKind distinguishes declaration forms; all lower to VM objects, but
// the printer preserves the original keyword.
type ObjectKind uint8

const (
	// KindObject is a plain shared object.
	KindObject ObjectKind = iota
	// KindLock is an object declared with `lock` (used as a monitor).
	KindLock
	// KindArray is an array with a fixed length.
	KindArray
)

// ObjectDecl declares a shared object, lock, or array.
type ObjectDecl struct {
	Kind ObjectKind
	Name string
	Len  int // arrays only
	Line int
}

// MethodDecl declares a method.
type MethodDecl struct {
	Name   string
	Atomic bool // marked `atomic`: seeds the initial specification
	Body   []Stmt
	Line   int
}

// ThreadDecl declares a thread by its entry method name.
type ThreadDecl struct {
	Entry  string
	Forked bool // started by fork rather than at program start
	Line   int
}

// StmtKind enumerates statements.
type StmtKind uint8

const (
	// StRead reads Obj.Field or Obj[Index].
	StRead StmtKind = iota
	// StWrite writes Obj.Field or Obj[Index].
	StWrite
	// StAcquire acquires Obj's monitor.
	StAcquire
	// StRelease releases Obj's monitor.
	StRelease
	// StWait waits on Obj's monitor.
	StWait
	// StNotify notifies one waiter on Obj's monitor.
	StNotify
	// StNotifyAll notifies all waiters on Obj's monitor.
	StNotifyAll
	// StCall calls method Target.
	StCall
	// StFork starts thread Target (a thread entry method name).
	StFork
	// StJoin joins thread Target.
	StJoin
	// StCompute performs N units of local work.
	StCompute
	// StLoop repeats Body N times (unrolled during lowering).
	StLoop
)

// Stmt is one statement. Fields are used according to Kind.
type Stmt struct {
	Kind    StmtKind
	Obj     string // object/lock/array name
	Field   string // field name (object access)
	Index   int    // array element (array access)
	IsArray bool
	Target  string // method or thread name (call/fork/join)
	N       int    // compute amount or loop count
	Body    []Stmt // loop body
	Line    int
}
