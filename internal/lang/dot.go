package lang

import (
	"fmt"
	"sort"
	"strings"

	"doublechecker/internal/txn"
)

// ViolationDot renders a violation's precise cycle as a Graphviz digraph:
// the cycle's transactions as nodes (blamed ones highlighted), the
// dependence edges among them, and — when logs are present — each node's
// accesses as a label. Pipe to `dot -Tsvg` for a picture of exactly the
// paper's Figure 3-style diagrams.
func ViolationDot(u *Unit, v txn.Violation) string {
	var b strings.Builder
	b.WriteString("digraph violation {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")

	blamed := map[*txn.Txn]bool{}
	for _, tx := range v.Blamed {
		blamed[tx] = true
	}
	name := func(tx *txn.Txn) string { return fmt.Sprintf("tx%d", tx.ID) }

	inCycle := map[*txn.Txn]bool{}
	for _, tx := range v.Cycle {
		inCycle[tx] = true
	}
	for _, tx := range v.Cycle {
		var label strings.Builder
		if tx.Unary {
			fmt.Fprintf(&label, "unary (thread %d)", tx.Thread)
		} else {
			fmt.Fprintf(&label, "%s (thread %d)", u.Prog.MethodName(tx.Method), tx.Thread)
		}
		// At most a handful of accesses in the label to stay readable.
		entries := tx.Log
		const maxShown = 6
		shown := entries
		if len(shown) > maxShown {
			shown = shown[:maxShown]
		}
		for _, e := range shown {
			rw := "rd"
			if e.Write {
				rw = "wr"
			}
			fmt.Fprintf(&label, "\\n%s %s", rw, u.accessName(e))
		}
		if len(entries) > maxShown {
			fmt.Fprintf(&label, "\\n… %d more", len(entries)-maxShown)
		}
		attrs := ""
		if blamed[tx] {
			attrs = ", style=filled, fillcolor=\"#ffd0d0\""
		}
		fmt.Fprintf(&b, "  %s [label=\"%s\"%s];\n", name(tx), label.String(), attrs)
	}

	// Edges among cycle members, in a deterministic order.
	type edge struct{ src, dst *txn.Txn }
	var edges []edge
	for _, tx := range v.Cycle {
		for _, e := range tx.Out {
			if inCycle[e.Dst] {
				edges = append(edges, edge{tx, e.Dst})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].src.ID != edges[j].src.ID {
			return edges[i].src.ID < edges[j].src.ID
		}
		return edges[i].dst.ID < edges[j].dst.ID
	})
	for _, e := range edges {
		style := ""
		if ed := e.src.EdgeTo(e.dst); ed != nil && !ed.Cross {
			style = " [style=dashed, label=\"program order\"]"
		}
		fmt.Fprintf(&b, "  %s -> %s%s;\n", name(e.src), name(e.dst), style)
	}
	b.WriteString("}\n")
	return b.String()
}
