package lang

import (
	"strings"
	"testing"
)

func lintWarnings(t *testing.T, src string) []string {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, w := range Lint(f) {
		out = append(out, w.String())
	}
	return out
}

func hasWarning(warns []string, sub string) bool {
	for _, w := range warns {
		if strings.Contains(w, sub) {
			return true
		}
	}
	return false
}

func TestLintCleanProgram(t *testing.T) {
	warns := lintWarnings(t, bankSrc)
	if len(warns) != 0 {
		t.Errorf("clean program warned: %v", warns)
	}
}

func TestLintUnbalancedAcquire(t *testing.T) {
	src := `program p
lock l
method m { acquire l }
thread m`
	warns := lintWarnings(t, src)
	if !hasWarning(warns, "exits holding") {
		t.Errorf("warnings: %v", warns)
	}
}

func TestLintReleaseWithoutHold(t *testing.T) {
	src := `program p
lock l
method m { release l }
thread m`
	if warns := lintWarnings(t, src); !hasWarning(warns, "without holding") {
		t.Errorf("warnings: %v", warns)
	}
}

func TestLintWaitWithoutMonitor(t *testing.T) {
	src := `program p
lock l
method m { wait l }
thread m`
	if warns := lintWarnings(t, src); !hasWarning(warns, "without holding its monitor") {
		t.Errorf("warnings: %v", warns)
	}
}

func TestLintAtomicWait(t *testing.T) {
	src := `program p
lock l
atomic method m { acquire l wait l release l }
method main { call m }
thread main`
	if warns := lintWarnings(t, src); !hasWarning(warns, "cannot be atomic") {
		t.Errorf("warnings: %v", warns)
	}
}

func TestLintLoopImbalance(t *testing.T) {
	src := `program p
lock l
method m { loop 3 { acquire l } release l release l release l }
thread m`
	if warns := lintWarnings(t, src); !hasWarning(warns, "loop body changes held monitors") {
		t.Errorf("warnings: %v", warns)
	}
}

func TestLintBalancedLoopOK(t *testing.T) {
	src := `program p
lock l
object o
method m { loop 3 { acquire l read o.x release l } }
thread m`
	if warns := lintWarnings(t, src); len(warns) != 0 {
		t.Errorf("balanced loop warned: %v", warns)
	}
}

func TestLintDeadMethod(t *testing.T) {
	src := `program p
object o
method dead { read o.x }
method main { read o.x }
thread main`
	if warns := lintWarnings(t, src); !hasWarning(warns, `"dead" is never called`) {
		t.Errorf("warnings: %v", warns)
	}
}

func TestLintForkNeverForked(t *testing.T) {
	src := `program p
object o
method child { read o.x }
method main { read o.x }
thread main
thread child forked`
	warns := lintWarnings(t, src)
	if !hasWarning(warns, "never forked") {
		t.Errorf("warnings: %v", warns)
	}
}

func TestLintForkNeverJoined(t *testing.T) {
	src := `program p
object o
method child { read o.x }
method main { fork child }
thread main
thread child forked`
	if warns := lintWarnings(t, src); !hasWarning(warns, "never joined") {
		t.Errorf("warnings: %v", warns)
	}
}

func TestLintCorpusFilesClean(t *testing.T) {
	// The shipped corpus must lint clean; see corpus files for why handoff
	// deliberately leaves consume non-atomic.
	for _, src := range []string{bankSrc} {
		if warns := lintWarnings(t, src); len(warns) != 0 {
			t.Errorf("corpus warned: %v", warns)
		}
	}
}
