package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"doublechecker/internal/obs"
)

// TestQuarantineEmitsFlightRecord: when a corrupt disk entry is quarantined
// and the store carries a flight recorder, the incident lands in the ring
// (an EventQuarantine naming the entry) and the recorder's snapshot is
// written beside the quarantined artifact as <name>.flight.json.
func TestQuarantineEmitsFlightRecord(t *testing.T) {
	dir := t.TempDir()
	rec := obs.NewFlightRecorder(16)
	rec.Add(obs.Event{Kind: obs.EventLog, Name: "INFO", Msg: "pre-corruption activity"})
	s, err := Open(Config{Dir: dir, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	if err := s.Put(k, testEntry(1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k.ID()+".dcr")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt entry served as a hit")
	}

	var quarantines int
	for _, e := range rec.Snapshot() {
		if e.Kind == obs.EventQuarantine {
			quarantines++
			if e.Name != k.ID() {
				t.Errorf("quarantine event names %q, want %q", e.Name, k.ID())
			}
		}
	}
	if quarantines != 1 {
		t.Fatalf("recorder holds %d quarantine events, want 1", quarantines)
	}

	// The post-mortem file sits beside the quarantined bytes and parses as a
	// recorder snapshot that already includes the quarantine itself.
	fpath := filepath.Join(dir, QuarantineDir, k.ID()+".dcr.flight.json")
	data, err := os.ReadFile(fpath)
	if err != nil {
		t.Fatalf("flight snapshot not written: %v", err)
	}
	var snap struct {
		Total    uint64      `json:"total_events"`
		Retained int         `json:"retained"`
		Events   []obs.Event `json:"events"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("flight snapshot does not parse: %v\n%s", err, data)
	}
	if snap.Retained != len(snap.Events) || snap.Retained == 0 {
		t.Fatalf("bad snapshot shape: retained=%d events=%d", snap.Retained, len(snap.Events))
	}
	found := false
	for _, e := range snap.Events {
		if e.Kind == obs.EventQuarantine && e.Name == k.ID() {
			found = true
		}
	}
	if !found {
		t.Errorf("flight snapshot missing the quarantine event:\n%s", data)
	}
}

// TestQuarantineWithoutRecorder: the recorderless store must quarantine
// exactly as before — no flight file, no panic on the nil recorder.
func TestQuarantineWithoutRecorder(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(2)
	if err := s.Put(k, testEntry(2)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k.ID()+".dcr")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, k.ID()+".dcr")); err != nil {
		t.Errorf("quarantined artifact missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, k.ID()+".dcr.flight.json")); !os.IsNotExist(err) {
		t.Errorf("recorderless store wrote a flight snapshot: %v", err)
	}
}
