// Singleflight: concurrent identical requests share one checker run.
//
// The store's index doubles as the coalescing point. The first caller to
// miss on a key becomes the *leader* and owns the checker run; everyone who
// misses on the same key while the leader is in flight becomes a *waiter*
// and blocks on the flight's done channel instead of re-running the check.
// The leader publishes its result (or failure) with Finish; waiters decide
// for themselves what a shared failure means (the server, for instance,
// re-attributes a leader that was canceled by its own client rather than
// blaming the waiter's request).
package store

import "sync"

// Flight is one in-progress computation for a key. Waiters select on
// Done(), then read Result().
type Flight struct {
	done chan struct{}

	once  sync.Once
	entry *Entry
	err   error
}

// Done is closed when the leader finishes, successfully or not.
func (f *Flight) Done() <-chan struct{} { return f.done }

// Result returns the leader's outcome. Valid only after Done() is closed.
func (f *Flight) Result() (*Entry, error) { return f.entry, f.err }

// Lookup is the coalescing read: a cache hit returns (entry, nil, false); a
// miss either joins an existing flight (nil, flight, false) or creates one
// with the caller as leader (nil, flight, true). A leader must call Finish
// exactly once; abandoning a flight strands its waiters. Misses are charged
// to leaders only, so the hit/miss/coalesced counters partition requests.
func (s *Store) Lookup(k Key) (*Entry, *Flight, bool) {
	if e, ok := s.lookup(k); ok {
		return e, nil, false
	}
	id := k.ID()
	s.mu.Lock()
	if f, ok := s.flights[id]; ok {
		s.mu.Unlock()
		s.coalesced.Inc()
		return nil, f, false
	}
	// The leader that was in flight when we missed may have finished in
	// the window before we took the lock; its Put lands in the memory tier
	// under this same mutex, so one locked re-check closes the race.
	if el, ok := s.mem[id]; ok {
		s.lru.MoveToFront(el)
		e := el.Value.(*memEntry).e
		s.mu.Unlock()
		s.hits.Inc()
		return e, nil, false
	}
	f := &Flight{done: make(chan struct{})}
	s.flights[id] = f
	s.mu.Unlock()
	s.misses.Inc()
	return nil, f, true
}

// Finish publishes the leader's outcome on f and releases its waiters. The
// result is NOT stored here — a leader that wants the result cached calls
// Put first (hits for late arrivals), then Finish (release for waiters);
// a leader whose run failed or is uncacheable calls Finish alone.
func (s *Store) Finish(k Key, f *Flight, e *Entry, err error) {
	id := k.ID()
	s.mu.Lock()
	if s.flights[id] == f {
		delete(s.flights, id)
	}
	s.mu.Unlock()
	f.once.Do(func() {
		f.entry = e
		f.err = err
		close(f.done)
	})
}
