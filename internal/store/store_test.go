package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"doublechecker/internal/telemetry"
)

// testKey builds a distinct valid key; i varies every field so two keys
// never collide by accident.
func testKey(i int) Key {
	return Key{
		TraceVersion:  1,
		ProgramDigest: 0x1111 + uint64(i),
		SpecDigest:    0x2222 + uint64(i),
		Seed:          int64(i) - 3,
		Sched:         fmt.Sprintf("sticky(0.%d)", i),
		Source:        fmt.Sprintf("src-%d", i),
		BodyDigest:    0x3333 + uint64(i),
		Analysis:      "dc-single",
	}
}

func testEntry(i int) *Entry {
	return &Entry{
		Program:    fmt.Sprintf("prog-%d", i),
		Events:     uint64(100 + i),
		Violations: i % 3,
		Blamed:     []string{"deposit", "withdraw"}[:i%3],
	}
}

func TestKeyEncodeRoundTrip(t *testing.T) {
	for i := 0; i < 10; i++ {
		k := testKey(i)
		got, err := DecodeKey(k.Encode())
		if err != nil {
			t.Fatalf("key %d: decode: %v", i, err)
		}
		if !bytes.Equal(got.Encode(), k.Encode()) {
			t.Fatalf("key %d: round trip mismatch: %+v != %+v", i, got, k)
		}
	}
	// Empty strings and extreme numerics round-trip too.
	k := Key{Seed: -1 << 62, ProgramDigest: ^uint64(0)}
	if got, err := DecodeKey(k.Encode()); err != nil || got != k {
		t.Fatalf("extreme key round trip: %+v, %v", got, err)
	}
}

func TestKeyDecodeRejects(t *testing.T) {
	enc := testKey(1).Encode()
	// Truncation at every prefix length must fail, never mis-decode.
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeKey(enc[:n]); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", n)
		}
	}
	if _, err := DecodeKey(append(bytes.Clone(enc), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: got %v, want ErrCorrupt", err)
	}
	// A future format version is ErrVersion, not ErrCorrupt: a stale cache,
	// not a broken one.
	bumped := append([]byte{FormatVersion + 1}, enc[1:]...)
	if _, err := DecodeKey(bumped); !errors.Is(err, ErrVersion) {
		t.Fatalf("version bump: got %v, want ErrVersion", err)
	}
}

func TestKeyIDDistinct(t *testing.T) {
	base := testKey(1)
	ids := map[string]string{base.ID(): "base"}
	perturb := map[string]Key{
		"trace version":  {TraceVersion: 2, ProgramDigest: base.ProgramDigest, SpecDigest: base.SpecDigest, Seed: base.Seed, Sched: base.Sched, Source: base.Source, BodyDigest: base.BodyDigest, Analysis: base.Analysis},
		"program digest": func() Key { k := base; k.ProgramDigest++; return k }(),
		"spec digest":    func() Key { k := base; k.SpecDigest++; return k }(),
		"seed":           func() Key { k := base; k.Seed++; return k }(),
		"sched":          func() Key { k := base; k.Sched += "x"; return k }(),
		"source":         func() Key { k := base; k.Source += "x"; return k }(),
		"body digest":    func() Key { k := base; k.BodyDigest++; return k }(),
		"analysis":       func() Key { k := base; k.Analysis = "velodrome"; return k }(),
	}
	for field, k := range perturb {
		id := k.ID()
		if prev, dup := ids[id]; dup {
			t.Errorf("perturbing %s collides with %s", field, prev)
		}
		ids[id] = field
	}
}

func TestEntryEncodeRoundTrip(t *testing.T) {
	for i := 0; i < 5; i++ {
		e := testEntry(i)
		e.Key = testKey(i)
		got, err := decodeEntry(e.encode())
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if got.Program != e.Program || got.Events != e.Events ||
			got.Violations != e.Violations || len(got.Blamed) != len(e.Blamed) {
			t.Fatalf("entry %d: round trip mismatch: %+v != %+v", i, got, e)
		}
		if !bytes.Equal(got.Key.Encode(), e.Key.Encode()) {
			t.Fatalf("entry %d: embedded key mismatch", i)
		}
	}
}

func TestMemTierLRUEviction(t *testing.T) {
	reg := telemetry.NewRegistry()
	// Budget for roughly two entries: the third insert evicts the coldest.
	one := testEntry(1)
	one.Key = testKey(1)
	s, err := Open(Config{MemBudget: 2*one.size() + 10, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		s.Put(testKey(i), testEntry(i))
	}
	// Touch key 1 so key 2 is the LRU victim.
	if _, ok := s.Get(testKey(1)); !ok {
		t.Fatal("key 1 missing before eviction")
	}
	s.Put(testKey(3), testEntry(3))
	if _, ok := s.Get(testKey(2)); ok {
		t.Error("cold key 2 survived past the byte budget")
	}
	if _, ok := s.Get(testKey(1)); !ok {
		t.Error("recently-used key 1 was evicted")
	}
	if _, ok := s.Get(testKey(3)); !ok {
		t.Error("just-inserted key 3 missing")
	}
	if got := reg.Counter(telemetry.StoreMemEvictions).Value(); got != 1 {
		t.Errorf("mem evictions = %d, want 1", got)
	}
	if got := reg.Gauge(telemetry.StoreMemBytes).Value(); got <= 0 {
		t.Errorf("mem bytes gauge = %v, want > 0", got)
	}
}

func TestDiskTierPersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	if err := s1.Put(k, testEntry(1)); err != nil {
		t.Fatal(err)
	}

	// A second store over the same directory — a process restart — serves
	// the entry from disk.
	reg := telemetry.NewRegistry()
	s2, err := Open(Config{Dir: dir, MemBudget: DefaultMemBudget, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := s2.Get(k)
	if !ok {
		t.Fatal("disk entry missing after reopen")
	}
	if e.Program != "prog-1" || e.Events != 101 {
		t.Fatalf("disk entry corrupted: %+v", e)
	}
	if got := reg.Counter(telemetry.StoreHits).Value(); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	// The hit was promoted: a second Get is a memory hit even if the file
	// vanishes.
	os.Remove(filepath.Join(dir, k.ID()+".dcr"))
	if _, ok := s2.Get(k); !ok {
		t.Error("promoted entry not served from memory tier")
	}
}

func TestCorruptDiskEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	// No memory tier: every Get goes to disk.
	s, err := Open(Config{Dir: dir, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	if err := s.Put(k, testEntry(1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k.ID()+".dcr")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if got := reg.Counter(telemetry.StoreQuarantined).Value(); got != 1 {
		t.Errorf("quarantined = %d, want 1", got)
	}
	// The artifact moved aside, evidence intact; the original slot is gone.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt file still in place: %v", err)
	}
	qpath := filepath.Join(dir, QuarantineDir, k.ID()+".dcr")
	if q, err := os.ReadFile(qpath); err != nil || !bytes.Equal(q, raw) {
		t.Errorf("quarantined bytes not preserved: %v", err)
	}
	// Once quarantined, the key is a plain miss, not a repeat quarantine.
	if _, ok := s.Get(k); ok {
		t.Error("quarantined key served as a hit")
	}
	if got := reg.Counter(telemetry.StoreQuarantined).Value(); got != 1 {
		t.Errorf("quarantined after re-Get = %d, want 1", got)
	}
}

func TestMisfiledEntryIsMiss(t *testing.T) {
	// An entry filed under another key's name (hash collision, tampering)
	// must decode-fail closed even though its bytes are pristine.
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	s, err := Open(Config{Dir: dir, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(1), testEntry(1)); err != nil {
		t.Fatal(err)
	}
	// Plant key 1's (valid!) file under key 2's name.
	raw, err := os.ReadFile(filepath.Join(dir, testKey(1).ID()+".dcr"))
	if err != nil {
		t.Fatal(err)
	}
	k2 := testKey(2)
	if err := os.WriteFile(filepath.Join(dir, k2.ID()+".dcr"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{Dir: dir, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(k2); ok {
		t.Fatal("misfiled entry served as a wrong hit")
	}
	if got := reg.Counter(telemetry.StoreQuarantined).Value(); got != 1 {
		t.Errorf("quarantined = %d, want 1", got)
	}
	if _, ok := s2.Get(testKey(1)); !ok {
		t.Error("the correctly-filed original was lost")
	}
}

func TestDiskBudgetEvictsOldest(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	one := testEntry(1)
	one.Key = testKey(1)
	entryBytes := int64(len(one.encode()))
	s, err := Open(Config{Dir: dir, DiskBudget: 2*entryBytes + entryBytes/2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := s.Put(testKey(i), testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get(testKey(1)); ok {
		t.Error("oldest disk entry survived past the budget")
	}
	for i := 2; i <= 3; i++ {
		if _, ok := s.Get(testKey(i)); !ok {
			t.Errorf("entry %d evicted out of order", i)
		}
	}
	if got := reg.Counter(telemetry.StoreDiskEvictions).Value(); got == 0 {
		t.Error("no disk evictions counted")
	}
}

func TestSingleflightLeaderAndWaiters(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := Open(Config{MemBudget: DefaultMemBudget, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)

	_, flight, leader := s.Lookup(k)
	if !leader || flight == nil {
		t.Fatal("first Lookup did not create a flight")
	}
	// Concurrent lookups join the same flight instead of leading.
	const waiters = 4
	var wg sync.WaitGroup
	results := make([]*Entry, waiters)
	for i := 0; i < waiters; i++ {
		_, f2, lead2 := s.Lookup(k)
		if lead2 || f2 != flight {
			t.Fatalf("waiter %d: leader=%v flight-match=%v", i, lead2, f2 == flight)
		}
		wg.Add(1)
		go func(i int, f *Flight) {
			defer wg.Done()
			<-f.Done()
			results[i], _ = f.Result()
		}(i, f2)
	}

	want := testEntry(1)
	s.Put(k, want)
	s.Finish(k, flight, want, nil)
	wg.Wait()
	for i, e := range results {
		if e == nil || e.Program != want.Program {
			t.Errorf("waiter %d got %+v", i, e)
		}
	}
	// The flight is gone: the next Lookup is a plain hit.
	if e, f, lead := s.Lookup(k); e == nil || f != nil || lead {
		t.Errorf("post-finish Lookup: entry=%v flight=%v leader=%v", e, f, lead)
	}
	if got := reg.Counter(telemetry.StoreCoalesced).Value(); got != waiters {
		t.Errorf("coalesced = %d, want %d", got, waiters)
	}
	if got := reg.Counter(telemetry.StoreMisses).Value(); got != 1 {
		t.Errorf("misses = %d, want 1 (leader only)", got)
	}
}

func TestSingleflightFailurePropagates(t *testing.T) {
	s, err := Open(Config{MemBudget: DefaultMemBudget})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	_, flight, leader := s.Lookup(k)
	if !leader {
		t.Fatal("no leader")
	}
	wantErr := errors.New("checker exploded")
	s.Finish(k, flight, nil, wantErr)
	<-flight.Done()
	if e, err := flight.Result(); e != nil || !errors.Is(err, wantErr) {
		t.Fatalf("Result() = %v, %v", e, err)
	}
	// A failed flight caches nothing: the next Lookup leads again.
	if _, _, lead := s.Lookup(k); !lead {
		t.Error("failed flight left residue; second Lookup did not lead")
	}
}

func TestPutGetWithBothTiersDisabled(t *testing.T) {
	// A store with no tiers is legal (dcheck one-shot mode disables memory
	// and may have no dir): Put is a no-op, Get a guaranteed miss.
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	if err := s.Put(k, testEntry(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Error("tierless store produced a hit")
	}
}
