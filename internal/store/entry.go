// On-disk entry format: a CRC-framed record holding one check result.
//
// Layout:
//
//	"DCRS" | uvarint payloadLen | uint32le crc32(payload) | payload
//
// payload:
//
//	uvarint keyLen | key encoding (see key.go)
//	string program | uvarint events | uvarint violations
//	uvarint nBlamed | nBlamed strings
//
// The decoder is strict the same way the trace reader is: bad magic, a
// short payload, a CRC mismatch, an embedded key that fails DecodeKey, or
// trailing bytes are all ErrCorrupt — and the store maps every corrupt
// entry to a miss plus a quarantine, never a served result.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// entryMagic leads every result file ("DoubleChecker Result Store").
var entryMagic = []byte("DCRS")

// maxEntryPayload bounds the decoded payload; a result holds a program
// name, a handful of counters, and blamed-method names.
const maxEntryPayload = 1 << 20

// Entry is one cached check result: the structured fields of a replay
// report. The display name a client chose for the trace is *not* stored —
// the server re-renders the identity line per request from the caller's
// name plus these fields, so a cache hit can never leak another client's
// label and the rendered bytes stay identical to a cold run.
type Entry struct {
	// Key is the full content address, embedded so a disk load can verify
	// the file answers the question being asked (a planted or misfiled
	// entry decodes to a miss, not a wrong hit).
	Key Key
	// Program is the trace's program name; Events the replayed event count.
	Program string
	Events  uint64
	// Violations and Blamed are the check verdict: the dynamic violation
	// count and the sorted blamed-method names.
	Violations int
	Blamed     []string
}

// encode renders the entry in the on-disk format.
func (e *Entry) encode() []byte {
	kb := e.Key.Encode()
	p := make([]byte, 0, 64+len(kb)+len(e.Program))
	p = binary.AppendUvarint(p, uint64(len(kb)))
	p = append(p, kb...)
	p = appendString(p, e.Program)
	p = binary.AppendUvarint(p, e.Events)
	p = binary.AppendUvarint(p, uint64(e.Violations))
	p = binary.AppendUvarint(p, uint64(len(e.Blamed)))
	for _, m := range e.Blamed {
		p = appendString(p, m)
	}

	b := make([]byte, 0, len(entryMagic)+16+len(p))
	b = append(b, entryMagic...)
	b = binary.AppendUvarint(b, uint64(len(p)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(p))
	return append(b, p...)
}

// decodeEntry decodes one on-disk record, verifying frame, CRC, and the
// embedded key. Any deviation is ErrCorrupt (or ErrVersion for a clean
// entry from another format generation).
func decodeEntry(b []byte) (*Entry, error) {
	if len(b) < len(entryMagic) || string(b[:len(entryMagic)]) != string(entryMagic) {
		return nil, fmt.Errorf("%w: bad entry magic", ErrCorrupt)
	}
	d := &keyDec{b: b, off: len(entryMagic)}
	plen, err := d.uvarint("payload length")
	if err != nil {
		return nil, err
	}
	if plen > maxEntryPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrCorrupt, plen)
	}
	crcb, err := d.bytes(4, "payload crc")
	if err != nil {
		return nil, err
	}
	payload, err := d.bytes(plen, "payload")
	if err != nil {
		return nil, err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes after entry", ErrCorrupt, len(d.b)-d.off)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crcb); got != want {
		return nil, fmt.Errorf("%w: entry crc mismatch (got %08x, want %08x)", ErrCorrupt, got, want)
	}

	p := &keyDec{b: payload}
	klen, err := p.uvarint("key length")
	if err != nil {
		return nil, err
	}
	kb, err := p.bytes(klen, "key")
	if err != nil {
		return nil, err
	}
	key, err := DecodeKey(kb)
	if err != nil {
		return nil, err
	}
	e := &Entry{Key: key}
	if e.Program, err = p.string("program"); err != nil {
		return nil, err
	}
	if e.Events, err = p.uvarint("events"); err != nil {
		return nil, err
	}
	v, err := p.uvarint("violations")
	if err != nil {
		return nil, err
	}
	e.Violations = int(v)
	n, err := p.uvarint("blamed count")
	if err != nil {
		return nil, err
	}
	if n > maxEntryPayload {
		return nil, fmt.Errorf("%w: blamed count %d exceeds limit", ErrCorrupt, n)
	}
	for i := uint64(0); i < n; i++ {
		m, err := p.string("blamed method")
		if err != nil {
			return nil, err
		}
		e.Blamed = append(e.Blamed, m)
	}
	if p.off != len(p.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes in payload", ErrCorrupt, len(p.b)-p.off)
	}
	return e, nil
}

// size is the entry's in-memory accounting charge against the LRU byte
// budget: the encoded length is an honest proxy for both tiers.
func (e *Entry) size() int64 {
	n := int64(len(entryMagic)) + 16 + int64(len(e.Key.Encode())) + int64(len(e.Program))
	for _, m := range e.Blamed {
		n += int64(len(m)) + 2
	}
	return n + 24
}
