// Cache keys: the content address of one check result.
//
// A key names everything that can change the bytes of a rendered check
// report, and nothing else. The determinism contract built up by the trace
// and PCD layers (a replayed report is a pure function of the trace bytes
// and the analysis) is what makes each field's inclusion or exclusion
// sound; DESIGN.md §12 maps every field to the contract clause that
// justifies it. Two deliberate choices:
//
//   - BodyDigest hashes the raw trace bytes. The header fields (program and
//     spec digests, seed, scheduler) identify the *intended* execution, but
//     two byte-different traces can share a header — a full recording and a
//     step-limited partial recording of the same schedule, for instance —
//     and they may check differently. Hashing the content closes that hole:
//     byte-different traces never collide, which is what "content-addressed"
//     promises.
//   - The PCD worker count is excluded. The pool's determinism contract
//     (PR 4) makes reports byte-identical at any worker budget, so caching
//     per budget would only shred the hit rate.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"

	"doublechecker/internal/trace"
)

// FormatVersion is the result-store format version. It leads every encoded
// key, so bumping it invalidates every existing entry at once — the
// invalidation story for any change to the entry format or to what a key
// must include.
const FormatVersion = 1

// Decode errors; match with errors.Is.
var (
	// ErrCorrupt reports an encoding that does not decode cleanly. The
	// store treats every corrupt artifact as a miss, never a hit.
	ErrCorrupt = errors.New("store: corrupt")
	// ErrVersion reports an encoding written by another store format
	// version (a stale cache after a format bump — a miss, not an error).
	ErrVersion = errors.New("store: format version mismatch")
)

// Key is the content address of one check result: the store format, the
// trace's identity (header fields plus a digest of the raw bytes), and the
// output-affecting checker configuration.
type Key struct {
	// TraceVersion is the trace file format version the entry was computed
	// from.
	TraceVersion int
	// ProgramDigest and SpecDigest are the trace header's FNV-1a digests of
	// the embedded program and atomicity specification.
	ProgramDigest uint64
	SpecDigest    uint64
	// Seed and Sched identify the recorded schedule; Source is the header's
	// provenance note. All three appear verbatim in the rendered report's
	// identity line, so they are output-affecting.
	Seed   int64
	Sched  string
	Source string
	// BodyDigest is FNV-1a over the complete raw trace bytes — the content
	// address proper. It subsumes the header fields for correctness; they
	// ride along for auditability and rendering.
	BodyDigest uint64
	// Analysis is the checker configuration's canonical name (dc-single,
	// velodrome, ...). Different analyses report different violations.
	Analysis string
}

// maxKeyString bounds decoded string fields; a key's strings are scheduler
// descriptors, analysis names, and source notes, never megabytes.
const maxKeyString = 1 << 16

// Encode renders the key canonically: the store format version, then every
// field in declaration order, varint- and length-prefix-encoded. The
// encoding is what ID hashes and what entries embed for verification.
func (k Key) Encode() []byte {
	b := make([]byte, 0, 64+len(k.Sched)+len(k.Source)+len(k.Analysis))
	b = binary.AppendUvarint(b, FormatVersion)
	b = binary.AppendUvarint(b, uint64(k.TraceVersion))
	b = binary.AppendUvarint(b, k.ProgramDigest)
	b = binary.AppendUvarint(b, k.SpecDigest)
	b = binary.AppendVarint(b, k.Seed)
	b = appendString(b, k.Sched)
	b = appendString(b, k.Source)
	b = binary.AppendUvarint(b, k.BodyDigest)
	b = appendString(b, k.Analysis)
	return b
}

// DecodeKey decodes a canonical key encoding. It is strict: a version
// mismatch is ErrVersion, anything else that does not round-trip —
// truncation, trailing bytes, oversized strings — is ErrCorrupt.
func DecodeKey(b []byte) (Key, error) {
	d := &keyDec{b: b}
	var k Key
	ver, err := d.uvarint("format version")
	if err != nil {
		return k, err
	}
	if ver != FormatVersion {
		return k, fmt.Errorf("%w: key is v%d, this store writes v%d", ErrVersion, ver, FormatVersion)
	}
	tv, err := d.uvarint("trace version")
	if err != nil {
		return k, err
	}
	k.TraceVersion = int(tv)
	if k.ProgramDigest, err = d.uvarint("program digest"); err != nil {
		return k, err
	}
	if k.SpecDigest, err = d.uvarint("spec digest"); err != nil {
		return k, err
	}
	if k.Seed, err = d.varint("seed"); err != nil {
		return k, err
	}
	if k.Sched, err = d.string("sched"); err != nil {
		return k, err
	}
	if k.Source, err = d.string("source"); err != nil {
		return k, err
	}
	if k.BodyDigest, err = d.uvarint("body digest"); err != nil {
		return k, err
	}
	if k.Analysis, err = d.string("analysis"); err != nil {
		return k, err
	}
	if d.off != len(d.b) {
		return k, fmt.Errorf("%w: %d trailing bytes after key", ErrCorrupt, len(d.b)-d.off)
	}
	return k, nil
}

// ID is the key's content address: the hex SHA-256 of its canonical
// encoding, used as the on-disk file name and the in-memory map key. Disk
// loads still verify the embedded key byte for byte, so even a hash
// collision (or a file planted under the wrong name) decodes to a miss.
func (k Key) ID() string {
	sum := sha256.Sum256(k.Encode())
	return hex.EncodeToString(sum[:])
}

// BodyDigest hashes raw trace bytes for Key.BodyDigest: FNV-1a 64, the same
// cheap identity the trace format stamps into its headers.
func BodyDigest(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// TraceKey assembles the cache key for checking the trace described by hdr
// (with raw-byte digest bodyDigest) under the named analysis. Every caller
// building a key goes through this one constructor so the field mapping
// cannot drift between the service and the CLIs.
func TraceKey(hdr *trace.Header, bodyDigest uint64, analysis string) Key {
	return Key{
		TraceVersion:  hdr.Version,
		ProgramDigest: hdr.ProgramDigest,
		SpecDigest:    hdr.SpecDigest,
		Seed:          hdr.Seed,
		Sched:         hdr.Sched,
		Source:        hdr.Source,
		BodyDigest:    bodyDigest,
		Analysis:      analysis,
	}
}

// appendString appends a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// keyDec is a strict cursor over one encoding; shared with the entry
// decoder.
type keyDec struct {
	b   []byte
	off int
}

func (d *keyDec) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	// Reject non-minimal encodings (0x80 0x00 for 0, ...): the codec is
	// canonical, so every value has exactly one accepted byte form.
	if n <= 0 || n != len(binary.AppendUvarint(nil, v)) {
		return 0, fmt.Errorf("%w: bad %s at offset %d", ErrCorrupt, what, d.off)
	}
	d.off += n
	return v, nil
}

func (d *keyDec) varint(what string) (int64, error) {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 || n != len(binary.AppendVarint(nil, v)) {
		return 0, fmt.Errorf("%w: bad %s at offset %d", ErrCorrupt, what, d.off)
	}
	d.off += n
	return v, nil
}

func (d *keyDec) string(what string) (string, error) {
	n, err := d.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > maxKeyString || n > uint64(len(d.b)-d.off) {
		return "", fmt.Errorf("%w: %s length %d exceeds payload", ErrCorrupt, what, n)
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *keyDec) bytes(n uint64, what string) ([]byte, error) {
	if n > uint64(len(d.b)-d.off) {
		return nil, fmt.Errorf("%w: %s length %d exceeds payload", ErrCorrupt, what, n)
	}
	p := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return p, nil
}
