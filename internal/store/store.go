// Package store is a two-tier content-addressed cache of check results.
//
// The determinism contract (PRs 4–5) says a check report is a byte-identical
// function of the trace bytes and the analysis; this package turns that
// guarantee into throughput by remembering results under a content address
// (key.go) in an in-memory LRU with a byte budget and, optionally, an
// on-disk tier written atomically (tmp + rename) and CRC-verified on read.
//
// Failure policy: every artifact that does not decode cleanly — truncated,
// bit-flipped, wrong version, misfiled under another key's name — is a
// MISS. It is quarantined aside (never deleted in place, so the evidence
// survives for inspection) and counted, and the caller re-runs the check.
// The cache can therefore cost a recomputation but can never change an
// answer.
//
// Singleflight (singleflight.go) rides on the same index so concurrent
// identical requests share one checker run.
package store

import (
	"bytes"
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"doublechecker/internal/obs"
	"doublechecker/internal/telemetry"
)

// DefaultMemBudget is the memory tier's default byte budget (dcserve's
// -cache-mem default). Entries are tiny — a key, a verdict, some method
// names — so this holds hundreds of thousands of results.
const DefaultMemBudget int64 = 64 << 20

// entryExt is the on-disk entry file suffix.
const entryExt = ".dcr"

// QuarantineDir is the subdirectory of Config.Dir that corrupt entries are
// moved into.
const QuarantineDir = "quarantine"

// Config configures a Store.
type Config struct {
	// Dir is the disk tier's directory; empty disables the disk tier.
	Dir string
	// MemBudget is the memory tier's byte budget; <= 0 disables the memory
	// tier (every Get consults the disk tier).
	MemBudget int64
	// DiskBudget caps the disk tier's total entry bytes; <= 0 means
	// unbounded. When exceeded, oldest entries are evicted first.
	DiskBudget int64
	// Telemetry receives store.* metrics; nil is valid and records nothing.
	Telemetry *telemetry.Registry
	// Recorder, if non-nil, receives a flight-recorder event whenever an
	// entry is quarantined, and the recorder's snapshot at that instant is
	// written beside the quarantined artifact (<name>.flight.json) — the
	// post-mortem record of what the process was doing when corruption
	// surfaced.
	Recorder *obs.FlightRecorder
}

// Store is the two-tier cache. All methods are safe for concurrent use.
type Store struct {
	dir        string
	memBudget  int64
	diskBudget int64

	hits        *telemetry.Counter
	misses      *telemetry.Counter
	coalesced   *telemetry.Counter
	memEvict    *telemetry.Counter
	diskEvict   *telemetry.Counter
	quarantined *telemetry.Counter
	memBytes    *telemetry.Gauge
	diskBytes   *telemetry.Gauge
	recorder    *obs.FlightRecorder

	mu       sync.Mutex
	mem      map[string]*list.Element // id → LRU element
	lru      *list.List               // front = most recent
	memSize  int64
	disk     map[string]*diskMeta // id → file metadata
	diskSize int64
	nextAge  int64
	flights  map[string]*Flight
}

// memEntry is one LRU slot.
type memEntry struct {
	id   string
	e    *Entry
	size int64
}

// diskMeta tracks one disk-tier file without holding its contents.
type diskMeta struct {
	size int64
	age  int64 // eviction order: lower = older
}

// Open creates or opens a store. With a Dir, the directory is created if
// needed and existing entries are indexed (oldest-first by modification
// time) without being read — contents are only decoded, and verified, on
// Get.
func Open(cfg Config) (*Store, error) {
	s := &Store{
		dir:         cfg.Dir,
		memBudget:   cfg.MemBudget,
		diskBudget:  cfg.DiskBudget,
		hits:        cfg.Telemetry.Counter(telemetry.StoreHits),
		misses:      cfg.Telemetry.Counter(telemetry.StoreMisses),
		coalesced:   cfg.Telemetry.Counter(telemetry.StoreCoalesced),
		memEvict:    cfg.Telemetry.Counter(telemetry.StoreMemEvictions),
		diskEvict:   cfg.Telemetry.Counter(telemetry.StoreDiskEvictions),
		quarantined: cfg.Telemetry.Counter(telemetry.StoreQuarantined),
		memBytes:    cfg.Telemetry.Gauge(telemetry.StoreMemBytes),
		diskBytes:   cfg.Telemetry.Gauge(telemetry.StoreDiskBytes),
		recorder:    cfg.Recorder,
		mem:         make(map[string]*list.Element),
		lru:         list.New(),
		disk:        make(map[string]*diskMeta),
		flights:     make(map[string]*Flight),
	}
	if s.dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", s.dir, err)
	}
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", s.dir, err)
	}
	type scanned struct {
		id    string
		size  int64
		mtime int64
	}
	var found []scanned
	for _, de := range names {
		if de.IsDir() || filepath.Ext(de.Name()) != entryExt {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with a concurrent eviction; skip
		}
		id := de.Name()[:len(de.Name())-len(entryExt)]
		found = append(found, scanned{id: id, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].mtime != found[j].mtime {
			return found[i].mtime < found[j].mtime
		}
		return found[i].id < found[j].id
	})
	for _, f := range found {
		s.disk[f.id] = &diskMeta{size: f.size, age: s.nextAge}
		s.nextAge++
		s.diskSize += f.size
	}
	s.diskBytes.Set(float64(s.diskSize))
	return s, nil
}

// Dir returns the disk tier's directory ("" when the tier is disabled).
func (s *Store) Dir() string { return s.dir }

// Get returns the cached entry for k, or (nil, false) on a miss. Disk-tier
// hits are promoted into the memory tier. Any artifact that fails to decode
// or answers a different key is quarantined and reported as a miss.
func (s *Store) Get(k Key) (*Entry, bool) {
	e, ok := s.lookup(k)
	if !ok {
		s.misses.Inc()
	}
	return e, ok
}

// lookup is Get without miss accounting (singleflight charges misses to the
// leader only). Hits are counted here.
func (s *Store) lookup(k Key) (*Entry, bool) {
	id := k.ID()
	s.mu.Lock()
	if el, ok := s.mem[id]; ok {
		s.lru.MoveToFront(el)
		e := el.Value.(*memEntry).e
		s.mu.Unlock()
		s.hits.Inc()
		return e, true
	}
	onDisk := false
	if s.dir != "" {
		_, onDisk = s.disk[id]
	}
	s.mu.Unlock()
	if !onDisk {
		return nil, false
	}

	// Disk read happens outside the lock; a file evicted in the window
	// shows up as not-exist, which is an ordinary miss, not corruption.
	path := s.entryPath(id)
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false
		}
		s.quarantine(id, path)
		return nil, false
	}
	e, err := decodeEntry(raw)
	if err != nil {
		s.quarantine(id, path)
		return nil, false
	}
	// The file must answer the question being asked: its embedded key has
	// to match k byte for byte, or someone misfiled (or planted) it.
	if !bytes.Equal(e.Key.Encode(), k.Encode()) {
		s.quarantine(id, path)
		return nil, false
	}

	s.mu.Lock()
	s.insertMemLocked(id, e)
	s.mu.Unlock()
	s.hits.Inc()
	return e, true
}

// Put stores e under k in both tiers. The entry's Key field is overwritten
// with k so the on-disk record always embeds the address it is filed under.
func (s *Store) Put(k Key, e *Entry) error {
	e.Key = k
	id := k.ID()

	var werr error
	if s.dir != "" {
		werr = s.writeDisk(id, e)
	}

	s.mu.Lock()
	s.insertMemLocked(id, e)
	s.mu.Unlock()
	return werr
}

// insertMemLocked installs e in the memory tier and evicts from the cold
// end until the byte budget holds. An entry larger than the whole budget is
// simply not cached. Caller holds s.mu.
func (s *Store) insertMemLocked(id string, e *Entry) {
	if s.memBudget <= 0 {
		return
	}
	sz := e.size()
	if sz > s.memBudget {
		return
	}
	if el, ok := s.mem[id]; ok {
		s.lru.MoveToFront(el)
		el.Value.(*memEntry).e = e
		return
	}
	el := s.lru.PushFront(&memEntry{id: id, e: e, size: sz})
	s.mem[id] = el
	s.memSize += sz
	for s.memSize > s.memBudget {
		back := s.lru.Back()
		if back == nil || back == el {
			break
		}
		me := back.Value.(*memEntry)
		s.lru.Remove(back)
		delete(s.mem, me.id)
		s.memSize -= me.size
		s.memEvict.Inc()
	}
	s.memBytes.Set(float64(s.memSize))
}

// writeDisk persists e atomically: encode to a temp file in the store
// directory, fsync-free rename into place (the cache tolerates losing the
// last write on power failure — it re-runs the check), then index it and
// evict oldest-first past the disk budget.
func (s *Store) writeDisk(id string, e *Entry) error {
	enc := e.encode()
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: put %s: %w", id, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(enc); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: put %s: %w", id, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: put %s: %w", id, err)
	}
	if err := os.Rename(tmpName, s.entryPath(id)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: put %s: %w", id, err)
	}

	size := int64(len(enc))
	var evict []string
	s.mu.Lock()
	if old, ok := s.disk[id]; ok {
		s.diskSize -= old.size
	}
	s.disk[id] = &diskMeta{size: size, age: s.nextAge}
	s.nextAge++
	s.diskSize += size
	if s.diskBudget > 0 {
		for s.diskSize > s.diskBudget {
			victim, ok := s.oldestLocked(id)
			if !ok {
				break
			}
			s.diskSize -= s.disk[victim].size
			delete(s.disk, victim)
			evict = append(evict, victim)
		}
	}
	s.diskBytes.Set(float64(s.diskSize))
	s.mu.Unlock()

	for _, victim := range evict {
		os.Remove(s.entryPath(victim))
		s.diskEvict.Inc()
	}
	return nil
}

// oldestLocked returns the id of the oldest disk entry other than keep.
// Caller holds s.mu. Linear scan: eviction only runs past the budget, and
// the disk index is small relative to what it saves.
func (s *Store) oldestLocked(keep string) (string, bool) {
	var (
		victim string
		minAge int64
		found  bool
	)
	for id, m := range s.disk {
		if id == keep {
			continue
		}
		if !found || m.age < minAge || (m.age == minAge && id < victim) {
			victim, minAge, found = id, m.age, true
		}
	}
	return victim, found
}

// quarantine moves a corrupt artifact aside into QuarantineDir (falling
// back to removal if the move fails), drops it from both indexes, and
// counts it. The original bytes survive for inspection; the caller sees a
// miss.
func (s *Store) quarantine(id, path string) {
	qdir := filepath.Join(s.dir, QuarantineDir)
	moved := false
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if err := os.Rename(path, filepath.Join(qdir, filepath.Base(path))); err == nil {
			moved = true
		}
	}
	if !moved {
		os.Remove(path)
	}
	// The quarantine IS the incident: record it, then drop the recorder's
	// snapshot beside the quarantined bytes so a post-mortem sees what the
	// process was doing when the corruption surfaced.
	s.recorder.Add(obs.Event{Kind: obs.EventQuarantine, Name: id, Msg: "store: corrupt entry quarantined: " + filepath.Base(path)})
	if s.recorder != nil && moved {
		os.WriteFile(filepath.Join(qdir, filepath.Base(path)+".flight.json"), s.recorder.JSON(), 0o644)
	}

	s.mu.Lock()
	if m, ok := s.disk[id]; ok {
		s.diskSize -= m.size
		delete(s.disk, id)
		s.diskBytes.Set(float64(s.diskSize))
	}
	if el, ok := s.mem[id]; ok {
		me := el.Value.(*memEntry)
		s.lru.Remove(el)
		delete(s.mem, id)
		s.memSize -= me.size
		s.memBytes.Set(float64(s.memSize))
	}
	s.mu.Unlock()
	s.quarantined.Inc()
}

func (s *Store) entryPath(id string) string {
	return filepath.Join(s.dir, id+entryExt)
}
