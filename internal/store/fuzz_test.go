package store

import (
	"bytes"
	"io"
	"testing"

	"doublechecker/internal/faultinject"
)

// fuzzKeys are the corpus anchors: realistic keys whose encodings seed both
// fuzzers.
func fuzzKeys() []Key {
	return []Key{
		{},
		testKey(0),
		testKey(7),
		{TraceVersion: 1, ProgramDigest: ^uint64(0), SpecDigest: 1, Seed: -1 << 62,
			Sched: "sticky(0.1)", Source: "testdata/x.dcp", BodyDigest: 42, Analysis: "velodrome"},
	}
}

// truncations seeds deterministic cut-short variants of enc using
// faultinject.IOPlan's short-read fault — the same mechanism the service
// tests use for interrupted uploads — one truncation point per read call.
func truncations(tb testing.TB, enc []byte) [][]byte {
	var out [][]byte
	for cut := uint64(1); ; cut++ {
		plan := &faultinject.IOPlan{ShortReadAt: cut}
		got, err := io.ReadAll(plan.Reader(bytes.NewReader(enc)))
		if err != nil {
			tb.Fatalf("short-read plan %d: %v", cut, err)
		}
		if len(got) >= len(enc) {
			return out
		}
		out = append(out, got)
	}
}

// FuzzKeyRoundTrip asserts the key codec's contract: whatever decodes must
// re-encode to the identical bytes (canonical form), and whatever fails to
// decode fails with a typed error — no panics, no silent mis-reads.
func FuzzKeyRoundTrip(f *testing.F) {
	for _, k := range fuzzKeys() {
		enc := k.Encode()
		f.Add(enc)
		for _, tr := range truncations(f, enc) {
			f.Add(tr)
		}
		flip := bytes.Clone(enc)
		flip[len(flip)/2] ^= 0x10
		f.Add(flip)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		k, err := DecodeKey(data)
		if err != nil {
			return
		}
		if !bytes.Equal(k.Encode(), data) {
			t.Fatalf("decode accepted a non-canonical encoding:\n in: %x\nout: %x", data, k.Encode())
		}
		if _, err := DecodeKey(k.Encode()); err != nil {
			t.Fatalf("re-decode of canonical form failed: %v", err)
		}
	})
}

// FuzzEntryDecode asserts the on-disk format's fail-closed contract: a
// mutated entry either fails to decode (a miss) or still round-trips with
// an internally consistent key — a corrupt artifact can never become a
// *wrong* hit, because the embedded key is what Get compares against the
// requested key.
func FuzzEntryDecode(f *testing.F) {
	for i, k := range fuzzKeys() {
		e := testEntry(i)
		e.Key = k
		enc := e.encode()
		f.Add(enc)
		// Truncation corpus via the deterministic short-read fault plan.
		for _, tr := range truncations(f, enc) {
			f.Add(tr)
		}
		// Bit-flip corpus: one flip in each region (magic, frame, payload).
		for _, at := range []int{0, 5, len(enc) / 2, len(enc) - 1} {
			flip := bytes.Clone(enc)
			flip[at] ^= 0x04
			f.Add(flip)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := decodeEntry(data)
		if err != nil {
			return // fail-closed: a miss, never a hit
		}
		// Accepted: it must be byte-canonical and self-consistent, so a Get
		// under its embedded key would return exactly these fields.
		if !bytes.Equal(e.encode(), data) {
			t.Fatalf("decode accepted a non-canonical entry:\n in: %x\nout: %x", data, e.encode())
		}
		if _, err := DecodeKey(e.Key.Encode()); err != nil {
			t.Fatalf("accepted entry embeds an undecodable key: %v", err)
		}
	})
}

// TestTruncatedEntriesAlwaysMiss pins the fuzz property on the seed corpus
// without needing the fuzzer: every IOPlan truncation of a valid entry is
// rejected.
func TestTruncatedEntriesAlwaysMiss(t *testing.T) {
	e := testEntry(2)
	e.Key = testKey(2)
	enc := e.encode()
	cuts := truncations(t, enc)
	if len(cuts) == 0 {
		t.Fatal("no truncations generated")
	}
	for i, tr := range cuts {
		if _, err := decodeEntry(tr); err == nil {
			t.Errorf("truncation %d (%d of %d bytes) decoded successfully", i, len(tr), len(enc))
		}
	}
	// And every single-bit flip anywhere in the record is rejected: the
	// CRC covers the payload, the frame fields are structurally checked.
	for at := 0; at < len(enc); at++ {
		for bit := 0; bit < 8; bit++ {
			flip := bytes.Clone(enc)
			flip[at] ^= 1 << bit
			if got, err := decodeEntry(flip); err == nil {
				// A flip that survives decode must at minimum change the
				// record's identity or content canonically (frame length
				// variants cannot: canonical-form check in the fuzzer).
				t.Errorf("bit flip at byte %d bit %d decoded: %+v", at, bit, got)
			}
		}
	}
}
