package graph

import (
	"cmp"
	"slices"
)

// Incremental strongly-connected-component condensation, the amortized
// engine behind ICD's deferred cycle detection. The structure maintains a
// Pearce–Kelly online topological order over the *condensation* of the
// eligible subgraph (components as union–find classes) and, when an edge
// insertion closes a cycle, collapses every component on a path between the
// edge's endpoints into one class. Where the scan engine re-runs Tarjan over
// the whole finished region at every transaction finish — O(N·(V+E)) across a
// run — this engine pays for each region only when it actually changes,
// touching the affected order window once per insertion.
//
// Three ICD-specific wrinkles shape the API (paper §3.2.3, §4):
//
//   - Detection is restricted to *finished* transactions. Nodes carry an
//     active flag initialized from an activation predicate; an edge becomes
//     eligible (entering the maintained condensation) only once both
//     endpoints are active. Until then it is parked on an inactive endpoint
//     and drained by Activate — which is exactly a transaction finish.
//   - Dead-node GC. The transaction manager sweeps nodes that can never join
//     a future cycle; Release removes them. Components always die whole
//     (members are mutually reachable, so the manager's reachability
//     mark-and-sweep keeps or frees them together), and stale adjacency is
//     dropped lazily via per-slot generation counters.
//   - Maximal-SCC extraction. CyclicComponent returns the full member set of
//     a node's component — the paper hands ICD's maximal SCCs to PCD — as a
//     ring walk, without rescanning any edges.
//
// Node slots are recycled through an internal free list, so steady-state
// operation (insert, activate, detect, release) allocates only when a
// component's adjacency genuinely grows — the same allocation discipline the
// txn manager applies to transaction nodes.
type IncSCC[N comparable] struct {
	active  func(N) bool
	onMerge func(winner, loser N)
	ids     map[N]int32
	nodes   []incNode[N]
	free    []int32
	order   int
	op      uint64
	listOp  uint64
	stats   IncSCCStats

	// scratch storage reused across insertions
	stack  []int32
	deltaF []int32
	deltaB []int32
	fx, bx []int32
	sset   []int32
	pool   []int
}

// incNode is one node slot. parent/rank/next/size/cyclic implement the
// union–find classes with a circular member ring; ord is the Pearce–Kelly
// topological index (meaningful on class roots); succs/preds hold
// component-level adjacency (appended on roots, lazily re-resolved after
// merges); pend parks not-yet-eligible edges on an inactive endpoint.
type incNode[N comparable] struct {
	val    N
	parent int32
	next   int32
	gen    int32
	active bool
	dead   bool
	cyclic bool
	ord    int
	size   int
	visitF uint64
	visitB uint64
	mark   uint64 // per-list dedup stamp (see compact loops)
	succs  []adjRef
	preds  []adjRef
	pend   []pendRef
}

// adjRef is one component-level adjacency entry. gen detects references to a
// released-and-recycled slot, which traversals drop during compaction.
type adjRef struct {
	slot int32
	gen  int32
}

// pendRef is one parked (not yet eligible) edge: the other endpoint plus the
// direction (out: the edge leaves the node the ref is parked on).
type pendRef struct {
	other int32
	gen   int32
	out   bool
}

// IncSCCStats counts the engine's work, for the cost model and the ablation
// comparison against the scan engine.
type IncSCCStats struct {
	Edges        uint64 // AddEdge calls
	Eligible     uint64 // edges inserted into the condensation (both ends active)
	Reorders     uint64 // insertions that disturbed the topological order
	NodesVisited uint64 // component roots visited during reorder discovery
	EdgesScanned uint64 // adjacency entries examined during discovery
	Merges       uint64 // insertions that collapsed components
	MergedComps  uint64 // components collapsed across all merges
	Releases     uint64 // nodes released by GC
}

// NewIncSCC returns an empty engine. active reports whether a node is
// eligible for detection at the moment it first enters the graph (for ICD:
// whether the transaction has finished); later eligibility changes must be
// announced via Activate.
func NewIncSCC[N comparable](active func(N) bool) *IncSCC[N] {
	if active == nil {
		active = func(N) bool { return true }
	}
	return &IncSCC[N]{active: active, ids: make(map[N]int32)}
}

// Stats returns work counters.
func (g *IncSCC[N]) Stats() IncSCCStats { return g.stats }

// SetOnMerge registers a hook invoked once per component collapsed into
// another (winner absorbs loser), with the components' representative values.
// Callers use it to maintain per-component aggregates — e.g. ICD keeps
// per-method member counts so detection can report a component without
// walking its members.
func (g *IncSCC[N]) SetOnMerge(f func(winner, loser N)) { g.onMerge = f }

// Component reports n's component: its representative value, member count,
// and whether it is cyclic (size > 1 or a self-loop). O(1) amortized — a
// union–find lookup, no member or edge walk. ok is false when n was never
// seen by AddEdge/Activate.
func (g *IncSCC[N]) Component(n N) (rep N, size int, cyclic, ok bool) {
	s, found := g.ids[n]
	if !found {
		var zero N
		return zero, 0, false, false
	}
	r := g.find(s)
	return g.nodes[r].val, g.nodes[r].size, g.nodes[r].cyclic, true
}

// Nodes returns the number of live (non-released) nodes.
func (g *IncSCC[N]) Nodes() int { return len(g.ids) }

// ensure returns n's slot, creating it (recycling a released slot when one
// is free) if needed.
func (g *IncSCC[N]) ensure(n N) int32 {
	if s, ok := g.ids[n]; ok {
		return s
	}
	var s int32
	if len(g.free) > 0 {
		s = g.free[len(g.free)-1]
		g.free = g.free[:len(g.free)-1]
	} else {
		g.nodes = append(g.nodes, incNode[N]{})
		s = int32(len(g.nodes) - 1)
	}
	nd := &g.nodes[s]
	gen := nd.gen
	succs, preds, pend := nd.succs[:0], nd.preds[:0], nd.pend[:0]
	*nd = incNode[N]{
		val: n, parent: s, next: s, gen: gen,
		active: g.active(n), ord: g.order, size: 1,
		succs: succs, preds: preds, pend: pend,
	}
	g.order++
	g.ids[n] = s
	return s
}

// find returns the union–find root of slot s, with path halving.
func (g *IncSCC[N]) find(s int32) int32 {
	for g.nodes[s].parent != s {
		p := g.nodes[s].parent
		g.nodes[s].parent = g.nodes[p].parent
		s = g.nodes[s].parent
	}
	return s
}

// resolve maps an adjacency reference to its current component root, or -1
// when the reference is stale (the slot was released, possibly recycled).
func (g *IncSCC[N]) resolve(r adjRef) int32 {
	nd := &g.nodes[r.slot]
	if nd.dead || nd.gen != r.gen {
		return -1
	}
	return g.find(r.slot)
}

// AddEdge records the edge src -> dst. If both endpoints are active the edge
// enters the condensation immediately (possibly collapsing components);
// otherwise it is parked on an inactive endpoint until Activate drains it.
func (g *IncSCC[N]) AddEdge(src, dst N) {
	g.stats.Edges++
	a := g.ensure(src)
	b := g.ensure(dst)
	switch {
	case !g.nodes[b].active:
		g.nodes[b].pend = append(g.nodes[b].pend, pendRef{other: a, gen: g.nodes[a].gen, out: false})
	case !g.nodes[a].active:
		g.nodes[a].pend = append(g.nodes[a].pend, pendRef{other: b, gen: g.nodes[b].gen, out: true})
	default:
		g.insertEligible(a, b)
	}
}

// Activate marks n eligible for detection (for ICD: the transaction
// finished) and drains the edges parked on it: each becomes eligible if its
// other endpoint is active, or migrates to that endpoint's pend list
// otherwise. A node never seen by AddEdge needs no slot: its activity is
// read from the activation predicate when it first appears.
func (g *IncSCC[N]) Activate(n N) {
	s, ok := g.ids[n]
	if !ok {
		return
	}
	nd := &g.nodes[s]
	if nd.active || nd.dead {
		return
	}
	nd.active = true
	pend := nd.pend
	nd.pend = nil // consumed below; restored (emptied) after the drain
	for _, r := range pend {
		o := &g.nodes[r.other]
		if o.dead || o.gen != r.gen {
			continue
		}
		if !o.active {
			o.pend = append(o.pend, pendRef{other: s, gen: g.nodes[s].gen, out: !r.out})
			continue
		}
		if r.out {
			g.insertEligible(s, r.other)
		} else {
			g.insertEligible(r.other, s)
		}
	}
	// Keep the backing array for the slot's next life. Safe: re-parks above
	// only target inactive nodes, and this node is active, so none of them
	// appended here.
	g.nodes[s].pend = pend[:0]
}

// CyclicComponent returns the members of n's component appended to buf when
// the component is cyclic (size > 1, or a self-loop), or nil otherwise. The
// walk touches each member once and no edges.
func (g *IncSCC[N]) CyclicComponent(n N, buf []N) []N {
	s, ok := g.ids[n]
	if !ok {
		return nil
	}
	r := g.find(s)
	if !g.nodes[r].cyclic {
		return nil
	}
	m := r
	for {
		buf = append(buf, g.nodes[m].val)
		m = g.nodes[m].next
		if m == r {
			return buf
		}
	}
}

// Release removes a node swept by the caller's GC. The caller must release
// every member of a dead component before the next AddEdge/Activate call (the
// transaction manager's mark-and-sweep guarantees this: mutually reachable
// members are swept together); adjacency into released slots is dropped
// lazily via generation checks.
func (g *IncSCC[N]) Release(n N) {
	s, ok := g.ids[n]
	if !ok {
		return
	}
	g.stats.Releases++
	delete(g.ids, n)
	nd := &g.nodes[s]
	nd.dead = true
	nd.gen++
	nd.succs = nd.succs[:0]
	nd.preds = nd.preds[:0]
	nd.pend = nd.pend[:0]
	var zero N
	nd.val = zero
	g.free = append(g.free, s)
}

// insertEligible inserts a component-level edge a -> b (both endpoints
// active) into the maintained condensation: Pearce–Kelly reordering of the
// affected window when the order is disturbed, union–find collapse of every
// component on a b ⇝ a path when the edge closes a cycle.
func (g *IncSCC[N]) insertEligible(a, b int32) {
	g.stats.Eligible++
	ra, rb := g.find(a), g.find(b)
	if ra == rb {
		// Internal edge: a single-node component becomes a self-loop cycle;
		// a larger one is already cyclic.
		g.nodes[ra].cyclic = true
		return
	}
	ub, lb := g.nodes[ra].ord, g.nodes[rb].ord
	if lb > ub {
		// Already consistent with the order: insertion is free.
		g.link(ra, rb)
		return
	}
	g.stats.Reorders++
	g.op++
	deltaF := g.forward(rb, ub)
	cycle := g.nodes[ra].visitF == g.op
	deltaB := g.backward(ra, lb)
	if !cycle {
		// Acyclic Pearce–Kelly reorder: the affected window's indices are
		// reassigned to deltaB (in relative order) then deltaF.
		g.pool = g.pool[:0]
		for _, r := range deltaF {
			g.pool = append(g.pool, g.nodes[r].ord)
		}
		for _, r := range deltaB {
			g.pool = append(g.pool, g.nodes[r].ord)
		}
		sortIndices(g.pool)
		sortRootsByOrd(g, deltaB)
		sortRootsByOrd(g, deltaF)
		k := 0
		for _, r := range deltaB {
			g.nodes[r].ord = g.pool[k]
			k++
		}
		for _, r := range deltaF {
			g.nodes[r].ord = g.pool[k]
			k++
		}
		g.link(ra, rb)
		return
	}
	// The edge closes a cycle: S = deltaF ∩ deltaB is exactly the set of
	// components on some b ⇝ a path (every such component lies in the order
	// window and is both forward-reachable from b and backward-reachable
	// from a). Merge S into one component placed between the rest of deltaB
	// (below) and the rest of deltaF (above); no edge crosses from the F
	// side to the B side or into S from the F side — such an edge would put
	// its endpoints on a b ⇝ a path, i.e. in S.
	g.stats.Merges++
	g.sset, g.fx, g.bx = g.sset[:0], g.fx[:0], g.bx[:0]
	g.pool = g.pool[:0]
	for _, r := range deltaF {
		g.pool = append(g.pool, g.nodes[r].ord)
		if g.nodes[r].visitB == g.op {
			g.sset = append(g.sset, r)
		} else {
			g.fx = append(g.fx, r)
		}
	}
	for _, r := range deltaB {
		if g.nodes[r].visitF != g.op {
			g.pool = append(g.pool, g.nodes[r].ord)
			g.bx = append(g.bx, r)
		}
	}
	sortIndices(g.pool)
	sortRootsByOrd(g, g.bx)
	sortRootsByOrd(g, g.fx)
	k := 0
	for _, r := range g.bx {
		g.nodes[r].ord = g.pool[k]
		k++
	}
	mergedOrd := g.pool[k]
	k++
	for _, r := range g.fx {
		g.nodes[r].ord = g.pool[k]
		k++
	}
	g.mergeInto(g.sset, mergedOrd)
}

// mergeInto collapses the component roots in s into one class: union–find
// links, ring splices, size sums, and adjacency concatenation, followed by an
// eager dedup-compaction of the merged lists. Without the compaction the
// winner's adjacency grows by the loser's full list at every merge and each
// later discovery pass rescans the duplicates — quadratic in the component's
// final size; compacting down to distinct external components keeps
// maintenance linear in the true edge count.
func (g *IncSCC[N]) mergeInto(s []int32, ord int) {
	g.stats.MergedComps += uint64(len(s))
	w := s[0]
	for _, r := range s[1:] {
		if g.onMerge != nil {
			g.onMerge(g.nodes[w].val, g.nodes[r].val)
		}
		g.nodes[r].parent = w
		g.nodes[w].next, g.nodes[r].next = g.nodes[r].next, g.nodes[w].next
		g.nodes[w].size += g.nodes[r].size
		g.nodes[w].succs = append(g.nodes[w].succs, g.nodes[r].succs...)
		g.nodes[w].preds = append(g.nodes[w].preds, g.nodes[r].preds...)
		g.nodes[r].succs = g.nodes[r].succs[:0]
		g.nodes[r].preds = g.nodes[r].preds[:0]
	}
	g.nodes[w].ord = ord
	g.nodes[w].cyclic = true
	g.nodes[w].succs = g.compactList(w, g.nodes[w].succs)
	g.nodes[w].preds = g.compactList(w, g.nodes[w].preds)
}

// compactList drops stale, internal, and duplicate entries from one of r's
// adjacency lists, normalizing survivors to their current component roots.
// Each distinct live target is kept once, stamped via mark against a fresh
// listOp so dedup needs no per-call map.
func (g *IncSCC[N]) compactList(r int32, list []adjRef) []adjRef {
	g.listOp++
	lop := g.listOp
	w := 0
	for _, ref := range list {
		g.stats.EdgesScanned++
		t := g.resolve(ref)
		if t < 0 || t == r || g.nodes[t].mark == lop {
			continue
		}
		g.nodes[t].mark = lop
		list[w] = adjRef{slot: t, gen: g.nodes[t].gen}
		w++
	}
	return list[:w]
}

// link appends the component-level adjacency for edge ra -> rb.
func (g *IncSCC[N]) link(ra, rb int32) {
	g.nodes[ra].succs = append(g.nodes[ra].succs, adjRef{slot: rb, gen: g.nodes[rb].gen})
	g.nodes[rb].preds = append(g.nodes[rb].preds, adjRef{slot: ra, gen: g.nodes[ra].gen})
}

// forward collects the component roots reachable from start with ord <= ub
// (stamping visitF), compacting stale and internal adjacency entries as it
// scans them.
func (g *IncSCC[N]) forward(start int32, ub int) []int32 {
	g.deltaF = g.deltaF[:0]
	g.stack = append(g.stack[:0], start)
	g.nodes[start].visitF = g.op
	for len(g.stack) > 0 {
		r := g.stack[len(g.stack)-1]
		g.stack = g.stack[:len(g.stack)-1]
		g.deltaF = append(g.deltaF, r)
		g.stats.NodesVisited++
		g.listOp++
		lop := g.listOp
		succs := g.nodes[r].succs
		w := 0
		for _, ref := range succs {
			g.stats.EdgesScanned++
			t := g.resolve(ref)
			if t < 0 || t == r || g.nodes[t].mark == lop {
				continue // stale, internal after a merge, or duplicate: drop
			}
			g.nodes[t].mark = lop
			succs[w] = adjRef{slot: t, gen: g.nodes[t].gen}
			w++
			if g.nodes[t].visitF != g.op && g.nodes[t].ord <= ub {
				g.nodes[t].visitF = g.op
				g.stack = append(g.stack, t)
			}
		}
		g.nodes[r].succs = succs[:w]
	}
	return g.deltaF
}

// backward collects the component roots reaching start with ord >= lb
// (stamping visitB), with the same lazy compaction over pred lists.
func (g *IncSCC[N]) backward(start int32, lb int) []int32 {
	g.deltaB = g.deltaB[:0]
	g.stack = append(g.stack[:0], start)
	g.nodes[start].visitB = g.op
	for len(g.stack) > 0 {
		r := g.stack[len(g.stack)-1]
		g.stack = g.stack[:len(g.stack)-1]
		g.deltaB = append(g.deltaB, r)
		g.stats.NodesVisited++
		g.listOp++
		lop := g.listOp
		preds := g.nodes[r].preds
		w := 0
		for _, ref := range preds {
			g.stats.EdgesScanned++
			t := g.resolve(ref)
			if t < 0 || t == r || g.nodes[t].mark == lop {
				continue
			}
			g.nodes[t].mark = lop
			preds[w] = adjRef{slot: t, gen: g.nodes[t].gen}
			w++
			if g.nodes[t].visitB != g.op && g.nodes[t].ord >= lb {
				g.nodes[t].visitB = g.op
				g.stack = append(g.stack, t)
			}
		}
		g.nodes[r].preds = preds[:w]
	}
	return g.deltaB
}

// sortIndices sorts the reassignment pool ascending.
func sortIndices(xs []int) { slices.Sort(xs) }

// sortRootsByOrd sorts component roots by their current topological index
// (indices are unique, so the order is total).
func sortRootsByOrd[N comparable](g *IncSCC[N], rs []int32) {
	slices.SortFunc(rs, func(x, y int32) int {
		return cmp.Compare(g.nodes[x].ord, g.nodes[y].ord)
	})
}
