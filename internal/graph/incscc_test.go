package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// incModel is the reference model the property tests compare IncSCC against:
// a plain adjacency list handed to the Tarjan-based SCCFrom, with the same
// activation and death restrictions expressed as an include predicate.
type incModel struct {
	succs  map[int][]int
	active map[int]bool
	dead   map[int]bool
}

func newIncModel() *incModel {
	return &incModel{succs: make(map[int][]int), active: make(map[int]bool), dead: make(map[int]bool)}
}

func (m *incModel) succ(n int) []int { return m.succs[n] }

func (m *incModel) include(n int) bool { return m.active[n] && !m.dead[n] }

// refComponent is the scan engine's answer: the cyclic SCC containing n over
// the active, live subgraph, or nil.
func (m *incModel) refComponent(n int) []int {
	return SCCFrom(n, m.succ, m.include)
}

func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

func equalSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := sortedCopy(a), sortedCopy(b)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// checkAgainstRef compares the engine's cyclic component against SCCFrom for
// every live node.
func checkAgainstRef(t *testing.T, g *IncSCC[int], m *incModel, ctx string) {
	t.Helper()
	for n := range m.succs {
		if m.dead[n] {
			continue
		}
		got := g.CyclicComponent(n, nil)
		want := m.refComponent(n)
		if (got == nil) != (want == nil) || !equalSets(got, want) {
			t.Fatalf("%s: node %d: engine comp %v, scan comp %v", ctx, n, sortedCopy(got), sortedCopy(want))
		}
	}
}

func TestIncSCCDirected(t *testing.T) {
	m := newIncModel()
	g := NewIncSCC(func(n int) bool { return m.active[n] })

	addEdge := func(a, b int) {
		m.succs[a] = append(m.succs[a], b)
		if _, ok := m.succs[b]; !ok {
			m.succs[b] = nil
		}
		g.AddEdge(a, b)
	}
	activate := func(n int) {
		if _, ok := m.succs[n]; !ok {
			m.succs[n] = nil
		}
		m.active[n] = true
		g.Activate(n)
	}

	// A 2-cycle forms only once both endpoints are active.
	addEdge(1, 2)
	addEdge(2, 1)
	checkAgainstRef(t, g, m, "both inactive")
	activate(1)
	checkAgainstRef(t, g, m, "one active")
	activate(2)
	checkAgainstRef(t, g, m, "2-cycle")
	if got := g.CyclicComponent(1, nil); !equalSets(got, []int{1, 2}) {
		t.Fatalf("expected comp {1,2}, got %v", got)
	}

	// A self-loop is a cyclic singleton.
	addEdge(3, 3)
	activate(3)
	if got := g.CyclicComponent(3, nil); !equalSets(got, []int{3}) {
		t.Fatalf("self-loop comp: got %v", got)
	}

	// Chain 4 -> 5 -> 6 stays acyclic; closing 6 -> 4 merges all three and
	// absorbs the existing 2-cycle when bridged.
	for _, n := range []int{4, 5, 6} {
		activate(n)
	}
	addEdge(4, 5)
	addEdge(5, 6)
	checkAgainstRef(t, g, m, "chain")
	addEdge(6, 4)
	checkAgainstRef(t, g, m, "3-cycle")
	addEdge(2, 4) // bridge into the triangle
	addEdge(6, 1) // and back: everything collapses into one component
	checkAgainstRef(t, g, m, "merged 5-comp")
	if got := g.CyclicComponent(5, nil); !equalSets(got, []int{1, 2, 4, 5, 6}) {
		t.Fatalf("merged comp: got %v", sortedCopy(got))
	}

	// Buffer reuse appends.
	buf := make([]int, 0, 8)
	got := g.CyclicComponent(4, buf)
	if !equalSets(got, []int{1, 2, 4, 5, 6}) {
		t.Fatalf("buffered comp: got %v", sortedCopy(got))
	}

	// Release the whole component (components die whole); slots recycle.
	before := g.Nodes()
	for _, n := range []int{1, 2, 4, 5, 6} {
		m.dead[n] = true
		g.Release(n)
	}
	if g.Nodes() != before-5 {
		t.Fatalf("expected %d live nodes, got %d", before-5, g.Nodes())
	}
	checkAgainstRef(t, g, m, "after release")

	// Recycled slots must not resurrect stale adjacency: build a fresh cycle
	// reusing freed slots.
	for _, n := range []int{10, 11, 12, 13, 14} {
		activate(n)
	}
	addEdge(10, 11)
	addEdge(11, 12)
	addEdge(12, 10)
	addEdge(13, 14)
	checkAgainstRef(t, g, m, "recycled slots")
	if got := g.CyclicComponent(11, nil); !equalSets(got, []int{10, 11, 12}) {
		t.Fatalf("recycled comp: got %v", sortedCopy(got))
	}
}

// TestIncSCCActivationOrder pins the regression the finished-only rule makes
// possible: all edges of a cycle exist before any endpoint activates, so the
// cycle must appear exactly when the last member activates — a pure
// eligibility change with no new edges.
func TestIncSCCActivationOrder(t *testing.T) {
	m := newIncModel()
	g := NewIncSCC(func(n int) bool { return m.active[n] })
	add := func(a, b int) {
		m.succs[a] = append(m.succs[a], b)
		if _, ok := m.succs[b]; !ok {
			m.succs[b] = nil
		}
		g.AddEdge(a, b)
	}
	add(1, 2)
	add(2, 3)
	add(3, 1)
	for _, n := range []int{3, 1} {
		m.active[n] = true
		g.Activate(n)
		checkAgainstRef(t, g, m, "partial activation")
	}
	if got := g.CyclicComponent(1, nil); got != nil {
		t.Fatalf("cycle reported before last member active: %v", got)
	}
	m.active[2] = true
	g.Activate(2)
	if got := g.CyclicComponent(2, nil); !equalSets(got, []int{1, 2, 3}) {
		t.Fatalf("cycle missing after last activation: got %v", sortedCopy(got))
	}
	checkAgainstRef(t, g, m, "full activation")
}

// TestIncSCCRandomized is the differential property test: random edge
// streams with interleaved activations and ICD-style reachability GC,
// compared against SCCFrom after every step.
func TestIncSCCRandomized(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := newIncModel()
		g := NewIncSCC(func(n int) bool { return m.active[n] })
		nodes := 3 + rng.Intn(20)
		ensure := func(n int) {
			if _, ok := m.succs[n]; !ok {
				m.succs[n] = nil
			}
		}
		steps := 60 + rng.Intn(120)
		next := nodes // fresh node ids after GC
		for i := 0; i < steps; i++ {
			switch k := rng.Intn(10); {
			case k < 6: // add edge
				a, b := rng.Intn(next), rng.Intn(next)
				if m.dead[a] || m.dead[b] {
					continue
				}
				ensure(a)
				ensure(b)
				if rng.Intn(12) == 0 {
					b = a // occasional self-loop
				}
				m.succs[a] = append(m.succs[a], b)
				g.AddEdge(a, b)
			case k < 9: // activate a random node
				n := rng.Intn(next)
				if m.dead[n] {
					continue
				}
				ensure(n)
				m.active[n] = true
				g.Activate(n)
			default: // ICD-style GC: sweep nodes unreachable from the roots
				if rng.Intn(3) > 0 {
					continue
				}
				roots := make([]int, 0, 8)
				for n := range m.succs {
					if m.dead[n] {
						continue
					}
					// Inactive nodes model unfinished transactions: always
					// roots, like the manager's per-thread currents.
					if !m.active[n] || rng.Intn(3) == 0 {
						roots = append(roots, n)
					}
				}
				reach := make(map[int]bool)
				var stack []int
				for _, r := range roots {
					if !reach[r] {
						reach[r] = true
						stack = append(stack, r)
					}
				}
				for len(stack) > 0 {
					n := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, s := range m.succs[n] {
						if !reach[s] && !m.dead[s] {
							reach[s] = true
							stack = append(stack, s)
						}
					}
				}
				for n := range m.succs {
					if !m.dead[n] && !reach[n] {
						m.dead[n] = true
						g.Release(n)
					}
				}
				next += 2 // new node ids appear after a sweep
			}
			checkAgainstRef(t, g, m, "seed")
		}
		// Final SCC multiset comparison: every cyclic component the scan
		// engine finds, the incremental engine must report identically.
		var all []int
		for n := range m.succs {
			if m.include(n) {
				all = append(all, n)
			}
		}
		sort.Ints(all)
		seen := make(map[int]bool)
		for _, comps := range SCCAll(all, m.succ, m.include) {
			if len(comps) == 1 && !HasSelfLoop(comps[0], func(n int) []int {
				return filtered(m.succ(n), m.include)
			}) {
				continue
			}
			got := g.CyclicComponent(comps[0], nil)
			if !equalSets(got, comps) {
				t.Fatalf("seed %d: comp of %d: engine %v, scan %v", seed, comps[0], sortedCopy(got), sortedCopy(comps))
			}
			for _, n := range comps {
				seen[n] = true
			}
		}
		// And no component the scan engine does not find.
		for _, n := range all {
			if !seen[n] && g.CyclicComponent(n, nil) != nil {
				t.Fatalf("seed %d: engine reports spurious comp at %d", seed, n)
			}
		}
	}
}
