package graph_test

import (
	"fmt"

	"doublechecker/internal/graph"
)

// ExampleIncrementalDAG shows online cycle detection: consistent edges are
// accepted, the closing edge is reported and rejected.
func ExampleIncrementalDAG() {
	d := graph.NewIncrementalDAG[string]()
	fmt.Println(d.AddEdge("a", "b"))
	fmt.Println(d.AddEdge("b", "c"))
	fmt.Println(d.AddEdge("c", "a")) // closes a cycle
	fmt.Println(d.AddEdge("a", "c")) // still fine: the cycle edge was rejected
	// Output:
	// false
	// false
	// true
	// false
}

// ExampleSCCFrom computes the strongly connected component of a node, the
// operation ICD performs when a transaction finishes.
func ExampleSCCFrom() {
	adj := map[int][]int{1: {2}, 2: {3}, 3: {1, 4}, 4: nil}
	comp := graph.SCCFrom(1, func(n int) []int { return adj[n] }, nil)
	fmt.Println(len(comp))
	// Output: 3
}
