package graph

import (
	"math/rand"
	"testing"
)

func TestIncrementalBasicCycle(t *testing.T) {
	d := NewIncrementalDAG[int]()
	if d.AddEdge(1, 2) || d.AddEdge(2, 3) {
		t.Fatal("chain should not cycle")
	}
	if !d.AddEdge(3, 1) {
		t.Fatal("closing edge must report a cycle")
	}
	// The cycle-closing edge is not inserted; the DAG stays valid.
	if !d.Validate() {
		t.Fatal("order invariant broken")
	}
	if d.AddEdge(1, 3) {
		t.Fatal("1->3 is consistent")
	}
}

func TestIncrementalSelfLoop(t *testing.T) {
	d := NewIncrementalDAG[int]()
	if !d.AddEdge(5, 5) {
		t.Error("self edge is a cycle")
	}
}

func TestIncrementalReorder(t *testing.T) {
	d := NewIncrementalDAG[string]()
	// Register c then a: c gets the lower index; edge a->c forces reorder.
	d.AddEdge("c", "d")
	d.AddEdge("a", "b")
	if d.AddEdge("b", "c") {
		t.Fatal("b->c should not cycle")
	}
	if !d.Validate() {
		t.Fatal("order invariant broken after reorder")
	}
	oa, _ := d.OrderOf("a")
	od, _ := d.OrderOf("d")
	if oa >= od {
		t.Errorf("a (%d) must precede d (%d)", oa, od)
	}
	if d.Stats().Reorders == 0 {
		t.Error("a reorder should have been counted")
	}
}

func TestIncrementalDuplicateEdges(t *testing.T) {
	d := NewIncrementalDAG[int]()
	d.AddEdge(1, 2)
	if d.AddEdge(1, 2) {
		t.Error("duplicate edge should not cycle")
	}
	if !d.AddEdge(2, 1) {
		t.Error("reverse edge must cycle")
	}
}

// TestPropertyIncrementalAgreesWithDFS inserts random edge streams into
// both the incremental structure and a plain adjacency map, comparing
// cycle verdicts edge by edge (the DFS oracle checks dst ->* src before
// insertion), and validates the topological invariant throughout.
func TestPropertyIncrementalAgreesWithDFS(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 4 + rng.Intn(12)
		d := NewIncrementalDAG[int]()
		adj := make(map[int][]int)
		succ := func(x int) []int { return adj[x] }
		for e := 0; e < 40; e++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			want := src == dst || Reachable(dst, src, succ)
			got := d.AddEdge(src, dst)
			if got != want {
				t.Fatalf("trial %d edge %d (%d->%d): incremental=%v dfs=%v",
					trial, e, src, dst, got, want)
			}
			if !want {
				adj[src] = append(adj[src], dst)
			}
			if !d.Validate() {
				t.Fatalf("trial %d edge %d: invariant broken", trial, e)
			}
		}
	}
}

func BenchmarkIncrementalVsDFS(b *testing.B) {
	// Build a long chain, then insert order-consistent shortcut edges near
	// the front: a per-edge DFS must re-walk the whole suffix to prove
	// acyclicity each time, while the incremental order answers from the
	// indices alone.
	const n = 400
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := NewIncrementalDAG[int]()
			for j := 0; j < n-1; j++ {
				d.AddEdge(j, j+1)
			}
			for j := 0; j < n-2; j++ {
				d.AddEdge(j, j+2) // consistent: free insertions
			}
		}
	})
	b.Run("dfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			adj := make(map[int][]int, n)
			succ := func(x int) []int { return adj[x] }
			add := func(src, dst int) {
				if !Reachable(dst, src, succ) {
					adj[src] = append(adj[src], dst)
				}
			}
			for j := 0; j < n-1; j++ {
				add(j, j+1)
			}
			for j := 0; j < n-2; j++ {
				add(j, j+2)
			}
		}
	})
}
