// Package graph provides the small set of directed-graph algorithms the
// atomicity checkers need: Tarjan strongly connected components, depth-first
// reachability, and explicit cycle extraction.
//
// The algorithms are generic over the node type. Rather than forcing callers
// to materialize an adjacency structure, every entry point takes a successor
// function. The checkers' dependence graphs (IDG and PDG) store adjacency on
// the transaction nodes themselves, so a closure over those nodes is the
// natural representation.
//
// All algorithms are iterative (explicit stacks); dependence graphs over long
// executions can be deep enough to overflow the goroutine stack with naive
// recursion.
package graph

// SuccFunc returns the successors of a node. It may return the same slice on
// every call; the algorithms do not retain or mutate it.
type SuccFunc[N comparable] func(N) []N

// Reachable reports whether to is reachable from from by following successor
// edges. A node is considered reachable from itself only via a non-empty
// path, except when from == to and a self-loop or cycle exists; callers that
// want the trivial answer for from == to should special-case it. Here,
// Reachable(from, from) reports whether from lies on a cycle through itself.
func Reachable[N comparable](from, to N, succ SuccFunc[N]) bool {
	seen := make(map[N]bool)
	stack := []N{}
	for _, s := range succ(from) {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		for _, s := range succ(n) {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// FindPath returns a path from from to to (inclusive of both endpoints), or
// nil if none exists. Like Reachable, the path must contain at least one
// edge: FindPath(n, n, succ) finds a cycle through n if one exists.
func FindPath[N comparable](from, to N, succ SuccFunc[N]) []N {
	parent := make(map[N]N)
	seen := make(map[N]bool)
	stack := []N{}
	for _, s := range succ(from) {
		if !seen[s] {
			seen[s] = true
			parent[s] = from
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			// Reconstruct the path by walking parents back to from.
			rev := []N{n}
			for {
				n = parent[n]
				rev = append(rev, n)
				if n == from {
					break
				}
				if len(rev) > len(parent)+2 {
					panic("graph: parent chain cycle")
				}
			}
			path := make([]N, len(rev))
			for i, v := range rev {
				path[len(rev)-1-i] = v
			}
			return path
		}
		for _, s := range succ(n) {
			if !seen[s] {
				seen[s] = true
				parent[s] = n
				stack = append(stack, s)
			}
		}
	}
	return nil
}

// CycleThrough returns the nodes of a cycle that passes through n, as a path
// n -> ... -> n with the final repetition of n omitted, or nil if n is not on
// any cycle. A self-loop yields [n].
func CycleThrough[N comparable](n N, succ SuccFunc[N]) []N {
	path := FindPath(n, n, succ)
	if path == nil {
		return nil
	}
	return path[:len(path)-1]
}

// tarjanFrame is an explicit DFS stack frame for the iterative Tarjan SCC
// computation.
type tarjanFrame[N comparable] struct {
	node  N
	succs []N
	next  int // index of the next unvisited successor
}

// SCCFrom computes the strongly connected component containing root, using
// Tarjan's algorithm restricted to nodes for which include returns true
// (include == nil means all nodes). It returns the members of root's
// component. A component of size 1 is returned only if the node has a
// self-loop; otherwise SCCFrom returns nil, meaning root is not part of any
// cycle in the included subgraph.
//
// The checkers call this when a transaction finishes, with include set to
// "transaction has finished", per the paper's rule that SCC computation
// explores only finished transactions (§3.2.3).
func SCCFrom[N comparable](root N, succ SuccFunc[N], include func(N) bool) []N {
	if include != nil && !include(root) {
		return nil
	}
	type vstate struct {
		index   int
		lowlink int
		onStack bool
	}
	states := make(map[N]*vstate)
	var compStack []N
	var frames []tarjanFrame[N]
	nextIndex := 0
	var rootComp []N

	push := func(n N) {
		st := &vstate{index: nextIndex, lowlink: nextIndex, onStack: true}
		nextIndex++
		states[n] = st
		compStack = append(compStack, n)
		frames = append(frames, tarjanFrame[N]{node: n, succs: filtered(succ(n), include)})
	}
	push(root)

	for len(frames) > 0 {
		f := &frames[len(frames)-1]
		st := states[f.node]
		if f.next < len(f.succs) {
			s := f.succs[f.next]
			f.next++
			sst, ok := states[s]
			switch {
			case !ok:
				push(s)
			case sst.onStack:
				if sst.index < st.lowlink {
					st.lowlink = sst.index
				}
			}
			continue
		}
		// All successors processed: pop the frame.
		frames = frames[:len(frames)-1]
		if len(frames) > 0 {
			pst := states[frames[len(frames)-1].node]
			if st.lowlink < pst.lowlink {
				pst.lowlink = st.lowlink
			}
		}
		if st.lowlink == st.index {
			// f.node is an SCC root: pop its component.
			var comp []N
			for {
				m := compStack[len(compStack)-1]
				compStack = compStack[:len(compStack)-1]
				states[m].onStack = false
				comp = append(comp, m)
				if m == f.node {
					break
				}
			}
			if contains(comp, root) {
				rootComp = comp
			}
		}
	}

	if len(rootComp) == 1 {
		// Singleton components are cycles only with a self-loop.
		for _, s := range filtered(succ(root), include) {
			if s == root {
				return rootComp
			}
		}
		return nil
	}
	return rootComp
}

// SCCAll computes all strongly connected components of the subgraph induced
// by nodes (and include, if non-nil), returning them in reverse topological
// order (Tarjan's natural output order). Singleton components are included
// regardless of self-loops; callers that only want cyclic components should
// filter.
func SCCAll[N comparable](nodes []N, succ SuccFunc[N], include func(N) bool) [][]N {
	type vstate struct {
		index   int
		lowlink int
		onStack bool
	}
	states := make(map[N]*vstate)
	var compStack []N
	var comps [][]N
	nextIndex := 0

	for _, start := range nodes {
		if include != nil && !include(start) {
			continue
		}
		if _, ok := states[start]; ok {
			continue
		}
		var frames []tarjanFrame[N]
		push := func(n N) {
			st := &vstate{index: nextIndex, lowlink: nextIndex, onStack: true}
			nextIndex++
			states[n] = st
			compStack = append(compStack, n)
			frames = append(frames, tarjanFrame[N]{node: n, succs: filtered(succ(n), include)})
		}
		push(start)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			st := states[f.node]
			if f.next < len(f.succs) {
				s := f.succs[f.next]
				f.next++
				sst, ok := states[s]
				switch {
				case !ok:
					push(s)
				case sst.onStack:
					if sst.index < st.lowlink {
						st.lowlink = sst.index
					}
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				pst := states[frames[len(frames)-1].node]
				if st.lowlink < pst.lowlink {
					pst.lowlink = st.lowlink
				}
			}
			if st.lowlink == st.index {
				var comp []N
				for {
					m := compStack[len(compStack)-1]
					compStack = compStack[:len(compStack)-1]
					states[m].onStack = false
					comp = append(comp, m)
					if m == f.node {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// HasSelfLoop reports whether n has an edge to itself.
func HasSelfLoop[N comparable](n N, succ SuccFunc[N]) bool {
	for _, s := range succ(n) {
		if s == n {
			return true
		}
	}
	return false
}

func filtered[N comparable](succs []N, include func(N) bool) []N {
	if include == nil {
		return succs
	}
	out := succs[:0:0]
	for _, s := range succs {
		if include(s) {
			out = append(out, s)
		}
	}
	return out
}

func contains[N comparable](xs []N, n N) bool {
	for _, x := range xs {
		if x == n {
			return true
		}
	}
	return false
}
