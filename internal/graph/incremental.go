package graph

import "sort"

// Incremental cycle detection via online topological ordering, after
// Pearce & Kelly ("A Dynamic Topological Sort Algorithm for Directed
// Acyclic Graphs", JEA 2007). Velodrome-style checkers add one dependence
// edge at a time and ask "did this close a cycle?"; a naive DFS per edge
// re-walks the graph, while this structure maintains a topological order
// and only reorders the affected region between the edge's endpoints.
// The velodrome package exposes it as an alternative cycle engine and the
// ablation benchmarks compare the two.

// IncrementalDAG maintains a topological order over nodes under edge
// insertions and answers cycle queries. Nodes are added implicitly. The
// zero value is not usable; construct with NewIncrementalDAG.
type IncrementalDAG[N comparable] struct {
	ord   map[N]int // current topological index
	succs map[N][]N
	preds map[N][]N
	next  int

	// scratch state reused across insertions
	visited  map[N]bool
	visitedB map[N]bool
	stats    IncStats
}

// IncStats counts the work performed, for the ablation comparison.
type IncStats struct {
	Edges     uint64 // edges inserted
	Reorders  uint64 // insertions that required reordering
	Visited   uint64 // nodes visited during reorders
	CyclesHit uint64 // insertions that closed a cycle
}

// NewIncrementalDAG returns an empty structure.
func NewIncrementalDAG[N comparable]() *IncrementalDAG[N] {
	return &IncrementalDAG[N]{
		ord:      make(map[N]int),
		succs:    make(map[N][]N),
		preds:    make(map[N][]N),
		visited:  make(map[N]bool),
		visitedB: make(map[N]bool),
	}
}

// Stats returns work counters.
func (d *IncrementalDAG[N]) Stats() IncStats { return d.stats }

// ensure registers a node at the end of the order.
func (d *IncrementalDAG[N]) ensure(n N) int {
	if i, ok := d.ord[n]; ok {
		return i
	}
	d.ord[n] = d.next
	d.next++
	return d.ord[n]
}

// AddEdge inserts src -> dst. It reports whether the edge closed a cycle;
// if it did, the edge is NOT added (the caller has found its violation and
// typically reports it; keeping the graph acyclic keeps the order valid).
// Self edges report true.
func (d *IncrementalDAG[N]) AddEdge(src, dst N) bool {
	d.stats.Edges++
	if src == dst {
		d.stats.CyclesHit++
		return true
	}
	// Register src first: when both endpoints are new, the fresh indices
	// are then already consistent with the edge.
	ub := d.ensure(src)
	lb := d.ensure(dst)
	if lb > ub {
		// Already consistent with the order: insertion is free.
		d.link(src, dst)
		return false
	}
	// Affected region: nodes reachable forward from dst with order <= ub.
	// If src is among them, the edge closes a cycle.
	d.stats.Reorders++
	var deltaF []N
	stack := []N{dst}
	seen := d.visited
	seen[dst] = true
	cycle := false
	for len(stack) > 0 && !cycle {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		deltaF = append(deltaF, n)
		d.stats.Visited++
		for _, s := range d.succs[n] {
			if s == src {
				cycle = true
				break
			}
			if !seen[s] && d.ord[s] <= ub {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	if cycle {
		for _, n := range deltaF {
			delete(seen, n)
		}
		for n := range seen {
			delete(seen, n)
		}
		d.stats.CyclesHit++
		return true
	}
	// Backward region: nodes reaching src with order >= lb. seenB is scratch
	// reused across insertions, like the forward pass's visited map.
	var deltaB []N
	stack = append(stack[:0], src)
	seenB := d.visitedB
	seenB[src] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		deltaB = append(deltaB, n)
		d.stats.Visited++
		for _, p := range d.preds[n] {
			if !seenB[p] && d.ord[p] >= lb {
				seenB[p] = true
				stack = append(stack, p)
			}
		}
	}
	// Reassign the union of affected indices: deltaB (in relative order)
	// first, then deltaF, preserving each region's internal order.
	idxs := make([]int, 0, len(deltaF)+len(deltaB))
	for _, n := range deltaF {
		idxs = append(idxs, d.ord[n])
	}
	for _, n := range deltaB {
		idxs = append(idxs, d.ord[n])
	}
	sortInts(idxs)
	sortByOrd(d, deltaB)
	sortByOrd(d, deltaF)
	k := 0
	for _, n := range deltaB {
		d.ord[n] = idxs[k]
		k++
	}
	for _, n := range deltaF {
		d.ord[n] = idxs[k]
		k++
	}
	for _, n := range deltaF {
		delete(seen, n)
	}
	for n := range seen {
		delete(seen, n)
	}
	for _, n := range deltaB {
		delete(seenB, n)
	}
	for n := range seenB {
		delete(seenB, n)
	}
	d.link(src, dst)
	return false
}

func (d *IncrementalDAG[N]) link(src, dst N) {
	d.succs[src] = append(d.succs[src], dst)
	d.preds[dst] = append(d.preds[dst], src)
}

// OrderOf returns the node's current topological index (for tests).
func (d *IncrementalDAG[N]) OrderOf(n N) (int, bool) {
	i, ok := d.ord[n]
	return i, ok
}

// Validate checks the topological invariant: every edge goes from a lower
// to a higher index. Tests call it after random insertion sequences.
func (d *IncrementalDAG[N]) Validate() bool {
	for n, succs := range d.succs {
		for _, s := range succs {
			if d.ord[n] >= d.ord[s] {
				return false
			}
		}
	}
	return true
}

func sortInts(xs []int) { sort.Ints(xs) }

func sortByOrd[N comparable](d *IncrementalDAG[N], ns []N) {
	sort.Slice(ns, func(i, j int) bool { return d.ord[ns[i]] < d.ord[ns[j]] })
}
