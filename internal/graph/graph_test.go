package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// adj builds a SuccFunc from an adjacency map.
func adj(m map[int][]int) SuccFunc[int] {
	return func(n int) []int { return m[n] }
}

func TestReachableLinear(t *testing.T) {
	g := adj(map[int][]int{1: {2}, 2: {3}, 3: {4}})
	if !Reachable(1, 4, g) {
		t.Error("1 should reach 4")
	}
	if Reachable(4, 1, g) {
		t.Error("4 should not reach 1")
	}
	if Reachable(1, 1, g) {
		t.Error("1 is not on a cycle")
	}
}

func TestReachableSelfLoop(t *testing.T) {
	g := adj(map[int][]int{1: {1}})
	if !Reachable(1, 1, g) {
		t.Error("self-loop means 1 reaches 1")
	}
}

func TestReachableCycle(t *testing.T) {
	g := adj(map[int][]int{1: {2}, 2: {3}, 3: {1}})
	for _, n := range []int{1, 2, 3} {
		if !Reachable(n, n, g) {
			t.Errorf("%d should reach itself around the cycle", n)
		}
	}
}

func TestReachableDiamond(t *testing.T) {
	g := adj(map[int][]int{1: {2, 3}, 2: {4}, 3: {4}})
	if !Reachable(1, 4, g) {
		t.Error("1 should reach 4 through either branch")
	}
	if Reachable(2, 3, g) {
		t.Error("2 should not reach 3")
	}
}

func TestFindPathReturnsValidPath(t *testing.T) {
	g := adj(map[int][]int{1: {2, 5}, 2: {3}, 3: {4}, 5: {4}})
	p := FindPath(1, 4, g)
	if p == nil {
		t.Fatal("expected a path")
	}
	if p[0] != 1 || p[len(p)-1] != 4 {
		t.Fatalf("path endpoints wrong: %v", p)
	}
	for i := 0; i+1 < len(p); i++ {
		found := false
		for _, s := range g(p[i]) {
			if s == p[i+1] {
				found = true
			}
		}
		if !found {
			t.Fatalf("path step %d->%d is not an edge", p[i], p[i+1])
		}
	}
}

func TestFindPathNone(t *testing.T) {
	g := adj(map[int][]int{1: {2}})
	if p := FindPath(2, 1, g); p != nil {
		t.Errorf("expected no path, got %v", p)
	}
}

func TestCycleThrough(t *testing.T) {
	g := adj(map[int][]int{1: {2}, 2: {3}, 3: {1}, 4: {1}})
	c := CycleThrough(1, g)
	if len(c) != 3 {
		t.Fatalf("expected cycle of 3, got %v", c)
	}
	if c[0] != 1 {
		t.Errorf("cycle should start at 1: %v", c)
	}
	if CycleThrough(4, g) != nil {
		t.Error("4 is not on a cycle")
	}
}

func TestCycleThroughSelfLoop(t *testing.T) {
	g := adj(map[int][]int{7: {7}})
	c := CycleThrough(7, g)
	if len(c) != 1 || c[0] != 7 {
		t.Errorf("self-loop cycle should be [7], got %v", c)
	}
}

func TestSCCFromSimpleCycle(t *testing.T) {
	g := adj(map[int][]int{1: {2}, 2: {1}, 3: {1}})
	comp := SCCFrom(1, g, nil)
	sort.Ints(comp)
	if len(comp) != 2 || comp[0] != 1 || comp[1] != 2 {
		t.Errorf("expected {1,2}, got %v", comp)
	}
}

func TestSCCFromAcyclicReturnsNil(t *testing.T) {
	g := adj(map[int][]int{1: {2}, 2: {3}})
	if comp := SCCFrom(1, g, nil); comp != nil {
		t.Errorf("expected nil for acyclic node, got %v", comp)
	}
}

func TestSCCFromSelfLoop(t *testing.T) {
	g := adj(map[int][]int{1: {1, 2}})
	comp := SCCFrom(1, g, nil)
	if len(comp) != 1 || comp[0] != 1 {
		t.Errorf("expected singleton {1}, got %v", comp)
	}
}

func TestSCCFromInclude(t *testing.T) {
	// 1 <-> 2 but 2 is excluded: no cycle in the included subgraph.
	g := adj(map[int][]int{1: {2}, 2: {1}})
	include := func(n int) bool { return n != 2 }
	if comp := SCCFrom(1, g, include); comp != nil {
		t.Errorf("expected nil when cycle partner excluded, got %v", comp)
	}
}

func TestSCCFromRootExcluded(t *testing.T) {
	g := adj(map[int][]int{1: {1}})
	if comp := SCCFrom(1, g, func(int) bool { return false }); comp != nil {
		t.Errorf("expected nil for excluded root, got %v", comp)
	}
}

func TestSCCFromLargerComponent(t *testing.T) {
	// Two interlocking cycles share nodes: 1->2->3->1 and 3->4->2.
	g := adj(map[int][]int{1: {2}, 2: {3}, 3: {1, 4}, 4: {2}})
	comp := SCCFrom(1, g, nil)
	sort.Ints(comp)
	want := []int{1, 2, 3, 4}
	if len(comp) != len(want) {
		t.Fatalf("expected %v, got %v", want, comp)
	}
	for i := range want {
		if comp[i] != want[i] {
			t.Fatalf("expected %v, got %v", want, comp)
		}
	}
}

func TestSCCAllPartitions(t *testing.T) {
	g := adj(map[int][]int{1: {2}, 2: {1}, 3: {4}, 4: {3}, 5: {1, 3}})
	comps := SCCAll([]int{1, 2, 3, 4, 5}, g, nil)
	sizes := map[int]int{}
	total := 0
	for _, c := range comps {
		sizes[len(c)]++
		total += len(c)
	}
	if total != 5 {
		t.Errorf("components should cover all 5 nodes, covered %d", total)
	}
	if sizes[2] != 2 || sizes[1] != 1 {
		t.Errorf("expected two 2-components and one singleton, got %v", sizes)
	}
}

func TestSCCAllReverseTopologicalOrder(t *testing.T) {
	// 1 -> 2 -> 3 (all singletons). Tarjan emits sinks first.
	g := adj(map[int][]int{1: {2}, 2: {3}})
	comps := SCCAll([]int{1, 2, 3}, g, nil)
	if len(comps) != 3 {
		t.Fatalf("expected 3 components, got %d", len(comps))
	}
	if comps[0][0] != 3 || comps[2][0] != 1 {
		t.Errorf("expected reverse topological order [3 2 1], got %v", comps)
	}
}

func TestHasSelfLoop(t *testing.T) {
	g := adj(map[int][]int{1: {1}, 2: {1}})
	if !HasSelfLoop(1, g) {
		t.Error("1 has a self-loop")
	}
	if HasSelfLoop(2, g) {
		t.Error("2 has no self-loop")
	}
}

// randomGraph builds a random digraph over n nodes with edge probability p.
func randomGraph(rng *rand.Rand, n int, p float64) map[int][]int {
	m := make(map[int][]int)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < p {
				m[i] = append(m[i], j)
			}
		}
	}
	return m
}

// TestPropertySCCMutualReachability checks the defining property of SCCs on
// random graphs: two distinct nodes are in the same component returned by
// SCCFrom iff each reaches the other.
func TestPropertySCCMutualReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(12)
		g := adj(randomGraph(rng, n, 0.15))
		root := rng.Intn(n)
		comp := SCCFrom(root, g, nil)
		inComp := map[int]bool{}
		for _, c := range comp {
			inComp[c] = true
		}
		for other := 0; other < n; other++ {
			mutual := false
			if other == root {
				mutual = Reachable(root, root, g)
			} else {
				mutual = Reachable(root, other, g) && Reachable(other, root, g)
			}
			if mutual != inComp[other] {
				t.Fatalf("trial %d: node %d mutual=%v inComp=%v (root %d, comp %v)",
					trial, other, mutual, inComp[other], root, comp)
			}
		}
	}
}

// TestPropertySCCAllIsPartition checks SCCAll covers each node exactly once.
func TestPropertySCCAllIsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		g := adj(randomGraph(rng, n, 0.2))
		nodes := make([]int, n)
		for i := range nodes {
			nodes[i] = i
		}
		seen := map[int]int{}
		for _, c := range SCCAll(nodes, g, nil) {
			for _, m := range c {
				seen[m]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, count := range seen {
			if count != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFindPathAgreesWithReachable cross-checks the two traversals.
func TestPropertyFindPathAgreesWithReachable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := adj(randomGraph(rng, n, 0.2))
		a, b := rng.Intn(n), rng.Intn(n)
		return (FindPath(a, b, g) != nil) == Reachable(a, b, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSCCFromChainWithBackEdge(b *testing.B) {
	const n = 1000
	m := make(map[int][]int, n)
	for i := 0; i < n-1; i++ {
		m[i] = []int{i + 1}
	}
	m[n-1] = []int{0}
	g := adj(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if comp := SCCFrom(0, g, nil); len(comp) != n {
			b.Fatal("wrong component")
		}
	}
}
