package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"

	"doublechecker/internal/vm"
)

// Event opcodes within a chunk payload. Access events fold the access class
// and the read/write bit into the opcode: opAccessBase | class<<1 | write.
const (
	opThreadStart = byte(0x01)
	opThreadExit  = byte(0x02)
	opTxBegin     = byte(0x03)
	opTxEnd       = byte(0x04)
	opProgramEnd  = byte(0x05)
	opBlockedSet  = byte(0x06)
	opAccessBase  = byte(0x10) // 0x10..0x15: class (0..2) << 1 | write
	opAccessMax   = byte(0x15)
)

// chunkTarget is the payload size at which the writer flushes a chunk.
const chunkTarget = 32 << 10

// maxChunk bounds a decoded chunk payload. Event chunks flush at chunkTarget
// and the header chunk scales with the program, so any length beyond this is
// a corrupt or adversarial frame — reject it before allocating, rather than
// trusting the declared size.
const maxChunk = 16 << 20

// buf is a tiny append-only varint encoder.
type buf struct{ b []byte }

func (w *buf) uvarint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }
func (w *buf) varint(v int64)   { w.b = binary.AppendVarint(w.b, v) }
func (w *buf) byte(c byte)      { w.b = append(w.b, c) }
func (w *buf) bytes(p []byte)   { w.b = append(w.b, p...) }
func (w *buf) string(s string)  { w.uvarint(uint64(len(s))); w.b = append(w.b, s...) }
func (w *buf) reset()           { w.b = w.b[:0] }
func (w *buf) len() int         { return len(w.b) }

// writeChunk frames payload (uvarint length, CRC32, payload) onto out.
func writeChunk(out io.Writer, payload []byte) error {
	var hdr [binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[n:], crc32.ChecksumIEEE(payload))
	if _, err := out.Write(hdr[:n+4]); err != nil {
		return err
	}
	_, err := out.Write(payload)
	return err
}

// writeEndMarker writes the zero-length chunk terminating the event stream.
func writeEndMarker(out io.Writer) error {
	_, err := out.Write([]byte{0})
	return err
}

// dec is a cursor over one decoded payload.
type dec struct {
	b   []byte
	off int
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint at payload offset %d", ErrCorrupt, d.off)
	}
	d.off += n
	return v, nil
}

func (d *dec) varint() (int64, error) {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint at payload offset %d", ErrCorrupt, d.off)
	}
	d.off += n
	return v, nil
}

func (d *dec) byte() (byte, error) {
	if d.off >= len(d.b) {
		return 0, fmt.Errorf("%w: payload ends mid-event", ErrCorrupt)
	}
	c := d.b[d.off]
	d.off++
	return c, nil
}

func (d *dec) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(d.remaining()) {
		return "", fmt.Errorf("%w: string length %d exceeds payload", ErrCorrupt, n)
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// readChunk reads one framed chunk. A zero-length chunk returns (nil, false,
// nil): the end marker.
func readChunk(in io.ByteReader, full io.Reader) (payload []byte, ok bool, err error) {
	n, err := binary.ReadUvarint(in)
	if err != nil {
		if err == io.EOF {
			return nil, false, fmt.Errorf("%w: missing end marker", ErrTruncated)
		}
		return nil, false, readErr(err, "chunk length cut short")
	}
	if n == 0 {
		return nil, false, nil
	}
	if n > maxChunk {
		return nil, false, fmt.Errorf("%w: chunk length %d exceeds format maximum %d", ErrCorrupt, n, maxChunk)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(full, crcb[:]); err != nil {
		return nil, false, readErr(err, "chunk CRC cut short")
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(full, payload); err != nil {
		return nil, false, readErr(err, fmt.Sprintf("chunk payload cut short (want %d bytes)", n))
	}
	want := binary.LittleEndian.Uint32(crcb[:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, false, fmt.Errorf("%w: chunk CRC mismatch (got %08x, want %08x)", ErrCorrupt, got, want)
	}
	return payload, true, nil
}

// readErr classifies an underlying read failure: a stream that simply ends
// (EOF-shaped) is a truncated file, anything else is a transport fault
// (ErrIO) with the real error preserved in the wrap chain.
func readErr(err error, what string) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w: %s", ErrTruncated, what)
	}
	return fmt.Errorf("%w: %s: %w", ErrIO, what, err)
}

// encodeProgram serializes prog structurally — IDs are preserved exactly, so
// replayed events resolve to the same methods, threads, and objects as the
// live run's.
func encodeProgram(w *buf, prog *vm.Program) {
	w.string(prog.Name)
	w.uvarint(uint64(prog.NumObjects))
	w.uvarint(uint64(len(prog.ArrayLens)))
	// Deterministic order: by object ID.
	arrays := make([]vm.ObjectID, 0, len(prog.ArrayLens))
	for obj := range prog.ArrayLens {
		arrays = append(arrays, obj)
	}
	for i := 1; i < len(arrays); i++ {
		for j := i; j > 0 && arrays[j] < arrays[j-1]; j-- {
			arrays[j], arrays[j-1] = arrays[j-1], arrays[j]
		}
	}
	for _, obj := range arrays {
		w.uvarint(uint64(obj))
		w.uvarint(uint64(prog.ArrayLens[obj]))
	}
	w.uvarint(uint64(len(prog.Methods)))
	for _, m := range prog.Methods {
		w.string(m.Name)
		w.uvarint(uint64(len(m.Body)))
		for _, op := range m.Body {
			w.byte(byte(op.Kind))
			w.varint(int64(op.Obj))
			w.varint(int64(op.Field))
			w.varint(int64(op.Target))
		}
	}
	w.uvarint(uint64(len(prog.Threads)))
	for _, t := range prog.Threads {
		w.uvarint(uint64(t.Entry))
		auto := byte(0)
		if t.AutoStart {
			auto = 1
		}
		w.byte(auto)
	}
}

func decodeProgram(d *dec) (*vm.Program, error) {
	name, err := d.string()
	if err != nil {
		return nil, err
	}
	numObjects, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	nArrays, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	prog := &vm.Program{Name: name, NumObjects: int(numObjects)}
	// Each array entry costs at least two bytes, so a count beyond the
	// remaining payload is corrupt; check before sizing the map.
	if nArrays > uint64(d.remaining())/2 {
		return nil, fmt.Errorf("%w: array count %d exceeds payload", ErrCorrupt, nArrays)
	}
	if nArrays > 0 {
		prog.ArrayLens = make(map[vm.ObjectID]int, nArrays)
	}
	for i := uint64(0); i < nArrays; i++ {
		obj, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		length, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		prog.ArrayLens[vm.ObjectID(obj)] = int(length)
	}
	nMethods, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nMethods; i++ {
		mname, err := d.string()
		if err != nil {
			return nil, err
		}
		bodyLen, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if bodyLen > uint64(d.remaining()) {
			return nil, fmt.Errorf("%w: method body length %d exceeds payload", ErrCorrupt, bodyLen)
		}
		m := &vm.Method{ID: vm.MethodID(i), Name: mname, Body: make([]vm.Op, bodyLen)}
		for pc := range m.Body {
			kind, err := d.byte()
			if err != nil {
				return nil, err
			}
			obj, err := d.varint()
			if err != nil {
				return nil, err
			}
			field, err := d.varint()
			if err != nil {
				return nil, err
			}
			target, err := d.varint()
			if err != nil {
				return nil, err
			}
			m.Body[pc] = vm.Op{Kind: vm.OpKind(kind), Obj: vm.ObjectID(obj),
				Field: vm.FieldID(field), Target: int32(target)}
		}
		prog.Methods = append(prog.Methods, m)
	}
	nThreads, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nThreads; i++ {
		entry, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		auto, err := d.byte()
		if err != nil {
			return nil, err
		}
		prog.Threads = append(prog.Threads, vm.ThreadDecl{
			ID: vm.ThreadID(i), Entry: vm.MethodID(entry), AutoStart: auto != 0,
		})
	}
	return prog, nil
}

// digest64 is FNV-1a over an encoding — the cheap identity stamped into
// headers for diffing and corpus bookkeeping.
func digest64(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

func encodeCounts(w *buf, c vm.EventCounts) {
	w.uvarint(c.ThreadStarts)
	w.uvarint(c.ThreadExits)
	w.uvarint(c.TxBegins)
	w.uvarint(c.TxEnds)
	w.uvarint(c.FieldAccesses)
	w.uvarint(c.ArrayAccesses)
	w.uvarint(c.SyncAccesses)
}

func decodeCounts(d *dec) (vm.EventCounts, error) {
	var c vm.EventCounts
	for _, p := range []*uint64{
		&c.ThreadStarts, &c.ThreadExits, &c.TxBegins, &c.TxEnds,
		&c.FieldAccesses, &c.ArrayAccesses, &c.SyncAccesses,
	} {
		v, err := d.uvarint()
		if err != nil {
			return c, err
		}
		*p = v
	}
	return c, nil
}
