package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"doublechecker/internal/workloads"
)

// TestPeekHeaderGoldenCorpus pins PeekHeader's contract on every golden
// trace: the peeked header agrees with ReadHeader on a fresh reader, and the
// replay reader it returns feeds Read exactly the bytes a fresh reader would
// — nothing consumed, nothing duplicated, including the bufio read-ahead
// ReadHeader performs past the header proper.
func TestPeekHeaderGoldenCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "traces", "*.dct"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no golden traces found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ReadHeader(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("ReadHeader: %v", err)
			}
			hdr, rest, err := PeekHeader(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("PeekHeader: %v", err)
			}
			if !reflect.DeepEqual(hdr, want) {
				t.Errorf("peeked header differs from ReadHeader:\n got: %+v\nwant: %+v", hdr, want)
			}
			fromRest, err := Read(rest)
			if err != nil {
				t.Fatalf("Read(rest): %v", err)
			}
			fromFull, err := Read(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("Read(full): %v", err)
			}
			if !reflect.DeepEqual(fromRest, fromFull) {
				t.Error("Read of the replay reader differs from Read of the full trace")
			}
		})
	}
}

// TestPeekHeaderErrorStillReplays asserts the error path's contract: even
// when the header does not decode, the returned reader replays every byte
// the failed attempt consumed, so the caller can hand the stream to a
// decoder that produces its own (better) diagnostic.
func TestPeekHeaderErrorStillReplays(t *testing.T) {
	garbage := []byte("not a trace at all, but long enough to read from")
	_, rest, err := PeekHeader(bytes.NewReader(garbage))
	if err == nil {
		t.Fatal("PeekHeader accepted garbage")
	}
	got, readErr := io.ReadAll(rest)
	if readErr != nil {
		t.Fatalf("draining replay reader: %v", readErr)
	}
	if !bytes.Equal(got, garbage) {
		t.Errorf("replay reader lost bytes:\n got: %q\nwant: %q", got, garbage)
	}
}

// TestPeekHeaderZeroLength: the degenerate empty stream must error without
// panicking, and the replay reader must be empty — zero bytes in, zero out.
func TestPeekHeaderZeroLength(t *testing.T) {
	hdr, rest, err := PeekHeader(bytes.NewReader(nil))
	if err == nil {
		t.Fatalf("PeekHeader accepted an empty stream (header %+v)", hdr)
	}
	got, readErr := io.ReadAll(rest)
	if readErr != nil {
		t.Fatalf("draining replay reader: %v", readErr)
	}
	if len(got) != 0 {
		t.Fatalf("replay reader invented %d bytes from an empty stream", len(got))
	}
}

// TestPeekHeaderHeaderOnly: a stream holding just the magic and header chunk
// (a writer that was never closed) peeks successfully — this is exactly the
// early-inspection use case — while a full decode of the same bytes reports
// truncation. The replay reader must still return every input byte.
func TestPeekHeaderHeaderOnly(t *testing.T) {
	prog, _ := workloads.Random(3)
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Header{Program: prog, Seed: 11, Sched: "test", Source: "header-only"}); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...) // writer untouched past construction

	hdr, rest, err := PeekHeader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("PeekHeader on a header-only stream: %v", err)
	}
	if hdr.Seed != 11 || hdr.Sched != "test" || hdr.Source != "header-only" {
		t.Fatalf("peeked header %+v lost fields", hdr)
	}
	if hdr.Program == nil || hdr.Program.Name != prog.Name {
		t.Fatalf("peeked header program = %+v, want %q", hdr.Program, prog.Name)
	}
	replayed, readErr := io.ReadAll(rest)
	if readErr != nil {
		t.Fatalf("draining replay reader: %v", readErr)
	}
	if !bytes.Equal(replayed, raw) {
		t.Fatalf("replay reader returned %d bytes, want the original %d", len(replayed), len(raw))
	}
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("full decode of a header-only stream: err = %v, want ErrTruncated", err)
	}
}

// TestPeekHeaderPrefixProperty: for EVERY prefix of a valid trace, PeekHeader
// either fails or returns the true header — and in both cases the replay
// reader returns exactly the prefix bytes. No prefix length may panic,
// over-read, or fabricate a wrong header.
func TestPeekHeaderPrefixProperty(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "testdata", "traces", "philo.dct"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReadHeader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= len(raw); n++ {
		prefix := raw[:n]
		hdr, rest, err := PeekHeader(bytes.NewReader(prefix))
		if err == nil && !reflect.DeepEqual(hdr, want) {
			t.Fatalf("prefix %d/%d: peek succeeded with a wrong header", n, len(raw))
		}
		replayed, readErr := io.ReadAll(rest)
		if readErr != nil {
			t.Fatalf("prefix %d/%d: draining replay reader: %v", n, len(raw), readErr)
		}
		if !bytes.Equal(replayed, prefix) {
			t.Fatalf("prefix %d/%d: replay reader returned %d bytes, want %d", n, len(raw), len(replayed), n)
		}
	}
}
