package trace

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestPeekHeaderGoldenCorpus pins PeekHeader's contract on every golden
// trace: the peeked header agrees with ReadHeader on a fresh reader, and the
// replay reader it returns feeds Read exactly the bytes a fresh reader would
// — nothing consumed, nothing duplicated, including the bufio read-ahead
// ReadHeader performs past the header proper.
func TestPeekHeaderGoldenCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "traces", "*.dct"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no golden traces found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ReadHeader(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("ReadHeader: %v", err)
			}
			hdr, rest, err := PeekHeader(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("PeekHeader: %v", err)
			}
			if !reflect.DeepEqual(hdr, want) {
				t.Errorf("peeked header differs from ReadHeader:\n got: %+v\nwant: %+v", hdr, want)
			}
			fromRest, err := Read(rest)
			if err != nil {
				t.Fatalf("Read(rest): %v", err)
			}
			fromFull, err := Read(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("Read(full): %v", err)
			}
			if !reflect.DeepEqual(fromRest, fromFull) {
				t.Error("Read of the replay reader differs from Read of the full trace")
			}
		})
	}
}

// TestPeekHeaderErrorStillReplays asserts the error path's contract: even
// when the header does not decode, the returned reader replays every byte
// the failed attempt consumed, so the caller can hand the stream to a
// decoder that produces its own (better) diagnostic.
func TestPeekHeaderErrorStillReplays(t *testing.T) {
	garbage := []byte("not a trace at all, but long enough to read from")
	_, rest, err := PeekHeader(bytes.NewReader(garbage))
	if err == nil {
		t.Fatal("PeekHeader accepted garbage")
	}
	got, readErr := io.ReadAll(rest)
	if readErr != nil {
		t.Fatalf("draining replay reader: %v", readErr)
	}
	if !bytes.Equal(got, garbage) {
		t.Errorf("replay reader lost bytes:\n got: %q\nwant: %q", got, garbage)
	}
}
