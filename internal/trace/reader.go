package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"doublechecker/internal/vm"
)

// ReadFile decodes the trace file at path.
func ReadFile(path string) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// Read decodes a complete trace from r, verifying magic, version, per-chunk
// CRCs, header digests, and the trailer's event counts against the decoded
// stream. Errors wrap ErrBadMagic, ErrVersion, ErrCorrupt, or ErrTruncated.
func Read(r io.Reader) (*Data, error) {
	br := bufio.NewReader(r)

	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: file shorter than magic", ErrBadMagic)
	}
	if string(magic[:]) != Magic {
		return nil, fmt.Errorf("%w: got %q", ErrBadMagic, magic[:])
	}
	version, err := readUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: unreadable version", ErrCorrupt)
	}
	if version != Version {
		return nil, fmt.Errorf("%w: file is v%d, this reader understands v%d",
			ErrVersion, version, Version)
	}

	hdrPayload, ok, err := readChunk(br, br)
	if err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	if !ok {
		return nil, fmt.Errorf("%w: missing header chunk", ErrCorrupt)
	}
	hdr, err := decodeHeader(hdrPayload)
	if err != nil {
		return nil, err
	}
	hdr.Version = int(version)

	data := &Data{Header: *hdr}
	st := decodeState{
		nThreads: len(hdr.Program.Threads),
		nMethods: len(hdr.Program.Methods),
		nObjects: hdr.Program.TotalObjects(),
	}
	for {
		payload, ok, err := readChunk(br, br)
		if err != nil {
			return nil, fmt.Errorf("events: %w", err)
		}
		if !ok {
			break // end marker
		}
		if err := st.decodeEvents(payload, data); err != nil {
			return nil, err
		}
	}

	trailer, ok, err := readChunk(br, br)
	if err != nil {
		return nil, fmt.Errorf("trailer: %w", err)
	}
	if !ok {
		return nil, fmt.Errorf("%w: missing counts trailer", ErrCorrupt)
	}
	td := &dec{b: trailer}
	counts, err := decodeCounts(td)
	if err != nil {
		return nil, fmt.Errorf("trailer: %w", err)
	}
	if counts != st.counts {
		return nil, fmt.Errorf("%w: trailer counts {%v} disagree with decoded stream {%v}",
			ErrCorrupt, counts, st.counts)
	}
	data.Counts = counts
	data.Complete = len(data.Events) > 0 &&
		data.Events[len(data.Events)-1].Kind == EvProgramEnd
	return data, nil
}

// ReadHeader decodes only the header of a trace — enough for `dctrace info`
// on large files without materializing the event stream.
func ReadHeader(r io.Reader) (*Header, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: file shorter than magic", ErrBadMagic)
	}
	if string(magic[:]) != Magic {
		return nil, fmt.Errorf("%w: got %q", ErrBadMagic, magic[:])
	}
	version, err := readUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: unreadable version", ErrCorrupt)
	}
	if version != Version {
		return nil, fmt.Errorf("%w: file is v%d, this reader understands v%d",
			ErrVersion, version, Version)
	}
	payload, ok, err := readChunk(br, br)
	if err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	if !ok {
		return nil, fmt.Errorf("%w: missing header chunk", ErrCorrupt)
	}
	hdr, err := decodeHeader(payload)
	if err != nil {
		return nil, err
	}
	hdr.Version = int(version)
	return hdr, nil
}

// PeekHeader decodes only the header from r without consuming the trace:
// it returns the header plus a replay reader that yields the stream from
// the first byte, as if r had never been read. Callers that need the
// header early — the server computes a cache key and a breaker key before
// paying full decode cost — read the header here and hand the replay
// reader to Read. The replay reader is returned even on error, so a caller
// can still salvage or log the raw bytes of an undecodable upload.
//
// The implementation tees everything the header decode pulls off r
// (including the internal reader's read-ahead) into a buffer and stitches
// it back in front of the unread remainder.
func PeekHeader(r io.Reader) (*Header, io.Reader, error) {
	var consumed bytes.Buffer
	hdr, err := ReadHeader(io.TeeReader(r, &consumed))
	rest := io.MultiReader(bytes.NewReader(consumed.Bytes()), r)
	if err != nil {
		return nil, rest, err
	}
	return hdr, rest, nil
}

func readUvarint(br *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(br)
}

func decodeHeader(payload []byte) (*Header, error) {
	d := &dec{b: payload}
	progLen, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	if progLen > uint64(d.remaining()) {
		return nil, fmt.Errorf("%w: header program length %d exceeds payload", ErrCorrupt, progLen)
	}
	progEnc := d.b[d.off : d.off+int(progLen)]
	pd := &dec{b: progEnc}
	prog, err := decodeProgram(pd)
	if err != nil {
		return nil, fmt.Errorf("header program: %w", err)
	}
	if pd.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after program encoding", ErrCorrupt, pd.remaining())
	}
	d.off += int(progLen)
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("%w: embedded program invalid: %v", ErrCorrupt, err)
	}

	specStart := d.off
	nAtomic, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("header spec: %w", err)
	}
	hdr := &Header{Program: prog}
	for i := uint64(0); i < nAtomic; i++ {
		m, err := d.uvarint()
		if err != nil {
			return nil, fmt.Errorf("header spec: %w", err)
		}
		if m >= uint64(len(prog.Methods)) {
			return nil, fmt.Errorf("%w: atomic method %d out of range", ErrCorrupt, m)
		}
		hdr.Atomic = append(hdr.Atomic, vm.MethodID(m))
	}
	specEnc := d.b[specStart:d.off]

	if hdr.Seed, err = d.varint(); err != nil {
		return nil, fmt.Errorf("header seed: %w", err)
	}
	if hdr.Sched, err = d.string(); err != nil {
		return nil, fmt.Errorf("header sched: %w", err)
	}
	if hdr.Source, err = d.string(); err != nil {
		return nil, fmt.Errorf("header source: %w", err)
	}
	if hdr.ProgramDigest, err = d.uvarint(); err != nil {
		return nil, fmt.Errorf("header digest: %w", err)
	}
	if hdr.SpecDigest, err = d.uvarint(); err != nil {
		return nil, fmt.Errorf("header digest: %w", err)
	}
	if got := digest64(progEnc); got != hdr.ProgramDigest {
		return nil, fmt.Errorf("%w: program digest mismatch (got %016x, header says %016x)",
			ErrCorrupt, got, hdr.ProgramDigest)
	}
	if got := digest64(specEnc); got != hdr.SpecDigest {
		return nil, fmt.Errorf("%w: spec digest mismatch (got %016x, header says %016x)",
			ErrCorrupt, got, hdr.SpecDigest)
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after header", ErrCorrupt, d.remaining())
	}
	return hdr, nil
}

// decodeState carries the cross-chunk decode context: the running access
// clock, re-tallied counts, and the ID ranges used for validation.
type decodeState struct {
	seq      uint64
	counts   vm.EventCounts
	nThreads int
	nMethods int
	nObjects int
	ended    bool
}

func (st *decodeState) thread(d *dec) (vm.ThreadID, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v >= uint64(st.nThreads) {
		return 0, fmt.Errorf("%w: thread %d out of range (program has %d)", ErrCorrupt, v, st.nThreads)
	}
	return vm.ThreadID(v), nil
}

func (st *decodeState) method(d *dec) (vm.MethodID, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v >= uint64(st.nMethods) {
		return 0, fmt.Errorf("%w: method %d out of range (program has %d)", ErrCorrupt, v, st.nMethods)
	}
	return vm.MethodID(v), nil
}

func (st *decodeState) decodeEvents(payload []byte, data *Data) error {
	d := &dec{b: payload}
	for d.remaining() > 0 {
		if st.ended {
			return fmt.Errorf("%w: events after program-end", ErrCorrupt)
		}
		op, err := d.byte()
		if err != nil {
			return err
		}
		switch {
		case op == opThreadStart:
			t, err := st.thread(d)
			if err != nil {
				return err
			}
			st.counts.ThreadStarts++
			data.Events = append(data.Events, Event{Kind: EvThreadStart, Thread: t})
		case op == opThreadExit:
			t, err := st.thread(d)
			if err != nil {
				return err
			}
			st.counts.ThreadExits++
			data.Events = append(data.Events, Event{Kind: EvThreadExit, Thread: t})
		case op == opTxBegin, op == opTxEnd:
			t, err := st.thread(d)
			if err != nil {
				return err
			}
			m, err := st.method(d)
			if err != nil {
				return err
			}
			kind := EvTxBegin
			if op == opTxEnd {
				kind = EvTxEnd
				st.counts.TxEnds++
			} else {
				st.counts.TxBegins++
			}
			data.Events = append(data.Events, Event{Kind: kind, Thread: t, Method: m})
		case op == opProgramEnd:
			st.ended = true
			data.Events = append(data.Events, Event{Kind: EvProgramEnd})
		case op == opBlockedSet:
			n, err := d.uvarint()
			if err != nil {
				return err
			}
			if n > uint64(st.nThreads) {
				return fmt.Errorf("%w: blocked set of %d threads (program has %d)",
					ErrCorrupt, n, st.nThreads)
			}
			set := make([]vm.ThreadID, 0, n)
			for i := uint64(0); i < n; i++ {
				t, err := st.thread(d)
				if err != nil {
					return err
				}
				set = append(set, t)
			}
			data.Events = append(data.Events, Event{Kind: EvBlockedSet, Blocked: set})
		case op >= opAccessBase && op <= opAccessMax:
			bits := op - opAccessBase
			class := vm.AccessClass(bits >> 1)
			write := bits&1 != 0
			t, err := st.thread(d)
			if err != nil {
				return err
			}
			obj, err := d.uvarint()
			if err != nil {
				return err
			}
			if obj >= uint64(st.nObjects) {
				return fmt.Errorf("%w: object %d out of range (program has %d)",
					ErrCorrupt, obj, st.nObjects)
			}
			field, err := d.uvarint()
			if err != nil {
				return err
			}
			delta, err := d.uvarint()
			if err != nil {
				return err
			}
			if delta == 0 {
				return fmt.Errorf("%w: access clock did not advance", ErrCorrupt)
			}
			st.seq += delta
			switch class {
			case vm.ClassField:
				st.counts.FieldAccesses++
			case vm.ClassArray:
				st.counts.ArrayAccesses++
			case vm.ClassSync:
				st.counts.SyncAccesses++
			}
			data.Events = append(data.Events, Event{Kind: EvAccess, Access: vm.Access{
				Thread: t, Obj: vm.ObjectID(obj), Field: vm.FieldID(field),
				Write: write, Class: class, Seq: st.seq,
			}})
		default:
			return fmt.Errorf("%w: unknown opcode 0x%02x", ErrCorrupt, op)
		}
	}
	return nil
}
