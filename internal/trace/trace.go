// Package trace records the VM's instrumentation event stream into a
// compact, versioned binary format and replays it — through any
// vm.Instrumentation, hence any checker — without re-executing the program.
//
// Today every checker in this repository consumes the same event stream,
// but the stream exists only transiently inside a live execution. Capturing
// it makes the trace the first-class interface between program and monitor:
// analyses can be decoupled from execution, compared on a *guaranteed*
// identical interleaving (not merely an identical seed), regression-tested
// against a frozen corpus, and farmed out to workers that never run a VM.
//
// # File format
//
// A trace file is:
//
//	magic "DCTR" | uvarint version | header chunk | event chunks ... |
//	uvarint 0 (end marker) | trailer chunk
//
// Every chunk is framed as
//
//	uvarint payloadLen | uint32le CRC32(payload) | payload
//
// so truncation and corruption are detected per chunk. The header chunk is
// self-contained: it embeds the full program (methods, bodies, threads,
// objects, arrays), the atomicity specification (the atomic method IDs),
// the schedule seed and scheduler description, FNV-1a digests of the
// program and specification encodings, and a free-form source note. A
// trace therefore needs no side files to replay.
//
// Events are packed with varint-encoded deltas: the access clock is stored
// as a delta from the previous access, and thread/object/field operands as
// unsigned varints. Access kind, read/write, and access class share one
// opcode byte. A blocked-set event records which threads the executor
// reported blocked whenever that set changes, so a replayer can answer the
// Octet coordination protocol's Blocked queries exactly as the live
// executor did.
//
// The trailer carries the per-kind event counts (vm.EventCounts); the
// reader re-tallies while decoding and rejects a trace whose counts
// disagree, which is also how recorder completeness is asserted against
// vm.Stats.Events.
package trace

import (
	"errors"
	"fmt"

	"doublechecker/internal/vm"
)

// Format identity.
const (
	// Magic is the four-byte file signature.
	Magic = "DCTR"
	// Version is the current format version. Readers reject other versions.
	Version = 1
)

// Decode errors; match with errors.Is.
var (
	// ErrBadMagic reports a file that is not a trace at all.
	ErrBadMagic = errors.New("trace: bad magic (not a trace file)")
	// ErrVersion reports a trace written by an incompatible format version.
	ErrVersion = errors.New("trace: unsupported format version")
	// ErrCorrupt reports a chunk whose CRC or content checks failed.
	ErrCorrupt = errors.New("trace: corrupt")
	// ErrTruncated reports a trace that ends before its end marker.
	ErrTruncated = errors.New("trace: truncated")
	// ErrIO reports that the underlying reader itself failed mid-stream —
	// a transport fault (connection reset, body limit, disk error) rather
	// than a malformed file. The underlying error is wrapped alongside, so
	// errors.Is/As can still see it (e.g. http.MaxBytesError, an injected
	// reset): a service can map ErrIO to a client/transport verdict and the
	// other decode errors to "bad trace file".
	ErrIO = errors.New("trace: read failed")
)

// EventKind enumerates replayable events.
type EventKind uint8

// The event kinds a trace records. Access events additionally carry the
// access class and read/write bit inside vm.Access.
const (
	EvThreadStart EventKind = iota + 1
	EvThreadExit
	EvTxBegin
	EvTxEnd
	EvProgramEnd
	EvBlockedSet
	EvAccess
)

func (k EventKind) String() string {
	switch k {
	case EvThreadStart:
		return "thread-start"
	case EvThreadExit:
		return "thread-exit"
	case EvTxBegin:
		return "tx-begin"
	case EvTxEnd:
		return "tx-end"
	case EvProgramEnd:
		return "program-end"
	case EvBlockedSet:
		return "blocked-set"
	case EvAccess:
		return "access"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one decoded trace event.
type Event struct {
	Kind   EventKind
	Thread vm.ThreadID // thread/tx events
	Method vm.MethodID // tx events
	Access vm.Access   // EvAccess
	// Blocked is the new complete blocked set (EvBlockedSet).
	Blocked []vm.ThreadID
}

// Header is the self-contained metadata block at the front of every trace.
type Header struct {
	// Version is the format version the trace was written with.
	Version int
	// Program is the full embedded program; replaying needs nothing else.
	Program *vm.Program
	// Atomic lists the atomicity specification's method IDs, sorted. The
	// Tx events in the stream were derived from this spec at record time,
	// so a replayed checker checks the same specification.
	Atomic []vm.MethodID
	// Seed is the schedule seed of the recorded execution.
	Seed int64
	// Sched describes the scheduler (e.g. "sticky(0.10)").
	Sched string
	// Source is a free-form note about where the trace came from (a file
	// path, a workload name).
	Source string
	// ProgramDigest and SpecDigest are FNV-1a 64 digests of the program and
	// specification encodings — cheap identity for diffing and corpus
	// bookkeeping. The reader verifies them against the decoded content.
	ProgramDigest uint64
	SpecDigest    uint64
}

// AtomicSet returns the specification as a predicate over methods.
func (h *Header) AtomicSet() func(vm.MethodID) bool {
	set := make(map[vm.MethodID]bool, len(h.Atomic))
	for _, m := range h.Atomic {
		set[m] = true
	}
	return func(m vm.MethodID) bool { return set[m] }
}

// AtomicNames resolves the specification to method names, in ID order.
func (h *Header) AtomicNames() []string {
	names := make([]string, 0, len(h.Atomic))
	for _, m := range h.Atomic {
		names = append(names, h.Program.MethodName(m))
	}
	return names
}

// Data is one fully decoded trace: everything needed to replay, plus the
// trailer's event counts.
type Data struct {
	Header Header
	Events []Event
	// Counts is the trailer's per-kind tally, already verified against the
	// decoded events.
	Counts vm.EventCounts
	// Complete reports whether the recorded execution ran to completion
	// (the stream ends with a program-end event).
	Complete bool
}
