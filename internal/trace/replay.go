package trace

import (
	"context"

	"doublechecker/internal/vm"
)

// Replayer drives a vm.Instrumentation from a decoded trace with no VM at
// all. It implements vm.ExecView, answering the checker's context queries
// (clock, blocked set, transaction state) exactly as the live executor did:
// the clock follows the recorded access sequence, the blocked set follows
// the recorded blocked-set events, and transaction state is reconstructed
// from the Tx events with the executor's dispatch-order semantics (a thread
// is not yet "in" a transaction while its TxBegin hook runs, and no longer
// in it while its TxEnd hook runs).
type Replayer struct {
	data     *Data
	seq      uint64
	inTx     []bool
	txMethod []vm.MethodID
	blocked  []bool
}

var _ vm.ExecView = (*Replayer)(nil)

// NewReplayer returns a Replayer over d, positioned before the first event.
// All threads start blocked (not yet started), matching the executor.
func NewReplayer(d *Data) *Replayer {
	n := len(d.Header.Program.Threads)
	r := &Replayer{
		data:     d,
		inTx:     make([]bool, n),
		txMethod: make([]vm.MethodID, n),
		blocked:  make([]bool, n),
	}
	for i := 0; i < n; i++ {
		r.txMethod[i] = vm.NoMethod
		r.blocked[i] = true
	}
	return r
}

// Now implements vm.ExecView: the recorded access clock.
func (r *Replayer) Now() uint64 { return r.seq }

// Blocked implements vm.ExecView from the recorded blocked-set events.
func (r *Replayer) Blocked(t vm.ThreadID) bool {
	if int(t) < 0 || int(t) >= len(r.blocked) {
		return false
	}
	return r.blocked[t]
}

// InTx implements vm.ExecView.
func (r *Replayer) InTx(t vm.ThreadID) bool {
	if int(t) < 0 || int(t) >= len(r.inTx) {
		return false
	}
	return r.inTx[t]
}

// TxMethod implements vm.ExecView.
func (r *Replayer) TxMethod(t vm.ThreadID) vm.MethodID {
	if int(t) < 0 || int(t) >= len(r.txMethod) || !r.inTx[t] {
		return vm.NoMethod
	}
	return r.txMethod[t]
}

// Run dispatches the whole trace into inst: ProgramStart with the Replayer
// as the execution view, every recorded event in order, and ProgramEnd if
// the recorded execution completed. ctx is polled periodically; replay
// stops early with ctx.Err() on cancellation.
func (r *Replayer) Run(ctx context.Context, inst vm.Instrumentation) error {
	if inst == nil {
		inst = vm.NopInst{}
	}
	inst.ProgramStart(r)
	for i, ev := range r.data.Events {
		if i&255 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		switch ev.Kind {
		case EvBlockedSet:
			for t := range r.blocked {
				r.blocked[t] = false
			}
			for _, t := range ev.Blocked {
				r.blocked[t] = true
			}
		case EvThreadStart:
			inst.ThreadStart(ev.Thread)
		case EvThreadExit:
			inst.ThreadExit(ev.Thread)
		case EvTxBegin:
			// The executor dispatches TxBegin before marking the thread in-tx.
			inst.TxBegin(ev.Thread, ev.Method)
			r.inTx[ev.Thread] = true
			r.txMethod[ev.Thread] = ev.Method
		case EvTxEnd:
			// ... and clears the in-tx state before dispatching TxEnd.
			r.inTx[ev.Thread] = false
			r.txMethod[ev.Thread] = vm.NoMethod
			inst.TxEnd(ev.Thread, ev.Method)
		case EvAccess:
			// The executor advances the clock, then dispatches the access.
			r.seq = ev.Access.Seq
			inst.Access(ev.Access)
		case EvProgramEnd:
			inst.ProgramEnd()
		}
	}
	return nil
}

// Replay decodes nothing itself: it replays an already-decoded trace
// through inst. Equivalent to NewReplayer(d).Run(ctx, inst).
func Replay(ctx context.Context, d *Data, inst vm.Instrumentation) error {
	return NewReplayer(d).Run(ctx, inst)
}
