package trace

import (
	"fmt"
	"io"
	"sort"

	"doublechecker/internal/vm"
)

// Writer encodes a trace onto an io.Writer: header at construction, events
// as they are appended (buffered into CRC-framed chunks), end marker and
// counts trailer at Close. Errors are sticky — the first write error fails
// every later call and is returned by Close.
type Writer struct {
	out     io.Writer
	hdr     Header
	ev      buf
	lastSeq uint64
	counts  vm.EventCounts
	err     error
	closed  bool
}

// NewWriter writes the magic, version, and header, and returns a Writer
// ready for events. The header's Version, ProgramDigest and SpecDigest
// fields are filled in (computed from the encodings); Atomic is sorted.
func NewWriter(out io.Writer, hdr Header) (*Writer, error) {
	if hdr.Program == nil {
		return nil, fmt.Errorf("trace: NewWriter: header has no program")
	}
	if err := hdr.Program.Validate(); err != nil {
		return nil, fmt.Errorf("trace: NewWriter: %w", err)
	}
	hdr.Version = Version
	sort.Slice(hdr.Atomic, func(i, j int) bool { return hdr.Atomic[i] < hdr.Atomic[j] })
	for _, m := range hdr.Atomic {
		if int(m) < 0 || int(m) >= len(hdr.Program.Methods) {
			return nil, fmt.Errorf("trace: NewWriter: atomic method %d out of range", m)
		}
	}

	var prog buf
	encodeProgram(&prog, hdr.Program)
	var spec buf
	spec.uvarint(uint64(len(hdr.Atomic)))
	for _, m := range hdr.Atomic {
		spec.uvarint(uint64(m))
	}
	hdr.ProgramDigest = digest64(prog.b)
	hdr.SpecDigest = digest64(spec.b)

	var payload buf
	payload.uvarint(uint64(prog.len()))
	payload.bytes(prog.b)
	payload.bytes(spec.b)
	payload.varint(hdr.Seed)
	payload.string(hdr.Sched)
	payload.string(hdr.Source)
	payload.uvarint(hdr.ProgramDigest)
	payload.uvarint(hdr.SpecDigest)

	w := &Writer{out: out, hdr: hdr}
	if _, err := out.Write([]byte(Magic)); err != nil {
		return nil, err
	}
	var ver buf
	ver.uvarint(Version)
	if _, err := out.Write(ver.b); err != nil {
		return nil, err
	}
	if err := writeChunk(out, payload.b); err != nil {
		return nil, err
	}
	return w, nil
}

// Header returns the header as written (digests filled in).
func (w *Writer) Header() Header { return w.hdr }

// Counts returns the per-kind tally of the events written so far.
func (w *Writer) Counts() vm.EventCounts { return w.counts }

// Err returns the sticky error, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) flush() {
	if w.err != nil || w.ev.len() == 0 {
		return
	}
	w.err = writeChunk(w.out, w.ev.b)
	w.ev.reset()
}

func (w *Writer) maybeFlush() {
	if w.ev.len() >= chunkTarget {
		w.flush()
	}
}

// ThreadStart appends a thread-start event.
func (w *Writer) ThreadStart(t vm.ThreadID) {
	w.counts.ThreadStarts++
	w.ev.byte(opThreadStart)
	w.ev.uvarint(uint64(t))
	w.maybeFlush()
}

// ThreadExit appends a thread-exit event.
func (w *Writer) ThreadExit(t vm.ThreadID) {
	w.counts.ThreadExits++
	w.ev.byte(opThreadExit)
	w.ev.uvarint(uint64(t))
	w.maybeFlush()
}

// TxBegin appends a transaction-begin event.
func (w *Writer) TxBegin(t vm.ThreadID, m vm.MethodID) {
	w.counts.TxBegins++
	w.ev.byte(opTxBegin)
	w.ev.uvarint(uint64(t))
	w.ev.uvarint(uint64(m))
	w.maybeFlush()
}

// TxEnd appends a transaction-end event.
func (w *Writer) TxEnd(t vm.ThreadID, m vm.MethodID) {
	w.counts.TxEnds++
	w.ev.byte(opTxEnd)
	w.ev.uvarint(uint64(t))
	w.ev.uvarint(uint64(m))
	w.maybeFlush()
}

// Access appends an access event; the clock is stored as a delta from the
// previous access.
func (w *Writer) Access(a vm.Access) {
	switch a.Class {
	case vm.ClassField:
		w.counts.FieldAccesses++
	case vm.ClassArray:
		w.counts.ArrayAccesses++
	case vm.ClassSync:
		w.counts.SyncAccesses++
	}
	op := opAccessBase | byte(a.Class)<<1
	if a.Write {
		op |= 1
	}
	w.ev.byte(op)
	w.ev.uvarint(uint64(a.Thread))
	w.ev.uvarint(uint64(a.Obj))
	w.ev.uvarint(uint64(a.Field))
	w.ev.uvarint(a.Seq - w.lastSeq)
	w.lastSeq = a.Seq
	w.maybeFlush()
}

// BlockedSet appends a blocked-set event: ts is the complete new set of
// blocked threads.
func (w *Writer) BlockedSet(ts []vm.ThreadID) {
	w.ev.byte(opBlockedSet)
	w.ev.uvarint(uint64(len(ts)))
	for _, t := range ts {
		w.ev.uvarint(uint64(t))
	}
	w.maybeFlush()
}

// ProgramEnd appends the program-end event, marking a complete execution.
func (w *Writer) ProgramEnd() {
	w.ev.byte(opProgramEnd)
	w.maybeFlush()
}

// Close flushes buffered events and writes the end marker and the counts
// trailer. It does not close the underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	w.flush()
	if w.err != nil {
		return w.err
	}
	if w.err = writeEndMarker(w.out); w.err != nil {
		return w.err
	}
	var trailer buf
	encodeCounts(&trailer, w.counts)
	w.err = writeChunk(w.out, trailer.b)
	return w.err
}

// Recorder implements vm.Instrumentation as a tee: every event is written
// to the trace and forwarded to the wrapped downstream instrumentation, so
// a single execution both checks and records. Before each event it queries
// the execution's blocked set and records a blocked-set event whenever it
// changed — that is what lets a replayer answer Octet's Blocked queries
// exactly as the live executor did.
type Recorder struct {
	w     *Writer
	inner vm.Instrumentation
	view  vm.ExecView
	// last is the most recently recorded blocked mask; threads start
	// blocked (not yet started), matching the replayer's initial state.
	last []bool
}

// NewRecorder returns a Recorder writing to w and forwarding to inner
// (vm.NopInst{} for record-only runs).
func NewRecorder(w *Writer, inner vm.Instrumentation) *Recorder {
	if inner == nil {
		inner = vm.NopInst{}
	}
	n := len(w.hdr.Program.Threads)
	last := make([]bool, n)
	for i := range last {
		last[i] = true
	}
	return &Recorder{w: w, inner: inner, last: last}
}

// Counts returns the per-kind tally of recorded events, for completeness
// assertions against vm.Stats.Events.
func (r *Recorder) Counts() vm.EventCounts { return r.w.Counts() }

// syncBlocked records a blocked-set event if the executor's blocked set
// changed since the last recorded event.
func (r *Recorder) syncBlocked() {
	if r.view == nil {
		return
	}
	changed := false
	for t := range r.last {
		if b := r.view.Blocked(vm.ThreadID(t)); b != r.last[t] {
			r.last[t] = b
			changed = true
		}
	}
	if changed {
		var set []vm.ThreadID
		for t, b := range r.last {
			if b {
				set = append(set, vm.ThreadID(t))
			}
		}
		r.w.BlockedSet(set)
	}
}

// ProgramStart implements vm.Instrumentation.
func (r *Recorder) ProgramStart(e vm.ExecView) {
	r.view = e
	r.inner.ProgramStart(e)
}

// ThreadStart implements vm.Instrumentation.
func (r *Recorder) ThreadStart(t vm.ThreadID) {
	r.syncBlocked()
	r.w.ThreadStart(t)
	r.inner.ThreadStart(t)
}

// ThreadExit implements vm.Instrumentation.
func (r *Recorder) ThreadExit(t vm.ThreadID) {
	r.syncBlocked()
	r.w.ThreadExit(t)
	r.inner.ThreadExit(t)
}

// TxBegin implements vm.Instrumentation.
func (r *Recorder) TxBegin(t vm.ThreadID, m vm.MethodID) {
	r.syncBlocked()
	r.w.TxBegin(t, m)
	r.inner.TxBegin(t, m)
}

// TxEnd implements vm.Instrumentation.
func (r *Recorder) TxEnd(t vm.ThreadID, m vm.MethodID) {
	r.syncBlocked()
	r.w.TxEnd(t, m)
	r.inner.TxEnd(t, m)
}

// Access implements vm.Instrumentation.
func (r *Recorder) Access(a vm.Access) {
	r.syncBlocked()
	r.w.Access(a)
	r.inner.Access(a)
}

// ProgramEnd implements vm.Instrumentation.
func (r *Recorder) ProgramEnd() {
	r.w.ProgramEnd()
	r.inner.ProgramEnd()
}
