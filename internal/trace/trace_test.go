package trace_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"testing/iotest"

	"doublechecker/internal/core"
	"doublechecker/internal/faultinject"
	"doublechecker/internal/trace"
	"doublechecker/internal/vm"
	"doublechecker/internal/workloads"
)

// record runs prog live under analysis, teeing the event stream into a
// trace, and returns the live result plus the encoded trace bytes.
func record(t *testing.T, prog *vm.Program, atomic func(vm.MethodID) bool, analysis core.Analysis, seed int64) (*core.Result, []byte) {
	t.Helper()
	var atomicIDs []vm.MethodID
	for _, m := range prog.Methods {
		if atomic(m.ID) {
			atomicIDs = append(atomicIDs, m.ID)
		}
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{
		Program: prog,
		Atomic:  atomicIDs,
		Seed:    seed,
		Sched:   fmt.Sprintf("random(%d)", seed),
		Source:  "trace_test",
	})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	res, err := core.RecordRun(context.Background(), prog, w, core.RecordConfig{
		Config: core.Config{Analysis: analysis, Seed: seed, Atomic: atomic},
	})
	if err != nil {
		t.Fatalf("RecordRun: %v", err)
	}
	return res, buf.Bytes()
}

// TestRoundTripRandomPrograms is the central equivalence property: over a
// spread of random programs, a live checked run and a replay of its trace
// produce identical findings and identical checker statistics, for both
// DoubleChecker single-run mode and Velodrome.
func TestRoundTripRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog, atomic := workloads.Random(seed)
			checkRoundTrip(t, prog, atomic, seed)
		})
	}
}

func TestRoundTripRandomRichPrograms(t *testing.T) {
	for seed := int64(100); seed < 108; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog, atomic := workloads.RandomRich(seed)
			checkRoundTrip(t, prog, atomic, seed)
		})
	}
}

func checkRoundTrip(t *testing.T, prog *vm.Program, atomic func(vm.MethodID) bool, seed int64) {
	t.Helper()
	for _, analysis := range []core.Analysis{core.DCSingle, core.Velodrome} {
		live, raw := record(t, prog, atomic, analysis, seed)
		data, err := trace.Read(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%v: Read: %v", analysis, err)
		}
		if !data.Complete {
			t.Fatalf("%v: trace not marked complete", analysis)
		}
		if got, want := data.Counts, live.VMStats.Events(); got != want {
			t.Fatalf("%v: trace counts {%v} != executor events {%v}", analysis, got, want)
		}
		replayed, err := core.RunTrace(context.Background(), data, core.Config{Analysis: analysis})
		if err != nil {
			t.Fatalf("%v: RunTrace: %v", analysis, err)
		}
		liveSigs := core.ViolationSignatures(live, prog)
		replaySigs := core.ViolationSignatures(replayed, data.Header.Program)
		if fmt.Sprint(liveSigs) != fmt.Sprint(replaySigs) {
			t.Errorf("%v: violations diverge:\nlive:   %v\nreplay: %v", analysis, liveSigs, replaySigs)
		}
		if live.ICD != replayed.ICD {
			t.Errorf("%v: ICD stats diverge:\nlive:   %+v\nreplay: %+v", analysis, live.ICD, replayed.ICD)
		}
		if live.Velo != replayed.Velo {
			t.Errorf("%v: Velodrome stats diverge:\nlive:   %+v\nreplay: %+v", analysis, live.Velo, replayed.Velo)
		}
		if live.Txn != replayed.Txn {
			t.Errorf("%v: txn stats diverge:\nlive:   %+v\nreplay: %+v", analysis, live.Txn, replayed.Txn)
		}
		if fmt.Sprint(live.StaticMethods) != fmt.Sprint(replayed.StaticMethods) {
			t.Errorf("%v: static methods diverge: %v vs %v", analysis, live.StaticMethods, replayed.StaticMethods)
		}
	}
}

// TestReencodeByteIdentical: decoding a trace and re-emitting its events
// through a fresh writer reproduces the file byte for byte — the encoder is
// canonical.
func TestReencodeByteIdentical(t *testing.T) {
	prog, atomic := workloads.RandomRich(7)
	_, raw := record(t, prog, atomic, core.DCSingle, 7)
	data, err := trace.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	w, err := trace.NewWriter(&out, trace.Header{
		Program: data.Header.Program,
		Atomic:  data.Header.Atomic,
		Seed:    data.Header.Seed,
		Sched:   data.Header.Sched,
		Source:  data.Header.Source,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range data.Events {
		switch ev.Kind {
		case trace.EvThreadStart:
			w.ThreadStart(ev.Thread)
		case trace.EvThreadExit:
			w.ThreadExit(ev.Thread)
		case trace.EvTxBegin:
			w.TxBegin(ev.Thread, ev.Method)
		case trace.EvTxEnd:
			w.TxEnd(ev.Thread, ev.Method)
		case trace.EvAccess:
			w.Access(ev.Access)
		case trace.EvBlockedSet:
			w.BlockedSet(ev.Blocked)
		case trace.EvProgramEnd:
			w.ProgramEnd()
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, out.Bytes()) {
		t.Fatalf("re-encoded trace differs: %d vs %d bytes", len(raw), len(out.Bytes()))
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	prog, atomic := workloads.Random(3)
	_, raw := record(t, prog, atomic, core.DCFirst, 3)
	hdr, err := trace.ReadHeader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Version != trace.Version {
		t.Errorf("version = %d", hdr.Version)
	}
	if hdr.Seed != 3 || hdr.Source != "trace_test" {
		t.Errorf("metadata: seed=%d source=%q", hdr.Seed, hdr.Source)
	}
	if err := hdr.Program.Validate(); err != nil {
		t.Errorf("embedded program invalid: %v", err)
	}
	if len(hdr.Program.Methods) != len(prog.Methods) {
		t.Errorf("methods: %d vs %d", len(hdr.Program.Methods), len(prog.Methods))
	}
	set := hdr.AtomicSet()
	for _, m := range prog.Methods {
		if set(m.ID) != atomic(m.ID) {
			t.Errorf("atomic set diverges at %s", m.Name)
		}
	}
	if got := hdr.AtomicNames(); len(got) != len(hdr.Atomic) {
		t.Errorf("AtomicNames: %v", got)
	}
}

func TestDiffTraceAgreesOnRandomPrograms(t *testing.T) {
	for seed := int64(20); seed < 26; seed++ {
		prog, atomic := workloads.Random(seed)
		_, raw := record(t, prog, atomic, core.Baseline, seed)
		data, err := trace.Read(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		td, err := core.DiffTrace(context.Background(), data)
		if err != nil {
			t.Fatal(err)
		}
		if !td.Agree() {
			t.Errorf("seed %d: %s\nonly-dc: %v\nonly-velo: %v\nicd-missed: %v",
				seed, td.Summary(), td.OnlyDC, td.OnlyVelo, td.ICDMissed)
		}
	}
}

func TestTruncatedTrace(t *testing.T) {
	prog, atomic := workloads.Random(5)
	_, raw := record(t, prog, atomic, core.DCFirst, 5)
	// Cut at a spread of points; every cut must fail loudly with a typed
	// error — never succeed, never panic.
	for _, frac := range []int{1, 2, 3, 5, 10, 50, 90} {
		cut := len(raw) * frac / 100
		_, err := trace.Read(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("cut at %d/%d bytes: decode succeeded", cut, len(raw))
		}
		if !errors.Is(err, trace.ErrTruncated) && !errors.Is(err, trace.ErrCorrupt) &&
			!errors.Is(err, trace.ErrBadMagic) {
			t.Errorf("cut at %d: untyped error %v", cut, err)
		}
	}
	// Dropping only the trailer is also truncation.
	_, err := trace.Read(bytes.NewReader(raw[:len(raw)-5]))
	if err == nil {
		t.Fatal("missing trailer accepted")
	}
}

// TestReaderIOFaults: a reader whose underlying stream fails mid-decode
// (connection reset, transport error) reports ErrIO with the cause in the
// wrap chain — distinguishable from a truncated or corrupt file — while a
// stream that merely ends early stays classified as truncation.
func TestReaderIOFaults(t *testing.T) {
	prog, atomic := workloads.Random(7)
	_, raw := record(t, prog, atomic, core.DCFirst, 7)

	// Mid-stream reset: ErrIO wrapping the injected reset. OneByteReader
	// makes every byte its own Read call, so the fault's position in the
	// file is exact regardless of internal buffer sizes.
	plan := &faultinject.IOPlan{ResetReadAt: 10}
	_, err := trace.Read(plan.Reader(iotest.OneByteReader(bytes.NewReader(raw))))
	if !errors.Is(err, trace.ErrIO) {
		t.Fatalf("reset mid-decode: got %v, want ErrIO", err)
	}
	if !errors.Is(err, faultinject.ErrReset) {
		t.Fatalf("underlying reset lost from wrap chain: %v", err)
	}
	if errors.Is(err, trace.ErrTruncated) || errors.Is(err, trace.ErrCorrupt) {
		t.Fatalf("transport fault misclassified as bad file: %v", err)
	}

	// Short read (stream ends early): plain truncation, not ErrIO.
	plan = &faultinject.IOPlan{ShortReadAt: 40}
	_, err = trace.Read(plan.Reader(iotest.OneByteReader(bytes.NewReader(raw))))
	if err == nil || errors.Is(err, trace.ErrIO) {
		t.Fatalf("short stream: got %v, want a non-ErrIO decode failure", err)
	}
}

func TestCorruptChunk(t *testing.T) {
	prog, atomic := workloads.Random(6)
	_, raw := record(t, prog, atomic, core.DCFirst, 6)
	// Flip one byte somewhere inside the event stream (past magic+version
	// and the header frame bytes; the CRC must catch it).
	for _, off := range []int{len(raw) / 3, len(raw) / 2, 2 * len(raw) / 3} {
		bad := bytes.Clone(raw)
		bad[off] ^= 0xff
		_, err := trace.Read(bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("flip at %d: decode succeeded", off)
		}
	}
}

func TestVersionMismatch(t *testing.T) {
	prog, atomic := workloads.Random(8)
	_, raw := record(t, prog, atomic, core.DCFirst, 8)
	bad := bytes.Clone(raw)
	bad[4] = 99 // the version uvarint follows the 4-byte magic
	_, err := trace.Read(bytes.NewReader(bad))
	if !errors.Is(err, trace.ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
	_, err = trace.ReadHeader(bytes.NewReader(bad))
	if !errors.Is(err, trace.ErrVersion) {
		t.Fatalf("ReadHeader: want ErrVersion, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	_, err := trace.Read(bytes.NewReader([]byte("not a trace file")))
	if !errors.Is(err, trace.ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
	_, err = trace.Read(bytes.NewReader([]byte("DC")))
	if !errors.Is(err, trace.ErrBadMagic) {
		t.Fatalf("short file: want ErrBadMagic, got %v", err)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []trace.EventKind{
		trace.EvThreadStart, trace.EvThreadExit, trace.EvTxBegin, trace.EvTxEnd,
		trace.EvProgramEnd, trace.EvBlockedSet, trace.EvAccess, trace.EventKind(99),
	}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", uint8(k))
		}
	}
}

func TestReplayCancellation(t *testing.T) {
	prog, atomic := workloads.RandomRich(9)
	_, raw := record(t, prog, atomic, core.Baseline, 9)
	data, err := trace.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := trace.Replay(ctx, data, vm.NopInst{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRecordBaselineTee: recording with the Baseline analysis produces a
// replayable trace even though nothing was checked live — record now, check
// later is the whole point.
func TestRecordBaselineTee(t *testing.T) {
	prog, atomic := workloads.Random(11)
	_, raw := record(t, prog, atomic, core.Baseline, 11)
	data, err := trace.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunTrace(context.Background(), data, core.Config{Analysis: core.DCSingle})
	if err != nil {
		t.Fatal(err)
	}
	if res.VMStats.TotalAccesses() == 0 {
		t.Error("replayed stats empty")
	}
}

func TestRunTraceRejectsBaseline(t *testing.T) {
	prog, atomic := workloads.Random(12)
	_, raw := record(t, prog, atomic, core.Baseline, 12)
	data, err := trace.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunTrace(context.Background(), data, core.Config{Analysis: core.Baseline}); err == nil {
		t.Fatal("Baseline replay should be rejected")
	}
}
