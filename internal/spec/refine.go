package spec

import (
	"fmt"

	"doublechecker/internal/vm"
)

// CheckFunc runs one checking trial against a specification and returns the
// methods blamed for atomicity violations in that trial. The trial number
// seeds the schedule (run-to-run nondeterminism).
type CheckFunc func(s *Spec, trial int) ([]vm.MethodID, error)

// Result reports one iterative-refinement run.
type Result struct {
	// Final is the refined specification (no new violations for
	// StableTrials consecutive trials).
	Final *Spec
	// Blamed is every method blamed at least once during the whole process
	// — what Table 2 counts as "violations".
	Blamed map[vm.MethodID]bool
	// ExclusionOrder lists refinement-removed methods in removal order
	// (used to reconstruct the paper's "halfway through refinement"
	// specification, §5.4).
	ExclusionOrder []vm.MethodID
	// Trials is the number of checking trials executed.
	Trials int
	// Steps is the number of refinement steps that excluded something.
	Steps int
}

// HalfwaySpec reconstructs the specification after the first half of the
// eventually-excluded methods were removed (§5.4).
func (r *Result) HalfwaySpec(initial *Spec) *Spec {
	s := initial.Clone()
	s.Exclude(r.ExclusionOrder[:len(r.ExclusionOrder)/2]...)
	return s
}

// Options tunes refinement.
type Options struct {
	// StableTrials is how many consecutive no-new-violation trials
	// terminate refinement; the paper uses 10. 0 means 10.
	StableTrials int
	// MaxTrials bounds the total trial count; 0 means 1000.
	MaxTrials int
}

// Refine runs the paper's Figure 6 loop: check, blame, exclude blamed
// methods, repeat until no new violations are reported for
// Options.StableTrials consecutive trials.
func Refine(initial *Spec, check CheckFunc, opts Options) (*Result, error) {
	if opts.StableTrials == 0 {
		opts.StableTrials = 10
	}
	if opts.MaxTrials == 0 {
		opts.MaxTrials = 1000
	}
	res := &Result{
		Final:  initial.Clone(),
		Blamed: make(map[vm.MethodID]bool),
	}
	stable := 0
	for stable < opts.StableTrials {
		if res.Trials >= opts.MaxTrials {
			return res, fmt.Errorf("spec: refinement did not stabilize in %d trials", opts.MaxTrials)
		}
		blamed, err := check(res.Final, res.Trials)
		res.Trials++
		if err != nil {
			return res, fmt.Errorf("spec: trial %d: %w", res.Trials-1, err)
		}
		var fresh []vm.MethodID
		for _, m := range blamed {
			res.Blamed[m] = true
			if res.Final.Atomic(m) {
				fresh = append(fresh, m)
			}
		}
		if len(fresh) > 0 {
			res.Final.Exclude(fresh...)
			res.ExclusionOrder = append(res.ExclusionOrder, fresh...)
			res.Steps++
			stable = 0
		} else {
			stable++
		}
	}
	return res, nil
}
