package spec

import (
	"errors"
	"fmt"
	"testing"

	"doublechecker/internal/core"
	"doublechecker/internal/vm"
	"doublechecker/internal/workloads"
)

func buildProg() *vm.Program {
	b := vm.NewBuilder("p")
	o := b.Object()
	mon := b.Object()
	inc := b.Method("inc")
	inc.Read(o, 0).Write(o, 0)
	waiter := b.Method("waiter")
	waiter.Acquire(mon).Notify(mon).Release(mon)
	m0 := b.Method("main0")
	m0.Call(inc).Call(waiter)
	m1 := b.Method("main1")
	m1.Call(inc)
	b.Thread(m0)
	b.Thread(m1)
	return b.MustBuild()
}

func TestInitialExcludesEntriesAndInterrupters(t *testing.T) {
	prog := buildProg()
	s := Initial(prog)
	if s.Atomic(prog.MethodByName("main0").ID) || s.Atomic(prog.MethodByName("main1").ID) {
		t.Error("thread entry methods must be excluded")
	}
	if s.Atomic(prog.MethodByName("waiter").ID) {
		t.Error("notify-containing methods must be excluded")
	}
	if !s.Atomic(prog.MethodByName("inc").ID) {
		t.Error("ordinary methods start atomic")
	}
	if s.Size() != 1 {
		t.Errorf("size = %d, want 1", s.Size())
	}
}

func TestExcludeAndClone(t *testing.T) {
	prog := buildProg()
	s := Initial(prog)
	incID := prog.MethodByName("inc").ID
	c := s.Clone()
	if n := s.Exclude(incID); n != 1 {
		t.Errorf("exclude count = %d", n)
	}
	if s.Exclude(incID) != 0 {
		t.Error("double exclude should be 0")
	}
	if !c.Atomic(incID) {
		t.Error("clone must be independent")
	}
}

func TestIntersect(t *testing.T) {
	prog := buildProg()
	a := Initial(prog)
	b := Initial(prog)
	incID := prog.MethodByName("inc").ID
	b.Exclude(incID)
	x := a.Intersect(b)
	if x.Atomic(incID) {
		t.Error("intersection must exclude what either excludes")
	}
	if a.Atomic(incID) == false {
		t.Error("intersect must not mutate receiver")
	}
}

func TestExcludeByName(t *testing.T) {
	prog := buildProg()
	s := Initial(prog)
	if err := s.ExcludeByName("inc"); err != nil {
		t.Fatal(err)
	}
	if s.Atomic(prog.MethodByName("inc").ID) {
		t.Error("inc should be excluded")
	}
	if err := s.ExcludeByName("nope"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestAtomicMethodsAndString(t *testing.T) {
	prog := buildProg()
	s := Initial(prog)
	if len(s.AtomicMethods()) != 1 {
		t.Errorf("atomic methods: %v", s.AtomicMethods())
	}
	if len(s.Excluded()) != 3 {
		t.Errorf("excluded: %v", s.Excluded())
	}
	if s.String() == "" {
		t.Error("empty string")
	}
}

func TestRefineConverges(t *testing.T) {
	// A synthetic checker: blames method 0 whenever it is atomic, then
	// method 1; refinement must exclude both and stabilize.
	prog := buildProg()
	s := New(prog)
	check := func(sp *Spec, trial int) ([]vm.MethodID, error) {
		if sp.Atomic(0) {
			return []vm.MethodID{0}, nil
		}
		if sp.Atomic(1) {
			return []vm.MethodID{1}, nil
		}
		return nil, nil
	}
	res, err := Refine(s, check, Options{StableTrials: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Atomic(0) || res.Final.Atomic(1) {
		t.Error("blamed methods must end excluded")
	}
	if len(res.Blamed) != 2 || res.Steps != 2 {
		t.Errorf("blamed=%d steps=%d", len(res.Blamed), res.Steps)
	}
	if res.Trials != 2+3 {
		t.Errorf("trials = %d, want 5 (2 excluding + 3 stable)", res.Trials)
	}
}

func TestRefinePropagatesErrors(t *testing.T) {
	prog := buildProg()
	boom := errors.New("boom")
	_, err := Refine(New(prog), func(*Spec, int) ([]vm.MethodID, error) { return nil, boom }, Options{})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestRefineMaxTrials(t *testing.T) {
	prog := buildProg()
	i := vm.MethodID(0)
	check := func(sp *Spec, trial int) ([]vm.MethodID, error) {
		// Always blame something new (cycle through methods forever by
		// blaming an already-excluded one — never stabilizes because we
		// alternate). Actually blame an excluded method: no fresh -> would
		// stabilize. Blame a fresh one each time until exhausted:
		i = (i + 1) % vm.MethodID(len(prog.Methods))
		return []vm.MethodID{i}, nil
	}
	_, err := Refine(New(prog), check, Options{StableTrials: 1000, MaxTrials: 5})
	if err == nil {
		t.Error("expected max-trials error")
	}
}

func TestHalfwaySpec(t *testing.T) {
	prog := buildProg()
	res := &Result{ExclusionOrder: []vm.MethodID{0, 1, 2, 3}}
	initial := New(prog)
	half := res.HalfwaySpec(initial)
	if half.Atomic(0) || half.Atomic(1) {
		t.Error("first half must be excluded")
	}
	if !half.Atomic(2) || !half.Atomic(3) {
		t.Error("second half must remain atomic")
	}
}

// TestRefineEndToEnd drives refinement with the real DoubleChecker on a
// program with one racy atomic method: refinement must blame and exclude
// it, and the refined spec must produce no violations.
func TestRefineEndToEnd(t *testing.T) {
	b := vm.NewBuilder("e2e")
	o := b.Object()
	racy := b.Method("racy")
	racy.Read(o, 0).Compute(2).Write(o, 0)
	safeObj := b.Object()
	safe := b.Method("safe")
	safe.Read(safeObj, 0)
	for i := 0; i < 3; i++ {
		main := b.Method(fmt.Sprintf("main%d", i))
		main.CallN(racy, 8).CallN(safe, 8)
		b.Thread(main)
	}
	prog := b.MustBuild()

	check := func(sp *Spec, trial int) ([]vm.MethodID, error) {
		r, err := core.Run(prog, core.Config{
			Analysis: core.DCSingle,
			Seed:     int64(trial),
			Atomic:   sp.Atomic,
		})
		if err != nil {
			return nil, err
		}
		var blamed []vm.MethodID
		for m := range r.BlamedMethods {
			blamed = append(blamed, m)
		}
		return blamed, nil
	}
	res, err := Refine(Initial(prog), check, Options{StableTrials: 5})
	if err != nil {
		t.Fatal(err)
	}
	racyID := prog.MethodByName("racy").ID
	if !res.Blamed[racyID] {
		t.Error("racy must be blamed during refinement")
	}
	if res.Final.Atomic(racyID) {
		t.Error("racy must end excluded")
	}
	if !res.Final.Atomic(prog.MethodByName("safe").ID) {
		t.Error("safe must stay in the specification")
	}
}

// TestPropertyRefinementReachesFixpoint: on random programs, the refined
// specification must be quiet — re-checking it across fresh seeds blames
// nothing that refinement left in the spec.
func TestPropertyRefinementReachesFixpoint(t *testing.T) {
	freshTrials, freshEscapes := 0, 0
	for seed := int64(0); seed < 25; seed++ {
		prog, atomic := workloads.Random(seed)
		initial := New(prog)
		for _, m := range prog.Methods {
			if !atomic(m.ID) {
				initial.Exclude(m.ID)
			}
		}
		check := func(sp *Spec, trial int) ([]vm.MethodID, error) {
			res, err := core.Run(prog, core.Config{
				Analysis: core.DCSingle, Seed: int64(trial), Atomic: sp.Atomic,
			})
			if err != nil {
				return nil, err
			}
			var out []vm.MethodID
			for m := range res.BlamedMethods {
				out = append(out, m)
			}
			return out, nil
		}
		res, err := Refine(initial, check, Options{StableTrials: 6})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The deterministic fixpoint property: over the schedules refinement
		// itself observed quiet (its last StableTrials trials), the final
		// spec must blame nothing — those runs are reproducible bit for bit.
		for trial := res.Trials - 6; trial < res.Trials; trial++ {
			blamed, err := check(res.Final, trial)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range blamed {
				if res.Final.Atomic(m) {
					t.Errorf("seed %d: trial %d blamed %s, but refinement saw that schedule quiet",
						seed, trial, prog.MethodName(m))
				}
			}
		}
		// Fresh schedules may expose races refinement's window missed — the
		// paper's stable-trial count (10) is an explicitly probabilistic
		// cutoff. Track the rate and flag only systematic escapes.
		for extra := res.Trials; extra < res.Trials+6; extra++ {
			freshTrials++
			blamed, err := check(res.Final, extra)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range blamed {
				if res.Final.Atomic(m) {
					freshEscapes++
					break
				}
			}
		}
	}
	if freshEscapes*5 > freshTrials {
		t.Errorf("fixpoint escapes on %d/%d fresh schedules: refinement under-explores",
			freshEscapes, freshTrials)
	}
}
