// Package spec implements atomicity specifications and the iterative
// refinement methodology that derives them (paper §4 "Specifying atomic
// regions" and §5.1, Figure 6).
//
// A specification is expressed as the paper's implementation expresses it:
// a list of methods *excluded* from the specification; every other method
// is expected to execute atomically. The initial specification excludes
// top-level methods (thread entry points — main() and Thread.run()
// analogues) and methods containing interrupting calls (wait/notify),
// mirroring the paper. Iterative refinement then repeatedly runs a checker
// and removes blamed methods until no new violations are reported for a
// configured number of trials.
package spec

import (
	"fmt"
	"sort"

	"doublechecker/internal/vm"
)

// Spec is an atomicity specification for one program.
type Spec struct {
	prog     *vm.Program
	excluded map[vm.MethodID]bool
}

// New returns a specification for prog with the given excluded methods.
func New(prog *vm.Program, excluded ...vm.MethodID) *Spec {
	s := &Spec{prog: prog, excluded: make(map[vm.MethodID]bool)}
	for _, m := range excluded {
		s.excluded[m] = true
	}
	return s
}

// Initial returns the paper's starting specification: all methods atomic
// except thread entry points and methods that contain interrupting
// operations (wait, notify) or thread management (fork, join) — the
// analogues of main(), Thread.run(), and wait()/notify() callers.
func Initial(prog *vm.Program) *Spec {
	s := New(prog)
	for _, td := range prog.Threads {
		s.excluded[td.Entry] = true
	}
	for _, m := range prog.Methods {
		for _, op := range m.Body {
			switch op.Kind {
			case vm.OpWait, vm.OpNotify, vm.OpNotifyAll, vm.OpFork, vm.OpJoin:
				s.excluded[m.ID] = true
			}
		}
	}
	return s
}

// Clone returns an independent copy.
func (s *Spec) Clone() *Spec {
	c := New(s.prog)
	for m := range s.excluded {
		c.excluded[m] = true
	}
	return c
}

// Atomic reports whether method m is in the specification (expected to
// execute atomically). It is the predicate the executor consumes.
func (s *Spec) Atomic(m vm.MethodID) bool { return !s.excluded[m] }

// Exclude removes methods from the specification. It reports how many were
// newly excluded.
func (s *Spec) Exclude(methods ...vm.MethodID) int {
	n := 0
	for _, m := range methods {
		if !s.excluded[m] {
			s.excluded[m] = true
			n++
		}
	}
	return n
}

// Excluded returns the sorted excluded method IDs.
func (s *Spec) Excluded() []vm.MethodID {
	out := make([]vm.MethodID, 0, len(s.excluded))
	for m := range s.excluded {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AtomicMethods returns the sorted method IDs in the specification.
func (s *Spec) AtomicMethods() []vm.MethodID {
	var out []vm.MethodID
	for _, m := range s.prog.Methods {
		if !s.excluded[m.ID] {
			out = append(out, m.ID)
		}
	}
	return out
}

// Size returns how many methods are in the specification.
func (s *Spec) Size() int { return len(s.prog.Methods) - len(s.excluded) }

// Intersect returns a specification atomic only where both s and o are —
// the paper intersects the finalized Velodrome and DoubleChecker
// specifications "to avoid any bias toward one approach" (§5.1).
func (s *Spec) Intersect(o *Spec) *Spec {
	c := s.Clone()
	for m := range o.excluded {
		c.excluded[m] = true
	}
	return c
}

// ExcludeByName excludes methods by name, for hand-adjusted specifications
// (the paper excludes a few long-running methods that exhaust memory,
// §5.1). Unknown names are an error.
func (s *Spec) ExcludeByName(names ...string) error {
	for _, name := range names {
		m := s.prog.MethodByName(name)
		if m == nil {
			return fmt.Errorf("spec: no method %q", name)
		}
		s.excluded[m.ID] = true
	}
	return nil
}

func (s *Spec) String() string {
	var names []string
	for m := range s.excluded {
		names = append(names, s.prog.MethodName(m))
	}
	sort.Strings(names)
	return fmt.Sprintf("spec{%d atomic, excluded %v}", s.Size(), names)
}
