package faultinject

import (
	"testing"
	"time"

	"doublechecker/internal/cost"
	"doublechecker/internal/vm"
)

// twoThreadProg builds a small two-thread program with one atomic method, so
// runs emit accesses and transaction events.
func twoThreadProg(t *testing.T) *vm.Program {
	t.Helper()
	b := vm.NewBuilder("faulty")
	obj := b.Object()
	m := b.Method("bump")
	m.Read(obj, 0).Compute(2).Write(obj, 0)
	for i := 0; i < 2; i++ {
		main := b.Method("main" + string(rune('0'+i)))
		main.CallN(m, 5)
		b.Thread(main)
	}
	return b.MustBuild()
}

// countingInst counts the events that reach the wrapped (inner) side.
type countingInst struct {
	vm.NopInst
	accesses int
	txEnds   int
}

func (c *countingInst) Access(vm.Access)               { c.accesses++ }
func (c *countingInst) TxEnd(vm.ThreadID, vm.MethodID) { c.txEnds++ }

func run(t *testing.T, prog *vm.Program, inst vm.Instrumentation) error {
	t.Helper()
	bump := prog.MethodByName("bump").ID
	_, err := vm.NewExec(prog, vm.Config{
		Sched:  vm.NewRoundRobin(),
		Inst:   inst,
		Atomic: func(m vm.MethodID) bool { return m == bump },
	}).Run()
	return err
}

func TestPanicAtExactAccess(t *testing.T) {
	prog := twoThreadProg(t)
	inner := &countingInst{}
	defer func() {
		r := recover()
		if r != "boom" {
			t.Fatalf("want injected panic %q, got %v", "boom", r)
		}
		// The panic fires before forwarding the Nth access: the inner
		// instrumentation saw exactly N-1.
		if inner.accesses != 4 {
			t.Fatalf("inner saw %d accesses before the panic, want 4", inner.accesses)
		}
	}()
	_ = run(t, prog, Inst(inner, &Plan{PanicAtAccess: 5, PanicMsg: "boom"}))
	t.Fatal("injected panic did not fire")
}

func TestPanicAtTxEnd(t *testing.T) {
	prog := twoThreadProg(t)
	inner := &countingInst{}
	defer func() {
		if r := recover(); r != DefaultPanicMsg {
			t.Fatalf("want default panic message, got %v", r)
		}
		if inner.txEnds != 2 {
			t.Fatalf("inner saw %d TxEnds before the panic, want 2", inner.txEnds)
		}
	}()
	_ = run(t, prog, Inst(inner, &Plan{PanicAtTxEnd: 3}))
	t.Fatal("injected panic did not fire")
}

func TestNoFaultsIsTransparent(t *testing.T) {
	prog := twoThreadProg(t)
	plain, wrapped := &countingInst{}, &countingInst{}
	if err := run(t, prog, plain); err != nil {
		t.Fatal(err)
	}
	if err := run(t, prog, Inst(wrapped, &Plan{})); err != nil {
		t.Fatal(err)
	}
	if plain.accesses != wrapped.accesses || plain.txEnds != wrapped.txEnds {
		t.Fatalf("empty plan altered the event stream: %+v vs %+v", plain, wrapped)
	}
	if plain.accesses == 0 {
		t.Fatal("program emitted no accesses; test is vacuous")
	}
}

func TestOOMTripsMeterBudget(t *testing.T) {
	prog := twoThreadProg(t)
	meter := cost.NewMeter(cost.Default())
	meter.SetBudget(1 << 20)
	if err := run(t, prog, Inst(&countingInst{}, &Plan{
		OOMAtAccess: 3, OOMBytes: 2 << 20, Meter: meter,
	})); err != nil {
		t.Fatal(err)
	}
	if !meter.Report().OOM {
		t.Fatal("injected allocation did not trip the memory budget")
	}
}

func TestOOMBelowBudgetDoesNotTrip(t *testing.T) {
	prog := twoThreadProg(t)
	meter := cost.NewMeter(cost.Default())
	meter.SetBudget(1 << 20)
	if err := run(t, prog, Inst(&countingInst{}, &Plan{
		OOMAtAccess: 3, OOMBytes: 1 << 10, Meter: meter,
	})); err != nil {
		t.Fatal(err)
	}
	if meter.Report().OOM {
		t.Fatal("sub-budget allocation tripped the memory budget")
	}
}

func TestInstStallDelays(t *testing.T) {
	prog := twoThreadProg(t)
	const stall = 5 * time.Millisecond
	start := time.Now()
	if err := run(t, prog, Inst(&countingInst{}, &Plan{
		StallAtAccess: 1, StallEveryAccess: 10, StallFor: stall,
	})); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < stall {
		t.Fatalf("run finished in %v, faster than a single %v stall", elapsed, stall)
	}
}

func TestSchedStallDelaysAndPreservesChoices(t *testing.T) {
	prog := twoThreadProg(t)
	// The wrapped scheduler must pick the same threads as the plain one.
	bump := prog.MethodByName("bump").ID
	atomic := func(m vm.MethodID) bool { return m == bump }
	plain, err := vm.NewExec(prog, vm.Config{Sched: vm.NewSticky(42, 0.3), Atomic: atomic}).Run()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	const stall = 3 * time.Millisecond
	wrapped, err := vm.NewExec(prog, vm.Config{
		Sched:  Sched(vm.NewSticky(42, 0.3), SchedPlan{StallAtPick: 2, StallFor: stall}),
		Atomic: atomic,
		Inst:   vm.NopInst{},
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < stall {
		t.Fatal("scheduler stall did not delay the run")
	}
	if plain.Steps != wrapped.Steps || plain.RegularTx != wrapped.RegularTx {
		t.Fatalf("stall changed the interleaving: %+v vs %+v", plain, wrapped)
	}
}
