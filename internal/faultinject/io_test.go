package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestIOPlanShortRead(t *testing.T) {
	src := strings.Repeat("x", 100)
	p := &IOPlan{ShortReadAt: 2}
	r := p.Reader(strings.NewReader(src))
	buf := make([]byte, 10)
	n, err := r.Read(buf)
	if n != 10 || err != nil {
		t.Fatalf("read 1: n=%d err=%v, want full 10", n, err)
	}
	n, err = r.Read(buf)
	if n > 1 || err != nil {
		t.Fatalf("read 2 (short): n=%d err=%v, want <=1 byte", n, err)
	}
	if _, err = r.Read(buf); err != io.EOF {
		t.Fatalf("read 3: err=%v, want EOF (stream truncated for good)", err)
	}
	// Deterministic: identical plan, identical byte count delivered.
	p2 := &IOPlan{ShortReadAt: 2}
	r2 := p2.Reader(strings.NewReader(src))
	total, total2 := 0, 0
	r = (&IOPlan{ShortReadAt: 2}).Reader(strings.NewReader(src))
	for {
		m, err := r.Read(buf)
		total += m
		if err != nil {
			break
		}
	}
	for {
		m, err := r2.Read(buf)
		total2 += m
		if err != nil {
			break
		}
	}
	if total != total2 {
		t.Fatalf("short read nondeterministic: %d vs %d bytes", total, total2)
	}
}

func TestIOPlanFailAndResetRead(t *testing.T) {
	r := (&IOPlan{FailReadAt: 1}).Reader(strings.NewReader("data"))
	if _, err := r.Read(make([]byte, 4)); !errors.Is(err, ErrReadFailed) {
		t.Fatalf("want ErrReadFailed, got %v", err)
	}
	r = (&IOPlan{ResetReadAt: 2}).Reader(strings.NewReader("datadata"))
	buf := make([]byte, 4)
	if _, err := r.Read(buf); err != nil {
		t.Fatalf("read 1 should succeed: %v", err)
	}
	if _, err := r.Read(buf); !errors.Is(err, ErrReset) {
		t.Fatalf("want ErrReset on read 2, got %v", err)
	}
	// The reset is sticky: retrying the stream keeps failing.
	if _, err := r.Read(buf); !errors.Is(err, ErrReset) {
		t.Fatalf("reset not sticky: %v", err)
	}
}

func TestIOPlanWriterFaults(t *testing.T) {
	var sink bytes.Buffer
	w := (&IOPlan{FailWriteAt: 2}).Writer(&sink)
	if _, err := w.Write([]byte("ok")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := w.Write([]byte("boom")); !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("want ErrWriteFailed, got %v", err)
	}
	if sink.String() != "ok" {
		t.Fatalf("sink = %q, want only the pre-fault write", sink.String())
	}

	w = (&IOPlan{ResetWriteAt: 1}).Writer(&sink)
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrReset) {
		t.Fatalf("want ErrReset, got %v", err)
	}
}

func TestIOPlanStalls(t *testing.T) {
	const d = 30 * time.Millisecond
	r := (&IOPlan{StallReadAt: 1, StallFor: d}).Reader(strings.NewReader("abc"))
	start := time.Now()
	if _, err := r.Read(make([]byte, 3)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("stalled read returned after %v, want >= %v", elapsed, d)
	}

	var sink bytes.Buffer
	w := (&IOPlan{StallWriteAt: 2, StallEveryWrite: 1, StallFor: d}).Writer(&sink)
	start = time.Now()
	w.Write([]byte("a")) // 1st: no stall
	if elapsed := time.Since(start); elapsed >= d {
		t.Fatalf("write 1 stalled (%v)", elapsed)
	}
	w.Write([]byte("b")) // 2nd: stalls
	w.Write([]byte("c")) // 3rd: stalls again (every 1)
	if elapsed := time.Since(start); elapsed < 2*d {
		t.Fatalf("periodic write stall too short: %v", elapsed)
	}
	if sink.String() != "abc" {
		t.Fatalf("stalls must not drop bytes: %q", sink.String())
	}
}
