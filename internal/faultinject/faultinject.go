// Package faultinject injects deterministic faults into checked executions,
// so the supervisor's recovery paths can be proven rather than assumed.
//
// The injectors wrap the two seams every checked run already flows through:
// vm.Instrumentation (where a real checker bug — a panic in transaction
// bookkeeping or cycle detection — would live) and vm.Scheduler (where a
// hostile or hung schedule lives). Faults fire at event *counts*, not at
// times or probabilities, so an injected run is exactly reproducible: the
// Nth access panics, stalls, or trips the memory budget on every run with
// the same program and seed.
package faultinject

import (
	"time"

	"doublechecker/internal/cost"
	"doublechecker/internal/vm"
)

// DefaultPanicMsg is the panic value used when Plan.PanicMsg is empty.
const DefaultPanicMsg = "faultinject: scheduled panic"

// Plan schedules instrumentation faults at deterministic event counts.
// Counts are 1-based over the events the wrapper observes; 0 disables a
// fault.
type Plan struct {
	// PanicAtAccess panics before forwarding the Nth Access event.
	PanicAtAccess uint64
	// PanicAtTxEnd panics before forwarding the Nth TxEnd event — the
	// transaction-bookkeeping seam (txn.EndRegular and friends).
	PanicAtTxEnd uint64
	// PanicMsg is the panic value; DefaultPanicMsg when empty.
	PanicMsg string

	// StallAtAccess sleeps StallFor before the Nth access, and — when
	// StallEveryAccess is set — again every that-many accesses after it.
	// Use it to make a trial measurably exceed a wall-clock deadline.
	StallAtAccess    uint64
	StallEveryAccess uint64
	StallFor         time.Duration

	// OOMAtAccess charges OOMBytes of live analysis allocation to Meter at
	// the Nth access — a deterministic stand-in for the metadata spike that
	// trips a MemoryBudget (§5.1's 32-bit OOMs).
	OOMAtAccess uint64
	OOMBytes    int64
	Meter       *cost.Meter
}

// Inst wraps inner so the plan's faults fire inside instrumentation
// callbacks, exactly where a real checker failure would. The wrapper is
// single-use per run (it owns the event counters).
func Inst(inner vm.Instrumentation, p *Plan) vm.Instrumentation {
	return &inst{inner: inner, plan: p}
}

type inst struct {
	inner    vm.Instrumentation
	plan     *Plan
	accesses uint64
	txEnds   uint64
}

func (i *inst) panicNow() {
	msg := i.plan.PanicMsg
	if msg == "" {
		msg = DefaultPanicMsg
	}
	panic(msg)
}

func (i *inst) ProgramStart(e vm.ExecView) { i.inner.ProgramStart(e) }
func (i *inst) ThreadStart(t vm.ThreadID)  { i.inner.ThreadStart(t) }
func (i *inst) ThreadExit(t vm.ThreadID)   { i.inner.ThreadExit(t) }
func (i *inst) ProgramEnd()                { i.inner.ProgramEnd() }

func (i *inst) TxBegin(t vm.ThreadID, m vm.MethodID) { i.inner.TxBegin(t, m) }

func (i *inst) TxEnd(t vm.ThreadID, m vm.MethodID) {
	i.txEnds++
	if i.plan.PanicAtTxEnd != 0 && i.txEnds == i.plan.PanicAtTxEnd {
		i.panicNow()
	}
	i.inner.TxEnd(t, m)
}

func (i *inst) Access(a vm.Access) {
	i.accesses++
	n := i.accesses
	if i.plan.PanicAtAccess != 0 && n == i.plan.PanicAtAccess {
		i.panicNow()
	}
	if i.plan.StallAtAccess != 0 && n >= i.plan.StallAtAccess {
		hit := n == i.plan.StallAtAccess
		if !hit && i.plan.StallEveryAccess != 0 {
			hit = (n-i.plan.StallAtAccess)%i.plan.StallEveryAccess == 0
		}
		if hit {
			time.Sleep(i.plan.StallFor)
		}
	}
	if i.plan.OOMAtAccess != 0 && n == i.plan.OOMAtAccess && i.plan.Meter != nil {
		i.plan.Meter.Alloc(i.plan.OOMBytes)
	}
	i.inner.Access(a)
}

// SchedPlan schedules scheduler-side stalls at deterministic pick counts —
// a hung or glacially slow schedule source for deadline tests.
type SchedPlan struct {
	// StallAtPick sleeps StallFor at the Nth scheduling decision (1-based),
	// and — when StallEvery is set — every that-many picks after it.
	StallAtPick uint64
	StallEvery  uint64
	StallFor    time.Duration
}

// Sched wraps inner with the plan's stalls. Thread choice is delegated
// untouched, so the interleaving (and thus the checkers' findings) is
// identical to the unwrapped scheduler's.
func Sched(inner vm.Scheduler, p SchedPlan) vm.Scheduler {
	return &sched{inner: inner, plan: p}
}

type sched struct {
	inner vm.Scheduler
	plan  SchedPlan
	picks uint64
}

func (s *sched) Next(runnable []vm.ThreadID, step uint64) vm.ThreadID {
	s.picks++
	if s.plan.StallAtPick != 0 && s.picks >= s.plan.StallAtPick {
		hit := s.picks == s.plan.StallAtPick
		if !hit && s.plan.StallEvery != 0 {
			hit = (s.picks-s.plan.StallAtPick)%s.plan.StallEvery == 0
		}
		if hit {
			time.Sleep(s.plan.StallFor)
		}
	}
	return s.inner.Next(runnable, step)
}
