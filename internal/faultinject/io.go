// I/O fault injection: deterministic failures on the byte-stream seams a
// service lives or dies by — trace uploads, trace-file reads, response
// writes. Faults fire at Read/Write *call counts*, mirroring the event-count
// determinism of Plan: the Nth read short-reads, fails, or resets on every
// run, so the server's and trace reader's error paths are testable without
// flaky sockets.

package faultinject

import (
	"errors"
	"io"
	"time"
)

// Injected I/O errors; match with errors.Is. ErrReset models a mid-stream
// connection reset (the peer vanished), ErrReadFailed a generic transport
// read failure, ErrWriteFailed the write-side equivalent.
var (
	ErrReset       = errors.New("faultinject: injected connection reset")
	ErrReadFailed  = errors.New("faultinject: injected read failure")
	ErrWriteFailed = errors.New("faultinject: injected write failure")
)

// IOPlan schedules stream faults at deterministic Read/Write call counts
// (1-based; 0 disables a fault).
type IOPlan struct {
	// ShortReadAt truncates the stream: the Nth Read returns at most one
	// byte, and every later Read reports io.EOF — a client that stopped
	// sending mid-upload, or a file cut short.
	ShortReadAt uint64
	// FailReadAt makes the Nth Read (and all later ones) return
	// ErrReadFailed.
	FailReadAt uint64
	// ResetReadAt makes the Nth Read (and all later ones) return ErrReset —
	// a mid-stream connection reset.
	ResetReadAt uint64
	// StallReadAt sleeps StallFor before the Nth Read, and — when
	// StallEveryRead is set — again every that-many reads after it: a
	// glacial client.
	StallReadAt    uint64
	StallEveryRead uint64

	// StallWriteAt sleeps StallFor before the Nth Write, and — when
	// StallEveryWrite is set — again every that-many writes after it: a
	// stalled response writer (slow consumer).
	StallWriteAt    uint64
	StallEveryWrite uint64
	// FailWriteAt makes the Nth Write (and all later ones) return
	// ErrWriteFailed.
	FailWriteAt uint64
	// ResetWriteAt makes the Nth Write (and all later ones) return ErrReset.
	ResetWriteAt uint64

	// StallFor is the stall duration shared by the read- and write-side
	// stall faults.
	StallFor time.Duration
}

// Reader wraps r so the plan's read-side faults fire at the scheduled call
// counts. The wrapper is single-use per stream (it owns the call counter).
func (p *IOPlan) Reader(r io.Reader) io.Reader {
	return &faultReader{inner: r, plan: p}
}

// Writer wraps w so the plan's write-side faults fire at the scheduled call
// counts. The wrapper is single-use per stream.
func (p *IOPlan) Writer(w io.Writer) io.Writer {
	return &faultWriter{inner: w, plan: p}
}

// stallHit reports whether call number n hits a stall scheduled at `at` with
// period `every`.
func stallHit(n, at, every uint64) bool {
	if at == 0 || n < at {
		return false
	}
	if n == at {
		return true
	}
	return every != 0 && (n-at)%every == 0
}

type faultReader struct {
	inner io.Reader
	plan  *IOPlan
	reads uint64
	eof   bool
}

func (f *faultReader) Read(b []byte) (int, error) {
	if f.eof {
		return 0, io.EOF
	}
	f.reads++
	n := f.reads
	p := f.plan
	if stallHit(n, p.StallReadAt, p.StallEveryRead) {
		time.Sleep(p.StallFor)
	}
	if p.FailReadAt != 0 && n >= p.FailReadAt {
		return 0, ErrReadFailed
	}
	if p.ResetReadAt != 0 && n >= p.ResetReadAt {
		return 0, ErrReset
	}
	if p.ShortReadAt != 0 && n >= p.ShortReadAt {
		f.eof = true
		if len(b) == 0 {
			return 0, io.EOF
		}
		// Deliver at most one byte, then end the stream for good.
		m, err := f.inner.Read(b[:1])
		if err != nil && err != io.EOF {
			return m, err
		}
		if m == 0 {
			return 0, io.EOF
		}
		return m, nil
	}
	return f.inner.Read(b)
}

type faultWriter struct {
	inner  io.Writer
	plan   *IOPlan
	writes uint64
}

func (f *faultWriter) Write(b []byte) (int, error) {
	f.writes++
	n := f.writes
	p := f.plan
	if stallHit(n, p.StallWriteAt, p.StallEveryWrite) {
		time.Sleep(p.StallFor)
	}
	if p.FailWriteAt != 0 && n >= p.FailWriteAt {
		return 0, ErrWriteFailed
	}
	if p.ResetWriteAt != 0 && n >= p.ResetWriteAt {
		return 0, ErrReset
	}
	return f.inner.Write(b)
}
