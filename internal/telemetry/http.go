package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
)

// promName sanitizes a metric name into the Prometheus exposition charset:
// dots and dashes become underscores.
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}

// WriteProm writes the registry's current state in the Prometheus text
// exposition format (version 0.0.4): counters, gauges, histograms with
// cumulative le buckets, and spans as a count/cost/wall metric triple.
func (r *Registry) WriteProm(w io.Writer) {
	if r == nil {
		return
	}
	s := r.Snapshot()
	for _, n := range sortedNames(s.Counters) {
		pn := "dc_" + promName(n)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n])
	}
	for _, n := range sortedNames(s.Gauges) {
		pn := "dc_" + promName(n)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, s.Gauges[n])
	}
	for _, n := range sortedNames(s.Histograms) {
		h := s.Histograms[n]
		pn := "dc_" + promName(n)
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		cum := uint64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, h.Sum, pn, h.Count)
	}
	for _, n := range sortedNames(s.Spans) {
		sp := s.Spans[n]
		pn := "dc_span_" + promName(n)
		fmt.Fprintf(w, "# TYPE %s_count counter\n%s_count %d\n", pn, pn, sp.Count)
		fmt.Fprintf(w, "# TYPE %s_cost_units counter\n%s_cost_units %d\n", pn, pn, sp.CostUnits)
		fmt.Fprintf(w, "# TYPE %s_wall_seconds counter\n%s_wall_seconds %g\n", pn, pn, float64(sp.WallNanos)/1e9)
	}
}

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteProm(w)
	})
}

// NewMux returns an http.ServeMux exposing the registry at /metrics
// (Prometheus text), the process expvars at /debug/vars, and the standard
// pprof profiles under /debug/pprof/ — the one mux `dcheck -metrics-addr`
// serves, so metrics and profiling share a port.
func (r *Registry) NewMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
