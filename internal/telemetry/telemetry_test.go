package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter and one histogram from many
// goroutines; run under -race this is the registry's thread-safety gate.
func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("shared")
			h := reg.Histogram("dist", []uint64{4, 16})
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(uint64(i % 32))
				reg.Gauge("g").Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Histogram("dist", nil).Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

// TestHistogramBuckets pins the boundary rule: bucket i counts v <=
// Bounds[i], the final implicit bucket counts overflow.
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]uint64{2, 4, 8})
	for _, v := range []uint64{1, 2, 3, 4, 5, 8, 9, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 2} // {1,2}, {3,4}, {5,8}, {9,100}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if h.Sum() != 1+2+3+4+5+8+9+100 {
		t.Errorf("sum = %d", h.Sum())
	}
}

// TestHistogramSortsBounds: unsorted bounds are normalized at creation.
func TestHistogramSortsBounds(t *testing.T) {
	h := newHistogram([]uint64{8, 2, 4})
	h.Observe(3)
	if got := h.BucketCounts(); got[1] != 1 {
		t.Errorf("observation of 3 landed in %v, want bucket 1", got)
	}
}

// TestNilRegistry: every method is safe on a nil receiver and returns
// working (unregistered) handles, so instrumented code needs no hot-path
// nil checks.
func TestNilRegistry(t *testing.T) {
	var reg *Registry
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1.5)
	reg.Histogram("h", []uint64{1}).Observe(2)
	sp := reg.StartSpan("phase", nil)
	sp.End()
	s := reg.Snapshot()
	if len(s.Counters) != 0 || len(s.Spans) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
	var buf bytes.Buffer
	reg.WriteProm(&buf)
	if buf.Len() != 0 {
		t.Errorf("nil registry wrote prom output: %q", buf.String())
	}
	// The zero Span is likewise a no-op.
	var zero Span
	zero.End()
}

// TestSpanAccumulates: spans of the same name sum their counts and wall
// time; Deterministic strips the wall time and nothing else.
func TestSpanAccumulates(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < 3; i++ {
		sp := reg.StartSpan("execute", nil)
		time.Sleep(time.Millisecond)
		sp.End()
	}
	s := reg.Snapshot()
	got := s.Spans["execute"]
	if got.Count != 3 {
		t.Errorf("span count = %d, want 3", got.Count)
	}
	if got.WallNanos <= 0 {
		t.Errorf("span wall = %d, want > 0", got.WallNanos)
	}
	det := s.Deterministic()
	if det.Spans["execute"].WallNanos != 0 {
		t.Error("Deterministic kept wall time")
	}
	if det.Spans["execute"].Count != 3 {
		t.Error("Deterministic dropped span count")
	}
	if got := s.Spans["execute"].WallNanos; got <= 0 {
		t.Errorf("Deterministic mutated the source snapshot (wall=%d)", got)
	}
}

// TestSnapshotJSONStable: two registries fed identical operations encode to
// byte-identical deterministic JSON, regardless of insertion order.
func TestSnapshotJSONStable(t *testing.T) {
	feed := func(names []string) []byte {
		reg := NewRegistry()
		for _, n := range names {
			reg.Counter(n).Add(7)
		}
		reg.Gauge("frac").Set(0.5)
		reg.Histogram("sizes", []uint64{2, 4}).Observe(3)
		sp := reg.StartSpan("phase", nil)
		sp.End()
		return reg.Snapshot().Deterministic().JSON()
	}
	a := feed([]string{"x", "y", "z"})
	b := feed([]string{"z", "y", "x"})
	if !bytes.Equal(a, b) {
		t.Errorf("snapshots differ:\n%s\nvs\n%s", a, b)
	}
}

// TestWriteProm pins the exposition format: dc_ prefix, sanitized names,
// TYPE lines, and cumulative le buckets.
func TestWriteProm(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("octet.transitions.fast_path").Add(5)
	reg.Gauge("pcd.replayed_tx_fraction").Set(0.25)
	h := reg.Histogram("icd.scc.size", []uint64{2, 4})
	h.Observe(2)
	h.Observe(3)
	h.Observe(9)
	var buf bytes.Buffer
	reg.WriteProm(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE dc_octet_transitions_fast_path counter\ndc_octet_transitions_fast_path 5\n",
		"# TYPE dc_pcd_replayed_tx_fraction gauge\ndc_pcd_replayed_tx_fraction 0.25\n",
		"dc_icd_scc_size_bucket{le=\"2\"} 1\n",
		"dc_icd_scc_size_bucket{le=\"4\"} 2\n",
		"dc_icd_scc_size_bucket{le=\"+Inf\"} 3\n",
		"dc_icd_scc_size_sum 14\ndc_icd_scc_size_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
}

// TestSnapshotAccessors: Counter and Gauge lookups default to zero.
func TestSnapshotAccessors(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Inc()
	s := reg.Snapshot()
	if s.Counter("a") != 1 || s.Counter("missing") != 0 {
		t.Errorf("counter accessors: %+v", s.Counters)
	}
	if s.Gauge("missing") != 0 {
		t.Error("missing gauge should read 0")
	}
}
