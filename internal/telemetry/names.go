package telemetry

// Canonical metric names. Centralizing them keeps the checkers, the
// exporters, the tests, and DESIGN.md's metric → paper-quantity table in
// agreement. The name hierarchy is dotted: subsystem.object.detail.
const (
	// Octet barrier outcomes (paper Table 1 / Figure 4 transition kinds).
	OctetFastPath       = "octet.transitions.fast_path"
	OctetInitial        = "octet.transitions.initial"
	OctetUpgrading      = "octet.transitions.upgrading"
	OctetFence          = "octet.transitions.fence"
	OctetConflicting    = "octet.transitions.conflicting"
	OctetRespondersExpl = "octet.responders.explicit"
	OctetRespondersImpl = "octet.responders.implicit"

	// ICD: imprecise dependence graph and SCC statistics (paper §3.2, §5).
	IDGEdgesConflicting = "icd.idg.edges.conflicting"
	IDGEdgesUpgradeRdEx = "icd.idg.edges.upgrading_rdex"
	IDGEdgesUpgradeRdSh = "icd.idg.edges.upgrading_rdsh"
	IDGEdgesFence       = "icd.idg.edges.fence"
	IDGNodesRegular     = "icd.idg.nodes.regular"
	IDGNodesUnary       = "icd.idg.nodes.unary"
	ICDSCCs             = "icd.scc.count"
	ICDSCCSize          = "icd.scc.size"
	ICDSCCTxns          = "icd.scc.txns"

	// PCD: precise replay (paper §3.3).
	PCDSCCs       = "pcd.sccs_processed"
	PCDTxns       = "pcd.txns_processed"
	PCDTxnsSent   = "pcd.txns_sent_distinct"
	PCDEntries    = "pcd.entries_replayed"
	PCDEdges      = "pcd.pdg.edges"
	PCDCycles     = "pcd.cycles"
	PCDFieldMap   = "pcd.field_map.size"
	PCDTxFraction = "pcd.replayed_tx_fraction"

	// Concurrent PCD pool (paper §5.3: PCD off the critical path). Everything
	// under LiveOnlyPrefix reflects scheduling — worker count, queue timing,
	// per-worker load — rather than the analyzed execution, so
	// Snapshot.Deterministic() strips the whole namespace: a run's
	// deterministic snapshot is byte-identical across worker counts.
	PCDPoolWorkers     = "pcd.pool.workers"         // gauge: configured worker goroutines
	PCDPoolJobs        = "pcd.pool.jobs"            // counter: SCCs handed off
	PCDPoolDropped     = "pcd.pool.dropped"         // counter: queued jobs skipped by abort
	PCDPoolQuarantined = "pcd.pool.quarantined"     // counter: worker panics quarantined
	PCDPoolQueueMax    = "pcd.pool.queue_depth_max" // gauge: peak queued-job backlog

	// Velodrome baseline (paper §2, §4).
	VeloMetadataUpdates = "velo.metadata_updates"
	VeloEdges           = "velo.edges"
	VeloCycleChecks     = "velo.cycle_checks"
	VeloSyncFastSkips   = "velo.sync_fast_skips"

	// Executor ground truth.
	VMSteps         = "vm.steps"
	VMFieldAccesses = "vm.accesses.field"
	VMArrayAccesses = "vm.accesses.array"
	VMSyncAccesses  = "vm.accesses.sync"
	VMRegularTx     = "vm.tx.regular"
	VMTxEnds        = "vm.tx.ends"
	VMAbortedTx     = "vm.aborted_tx"

	// Modelled cost (cost.Report mirror).
	CostTotal = "cost.total_units"
	CostGC    = "cost.gc_units"
	CostPeak  = "cost.peak_bytes"
	CostOOM   = "cost.oom"

	// Checking service (internal/server): request lifecycle, admission
	// control, circuit breaking, and drain. Counters unless noted.
	ServerRequests        = "server.requests"           // every check request received
	ServerAdmitted        = "server.admitted"           // passed admission (queued or ran)
	ServerOK              = "server.ok"                 // served a report
	ServerShedQueueFull   = "server.shed.queue_full"    // 429: admission queue full
	ServerShedDraining    = "server.shed.draining"      // 503: received during drain
	ServerBadRequests     = "server.bad_requests"       // 4xx: corrupt trace, bad params
	ServerPanics          = "server.quarantined_panics" // 500: checker panic absorbed
	ServerTimeouts        = "server.timeouts"           // 504: request deadline exceeded
	ServerBreakerTrips    = "server.breaker.trips"      // circuits opened
	ServerBreakerRejected = "server.breaker.rejected"   // 503: key quarantined
	ServerInFlight        = "server.in_flight"          // gauge: checks running now
	ServerQueueDepth      = "server.queue_depth"        // gauge: requests waiting for a slot
	ServerPCDBudgetInUse  = "server.pcd_budget_in_use"  // gauge: PCD workers granted
	ServerDraining        = "server.draining"           // gauge: 1 while draining

	// Result store (internal/store): content-addressed check-result cache.
	// The whole namespace is live-only (see liveOnlyPrefixes): cache
	// occupancy and hit rates describe process history, not the analyzed
	// execution, and a cached report is byte-identical to a cold run by
	// contract.
	StoreHits          = "store.hits"              // results served from cache
	StoreMisses        = "store.misses"            // checks actually run (leader misses)
	StoreCoalesced     = "store.coalesced_waiters" // requests that joined an in-flight run
	StoreMemEvictions  = "store.mem.evictions"     // LRU entries dropped past the byte budget
	StoreDiskEvictions = "store.disk.evictions"    // oldest files removed past the disk budget
	StoreQuarantined   = "store.quarantined"       // corrupt entries moved aside (fail-closed misses)
	StoreMemBytes      = "store.mem.bytes"         // gauge: memory tier occupancy
	StoreDiskBytes     = "store.disk.bytes"        // gauge: disk tier occupancy

	// Supervision outcomes (internal/supervise).
	SuperviseAttempts   = "supervise.attempts"
	SuperviseRetries    = "supervise.retries"
	SupervisePanics     = "supervise.quarantined_panics"
	SuperviseTimeouts   = "supervise.timeouts"
	SuperviseFailures   = "supervise.failures"
	SuperviseDowngrades = "supervise.downgrades"
	SuperviseRecovered  = "supervise.recovered"
)

// Span (pipeline phase) names, in pipeline order.
const (
	SpanExecute   = "execute"    // whole instrumented execution or trace replay
	SpanICDSCC    = "icd.scc"    // deferred SCC detection at transaction end
	SpanICDGC     = "icd.gc"     // ICD transaction-graph collection
	SpanPCDReplay = "pcd.replay" // one PCD Process (SCC replay)
	SpanPCDBlame  = "pcd.blame"  // blame assignment for a found cycle
	SpanVeloGC    = "velo.gc"    // Velodrome transaction-graph collection

	// Pool spans (live-only; see LiveOnlyPrefix). The hand-off span is the
	// critical-path side of the split — the VM thread cloning an SCC for the
	// workers — while the per-worker spans are the off-path side.
	SpanPCDHandoff    = "pcd.pool.handoff"
	SpanPCDPoolWorker = "pcd.pool.worker." // prefix; the worker index is appended
)

// Request-scoped trace span names (internal/obs). The aggregate phase
// names above double as obs span names at the same call sites, so one
// name means one pipeline stage in both the cumulative registry and a
// per-request timeline; the names below exist only as obs spans — they
// mark request plumbing (queueing, coalescing, caching, supervision)
// that has no aggregate-phase counterpart. DESIGN.md §13 maps all of
// them to pipeline stages and paper quantities.
const (
	SpanCoreRun      = "core.run"             // one checked execution or replay, end to end
	SpanCoreCollect  = "core.collect"         // post-execution harvest (incl. PCD pool drain)
	SpanTrial        = "supervise.trial"      // one supervised trial incl. retries
	SpanTrialAttempt = "supervise.attempt"    // one attempt within a trial
	SpanQueueWait    = "server.queue_wait"    // admission queue wait for a slot
	SpanCoalesceWait = "server.coalesce_wait" // waiting on another request's in-flight check
	SpanLeadCheck    = "server.lead_check"    // leading a singleflight check
	SpanStoreGet     = "store.get"            // result-store lookup
	SpanStorePut     = "store.put"            // result-store insert
)

// LiveOnlyPrefix marks metrics that describe live pool scheduling rather
// than the analyzed execution; Snapshot.Deterministic() removes them.
const LiveOnlyPrefix = "pcd.pool."

// StoreLiveOnlyPrefix marks the result-store namespace: hit rates and tier
// occupancy depend on process history (what was cached before this run),
// never on the analyzed execution, so Snapshot.Deterministic() removes
// them too.
const StoreLiveOnlyPrefix = "store."

// liveOnlyPrefixes is every namespace Snapshot.Deterministic() strips.
var liveOnlyPrefixes = []string{LiveOnlyPrefix, StoreLiveOnlyPrefix}

// Standard bucket bounds.
var (
	// SCCSizeBuckets covers the paper's SCC size distribution: most SCCs
	// are tiny (2–4 transactions), a few are huge.
	SCCSizeBuckets = []uint64{2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 128, 256}
	// MapSizeBuckets covers PCD's per-Process last-access map sizes.
	MapSizeBuckets = []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}
)
