package telemetry

import (
	"sync/atomic"
	"time"

	"doublechecker/internal/cost"
)

// spanStat accumulates one named phase's totals.
type spanStat struct {
	count     atomic.Uint64
	costUnits atomic.Int64
	wallNanos atomic.Int64
}

// Span measures one occurrence of a named pipeline phase: wall time between
// StartSpan and End, plus the cost-model units the attached meter charged in
// between. Spans of the same name accumulate; the snapshot reports the
// per-phase count, total cost units, and total wall nanoseconds.
//
// A Span is a value; End must be called exactly once. The zero Span (and
// any span from a nil registry) is a no-op.
type Span struct {
	stat      *spanStat
	meter     *cost.Meter
	start     time.Time
	startCost cost.Units
}

// StartSpan begins one occurrence of the named phase. meter may be nil, in
// which case the span records wall time and count only.
func (r *Registry) StartSpan(name string, meter *cost.Meter) Span {
	stat := r.spanStat(name)
	if stat == nil {
		return Span{}
	}
	s := Span{stat: stat, meter: meter, start: time.Now()}
	if meter != nil {
		s.startCost = meter.Total()
	}
	return s
}

// End finishes the span, charging its wall time and cost delta to the phase.
func (s Span) End() {
	if s.stat == nil {
		return
	}
	s.stat.count.Add(1)
	s.stat.wallNanos.Add(int64(time.Since(s.start)))
	if s.meter != nil {
		s.stat.costUnits.Add(int64(s.meter.Total() - s.startCost))
	}
}
