package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
)

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra final entry
	// for the implicit overflow (+Inf) bucket.
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
}

// SpanSnapshot is one phase's accumulated span totals.
type SpanSnapshot struct {
	Count     uint64 `json:"count"`
	CostUnits int64  `json:"cost_units"`
	// WallNanos is the only nondeterministic field in a snapshot; it is
	// stripped by Deterministic().
	WallNanos int64 `json:"wall_ns,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON: every
// map marshals with sorted keys (encoding/json's map behavior), so equal
// registries produce byte-identical encodings.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      map[string]SpanSnapshot      `json:"spans,omitempty"`
}

// Snapshot copies the registry's current state. Safe on a nil registry
// (returns an empty snapshot).
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Spans:      map[string]SpanSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.histograms {
		s.Histograms[n] = HistogramSnapshot{
			Bounds: h.Bounds(),
			Counts: h.BucketCounts(),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
	}
	for n, sp := range r.spans {
		s.Spans[n] = SpanSnapshot{
			Count:     sp.count.Load(),
			CostUnits: sp.costUnits.Load(),
			WallNanos: sp.wallNanos.Load(),
		}
	}
	return s
}

// Deterministic returns a copy with every nondeterministic element removed:
// span wall times are zeroed and live-only metrics (the liveOnlyPrefixes
// namespaces — PCD pool scheduling state such as queue depth and per-worker
// load, and result-store cache occupancy) are dropped entirely. Two
// identical replays of the same trace yield byte-identical JSON encodings
// of the result, regardless of PCD worker count, interleaving, or cache
// history.
func (s *Snapshot) Deterministic() *Snapshot {
	out := &Snapshot{
		Counters:   dropLive(s.Counters),
		Gauges:     dropLive(s.Gauges),
		Histograms: dropLive(s.Histograms),
		Spans:      make(map[string]SpanSnapshot, len(s.Spans)),
	}
	for n, sp := range s.Spans {
		if isLiveOnly(n) {
			continue
		}
		sp.WallNanos = 0
		out.Spans[n] = sp
	}
	return out
}

// isLiveOnly reports whether a metric name falls in a namespace that
// Deterministic() strips.
func isLiveOnly(name string) bool {
	for _, p := range liveOnlyPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// dropLive filters the live-only namespaces out of one metric map,
// returning the input untouched (no copy) when nothing matches.
func dropLive[V any](m map[string]V) map[string]V {
	live := 0
	for n := range m {
		if isLiveOnly(n) {
			live++
		}
	}
	if live == 0 {
		return m
	}
	out := make(map[string]V, len(m)-live)
	for n, v := range m {
		if !isLiveOnly(n) {
			out[n] = v
		}
	}
	return out
}

// JSON renders the snapshot as stable, indented JSON (sorted keys, trailing
// newline).
func (s *Snapshot) JSON() []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		// A Snapshot contains only maps of plain values; encoding cannot
		// fail short of a corrupted runtime.
		panic("telemetry: snapshot encode: " + err.Error())
	}
	return buf.Bytes()
}

// Counter returns the named counter's value (0 when absent).
func (s *Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns the named gauge's value (0 when absent).
func (s *Snapshot) Gauge(name string) float64 { return s.Gauges[name] }
