// Package telemetry is the unified observability layer of this
// reproduction: a lock-cheap registry of typed counters, gauges, and
// fixed-bucket histograms, plus a phase-span API that charges wall time and
// cost-model units to named pipeline stages (execute → octet barriers → IDG
// build → SCC → PCD replay → blame).
//
// The paper's whole argument is quantitative — the Octet transition mix
// (Table 1 / Figure 4), IDG size, SCC count and size distribution (§5), and
// the fraction of transactions PCD must replay — so every checker records
// those quantities here, and the registry exports them three ways:
//
//   - a Prometheus-text / expvar / pprof HTTP endpoint (http.go), for live
//     monitoring of long checks (`dcheck -metrics-addr`);
//   - a deterministic JSON snapshot embedded in results and reports
//     (`dcheck -stats-json`, `dctrace replay -stats-json`);
//   - machine-readable benchmark dumps (`dcbench -experiment telemetry`).
//
// Determinism contract: every metric except span wall time is derived from
// the (deterministic) event stream and cost model, so two replays of the
// same trace produce byte-identical Snapshot.Deterministic() JSON. Wall
// nanoseconds are the one nondeterministic quantity; Deterministic() strips
// them.
//
// Concurrency: metric handles update via sync/atomic with no locks; the
// registry itself locks only on metric creation. A nil *Registry is valid
// everywhere and returns working (but unregistered) metric handles, so
// instrumented code needs no nil checks on the hot path.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64 metric (fractions, sizes, deltas).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution of uint64 observations. Bucket i
// counts observations v with v <= Bounds[i] (and v > Bounds[i-1]); one
// implicit overflow bucket counts everything above the last bound.
type Histogram struct {
	bounds  []uint64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sum     atomic.Uint64
}

func newHistogram(bounds []uint64) *Histogram {
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Bounds returns the bucket upper bounds (the overflow bucket is implicit).
func (h *Histogram) Bounds() []uint64 {
	out := make([]uint64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// BucketCounts returns per-bucket counts; the final entry is the overflow
// bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Registry holds one run's (or one process's) metrics. The zero value is
// not usable; construct with NewRegistry. All methods are safe for
// concurrent use, and all methods are safe on a nil receiver (they return
// working handles that are simply not exported anywhere).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	spans      map[string]*spanStat
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		spans:      make(map[string]*spanStat),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls reuse the existing buckets and
// ignore bounds).
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

func (r *Registry) spanStat(name string) *spanStat {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.spans[name]
	if !ok {
		s = &spanStat{}
		r.spans[name] = s
	}
	return s
}

// sortedNames returns m's keys sorted; used by every exporter so output
// order is stable.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
