// Package icd implements DoubleChecker's imprecise cycle detection analysis
// (paper §3.2).
//
// ICD watches every (monitored) access through the Octet barriers and turns
// Octet's state transitions into edges of the imprecise dependence graph
// (IDG), whose nodes are transactions. The handlers follow the paper's
// Figure 4 exactly:
//
//   - conflicting transition: edge currTX(respT) -> currTX(reqT); when the
//     new state is RdEx_reqT, reqT.lastRdEx := currTX(reqT);
//   - upgrading transition (RdEx_T1 -> RdSh): edge T1.lastRdEx -> currTX(T)
//     and edge gLastRdSh -> currTX(T); then gLastRdSh := currTX(T);
//   - fence transition: edge gLastRdSh -> currTX(T).
//
// These edges soundly over-approximate every cross-thread dependence (the
// paper's §3.2.5 soundness argument), at a fraction of the cost of precise
// tracking: the common case is Octet's read-only fast path.
//
// Rather than checking for cycles at every edge, ICD defers detection to
// transaction end (§3.2.3) and computes the strongly connected component of
// the just-finished transaction, exploring only finished transactions. Any
// SCC found is handed to the OnSCC callback (PCD, in single-run mode or the
// second run of multi-run mode) together with the transactions' read/write
// logs, which ICD records when logging is enabled (§3.2.4).
package icd

import (
	"doublechecker/internal/cost"
	"doublechecker/internal/graph"
	"doublechecker/internal/obs"
	"doublechecker/internal/octet"
	"doublechecker/internal/telemetry"
	"doublechecker/internal/txn"
	"doublechecker/internal/vm"
)

// Options configures an ICD checker.
type Options struct {
	// Logging records per-transaction read/write logs so a precise analysis
	// can replay SCCs (single-run mode and the second run of multi-run
	// mode). The first run of multi-run mode leaves this off — avoiding
	// logging is exactly its performance advantage (§3.1).
	Logging bool
	// Filter restricts instrumentation for the second run of multi-run
	// mode; nil instruments everything.
	Filter *txn.Filter
	// OnSCC receives each detected SCC (the potential atomicity violation).
	OnSCC func(scc []*txn.Txn)
	// GCPeriod runs transaction collection every N instrumented accesses;
	// 0 uses the default (8192).
	GCPeriod uint64
	// Engine selects the detection engine; the zero value is
	// EngineIncremental. EngineScan keeps the old full-walk behaviour for
	// ablation (the two must produce byte-identical reports; the crosscheck
	// harness enforces it).
	Engine Engine
	// InstrumentArrays includes array element accesses, conflating all
	// elements of an array into object-level state (§5.4). The paper
	// disables cycle detection in that experiment because conflation makes
	// it imprecise; callers combine this with DisableSCC.
	InstrumentArrays bool
	// DisableSCC turns off SCC detection at transaction end (§5.4 array
	// experiment).
	DisableSCC bool
	// NoElision disables read/write-log duplicate elision (ablation).
	NoElision bool
	// NoUnaryMerge makes every non-transactional access its own unary
	// transaction (ablation).
	NoUnaryMerge bool
	// EagerDetect additionally runs a cycle check at every cross-thread
	// edge occurrence, the strategy the paper rejects in §3.2.3 in favour
	// of detection at transaction end. Reporting to PCD still happens on
	// the deferred path (eager hits see incomplete transactions); the knob
	// exists to measure the cost the paper's design avoids.
	EagerDetect bool
	// Telemetry, when non-nil, receives live IDG/SCC metrics and the
	// icd.scc / icd.gc phase spans; the registry is also attached to the
	// underlying Octet engine.
	Telemetry *telemetry.Registry
	// TraceSpan is the request-scoped parent span for this checker's obs
	// spans (SCC detections, GC passes). The zero Span — the default —
	// disables them at no cost; the registry above keeps aggregating either
	// way.
	TraceSpan obs.Span
}

// Stats counts ICD activity; Table 3's columns come from here.
type Stats struct {
	EagerChecks        uint64 // cycle checks under EagerDetect (ablation)
	EagerNodesExplored uint64
	RegularTx          uint64 // instrumented regular transactions
	RegularAccesses    uint64 // instrumented accesses inside regular transactions
	UnaryAccesses      uint64 // instrumented non-transactional accesses
	IDGEdges           uint64 // distinct cross-thread IDG edges
	SCCs               uint64 // SCCs detected (potential violations)
	SCCTxns            uint64 // total transactions across detected SCCs
	UnaryInSCC         bool   // any unary transaction in any SCC (multi-run boolean)
	SCCDetections      uint64 // SCC computations attempted
	SCCNodesExplored   uint64
	FinishChecks       uint64 // transaction finishes considered for detection
	SkipNoEligibleOut  uint64 // skipped: no outgoing edge to a finished transaction
	SkipNoEligibleIn   uint64 // skipped: no incoming edge from a finished transaction
	DetectionUnits     uint64 // modelled cost units spent on per-finish cycle detection
	// MaintenanceUnits is the modelled cost of incremental-engine graph
	// upkeep (order maintenance, component merges, adjacency compaction) —
	// the per-edge work the amortized engine does instead of per-finish
	// scans. Zero under the scan engine, whose upkeep is free and whose
	// whole cost lands in DetectionUnits.
	MaintenanceUnits uint64
	// Engine carries the incremental engine's internal work counters
	// (zero-valued under the scan engine).
	Engine graph.IncSCCStats
}

// idgEdgeKind labels which Figure 4 handler produced an IDG edge, for the
// per-dependence-type telemetry breakdown.
type idgEdgeKind uint8

const (
	edgeConflicting idgEdgeKind = iota
	edgeUpgradeRdEx
	edgeUpgradeRdSh
	edgeFence
	numEdgeKinds
)

// tel holds pre-resolved telemetry handles so instrumented paths pay a nil
// check plus an atomic op, never a registry map lookup.
type tel struct {
	edges        [numEdgeKinds]*telemetry.Counter
	nodesRegular *telemetry.Counter
	nodesUnary   *telemetry.Counter
	sccs         *telemetry.Counter
	sccTxns      *telemetry.Counter
	sccSize      *telemetry.Histogram
}

func newTel(reg *telemetry.Registry) *tel {
	if reg == nil {
		return nil
	}
	t := &tel{
		nodesRegular: reg.Counter(telemetry.IDGNodesRegular),
		nodesUnary:   reg.Counter(telemetry.IDGNodesUnary),
		sccs:         reg.Counter(telemetry.ICDSCCs),
		sccTxns:      reg.Counter(telemetry.ICDSCCTxns),
		sccSize:      reg.Histogram(telemetry.ICDSCCSize, telemetry.SCCSizeBuckets),
	}
	t.edges[edgeConflicting] = reg.Counter(telemetry.IDGEdgesConflicting)
	t.edges[edgeUpgradeRdEx] = reg.Counter(telemetry.IDGEdgesUpgradeRdEx)
	t.edges[edgeUpgradeRdSh] = reg.Counter(telemetry.IDGEdgesUpgradeRdSh)
	t.edges[edgeFence] = reg.Counter(telemetry.IDGEdgesFence)
	return t
}

// Checker is an ICD instance; it implements vm.Instrumentation.
type Checker struct {
	vm.NopInst
	prog  *vm.Program
	meter *cost.Meter
	opts  Options

	mgr *txn.Manager
	oct *octet.Engine

	lastRdEx  map[vm.ThreadID]*txn.Txn
	gLastRdSh *txn.Txn

	skipping map[vm.ThreadID]bool
	exec     vm.ExecView

	// sccMethods accumulates the static transaction information multi-run
	// mode's first run passes to the second run: the starting methods of
	// regular transactions involved in any SCC (§3.1), with how many SCCs
	// each participated in (the paper's future-work suggestion of
	// communicating imprecise cycles more precisely; core.UnionFilter can
	// threshold on the counts).
	sccMethods map[vm.MethodID]int

	// inc is the incremental SCC condensation (nil under EngineScan or
	// DisableSCC). incNodes/incEdges snapshot its work counters so each
	// interaction charges only the delta.
	inc      *graph.IncSCC[*txn.Txn]
	incNodes uint64
	incEdges uint64

	// aggs holds per-component member aggregates keyed by the engine's
	// representative transaction, maintained on merges so detection can
	// report a component in O(distinct methods) instead of O(members) when
	// nothing downstream needs the member list (OnSCC nil). Entries die with
	// their component: the sweep hook deletes the representative's entry
	// before the manager recycles the transaction node.
	aggs     map[*txn.Txn]*compAgg
	aggsFree []*compAgg

	compBuf  []*txn.Txn // component extraction scratch (only when OnSCC is nil)
	rootsBuf []*txn.Txn // GC root-set scratch

	stats   Stats
	sinceGC uint64
	tel     *tel
}

// NewChecker returns an ICD checker. meter may be nil.
func NewChecker(prog *vm.Program, meter *cost.Meter, opts Options) *Checker {
	if opts.GCPeriod == 0 {
		opts.GCPeriod = 8192
	}
	c := &Checker{
		prog:       prog,
		meter:      meter,
		opts:       opts,
		lastRdEx:   make(map[vm.ThreadID]*txn.Txn),
		skipping:   make(map[vm.ThreadID]bool),
		sccMethods: make(map[vm.MethodID]int),
		tel:        newTel(opts.Telemetry),
	}
	c.mgr = txn.NewManager(opts.Logging, nil, meter)
	c.configureManager()
	c.mgr.OnFinish(c.txnFinished)
	return c
}

func (c *Checker) configureManager() {
	if c.opts.NoElision {
		c.mgr.DisableElision()
	}
	if c.opts.NoUnaryMerge {
		c.mgr.DisableUnaryMerging()
	}
	if !c.opts.Logging && c.opts.OnSCC == nil {
		// Nothing retains transactions or edges past a Collect in this
		// configuration (no logs for PCD, no SCC handoff), so the manager can
		// recycle swept nodes — the multi-run first run's hot path then stops
		// allocating in the steady state.
		c.mgr.EnableRecycling()
	}
	if c.opts.Engine == EngineIncremental && !c.opts.DisableSCC {
		c.inc = graph.NewIncSCC[*txn.Txn](func(t *txn.Txn) bool {
			return t.Finished && !t.Dead()
		})
		c.incNodes, c.incEdges = 0, 0
		c.mgr.OnIntraEdge(func(src, dst *txn.Txn) {
			c.inc.AddEdge(src, dst)
			c.chargeEngine()
		})
		if c.opts.OnSCC == nil {
			c.aggs = make(map[*txn.Txn]*compAgg)
			c.inc.SetOnMerge(c.mergeAggs)
		}
		c.mgr.OnSweep(func(t *txn.Txn) {
			c.inc.Release(t)
			if agg, ok := c.aggs[t]; ok {
				agg.reset()
				c.aggsFree = append(c.aggsFree, agg)
				delete(c.aggs, t)
			}
		})
	}
}

// compAgg is one cyclic component's member aggregate: how many members are
// unary, and how many carry each starting method. Detection folds these
// counts into the checker's stats exactly as a member walk would, without
// the walk.
type compAgg struct {
	unary   int
	methods map[vm.MethodID]int
}

func (a *compAgg) reset() {
	a.unary = 0
	clear(a.methods)
}

// addMember folds one transaction into the aggregate.
func (a *compAgg) addMember(t *txn.Txn) {
	if t.Unary {
		a.unary++
	} else if t.Method != vm.NoMethod {
		a.methods[t.Method]++
	}
}

// aggFor returns the aggregate keyed by rep, creating (or recycling) one
// seeded with rep itself when the component was a singleton until now.
func (c *Checker) aggFor(rep *txn.Txn) *compAgg {
	agg, ok := c.aggs[rep]
	if !ok {
		if n := len(c.aggsFree); n > 0 {
			agg = c.aggsFree[n-1]
			c.aggsFree = c.aggsFree[:n-1]
		} else {
			agg = &compAgg{methods: make(map[vm.MethodID]int)}
		}
		agg.addMember(rep)
		c.aggs[rep] = agg
	}
	return agg
}

// mergeAggs is the engine's merge hook: the loser component's aggregate is
// folded into the winner's.
func (c *Checker) mergeAggs(winner, loser *txn.Txn) {
	wa := c.aggFor(winner)
	if la, ok := c.aggs[loser]; ok {
		wa.unary += la.unary
		for m, n := range la.methods {
			wa.methods[m] += n
		}
		la.reset()
		c.aggsFree = append(c.aggsFree, la)
		delete(c.aggs, loser)
		return
	}
	wa.addMember(loser)
}

// chargeEngine charges the incremental engine's work since the last call to
// the cost meter, under the same per-node/per-edge prices the scan engine
// pays. The charge lands in MaintenanceUnits, not DetectionUnits: the
// engine converts the scan's per-finish detection cost into per-edge graph
// upkeep, and the two buckets keep that trade visible (icdperf reports
// detection, maintenance, and their sum for both engines).
func (c *Checker) chargeEngine() {
	st := c.inc.Stats()
	dn, de := st.NodesVisited-c.incNodes, st.EdgesScanned-c.incEdges
	if dn == 0 && de == 0 {
		return
	}
	c.incNodes, c.incEdges = st.NodesVisited, st.EdgesScanned
	if c.meter != nil {
		m := c.meter.Model()
		u := m.SCCPerNode*cost.Units(dn) + m.SCCPerEdge*cost.Units(de)
		c.meter.Charge(u)
		c.stats.MaintenanceUnits += uint64(u)
	}
}

// Stats returns ICD counters.
func (c *Checker) Stats() Stats {
	st := c.stats
	if c.inc != nil {
		st.Engine = c.inc.Stats()
	}
	return st
}

// TxnStats returns the transaction manager's counters.
func (c *Checker) TxnStats() txn.Stats { return c.mgr.Stats() }

// OctetStats returns the underlying Octet engine's counters (nil-safe only
// after ProgramStart).
func (c *Checker) OctetStats() octet.Stats { return c.oct.Stats() }

// StaticInfo returns the first run's output for the second run: how many
// SCCs each method's regular transactions appeared in, and whether any
// unary transaction appeared in any SCC.
func (c *Checker) StaticInfo() (map[vm.MethodID]int, bool) {
	out := make(map[vm.MethodID]int, len(c.sccMethods))
	for m, n := range c.sccMethods {
		out[m] = n
	}
	return out, c.stats.UnaryInSCC
}

// ProgramStart implements vm.Instrumentation.
func (c *Checker) ProgramStart(e vm.ExecView) {
	c.exec = e
	c.mgr = txn.NewManager(c.opts.Logging, e.Now, c.meter)
	c.configureManager()
	c.mgr.OnFinish(c.txnFinished)
	c.oct = octet.New(c, e.Blocked, c.meter)
	c.oct.SetTelemetry(c.opts.Telemetry)
}

// ThreadStart implements vm.Instrumentation.
func (c *Checker) ThreadStart(t vm.ThreadID) { c.oct.ThreadStart(t) }

// ThreadExit implements vm.Instrumentation.
func (c *Checker) ThreadExit(t vm.ThreadID) {
	c.oct.ThreadExit(t)
	c.mgr.ThreadExit(t)
}

// TxBegin implements vm.Instrumentation.
func (c *Checker) TxBegin(t vm.ThreadID, m vm.MethodID) {
	if !c.opts.Filter.TxSelected(m) {
		c.skipping[t] = true
		return
	}
	c.stats.RegularTx++
	c.mgr.BeginRegular(t, m)
}

// TxEnd implements vm.Instrumentation.
func (c *Checker) TxEnd(t vm.ThreadID, m vm.MethodID) {
	if c.skipping[t] {
		delete(c.skipping, t)
		return
	}
	c.mgr.EndRegular(t)
}

// Access implements vm.Instrumentation: the Octet barrier plus ICD's
// logging instrumentation.
func (c *Checker) Access(a vm.Access) {
	if c.skipping[a.Thread] {
		return
	}
	inTx := c.exec != nil && c.exec.InTx(a.Thread)
	if !inTx && !c.opts.Filter.UnarySelected() {
		return
	}
	if a.Class == vm.ClassArray {
		if !c.opts.InstrumentArrays {
			// The paper's default configuration instruments only field
			// accesses; arrays are evaluated separately (§5.4).
			return
		}
		// Conflate array elements: object-level metadata (§5.4).
		a.Field = 0
	}
	if inTx {
		c.stats.RegularAccesses++
	} else {
		c.stats.UnaryAccesses++
	}

	// The Octet barrier runs first (its transitions fire the Figure 4
	// hooks), then the access is recorded in the current transaction's
	// read/write log, in barrier order, exactly as the paper inserts ICD's
	// logging instrumentation "before each program access but after
	// Octet's instrumentation" (§3.2.4).
	if a.Write {
		c.oct.BeforeWrite(a.Thread, a.Obj)
	} else {
		c.oct.BeforeRead(a.Thread, a.Obj)
	}
	c.mgr.Record(a.Thread, a.Obj, a.Field, a.Write, a.Class == vm.ClassSync, a.Seq)

	c.sinceGC++
	if c.sinceGC >= c.opts.GCPeriod {
		c.sinceGC = 0
		c.collect()
	}
}

// HandleConflicting implements octet.Hooks (Figure 4,
// handleConflictingTransition).
func (c *Checker) HandleConflicting(resp, req vm.ThreadID, old, new octet.State, explicit bool) {
	// currTX(respT): the responder's latest transaction — never a fresh
	// one; the responder is at (or past) a safe point, not making accesses.
	src := c.mgr.EdgeSource(resp)
	var dst *txn.Txn
	if src != nil {
		// An incoming edge cuts a merged unary transaction first.
		dst = c.mgr.EdgeSink(req)
		c.addIDGEdge(src, dst, edgeConflicting)
	} else {
		dst = c.mgr.Current(req)
	}
	if new.Kind == octet.RdEx && new.Owner == req {
		c.lastRdEx[req] = dst
	}
}

// HandleUpgrading implements octet.Hooks (Figure 4,
// handleUpgradingTransition).
func (c *Checker) HandleUpgrading(t vm.ThreadID, rdExOwner vm.ThreadID, old, new octet.State) {
	var cur *txn.Txn
	if c.lastRdEx[rdExOwner] != nil || c.gLastRdSh != nil {
		cur = c.mgr.EdgeSink(t) // incoming edges cut merged unaries
	} else {
		cur = c.mgr.Current(t)
	}
	if last := c.lastRdEx[rdExOwner]; last != nil {
		c.addIDGEdge(last, cur, edgeUpgradeRdEx)
	}
	if c.gLastRdSh != nil {
		c.addIDGEdge(c.gLastRdSh, cur, edgeUpgradeRdSh)
	}
	c.gLastRdSh = cur
}

// HandleFence implements octet.Hooks (Figure 4, handleFenceTransition).
func (c *Checker) HandleFence(t vm.ThreadID, counter uint64) {
	if c.gLastRdSh != nil {
		c.addIDGEdge(c.gLastRdSh, c.mgr.EdgeSink(t), edgeFence)
	}
}

func (c *Checker) addIDGEdge(src, dst *txn.Txn, kind idgEdgeKind) {
	if src == nil || dst == nil || src == dst {
		return
	}
	before := c.mgr.Stats().CrossEdges
	c.mgr.AddCrossEdge(src, dst)
	if c.mgr.Stats().CrossEdges != before {
		c.stats.IDGEdges++
		if c.tel != nil {
			c.tel.edges[kind].Inc()
		}
		if c.meter != nil {
			c.meter.Charge(c.meter.Model().IDGEdge)
		}
		if c.inc != nil {
			c.inc.AddEdge(src, dst)
			c.chargeEngine()
		}
	}
	if c.opts.EagerDetect {
		// The rejected per-edge strategy: look for a cycle through the new
		// edge right now. Charged like SCC work.
		c.stats.EagerChecks++
		model := cost.Model{}
		if c.meter != nil {
			model = c.meter.Model()
		}
		succ := func(t *txn.Txn) []*txn.Txn {
			c.stats.EagerNodesExplored++
			if c.meter != nil {
				c.meter.Charge(model.SCCPerNode + model.SCCPerEdge*cost.Units(len(t.Out)))
			}
			return t.Succs()
		}
		graph.FindPath(dst, src, succ)
	}
}

// txnFinished runs deferred cycle detection (§3.2.3): compute the maximal
// SCC containing the finished transaction, over finished transactions only.
func (c *Checker) txnFinished(tx *txn.Txn) {
	if c.tel != nil {
		if tx.Unary {
			c.tel.nodesUnary.Inc()
		} else {
			c.tel.nodesRegular.Inc()
		}
	}
	if c.opts.DisableSCC {
		return
	}
	c.stats.FinishChecks++
	if c.inc != nil {
		// The engine must observe every finish even when detection below is
		// skipped: an eligibility change alone can complete a cycle (all of
		// the cycle's edges may predate this finish).
		c.inc.Activate(tx)
		c.chargeEngine()
	}
	// Quick reject (outgoing): a cycle through tx needs an outgoing edge to
	// an already-finished transaction (all cycle members are finished when
	// the last one finishes, and detection runs at every finish).
	anyFinished := false
	for _, e := range tx.Out {
		if e.Dst.Finished && !e.Dst.Dead() {
			anyFinished = true
			break
		}
	}
	if !anyFinished {
		c.stats.SkipNoEligibleOut++
		return
	}
	// Quick reject (incoming): the cycle equally needs an incoming edge whose
	// source has finished. The manager maintains that flag monotonically — a
	// finished source never unfinishes, and a swept one only leaves the flag
	// conservatively set — so the test is a single load.
	if !tx.FinishedInEdge() {
		c.stats.SkipNoEligibleIn++
		return
	}
	c.stats.SCCDetections++
	span := c.opts.Telemetry.StartSpan(telemetry.SpanICDSCC, c.meter)
	defer span.End()
	osp := c.opts.TraceSpan.Child(telemetry.SpanICDSCC)
	var ocost0 cost.Units
	if osp.Live() && c.meter != nil {
		ocost0 = c.meter.Total()
	}
	defer c.endPhaseSpan(osp, ocost0)
	model := cost.Model{}
	if c.meter != nil {
		model = c.meter.Model()
	}
	var comp []*txn.Txn
	var size int
	switch {
	case c.inc != nil && c.opts.OnSCC == nil:
		// Aggregate path: nothing downstream needs the member list, so the
		// component is reported from its maintained aggregate — an O(1)
		// lookup plus O(distinct methods) of counter folding, where the scan
		// walks every member at every finish. This is the amortized engine's
		// detection-time payoff.
		rep, sz, cyclic, ok := c.inc.Component(tx)
		if !ok || !cyclic {
			return
		}
		size = sz
		touched := 1 // the component lookup itself
		if agg, found := c.aggs[rep]; found {
			if agg.unary > 0 {
				c.stats.UnaryInSCC = true
			}
			for m, n := range agg.methods {
				c.sccMethods[m] += n
				touched++
			}
		} else if tx.Unary {
			// A singleton self-loop component is exactly tx.
			c.stats.UnaryInSCC = true
		} else if tx.Method != vm.NoMethod {
			c.sccMethods[tx.Method]++
		}
		c.stats.SCCNodesExplored += uint64(touched)
		if c.meter != nil {
			u := model.SCCPerNode * cost.Units(touched)
			c.meter.Charge(u)
			c.stats.DetectionUnits += uint64(u)
		}
	case c.inc != nil:
		// The OnSCC handoff needs the member slice; extraction pays per
		// member, mirroring the scan's node visits. The slice is retained
		// downstream, so no backing-array reuse here.
		comp = c.inc.CyclicComponent(tx, nil)
		if comp == nil {
			return
		}
		size = len(comp)
		c.stats.SCCNodesExplored += uint64(size)
		if c.meter != nil {
			u := model.SCCPerNode * cost.Units(size)
			c.meter.Charge(u)
			c.stats.DetectionUnits += uint64(u)
		}
	default:
		succ := func(t *txn.Txn) []*txn.Txn {
			c.stats.SCCNodesExplored++
			if c.meter != nil {
				u := model.SCCPerNode + model.SCCPerEdge*cost.Units(len(t.Out))
				c.meter.Charge(u)
				c.stats.DetectionUnits += uint64(u)
			}
			return t.Succs()
		}
		include := func(t *txn.Txn) bool { return t.Finished && !t.Dead() }
		comp = graph.SCCFrom(tx, succ, include)
		if comp == nil {
			return
		}
		size = len(comp)
	}
	c.stats.SCCs++
	c.stats.SCCTxns += uint64(size)
	osp.SetInt("scc_txns", int64(size))
	if c.tel != nil {
		c.tel.sccs.Inc()
		c.tel.sccTxns.Add(uint64(size))
		c.tel.sccSize.Observe(uint64(size))
	}
	for _, member := range comp {
		if member.Unary {
			c.stats.UnaryInSCC = true
		} else if member.Method != vm.NoMethod {
			c.sccMethods[member.Method]++
		}
	}
	if c.opts.OnSCC != nil {
		c.opts.OnSCC(comp)
	}
}

// collect garbage-collects transactions unreachable from the ICD roots:
// thread currents (implicit), lastRdEx, and gLastRdSh.
func (c *Checker) collect() {
	span := c.opts.Telemetry.StartSpan(telemetry.SpanICDGC, c.meter)
	defer span.End()
	osp := c.opts.TraceSpan.Child(telemetry.SpanICDGC)
	var ocost0 cost.Units
	if osp.Live() && c.meter != nil {
		ocost0 = c.meter.Total()
	}
	defer c.endPhaseSpan(osp, ocost0)
	roots := c.rootsBuf[:0]
	for _, tx := range c.lastRdEx {
		roots = append(roots, tx)
	}
	if c.gLastRdSh != nil {
		roots = append(roots, c.gLastRdSh)
	}
	c.mgr.Collect(roots)
	c.rootsBuf = roots[:0]
}

// endPhaseSpan closes a request-scoped phase span, charging the meter's
// cost delta since cost0 as an attribute. A non-live span costs one branch
// (the deferred call is open-coded, so the disabled path stays
// allocation-free on the per-transaction detection path).
func (c *Checker) endPhaseSpan(osp obs.Span, cost0 cost.Units) {
	if !osp.Live() {
		return
	}
	if c.meter != nil {
		osp.SetInt("cost_units", int64(c.meter.Total()-cost0))
	}
	osp.End()
}

// Manager exposes the transaction manager (the PCD-only configuration needs
// every transaction's log at program end).
func (c *Checker) Manager() *txn.Manager { return c.mgr }
