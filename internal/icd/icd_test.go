package icd

import (
	"testing"

	"doublechecker/internal/cost"
	"doublechecker/internal/txn"
	"doublechecker/internal/vm"
)

// racyIncrement: two threads run the atomic method inc = {rd x; wr x} with
// no lock; the script interleaves them non-serializably.
func racyIncrement() (*vm.Program, []vm.ThreadID, func(vm.MethodID) bool) {
	b := vm.NewBuilder("racy-inc")
	o := b.Object()
	inc := b.Method("inc")
	inc.Read(o, 0).Write(o, 0)
	m0 := b.Method("main0")
	m0.Call(inc)
	m1 := b.Method("main1")
	m1.Call(inc)
	b.Thread(m0)
	b.Thread(m1)
	prog := b.MustBuild()
	incID := prog.MethodByName("inc").ID
	return prog, []vm.ThreadID{0, 1, 0, 1, 1, 0}, func(m vm.MethodID) bool { return m == incID }
}

func runICD(t *testing.T, prog *vm.Program, sched vm.Scheduler, atomic func(vm.MethodID) bool, opts Options) *Checker {
	t.Helper()
	c := NewChecker(prog, nil, opts)
	if _, err := vm.NewExec(prog, vm.Config{Sched: sched, Inst: c, Atomic: atomic}).Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

func TestDetectsImpreciseSCCForRealCycle(t *testing.T) {
	prog, script, atomic := racyIncrement()
	var sccs [][]*txn.Txn
	c := runICD(t, prog, vm.NewScripted(script, true), atomic,
		Options{Logging: true, OnSCC: func(s []*txn.Txn) { sccs = append(sccs, s) }})
	if c.Stats().SCCs == 0 {
		t.Fatal("ICD must detect an SCC for the racy interleaving")
	}
	if len(sccs) == 0 {
		t.Fatal("OnSCC not invoked")
	}
	// The SCC must contain both inc transactions.
	regulars := 0
	for _, tx := range sccs[0] {
		if !tx.Unary {
			regulars++
		}
	}
	if regulars < 2 {
		t.Errorf("SCC should contain both regular transactions: %v", sccs[0])
	}
}

func TestSerialExecutionNoSCC(t *testing.T) {
	prog, _, atomic := racyIncrement()
	c := runICD(t, prog, vm.NewScripted([]vm.ThreadID{0, 0, 0, 1, 1, 1}, false), atomic, Options{})
	if c.Stats().SCCs != 0 {
		t.Errorf("serial execution produced %d SCCs", c.Stats().SCCs)
	}
}

// TestObjectGranularityFalsePositive reproduces §3.2.3: object-level
// tracking creates an IDG cycle even though the precise fields differ. ICD
// must report an SCC (PCD would later reject it).
func TestObjectGranularityFalsePositive(t *testing.T) {
	b := vm.NewBuilder("objgran")
	o := b.Object()
	p := b.Object()
	ma := b.Method("ma") // wr o.f; rd p.q
	ma.Write(o, 0).Read(p, 0)
	mb := b.Method("mb") // wr p.q; rd o.g (different field of o)
	mb.Write(p, 0).Read(o, 1)
	m0 := b.Method("main0")
	m0.Call(ma)
	m1 := b.Method("main1")
	m1.Call(mb)
	b.Thread(m0)
	b.Thread(m1)
	prog := b.MustBuild()
	atomic := func(m vm.MethodID) bool {
		n := prog.Methods[m].Name
		return n == "ma" || n == "mb"
	}
	// t0: call, wr o; t1: call, wr p; t0: rd p (conflict: edge B->A);
	// t1: rd o (conflict: edge from t0's side back into B).
	script := []vm.ThreadID{0, 1, 0, 1, 0, 1}
	c := runICD(t, prog, vm.NewScripted(script, false), atomic, Options{})
	if c.Stats().SCCs == 0 {
		t.Error("object-granularity imprecision should produce an IDG SCC")
	}
}

func TestStaticInfoCollectsMethods(t *testing.T) {
	prog, script, atomic := racyIncrement()
	c := runICD(t, prog, vm.NewScripted(script, true), atomic, Options{})
	methods, unary := c.StaticInfo()
	incID := prog.MethodByName("inc").ID
	if methods[incID] == 0 {
		t.Errorf("inc should be in static SCC info: %v", methods)
	}
	_ = unary // unary participation depends on interleaving; just exercise it
}

func TestUnaryInSCCFlag(t *testing.T) {
	// t1's non-transactional rd/wr lands inside t0's atomic rd..wr window.
	b := vm.NewBuilder("unary")
	o := b.Object()
	atomicRW := b.Method("atomicRW")
	atomicRW.Read(o, 0).Write(o, 0)
	m0 := b.Method("main0")
	m0.Call(atomicRW)
	m1 := b.Method("main1")
	m1.Read(o, 0).Write(o, 0)
	b.Thread(m0)
	b.Thread(m1)
	prog := b.MustBuild()
	atomic := func(m vm.MethodID) bool { return prog.Methods[m].Name == "atomicRW" }
	script := []vm.ThreadID{0, 0, 1, 1, 0}
	c := runICD(t, prog, vm.NewScripted(script, true), atomic, Options{})
	if c.Stats().SCCs == 0 {
		t.Fatal("expected an SCC")
	}
	if !c.Stats().UnaryInSCC {
		t.Error("SCC involves a unary transaction; flag must be set")
	}
}

func TestLoggingRecordsAccesses(t *testing.T) {
	prog, script, atomic := racyIncrement()
	var scc []*txn.Txn
	runICD(t, prog, vm.NewScripted(script, true), atomic,
		Options{Logging: true, OnSCC: func(s []*txn.Txn) { scc = s }})
	if scc == nil {
		t.Fatal("no SCC")
	}
	entries := 0
	for _, tx := range scc {
		entries += len(tx.Log)
	}
	if entries < 4 { // at least rd+wr per inc transaction
		t.Errorf("SCC logs have %d entries, want >= 4", entries)
	}
}

func TestNoLoggingKeepsLogsEmpty(t *testing.T) {
	prog, script, atomic := racyIncrement()
	var scc []*txn.Txn
	c := runICD(t, prog, vm.NewScripted(script, true), atomic,
		Options{OnSCC: func(s []*txn.Txn) { scc = s }})
	if c.TxnStats().LogEntries != 0 {
		t.Errorf("first-run mode must not log, recorded %d", c.TxnStats().LogEntries)
	}
	for _, tx := range scc {
		if len(tx.Log) != 0 {
			t.Error("transaction log should be empty without logging")
		}
	}
}

func TestFilterSkipsEverything(t *testing.T) {
	prog, script, atomic := racyIncrement()
	c := runICD(t, prog, vm.NewScripted(script, true), atomic,
		Options{Filter: &txn.Filter{}})
	st := c.Stats()
	if st.RegularAccesses != 0 || st.UnaryAccesses != 0 || st.SCCs != 0 {
		t.Errorf("empty filter should instrument nothing: %+v", st)
	}
}

func TestFilterSelectsOnlyNamedMethod(t *testing.T) {
	prog, script, atomic := racyIncrement()
	incID := prog.MethodByName("inc").ID
	c := runICD(t, prog, vm.NewScripted(script, true), atomic,
		Options{Filter: &txn.Filter{Methods: map[vm.MethodID]bool{incID: true}}})
	st := c.Stats()
	if st.RegularTx != 2 {
		t.Errorf("instrumented regular tx = %d, want 2", st.RegularTx)
	}
	if st.UnaryAccesses != 0 {
		t.Errorf("unary accesses instrumented = %d, want 0 (unary not selected)", st.UnaryAccesses)
	}
	if st.SCCs == 0 {
		t.Error("violation within selected method must still surface")
	}
}

func TestGCDoesNotBreakSCCDetection(t *testing.T) {
	prog, script, atomic := racyIncrement()
	c := runICD(t, prog, vm.NewScripted(script, true), atomic, Options{GCPeriod: 1})
	if c.Stats().SCCs == 0 {
		t.Error("SCC must survive aggressive collection")
	}
}

func TestIDGEdgesFewRelativeToAccesses(t *testing.T) {
	// Paper Table 3 discussion: compared to how many accesses execute,
	// there are few ICD edges. Mostly-local work should stay on the fast
	// path.
	b := vm.NewBuilder("local")
	objs := b.Objects(8)
	work := b.Method("work")
	for i := 0; i < 50; i++ {
		work.Write(objs[0], 0).Read(objs[0], 0)
	}
	work2 := b.Method("work2")
	for i := 0; i < 50; i++ {
		work2.Write(objs[1], 0).Read(objs[1], 0)
	}
	b.Thread(work)
	b.Thread(work2)
	prog := b.MustBuild()
	c := runICD(t, prog, vm.NewRandom(3), nil, Options{})
	if c.Stats().IDGEdges > 5 {
		t.Errorf("thread-local work created %d IDG edges", c.Stats().IDGEdges)
	}
	if c.OctetStats().FastPath < 150 {
		t.Errorf("fast path hits = %d, want most accesses", c.OctetStats().FastPath)
	}
}

func TestCostMuchCheaperThanPerAccessSync(t *testing.T) {
	// ICD without logging vs a hypothetical per-access sync cost: the whole
	// point of the paper. Verify the meter charges mostly fast paths.
	b := vm.NewBuilder("cheap")
	o := b.Object()
	work := b.Method("work")
	for i := 0; i < 100; i++ {
		work.Read(o, 0)
	}
	b.Thread(work)
	prog := b.MustBuild()
	meter := cost.NewMeter(cost.Default())
	c := NewChecker(prog, meter, Options{})
	if _, err := vm.NewExec(prog, vm.Config{Inst: c, Meter: meter}).Run(); err != nil {
		t.Fatal(err)
	}
	base := cost.Default().BaseOp * 101 // ops incl call overhead approx
	if meter.Total() > base*2 {
		t.Errorf("ICD overhead too high: total %d vs base ~%d", meter.Total(), base)
	}
}

func TestSCCDetectionDeferredToTxnEnd(t *testing.T) {
	// The SCC must be reported only once both transactions finished; the
	// trigger transaction is the one that ends last.
	prog, script, atomic := racyIncrement()
	var sccSizes []int
	runICD(t, prog, vm.NewScripted(script, true), atomic,
		Options{OnSCC: func(s []*txn.Txn) { sccSizes = append(sccSizes, len(s)) }})
	if len(sccSizes) != 1 {
		t.Fatalf("SCC reported %d times, want exactly once", len(sccSizes))
	}
}

func TestArraysIgnoredByBaseChecker(t *testing.T) {
	b := vm.NewBuilder("arr")
	arr := b.Array(4)
	m0 := b.Method("m0")
	m0.ArrayWrite(arr, 0)
	m1 := b.Method("m1")
	m1.ArrayRead(arr, 0)
	b.Thread(m0)
	b.Thread(m1)
	prog := b.MustBuild()
	c := runICD(t, prog, vm.NewScripted([]vm.ThreadID{0, 1}, false), nil, Options{})
	// 4 sync accesses (thread handles), 0 array accesses.
	if got := c.Stats().RegularAccesses + c.Stats().UnaryAccesses; got != 4 {
		t.Errorf("instrumented = %d, want 4", got)
	}
}

// TestFenceEdges drives a RdSh fence scenario end to end through ICD: a
// writer makes an object exclusive, two readers upgrade it to RdSh, and a
// stale third reader's fence transition must add a gLastRdSh edge
// (paper Figure 4, handleFenceTransition).
func TestFenceEdges(t *testing.T) {
	b := vm.NewBuilder("fence")
	o := b.Object()
	w := b.Method("w")
	w.Write(o, 0)
	r1 := b.Method("r1")
	r1.Read(o, 0)
	r2 := b.Method("r2")
	r2.Read(o, 0)
	r3 := b.Method("r3")
	r3.Read(o, 0)
	b.Thread(w)
	b.Thread(r1)
	b.Thread(r2)
	b.Thread(r3)
	prog := b.MustBuild()
	// w writes (claim), r1 reads (conflict -> RdEx), r2 reads (upgrade ->
	// RdSh, gLastRdSh set), r3 reads (fence -> gLastRdSh edge).
	script := []vm.ThreadID{0, 1, 2, 3}
	c := runICD(t, prog, vm.NewScripted(script, false), nil, Options{})
	if c.OctetStats().Fences == 0 {
		t.Fatal("expected a fence transition")
	}
	if c.Stats().IDGEdges < 3 {
		t.Errorf("expected conflict + upgrade + fence edges, got %d", c.Stats().IDGEdges)
	}
}

// TestEagerDetectFindsCyclesEarly exercises the EagerDetect ablation path
// including its cost charging.
func TestEagerDetectFindsCyclesEarly(t *testing.T) {
	prog, script, atomic := racyIncrement()
	meter := cost.NewMeter(cost.Default())
	c := NewChecker(prog, meter, Options{EagerDetect: true})
	if _, err := vm.NewExec(prog, vm.Config{
		Sched: vm.NewScripted(script, true), Inst: c, Atomic: atomic, Meter: meter,
	}).Run(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.EagerChecks == 0 || st.EagerNodesExplored == 0 {
		t.Errorf("eager stats empty: %+v", st)
	}
	if st.SCCs == 0 {
		t.Error("deferred detection must still run alongside eager checks")
	}
}

// TestManagerAccessorAndKnobs exercises the ablation knobs through ICD.
func TestManagerAccessorAndKnobs(t *testing.T) {
	prog, script, atomic := racyIncrement()
	c := NewChecker(prog, nil, Options{Logging: true, NoElision: true, NoUnaryMerge: true})
	if _, err := vm.NewExec(prog, vm.Config{
		Sched: vm.NewScripted(script, true), Inst: c, Atomic: atomic,
	}).Run(); err != nil {
		t.Fatal(err)
	}
	if c.Manager() == nil {
		t.Fatal("Manager accessor")
	}
	if c.Manager().Stats().LogElided != 0 {
		t.Error("NoElision must reach the manager")
	}
}
