//go:build !race

package icd

import (
	"testing"

	"doublechecker/internal/cost"
	"doublechecker/internal/vm"
)

// fakeExec is a minimal ExecView for driving a Checker directly (no VM):
// every thread is unblocked and non-transactional, and the clock is a
// counter. That keeps the alloc budgets below about the checker alone.
type fakeExec struct{ now uint64 }

func (f *fakeExec) Now() uint64                      { f.now++; return f.now }
func (f *fakeExec) Blocked(vm.ThreadID) bool         { return false }
func (f *fakeExec) InTx(vm.ThreadID) bool            { return false }
func (f *fakeExec) TxMethod(vm.ThreadID) vm.MethodID { return vm.NoMethod }

// TestICDHotPathAllocs pins the allocation discipline of the multi-run first
// run (no logging, no SCC handoff): with transaction recycling, slice-backed
// octet state, and the incremental engine's free lists warmed up, the
// steady-state per-access paths must not allocate at all.
//
// The budgets are exact (0 allocs/op); the test is excluded under -race,
// whose instrumentation allocates.
func TestICDHotPathAllocs(t *testing.T) {
	b := vm.NewBuilder("allocs")
	for i := 0; i < 4; i++ {
		b.Object()
	}
	o := b.Object()
	m := b.Method("spin")
	m.Read(o, 0)
	b.Thread(m)
	b.Thread(m)
	prog := b.MustBuild()

	// Octet fast path: repeated same-owner reads (WrEx/RdEx hit, no
	// transition, no log).
	t.Run("octet-fast-path", func(t *testing.T) {
		c := NewChecker(prog, cost.NewMeter(cost.Default()), Options{GCPeriod: 1 << 30})
		c.ProgramStart(&fakeExec{})
		c.ThreadStart(0)
		var seq uint64
		access := func(th vm.ThreadID, obj vm.ObjectID, write bool) {
			seq++
			c.Access(vm.Access{Thread: th, Obj: obj, Write: write, Class: vm.ClassField, Seq: seq})
		}
		for i := 0; i < 64; i++ { // warm up: claim objects, grow state tables
			access(0, vm.ObjectID(i%4), true)
		}
		if n := testing.AllocsPerRun(200, func() { access(0, 0, false) }); n != 0 {
			t.Errorf("octet fast path: %v allocs/op, want 0", n)
		}
	})

	// IDG edge-insert path: a two-thread write ping-pong drives a conflicting
	// transition (edge + fresh unary sink + engine insertion) at every
	// access, and periodic GC recycles the retired chain. After warm-up the
	// whole loop — barriers, edges, transaction churn, engine maintenance,
	// collection — must run out of free lists.
	t.Run("idg-edge-insert", func(t *testing.T) {
		c := NewChecker(prog, cost.NewMeter(cost.Default()), Options{GCPeriod: 256})
		c.ProgramStart(&fakeExec{})
		c.ThreadStart(0)
		c.ThreadStart(1)
		var seq uint64
		write := func(th vm.ThreadID) {
			seq++
			c.Access(vm.Access{Thread: th, Obj: 0, Write: true, Class: vm.ClassField, Seq: seq})
		}
		round := func() {
			for i := 0; i < 512; i++ { // crosses the GC period twice per round
				write(vm.ThreadID(i % 2))
			}
		}
		for i := 0; i < 4; i++ {
			round() // warm up free lists, scratch buffers, engine slots
		}
		if n := testing.AllocsPerRun(10, round); n != 0 {
			t.Errorf("edge-insert round: %v allocs (512 accesses + 2 GCs), want 0", n)
		}
	})

	// Repeated-dependence path: the same cross-thread edge re-observed
	// (dedup hit) must not allocate either.
	t.Run("edge-dedup", func(t *testing.T) {
		c := NewChecker(prog, cost.NewMeter(cost.Default()), Options{GCPeriod: 1 << 30})
		c.ProgramStart(&fakeExec{})
		c.ThreadStart(0)
		c.ThreadStart(1)
		var seq uint64
		read := func(th vm.ThreadID, obj vm.ObjectID) {
			seq++
			c.Access(vm.Access{Thread: th, Obj: obj, Write: false, Class: vm.ClassField, Seq: seq})
		}
		read(0, 0) // RdEx_0
		read(1, 0) // upgrade to RdSh
		for i := 0; i < 64; i++ {
			read(0, 0)
			read(1, 0)
		}
		if n := testing.AllocsPerRun(200, func() { read(0, 0); read(1, 0) }); n != 0 {
			t.Errorf("dedup path: %v allocs/op, want 0", n)
		}
	})
}
