package icd

import "fmt"

// Engine selects how deferred detection (§3.2.3) finds the cyclic component
// of a finished transaction.
type Engine uint8

const (
	// EngineIncremental — the default — maintains an online SCC condensation
	// of the IDG (Pearce–Kelly topological ordering with union–find collapse,
	// graph.IncSCC) so each finish answers the component query from already
	// amortized insertion work instead of re-walking the finished region.
	EngineIncremental Engine = iota
	// EngineScan recomputes the component with a fresh graph.SCCFrom walk at
	// every finish — the pre-amortization behaviour, kept for ablation.
	EngineScan
)

func (e Engine) String() string {
	switch e {
	case EngineIncremental:
		return "incremental"
	case EngineScan:
		return "scan"
	}
	return fmt.Sprintf("Engine(%d)", uint8(e))
}

// ParseEngine parses a -icd-engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "incremental", "":
		return EngineIncremental, nil
	case "scan":
		return EngineScan, nil
	}
	return 0, fmt.Errorf("icd: unknown engine %q (want scan or incremental)", s)
}
