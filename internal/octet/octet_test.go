package octet

import (
	"fmt"
	"math/rand"
	"testing"

	"doublechecker/internal/cost"
	"doublechecker/internal/vm"
)

// hookLog records hook invocations for assertions.
type hookLog struct {
	entries []string
}

func (h *hookLog) HandleConflicting(resp, req vm.ThreadID, old, new State, explicit bool) {
	h.entries = append(h.entries, fmt.Sprintf("conflict resp=t%d req=t%d %v->%v explicit=%v",
		resp, req, old, new, explicit))
}
func (h *hookLog) HandleUpgrading(t vm.ThreadID, rdExOwner vm.ThreadID, old, new State) {
	h.entries = append(h.entries, fmt.Sprintf("upgrade t=t%d rdExOwner=t%d %v->%v", t, rdExOwner, old, new))
}
func (h *hookLog) HandleFence(t vm.ThreadID, c uint64) {
	h.entries = append(h.entries, fmt.Sprintf("fence t=t%d c=%d", t, c))
}

func newEngine(h Hooks) *Engine {
	e := New(h, nil, nil)
	for t := vm.ThreadID(0); t < 8; t++ {
		e.ThreadStart(t)
	}
	return e
}

// TestTable1Transitions exhaustively checks every row of the paper's
// Table 1.
func TestTable1Transitions(t *testing.T) {
	const obj = vm.ObjectID(0)
	t1, t2 := vm.ThreadID(1), vm.ThreadID(2)

	type step struct {
		write    bool
		thread   vm.ThreadID
		wantKind TransitionKind
		wantSt   State
	}
	cases := []struct {
		name  string
		setup []step // establish the old state
		probe step
	}{
		{"WrExT R by T same",
			[]step{{true, t1, Initial, State{Kind: WrEx, Owner: t1}}},
			step{false, t1, Same, State{Kind: WrEx, Owner: t1}}},
		{"WrExT W by T same",
			[]step{{true, t1, Initial, State{Kind: WrEx, Owner: t1}}},
			step{true, t1, Same, State{Kind: WrEx, Owner: t1}}},
		{"RdExT R by T same",
			[]step{{false, t1, Initial, State{Kind: RdEx, Owner: t1}}},
			step{false, t1, Same, State{Kind: RdEx, Owner: t1}}},
		{"RdExT W by T upgrading to WrExT",
			[]step{{false, t1, Initial, State{Kind: RdEx, Owner: t1}}},
			step{true, t1, Upgrading, State{Kind: WrEx, Owner: t1}}},
		{"RdExT1 R by T2 upgrading to RdSh",
			[]step{{false, t1, Initial, State{Kind: RdEx, Owner: t1}}},
			step{false, t2, Upgrading, State{Kind: RdSh, Counter: 1}}},
		{"WrExT1 W by T2 conflicting to WrExT2",
			[]step{{true, t1, Initial, State{Kind: WrEx, Owner: t1}}},
			step{true, t2, Conflicting, State{Kind: WrEx, Owner: t2}}},
		{"WrExT1 R by T2 conflicting to RdExT2",
			[]step{{true, t1, Initial, State{Kind: WrEx, Owner: t1}}},
			step{false, t2, Conflicting, State{Kind: RdEx, Owner: t2}}},
		{"RdExT1 W by T2 conflicting to WrExT2",
			[]step{{false, t1, Initial, State{Kind: RdEx, Owner: t1}}},
			step{true, t2, Conflicting, State{Kind: WrEx, Owner: t2}}},
		{"RdSh W by T conflicting to WrExT",
			[]step{
				{false, t1, Initial, State{Kind: RdEx, Owner: t1}},
				{false, t2, Upgrading, State{Kind: RdSh, Counter: 1}},
			},
			step{true, t1, Conflicting, State{Kind: WrEx, Owner: t1}}},
		{"RdSh R by reader-up-to-date same",
			[]step{
				{false, t1, Initial, State{Kind: RdEx, Owner: t1}},
				{false, t2, Upgrading, State{Kind: RdSh, Counter: 1}},
			},
			step{false, t2, Same, State{Kind: RdSh, Counter: 1}}},
		{"RdSh R by stale reader fence",
			[]step{
				{false, t1, Initial, State{Kind: RdEx, Owner: t1}},
				{false, t2, Upgrading, State{Kind: RdSh, Counter: 1}},
			},
			step{false, t1, Fence, State{Kind: RdSh, Counter: 1}}},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e := newEngine(&hookLog{})
			apply := func(s step) Transition {
				if s.write {
					return e.BeforeWrite(s.thread, obj)
				}
				return e.BeforeRead(s.thread, obj)
			}
			for i, s := range c.setup {
				tr := apply(s)
				if tr.Kind != s.wantKind || tr.New != s.wantSt {
					t.Fatalf("setup step %d: got %v -> %v, want %v -> %v",
						i, tr.Kind, tr.New, s.wantKind, s.wantSt)
				}
			}
			tr := apply(c.probe)
			if tr.Kind != c.probe.wantKind {
				t.Errorf("transition kind = %v, want %v", tr.Kind, c.probe.wantKind)
			}
			if tr.New != c.probe.wantSt {
				t.Errorf("new state = %v, want %v", tr.New, c.probe.wantSt)
			}
			if got := e.StateOf(obj); got != c.probe.wantSt {
				t.Errorf("installed state = %v, want %v", got, c.probe.wantSt)
			}
		})
	}
}

// TestFigure2Interleaving replays the paper's Figure 2: six threads, objects
// o and p, exercising upgrade-to-RdSh, fences, and fence elision via the
// per-thread counter.
func TestFigure2Interleaving(t *testing.T) {
	h := &hookLog{}
	e := newEngine(h)
	o, p := vm.ObjectID(0), vm.ObjectID(1)
	t1, t2, t3, t4, t5, t6, t7 := vm.ThreadID(1), vm.ThreadID(2), vm.ThreadID(3),
		vm.ThreadID(4), vm.ThreadID(5), vm.ThreadID(6), vm.ThreadID(7)

	// wr o.f by T1: claims WrEx_T1.
	if tr := e.BeforeWrite(t1, o); tr.Kind != Initial {
		t.Fatalf("expected initial claim, got %v", tr.Kind)
	}
	// Give p a RdSh history first so counters line up with the figure:
	// T7 writes p, T5 reads p (conflict -> RdEx_T5), T6 reads p (upgrade ->
	// RdSh_c).
	e.BeforeWrite(t7, p)
	if tr := e.BeforeRead(t5, p); tr.Kind != Conflicting {
		t.Fatalf("expected conflicting WrEx->RdEx, got %v", tr.Kind)
	}
	if tr := e.BeforeRead(t6, p); tr.Kind != Upgrading || tr.New.Kind != RdSh {
		t.Fatalf("expected upgrade to RdSh, got %v %v", tr.Kind, tr.New)
	}
	cP := e.StateOf(p).Counter

	// rd o.f by T2: conflicting WrEx_T1 -> RdEx_T2.
	if tr := e.BeforeRead(t2, o); tr.Kind != Conflicting || tr.New != (State{Kind: RdEx, Owner: t2}) {
		t.Fatalf("rd o by T2: got %v %v", tr.Kind, tr.New)
	}
	// rd o.f by T3: upgrading RdEx_T2 -> RdSh_{c+1}.
	tr := e.BeforeRead(t3, o)
	if tr.Kind != Upgrading || tr.New.Kind != RdSh || tr.New.Counter != cP+1 {
		t.Fatalf("rd o by T3: got %v %v (want RdSh_%d)", tr.Kind, tr.New, cP+1)
	}
	cO := tr.New.Counter

	// rd o.f by T4: T4.rdShCnt (0) < cO: fence transition.
	if tr := e.BeforeRead(t4, o); tr.Kind != Fence {
		t.Fatalf("rd o by T4: expected fence, got %v", tr.Kind)
	}
	if e.RdShCnt(t4) != cO {
		t.Errorf("T4.rdShCnt = %d, want %d", e.RdShCnt(t4), cO)
	}
	// rd p.q by T4: p's counter (cP) <= T4.rdShCnt (cO = cP+1): no fence.
	if tr := e.BeforeRead(t4, p); tr.Kind != Same {
		t.Errorf("rd p by T4: expected fence elision (Same), got %v", tr.Kind)
	}
	// rd o.f by T5: T5 read p when it was RdEx... T5.rdShCnt is 0, so fence.
	if tr := e.BeforeRead(t5, o); tr.Kind != Fence {
		t.Errorf("rd o by T5: expected fence, got %v", tr.Kind)
	}
}

func TestGlobalCounterMonotone(t *testing.T) {
	e := newEngine(&hookLog{})
	// Each RdEx -> RdSh upgrade increments gRdShCnt.
	for i := 0; i < 5; i++ {
		obj := vm.ObjectID(i)
		e.BeforeRead(0, obj)       // Initial -> RdEx_0
		tr := e.BeforeRead(1, obj) // upgrade -> RdSh
		if tr.New.Counter != uint64(i+1) {
			t.Fatalf("upgrade %d: counter = %d, want %d", i, tr.New.Counter, i+1)
		}
	}
	if e.GRdShCnt() != 5 {
		t.Errorf("gRdShCnt = %d, want 5", e.GRdShCnt())
	}
}

func TestConflictRespondersForRdSh(t *testing.T) {
	h := &hookLog{}
	e := New(h, nil, nil)
	for _, t := range []vm.ThreadID{0, 1, 2, 3} {
		e.ThreadStart(t)
	}
	obj := vm.ObjectID(0)
	e.BeforeRead(0, obj) // RdEx_0
	e.BeforeRead(1, obj) // RdSh
	h.entries = nil
	e.BeforeWrite(2, obj) // conflicting: responders are all live threads but 2
	if len(h.entries) != 3 {
		t.Fatalf("expected 3 responder hooks, got %d: %v", len(h.entries), h.entries)
	}
	st := e.Stats()
	if st.Responders != 3 || st.Conflicting == 0 {
		t.Errorf("stats responders=%d conflicting=%d", st.Responders, st.Conflicting)
	}
}

func TestConflictRespondersIncludeExitedImplicitly(t *testing.T) {
	// An exited reader's dependence must not be dropped: it stays a
	// responder, but via the trivial implicit protocol.
	h := &hookLog{}
	e := New(h, nil, nil)
	for _, t := range []vm.ThreadID{0, 1, 2} {
		e.ThreadStart(t)
	}
	obj := vm.ObjectID(0)
	e.BeforeRead(0, obj)
	e.BeforeRead(1, obj) // RdSh
	e.ThreadExit(1)
	h.entries = nil
	e.BeforeWrite(2, obj)
	if len(h.entries) != 2 {
		t.Fatalf("expected 2 responders (incl. exited t1), got %v", h.entries)
	}
	if st := e.Stats(); st.Implicit != 1 || st.Explicit != 1 {
		t.Errorf("exited responder should use implicit protocol: %+v", st)
	}
}

func TestExplicitVsImplicitProtocol(t *testing.T) {
	blockedSet := map[vm.ThreadID]bool{1: true}
	h := &hookLog{}
	e := New(h, func(t vm.ThreadID) bool { return blockedSet[t] }, nil)
	e.ThreadStart(0)
	e.ThreadStart(1)
	e.ThreadStart(2)
	obj := vm.ObjectID(0)
	e.BeforeWrite(1, obj) // WrEx_1
	e.BeforeWrite(2, obj) // conflict with blocked t1: implicit
	st := e.Stats()
	if st.Implicit != 1 || st.Explicit != 0 {
		t.Errorf("implicit=%d explicit=%d, want 1/0", st.Implicit, st.Explicit)
	}
	e.BeforeWrite(0, obj) // conflict with running t2: explicit
	st = e.Stats()
	if st.Explicit != 1 {
		t.Errorf("explicit=%d, want 1", st.Explicit)
	}
}

func TestCostCharging(t *testing.T) {
	model := cost.Default()
	meter := cost.NewMeter(model)
	e := New(NopHooks{}, nil, meter)
	e.ThreadStart(0)
	e.ThreadStart(1)
	obj := vm.ObjectID(0)

	e.BeforeWrite(0, obj) // initial: upgrade cost
	afterInit := meter.Total()
	e.BeforeWrite(0, obj) // fast path
	if meter.Total()-afterInit != model.OctetFastPath {
		t.Errorf("fast path charged %d, want %d", meter.Total()-afterInit, model.OctetFastPath)
	}
	before := meter.Total()
	e.BeforeWrite(1, obj) // conflicting, explicit
	if meter.Total()-before != model.OctetConflictExplicit {
		t.Errorf("conflict charged %d, want %d", meter.Total()-before, model.OctetConflictExplicit)
	}
}

func TestUpgradeToWrExDoesNotFireHooks(t *testing.T) {
	h := &hookLog{}
	e := newEngine(h)
	obj := vm.ObjectID(0)
	e.BeforeRead(1, obj) // RdEx_1
	h.entries = nil
	e.BeforeWrite(1, obj) // RdEx->WrEx upgrade: ICD safely ignores
	if len(h.entries) != 0 {
		t.Errorf("RdEx->WrEx should fire no hooks, got %v", h.entries)
	}
}

func TestFenceHookCarriesCounter(t *testing.T) {
	h := &hookLog{}
	e := newEngine(h)
	obj := vm.ObjectID(0)
	e.BeforeRead(1, obj)
	e.BeforeRead(2, obj) // RdSh_1
	h.entries = nil
	e.BeforeRead(3, obj) // fence for t3
	if len(h.entries) != 1 || h.entries[0] != "fence t=t3 c=1" {
		t.Errorf("fence hook = %v", h.entries)
	}
}

// TestPropertyFastPathIdempotent: immediately repeating any access on the
// same object by the same thread is always a fast path (Same transition).
func TestPropertyFastPathIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	e := newEngine(&hookLog{})
	for i := 0; i < 2000; i++ {
		th := vm.ThreadID(rng.Intn(4))
		obj := vm.ObjectID(rng.Intn(6))
		write := rng.Intn(2) == 0
		if write {
			e.BeforeWrite(th, obj)
			if tr := e.BeforeWrite(th, obj); tr.Kind != Same {
				t.Fatalf("iter %d: repeat write not fast path: %v (state %v)", i, tr.Kind, tr.Old)
			}
		} else {
			e.BeforeRead(th, obj)
			if tr := e.BeforeRead(th, obj); tr.Kind != Same {
				t.Fatalf("iter %d: repeat read not fast path: %v (state %v)", i, tr.Kind, tr.Old)
			}
		}
	}
}

// TestPropertyStateOwnershipInvariant: after a write barrier, the object is
// always WrEx of the writer; after a read barrier, the state always permits
// the reader (WrEx/RdEx owner, or RdSh with an up-to-date counter).
func TestPropertyStateOwnershipInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	e := newEngine(&hookLog{})
	for i := 0; i < 5000; i++ {
		th := vm.ThreadID(rng.Intn(5))
		obj := vm.ObjectID(rng.Intn(8))
		if rng.Intn(3) == 0 {
			e.BeforeWrite(th, obj)
			st := e.StateOf(obj)
			if st.Kind != WrEx || st.Owner != th {
				t.Fatalf("iter %d: after write by t%d state is %v", i, th, st)
			}
		} else {
			e.BeforeRead(th, obj)
			st := e.StateOf(obj)
			switch st.Kind {
			case WrEx, RdEx:
				if st.Owner != th {
					t.Fatalf("iter %d: after read by t%d exclusive state %v", i, th, st)
				}
			case RdSh:
				if e.RdShCnt(th) < st.Counter {
					t.Fatalf("iter %d: after read by t%d stale counter %d < %d",
						i, th, e.RdShCnt(th), st.Counter)
				}
			default:
				t.Fatalf("iter %d: free state after read", i)
			}
		}
	}
}

func TestStateStrings(t *testing.T) {
	for _, s := range []State{
		{Kind: Free},
		{Kind: WrEx, Owner: 3},
		{Kind: RdEx, Owner: 1},
		{Kind: RdSh, Counter: 17},
	} {
		if s.String() == "" {
			t.Errorf("empty string for %v", s.Kind)
		}
	}
	for _, k := range []TransitionKind{Same, Initial, Upgrading, Fence, Conflicting} {
		if k.String() == "" {
			t.Error("empty transition kind string")
		}
	}
}
