// Package octet implements the Octet software concurrency-control mechanism
// (Bond et al., OOPSLA 2013) that DoubleChecker's imprecise analysis builds
// on (paper §3.2.1, Table 1).
//
// Octet maintains a per-object locality state — WrEx_T (write-exclusive for
// thread T), RdEx_T (read-exclusive for T), or RdSh_c (read-shared, stamped
// with the global read-shared counter value c). Barriers before every load
// and store check the state (the fast path — no writes, no synchronization)
// and, when the state must change, run a slow path whose flavor classifies
// the transition:
//
//   - upgrading (RdEx_T -> WrEx_T by T, or RdEx_T1 -> RdSh by T2): an atomic
//     state change, no coordination;
//   - fence (read of an RdSh_c object by a thread whose rdShCnt < c): a
//     counter update plus a memory fence;
//   - conflicting (anything that revokes another thread's exclusivity): a
//     coordination protocol with each responding thread — "explicit" (a
//     round trip answered at the responder's next safe point) when the
//     responder is running, "implicit" (an atomically set flag) when it is
//     blocked.
//
// The state transitions establish happens-before edges that transitively
// imply all cross-thread dependences; the Hooks interface is where ICD
// piggybacks (paper Figure 4).
//
// Our interpreter executes one operation per step, so the coordination
// protocol completes synchronously within the requesting access: the
// responder's "current safe point" is simply its current execution point,
// and the engine reports which protocol the real system would have used so
// the cost model can charge it.
package octet

import (
	"fmt"

	"doublechecker/internal/cost"
	"doublechecker/internal/telemetry"
	"doublechecker/internal/vm"
)

// StateKind enumerates Octet locality states.
type StateKind uint8

const (
	// Free is the pre-first-access state. Octet objects are born in WrEx of
	// the allocating thread; our programs' objects pre-exist, so the first
	// accessor claims the object without coordination.
	Free StateKind = iota
	// WrEx: write-exclusive for Owner.
	WrEx
	// RdEx: read-exclusive for Owner.
	RdEx
	// RdSh: read-shared, stamped with Counter.
	RdSh
)

func (k StateKind) String() string {
	switch k {
	case Free:
		return "Free"
	case WrEx:
		return "WrEx"
	case RdEx:
		return "RdEx"
	case RdSh:
		return "RdSh"
	}
	return fmt.Sprintf("StateKind(%d)", uint8(k))
}

// State is one object's Octet state.
type State struct {
	Kind    StateKind
	Owner   vm.ThreadID // valid for WrEx and RdEx
	Counter uint64      // valid for RdSh: gRdShCnt value at the upgrade
}

func (s State) String() string {
	switch s.Kind {
	case WrEx, RdEx:
		return fmt.Sprintf("%s_t%d", s.Kind, s.Owner)
	case RdSh:
		return fmt.Sprintf("RdSh_%d", s.Counter)
	}
	return s.Kind.String()
}

// TransitionKind classifies what a barrier did (Table 1 row groups).
type TransitionKind uint8

const (
	// Same: fast path, no state change.
	Same TransitionKind = iota
	// Initial: first access claims a Free object (no dependence possible).
	Initial
	// Upgrading: RdEx->WrEx by the owner, or RdEx_T1 -> RdSh by T2.
	Upgrading
	// Fence: RdSh read requiring a counter update and fence.
	Fence
	// Conflicting: revokes exclusivity; coordination with responder(s).
	Conflicting
)

func (k TransitionKind) String() string {
	switch k {
	case Same:
		return "same"
	case Initial:
		return "initial"
	case Upgrading:
		return "upgrading"
	case Fence:
		return "fence"
	case Conflicting:
		return "conflicting"
	}
	return fmt.Sprintf("TransitionKind(%d)", uint8(k))
}

// Transition reports what one barrier invocation did.
type Transition struct {
	Kind     TransitionKind
	Old, New State
}

// Hooks receives slow-path notifications; ICD implements this (Figure 4).
// Hook invocations happen after the state change has been decided but are
// passed both old and new states.
type Hooks interface {
	// HandleConflicting is invoked once per responding thread of a
	// conflicting transition. explicit reports whether the explicit
	// (round-trip) protocol was used; the implicit protocol is used when
	// the responder is blocked.
	HandleConflicting(resp, req vm.ThreadID, old, new State, explicit bool)
	// HandleUpgrading is invoked for RdEx_T1 -> RdSh upgrades. rdExOwner is
	// T1 (whose lastRdEx sources one IDG edge); newCounter is the fresh
	// gRdShCnt value.
	HandleUpgrading(t vm.ThreadID, rdExOwner vm.ThreadID, old, new State)
	// HandleFence is invoked for fence transitions.
	HandleFence(t vm.ThreadID, counter uint64)
}

// NopHooks is a Hooks that does nothing (used when measuring Octet alone).
type NopHooks struct{}

// HandleConflicting implements Hooks.
func (NopHooks) HandleConflicting(vm.ThreadID, vm.ThreadID, State, State, bool) {}

// HandleUpgrading implements Hooks.
func (NopHooks) HandleUpgrading(vm.ThreadID, vm.ThreadID, State, State) {}

// HandleFence implements Hooks.
func (NopHooks) HandleFence(vm.ThreadID, uint64) {}

// Stats counts barrier outcomes.
type Stats struct {
	FastPath    uint64
	Initial     uint64
	Upgrading   uint64 // includes RdEx->WrEx by owner
	Fences      uint64
	Conflicting uint64 // conflicting transitions (not per-responder)
	Responders  uint64 // total responder coordinations
	Explicit    uint64 // explicit-protocol responders
	Implicit    uint64 // implicit-protocol responders
}

// tel holds pre-resolved telemetry counters so the barrier hot path pays
// one nil check plus one atomic add per transition, never a map lookup.
type tel struct {
	fastPath    *telemetry.Counter
	initial     *telemetry.Counter
	upgrading   *telemetry.Counter
	fence       *telemetry.Counter
	conflicting *telemetry.Counter
	explicit    *telemetry.Counter
	implicit    *telemetry.Counter
}

// Engine tracks Octet state for every object of one execution.
//
// Object and thread IDs are dense small integers (the VM allocates them
// contiguously from zero), so the per-variable state lives in slices grown on
// first touch rather than maps: the per-access fast path is then a bounds
// check plus an indexed load, with no hashing and no allocation.
type Engine struct {
	states   []State  // indexed by ObjectID
	rdShCnt  []uint64 // indexed by ThreadID
	gRdShCnt uint64
	hooks    Hooks
	blocked  func(vm.ThreadID) bool
	live     []bool // indexed by ThreadID
	exited   []bool // indexed by ThreadID
	resps    []vm.ThreadID
	meter    *cost.Meter
	stats    Stats
	tel      *tel
}

// grown extends xs with zero values so index n is addressable.
func grown[T any](xs []T, n int) []T {
	if n < len(xs) {
		return xs
	}
	return append(xs, make([]T, n+1-len(xs))...)
}

// SetTelemetry attaches a registry: barrier outcomes are then counted live
// under the telemetry.Octet* metric names (the Figure 4 transition mix).
func (e *Engine) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	e.tel = &tel{
		fastPath:    reg.Counter(telemetry.OctetFastPath),
		initial:     reg.Counter(telemetry.OctetInitial),
		upgrading:   reg.Counter(telemetry.OctetUpgrading),
		fence:       reg.Counter(telemetry.OctetFence),
		conflicting: reg.Counter(telemetry.OctetConflicting),
		explicit:    reg.Counter(telemetry.OctetRespondersExpl),
		implicit:    reg.Counter(telemetry.OctetRespondersImpl),
	}
}

// New returns an Engine. blocked reports whether a thread is currently
// blocked (the executor provides this); meter may be nil.
func New(hooks Hooks, blocked func(vm.ThreadID) bool, meter *cost.Meter) *Engine {
	if hooks == nil {
		hooks = NopHooks{}
	}
	if blocked == nil {
		blocked = func(vm.ThreadID) bool { return false }
	}
	return &Engine{
		hooks:   hooks,
		blocked: blocked,
		meter:   meter,
	}
}

// ThreadStart registers a live thread (a candidate responder).
func (e *Engine) ThreadStart(t vm.ThreadID) {
	e.live = grown(e.live, int(t))
	e.live[t] = true
}

// ThreadExit marks a thread exited. It remains a responder for RdSh
// conflicts — its reads are still unordered with respect to a future
// writer, and dropping the coordination (and with it ICD's edge from the
// thread's last transaction) would miss dependences; the coordination is
// trivially implicit, as with any blocked thread.
func (e *Engine) ThreadExit(t vm.ThreadID) {
	e.exited = grown(e.exited, int(t))
	e.exited[t] = true
}

// StateOf returns obj's current state.
func (e *Engine) StateOf(obj vm.ObjectID) State {
	if int(obj) < len(e.states) {
		return e.states[obj]
	}
	return State{}
}

// setState installs obj's state, growing the table on first touch.
func (e *Engine) setState(obj vm.ObjectID, s State) {
	e.states = grown(e.states, int(obj))
	e.states[obj] = s
}

// GRdShCnt returns the global read-shared counter.
func (e *Engine) GRdShCnt() uint64 { return e.gRdShCnt }

// RdShCnt returns thread t's local read-shared counter.
func (e *Engine) RdShCnt(t vm.ThreadID) uint64 {
	if int(t) < len(e.rdShCnt) {
		return e.rdShCnt[t]
	}
	return 0
}

// setRdShCnt installs thread t's local read-shared counter.
func (e *Engine) setRdShCnt(t vm.ThreadID, c uint64) {
	e.rdShCnt = grown(e.rdShCnt, int(t))
	e.rdShCnt[t] = c
}

func (e *Engine) isExited(t vm.ThreadID) bool {
	return int(t) < len(e.exited) && e.exited[t]
}

// Stats returns barrier statistics.
func (e *Engine) Stats() Stats { return e.stats }

func (e *Engine) charge(u cost.Units) {
	if e.meter != nil {
		e.meter.Charge(u)
	}
}

func (e *Engine) model() cost.Model {
	if e.meter != nil {
		return e.meter.Model()
	}
	return cost.Model{}
}

// BeforeRead runs the read barrier for thread t on obj (Table 1 read rows)
// and returns the transition taken.
func (e *Engine) BeforeRead(t vm.ThreadID, obj vm.ObjectID) Transition {
	old := e.StateOf(obj)
	m := e.model()
	switch old.Kind {
	case WrEx, RdEx:
		if old.Owner == t {
			e.stats.FastPath++
			if e.tel != nil {
				e.tel.fastPath.Inc()
			}
			e.charge(m.OctetFastPath)
			return Transition{Kind: Same, Old: old, New: old}
		}
		if old.Kind == WrEx {
			// Conflicting: WrEx_T1, R by T2 -> RdEx_T2.
			return e.conflict(t, obj, old, State{Kind: RdEx, Owner: t})
		}
		// Upgrading: RdEx_T1, R by T2 -> RdSh_c with fresh c.
		e.gRdShCnt++
		newState := State{Kind: RdSh, Counter: e.gRdShCnt}
		e.setState(obj, newState)
		e.setRdShCnt(t, e.gRdShCnt)
		e.stats.Upgrading++
		if e.tel != nil {
			e.tel.upgrading.Inc()
		}
		e.charge(m.OctetUpgrade)
		e.hooks.HandleUpgrading(t, old.Owner, old, newState)
		return Transition{Kind: Upgrading, Old: old, New: newState}
	case RdSh:
		if e.RdShCnt(t) >= old.Counter {
			e.stats.FastPath++
			if e.tel != nil {
				e.tel.fastPath.Inc()
			}
			e.charge(m.OctetFastPath)
			return Transition{Kind: Same, Old: old, New: old}
		}
		// Fence transition: update the thread's counter.
		e.setRdShCnt(t, old.Counter)
		e.stats.Fences++
		if e.tel != nil {
			e.tel.fence.Inc()
		}
		e.charge(m.OctetFence)
		e.hooks.HandleFence(t, old.Counter)
		return Transition{Kind: Fence, Old: old, New: old}
	default: // Free: first access claims read-exclusivity.
		newState := State{Kind: RdEx, Owner: t}
		e.setState(obj, newState)
		e.stats.Initial++
		if e.tel != nil {
			e.tel.initial.Inc()
		}
		e.charge(m.OctetUpgrade)
		return Transition{Kind: Initial, Old: old, New: newState}
	}
}

// BeforeWrite runs the write barrier for thread t on obj (Table 1 write
// rows) and returns the transition taken.
func (e *Engine) BeforeWrite(t vm.ThreadID, obj vm.ObjectID) Transition {
	old := e.StateOf(obj)
	m := e.model()
	switch old.Kind {
	case WrEx:
		if old.Owner == t {
			e.stats.FastPath++
			if e.tel != nil {
				e.tel.fastPath.Inc()
			}
			e.charge(m.OctetFastPath)
			return Transition{Kind: Same, Old: old, New: old}
		}
		return e.conflict(t, obj, old, State{Kind: WrEx, Owner: t})
	case RdEx:
		if old.Owner == t {
			// Upgrading: RdEx_T -> WrEx_T, atomic, no coordination, and —
			// per §3.2.2 — safely ignored by ICD (no hook).
			newState := State{Kind: WrEx, Owner: t}
			e.setState(obj, newState)
			e.stats.Upgrading++
			if e.tel != nil {
				e.tel.upgrading.Inc()
			}
			e.charge(m.OctetUpgrade)
			return Transition{Kind: Upgrading, Old: old, New: newState}
		}
		return e.conflict(t, obj, old, State{Kind: WrEx, Owner: t})
	case RdSh:
		return e.conflict(t, obj, old, State{Kind: WrEx, Owner: t})
	default: // Free
		newState := State{Kind: WrEx, Owner: t}
		e.setState(obj, newState)
		e.stats.Initial++
		if e.tel != nil {
			e.tel.initial.Inc()
		}
		e.charge(m.OctetUpgrade)
		return Transition{Kind: Initial, Old: old, New: newState}
	}
}

// conflict performs a conflicting transition: determines the responding
// threads, runs the (modelled) coordination protocol with each, fires hooks,
// and installs the new state.
//
// For WrEx/RdEx old states the responder is the old owner. For RdSh -> WrEx
// the engine — like Octet, which does not track the read-shared reader set —
// must coordinate with every other live thread (§3.2.2 "for conflicting
// transitions from RdSh to WrExT, ICD adds edges from all threads").
func (e *Engine) conflict(req vm.ThreadID, obj vm.ObjectID, old, newState State) Transition {
	m := e.model()
	e.stats.Conflicting++
	if e.tel != nil {
		e.tel.conflicting.Inc()
	}
	resps := e.resps[:0]
	switch old.Kind {
	case WrEx, RdEx:
		resps = append(resps, old.Owner)
	case RdSh:
		// Slice iteration yields threads in ID order, so the responder
		// sequence is deterministic without a sort.
		for t, on := range e.live {
			if on && vm.ThreadID(t) != req {
				resps = append(resps, vm.ThreadID(t))
			}
		}
	}
	for _, resp := range resps {
		explicit := !e.blocked(resp) && !e.isExited(resp)
		if explicit {
			e.stats.Explicit++
			if e.tel != nil {
				e.tel.explicit.Inc()
			}
			e.charge(m.OctetConflictExplicit)
		} else {
			e.stats.Implicit++
			if e.tel != nil {
				e.tel.implicit.Inc()
			}
			e.charge(m.OctetConflictImplicit)
		}
		e.stats.Responders++
		e.hooks.HandleConflicting(resp, req, old, newState, explicit)
	}
	e.resps = resps[:0]
	e.setState(obj, newState)
	return Transition{Kind: Conflicting, Old: old, New: newState}
}
