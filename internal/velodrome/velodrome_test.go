package velodrome

import (
	"testing"

	"doublechecker/internal/cost"
	"doublechecker/internal/txn"
	"doublechecker/internal/vm"
)

// buildRacyIncrement builds the canonical atomicity violation: two threads
// each run an atomic read-modify-write on a shared counter with no lock.
// The returned script interleaves them as rd0 rd1 wr1 wr0, which is not
// conflict serializable.
func buildRacyIncrement() (*vm.Program, []vm.ThreadID, func(vm.MethodID) bool) {
	b := vm.NewBuilder("racy-inc")
	o := b.Object()
	inc := b.Method("inc")
	inc.Read(o, 0).Write(o, 0)
	m0 := b.Method("main0")
	m0.Call(inc)
	m1 := b.Method("main1")
	m1.Call(inc)
	b.Thread(m0)
	b.Thread(m1)
	prog := b.MustBuild()
	incID := prog.MethodByName("inc").ID
	atomic := func(m vm.MethodID) bool { return m == incID }
	// Steps: t0 call, t1 call, t0 rd, t1 rd, t1 wr, t0 wr.
	script := []vm.ThreadID{0, 1, 0, 1, 1, 0}
	return prog, script, atomic
}

func runWith(t *testing.T, prog *vm.Program, sched vm.Scheduler, atomic func(vm.MethodID) bool, opts Options) *Checker {
	t.Helper()
	c := NewChecker(prog, nil, opts)
	_, err := vm.NewExec(prog, vm.Config{Sched: sched, Inst: c, Atomic: atomic}).Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

func TestDetectsRacyIncrementCycle(t *testing.T) {
	prog, script, atomic := buildRacyIncrement()
	c := runWith(t, prog, vm.NewScripted(script, true), atomic, Options{})
	if len(c.Violations()) == 0 {
		t.Fatal("expected a violation for the racy increment interleaving")
	}
	v := c.Violations()[0]
	if len(v.Cycle) != 2 {
		t.Errorf("cycle size = %d, want 2", len(v.Cycle))
	}
	incID := prog.MethodByName("inc").ID
	if len(v.BlamedMethods) != 1 || v.BlamedMethods[0] != incID {
		t.Errorf("blamed = %v, want [inc]", v.BlamedMethods)
	}
}

func TestSerializedIncrementNoViolation(t *testing.T) {
	// Same program, serial interleaving: t0 completes before t1 starts.
	prog, _, atomic := buildRacyIncrement()
	script := []vm.ThreadID{0, 0, 0, 1, 1, 1}
	c := runWith(t, prog, vm.NewScripted(script, false), atomic, Options{})
	if n := len(c.Violations()); n != 0 {
		t.Errorf("serial execution reported %d violations", n)
	}
}

func TestProperLockingNoViolation(t *testing.T) {
	b := vm.NewBuilder("locked-inc")
	lk := b.Object()
	o := b.Object()
	inc := b.Method("inc")
	inc.Acquire(lk).Read(o, 0).Write(o, 0).Release(lk)
	m0 := b.Method("main0")
	m0.CallN(inc, 20)
	m1 := b.Method("main1")
	m1.CallN(inc, 20)
	b.Thread(m0)
	b.Thread(m1)
	prog := b.MustBuild()
	incID := prog.MethodByName("inc").ID
	atomic := func(m vm.MethodID) bool { return m == incID }
	for seed := int64(0); seed < 8; seed++ {
		c := runWith(t, prog, vm.NewRandom(seed), atomic, Options{})
		if n := len(c.Violations()); n != 0 {
			t.Errorf("seed %d: locked increment reported %d violations", seed, n)
		}
	}
}

func TestLockReleaseInMiddleViolation(t *testing.T) {
	// An atomic method that releases and reacquires the lock around two
	// halves of an update is not serializable when another thread's full
	// update interleaves: detected via data dependences on the counter.
	b := vm.NewBuilder("split-lock")
	lk := b.Object()
	o := b.Object()
	split := b.Method("split")
	split.Acquire(lk).Read(o, 0).Release(lk).Acquire(lk).Write(o, 0).Release(lk)
	whole := b.Method("whole")
	whole.Acquire(lk).Read(o, 0).Write(o, 0).Release(lk)
	m0 := b.Method("main0")
	m0.Call(split)
	m1 := b.Method("main1")
	m1.Call(whole)
	b.Thread(m0)
	b.Thread(m1)
	prog := b.MustBuild()
	atomic := func(m vm.MethodID) bool {
		n := prog.Methods[m].Name
		return n == "split" || n == "whole"
	}
	// t0: call, acq, rd, rel; t1: call, acq, rd, wr, rel; t0: acq, wr, rel.
	script := []vm.ThreadID{0, 0, 0, 0, 1, 1, 1, 1, 1, 0, 0, 0}
	c := runWith(t, prog, vm.NewScripted(script, true), atomic, Options{})
	if len(c.Violations()) == 0 {
		t.Fatal("split-lock interleaving must violate atomicity")
	}
	splitID := prog.MethodByName("split").ID
	found := false
	for _, v := range c.Violations() {
		for _, m := range v.BlamedMethods {
			if m == splitID {
				found = true
			}
		}
	}
	if !found {
		t.Error("split (the transaction completing the cycle) should be blamed")
	}
}

func TestUnaryTransactionInCycle(t *testing.T) {
	// t1's non-transactional write lands between t0's atomic read and
	// write: the cycle involves a unary transaction, and only the atomic
	// method can be blamed.
	b := vm.NewBuilder("unary-cycle")
	o := b.Object()
	atomicRW := b.Method("atomicRW")
	atomicRW.Read(o, 0).Write(o, 0)
	m0 := b.Method("main0")
	m0.Call(atomicRW)
	m1 := b.Method("main1")
	m1.Read(o, 0).Write(o, 0) // non-transactional
	b.Thread(m0)
	b.Thread(m1)
	prog := b.MustBuild()
	atomic := func(m vm.MethodID) bool { return prog.Methods[m].Name == "atomicRW" }
	script := []vm.ThreadID{0, 0, 1, 1, 0} // t0 call+rd, t1 rd+wr, t0 wr
	c := runWith(t, prog, vm.NewScripted(script, true), atomic, Options{})
	if len(c.Violations()) == 0 {
		t.Fatal("expected unary-involved violation")
	}
	v := c.Violations()[0]
	var sawUnary bool
	for _, tx := range v.Cycle {
		if tx.Unary {
			sawUnary = true
		}
	}
	if !sawUnary {
		t.Error("cycle should contain a unary transaction")
	}
	if len(v.BlamedMethods) != 1 || prog.Methods[v.BlamedMethods[0]].Name != "atomicRW" {
		t.Errorf("blamed methods = %v", v.BlamedMethods)
	}
}

func TestWriteReadDependenceEdge(t *testing.T) {
	b := vm.NewBuilder("wr-rd")
	o := b.Object()
	w := b.Method("w")
	w.Write(o, 0)
	r := b.Method("r")
	r.Read(o, 0)
	b.Thread(w)
	b.Thread(r)
	prog := b.MustBuild()
	script := []vm.ThreadID{0, 1}
	c := runWith(t, prog, vm.NewScripted(script, false), nil, Options{})
	if c.Stats().EdgesAdded == 0 {
		t.Error("write-read dependence should add an edge")
	}
	if len(c.Violations()) != 0 {
		t.Error("one-way dependence is not a cycle")
	}
}

func TestUnsoundVariantSameViolationsCheaper(t *testing.T) {
	// The unsound variant skips synchronization when the current
	// transaction is already the last reader/writer, so give each
	// transaction repeated accesses to the same field.
	b := vm.NewBuilder("racy-inc-repeat")
	o := b.Object()
	inc := b.Method("inc")
	inc.Read(o, 0).Read(o, 0).Read(o, 0).Write(o, 0).Write(o, 0)
	m0 := b.Method("main0")
	m0.Call(inc)
	m1 := b.Method("main1")
	m1.Call(inc)
	b.Thread(m0)
	b.Thread(m1)
	prog := b.MustBuild()
	incID := prog.MethodByName("inc").ID
	atomic := func(m vm.MethodID) bool { return m == incID }
	script := []vm.ThreadID{0, 1, 0, 0, 0, 1, 1, 1, 1, 1, 0, 0}

	run := func(unsound bool) (int, cost.Units) {
		meter := cost.NewMeter(cost.Default())
		c := NewChecker(prog, meter, Options{Unsound: unsound})
		_, err := vm.NewExec(prog, vm.Config{
			Sched: vm.NewScripted(script, false), Inst: c, Atomic: atomic, Meter: meter,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		if c.Stats().InstrumentedAccesses == 0 {
			t.Fatal("nothing instrumented")
		}
		if unsound && c.Stats().SyncFastSkips == 0 {
			t.Error("unsound variant should skip sync on repeated accesses")
		}
		return len(c.Violations()), meter.Total()
	}
	nSound, costSound := run(false)
	nUnsound, costUnsound := run(true)
	if nSound != nUnsound {
		t.Errorf("deterministic substrate: sound %d vs unsound %d violations", nSound, nUnsound)
	}
	if costUnsound >= costSound {
		t.Errorf("unsound variant should be cheaper: %d vs %d", costUnsound, costSound)
	}
}

func TestFilterSkipsUnmonitoredTransactions(t *testing.T) {
	prog, script, atomic := buildRacyIncrement()
	c := NewChecker(prog, nil, Options{Filter: &txn.Filter{}}) // selects nothing
	_, err := vm.NewExec(prog, vm.Config{
		Sched: vm.NewScripted(script, true), Inst: c, Atomic: atomic,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Violations()) != 0 {
		t.Error("empty filter must suppress all detection")
	}
	if c.Stats().InstrumentedAccesses != 0 {
		t.Errorf("instrumented %d accesses with empty filter", c.Stats().InstrumentedAccesses)
	}
}

func TestFilterSelectedMethodStillDetected(t *testing.T) {
	prog, script, atomic := buildRacyIncrement()
	incID := prog.MethodByName("inc").ID
	f := &txn.Filter{Methods: map[vm.MethodID]bool{incID: true}, Unary: true}
	c := NewChecker(prog, nil, Options{Filter: f})
	_, err := vm.NewExec(prog, vm.Config{
		Sched: vm.NewScripted(script, true), Inst: c, Atomic: atomic,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Violations()) == 0 {
		t.Error("selected method's violation must still be found")
	}
}

func TestArraysSkippedByDefault(t *testing.T) {
	b := vm.NewBuilder("arr")
	arr := b.Array(4)
	m0 := b.Method("m0")
	m0.ArrayWrite(arr, 0)
	m1 := b.Method("m1")
	m1.ArrayRead(arr, 0)
	b.Thread(m0)
	b.Thread(m1)
	prog := b.MustBuild()
	c := runWith(t, prog, vm.NewScripted([]vm.ThreadID{0, 1}, false), nil, Options{})
	// Only the 4 thread-handle sync accesses are instrumented.
	if got := c.Stats().InstrumentedAccesses; got != 4 {
		t.Errorf("instrumented = %d, want 4 (sync only)", got)
	}
}

func TestArrayConflationAddsEdges(t *testing.T) {
	b := vm.NewBuilder("arr2")
	arr := b.Array(4)
	m0 := b.Method("m0")
	m0.ArrayWrite(arr, 0)
	m1 := b.Method("m1")
	m1.ArrayRead(arr, 3) // different element; conflation still sees a dep
	b.Thread(m0)
	b.Thread(m1)
	prog := b.MustBuild()
	c := runWith(t, prog, vm.NewScripted([]vm.ThreadID{0, 1}, false), nil,
		Options{InstrumentArrays: true, DisableCycleDetection: true})
	if c.Stats().EdgesAdded == 0 {
		t.Error("conflated array metadata should produce an edge")
	}
	if c.Stats().CycleChecks != 0 {
		t.Error("cycle detection was disabled")
	}
}

func TestGCDoesNotBreakDetection(t *testing.T) {
	prog, script, atomic := buildRacyIncrement()
	c := NewChecker(prog, nil, Options{GCPeriod: 1})
	_, err := vm.NewExec(prog, vm.Config{
		Sched: vm.NewScripted(script, true), Inst: c, Atomic: atomic,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Violations()) == 0 {
		t.Error("violation must survive aggressive collection")
	}
}

func TestManyThreadsManyViolations(t *testing.T) {
	// Four threads hammer one counter atomically without locks under a
	// random scheduler: expect at least one violation across seeds.
	b := vm.NewBuilder("hammer")
	o := b.Object()
	inc := b.Method("inc")
	inc.Read(o, 0).Compute(3).Write(o, 0)
	mains := make([]*vm.MethodBuilder, 4)
	for i := range mains {
		mains[i] = b.Method("main" + string(rune('0'+i)))
		mains[i].CallN(inc, 10)
		b.Thread(mains[i])
	}
	prog := b.MustBuild()
	atomic := func(m vm.MethodID) bool { return prog.Methods[m].Name == "inc" }
	total := 0
	for seed := int64(0); seed < 5; seed++ {
		c := runWith(t, prog, vm.NewRandom(seed), atomic, Options{})
		total += len(c.Violations())
	}
	if total == 0 {
		t.Error("racy hammering should produce violations under some seed")
	}
}

func TestStatsPopulated(t *testing.T) {
	prog, script, atomic := buildRacyIncrement()
	c := runWith(t, prog, vm.NewScripted(script, true), atomic, Options{})
	st := c.Stats()
	if st.InstrumentedAccesses == 0 || st.EdgesAdded == 0 || st.CycleChecks == 0 {
		t.Errorf("stats look empty: %+v", st)
	}
	if c.TxnStats().RegularTxns != 2 {
		t.Errorf("regular txns = %d, want 2", c.TxnStats().RegularTxns)
	}
}

// TestIncrementalCycleEngineAgrees: the Pearce–Kelly hybrid must find
// exactly what the DFS engine finds, on racy and clean programs alike.
func TestIncrementalCycleEngineAgrees(t *testing.T) {
	prog, script, atomic := buildRacyIncrement()
	dfs := runWith(t, prog, vm.NewScripted(script, true), atomic, Options{})
	inc := runWith(t, prog, vm.NewScripted(script, true), atomic, Options{IncrementalCycles: true})
	if len(dfs.Violations()) != len(inc.Violations()) {
		t.Errorf("dfs %d vs incremental %d violations",
			len(dfs.Violations()), len(inc.Violations()))
	}
	if len(inc.Violations()) == 0 {
		t.Fatal("the racy interleaving must be found")
	}
	if inc.Violations()[0].BlamedMethods[0] != dfs.Violations()[0].BlamedMethods[0] {
		t.Error("blame must agree")
	}
}

func TestIncrementalCycleEngineCleanProgram(t *testing.T) {
	b := vm.NewBuilder("clean")
	lk := b.Object()
	o := b.Object()
	inc := b.Method("inc")
	inc.Acquire(lk).Read(o, 0).Write(o, 0).Release(lk)
	m0 := b.Method("main0")
	m0.CallN(inc, 25)
	m1 := b.Method("main1")
	m1.CallN(inc, 25)
	b.Thread(m0)
	b.Thread(m1)
	prog := b.MustBuild()
	incID := prog.MethodByName("inc").ID
	atomic := func(m vm.MethodID) bool { return m == incID }
	for seed := int64(0); seed < 6; seed++ {
		c := runWith(t, prog, vm.NewRandom(seed), atomic, Options{IncrementalCycles: true})
		if len(c.Violations()) != 0 {
			t.Errorf("seed %d: clean program reported %d violations", seed, len(c.Violations()))
		}
	}
}
