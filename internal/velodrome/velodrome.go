// Package velodrome implements the Velodrome sound and precise dynamic
// conflict-serializability checker (Flanagan, Freund, Yi — PLDI 2008), the
// baseline the paper compares against (paper §2, §4 "Velodrome
// implementation").
//
// Velodrome tracks, for every field, the last transaction to write it and
// the last transaction of each thread to read it since that write. At every
// access it adds any implied cross-thread dependence edges to a transaction
// dependence graph and immediately checks for a cycle; a cycle is a sound
// and precise witness of a conflict-serializability violation. To keep the
// analysis and the access atomic in a racy program, the real implementation
// locks a metadata word around every access — the dominant cost the paper
// measures (82% of overhead) — which our cost model charges as
// Model.VeloSync per access.
//
// The unsound variant (paper §5.3) skips synchronization when the metadata
// would not change (current transaction already last writer/reader). In our
// deterministic interpreter the variant cannot actually miss dependences
// (every step is atomic), so it differs only in cost — precisely the point
// of comparing against it.
package velodrome

import (
	"doublechecker/internal/cost"
	"doublechecker/internal/graph"
	"doublechecker/internal/obs"
	"doublechecker/internal/telemetry"
	"doublechecker/internal/txn"
	"doublechecker/internal/vm"
)

// fieldKey identifies one metadata cell. Synchronization accesses use the
// object's dedicated header word (paper §4), modelled by the sync flag.
type fieldKey struct {
	obj   vm.ObjectID
	field vm.FieldID
	sync  bool
}

// metadata is the per-field last-access state.
type metadata struct {
	lastWrite *txn.Txn
	lastReads map[vm.ThreadID]*txn.Txn
}

// Stats counts checker activity.
type Stats struct {
	InstrumentedAccesses uint64
	EdgesAdded           uint64
	CycleChecks          uint64
	CycleNodesVisited    uint64
	SyncFastSkips        uint64 // unsound variant: accesses that skipped sync
	ViolationsDynamic    uint64
}

// Options configures a Checker.
type Options struct {
	// Unsound enables the no-sync-when-unchanged variant (§5.3).
	Unsound bool
	// InstrumentArrays includes array element accesses, conflating all
	// elements of an array in one metadata cell (§5.4).
	InstrumentArrays bool
	// DisableCycleDetection turns off online cycle checks for the §5.4
	// array experiment (element conflation makes detection imprecise, so
	// the paper turns it off there). The zero value detects cycles.
	DisableCycleDetection bool
	// Filter restricts instrumentation (used when Velodrome serves as the
	// second run of multi-run mode, §5.3). nil instruments everything.
	Filter *txn.Filter
	// GCPeriod runs transaction-graph collection every N instrumented
	// accesses; 0 uses the default (8192).
	GCPeriod uint64
	// IncrementalCycles swaps the per-edge DFS cycle check for an
	// incremental topological order (Pearce–Kelly; internal/graph). The
	// hybrid is exact: while no violation has been found the maintained
	// DAG equals the dependence graph, so its verdicts are sound and
	// precise; after the first violation the checker falls back to DFS
	// (cyclic graphs have no topological order). An extension beyond the
	// paper, compared in the benchmarks.
	IncrementalCycles bool
	// Telemetry, when non-nil, receives live Velodrome metrics (metadata
	// updates, edges, cycle checks, sync fast skips) and the velo.gc span.
	Telemetry *telemetry.Registry
	// TraceSpan is the request-scoped parent for this checker's obs spans
	// (GC passes); the zero Span disables them.
	TraceSpan obs.Span
}

// tel holds pre-resolved telemetry handles so the barrier pays a nil check
// plus an atomic op, never a registry map lookup.
type tel struct {
	reg             *telemetry.Registry
	metadataUpdates *telemetry.Counter
	edges           *telemetry.Counter
	cycleChecks     *telemetry.Counter
	syncFastSkips   *telemetry.Counter
}

func newTel(reg *telemetry.Registry) *tel {
	if reg == nil {
		return nil
	}
	return &tel{
		reg:             reg,
		metadataUpdates: reg.Counter(telemetry.VeloMetadataUpdates),
		edges:           reg.Counter(telemetry.VeloEdges),
		cycleChecks:     reg.Counter(telemetry.VeloCycleChecks),
		syncFastSkips:   reg.Counter(telemetry.VeloSyncFastSkips),
	}
}

// Checker is a Velodrome instance; it implements vm.Instrumentation.
type Checker struct {
	vm.NopInst
	prog  *vm.Program
	meter *cost.Meter
	opts  Options
	mgr   *txn.Manager

	meta map[fieldKey]*metadata

	// skipping tracks threads currently inside an unmonitored regular
	// transaction (filtered out by opts.Filter).
	skipping map[vm.ThreadID]bool

	exec       vm.ExecView
	violations []txn.Violation
	stats      Stats
	sinceGC    uint64

	inc      *graph.IncrementalDAG[*txn.Txn]
	incDirty bool // a cycle exists: the incremental order is no longer usable

	tel *tel
}

// NewChecker returns a Velodrome checker. meter may be nil.
func NewChecker(prog *vm.Program, meter *cost.Meter, opts Options) *Checker {
	c := &Checker{
		prog:     prog,
		meter:    meter,
		opts:     opts,
		meta:     make(map[fieldKey]*metadata),
		skipping: make(map[vm.ThreadID]bool),
		tel:      newTel(opts.Telemetry),
	}
	if c.opts.GCPeriod == 0 {
		c.opts.GCPeriod = 8192
	}
	c.mgr = txn.NewManager(false, nil, meter)
	c.attachIncremental()
	return c
}

// attachIncremental (re)creates the incremental cycle engine and mirrors
// the manager's intra-thread edges into it (cycles can route through
// program order, so the DAG needs every edge, not just the cross edges the
// checker adds itself).
func (c *Checker) attachIncremental() {
	if !c.opts.IncrementalCycles {
		return
	}
	c.inc = graph.NewIncrementalDAG[*txn.Txn]()
	c.incDirty = false
	c.mgr.OnIntraEdge(func(src, dst *txn.Txn) {
		if !c.incDirty {
			c.inc.AddEdge(src, dst) // dst is brand new: can never close a cycle
		}
	})
}

// Violations returns the dynamic violations detected, in detection order.
func (c *Checker) Violations() []txn.Violation { return c.violations }

// Stats returns checker counters.
func (c *Checker) Stats() Stats { return c.stats }

// TxnStats returns the underlying transaction-manager counters.
func (c *Checker) TxnStats() txn.Stats { return c.mgr.Stats() }

// ProgramStart implements vm.Instrumentation.
func (c *Checker) ProgramStart(e vm.ExecView) {
	c.exec = e
	c.mgr = txn.NewManager(false, e.Now, c.meter)
	c.attachIncremental()
}

// TxBegin implements vm.Instrumentation.
func (c *Checker) TxBegin(t vm.ThreadID, m vm.MethodID) {
	if !c.opts.Filter.TxSelected(m) {
		c.skipping[t] = true
		return
	}
	c.mgr.BeginRegular(t, m)
}

// TxEnd implements vm.Instrumentation.
func (c *Checker) TxEnd(t vm.ThreadID, m vm.MethodID) {
	if c.skipping[t] {
		delete(c.skipping, t)
		return
	}
	c.mgr.EndRegular(t)
}

// ThreadExit implements vm.Instrumentation.
func (c *Checker) ThreadExit(t vm.ThreadID) { c.mgr.ThreadExit(t) }

// Access implements vm.Instrumentation: the Velodrome barrier.
func (c *Checker) Access(a vm.Access) {
	if c.skipping[a.Thread] {
		return
	}
	inTx := c.exec != nil && c.exec.InTx(a.Thread)
	if !inTx && !c.opts.Filter.UnarySelected() {
		return
	}
	var key fieldKey
	switch a.Class {
	case vm.ClassArray:
		if !c.opts.InstrumentArrays {
			return
		}
		// Array-level metadata: conflate all elements (paper §5.4).
		key = fieldKey{obj: a.Obj, field: 0, sync: false}
	case vm.ClassSync:
		key = fieldKey{obj: a.Obj, field: a.Field, sync: true}
	default:
		key = fieldKey{obj: a.Obj, field: a.Field, sync: false}
	}

	c.stats.InstrumentedAccesses++
	md := c.meta[key]
	if md == nil {
		md = &metadata{lastReads: make(map[vm.ThreadID]*txn.Txn)}
		c.meta[key] = md
	}
	// If this access receives an incoming cross-thread edge, a merged unary
	// transaction must be cut first (see txn.Manager.EdgeSink).
	var cur *txn.Txn
	if c.incomingEdge(md, a) {
		cur = c.mgr.EdgeSink(a.Thread)
	} else {
		cur = c.mgr.Current(a.Thread)
	}

	// Analysis-access atomicity cost: the sound checker always pays the
	// metadata lock; the unsound variant pays it only when the metadata
	// actually changes.
	model := c.model()
	changes := c.metadataChanges(md, cur, a)
	if c.opts.Unsound && !changes {
		c.charge(model.VeloNoSyncPath)
		c.stats.SyncFastSkips++
		if c.tel != nil {
			c.tel.syncFastSkips.Inc()
		}
	} else {
		c.charge(model.VeloSync)
	}

	if a.Write {
		c.write(md, cur, a.Seq)
	} else {
		c.read(md, cur, a.Seq)
	}
	c.mgr.Record(a.Thread, a.Obj, a.Field, a.Write, a.Class == vm.ClassSync, a.Seq)

	c.sinceGC++
	if c.sinceGC >= c.opts.GCPeriod {
		c.sinceGC = 0
		c.collect()
	}
}

// metadataChanges mirrors the unsound variant's check (§5.3: skip
// synchronization when "the current transaction is already the last writer
// or reader"): a read whose last-reader entry is already cur, or a write
// whose last writer is cur with no foreign readers, leaves the metadata
// semantically unchanged.
func (c *Checker) metadataChanges(md *metadata, cur *txn.Txn, a vm.Access) bool {
	if a.Write {
		if md.lastWrite != cur {
			return true
		}
		for t, rd := range md.lastReads {
			if t != a.Thread || rd != cur {
				return true
			}
		}
		return false
	}
	return md.lastReads[a.Thread] != cur
}

// incomingEdge reports whether this access will receive a cross-thread
// dependence edge (Figure 5's edge conditions).
func (c *Checker) incomingEdge(md *metadata, a vm.Access) bool {
	if md.lastWrite != nil && md.lastWrite.Thread != a.Thread {
		return true
	}
	if !a.Write {
		return false
	}
	for t := range md.lastReads {
		if t != a.Thread {
			return true
		}
	}
	return false
}

// read applies the READ rule of Figure 5.
func (c *Checker) read(md *metadata, cur *txn.Txn, seq uint64) {
	c.charge(c.model().VeloMetadata)
	if c.tel != nil {
		c.tel.metadataUpdates.Inc()
	}
	if md.lastWrite != nil && md.lastWrite.Thread != cur.Thread {
		c.addEdge(md.lastWrite, cur, seq)
	}
	md.lastReads[cur.Thread] = cur
}

// write applies the WRITE rule of Figure 5.
func (c *Checker) write(md *metadata, cur *txn.Txn, seq uint64) {
	c.charge(c.model().VeloMetadata)
	if c.tel != nil {
		c.tel.metadataUpdates.Inc()
	}
	if md.lastWrite != nil && md.lastWrite.Thread != cur.Thread {
		c.addEdge(md.lastWrite, cur, seq)
	}
	for t, rd := range md.lastReads {
		if t != cur.Thread {
			c.addEdge(rd, cur, seq)
		}
	}
	md.lastWrite = cur
	for t := range md.lastReads {
		delete(md.lastReads, t)
	}
}

// addEdge inserts a cross-thread edge and immediately checks for a cycle
// through it (Velodrome detects cycles online, per edge).
func (c *Checker) addEdge(src, dst *txn.Txn, seq uint64) {
	if src == dst || src.EdgeTo(dst) != nil {
		return
	}
	c.mgr.AddCrossEdge(src, dst)
	c.stats.EdgesAdded++
	if c.tel != nil {
		c.tel.edges.Inc()
	}
	c.charge(c.model().VeloEdge)
	if c.opts.DisableCycleDetection {
		return
	}
	c.stats.CycleChecks++
	if c.tel != nil {
		c.tel.cycleChecks.Inc()
	}
	if c.inc != nil && !c.incDirty {
		// Incremental engine: exact while the dependence graph is acyclic.
		before := c.inc.Stats().Visited
		closed := c.inc.AddEdge(src, dst)
		visited := c.inc.Stats().Visited - before + 1
		c.stats.CycleNodesVisited += visited
		c.charge(c.model().VeloCycleNode * cost.Units(visited))
		if !closed {
			return
		}
		// A real cycle exists; recover the path for reporting and fall
		// back to DFS from here on.
		c.incDirty = true
	}
	// The new edge src->dst closes a cycle iff dst reaches src; the
	// returned path dst -> ... -> src plus the new edge is the cycle.
	succ := func(t *txn.Txn) []*txn.Txn {
		c.stats.CycleNodesVisited++
		c.charge(c.model().VeloCycleNode)
		return t.Succs()
	}
	if path := graph.FindPath(dst, src, succ); path != nil {
		c.stats.ViolationsDynamic++
		c.violations = append(c.violations, txn.NewViolation(path, seq))
	}
}

// collect garbage-collects transactions unreachable from the metadata and
// thread-current roots.
func (c *Checker) collect() {
	span := c.opts.Telemetry.StartSpan(telemetry.SpanVeloGC, c.meter)
	defer span.End()
	osp := c.opts.TraceSpan.Child(telemetry.SpanVeloGC)
	defer osp.End()
	var roots []*txn.Txn
	for _, md := range c.meta {
		if md.lastWrite != nil {
			roots = append(roots, md.lastWrite)
		}
		for _, rd := range md.lastReads {
			roots = append(roots, rd)
		}
	}
	c.mgr.Collect(roots)
}

func (c *Checker) charge(u cost.Units) {
	if c.meter != nil {
		c.meter.Charge(u)
	}
}

func (c *Checker) model() cost.Model {
	if c.meter != nil {
		return c.meter.Model()
	}
	return cost.Model{}
}
