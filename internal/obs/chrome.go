package obs

import (
	"bytes"
	"encoding/json"
	"sort"
	"time"
)

// chromeEvent is one Chrome trace-event. We emit only complete ("X")
// duration events plus "M" metadata naming the process — the simplest
// shape Perfetto and chrome://tracing both load.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds from trace start
	Dur  float64        `json:"dur,omitempty"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level export shape.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Chrome exports the trace as Chrome trace-event JSON. Spans become "X"
// (complete) events; spans still open — a panic unwound past their End —
// are clamped to the export instant so the file stays loadable. Lanes
// ("tid"s) are assigned greedily: a span lands on the first lane whose
// open intervals all enclose it, so parent/child spans nest on one lane
// and genuinely concurrent spans (PCD pool workers, coalesced waiters)
// spread onto their own lanes — the timeline reads like a thread view.
func (t *Trace) Chrome() []byte {
	if t == nil {
		return []byte("{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n")
	}
	spans := t.Snapshot()
	now := time.Now()

	// Sort by start time; ties broken longest-first so an enclosing span
	// claims its lane before its children.
	sort.SliceStable(spans, func(i, j int) bool {
		si, sj := spans[i], spans[j]
		if !si.Start.Equal(sj.Start) {
			return si.Start.Before(sj.Start)
		}
		return endOr(si, now).After(endOr(sj, now))
	})

	// Greedy lane assignment. Each lane keeps a stack of currently-open
	// intervals; a span fits a lane if, after popping intervals that ended
	// before it starts, the lane is empty or its innermost interval
	// encloses the span.
	type lane struct{ open []time.Time } // stack of open-interval end times
	var lanes []*lane
	laneOf := make(map[uint64]int, len(spans))
	for _, sp := range spans {
		end := endOr(sp, now)
		placed := false
		for li, l := range lanes {
			for len(l.open) > 0 && !l.open[len(l.open)-1].After(sp.Start) {
				l.open = l.open[:len(l.open)-1]
			}
			if len(l.open) == 0 || !l.open[len(l.open)-1].Before(end) {
				l.open = append(l.open, end)
				laneOf[sp.ID] = li
				placed = true
				break
			}
		}
		if !placed {
			lanes = append(lanes, &lane{open: []time.Time{end}})
			laneOf[sp.ID] = len(lanes) - 1
		}
	}

	events := make([]chromeEvent, 0, len(spans)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "doublechecker trace " + t.id},
	})
	for _, sp := range spans {
		args := map[string]any{
			"trace_id": t.id,
			"span_id":  sp.ID,
			"parent":   sp.Parent,
		}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Val
		}
		if sp.End.IsZero() {
			args["unfinished"] = true
		}
		events = append(events, chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			TS:   float64(sp.Start.Sub(t.start)) / float64(time.Microsecond),
			Dur:  durMicros(sp, now),
			PID:  1,
			TID:  laneOf[sp.ID],
			Args: args,
		})
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"}); err != nil {
		panic("obs: chrome encode: " + err.Error())
	}
	return buf.Bytes()
}

func endOr(sp SpanRecord, now time.Time) time.Time {
	if sp.End.IsZero() {
		return now
	}
	return sp.End
}

func durMicros(sp SpanRecord, now time.Time) float64 {
	d := endOr(sp, now).Sub(sp.Start)
	if d < 0 {
		d = 0
	}
	us := float64(d) / float64(time.Microsecond)
	if us == 0 {
		// Zero-duration X events render as invisible slivers; give every
		// span a minimum visible width of a tenth of a microsecond.
		us = 0.1
	}
	return us
}
