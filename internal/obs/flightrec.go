package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"time"
)

// Event kinds recorded in the flight recorder.
const (
	EventSpan       = "span"       // a trace span ended
	EventLog        = "log"        // a structured log line was emitted
	EventPanic      = "panic"      // a supervised run panicked into quarantine
	EventQuarantine = "quarantine" // the result store quarantined an artifact
)

// Event is one flight-recorder entry. Events are small and self-contained
// so a snapshot is meaningful without the process that produced it.
type Event struct {
	Time     time.Time `json:"time"`
	Kind     string    `json:"kind"`
	Name     string    `json:"name"`
	Msg      string    `json:"msg,omitempty"`
	TraceID  string    `json:"trace_id,omitempty"`
	SpanID   uint64    `json:"span_id,omitempty"`
	DurNanos int64     `json:"dur_ns,omitempty"`
}

// DefaultFlightRecorderSize is the default ring capacity: enough to hold
// the full span+log history of several requests, small enough that a
// snapshot embedded in a quarantine record stays readable.
const DefaultFlightRecorderSize = 256

// FlightRecorder is a fixed-size ring buffer of recent observability
// events. It is the "what was the process doing just before this" answer:
// snapshotted into panic-quarantine records, store quarantine events, and
// served at /debug/flightrecorder. Writes take one short mutex-protected
// critical section (a slot store and two integer bumps), cheap enough to
// sit on every span end and log line.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []Event
	next  int    // slot the next event lands in
	total uint64 // events ever added, including overwritten ones
}

// NewFlightRecorder returns a recorder retaining the last n events
// (DefaultFlightRecorderSize if n <= 0).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightRecorderSize
	}
	return &FlightRecorder{buf: make([]Event, 0, n)}
}

// Add records an event, stamping its time if unset. Nil-safe.
func (r *FlightRecorder) Add(e Event) {
	if r == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Total reports how many events were ever added (retained or overwritten).
func (r *FlightRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the retained events oldest-first.
func (r *FlightRecorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if r.total > uint64(len(r.buf)) {
		// Ring has wrapped: oldest event is at next.
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// flightSnapshot is the JSON shape of a recorder snapshot.
type flightSnapshot struct {
	Total    uint64  `json:"total_events"`
	Retained int     `json:"retained"`
	Events   []Event `json:"events"`
}

// JSON renders the snapshot as indented JSON, oldest event first.
// Nil-safe: a nil recorder renders an empty snapshot.
func (r *FlightRecorder) JSON() []byte {
	snap := flightSnapshot{
		Total:  r.Total(),
		Events: r.Snapshot(),
	}
	snap.Retained = len(snap.Events)
	if snap.Events == nil {
		snap.Events = []Event{}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		panic("obs: flight recorder encode: " + err.Error())
	}
	return buf.Bytes()
}
