package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// wellFormed asserts the span-tree invariants the tracer promises: every
// non-root span's parent exists and started no later than the child; every
// ended span has End >= Start; IDs are unique.
func wellFormed(t *testing.T, spans []SpanRecord) {
	t.Helper()
	byID := make(map[uint64]SpanRecord, len(spans))
	for _, sp := range spans {
		if _, dup := byID[sp.ID]; dup {
			t.Fatalf("duplicate span ID %d", sp.ID)
		}
		byID[sp.ID] = sp
	}
	for _, sp := range spans {
		if !sp.End.IsZero() && sp.End.Before(sp.Start) {
			t.Fatalf("span %d %q ends before it starts", sp.ID, sp.Name)
		}
		if sp.Parent == 0 {
			if sp.ID != 1 {
				t.Fatalf("span %d %q is an orphan (parent 0, not root)", sp.ID, sp.Name)
			}
			continue
		}
		parent, ok := byID[sp.Parent]
		if !ok {
			t.Fatalf("span %d %q has unknown parent %d", sp.ID, sp.Name, sp.Parent)
		}
		if parent.Start.After(sp.Start) {
			t.Fatalf("span %d %q starts before its parent %d", sp.ID, sp.Name, sp.Parent)
		}
	}
}

func TestSpanTreeBasic(t *testing.T) {
	tr := NewTrace(TraceConfig{Name: "root"})
	root := tr.Root()
	if !root.Live() || root.SpanID() != 1 {
		t.Fatalf("root span: live=%v id=%d", root.Live(), root.SpanID())
	}
	a := root.Child("a")
	b := a.Child("b")
	b.SetInt("cost", 42)
	b.SetStr("phase", "icd")
	b.End()
	a.End()
	tr.Finish()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	wellFormed(t, spans)
	var bRec *SpanRecord
	for i := range spans {
		if spans[i].Name == "b" {
			bRec = &spans[i]
		}
	}
	if bRec == nil || len(bRec.Attrs) != 2 || bRec.Attrs[0].Val != int64(42) {
		t.Fatalf("span b attrs wrong: %+v", bRec)
	}
	if bRec.Parent != 2 {
		t.Fatalf("span b parent = %d, want 2", bRec.Parent)
	}
}

func TestStartSpanContextPropagation(t *testing.T) {
	tr := NewTrace(TraceConfig{Name: "req"})
	ctx := ContextWithSpan(context.Background(), tr.Root())
	child, ctx2 := StartSpan(ctx, "stage")
	if !child.Live() {
		t.Fatal("child not live with trace in context")
	}
	grand, _ := StartSpan(ctx2, "substage")
	grand.End()
	child.End()
	tr.Finish()
	spans := tr.Snapshot()
	wellFormed(t, spans)
	if spans[2].Parent != spans[1].ID {
		t.Fatalf("substage parent = %d, want %d", spans[2].Parent, spans[1].ID)
	}
}

func TestDisabledPathZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		sp, c := StartSpan(ctx, "nothing")
		sp.SetInt("k", 1)
		child := sp.Child("child")
		child.End()
		sp.End()
		_ = c
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer path allocates %.1f per op, want 0", allocs)
	}
	var l *Logger
	allocs = testing.AllocsPerRun(100, func() {
		l.Info("never")
		l.Sample("k", 10).Debug("never")
	})
	if allocs != 0 {
		t.Fatalf("nil logger allocates %.1f per op, want 0", allocs)
	}
}

func TestConcurrentSpansWellFormed(t *testing.T) {
	tr := NewTrace(TraceConfig{Name: "root"})
	root := tr.Root()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := root.Child(fmt.Sprintf("worker.%d", w))
			for j := 0; j < 50; j++ {
				job := worker.Child("job")
				job.SetInt("n", int64(j))
				job.End()
			}
			worker.End()
		}(w)
	}
	wg.Wait()
	tr.Finish()
	spans := tr.Snapshot()
	if len(spans) != 1+8+8*50 {
		t.Fatalf("got %d spans, want %d", len(spans), 1+8+8*50)
	}
	wellFormed(t, spans)
	for _, sp := range spans {
		if sp.End.IsZero() {
			t.Fatalf("span %d %q left open", sp.ID, sp.Name)
		}
	}
}

func TestSpanLimitDrops(t *testing.T) {
	tr := NewTrace(TraceConfig{Name: "root", Limit: 4})
	root := tr.Root()
	for i := 0; i < 10; i++ {
		sp := root.Child("extra")
		sp.End() // no-op past the limit
	}
	if got := len(tr.Snapshot()); got != 4 {
		t.Fatalf("retained %d spans, want 4", got)
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", tr.Dropped())
	}
	// StartSpan surfaces the drop as a zero span, not a broken handle.
	ctx := ContextWithSpan(context.Background(), root)
	sp, ctx2 := StartSpan(ctx, "over")
	if sp.Live() {
		t.Fatal("span past limit should be dead")
	}
	if ctx2 != ctx {
		t.Fatal("context should be unchanged when span is dropped")
	}
}

func TestChromeExport(t *testing.T) {
	tr := NewTrace(TraceConfig{Name: "root"})
	root := tr.Root()
	a := root.Child("icd.scc")
	a.SetInt("sccs", 3)
	time.Sleep(time.Millisecond)
	a.End()
	// Two deliberately concurrent children to force a second lane.
	b := root.Child("pcd.pool.worker.0")
	c := root.Child("pcd.pool.worker.1")
	time.Sleep(time.Millisecond)
	b.End()
	c.End()
	leak := root.Child("unended") // panic-path span left open
	_ = leak
	tr.Finish()

	raw := tr.Chrome()
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, raw)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	var xCount int
	lanes := map[string]int{}
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "X":
			xCount++
		default:
			t.Fatalf("unexpected phase %q (only complete X and metadata M events)", ev.Ph)
		}
		if ev.TS < 0 || ev.Dur <= 0 {
			t.Fatalf("event %q has ts=%v dur=%v", ev.Name, ev.TS, ev.Dur)
		}
		if _, ok := ev.Args["trace_id"]; !ok {
			t.Fatalf("event %q missing trace_id arg", ev.Name)
		}
		lanes[ev.Name] = ev.TID
	}
	if xCount != 5 {
		t.Fatalf("got %d X events, want 5", xCount)
	}
	if lanes["pcd.pool.worker.0"] == lanes["pcd.pool.worker.1"] {
		t.Fatal("concurrent workers share a lane; expected distinct tids")
	}
	// The unended span is clamped and flagged.
	for _, ev := range file.TraceEvents {
		if ev.Name == "unended" {
			if fl, _ := ev.Args["unfinished"].(bool); !fl {
				t.Fatal("unended span not flagged unfinished")
			}
		}
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	r := NewFlightRecorder(8)
	for i := 0; i < 20; i++ {
		r.Add(Event{Kind: EventLog, Name: "info", Msg: fmt.Sprintf("msg-%d", i)})
	}
	snap := r.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("retained %d events, want 8", len(snap))
	}
	if r.Total() != 20 {
		t.Fatalf("total = %d, want 20", r.Total())
	}
	// Oldest-first: the ring keeps the last 8 (12..19).
	for i, e := range snap {
		want := fmt.Sprintf("msg-%d", 12+i)
		if e.Msg != want {
			t.Fatalf("event %d = %q, want %q", i, e.Msg, want)
		}
	}
	var parsed flightSnapshot
	if err := json.Unmarshal(r.JSON(), &parsed); err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	if parsed.Total != 20 || parsed.Retained != 8 {
		t.Fatalf("snapshot header: %+v", parsed)
	}
}

func TestFlightRecorderPartialFill(t *testing.T) {
	r := NewFlightRecorder(16)
	r.Add(Event{Kind: EventPanic, Name: "digest", Msg: "boom"})
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != EventPanic {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].Time.IsZero() {
		t.Fatal("event time not stamped")
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(Event{Kind: EventLog, Name: "info"})
			}
		}()
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("total = %d, want 800", r.Total())
	}
	if len(r.Snapshot()) != 32 {
		t.Fatalf("retained %d, want 32", len(r.Snapshot()))
	}
}

func TestSpansFeedFlightRecorder(t *testing.T) {
	rec := NewFlightRecorder(16)
	tr := NewTrace(TraceConfig{Name: "req", Recorder: rec})
	sp := tr.Root().Child("stage")
	sp.End()
	tr.Finish()
	snap := rec.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d events, want 2 (stage end + root end)", len(snap))
	}
	if snap[0].Kind != EventSpan || snap[0].Name != "stage" || snap[0].TraceID != tr.ID() {
		t.Fatalf("first event = %+v", snap[0])
	}
}

func TestLoggerCorrelationAndSampling(t *testing.T) {
	var buf bytes.Buffer
	rec := NewFlightRecorder(16)
	l := NewLogger(&buf, slog.LevelDebug, rec)

	tr := NewTrace(TraceConfig{Name: "req"})
	ctx := ContextWithSpan(context.Background(), tr.Root())
	l.InfoCtx(ctx, "served", "status", 200)
	line := buf.String()
	if !strings.Contains(line, "trace_id="+tr.ID()) || !strings.Contains(line, "span_id=1") {
		t.Fatalf("log line missing trace correlation: %q", line)
	}
	if !strings.Contains(line, "status=200") {
		t.Fatalf("log line missing attr: %q", line)
	}

	buf.Reset()
	for i := 0; i < 10; i++ {
		l.Sample("noisy", 5).Info("sampled")
	}
	if got := strings.Count(buf.String(), "sampled"); got != 2 {
		t.Fatalf("sampling admitted %d of 10 (every 5), want 2", got)
	}

	// Levels below the handler threshold are suppressed and not recorded.
	quiet := NewLogger(&buf, slog.LevelWarn, rec)
	before := rec.Total()
	quiet.Debug("hidden")
	if rec.Total() != before {
		t.Fatal("suppressed line reached the flight recorder")
	}
}

func TestLoggerNilSafety(t *testing.T) {
	var l *Logger
	l.Info("nothing")
	l.ErrorCtx(context.Background(), "nothing")
	if l.With("k", "v") != nil {
		t.Fatal("With on nil logger should stay nil")
	}
	if l.Sample("k", 3) != nil {
		t.Fatal("Sample on nil logger should stay nil")
	}
	if l.Enabled(slog.LevelError) {
		t.Fatal("nil logger reports enabled")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo, "Warn": slog.LevelWarn,
		"warning": slog.LevelWarn, "error": slog.LevelError, "": slog.LevelInfo,
		"bogus": slog.LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Fatalf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestNilTraceSafety(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Root().Live() || tr.Snapshot() != nil || tr.Finish() != nil {
		t.Fatal("nil trace not inert")
	}
	if !bytes.Contains(tr.Chrome(), []byte("traceEvents")) {
		t.Fatal("nil trace chrome export malformed")
	}
	var rec *FlightRecorder
	rec.Add(Event{})
	if rec.Snapshot() != nil || rec.Total() != 0 {
		t.Fatal("nil recorder not inert")
	}
	if !bytes.Contains(rec.JSON(), []byte("total_events")) {
		t.Fatal("nil recorder JSON malformed")
	}
}
