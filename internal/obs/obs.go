// Package obs is the request-scoped observability layer: a causal span
// tracer, a structured logger, and a flight recorder for post-mortem
// debugging. Where internal/telemetry answers "how much did this process
// do in aggregate", obs answers "where did THIS request's time go" and
// "what was happening just before it went wrong".
//
// Everything follows the telemetry package's nil-safety contract: the
// zero Span, the nil *Trace, the nil *Logger, and the nil *FlightRecorder
// are all complete no-ops, so library code can be instrumented
// unconditionally and stays silent (and allocation-free) unless a caller
// opted in.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// DefaultSpanLimit bounds how many spans one trace retains. A golden-corpus
// replay produces tens of spans; the limit only matters for adversarial
// inputs (a trace with millions of transactions would otherwise grow a
// span per SCC detection). Past the limit new spans are counted as
// dropped and become no-ops.
const DefaultSpanLimit = 8192

// Attr is one span attribute: a cost-model unit count, an event count, or
// a small identifying string. Val is either an int64 or a string.
type Attr struct {
	Key string
	Val any
}

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Val: v} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Val: v} }

// SpanRecord is one finished (or still-open) span as retained by the
// trace. IDs are sequential within a trace; the root span is ID 1 and
// Parent 0 means "no parent".
type SpanRecord struct {
	ID     uint64
	Parent uint64
	Name   string
	Start  time.Time
	End    time.Time // zero while the span is open
	Attrs  []Attr
}

// Trace is one request's (or one CLI invocation's) span tree. Spans are
// registered at start and finalized at End under a single mutex; the
// critical sections are an append and two field stores, so contention is
// negligible next to the work being traced.
type Trace struct {
	id    string
	start time.Time

	mu      sync.Mutex
	spans   []SpanRecord
	byID    map[uint64]int // span ID -> index in spans
	nextID  uint64
	limit   int
	dropped uint64
	rec     *FlightRecorder
}

// TraceConfig configures NewTrace. The zero value is usable.
type TraceConfig struct {
	// Name names the root span (e.g. "dcserve.check", "dcheck.replay").
	Name string
	// Limit caps retained spans; 0 means DefaultSpanLimit.
	Limit int
	// Recorder, if set, receives a flight-recorder event for every span
	// that ends in this trace.
	Recorder *FlightRecorder
}

// NewTrace starts a new trace with a fresh random ID and an already-open
// root span (retrieve it with Root).
func NewTrace(cfg TraceConfig) *Trace {
	limit := cfg.Limit
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	name := cfg.Name
	if name == "" {
		name = "trace"
	}
	tr := &Trace{
		id:    newTraceID(),
		start: time.Now(),
		byID:  make(map[uint64]int),
		limit: limit,
		rec:   cfg.Recorder,
	}
	tr.startSpan(name, 0)
	return tr
}

// newTraceID returns 16 hex characters of randomness. Trace IDs only need
// to be unique within one process's retention window.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the platforms we target; fall back to
		// a fixed marker rather than panicking in an observability path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ID returns the trace's hex ID. Nil-safe: returns "" on a nil trace.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span. Nil-safe: returns the zero Span.
func (t *Trace) Root() Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, id: 1}
}

// startSpan registers a new open span and returns its handle.
func (t *Trace) startSpan(name string, parent uint64) Span {
	now := time.Now()
	t.mu.Lock()
	if len(t.spans) >= t.limit {
		t.dropped++
		t.mu.Unlock()
		return Span{}
	}
	t.nextID++
	id := t.nextID
	t.byID[id] = len(t.spans)
	t.spans = append(t.spans, SpanRecord{ID: id, Parent: parent, Name: name, Start: now})
	t.mu.Unlock()
	return Span{tr: t, id: id}
}

// Dropped reports how many spans were discarded because the trace hit its
// span limit.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot returns a copy of every retained span, in start order.
// Open spans have a zero End.
func (t *Trace) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	for i := range out {
		out[i].Attrs = append([]Attr(nil), out[i].Attrs...)
	}
	return out
}

// Finish ends the root span (if still open) and returns the trace for
// chaining. Child spans left open by a panic stay open; the Chrome
// exporter clamps them to the export instant.
func (t *Trace) Finish() *Trace {
	if t == nil {
		return nil
	}
	t.Root().End()
	return t
}

// Span is a handle on one node of a trace's span tree. It is a small
// value; copy it freely. The zero Span is a no-op: Child returns another
// zero Span, End and the attribute setters do nothing, and none of them
// allocate — this is what makes tracing free when disabled.
type Span struct {
	tr *Trace
	id uint64
}

// Live reports whether the span is actually recording. Hot paths can use
// it to skip attribute construction entirely.
func (s Span) Live() bool { return s.tr != nil }

// TraceID returns the owning trace's ID, or "" for the zero span.
func (s Span) TraceID() string { return s.tr.ID() }

// SpanID returns the span's ID within its trace, 0 for the zero span.
func (s Span) SpanID() uint64 { return s.id }

// Child starts a new span under this one. On the zero Span it returns
// the zero Span without allocating.
func (s Span) Child(name string) Span {
	if s.tr == nil {
		return Span{}
	}
	return s.tr.startSpan(name, s.id)
}

// End closes the span, stamping its end time. Ending twice keeps the
// first end. A flight-recorder event is emitted if the trace has one.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	now := time.Now()
	t := s.tr
	t.mu.Lock()
	idx, ok := t.byID[s.id]
	if !ok || !t.spans[idx].End.IsZero() {
		t.mu.Unlock()
		return
	}
	t.spans[idx].End = now
	name := t.spans[idx].Name
	dur := now.Sub(t.spans[idx].Start)
	rec := t.rec
	t.mu.Unlock()
	rec.Add(Event{Kind: EventSpan, Name: name, TraceID: t.id, SpanID: s.id, DurNanos: int64(dur)})
}

// SetInt attaches one integer attribute. Non-variadic so disabled-path
// callers pay no slice allocation.
func (s Span) SetInt(key string, v int64) {
	if s.tr == nil {
		return
	}
	s.set(Attr{Key: key, Val: v})
}

// SetStr attaches one string attribute.
func (s Span) SetStr(key, v string) {
	if s.tr == nil {
		return
	}
	s.set(Attr{Key: key, Val: v})
}

// Set attaches several attributes at once. Prefer SetInt/SetStr on paths
// that run per-event; the variadic slice here allocates.
func (s Span) Set(attrs ...Attr) {
	if s.tr == nil {
		return
	}
	s.set(attrs...)
}

func (s Span) set(attrs ...Attr) {
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	idx, ok := t.byID[s.id]
	if !ok {
		return
	}
	t.spans[idx].Attrs = append(t.spans[idx].Attrs, attrs...)
}
