package obs

import "context"

// spanKey is the context key carrying the current Span. One key carries
// both the trace and the position in its tree — a Span value holds its
// *Trace.
type spanKey struct{}

// ContextWithSpan returns a context carrying span as the current span.
// Storing the zero Span is allowed and equivalent to storing nothing.
func ContextWithSpan(ctx context.Context, span Span) context.Context {
	return context.WithValue(ctx, spanKey{}, span)
}

// SpanFromContext returns the current span, or the zero Span if the
// context carries none. The miss path performs no allocation.
func SpanFromContext(ctx context.Context) Span {
	if ctx == nil {
		return Span{}
	}
	if s, ok := ctx.Value(spanKey{}).(Span); ok {
		return s
	}
	return Span{}
}

// StartSpan starts a child of the context's current span and returns it
// together with a derived context in which it is current. When the
// context carries no span (tracing disabled) it returns the zero Span
// and the SAME context, allocation-free — the whole pipeline calls this
// unconditionally and pays nothing by default.
func StartSpan(ctx context.Context, name string) (Span, context.Context) {
	parent := SpanFromContext(ctx)
	if parent.tr == nil {
		return Span{}, ctx
	}
	s := parent.Child(name)
	if s.tr == nil { // span limit hit
		return Span{}, ctx
	}
	return s, ContextWithSpan(ctx, s)
}
