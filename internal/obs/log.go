package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// Logger is a nil-safe structured logger over log/slog. The nil *Logger
// is a complete no-op, mirroring the telemetry registry contract: library
// code logs unconditionally and stays silent unless a caller wired a
// logger in. Context-taking variants stamp trace_id/span_id from the
// context's current span so log lines correlate with traces.
type Logger struct {
	sl  *slog.Logger
	rec *FlightRecorder

	// Per-key sampling state, shared across With/Sample derivatives so a
	// key's admission count is global to the logger family.
	samples *sampleState
}

type sampleState struct {
	mu     sync.Mutex
	counts map[string]uint64
}

// NewLogger builds a logger writing slog text lines at or above level to
// w. Every emitted line is also appended to rec (if non-nil) so the
// flight recorder holds the recent log history alongside span ends.
func NewLogger(w io.Writer, level slog.Level, rec *FlightRecorder) *Logger {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	return &Logger{
		sl:      slog.New(h),
		rec:     rec,
		samples: &sampleState{counts: make(map[string]uint64)},
	}
}

// ParseLevel maps a CLI flag value ("debug", "info", "warn", "error") to
// a slog level, defaulting to info for anything unrecognized.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// With returns a logger whose lines all carry the given attributes
// (alternating key, value as in slog). Nil-safe.
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{sl: l.sl.With(args...), rec: l.rec, samples: l.samples}
}

// Sample admits the first and then every nth call per key: Sample(key,
// 100) logs call 1, 101, 201... of that key. It returns the logger on
// admitted calls and nil (a no-op logger) otherwise, so call sites read
// naturally: l.Sample("icd.gc", 100).Debug(...). Nil-safe.
func (l *Logger) Sample(key string, every int) *Logger {
	if l == nil {
		return nil
	}
	if every <= 1 {
		return l
	}
	l.samples.mu.Lock()
	n := l.samples.counts[key]
	l.samples.counts[key] = n + 1
	l.samples.mu.Unlock()
	if n%uint64(every) == 0 {
		return l
	}
	return nil
}

// Enabled reports whether the logger would emit at the given level.
func (l *Logger) Enabled(level slog.Level) bool {
	return l != nil && l.sl.Enabled(context.Background(), level)
}

// Debug logs at debug level. Nil-safe.
func (l *Logger) Debug(msg string, args ...any) { l.log(nil, slog.LevelDebug, msg, args) }

// Info logs at info level. Nil-safe.
func (l *Logger) Info(msg string, args ...any) { l.log(nil, slog.LevelInfo, msg, args) }

// Warn logs at warn level. Nil-safe.
func (l *Logger) Warn(msg string, args ...any) { l.log(nil, slog.LevelWarn, msg, args) }

// Error logs at error level. Nil-safe.
func (l *Logger) Error(msg string, args ...any) { l.log(nil, slog.LevelError, msg, args) }

// DebugCtx logs at debug level with trace correlation from ctx.
func (l *Logger) DebugCtx(ctx context.Context, msg string, args ...any) {
	l.log(ctx, slog.LevelDebug, msg, args)
}

// InfoCtx logs at info level with trace correlation from ctx.
func (l *Logger) InfoCtx(ctx context.Context, msg string, args ...any) {
	l.log(ctx, slog.LevelInfo, msg, args)
}

// WarnCtx logs at warn level with trace correlation from ctx.
func (l *Logger) WarnCtx(ctx context.Context, msg string, args ...any) {
	l.log(ctx, slog.LevelWarn, msg, args)
}

// ErrorCtx logs at error level with trace correlation from ctx.
func (l *Logger) ErrorCtx(ctx context.Context, msg string, args ...any) {
	l.log(ctx, slog.LevelError, msg, args)
}

func (l *Logger) log(ctx context.Context, level slog.Level, msg string, args []any) {
	if l == nil {
		return
	}
	var traceID string
	var spanID uint64
	if ctx != nil {
		if sp := SpanFromContext(ctx); sp.Live() {
			traceID, spanID = sp.TraceID(), sp.SpanID()
			args = append(args, "trace_id", traceID, "span_id", spanID)
		}
	}
	if !l.sl.Enabled(context.Background(), level) {
		return
	}
	l.sl.Log(context.Background(), level, msg, args...)
	l.rec.Add(Event{
		Kind:    EventLog,
		Name:    strings.ToLower(level.String()),
		Msg:     formatEventMsg(msg, args),
		TraceID: traceID,
		SpanID:  spanID,
	})
}

// formatEventMsg renders a log call into one flight-recorder string:
// the message followed by key=value pairs.
func formatEventMsg(msg string, args []any) string {
	if len(args) == 0 {
		return msg
	}
	var b strings.Builder
	b.WriteString(msg)
	for i := 0; i+1 < len(args); i += 2 {
		fmt.Fprintf(&b, " %v=%v", args[i], args[i+1])
	}
	if len(args)%2 == 1 {
		fmt.Fprintf(&b, " %v", args[len(args)-1])
	}
	return b.String()
}
