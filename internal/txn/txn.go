// Package txn provides the transaction infrastructure shared by all three
// checkers (Velodrome, ICD, PCD): transaction nodes and dependence edges,
// per-transaction read/write logs with on-the-fly duplicate elision
// (paper §4, "Instrumenting program accesses"), the unary-transaction
// merging optimization (§4, originally from Velodrome), and the
// reachability-based collection of dead transactions that stands in for the
// paper's weak-reference treatment (§4, §6).
package txn

import (
	"fmt"

	"doublechecker/internal/cost"
	"doublechecker/internal/vm"
)

// Modelled sizes (bytes) for the memory accounting that drives the GC cost
// model: a transaction object, one log entry, one edge.
const (
	txnBytes   = 96
	entryBytes = 16
	edgeBytes  = 40
	occBytes   = 8
)

// Txn is one dynamic transaction: a regular transaction (an atomic region
// execution) or a unary transaction (a maximal run of non-transactional
// accesses uninterrupted by cross-thread communication).
type Txn struct {
	ID       uint64
	Thread   vm.ThreadID
	Method   vm.MethodID // NoMethod for unary transactions
	Unary    bool
	StartSeq uint64
	EndSeq   uint64
	Finished bool

	// Out holds this transaction's outgoing dependence edges (intra-thread
	// program-order edges and cross-thread edges), deduplicated by target.
	Out []*Edge
	out map[*Txn]*Edge

	// Log is the transaction's ordered read/write log (only when the
	// manager logs). Seq values are the VM's global access sequence.
	Log []LogEntry
	// Marks are the edge-occurrence log entries (only when logging).
	Marks []Mark

	accesses    int  // accesses recorded (independent of log elision)
	interrupted bool // a cross-thread edge touched this (unary) transaction
	marked      bool // GC scratch
	dead        bool
	finIn       bool // has an incoming edge whose source has finished
}

// Accesses returns how many accesses executed in this transaction
// (regardless of log elision or whether logging is enabled).
func (t *Txn) Accesses() int { return t.accesses }

// String renders the transaction compactly for reports.
func (t *Txn) String() string {
	kind := "tx"
	if t.Unary {
		kind = "unary"
	}
	return fmt.Sprintf("%s#%d(t%d,m%d)", kind, t.ID, t.Thread, t.Method)
}

// Succs returns the distinct successor transactions.
func (t *Txn) Succs() []*Txn {
	succs := make([]*Txn, 0, len(t.Out))
	for _, e := range t.Out {
		succs = append(succs, e.Dst)
	}
	return succs
}

// EdgeTo returns the edge from t to dst, or nil.
func (t *Txn) EdgeTo(dst *Txn) *Edge {
	return t.out[dst]
}

// Interrupted reports whether a cross-thread edge has touched this
// transaction (which prevents merging subsequent unary accesses into it).
func (t *Txn) Interrupted() bool { return t.interrupted }

// FinishedInEdge reports whether any incoming dependence edge's source has
// finished. The manager maintains the flag monotonically (stamped when an
// edge arrives from an already-finished source, and when a source finishes,
// over its out-edges). ICD's deferred detection uses it as a sound quick
// reject: a cycle through t among finished transactions needs an eligible
// incoming edge as well as an eligible outgoing one.
func (t *Txn) FinishedInEdge() bool { return t.finIn }

// Edge is a dependence edge between two transactions. Multiple dynamic
// dependences between the same pair share one Edge; when logging is
// enabled, each occurrence additionally leaves a pair of Marks in the two
// transactions' logs (paper §3.2.4: "The read/write log has special entries
// that correspond to incoming and outgoing cross-thread edges").
type Edge struct {
	Src, Dst *Txn
	Cross    bool   // false for intra-thread program-order edges
	Order    uint64 // creation order of the first occurrence (blame assignment)
}

// Mark is an edge occurrence's "special log entry". A mark's position among
// its transaction's log entries is given by Seq (entries and marks of one
// transaction are totally ordered by Seq, with marks sorting before an
// equal-Seq entry because the barrier fires before the access is logged).
// The in-mark and its matching out-mark share the same Seq, which is how
// PCD's edge-based replay pairs them without any global clock semantics:
// Seq is only ever compared within a transaction or between a paired
// in/out mark.
type Mark struct {
	In    bool // incoming edge mark (sink side) vs outgoing (source side)
	Other *Txn // the peer transaction
	Seq   uint64
}

// LogEntry is one recorded access.
type LogEntry struct {
	Obj   vm.ObjectID
	Field vm.FieldID
	Write bool
	Sync  bool // synchronization access (lock/handle object)
	Seq   uint64
}

func (e LogEntry) String() string {
	rw := "rd"
	if e.Write {
		rw = "wr"
	}
	return fmt.Sprintf("%s o%d.%d@%d", rw, e.Obj, e.Field, e.Seq)
}

// Stats counts manager activity.
type Stats struct {
	RegularTxns uint64
	UnaryTxns   uint64
	CrossEdges  uint64 // distinct cross-thread edges
	CrossOccs   uint64 // dynamic cross-thread dependence occurrences
	IntraEdges  uint64
	LogEntries  uint64
	LogElided   uint64
	Collections uint64
	Swept       uint64
}

// fieldKey identifies a field for elision metadata.
type fieldKey struct {
	obj   vm.ObjectID
	field vm.FieldID
}

// lastAccess is the per-(field, thread) elision timestamp (paper §4: "ICD
// tracks, for each field, the value of a per-thread timestamp of the last
// access (and whether it was a read or write)").
type lastAccess struct {
	ts    uint64
	wrote bool
}

// Manager creates transactions, maintains per-thread currents, adds edges,
// records logs, and collects dead transactions.
type Manager struct {
	logging bool
	meter   *cost.Meter
	clock   func() uint64 // global step clock (vm.Exec.Now)

	current map[vm.ThreadID]*Txn
	all     []*Txn
	nextID  uint64
	edgeSeq uint64

	// onFinish is invoked whenever a transaction finishes (regular end, or
	// a unary transaction being retired). ICD triggers SCC detection here.
	onFinish func(*Txn)
	// onIntraEdge is invoked for each program-order edge created between
	// consecutive transactions of a thread (cycle engines that mirror the
	// graph need them as well as the cross edges they add themselves).
	onIntraEdge func(src, dst *Txn)
	// onSweep is invoked for each transaction swept by Collect, before its
	// storage is reclaimed (incremental detection engines drop their node
	// state here).
	onSweep func(*Txn)

	noElide bool
	noMerge bool
	recycle bool

	// Free lists for the recycling mode: swept transaction nodes and edge
	// objects are reused instead of handed to the runtime GC, keeping the
	// non-logging hot path allocation-free in the steady state. The modelled
	// cost accounting (alloc/Free) is unchanged — recycling saves real
	// allocations, not modelled bytes.
	freeTxns  []*Txn
	freeEdges []*Edge
	gcStack   []*Txn // Collect's mark-stack scratch, reused across collections

	elide    map[fieldKey]map[vm.ThreadID]*lastAccess
	threadTS map[vm.ThreadID]uint64

	stats Stats
}

// NewManager returns a Manager. logging enables read/write logs (single-run
// mode and the second run of multi-run mode). clock supplies the global
// step clock; meter may be nil.
func NewManager(logging bool, clock func() uint64, meter *cost.Meter) *Manager {
	if clock == nil {
		var n uint64
		clock = func() uint64 { n++; return n }
	}
	return &Manager{
		logging:  logging,
		meter:    meter,
		clock:    clock,
		current:  make(map[vm.ThreadID]*Txn),
		elide:    make(map[fieldKey]map[vm.ThreadID]*lastAccess),
		threadTS: make(map[vm.ThreadID]uint64),
	}
}

// OnFinish registers the finished-transaction callback.
func (m *Manager) OnFinish(f func(*Txn)) { m.onFinish = f }

// OnIntraEdge registers a callback fired for every intra-thread
// program-order edge the manager creates.
func (m *Manager) OnIntraEdge(f func(src, dst *Txn)) { m.onIntraEdge = f }

// OnSweep registers a callback fired for every transaction Collect sweeps,
// before the transaction's storage is reclaimed.
func (m *Manager) OnSweep(f func(*Txn)) { m.onSweep = f }

// EnableRecycling turns on free-list reuse of swept transaction nodes and
// edge objects. Only safe when nothing retains *Txn or *Edge pointers past a
// Collect: the checker must not be logging (PCD replays hold logs) and must
// not hand SCCs or violations onward (violations retain their cycle's
// transactions). ICD's non-logging first run — the configuration whose whole
// point is a minimal hot path (§3.1) — satisfies both.
func (m *Manager) EnableRecycling() { m.recycle = true }

// DisableElision turns off read/write-log duplicate elision (ablation of
// the paper's §4 optimization).
func (m *Manager) DisableElision() { m.noElide = true }

// DisableUnaryMerging makes every non-transactional access its own unary
// transaction (ablation of the merging optimization the paper reuses from
// Velodrome).
func (m *Manager) DisableUnaryMerging() { m.noMerge = true }

// Logging reports whether read/write logs are recorded.
func (m *Manager) Logging() bool { return m.logging }

// Stats returns a copy of the manager's counters.
func (m *Manager) Stats() Stats { return m.stats }

// Live returns the number of uncollected transactions.
func (m *Manager) Live() int { return len(m.all) }

func (m *Manager) alloc(bytes int64) {
	if m.meter != nil {
		m.meter.Alloc(bytes)
	}
}

func (m *Manager) newTxn(t vm.ThreadID, method vm.MethodID, unary bool) *Txn {
	m.nextID++
	var tx *Txn
	if n := len(m.freeTxns); n > 0 {
		tx = m.freeTxns[n-1]
		m.freeTxns = m.freeTxns[:n-1]
		out, outs := tx.out, tx.Out[:0]
		clear(out)
		*tx = Txn{out: out, Out: outs}
	} else {
		tx = &Txn{out: make(map[*Txn]*Edge)}
	}
	tx.ID = m.nextID
	tx.Thread = t
	tx.Method = method
	tx.Unary = unary
	tx.StartSeq = m.clock()
	m.all = append(m.all, tx)
	m.alloc(txnBytes)
	m.threadTS[t]++
	if unary {
		m.stats.UnaryTxns++
	} else {
		m.stats.RegularTxns++
	}
	return tx
}

// finish marks tx finished and fires the callback.
func (m *Manager) finish(tx *Txn) {
	if tx == nil || tx.Finished {
		return
	}
	tx.Finished = true
	tx.EndSeq = m.clock()
	// Stamp successors: each now has an incoming edge from a finished
	// transaction (see Txn.FinishedInEdge).
	for _, e := range tx.Out {
		e.Dst.finIn = true
	}
	if m.onFinish != nil {
		m.onFinish(tx)
	}
}

// BeginRegular starts a regular transaction for thread t executing atomic
// method meth, retiring t's current unary transaction if any, and linking
// program order.
func (m *Manager) BeginRegular(t vm.ThreadID, meth vm.MethodID) *Txn {
	prev := m.current[t]
	tx := m.newTxn(t, meth, false)
	if prev != nil {
		m.addIntraEdge(prev, tx)
		if prev.Unary {
			m.finish(prev)
		}
	}
	m.current[t] = tx
	return tx
}

// EndRegular finishes thread t's current regular transaction. The thread's
// next access will begin a fresh unary transaction.
func (m *Manager) EndRegular(t vm.ThreadID) {
	tx := m.current[t]
	if tx == nil || tx.Unary {
		panic(fmt.Sprintf("txn: EndRegular(t%d) with current %v", t, tx))
	}
	m.finish(tx)
	// Keep tx as "current" for edge-sourcing purposes until the next
	// access creates a unary transaction; mark it so Current knows.
	m.current[t] = tx
}

// Current returns thread t's current transaction for edge sourcing/sinking,
// creating a unary transaction on demand. Consecutive unary accesses merge
// into one unary transaction until a cross-thread edge interrupts it
// (paper §4's reuse of Velodrome's optimization).
func (m *Manager) Current(t vm.ThreadID) *Txn {
	tx := m.current[t]
	switch {
	case tx == nil:
		tx = m.newTxn(t, vm.NoMethod, true)
		m.current[t] = tx
	case tx.Finished || (tx.Unary && tx.interrupted) || (m.noMerge && tx.Unary && tx.accesses > 0):
		prev := tx
		tx = m.newTxn(t, vm.NoMethod, true)
		m.addIntraEdge(prev, tx)
		if prev.Unary {
			m.finish(prev)
		}
		m.current[t] = tx
	}
	return tx
}

// ThreadExit retires thread t's current transaction. The reference is kept:
// an exited thread can still be the responder of an Octet conflicting
// transition (its objects remain in its exclusive states), and the edge
// source for that is its last transaction.
func (m *Manager) ThreadExit(t vm.ThreadID) {
	if tx := m.current[t]; tx != nil && !tx.Finished {
		m.finish(tx)
	}
}

// EdgeSource returns thread t's transaction for sourcing a dependence edge:
// its current transaction, which may already be finished (the paper's
// currTX(T) likewise refers to T's latest transaction when T sits between
// transactions or has exited). Unlike Current, EdgeSource never creates a
// transaction; it returns nil for a thread that never ran one.
func (m *Manager) EdgeSource(t vm.ThreadID) *Txn { return m.current[t] }

// EdgeSink returns the transaction that an incoming cross-thread edge for
// thread t's in-flight access should target. For a regular transaction this
// is simply the current transaction. For a unary transaction that has
// already merged earlier accesses, the merge must be cut FIRST: the merging
// optimization is only valid for runs of accesses uninterrupted by
// cross-thread edges, so the access now receiving a dependence starts a
// fresh unary transaction. (Deferring the split to the next access — easy to
// get wrong — both manufactures false cycles through over-merged unaries and
// hides real ones behind backward in/out positions.)
//
// Checkers must call EdgeSink before recording the access itself, so the
// fresh transaction has Accesses() == 0 and further edges for the same
// access reuse it.
func (m *Manager) EdgeSink(t vm.ThreadID) *Txn {
	cur := m.Current(t)
	if !cur.Unary || cur.accesses == 0 {
		return cur
	}
	fresh := m.newTxn(t, vm.NoMethod, true)
	m.addIntraEdge(cur, fresh)
	m.finish(cur)
	m.current[t] = fresh
	return fresh
}

func (m *Manager) addIntraEdge(src, dst *Txn) {
	if src == dst {
		return
	}
	if e := src.out[dst]; e != nil {
		return
	}
	m.newEdge(src, dst, false)
	m.stats.IntraEdges++
	m.alloc(edgeBytes)
	if m.onIntraEdge != nil {
		m.onIntraEdge(src, dst)
	}
}

// AddCrossEdge records a cross-thread dependence edge src -> dst. When
// logging, the occurrence is annotated with the current log lengths of both
// transactions, which tells PCD where in each log the dependence fell. The
// edge interrupts unary merging on both endpoint threads and bumps their
// elision timestamps. Self edges (src == dst) are ignored. It returns the
// Edge (nil for self edges).
func (m *Manager) AddCrossEdge(src, dst *Txn) *Edge {
	if src == nil || dst == nil || src == dst {
		return nil
	}
	m.stats.CrossOccs++
	m.bumpTS(src)
	m.bumpTS(dst)
	if src.Unary {
		src.interrupted = true
	}
	if dst.Unary {
		dst.interrupted = true
	}
	e := src.out[dst]
	if e == nil {
		e = m.newEdge(src, dst, true)
		m.stats.CrossEdges++
		m.alloc(edgeBytes)
	}
	if m.logging {
		seq := m.clock()
		src.Marks = append(src.Marks, Mark{In: false, Other: dst, Seq: seq})
		dst.Marks = append(dst.Marks, Mark{In: true, Other: src, Seq: seq})
		m.alloc(2 * occBytes)
	}
	return e
}

// newEdge allocates (or recycles) an edge src -> dst and links it into
// src's adjacency.
func (m *Manager) newEdge(src, dst *Txn, cross bool) *Edge {
	m.edgeSeq++
	var e *Edge
	if n := len(m.freeEdges); n > 0 {
		e = m.freeEdges[n-1]
		m.freeEdges = m.freeEdges[:n-1]
	} else {
		e = new(Edge)
	}
	*e = Edge{Src: src, Dst: dst, Cross: cross, Order: m.edgeSeq}
	src.out[dst] = e
	src.Out = append(src.Out, e)
	if src.Finished {
		// A finished source never re-fires finish's successor stamping, so
		// the edge stamps its sink directly (see Txn.FinishedInEdge).
		dst.finIn = true
	}
	return e
}

// bumpTS invalidates elision windows for the owning thread when its current
// transaction communicates.
func (m *Manager) bumpTS(tx *Txn) {
	if m.current[tx.Thread] == tx {
		m.threadTS[tx.Thread]++
	}
}

// Record appends an access to thread t's current transaction's log (if
// logging), applying duplicate elision, and returns the transaction. sync
// marks synchronization accesses.
func (m *Manager) Record(t vm.ThreadID, obj vm.ObjectID, field vm.FieldID, write, sync bool, seq uint64) *Txn {
	tx := m.Current(t)
	tx.accesses++
	if !m.logging {
		return tx
	}
	if m.noElide {
		tx.Log = append(tx.Log, LogEntry{Obj: obj, Field: field, Write: write, Sync: sync, Seq: seq})
		m.stats.LogEntries++
		m.alloc(entryBytes)
		if m.meter != nil {
			m.meter.Charge(m.meter.Model().LogAppend)
		}
		return tx
	}
	key := fieldKey{obj, field}
	perThread := m.elide[key]
	if perThread == nil {
		perThread = make(map[vm.ThreadID]*lastAccess)
		m.elide[key] = perThread
	}
	la := perThread[t]
	cur := m.threadTS[t]
	if la != nil && la.ts == cur && (!write || la.wrote) {
		// Same elision window and no new information: a read is covered by
		// any prior recorded access; a write is covered by a prior write.
		m.stats.LogElided++
		if m.meter != nil {
			m.meter.Charge(m.meter.Model().LogElide)
		}
		return tx
	}
	if la == nil {
		la = &lastAccess{}
		perThread[t] = la
	}
	if la.ts == cur {
		la.wrote = la.wrote || write
	} else {
		la.wrote = write
	}
	la.ts = cur
	tx.Log = append(tx.Log, LogEntry{Obj: obj, Field: field, Write: write, Sync: sync, Seq: seq})
	m.stats.LogEntries++
	m.alloc(entryBytes)
	if m.meter != nil {
		m.meter.Charge(m.meter.Model().LogAppend)
	}
	return tx
}

// Collect sweeps transactions that can never participate in a future cycle:
// those not forward-reachable from the root set (each thread's current
// transaction plus any checker-supplied roots such as lastRdEx, gLastRdSh,
// and per-field metadata references). Returns the number swept.
//
// Soundness: every future edge's sink is some thread's current transaction,
// so the forward-reachable set of retired transactions only shrinks over
// time; a transaction unreachable now can never be visited by a future
// cycle search or SCC computation (all of which start from root-adjacent
// transactions).
func (m *Manager) Collect(extraRoots []*Txn) int {
	m.stats.Collections++
	stack := m.gcStack[:0]
	mark := func(tx *Txn) {
		if tx != nil && !tx.marked {
			tx.marked = true
			stack = append(stack, tx)
		}
	}
	for _, tx := range m.current {
		mark(tx)
	}
	for _, tx := range extraRoots {
		mark(tx)
	}
	for len(stack) > 0 {
		tx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range tx.Out {
			mark(e.Dst)
		}
	}
	kept := m.all[:0]
	swept := 0
	for _, tx := range m.all {
		if tx.marked {
			tx.marked = false
			kept = append(kept, tx)
			continue
		}
		swept++
		tx.dead = true
		if m.onSweep != nil {
			m.onSweep(tx)
		}
		if m.meter != nil {
			m.meter.Free(txnBytes +
				entryBytes*int64(len(tx.Log)) +
				edgeBytes*int64(len(tx.Out)) +
				occBytes*int64(len(tx.Marks)))
		}
		if m.recycle {
			// Components die whole (mutual reachability), so nothing live
			// can still point at these nodes or their edges: reuse them.
			for _, e := range tx.Out {
				*e = Edge{}
				m.freeEdges = append(m.freeEdges, e)
			}
			tx.Out = tx.Out[:0]
			tx.Log = nil
			tx.Marks = nil
			m.freeTxns = append(m.freeTxns, tx)
		} else {
			tx.Log = nil
			tx.Marks = nil
			tx.Out = nil
			tx.out = nil
		}
	}
	m.all = kept
	m.stats.Swept += uint64(swept)
	m.gcStack = stack
	return swept
}

// Dead reports whether the transaction was swept by Collect.
func (t *Txn) Dead() bool { return t.dead }

// All returns the live (uncollected) transactions, in creation order. The
// PCD-only straw-man configuration (§5.4) uses this to hand the entire
// execution to the precise analysis.
func (m *Manager) All() []*Txn {
	out := make([]*Txn, len(m.all))
	copy(out, m.all)
	return out
}
