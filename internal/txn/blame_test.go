package txn

import (
	"testing"

	"doublechecker/internal/vm"
)

func TestBlameOutgoingBeforeIncoming(t *testing.T) {
	m := newMgr(false)
	a := m.BeginRegular(0, 1)
	b := m.BeginRegular(1, 2)
	// a->b created first, then b->a: a's outgoing edge (order 1) precedes
	// its incoming edge (order 2), so a completed the cycle.
	m.AddCrossEdge(a, b)
	m.AddCrossEdge(b, a)
	blamed := Blame([]*Txn{a, b})
	if len(blamed) != 1 || blamed[0] != a {
		t.Errorf("blamed = %v, want [a]", blamed)
	}
}

func TestBlameSelfLoopCycle(t *testing.T) {
	// Degenerate single-node cycle: blame it.
	m := newMgr(false)
	a := m.BeginRegular(0, 1)
	b := m.BeginRegular(1, 2)
	m.AddCrossEdge(a, b)
	m.AddCrossEdge(b, a)
	if got := Blame([]*Txn{a}); len(got) != 0 {
		// a has no self edge: nothing to blame in a malformed cycle.
		t.Errorf("blame of non-cycle = %v", got)
	}
}

func TestNewViolationCollectsMethods(t *testing.T) {
	m := newMgr(false)
	a := m.BeginRegular(0, 7)
	u := m.Current(1) // unary
	m.AddCrossEdge(a, u)
	m.AddCrossEdge(u, a)
	v := NewViolation([]*Txn{a, u}, 5)
	if len(v.Blamed) == 0 {
		t.Fatal("someone must be blamed")
	}
	for _, meth := range v.BlamedMethods {
		if meth == vm.NoMethod {
			t.Error("unary transactions must not contribute methods")
		}
	}
	if v.Seq != 5 {
		t.Errorf("seq = %d", v.Seq)
	}
}

func TestBlameThreeCycle(t *testing.T) {
	m := newMgr(false)
	a := m.BeginRegular(0, 1)
	b := m.BeginRegular(1, 2)
	c := m.BeginRegular(2, 3)
	m.AddCrossEdge(a, b) // order 1
	m.AddCrossEdge(b, c) // order 2
	m.AddCrossEdge(c, a) // order 3
	blamed := Blame([]*Txn{a, b, c})
	// a: out=1 in=3 -> blamed; b: out=2 in=1 -> not; c: out=3 in=2 -> not.
	if len(blamed) != 1 || blamed[0] != a {
		t.Errorf("blamed = %v, want [a]", blamed)
	}
}

func TestFilterNilSelectsAll(t *testing.T) {
	var f *Filter
	if !f.TxSelected(3) || !f.UnarySelected() {
		t.Error("nil filter must select everything")
	}
	if f.Empty() {
		t.Error("nil filter is not empty")
	}
}

func TestFilterSelection(t *testing.T) {
	f := &Filter{Methods: map[vm.MethodID]bool{2: true}}
	if !f.TxSelected(2) || f.TxSelected(3) {
		t.Error("method selection wrong")
	}
	if f.UnarySelected() {
		t.Error("unary not selected")
	}
	if f.Empty() {
		t.Error("filter with methods is not empty")
	}
	empty := &Filter{}
	if !empty.Empty() {
		t.Error("empty filter should report Empty")
	}
}
