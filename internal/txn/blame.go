package txn

import "doublechecker/internal/vm"

// Violation is one detected conflict-serializability violation: a precise
// cycle of transactions plus the blame assignment used by iterative
// specification refinement.
type Violation struct {
	// Cycle lists the transactions of the cycle in path order
	// (Cycle[i] -> Cycle[i+1], wrapping).
	Cycle []*Txn
	// Blamed holds the transactions blame assignment picked (paper §3.3): a
	// transaction is blamed when its outgoing cycle edge was created before
	// its incoming cycle edge, implying it completed the cycle.
	Blamed []*Txn
	// BlamedMethods are the distinct methods of blamed regular
	// transactions; refinement removes these from the specification.
	BlamedMethods []vm.MethodID
	// Seq is the global clock at detection time.
	Seq uint64
}

// NewViolation builds a Violation from a cycle path, running blame
// assignment over the transactions' own edges.
func NewViolation(cycle []*Txn, seq uint64) Violation {
	return NewViolationWith(cycle, seq, edgeOrderOf)
}

// NewViolationWith builds a Violation using an external edge-order lookup
// (PCD's precise dependence graph keeps its edges outside the transactions).
func NewViolationWith(cycle []*Txn, seq uint64, order func(src, dst *Txn) (uint64, bool)) Violation {
	v := Violation{Cycle: cycle, Seq: seq}
	v.Blamed = BlameWith(cycle, order)
	seen := make(map[vm.MethodID]bool)
	for _, tx := range v.Blamed {
		if !tx.Unary && tx.Method != vm.NoMethod && !seen[tx.Method] {
			seen[tx.Method] = true
			v.BlamedMethods = append(v.BlamedMethods, tx.Method)
		}
	}
	return v
}

// Blame returns the transactions of the cycle whose outgoing cycle edge was
// created earlier than their incoming cycle edge ("the transaction completes
// a cycle", paper §3.3), using the transactions' own edges.
func Blame(cycle []*Txn) []*Txn { return BlameWith(cycle, edgeOrderOf) }

func edgeOrderOf(src, dst *Txn) (uint64, bool) {
	if e := src.EdgeTo(dst); e != nil {
		return e.Order, true
	}
	return 0, false
}

// BlameWith is Blame with an external edge-order lookup. If edge orders are
// equal or missing, no transaction is blamed for that position. As a
// fallback — a cycle must blame someone for refinement to make progress —
// when no transaction qualifies, the transaction with the oldest outgoing
// edge is blamed.
func BlameWith(cycle []*Txn, order func(src, dst *Txn) (uint64, bool)) []*Txn {
	n := len(cycle)
	if n == 0 {
		return nil
	}
	var blamed []*Txn
	oldest := -1
	var oldestOrder uint64
	for i := 0; i < n; i++ {
		cur := cycle[i]
		next := cycle[(i+1)%n]
		prev := cycle[(i-1+n)%n]
		var out, in uint64
		var outOK, inOK bool
		if n == 1 {
			out, outOK = order(cur, cur)
			in, inOK = out, outOK
		} else {
			out, outOK = order(cur, next)
			in, inOK = order(prev, cur)
		}
		if !outOK || !inOK {
			continue
		}
		if oldest == -1 || out < oldestOrder {
			oldest = i
			oldestOrder = out
		}
		if n == 1 || out < in {
			blamed = append(blamed, cur)
		}
	}
	if len(blamed) == 0 && oldest >= 0 {
		blamed = append(blamed, cycle[oldest])
	}
	return blamed
}

// Filter restricts which transactions a checker instruments. It implements
// the second run of multi-run mode (paper §3.1): only regular transactions
// whose static start method appears in the first run's output are monitored,
// and unary (non-transactional) accesses are monitored only when any first
// run found a unary transaction in a cycle. The nil *Filter instruments
// everything.
type Filter struct {
	// Methods selects regular transactions by their starting method.
	Methods map[vm.MethodID]bool
	// Unary selects non-transactional accesses.
	Unary bool
}

// TxSelected reports whether a regular transaction starting at m is
// monitored.
func (f *Filter) TxSelected(m vm.MethodID) bool {
	if f == nil {
		return true
	}
	return f.Methods[m]
}

// UnarySelected reports whether non-transactional accesses are monitored.
func (f *Filter) UnarySelected() bool {
	if f == nil {
		return true
	}
	return f.Unary
}

// Empty reports whether the filter selects nothing at all (the second run
// can skip instrumentation entirely; see Table 3's all-zero rows).
func (f *Filter) Empty() bool {
	return f != nil && len(f.Methods) == 0 && !f.Unary
}
