package txn

import (
	"testing"

	"doublechecker/internal/cost"
)

func newMgr(logging bool) *Manager {
	return NewManager(logging, nil, nil)
}

func TestBeginEndRegular(t *testing.T) {
	m := newMgr(false)
	tx := m.BeginRegular(0, 3)
	if tx.Unary || tx.Method != 3 || tx.Finished {
		t.Errorf("bad regular txn: %+v", tx)
	}
	if m.Current(0) != tx {
		t.Error("current should be the open regular txn")
	}
	m.EndRegular(0)
	if !tx.Finished {
		t.Error("EndRegular should finish the txn")
	}
	// Next access context is a fresh unary with an intra-thread edge.
	u := m.Current(0)
	if !u.Unary || u == tx {
		t.Errorf("expected fresh unary, got %v", u)
	}
	if tx.EdgeTo(u) == nil || tx.EdgeTo(u).Cross {
		t.Error("expected intra-thread edge from regular to unary")
	}
}

func TestUnaryMerging(t *testing.T) {
	m := newMgr(false)
	u1 := m.Current(0)
	u2 := m.Current(0)
	if u1 != u2 {
		t.Error("consecutive unary accesses should merge")
	}
	// A cross-thread edge interrupts merging.
	other := m.Current(1)
	m.AddCrossEdge(other, u1)
	u3 := m.Current(0)
	if u3 == u1 {
		t.Error("interrupted unary must not merge further accesses")
	}
	if !u1.Finished {
		t.Error("retired unary should be finished")
	}
	st := m.Stats()
	if st.UnaryTxns != 3 {
		t.Errorf("unary txns = %d, want 3", st.UnaryTxns)
	}
}

func TestOutgoingEdgeAlsoInterrupts(t *testing.T) {
	m := newMgr(false)
	u1 := m.Current(0)
	m.AddCrossEdge(u1, m.Current(1))
	if m.Current(0) == u1 {
		t.Error("outgoing cross edge must interrupt unary merging")
	}
}

func TestRegularNotInterruptedByEdges(t *testing.T) {
	m := newMgr(false)
	tx := m.BeginRegular(0, 1)
	m.AddCrossEdge(m.Current(1), tx)
	if m.Current(0) != tx {
		t.Error("regular transaction persists across edges until EndRegular")
	}
}

func TestEdgeDedupAndMarks(t *testing.T) {
	m := newMgr(true)
	a := m.BeginRegular(0, 1)
	b := m.BeginRegular(1, 2)
	e1 := m.AddCrossEdge(a, b)
	m.Record(1, 5, 0, true, false, 10)
	e2 := m.AddCrossEdge(a, b)
	if e1 != e2 {
		t.Error("same-pair edges should dedupe")
	}
	if len(a.Marks) != 2 || len(b.Marks) != 2 {
		t.Fatalf("expected 2 mark pairs, got src %d dst %d", len(a.Marks), len(b.Marks))
	}
	if a.Marks[0].In || !b.Marks[0].In {
		t.Error("source gets out-marks, sink gets in-marks")
	}
	if a.Marks[0].Seq != b.Marks[0].Seq {
		t.Error("paired marks must share a Seq")
	}
	if a.Marks[0].Other != b || b.Marks[0].Other != a {
		t.Error("marks must reference the peer transaction")
	}
	if m.Stats().CrossEdges != 1 || m.Stats().CrossOccs != 2 {
		t.Errorf("stats: %+v", m.Stats())
	}
}

func TestSelfEdgeIgnored(t *testing.T) {
	m := newMgr(false)
	a := m.Current(0)
	if e := m.AddCrossEdge(a, a); e != nil {
		t.Error("self edge should be ignored")
	}
}

func TestIntraThreadEdgeChain(t *testing.T) {
	m := newMgr(false)
	t1 := m.BeginRegular(0, 1)
	m.EndRegular(0)
	t2 := m.BeginRegular(0, 2)
	m.EndRegular(0)
	if e := t1.EdgeTo(t2); e == nil || e.Cross {
		t.Error("consecutive regular txns need an intra-thread edge")
	}
}

func TestRecordAndElision(t *testing.T) {
	m := newMgr(true)
	tx := m.BeginRegular(0, 1)
	m.Record(0, 1, 0, false, false, 1) // rd o1.0: recorded
	m.Record(0, 1, 0, false, false, 2) // duplicate read: elided
	m.Record(0, 1, 0, true, false, 3)  // write after read: recorded
	m.Record(0, 1, 0, true, false, 4)  // duplicate write: elided
	m.Record(0, 1, 0, false, false, 5) // read after write: elided
	m.Record(0, 1, 1, false, false, 6) // different field: recorded
	if len(tx.Log) != 3 {
		t.Fatalf("log = %v, want 3 entries", tx.Log)
	}
	st := m.Stats()
	if st.LogEntries != 3 || st.LogElided != 3 {
		t.Errorf("entries=%d elided=%d, want 3/3", st.LogEntries, st.LogElided)
	}
}

func TestElisionWindowResetByEdge(t *testing.T) {
	m := newMgr(true)
	tx := m.BeginRegular(0, 1)
	m.Record(0, 1, 0, false, false, 1)
	// Cross-thread edge bumps the window: the repeat read must be recorded
	// (it can source a new dependence).
	m.AddCrossEdge(m.Current(1), tx)
	m.Record(0, 1, 0, false, false, 2)
	if len(tx.Log) != 2 {
		t.Errorf("log = %v, want 2 entries after edge reset", tx.Log)
	}
}

func TestElisionWindowResetByNewTxn(t *testing.T) {
	m := newMgr(true)
	m.BeginRegular(0, 1)
	m.Record(0, 1, 0, true, false, 1)
	m.EndRegular(0)
	tx2 := m.BeginRegular(0, 2)
	m.Record(0, 1, 0, true, false, 2)
	if len(tx2.Log) != 1 {
		t.Error("new transaction must not inherit the elision window")
	}
}

func TestElisionPerThread(t *testing.T) {
	m := newMgr(true)
	a := m.BeginRegular(0, 1)
	b := m.BeginRegular(1, 2)
	m.Record(0, 1, 0, false, false, 1)
	m.Record(1, 1, 0, false, false, 2) // other thread: must be recorded
	if len(a.Log) != 1 || len(b.Log) != 1 {
		t.Errorf("per-thread elision broken: a=%v b=%v", a.Log, b.Log)
	}
}

func TestNoLoggingNoLog(t *testing.T) {
	m := newMgr(false)
	tx := m.BeginRegular(0, 1)
	m.Record(0, 1, 0, true, false, 1)
	if len(tx.Log) != 0 {
		t.Error("logging disabled should record nothing")
	}
}

func TestOnFinishCallback(t *testing.T) {
	m := newMgr(false)
	var finished []*Txn
	m.OnFinish(func(tx *Txn) { finished = append(finished, tx) })
	tx := m.BeginRegular(0, 1)
	m.EndRegular(0)
	if len(finished) != 1 || finished[0] != tx {
		t.Errorf("finish callback: %v", finished)
	}
	u := m.Current(0)
	m.AddCrossEdge(m.Current(1), u)
	m.Current(0) // retires u
	if len(finished) != 2 || finished[1] != u {
		t.Errorf("unary retirement should fire callback: %v", finished)
	}
}

func TestThreadExitFinishesCurrent(t *testing.T) {
	m := newMgr(false)
	u := m.Current(0)
	m.ThreadExit(0)
	if !u.Finished {
		t.Error("thread exit must finish the current transaction")
	}
}

func TestCollectSweepsUnreachable(t *testing.T) {
	m := newMgr(true)
	// Build: t0 runs three sequential regular txns; only the last is
	// current. With no extra roots, predecessors are unreachable (intra
	// edges point forward, so old->new keeps nothing alive backwards).
	t1 := m.BeginRegular(0, 1)
	m.Record(0, 1, 0, true, false, 1)
	m.EndRegular(0)
	t2 := m.BeginRegular(0, 2)
	m.EndRegular(0)
	t3 := m.BeginRegular(0, 3)

	if m.Live() != 3 {
		t.Fatalf("live = %d, want 3", m.Live())
	}
	swept := m.Collect(nil)
	if swept != 2 {
		t.Fatalf("swept = %d, want 2 (t1, t2)", swept)
	}
	if t1.Log != nil || t1.Out != nil {
		t.Error("swept txn should drop its log and edges")
	}
	_ = t2
	if m.Live() != 1 || !t3.Finished == false && false {
		t.Errorf("live = %d, want 1", m.Live())
	}
}

func TestCollectKeepsExtraRoots(t *testing.T) {
	m := newMgr(false)
	t1 := m.BeginRegular(0, 1)
	m.EndRegular(0)
	m.BeginRegular(0, 2)
	if swept := m.Collect([]*Txn{t1}); swept != 0 {
		t.Errorf("swept = %d, want 0 with t1 rooted", swept)
	}
}

func TestCollectKeepsForwardReachable(t *testing.T) {
	m := newMgr(false)
	// a -> b where b is current on t1: a must survive only if reachable
	// from a root. a is NOT a root and nothing points to it, so it is swept
	// even though it points at the live b.
	a := m.Current(0)
	b := m.Current(1)
	m.AddCrossEdge(a, b)
	m.Current(0) // retire a (interrupted); fresh unary becomes t0's current
	// Now a is reachable from t0's current? No: edges go a->b and
	// a->freshUnary? No — intra edge goes a -> fresh. Nothing points to a.
	if swept := m.Collect(nil); swept != 1 {
		t.Errorf("swept = %d, want exactly a", swept)
	}
}

func TestCollectCycleReachableFromRoot(t *testing.T) {
	m := newMgr(false)
	a := m.BeginRegular(0, 1)
	b := m.BeginRegular(1, 2)
	m.AddCrossEdge(a, b)
	m.AddCrossEdge(b, a)
	m.EndRegular(0)
	m.EndRegular(1)
	// Both finished regulars are still referenced as thread currents.
	if swept := m.Collect(nil); swept != 0 {
		t.Errorf("swept = %d, want 0 while roots reference the cycle", swept)
	}
}

func TestMeterAccounting(t *testing.T) {
	model := cost.Default()
	model.GCTriggerBytes = 0
	meter := cost.NewMeter(model)
	m := NewManager(true, nil, meter)
	tx := m.BeginRegular(0, 1)
	m.Record(0, 1, 0, true, false, 1)
	if meter.LiveBytes() == 0 {
		t.Error("allocations should be metered")
	}
	m.EndRegular(0)
	m.BeginRegular(0, 2)
	before := meter.LiveBytes()
	m.Collect(nil) // sweeps tx
	if meter.LiveBytes() >= before {
		t.Error("collection should free metered bytes")
	}
	_ = tx
}

func TestSuccsAndStrings(t *testing.T) {
	m := newMgr(false)
	a := m.BeginRegular(0, 1)
	b := m.BeginRegular(1, 2)
	m.AddCrossEdge(a, b)
	if len(a.Succs()) != 1 || a.Succs()[0] != b {
		t.Errorf("succs = %v", a.Succs())
	}
	if a.String() == "" || (LogEntry{}).String() == "" {
		t.Error("empty strings")
	}
}

func TestClockStampsStartEnd(t *testing.T) {
	var now uint64
	m := NewManager(false, func() uint64 { return now }, nil)
	now = 5
	tx := m.BeginRegular(0, 1)
	if tx.StartSeq != 5 {
		t.Errorf("start = %d, want 5", tx.StartSeq)
	}
	now = 9
	m.EndRegular(0)
	if tx.EndSeq != 9 {
		t.Errorf("end = %d, want 9", tx.EndSeq)
	}
}
