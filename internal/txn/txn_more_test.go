package txn

import (
	"testing"

	"doublechecker/internal/cost"
)

func TestEdgeSinkSplitsMergedUnary(t *testing.T) {
	m := newMgr(true)
	u := m.Current(0)
	m.Record(0, 1, 0, true, false, 1) // unary now has an access
	sink := m.EdgeSink(0)
	if sink == u {
		t.Fatal("merged unary must split before receiving an incoming edge")
	}
	if !u.Finished {
		t.Error("split must retire the old unary")
	}
	if u.EdgeTo(sink) == nil {
		t.Error("program-order edge from old to fresh unary missing")
	}
	// A second edge for the same access reuses the fresh sink (no access
	// recorded yet).
	if m.EdgeSink(0) != sink {
		t.Error("fresh sink must be reused until an access is recorded")
	}
}

func TestEdgeSinkLeavesFreshUnaryAndRegulars(t *testing.T) {
	m := newMgr(true)
	u := m.Current(0)
	if m.EdgeSink(0) != u {
		t.Error("fresh unary (no accesses) must be its own sink")
	}
	r := m.BeginRegular(1, 2)
	m.Record(1, 1, 0, true, false, 1)
	if m.EdgeSink(1) != r {
		t.Error("regular transactions never split")
	}
}

func TestEdgeSourceSemantics(t *testing.T) {
	m := newMgr(false)
	if m.EdgeSource(0) != nil {
		t.Error("thread with no transactions has no edge source")
	}
	tx := m.BeginRegular(0, 1)
	if m.EdgeSource(0) != tx {
		t.Error("running regular is the source")
	}
	m.EndRegular(0)
	if m.EdgeSource(0) != tx {
		t.Error("finished-but-current regular remains the source")
	}
	m.ThreadExit(0)
	if m.EdgeSource(0) != tx {
		t.Error("exited thread's last transaction remains the source")
	}
}

func TestMarksOnlyWhenLogging(t *testing.T) {
	m := newMgr(false)
	a := m.BeginRegular(0, 1)
	b := m.BeginRegular(1, 2)
	m.AddCrossEdge(a, b)
	if len(a.Marks)+len(b.Marks) != 0 {
		t.Error("marks must not be recorded without logging")
	}
}

func TestSweepFreesMarkBytes(t *testing.T) {
	model := cost.Default()
	model.GCTriggerBytes = 0
	meter := cost.NewMeter(model)
	m := NewManager(true, nil, meter)
	a := m.BeginRegular(0, 1)
	b := m.BeginRegular(1, 2)
	for i := 0; i < 50; i++ {
		m.Record(1, 5, 0, true, false, uint64(10+i)) // advance b's log
		m.AddCrossEdge(a, b)                         // occurrence -> mark pair
	}
	m.EndRegular(0)
	m.EndRegular(1)
	m.BeginRegular(0, 3)
	m.BeginRegular(1, 3)
	// a and b are unreachable except... b is reachable from a via edges?
	// a -> b exists; a is not a root; both get swept.
	before := meter.LiveBytes()
	swept := m.Collect(nil)
	if swept < 2 {
		t.Fatalf("swept = %d, want at least a and b", swept)
	}
	if meter.LiveBytes() >= before {
		t.Error("sweep must free bytes")
	}
	// The mark bytes specifically: 50 occurrences * 2 marks * 8 bytes were
	// allocated; after the sweep the remaining live bytes must be far below
	// the mark volume (only the two fresh regulars remain).
	if meter.LiveBytes() > 4*96+64 {
		t.Errorf("live bytes %d suggest marks were not freed", meter.LiveBytes())
	}
}

func TestDisableUnaryMerging(t *testing.T) {
	m := newMgr(false)
	m.DisableUnaryMerging()
	u1 := m.Current(0)
	m.Record(0, 1, 0, false, false, 1)
	u2 := m.Current(0)
	if u1 == u2 {
		t.Fatal("merging disabled: each access gets a fresh unary")
	}
	if !u1.Finished {
		t.Error("previous unary must be retired")
	}
}

func TestDisableElision(t *testing.T) {
	m := newMgr(true)
	m.DisableElision()
	tx := m.BeginRegular(0, 1)
	m.Record(0, 1, 0, false, false, 1)
	m.Record(0, 1, 0, false, false, 2)
	if len(tx.Log) != 2 {
		t.Errorf("log = %d entries, want 2 (no elision)", len(tx.Log))
	}
	if m.Stats().LogElided != 0 {
		t.Error("nothing may be elided")
	}
}

func TestAccessesCountIndependentOfLogging(t *testing.T) {
	m := newMgr(false) // no logging
	tx := m.BeginRegular(0, 1)
	m.Record(0, 1, 0, false, false, 1)
	m.Record(0, 1, 0, false, false, 2)
	if tx.Accesses() != 2 {
		t.Errorf("accesses = %d, want 2", tx.Accesses())
	}
	if len(tx.Log) != 0 {
		t.Error("no log entries without logging")
	}
}

func TestOnIntraEdgeCallback(t *testing.T) {
	m := newMgr(false)
	var got [][2]uint64
	m.OnIntraEdge(func(src, dst *Txn) { got = append(got, [2]uint64{src.ID, dst.ID}) })
	a := m.BeginRegular(0, 1)
	m.EndRegular(0)
	b := m.BeginRegular(0, 2)
	if len(got) != 1 || got[0] != [2]uint64{a.ID, b.ID} {
		t.Errorf("intra edge callback: %v", got)
	}
}

func TestAllReturnsLiveTxns(t *testing.T) {
	m := newMgr(false)
	m.BeginRegular(0, 1)
	m.EndRegular(0)
	m.BeginRegular(0, 2)
	if len(m.All()) != 2 || m.Live() != 2 {
		t.Errorf("all=%d live=%d", len(m.All()), m.Live())
	}
	m.Collect(nil)
	if m.Live() != 1 {
		t.Errorf("live after collect = %d", m.Live())
	}
}

func TestInterruptedAccessor(t *testing.T) {
	m := newMgr(false)
	u := m.Current(0)
	if u.Interrupted() {
		t.Error("fresh unary is not interrupted")
	}
	m.AddCrossEdge(m.Current(1), u)
	if !u.Interrupted() {
		t.Error("edge must interrupt")
	}
}
