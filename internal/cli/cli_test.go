package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeProgram drops a .dcp file into a temp dir and returns its path.
func writeProgram(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.dcp")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const racyDCP = `
program counter
object c
atomic method bump { read c.n compute 6 write c.n }
method main0 { loop 20 { call bump } }
method main1 { loop 20 { call bump } }
thread main0
thread main1
`

func TestDCheckFindsViolation(t *testing.T) {
	path := writeProgram(t, racyDCP)
	var out, errb bytes.Buffer
	code := DCheck([]string{"-trials", "8", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "blamed methods: [bump]") {
		t.Errorf("output:\n%s", s)
	}
}

func TestDCheckVerboseTimeline(t *testing.T) {
	path := writeProgram(t, racyDCP)
	var out, errb bytes.Buffer
	if code := DCheck([]string{"-trials", "8", "-v", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "timeline (earliest first)") {
		t.Errorf("missing timeline:\n%s", out.String())
	}
}

func TestDCheckDot(t *testing.T) {
	path := writeProgram(t, racyDCP)
	var out, errb bytes.Buffer
	if code := DCheck([]string{"-trials", "8", "-dot", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "digraph violation") {
		t.Errorf("missing dot output:\n%s", out.String())
	}
}

func TestDCheckLint(t *testing.T) {
	path := writeProgram(t, `
program p
lock l
object o
method m { acquire l read o.x }
thread m
`)
	var out, errb bytes.Buffer
	code := DCheck([]string{"-lint", path}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 on lint warnings", code)
	}
	if !strings.Contains(errb.String(), "exits holding") {
		t.Errorf("stderr:\n%s", errb.String())
	}

	clean := writeProgram(t, racyDCP)
	out.Reset()
	errb.Reset()
	if code := DCheck([]string{"-lint", clean}, &out, &errb); code != 0 {
		t.Fatalf("clean lint exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "lint: clean") {
		t.Errorf("stdout:\n%s", out.String())
	}
}

func TestDCheckRefine(t *testing.T) {
	path := writeProgram(t, `
program mix
object c
lock l
atomic method safe { acquire l read c.a write c.a release l }
atomic method racy { read c.b compute 8 write c.b }
method main0 { loop 15 { call safe call racy } }
method main1 { loop 15 { call safe call racy } }
thread main0
thread main1
`)
	var out, errb bytes.Buffer
	if code := DCheck([]string{"-refine", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "removed from specification: racy") {
		t.Errorf("output:\n%s", s)
	}
	if !strings.Contains(s, "final specification: 1 atomic methods") {
		t.Errorf("output:\n%s", s)
	}
}

func TestDCheckCost(t *testing.T) {
	path := writeProgram(t, racyDCP)
	var out, errb bytes.Buffer
	if code := DCheck([]string{"-cost", "-analysis", "velodrome", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "normalized execution time") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestDCheckErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := DCheck([]string{}, &out, &errb); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := DCheck([]string{"/nonexistent.dcp"}, &out, &errb); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	bad := writeProgram(t, "program p\nmethod m { read q.f }\nthread m")
	if code := DCheck([]string{bad}, &out, &errb); code != 1 {
		t.Errorf("bad program: exit %d, want 1", code)
	}
	good := writeProgram(t, racyDCP)
	if code := DCheck([]string{"-analysis", "nope", good}, &out, &errb); code != 1 {
		t.Errorf("bad analysis: exit %d, want 1", code)
	}
	if code := DCheck([]string{"-badflag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

func TestDCGenListAndDump(t *testing.T) {
	var out, errb bytes.Buffer
	if code := DCGen([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("list exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "eclipse6") || !strings.Contains(out.String(), "raytracer") {
		t.Errorf("list output:\n%s", out.String())
	}

	out.Reset()
	if code := DCGen([]string{"-scale", "0.1", "philo"}, &out, &errb); code != 0 {
		t.Fatalf("dump exit %d: %s", code, errb.String())
	}
	dumped := out.String()
	if !strings.Contains(dumped, "program philo") || !strings.Contains(dumped, "atomic method eat0") {
		t.Errorf("dump output:\n%s", dumped)
	}
	// Round trip: the dumped program must check cleanly through dcheck.
	path := writeProgram(t, dumped)
	out.Reset()
	if code := DCheck([]string{"-trials", "3", path}, &out, &errb); code != 0 {
		t.Fatalf("round-trip check exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "no atomicity violations detected") {
		t.Errorf("philo should be clean:\n%s", out.String())
	}
}

func TestDCGenErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := DCGen([]string{}, &out, &errb); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := DCGen([]string{"nope"}, &out, &errb); code != 1 {
		t.Errorf("unknown benchmark: exit %d, want 1", code)
	}
}

func TestDCBenchSingleExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	code := DCBench([]string{
		"-experiment", "table3", "-scale", "0.2", "-trials", "2",
		"-stable", "2", "-first-runs", "2", "-benchmarks", "philo,tsp",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Table 3") || !strings.Contains(out.String(), "tsp") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestDCBenchCSV(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	code := DCBench([]string{
		"-experiment", "fig7", "-scale", "0.2", "-trials", "2",
		"-stable", "2", "-first-runs", "2", "-benchmarks", "tsp",
		"-csv", dir,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig7.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "tsp,Velodrome") {
		t.Errorf("csv:\n%s", data)
	}
}

func TestDCBenchUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := DCBench([]string{"-experiment", "nope"}, &out, &errb); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Errorf("stderr:\n%s", errb.String())
	}
}
