package cli

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"doublechecker/internal/telemetry"
)

func TestDCheckStatsJSON(t *testing.T) {
	path := writeProgram(t, racyDCP)
	var out, errb bytes.Buffer
	if code := DCheck([]string{"-trials", "4", "-stats-json", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{`"counters"`, `"vm.tx.regular"`, `"octet.transitions.fast_path"`} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %s:\n%s", want, s)
		}
	}
	// The snapshot is the trailing JSON object; it must parse.
	idx := strings.Index(s, "{\n")
	if idx < 0 {
		t.Fatalf("no JSON object in output:\n%s", s)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(s[idx:]), &snap); err != nil {
		t.Fatalf("snapshot does not parse: %v\n%s", err, s[idx:])
	}
	if snap.Counters["vm.tx.regular"] == 0 {
		t.Errorf("no regular transactions counted: %+v", snap.Counters)
	}
}

func TestDCTraceReplayStatsJSON(t *testing.T) {
	dir := t.TempDir()
	tracePath := recordRacyTrace(t, dir)
	var out, errb bytes.Buffer
	if code := DCTrace([]string{"replay", "-stats-json", tracePath}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, `"counters"`) || !strings.Contains(s, `"icd.scc.count"`) {
		t.Errorf("replay stats missing:\n%s", s)
	}
	if strings.Contains(s, `"wall_ns"`) {
		t.Errorf("replay stats are not deterministic (wall_ns present):\n%s", s)
	}

	// Two replays of the same trace print byte-identical telemetry.
	var out2 bytes.Buffer
	if code := DCTrace([]string{"replay", "-stats-json", tracePath}, &out2, &errb); code != 0 {
		t.Fatalf("second replay exit %d: %s", code, errb.String())
	}
	if out.String() != out2.String() {
		t.Errorf("replay outputs differ:\n%s\nvs\n%s", out.String(), out2.String())
	}
}

func TestServeMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("octet.transitions.fast_path").Add(3)
	var errb bytes.Buffer
	stop, err := serveMetrics("127.0.0.1:0", reg, newCLILogger(&errb, "info"))
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	msg := errb.String()
	addr := msg[strings.Index(msg, "http://"):]
	addr = strings.Fields(addr)[0]

	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(string(body), "dc_octet_transitions_fast_path 3") {
		t.Errorf("/metrics body:\n%s", body)
	}

	resp, err = http.Get(addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/vars status %d", resp.StatusCode)
	}
}

func TestDCBenchTelemetry(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "BENCH_telemetry.json")
	run := func() []byte {
		var out, errb bytes.Buffer
		code := DCBench([]string{
			"-experiment", "telemetry", "-scale", "0.2",
			"-benchmarks", "philo,tsp", "-telemetry-out", outPath,
		}, &out, &errb)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, errb.String())
		}
		if !strings.Contains(out.String(), "Telemetry (dc-single") {
			t.Errorf("summary missing:\n%s", out.String())
		}
		data, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first := run()
	var dump struct {
		Benchmarks []struct {
			Name     string              `json:"benchmark"`
			Snapshot *telemetry.Snapshot `json:"telemetry"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(first, &dump); err != nil {
		t.Fatalf("dump does not parse: %v", err)
	}
	if len(dump.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks, got %d", len(dump.Benchmarks))
	}
	for _, bm := range dump.Benchmarks {
		if bm.Snapshot.Counter("vm.steps") == 0 {
			t.Errorf("%s: no vm.steps recorded", bm.Name)
		}
	}
	// Regenerating the dump is byte-identical.
	if second := run(); !bytes.Equal(first, second) {
		t.Error("telemetry dumps differ between runs")
	}
}
