package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"doublechecker/internal/store"
)

// dcheckReplayOut runs dcheck -replay with extra flags and returns stdout.
func dcheckReplayOut(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if code := DCheck(args, &out, &errb); code != 0 {
		t.Fatalf("dcheck %v: exit %d: %s", args, code, errb.String())
	}
	return out.String()
}

// TestDCheckReplayCacheDir: -cache-dir makes replay write-through on a cold
// run and hit on a warm one, with byte-identical output either way; a
// corrupted entry is quarantined and recomputed, never served.
func TestDCheckReplayCacheDir(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join("..", "..", "testdata", "traces", "elevator.dct")

	want := dcheckReplayOut(t, "-replay", path)
	cold := dcheckReplayOut(t, "-replay", "-cache-dir", dir, path)
	if cold != want {
		t.Errorf("cold cached output differs from uncached replay:\n%s\nvs:\n%s", cold, want)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.dcr"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache dir after cold run: %v (%d files)", err, len(files))
	}

	warm := dcheckReplayOut(t, "-replay", "-cache-dir", dir, path)
	if warm != want {
		t.Errorf("warm cached output differs:\n%s", warm)
	}

	// Corrupt the entry: the next run must quarantine it, recompute the
	// same bytes, and rewrite a clean entry.
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(files[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	recomputed := dcheckReplayOut(t, "-replay", "-cache-dir", dir, path)
	if recomputed != want {
		t.Errorf("post-corruption output differs:\n%s", recomputed)
	}
	qfiles, _ := filepath.Glob(filepath.Join(dir, store.QuarantineDir, "*"))
	if len(qfiles) != 1 {
		t.Errorf("quarantine dir holds %d files, want 1", len(qfiles))
	}
	files, _ = filepath.Glob(filepath.Join(dir, "*.dcr"))
	if len(files) != 1 {
		t.Errorf("cache dir after recompute holds %d entries, want 1", len(files))
	}
}

// TestDCheckCacheDirRequiresReplay: -cache-dir outside replay mode is a
// usage error, not a silent no-op.
func TestDCheckCacheDirRequiresReplay(t *testing.T) {
	var out, errb bytes.Buffer
	if code := DCheck([]string{"-cache-dir", t.TempDir(), "x.dcp"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "-cache-dir requires -replay") {
		t.Errorf("stderr:\n%s", errb.String())
	}
}

// TestDCheckReplayStatsJSONBypassesCache: -stats-json reports metrics of a
// real run, so a warm cache must not short-circuit it.
func TestDCheckReplayStatsJSONBypassesCache(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join("..", "..", "testdata", "traces", "elevator.dct")

	cold := dcheckReplayOut(t, "-replay", "-stats-json", "-cache-dir", dir, path)
	warm := dcheckReplayOut(t, "-replay", "-stats-json", "-cache-dir", dir, path)
	if cold != warm {
		t.Errorf("stats runs differ:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	if !strings.Contains(warm, `"vm.`) && !strings.Contains(warm, `"pcd.`) {
		t.Errorf("no stats JSON in output:\n%s", warm)
	}
}

// TestDCBenchServeCache: the servecache experiment runs end to end and
// writes its JSON dump with the headline median.
func TestDCBenchServeCache(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "BENCH_servecache.json")
	var out, errb bytes.Buffer
	code := DCBench([]string{
		"-experiment", "servecache", "-scale", "0.2", "-trials", "1",
		"-servecache-out", outPath,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "corpus median warm speedup") {
		t.Errorf("output:\n%s", out.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"median_speedup_warm"`) {
		t.Errorf("dump:\n%s", data)
	}
}

// TestDCTraceReplayCacheDir: the trace tool's replay fan-out shares one
// cache directory; warm runs produce identical lines.
func TestDCTraceReplayCacheDir(t *testing.T) {
	dir := t.TempDir()
	cacheDir := t.TempDir()
	tracePath := recordRacyTrace(t, dir)

	var out, errb bytes.Buffer
	if code := DCTrace([]string{"replay", tracePath}, &out, &errb); code != 0 {
		t.Fatalf("uncached replay exit %d: %s", code, errb.String())
	}
	want := out.String()

	out.Reset()
	if code := DCTrace([]string{"replay", "-cache-dir", cacheDir, tracePath}, &out, &errb); code != 0 {
		t.Fatalf("cold replay exit %d: %s", code, errb.String())
	}
	if out.String() != want {
		t.Errorf("cold cached replay differs:\n%s\nvs:\n%s", out.String(), want)
	}
	files, err := filepath.Glob(filepath.Join(cacheDir, "*.dcr"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache dir after cold replay: %v (%d files)", err, len(files))
	}

	out.Reset()
	if code := DCTrace([]string{"replay", "-cache-dir", cacheDir, tracePath}, &out, &errb); code != 0 {
		t.Fatalf("warm replay exit %d: %s", code, errb.String())
	}
	if out.String() != want {
		t.Errorf("warm cached replay differs:\n%s", out.String())
	}

	// The analysis is part of the key: a different analysis is its own
	// entry, not a wrong hit.
	out.Reset()
	if code := DCTrace([]string{"replay", "-analysis", "velodrome", "-cache-dir", cacheDir, tracePath}, &out, &errb); code != 0 {
		t.Fatalf("velodrome replay exit %d: %s", code, errb.String())
	}
	files, _ = filepath.Glob(filepath.Join(cacheDir, "*.dcr"))
	if len(files) != 2 {
		t.Errorf("cache dir holds %d entries after second analysis, want 2", len(files))
	}
}
