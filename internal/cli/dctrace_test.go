package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// recordRacyTrace records racyDCP under a seed that exposes the violation
// and returns the trace path.
func recordRacyTrace(t *testing.T, dir string) string {
	t.Helper()
	prog := filepath.Join(dir, "prog.dcp")
	if err := os.WriteFile(prog, []byte(racyDCP), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "prog.dct")
	var out, errb bytes.Buffer
	code := DCTrace([]string{"record", "-analysis", "dc-single", "-seed", "2", "-o", tracePath, prog}, &out, &errb)
	if code != 0 {
		t.Fatalf("record exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "recorded ") {
		t.Fatalf("record output:\n%s", out.String())
	}
	return tracePath
}

func TestDCTraceRecordInfoReplayDiff(t *testing.T) {
	dir := t.TempDir()
	tracePath := recordRacyTrace(t, dir)

	var out, errb bytes.Buffer
	if code := DCTrace([]string{"info", tracePath}, &out, &errb); code != 0 {
		t.Fatalf("info exit %d: %s", code, errb.String())
	}
	for _, want := range []string{"program counter", "atomic method(s) [bump]", "complete", "seed 2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("info output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if code := DCTrace([]string{"replay", tracePath}, &out, &errb); code != 0 {
		t.Fatalf("replay exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "blamed [bump]") {
		t.Errorf("replay output:\n%s", out.String())
	}

	out.Reset()
	if code := DCTrace([]string{"replay", "-analysis", "velodrome", tracePath}, &out, &errb); code != 0 {
		t.Fatalf("velodrome replay exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "blamed [bump]") {
		t.Errorf("velodrome replay output:\n%s", out.String())
	}

	out.Reset()
	if code := DCTrace([]string{"diff", tracePath}, &out, &errb); code != 0 {
		t.Fatalf("diff exit %d: %s\n%s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "agree:") || strings.Contains(out.String(), "DISAGREE") {
		t.Errorf("diff output:\n%s", out.String())
	}
}

// TestDCTraceDirectoryFanOut: replay and diff expand a directory of traces
// and shard it across the worker pool.
func TestDCTraceDirectoryFanOut(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "prog.dcp")
	if err := os.WriteFile(prog, []byte(racyDCP), 0o644); err != nil {
		t.Fatal(err)
	}
	traceDir := filepath.Join(dir, "traces")
	if err := os.Mkdir(traceDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, seed := range []string{"1", "2", "3", "4"} {
		var out, errb bytes.Buffer
		code := DCTrace([]string{"record", "-seed", seed,
			"-o", filepath.Join(traceDir, "s"+seed+".dct"), prog}, &out, &errb)
		if code != 0 {
			t.Fatalf("record seed %s: exit %d: %s", seed, code, errb.String())
		}
	}
	var out, errb bytes.Buffer
	if code := DCTrace([]string{"replay", "-workers", "3", traceDir}, &out, &errb); code != 0 {
		t.Fatalf("fan-out replay exit %d: %s", code, errb.String())
	}
	if got := strings.Count(out.String(), "violation(s)"); got != 4 {
		t.Errorf("want 4 per-trace reports, got %d:\n%s", got, out.String())
	}
	// Reports come back in input order even with concurrent workers.
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	for i, want := range []string{"s1.dct", "s2.dct", "s3.dct", "s4.dct"} {
		if !strings.Contains(lines[i], want) {
			t.Errorf("line %d = %q, want it to mention %s", i, lines[i], want)
		}
	}
	out.Reset()
	if code := DCTrace([]string{"diff", "-workers", "2", traceDir}, &out, &errb); code != 0 {
		t.Fatalf("fan-out diff exit %d: %s\n%s", code, errb.String(), out.String())
	}
}

// TestDCTraceFanOutSkipsUndecodableTraces: a truncated or corrupt .dct in
// a batch is reported and skipped — the healthy traces' verdicts stand and
// the batch exits with the distinct skipped code (3), not a fan-out abort.
func TestDCTraceFanOutSkipsUndecodableTraces(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "prog.dcp")
	if err := os.WriteFile(prog, []byte(racyDCP), 0o644); err != nil {
		t.Fatal(err)
	}
	traceDir := filepath.Join(dir, "traces")
	if err := os.Mkdir(traceDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, seed := range []string{"1", "2"} {
		var out, errb bytes.Buffer
		code := DCTrace([]string{"record", "-seed", seed,
			"-o", filepath.Join(traceDir, "s"+seed+".dct"), prog}, &out, &errb)
		if code != 0 {
			t.Fatalf("record seed %s: exit %d: %s", seed, code, errb.String())
		}
	}
	raw, err := os.ReadFile(filepath.Join(traceDir, "s1.dct"))
	if err != nil {
		t.Fatal(err)
	}
	// A mid-file truncation and a flipped byte: both must be skipped.
	if err := os.WriteFile(filepath.Join(traceDir, "cut.dct"), raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	flipped := bytes.Clone(raw)
	flipped[len(flipped)/2] ^= 0xff
	if err := os.WriteFile(filepath.Join(traceDir, "flip.dct"), flipped, 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	if code := DCTrace([]string{"replay", "-workers", "2", traceDir}, &out, &errb); code != 3 {
		t.Fatalf("batch replay exit %d, want 3\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if got := strings.Count(out.String(), "violation(s)"); got != 2 {
		t.Errorf("want the 2 healthy per-trace reports, got %d:\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "skipped 2 undecodable trace(s) of 4") {
		t.Errorf("missing skip summary:\n%s", out.String())
	}
	for _, want := range []string{"skipping", "cut.dct", "flip.dct"} {
		if !strings.Contains(errb.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, errb.String())
		}
	}

	// diff takes the same path through the fan-out.
	out.Reset()
	errb.Reset()
	if code := DCTrace([]string{"diff", traceDir}, &out, &errb); code != 3 {
		t.Fatalf("batch diff exit %d, want 3\nstderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "agree:") {
		t.Errorf("healthy diff verdicts missing:\n%s", out.String())
	}
}

func TestDCTraceInfoRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	tracePath := recordRacyTrace(t, dir)
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	bad := filepath.Join(dir, "bad.dct")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := DCTrace([]string{"info", bad}, &out, &errb); code != 1 {
		t.Fatalf("corrupt info exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "corrupt") {
		t.Errorf("stderr: %s", errb.String())
	}
}

func TestDCTraceUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus-command"},
		{"record"},
		{"replay"},
		{"diff"},
		{"info"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := DCTrace(args, &out, &errb); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
	var out, errb bytes.Buffer
	if code := DCTrace([]string{"help"}, &out, &errb); code != 0 {
		t.Errorf("help exit %d", code)
	}
}

func TestDCheckRecordAndReplayFlags(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "prog.dcp")
	if err := os.WriteFile(prog, []byte(racyDCP), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "run.dct")

	var out, errb bytes.Buffer
	code := DCheck([]string{"-record", tracePath, "-seed", "2", prog}, &out, &errb)
	if code != 0 {
		t.Fatalf("-record exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "blamed methods: [bump]") {
		t.Errorf("-record live output:\n%s", out.String())
	}

	out.Reset()
	code = DCheck([]string{"-replay", "-analysis", "velodrome", tracePath}, &out, &errb)
	if code != 0 {
		t.Fatalf("-replay exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "blamed methods: [bump]") {
		t.Errorf("-replay output:\n%s", out.String())
	}

	// Flag misuse is rejected up front.
	if code := DCheck([]string{"-record", tracePath, "-trials", "3", prog}, &out, &errb); code != 2 {
		t.Errorf("-record -trials 3: exit %d, want 2", code)
	}
	if code := DCheck([]string{"-replay", "-v", tracePath}, &out, &errb); code != 2 {
		t.Errorf("-replay -v: exit %d, want 2", code)
	}
}

func TestDCGenAll(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "suite")
	var out, errb bytes.Buffer
	if code := DCGen([]string{"-all", "-out", dir, "-scale", "0.05"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.dcp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 19 {
		t.Fatalf("wrote %d programs, want 19", len(matches))
	}
	if !strings.Contains(out.String(), "19 benchmarks") {
		t.Errorf("output:\n%s", out.String())
	}
	// Every emitted program parses and records end to end.
	sample := filepath.Join(dir, "hsqldb6.dcp")
	tracePath := filepath.Join(dir, "hsqldb6.dct")
	out.Reset()
	if code := DCTrace([]string{"record", "-o", tracePath, sample}, &out, &errb); code != 0 {
		t.Fatalf("record emitted program: exit %d: %s", code, errb.String())
	}

	// -all without -out is a usage error.
	if code := DCGen([]string{"-all"}, &out, &errb); code != 2 {
		t.Errorf("-all without -out: exit %d, want 2", code)
	}
}
