package cli

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a bytes.Buffer safe to read while DCServe writes to it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestDCServeServesAndDrains drives the command end to end: start on an
// ephemeral port, serve a golden trace byte-identically to dcheck -replay,
// then cancel the context (the SIGTERM path) and watch it drain and exit 0.
func TestDCServeServesAndDrains(t *testing.T) {
	tracePath, err := filepath.Abs(filepath.Join("..", "..", "testdata", "traces", "elevator.dct"))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var want, werr bytes.Buffer
	if code := DCheck([]string{"-replay", tracePath}, &want, &werr); code != 0 {
		t.Fatalf("dcheck -replay: exit %d: %s", code, werr.String())
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errb syncBuffer
	exit := make(chan int, 1)
	go func() {
		exit <- DCServe(ctx, []string{"-addr", "127.0.0.1:0", "-drain-timeout", "2s"}, &out, &errb)
	}()

	// The banner prints the actual (ephemeral) address.
	addrRe := regexp.MustCompile(`serving on (http://[0-9.:]+)`)
	var base string
	for start := time.Now(); base == ""; {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		if time.Since(start) > 5*time.Second {
			t.Fatalf("server never announced its address:\n%s\n%s", out.String(), errb.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/check?name="+tracePath, "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/check: %d: %s", resp.StatusCode, body)
	}
	if string(body) != want.String() {
		t.Errorf("served report differs from dcheck -replay:\n%s\nvs:\n%s", body, want.String())
	}

	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit %d:\n%s\n%s", code, out.String(), errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("dcserve did not exit after cancellation:\n%s", out.String())
	}
	for _, wantLine := range []string{"dcserve: draining", "dcserve: drained, exiting"} {
		if !strings.Contains(out.String(), wantLine) {
			t.Errorf("stdout missing %q:\n%s", wantLine, out.String())
		}
	}
}
