package cli

import (
	"fmt"
	"io"
	"net"
	"net/http"

	"doublechecker/internal/telemetry"
)

// serveMetrics exposes a registry over HTTP for the duration of a CLI run:
// /metrics in Prometheus text format, /debug/vars (expvar), and the standard
// /debug/pprof profiles, all on one mux (telemetry.NewMux). It returns a
// stop function; the caller defers it so the endpoint lives exactly as long
// as the invocation.
func serveMetrics(addr string, reg *telemetry.Registry, stderr io.Writer) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	srv := &http.Server{Handler: reg.NewMux()}
	go srv.Serve(ln)
	fmt.Fprintf(stderr, "serving /metrics, /debug/vars and /debug/pprof on http://%s\n", ln.Addr())
	return func() { srv.Close() }, nil
}
