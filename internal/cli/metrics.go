package cli

import (
	"fmt"
	"net"
	"net/http"

	"doublechecker/internal/obs"
	"doublechecker/internal/telemetry"
)

// serveMetrics exposes a registry over HTTP for the duration of a CLI run:
// /metrics in Prometheus text format, /debug/vars (expvar), and the standard
// /debug/pprof profiles, all on one mux (telemetry.NewMux). It returns a
// stop function; the caller defers it so the endpoint lives exactly as long
// as the invocation.
func serveMetrics(addr string, reg *telemetry.Registry, log *obs.Logger) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	srv := &http.Server{Handler: reg.NewMux()}
	go srv.Serve(ln)
	log.Info("serving metrics", "addr", fmt.Sprintf("http://%s", ln.Addr()),
		"endpoints", "/metrics /debug/vars /debug/pprof")
	return func() { srv.Close() }, nil
}
