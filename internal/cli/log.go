package cli

import (
	"io"
	"os"

	"doublechecker/internal/obs"
)

// newCLILogger builds the structured diagnostic logger the CLI tools
// share: slog text lines on w (stderr by convention). Report output —
// stdout — never goes through it, so the byte-identical report contracts
// hold regardless of log level.
func newCLILogger(w io.Writer, level string) *obs.Logger {
	return obs.NewLogger(w, obs.ParseLevel(level), nil)
}

// writeTraceOut finishes tr and writes its Chrome trace-event JSON to
// path (load it at ui.perfetto.dev or chrome://tracing). Export is a
// diagnostic, never fatal: failures are logged, not returned.
func writeTraceOut(log *obs.Logger, tr *obs.Trace, path string) {
	tr.Finish()
	if err := os.WriteFile(path, tr.Chrome(), 0o644); err != nil {
		log.Error("trace export failed", "path", path, "err", err)
		return
	}
	log.Info("trace exported",
		"path", path, "trace_id", tr.ID(), "spans", len(tr.Snapshot()), "dropped", tr.Dropped())
}
