package cli

import (
	"flag"
	"fmt"
	"io"

	"doublechecker/internal/lang"
	"doublechecker/internal/spec"
	"doublechecker/internal/vm"
	"doublechecker/internal/workloads"
)

// DCGen runs the dcgen tool: list the built-in benchmarks or dump one as
// workload-language source. It returns a process exit code.
func DCGen(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dcgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list  = fs.Bool("list", false, "list available benchmarks")
		scale = fs.Float64("scale", 0.2, "workload scale factor")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, name := range workloads.All() {
			w, _ := workloads.Get(name)
			fmt.Fprintf(stdout, "%-12s %s\n", w.Name, w.Desc)
		}
		return 0
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: dcgen [-scale S] <benchmark>   (or dcgen -list)")
		return 2
	}
	built, err := workloads.Build(fs.Arg(0), *scale)
	if err != nil {
		fmt.Fprintln(stderr, "dcgen:", err)
		return 1
	}
	// The dumped `atomic` markers reflect the paper-style initial
	// specification (minus the benchmark's documented exclusions), so
	// `dcheck file.dcp` checks the same thing the harness does.
	s := spec.Initial(built.Prog)
	if err := s.ExcludeByName(built.InitialExclusions...); err != nil {
		fmt.Fprintln(stderr, "dcgen:", err)
		return 1
	}
	f := lang.FromProgram(built.Prog, func(m vm.MethodID) bool { return s.Atomic(m) })
	fmt.Fprint(stdout, lang.Print(f))
	return 0
}
