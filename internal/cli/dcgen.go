package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"doublechecker/internal/lang"
	"doublechecker/internal/spec"
	"doublechecker/internal/vm"
	"doublechecker/internal/workloads"
)

// DCGen runs the dcgen tool: list the built-in benchmarks or dump one as
// workload-language source. It returns a process exit code.
func DCGen(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dcgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list  = fs.Bool("list", false, "list available benchmarks")
		scale = fs.Float64("scale", 0.2, "workload scale factor")
		all   = fs.Bool("all", false, "emit every built-in benchmark (requires -out)")
		out   = fs.String("out", "", "with -all: directory to write <benchmark>.dcp files into")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, name := range workloads.All() {
			w, _ := workloads.Get(name)
			fmt.Fprintf(stdout, "%-12s %s\n", w.Name, w.Desc)
		}
		return 0
	}
	if *all {
		if *out == "" || fs.NArg() != 0 {
			fmt.Fprintln(stderr, "usage: dcgen -all -out <dir> [-scale S]")
			return 2
		}
		if err := dcgenAll(*out, *scale, stdout); err != nil {
			fmt.Fprintln(stderr, "dcgen:", err)
			return 1
		}
		return 0
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: dcgen [-scale S] <benchmark>   (or dcgen -list, or dcgen -all -out <dir>)")
		return 2
	}
	src, err := dcgenSource(fs.Arg(0), *scale)
	if err != nil {
		fmt.Fprintln(stderr, "dcgen:", err)
		return 1
	}
	fmt.Fprint(stdout, src)
	return 0
}

// dcgenSource renders one benchmark as workload-language source. The dumped
// `atomic` markers reflect the paper-style initial specification (minus the
// benchmark's documented exclusions), so `dcheck file.dcp` checks the same
// thing the harness does.
func dcgenSource(name string, scale float64) (string, error) {
	built, err := workloads.Build(name, scale)
	if err != nil {
		return "", err
	}
	s := spec.Initial(built.Prog)
	if err := s.ExcludeByName(built.InitialExclusions...); err != nil {
		return "", err
	}
	f := lang.FromProgram(built.Prog, func(m vm.MethodID) bool { return s.Atomic(m) })
	return lang.Print(f), nil
}

// dcgenAll writes every built-in benchmark into dir as <name>.dcp — one
// invocation produces the whole suite, which is how the golden-trace corpus
// is (re)built.
func dcgenAll(dir string, scale float64, stdout io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	names := workloads.All()
	for _, name := range names {
		src, err := dcgenSource(name, scale)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, name+".dcp")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
	}
	fmt.Fprintf(stdout, "%d benchmarks at scale %g\n", len(names), scale)
	return nil
}
