// dcserve: the always-on checking service. Serves .dct uploads and named
// workloads over HTTP with admission control, circuit breaking, a shared
// PCD worker budget, and graceful drain; see internal/server.

package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"doublechecker/internal/obs"
	"doublechecker/internal/server"
	"doublechecker/internal/store"
	"doublechecker/internal/telemetry"
)

// DCServe runs the dcserve command: parse flags, serve until the context is
// canceled (SIGTERM/SIGINT in main), then drain gracefully. Returns the
// process exit code.
func DCServe(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dcserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr = fs.String("addr", "127.0.0.1:8377", "listen address (host:port; port 0 picks a free port)")
		cfg  server.Config
		req  = fs.Duration("request-timeout", server.DefaultRequestTimeout, "per-check wall-clock budget")
		drn  = fs.Duration("drain-timeout", server.DefaultDrainTimeout, "how long in-flight checks get to finish on shutdown")
	)
	fs.IntVar(&cfg.MaxConcurrent, "concurrency", 0, "checks running at once (0: GOMAXPROCS)")
	fs.IntVar(&cfg.MaxQueue, "queue", server.DefaultMaxQueue, "admitted requests that may wait for a slot before shedding with 429")
	fs.IntVar(&cfg.PCDBudget, "pcd-budget", server.DefaultPCDBudget, "global PCD pool workers shared across requests (-1 disables pooling)")
	fs.IntVar(&cfg.PCDPerRequest, "pcd-per-request", server.DefaultPCDPerRequest, "PCD pool workers one request asks for")
	fs.Int64Var(&cfg.MaxBodyBytes, "max-body", server.DefaultMaxBodyBytes, "largest accepted trace upload, bytes")
	fs.IntVar(&cfg.BreakerThreshold, "breaker-threshold", 0, "consecutive same-digest failures that open a circuit (0: default)")
	fs.DurationVar(&cfg.BreakerCooldown, "breaker-cooldown", 0, "open-circuit cooldown before a probe (0: default)")
	fs.IntVar(&cfg.Retries, "retries", 1, "extra attempts a transient check failure earns")
	fs.Float64Var(&cfg.WorkloadScale, "scale", server.DefaultWorkloadScale, "scale factor for named workload checks")
	fs.BoolVar(&cfg.AllowFaults, "allow-faults", false, "enable deterministic fault-injection query parameters (chaos testing only)")
	var (
		cacheMem  = fs.Int64("cache-mem", store.DefaultMemBudget, "result-store memory tier byte budget (0 disables the tier)")
		cacheDir  = fs.String("cache-dir", "", "result-store disk tier directory (empty disables the tier)")
		cacheDisk = fs.Int64("cache-disk", 0, "result-store disk tier byte budget (0: unbounded)")
		noCache   = fs.Bool("no-cache", false, "disable the result store entirely (every check runs cold)")
		logLevel  = fs.String("log-level", "info", "structured log level: debug, info, warn, error")
		flightBuf = fs.Int("flight-buf", obs.DefaultFlightRecorderSize,
			"flight recorder ring capacity (recent span/log/panic/quarantine events, served at /debug/flightrecorder)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "dcserve: unexpected arguments %v\n", fs.Args())
		return 2
	}
	cfg.RequestTimeout = *req
	cfg.DrainTimeout = *drn

	// One flight recorder for the whole service: request spans, log lines,
	// panic quarantines, and store quarantines all land in the same ring.
	// The service log — lifecycle plus one line per check request — goes to
	// stdout, which the ops convention captures as the server log.
	rec := obs.NewFlightRecorder(*flightBuf)
	logger := obs.NewLogger(stdout, obs.ParseLevel(*logLevel), rec)
	cfg.Logger = logger
	cfg.Recorder = rec

	// The result store is on by default (memory tier only); -cache-dir adds
	// the persistent tier, -no-cache turns the whole thing off. Store and
	// server share one registry so /metrics shows store.* beside server.*.
	if !*noCache && (*cacheMem > 0 || *cacheDir != "") {
		cfg.Telemetry = telemetry.NewRegistry()
		cache, err := store.Open(store.Config{
			Dir:        *cacheDir,
			MemBudget:  *cacheMem,
			DiskBudget: *cacheDisk,
			Telemetry:  cfg.Telemetry,
			Recorder:   rec,
		})
		if err != nil {
			fmt.Fprintf(stderr, "dcserve: %v\n", err)
			return 1
		}
		cfg.Cache = cache
	}

	s := server.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "dcserve: %v\n", err)
		return 1
	}
	logger.Info(fmt.Sprintf("dcserve: serving on http://%s", ln.Addr()),
		"drain_timeout", cfg.DrainTimeout.String(), "log_level", *logLevel)

	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		logger.Error("dcserve: serve failed", "err", err.Error())
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting (readyz flips to 503 and new checks are
	// rejected while existing connections still get answers), let in-flight
	// checks finish within the drain deadline, cancel stragglers, then close
	// the listener and idle connections.
	logger.Info("dcserve: draining")
	clean := s.WaitDrain(context.Background())
	if !clean {
		logger.Warn("dcserve: drain deadline exceeded; canceled remaining checks",
			"deadline", cfg.DrainTimeout.String())
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		httpSrv.Close()
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("dcserve: serve failed", "err", err.Error())
		return 1
	}
	logger.Info("dcserve: drained, exiting")
	return 0
}
