package cli

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"doublechecker/internal/core"
	"doublechecker/internal/crosscheck"
	"doublechecker/internal/lang"
	"doublechecker/internal/obs"
	"doublechecker/internal/spec"
	"doublechecker/internal/store"
	"doublechecker/internal/supervise"
	"doublechecker/internal/telemetry"
	"doublechecker/internal/trace"
	"doublechecker/internal/vm"
	"doublechecker/internal/workloads"
)

// DCTrace runs the dctrace tool: record, inspect, replay, and diff trace
// files. It returns a process exit code.
func DCTrace(args []string, stdout, stderr io.Writer) int {
	return DCTraceContext(context.Background(), args, stdout, stderr)
}

const dctraceUsage = `usage: dctrace <command> [flags] ...

commands:
  record   execute a .dcp program once and capture its event stream
  info     describe trace files (header, counts, size)
  replay   re-check traces through an analysis, no VM involved
  diff     replay each trace through DoubleChecker, Velodrome and
           ICD-only, and diff the violations
  fuzz     explore (workload, scheduler, seed) triples, checking the
           soundness, precision and determinism oracles on each; oracle
           failures are shrunk into standalone repro traces

run 'dctrace <command> -h' for the command's flags.
`

// DCTraceContext is DCTrace under a context; cancellation aborts long
// replays promptly.
func DCTraceContext(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, dctraceUsage)
		return 2
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "record":
		err = dctraceRecord(ctx, rest, stdout, stderr)
	case "info":
		err = dctraceInfo(rest, stdout, stderr)
	case "replay":
		err = dctraceReplay(ctx, rest, stdout, stderr)
	case "diff":
		err = dctraceDiff(ctx, rest, stdout, stderr)
	case "fuzz":
		err = dctraceFuzz(ctx, rest, stdout, stderr)
	case "-h", "--help", "help":
		fmt.Fprint(stdout, dctraceUsage)
		return 0
	default:
		fmt.Fprintf(stderr, "dctrace: unknown command %q\n%s", cmd, dctraceUsage)
		return 2
	}
	switch err {
	case nil:
		return 0
	case errUsage:
		return 2
	case errDisagree:
		return 1
	case errSkipped:
		return 3
	}
	fmt.Fprintln(stderr, "dctrace:", err)
	return 1
}

var (
	errUsage    = fmt.Errorf("usage error")
	errDisagree = fmt.Errorf("checkers disagree")
	// errSkipped reports that the batch completed but some trace files were
	// skipped as undecodable (exit code 3): the healthy traces' verdicts
	// stand, and the caller can tell a bad corpus entry from a bad checker.
	errSkipped = fmt.Errorf("undecodable traces skipped")
)

// isDecodeErr reports whether err means the trace file itself is unusable
// (bad magic, corruption, truncation, unreadable), as opposed to a checker
// failure on a valid trace.
func isDecodeErr(err error) bool {
	return errors.Is(err, trace.ErrBadMagic) || errors.Is(err, trace.ErrVersion) ||
		errors.Is(err, trace.ErrCorrupt) || errors.Is(err, trace.ErrTruncated) ||
		errors.Is(err, trace.ErrIO)
}

// loadUnit parses and lowers a .dcp file into a program plus its atomicity
// specification.
func loadUnit(path string) (*vm.Program, *spec.Spec, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	file, err := lang.Parse(string(src))
	if err != nil {
		return nil, nil, fmt.Errorf("%s:%v", path, err)
	}
	unit, err := lang.Lower(file)
	if err != nil {
		return nil, nil, fmt.Errorf("%s:%v", path, err)
	}
	sp := spec.New(unit.Prog)
	atomicSet := make(map[string]bool, len(unit.AtomicMethods))
	for _, n := range unit.AtomicMethods {
		atomicSet[n] = true
	}
	for _, m := range unit.Prog.Methods {
		if !atomicSet[m.Name] {
			sp.Exclude(m.ID)
		}
	}
	return unit.Prog, sp, nil
}

func dctraceRecord(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dctrace record", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		analysisName = fs.String("analysis", "baseline",
			"checker to run alongside recording (baseline records without checking)")
		seed     = fs.Int64("seed", 1, "schedule seed")
		sticky   = fs.Float64("switch", 0.1, "scheduler switch probability in (0,1]")
		maxSteps = fs.Uint64("max-steps", 0, "step budget (0: VM default)")
		out      = fs.String("o", "", "output trace path (default: program path with .dct)")
	)
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: dctrace record [flags] program.dcp")
		fs.PrintDefaults()
		return errUsage
	}
	if *sticky <= 0 || *sticky > 1 {
		fmt.Fprintf(stderr, "dctrace record: -switch %v outside (0,1]\n", *sticky)
		return errUsage
	}
	analysis, err := core.ParseAnalysis(*analysisName)
	if err != nil {
		return err
	}
	path := fs.Arg(0)
	prog, sp, err := loadUnit(path)
	if err != nil {
		return err
	}
	outPath := *out
	if outPath == "" {
		outPath = strings.TrimSuffix(path, filepath.Ext(path)) + ".dct"
	}
	res, err := recordTrace(ctx, prog, sp, outPath, recordOpts{
		analysis: analysis, seed: *seed, sticky: *sticky, maxSteps: *maxSteps,
		source: filepath.Base(path),
	})
	if err != nil {
		return err
	}
	fi, _ := os.Stat(outPath)
	var size int64
	if fi != nil {
		size = fi.Size()
	}
	fmt.Fprintf(stdout, "recorded %s: %d events, %d bytes (%s)\n",
		outPath, res.VMStats.Events().Total(), size, res.VMStats.Events())
	if analysis != core.Baseline {
		fmt.Fprintf(stdout, "live %s: %d violation(s)\n", analysis, len(res.Violations))
	}
	return nil
}

type recordOpts struct {
	analysis core.Analysis
	seed     int64
	sticky   float64
	maxSteps uint64
	source   string
}

// recordTrace executes prog once, teeing its event stream into a trace file
// at outPath. On any failure the partial file is removed.
func recordTrace(ctx context.Context, prog *vm.Program, sp *spec.Spec, outPath string, o recordOpts) (*core.Result, error) {
	var atomicIDs []vm.MethodID
	for _, m := range prog.Methods {
		if sp.Atomic(m.ID) {
			atomicIDs = append(atomicIDs, m.ID)
		}
	}
	f, err := os.Create(outPath)
	if err != nil {
		return nil, err
	}
	w, err := trace.NewWriter(f, trace.Header{
		Program: prog,
		Atomic:  atomicIDs,
		Seed:    o.seed,
		Sched:   fmt.Sprintf("sticky(%g)", o.sticky),
		Source:  o.source,
	})
	if err != nil {
		f.Close()
		os.Remove(outPath)
		return nil, err
	}
	res, err := core.RecordRun(ctx, prog, w, core.RecordConfig{
		Config: core.Config{
			Analysis: o.analysis,
			Sched:    vm.NewSticky(o.seed, o.sticky),
			Atomic:   sp.Atomic,
			MaxSteps: o.maxSteps,
		},
		Source: o.source,
	})
	if err != nil {
		f.Close()
		os.Remove(outPath)
		return nil, err
	}
	if cerr := f.Close(); cerr != nil {
		os.Remove(outPath)
		return nil, cerr
	}
	return res, nil
}

// expandTracePaths turns each argument into trace files: directories expand
// to their *.dct entries, sorted.
func expandTracePaths(args []string) ([]string, error) {
	var paths []string
	for _, a := range args {
		fi, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !fi.IsDir() {
			paths = append(paths, a)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(a, "*.dct"))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("%s: no .dct files", a)
		}
		sort.Strings(matches)
		paths = append(paths, matches...)
	}
	return paths, nil
}

func dctraceInfo(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dctrace info", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: dctrace info trace.dct ...")
		return errUsage
	}
	paths, err := expandTracePaths(fs.Args())
	if err != nil {
		return err
	}
	for _, path := range paths {
		d, err := trace.ReadFile(path)
		if err != nil {
			return err
		}
		fi, _ := os.Stat(path)
		var size int64
		if fi != nil {
			size = fi.Size()
		}
		h := &d.Header
		complete := "complete"
		if !d.Complete {
			complete = "partial"
		}
		fmt.Fprintf(stdout, "%s: v%d, %d bytes, %s\n", path, h.Version, size, complete)
		fmt.Fprintf(stdout, "  program %s: %d methods, %d threads, %d objects (digest %016x)\n",
			h.Program.Name, len(h.Program.Methods), len(h.Program.Threads),
			h.Program.NumObjects, h.ProgramDigest)
		fmt.Fprintf(stdout, "  spec: %d atomic method(s) %v (digest %016x)\n",
			len(h.Atomic), h.AtomicNames(), h.SpecDigest)
		fmt.Fprintf(stdout, "  schedule: seed %d, %s, source %q\n", h.Seed, h.Sched, h.Source)
		fmt.Fprintf(stdout, "  events: %d (%s)\n", d.Counts.Total(), d.Counts)
	}
	return nil
}

// traceJob is one unit of fan-out work: replay or diff one trace file.
type traceJob struct {
	index int
	path  string
}

// traceJobResult carries one job's printed report back in order.
type traceJobResult struct {
	index    int
	report   string
	failures []string
	err      error
	disagree bool
}

// runTraceJobs shards jobs across a worker pool. Each job runs under
// supervise.Trial, so a panicking or overrunning replay is quarantined as
// that trace's failure instead of taking the whole batch down. Reports are
// printed in input order regardless of completion order.
func runTraceJobs(ctx context.Context, paths []string, workers int, timeout time.Duration,
	analysisLabel string, run func(ctx context.Context, path string) (string, bool, error),
	stdout io.Writer, logger *obs.Logger) error {

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(paths) {
		workers = len(paths)
	}
	jobs := make(chan traceJob)
	results := make([]traceJobResult, len(paths))
	var wg sync.WaitGroup
	budget := supervise.Budget{TrialTimeout: timeout}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				r := traceJobResult{index: job.index}
				type jobOut struct {
					report   string
					disagree bool
				}
				out, err := supervise.Trial(ctx, budget, analysisLabel, int64(job.index),
					func(ctx context.Context, _ int64) (jobOut, error) {
						report, disagree, err := run(ctx, job.path)
						return jobOut{report, disagree}, err
					})
				for _, f := range out.Failures {
					r.failures = append(r.failures, fmt.Sprintf("%s: %s", job.path, f))
				}
				switch {
				case err != nil:
					r.err = err // canceled
				case !out.OK:
					if f := out.LastFailure(); f != nil {
						r.err = fmt.Errorf("%s: %w", job.path, f.Err)
					} else {
						r.err = fmt.Errorf("%s: failed", job.path)
					}
				default:
					r.report = out.Value.report
					r.disagree = out.Value.disagree
				}
				results[job.index] = r
			}
		}()
	}
	for i, p := range paths {
		jobs <- traceJob{index: i, path: p}
	}
	close(jobs)
	wg.Wait()

	var firstErr error
	disagreed, skipped := 0, 0
	for _, r := range results {
		for _, f := range r.failures {
			logger.Warn("trace job failure", "failure", f)
		}
		if r.err != nil {
			// An undecodable trace file is that file's problem, not the
			// batch's: report it, skip it, and keep the healthy verdicts.
			if isDecodeErr(r.err) && !errors.Is(r.err, supervise.ErrCanceled) {
				skipped++
				logger.Warn("skipping undecodable trace", "err", r.err.Error())
				continue
			}
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		fmt.Fprint(stdout, r.report)
		if r.disagree {
			disagreed++
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if disagreed > 0 {
		fmt.Fprintf(stdout, "%d of %d trace(s) disagree\n", disagreed, len(paths))
		return errDisagree
	}
	if skipped > 0 {
		fmt.Fprintf(stdout, "skipped %d undecodable trace(s) of %d\n", skipped, len(paths))
		return errSkipped
	}
	return nil
}

func dctraceReplay(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dctrace replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		analysisName = fs.String("analysis", "dc-single", "checker to replay the trace through")
		workers      = fs.Int("workers", 0, "worker pool size (0: GOMAXPROCS)")
		pcdWorkers   = fs.Int("pcd-workers", 0, "PCD replay worker pool size per trace; >=2 checks SCCs concurrently (0/1: serial)")
		timeout      = fs.Duration("trace-timeout", 0, "wall-clock budget per trace (0: unbounded)")
		statsJSON    = fs.Bool("stats-json", false, "print each trace's telemetry snapshot as JSON (deterministic: span wall times stripped)")
		cacheDir     = fs.String("cache-dir", "", "content-addressed result store directory; hits skip the check")
		traceOut     = fs.String("trace-out", "", "write the batch's span timeline as Chrome trace-event JSON (load in Perfetto)")
		logLevel     = fs.String("log-level", "info", "diagnostic log level: debug, info, warn, error")
	)
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: dctrace replay [flags] trace.dct|dir ...")
		fs.PrintDefaults()
		return errUsage
	}
	analysis, err := core.ParseAnalysis(*analysisName)
	if err != nil {
		return err
	}
	paths, err := expandTracePaths(fs.Args())
	if err != nil {
		return err
	}
	logger := newCLILogger(stderr, *logLevel)
	// One trace spans the whole batch: each job's supervise.trial (and the
	// pipeline spans under it) become per-trace children of this root, so
	// the exported timeline shows the fan-out across workers.
	if *traceOut != "" {
		tr := obs.NewTrace(obs.TraceConfig{Name: "dctrace.replay"})
		ctx = obs.ContextWithSpan(ctx, tr.Root())
		defer writeTraceOut(logger, tr, *traceOut)
	}
	// One store shared by every worker in the fan-out (its methods are
	// concurrency-safe); -stats-json reports real-run metrics, so it forces
	// every trace cold while still writing results back.
	var cache *store.Store
	if *cacheDir != "" {
		cache, err = store.Open(store.Config{Dir: *cacheDir})
		if err != nil {
			return err
		}
	}
	replayLine := func(path string, violations int, blamed []string) string {
		var b strings.Builder
		fmt.Fprintf(&b, "%s: %d violation(s)", path, violations)
		if len(blamed) > 0 {
			fmt.Fprintf(&b, ", blamed %v", blamed)
		}
		b.WriteString("\n")
		return b.String()
	}
	return runTraceJobs(ctx, paths, *workers, *timeout, "replay-"+analysis.String(),
		func(ctx context.Context, path string) (string, bool, error) {
			sp, ctx := obs.StartSpan(ctx, "dctrace.trace")
			sp.SetStr("path", path)
			defer sp.End()
			if cache == nil {
				d, err := trace.ReadFile(path)
				if err != nil {
					return "", false, err
				}
				res, err := core.RunTrace(ctx, d, core.Config{Analysis: analysis, PCDWorkers: *pcdWorkers})
				if err != nil {
					return "", false, err
				}
				var b strings.Builder
				b.WriteString(replayLine(path, len(res.Violations), res.BlamedMethodNames(d.Header.Program)))
				if *statsJSON {
					b.Write(res.Telemetry.Deterministic().JSON())
				}
				return b.String(), false, nil
			}

			raw, err := os.ReadFile(path)
			if err != nil {
				return "", false, err
			}
			hdr, rest, err := trace.PeekHeader(bytes.NewReader(raw))
			if err != nil {
				return "", false, fmt.Errorf("%s: %w", path, err)
			}
			key := store.TraceKey(hdr, store.BodyDigest(raw), *analysisName)
			if !*statsJSON {
				if e, ok := cache.Get(key); ok {
					return replayLine(path, e.Violations, e.Blamed), false, nil
				}
			}
			d, err := trace.Read(rest)
			if err != nil {
				return "", false, fmt.Errorf("%s: %w", path, err)
			}
			res, err := core.RunTrace(ctx, d, core.Config{Analysis: analysis, PCDWorkers: *pcdWorkers})
			if err != nil {
				return "", false, err
			}
			if len(res.PCDQuarantined) == 0 {
				if err := cache.Put(key, &store.Entry{
					Program:    d.Header.Program.Name,
					Events:     d.Counts.Total(),
					Violations: len(res.Violations),
					Blamed:     res.BlamedMethodNames(d.Header.Program),
				}); err != nil {
					return "", false, err
				}
			}
			var b strings.Builder
			b.WriteString(replayLine(path, len(res.Violations), res.BlamedMethodNames(d.Header.Program)))
			if *statsJSON {
				b.Write(res.Telemetry.Deterministic().JSON())
			}
			return b.String(), false, nil
		}, stdout, logger)
}

func dctraceDiff(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dctrace diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workers = fs.Int("workers", 0, "worker pool size (0: GOMAXPROCS)")
		timeout = fs.Duration("trace-timeout", 0, "wall-clock budget per trace (0: unbounded)")
		verbose = fs.Bool("v", false, "print each checker's violation signatures")
	)
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: dctrace diff [flags] trace.dct|dir ...")
		fs.PrintDefaults()
		return errUsage
	}
	paths, err := expandTracePaths(fs.Args())
	if err != nil {
		return err
	}
	return runTraceJobs(ctx, paths, *workers, *timeout, "diff",
		func(ctx context.Context, path string) (string, bool, error) {
			d, err := trace.ReadFile(path)
			if err != nil {
				return "", false, err
			}
			td, err := core.DiffTrace(ctx, d)
			if err != nil {
				return "", false, err
			}
			var b strings.Builder
			fmt.Fprintf(&b, "%s: %s\n", path, td.Summary())
			if *verbose || !td.Agree() {
				fmt.Fprintf(&b, "  dc-single: %v\n", td.DCViolations)
				fmt.Fprintf(&b, "  velodrome: %v\n", td.VeloViolations)
			}
			if !td.Agree() {
				if len(td.OnlyDC) > 0 {
					fmt.Fprintf(&b, "  only dc-single: %v\n", td.OnlyDC)
				}
				if len(td.OnlyVelo) > 0 {
					fmt.Fprintf(&b, "  only velodrome: %v\n", td.OnlyVelo)
				}
				if len(td.ICDMissed) > 0 {
					fmt.Fprintf(&b, "  blamed but missed by ICD: %v\n", td.ICDMissed)
				}
				// Per-checker pipeline metrics, so the disagreement can be
				// localized to a stage (edge recording, SCC detection, replay).
				fmt.Fprintf(&b, "  dc-single telemetry: %s\n", pipelineCounters(td.DCTelemetry))
				fmt.Fprintf(&b, "  velodrome telemetry: %s\n", pipelineCounters(td.VeloTelemetry))
				fmt.Fprintf(&b, "  dc-first telemetry:  %s\n", pipelineCounters(td.FirstTelemetry))
			}
			return b.String(), !td.Agree(), nil
		}, stdout, newCLILogger(stderr, "info"))
}

// pipelineCounters renders a snapshot's nonzero checker counters (Octet
// transitions, IDG/SCC, PCD, Velodrome) as a stable one-line summary.
func pipelineCounters(s *telemetry.Snapshot) string {
	if s == nil {
		return "(none)"
	}
	names := make([]string, 0, len(s.Counters))
	for n, v := range s.Counters {
		if v == 0 {
			continue
		}
		for _, prefix := range []string{"octet.", "icd.", "pcd.", "velo."} {
			if strings.HasPrefix(n, prefix) {
				names = append(names, n)
				break
			}
		}
	}
	if len(names) == 0 {
		return "(none)"
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, s.Counters[n])
	}
	return strings.Join(parts, " ")
}

// dctraceFuzz runs the schedule-exploration cross-checking harness: a
// budgeted sweep of (workload, scheduler, seed) triples — plus an exhaustive
// enumeration of the tiny corpus — checking the soundness, precision and
// determinism oracles on every execution. Oracle failures are minimized by
// the shrinker and written as standalone .dct repros.
func dctraceFuzz(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dctrace fuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		budget   = fs.Int("budget", 200, "number of (workload, scheduler, seed) triples to explore")
		seedBase = fs.Int64("seed", 1, "first schedule seed of the sweep")
		reproDir = fs.String("repro-dir", "testdata/repros", "directory for shrunk failure repros (empty: do not write repros)")
		tiny     = fs.Bool("tiny", true, "also exhaustively enumerate every interleaving of the tiny corpus")
	)
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: dctrace fuzz [flags]")
		return errUsage
	}
	failed := false
	if *tiny {
		for _, tp := range workloads.Tiny() {
			rep, err := crosscheck.Enumerate(ctx,
				crosscheck.Source{Name: tp.Name, Prog: tp.Prog, Atomic: tp.Atomic},
				64, 4096, nil)
			if err != nil {
				return err
			}
			ok := rep.Agreed == rep.Interleavings && rep.Deterministic == rep.Interleavings
			fmt.Fprintf(stdout, "enumerate %-14s %4d interleaving(s), %d violating, oracles %s\n",
				tp.Name, rep.Interleavings, rep.WithViolations, map[bool]string{true: "passed", false: "FAILED"}[ok])
			failed = failed || !ok
		}
	}
	rep, err := crosscheck.Explore(ctx, crosscheck.Options{
		Budget:   *budget,
		SeedBase: *seedBase,
		ReproDir: *reproDir,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, rep.Summary())
	for _, f := range rep.Failures {
		fmt.Fprintf(stdout, "  FAILURE %s: agree=%v det=%v", f.Triple, f.Agree, f.Deterministic)
		if f.DetDiag != "" {
			fmt.Fprintf(stdout, " (%s)", f.DetDiag)
		}
		if f.ReproPath != "" {
			fmt.Fprintf(stdout, " repro=%s (%d events)", f.ReproPath, f.ReproEvents)
		}
		fmt.Fprintln(stdout)
	}
	if failed || len(rep.Failures) > 0 {
		return errDisagree
	}
	return nil
}
