// Package cli implements the command-line tools' logic behind injectable
// writers, so cmd/dcheck, cmd/dcbench and cmd/dcgen stay one-line mains and
// the flag handling, file handling and output formatting are unit-tested.
package cli

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"doublechecker/internal/core"
	"doublechecker/internal/cost"
	"doublechecker/internal/icd"
	"doublechecker/internal/lang"
	"doublechecker/internal/obs"
	"doublechecker/internal/spec"
	"doublechecker/internal/store"
	"doublechecker/internal/supervise"
	"doublechecker/internal/telemetry"
	"doublechecker/internal/trace"
	"doublechecker/internal/vm"
)

// DCheck runs the dcheck tool: parse a .dcp program, lint it, and run the
// selected checker configuration (or iterative refinement). It returns a
// process exit code.
func DCheck(args []string, stdout, stderr io.Writer) int {
	return DCheckContext(context.Background(), args, stdout, stderr)
}

// DCheckContext is DCheck under a context: cancellation (e.g. SIGINT via
// signal.NotifyContext in cmd/dcheck) aborts the run promptly.
func DCheckContext(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		analysisName = fs.String("analysis", "dc-single",
			"checker: baseline, velodrome, velodrome-unsound, dc-single, dc-first, dc-second, velodrome-second, pcd-only")
		seed    = fs.Int64("seed", 1, "schedule seed")
		trials  = fs.Int("trials", 1, "number of trials (distinct seeds starting at -seed)")
		sticky  = fs.Float64("switch", 0.1, "scheduler switch probability in (0,1]")
		refine  = fs.Bool("refine", false, "run iterative specification refinement instead of a plain check")
		lint    = fs.Bool("lint", false, "only run static well-formedness checks and exit")
		costly  = fs.Bool("cost", false, "report modelled cost (normalized against an uninstrumented run)")
		verbose = fs.Bool("v", false, "print a timeline explanation for each violation")
		dot     = fs.Bool("dot", false, "emit the first violation as a Graphviz digraph and exit")

		trialTimeout = fs.Duration("trial-timeout", 0, "wall-clock budget per trial (0: unbounded)")
		maxSteps     = fs.Uint64("max-steps", 0, "step budget per execution (0: VM default)")
		retries      = fs.Int("retries", 1, "extra attempts (rotated seeds) after a deadlock or step-limit trial")

		record   = fs.String("record", "", "record the execution's event stream to this .dct trace file (requires -trials 1)")
		replay   = fs.Bool("replay", false, "treat the argument as a .dct trace and re-check it without executing")
		cacheDir = fs.String("cache-dir", "", "with -replay: content-addressed result store directory; hits skip the check")

		pcdWorkers = fs.Int("pcd-workers", 0,
			"PCD replay worker pool size; >=2 checks SCCs concurrently off the critical path (0/1: in-line serial replay)")
		icdEngine = fs.String("icd-engine", "incremental",
			"ICD detection engine: incremental (amortized SCC condensation) or scan (full walk per finish, ablation)")

		statsJSON   = fs.Bool("stats-json", false, "print the run's telemetry snapshot as JSON (deterministic: span wall times stripped)")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics (Prometheus text), /debug/vars and /debug/pprof on this address while the check runs")
		traceOut    = fs.String("trace-out", "", "write the run's span timeline as Chrome trace-event JSON (load in Perfetto)")
		logLevel    = fs.String("log-level", "info", "diagnostic log level: debug, info, warn, error")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: dcheck [flags] program.dcp   (or dcheck -replay [flags] trace.dct)")
		fs.PrintDefaults()
		return 2
	}
	if *sticky <= 0 || *sticky > 1 {
		fmt.Fprintf(stderr, "dcheck: -switch %v outside (0,1]\n", *sticky)
		return 2
	}
	if *retries < 0 {
		fmt.Fprintf(stderr, "dcheck: -retries %d is negative\n", *retries)
		return 2
	}
	if *pcdWorkers < 0 {
		fmt.Fprintf(stderr, "dcheck: -pcd-workers %d is negative\n", *pcdWorkers)
		return 2
	}
	if *record != "" && (*trials != 1 || *refine || *dot || *replay) {
		fmt.Fprintln(stderr, "dcheck: -record needs -trials 1 and is incompatible with -refine, -dot and -replay")
		return 2
	}
	if *replay && (*refine || *lint || *costly || *dot || *verbose) {
		fmt.Fprintln(stderr, "dcheck: -replay is incompatible with -refine, -lint, -cost, -dot and -v")
		return 2
	}
	if *cacheDir != "" && !*replay {
		fmt.Fprintln(stderr, "dcheck: -cache-dir requires -replay")
		return 2
	}
	engine, err := icd.ParseEngine(*icdEngine)
	if err != nil {
		fmt.Fprintf(stderr, "dcheck: %v\n", err)
		return 2
	}
	err = runDCheck(ctx, dcheckOpts{
		path: fs.Arg(0), analysis: *analysisName, seed: *seed, trials: *trials,
		sticky: *sticky, refine: *refine, lintOnly: *lint, costly: *costly,
		verbose: *verbose, dot: *dot,
		trialTimeout: *trialTimeout, maxSteps: *maxSteps, retries: *retries,
		record: *record, replay: *replay, cacheDir: *cacheDir, pcdWorkers: *pcdWorkers,
		icdEngine: engine,
		statsJSON: *statsJSON, metricsAddr: *metricsAddr,
		traceOut: *traceOut, logLevel: *logLevel,
	}, stdout, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "dcheck:", err)
		return 1
	}
	return 0
}

type dcheckOpts struct {
	path                                   string
	analysis                               string
	seed                                   int64
	trials                                 int
	sticky                                 float64
	refine, lintOnly, costly, verbose, dot bool
	trialTimeout                           time.Duration
	maxSteps                               uint64
	retries                                int
	record                                 string
	replay                                 bool
	cacheDir                               string
	pcdWorkers                             int
	icdEngine                              icd.Engine
	statsJSON                              bool
	metricsAddr                            string
	traceOut                               string
	logLevel                               string
}

func runDCheck(ctx context.Context, o dcheckOpts, stdout, stderr io.Writer) error {
	// One registry for the whole invocation: every trial (and the replay
	// path) accumulates into it, -metrics-addr serves it live, and
	// -stats-json prints its deterministic snapshot at the end.
	reg := telemetry.NewRegistry()
	logger := newCLILogger(stderr, o.logLevel)
	if o.metricsAddr != "" {
		stop, err := serveMetrics(o.metricsAddr, reg, logger)
		if err != nil {
			return err
		}
		defer stop()
	}
	// -trace-out puts the whole invocation — every trial, or the replay —
	// under one trace rooted here; the export happens on the way out.
	if o.traceOut != "" {
		tr := obs.NewTrace(obs.TraceConfig{Name: "dcheck"})
		ctx = obs.ContextWithSpan(ctx, tr.Root())
		defer writeTraceOut(logger, tr, o.traceOut)
	}
	if o.replay {
		return runDCheckReplay(ctx, o, reg, stdout)
	}
	src, err := os.ReadFile(o.path)
	if err != nil {
		return err
	}
	file, err := lang.Parse(string(src))
	if err != nil {
		return fmt.Errorf("%s:%v", o.path, err)
	}
	if warns := lang.Lint(file); len(warns) > 0 {
		for _, w := range warns {
			fmt.Fprintf(stderr, "%s:%s\n", o.path, w)
		}
		if o.lintOnly {
			return fmt.Errorf("%d lint warning(s)", len(warns))
		}
	} else if o.lintOnly {
		fmt.Fprintln(stdout, "lint: clean")
		return nil
	}
	unit, err := lang.Lower(file)
	if err != nil {
		return fmt.Errorf("%s:%v", o.path, err)
	}
	prog := unit.Prog
	analysis, err := core.ParseAnalysis(o.analysis)
	if err != nil {
		return err
	}

	sp := spec.New(prog)
	atomicSet := make(map[string]bool, len(unit.AtomicMethods))
	for _, n := range unit.AtomicMethods {
		atomicSet[n] = true
	}
	for _, m := range prog.Methods {
		if !atomicSet[m.Name] {
			sp.Exclude(m.ID)
		}
	}
	fmt.Fprintf(stdout, "program %s: %d methods (%d atomic), %d threads, %d objects\n",
		prog.Name, len(prog.Methods), sp.Size(), len(prog.Threads), prog.NumObjects)

	if o.refine {
		return runRefine(ctx, prog, sp, o, stdout)
	}

	if o.record != "" {
		res, err := recordTrace(ctx, prog, sp, o.record, recordOpts{
			analysis: analysis, seed: o.seed, sticky: o.sticky,
			maxSteps: o.maxSteps, source: o.path,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "recorded %s: %d events (%s)\n",
			o.record, res.VMStats.Events().Total(), res.VMStats.Events())
		printViolationSummary(stdout, prog, res)
		return nil
	}

	budget := supervise.Budget{TrialTimeout: o.trialTimeout, Retries: o.retries, Telemetry: reg}
	blamed := make(map[string]bool)
	totalViolations := 0
	completed := 0
	var lastErr error
	for t := 0; t < o.trials; t++ {
		s := o.seed + int64(t)
		var meter *cost.Meter
		var baseTotal cost.Units
		if o.costly {
			base := cost.NewMeter(cost.Default())
			if _, err := core.RunContext(ctx, prog, core.Config{
				Analysis: core.Baseline, Sched: vm.NewSticky(s, o.sticky),
				Atomic: sp.Atomic, Meter: base, MaxSteps: o.maxSteps,
			}); err != nil {
				return err
			}
			baseTotal = base.Total()
			meter = cost.NewMeter(cost.Default())
		}
		out, err := supervise.Trial(ctx, budget, o.analysis, s,
			func(ctx context.Context, seed int64) (*core.Result, error) {
				return core.RunContext(ctx, prog, core.Config{
					Analysis:   analysis,
					Sched:      vm.NewSticky(seed, o.sticky),
					Atomic:     sp.Atomic,
					Meter:      meter,
					MaxSteps:   o.maxSteps,
					Telemetry:  reg,
					PCDWorkers: o.pcdWorkers,
					ICDEngine:  o.icdEngine,
				})
			})
		if err != nil {
			return err // canceled
		}
		for _, f := range out.Failures {
			logger.Warn("trial failure", "seed", out.Seed, "failure", f.String())
		}
		if !out.OK {
			if f := out.LastFailure(); f != nil {
				lastErr = f.Err
			}
			continue
		}
		completed++
		res := out.Value
		totalViolations += len(res.Violations)
		for m := range res.BlamedMethods {
			blamed[prog.MethodName(m)] = true
		}
		if o.dot && len(res.Violations) > 0 {
			fmt.Fprint(stdout, lang.ViolationDot(unit, res.Violations[0]))
			return nil
		}
		if o.verbose {
			for _, v := range res.Violations {
				fmt.Fprintf(stdout, "--- seed %d ---\n%s", out.Seed, lang.ExplainViolation(unit, v))
			}
		}
		if o.costly {
			fmt.Fprintf(stdout, "  seed %d: normalized execution time %.2fx (GC %.0f%%)\n",
				out.Seed, res.Cost.Normalized(baseTotal), 100*res.Cost.GCFraction())
		}
	}
	if o.trials > 0 && completed == 0 {
		return fmt.Errorf("all %d trials failed: %w", o.trials, lastErr)
	}
	if completed < o.trials {
		fmt.Fprintf(stdout, "%d of %d trials completed\n", completed, o.trials)
	}
	fmt.Fprintf(stdout, "%d dynamic violations across %d trial(s)\n", totalViolations, completed)
	if len(blamed) > 0 {
		names := make([]string, 0, len(blamed))
		for n := range blamed {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(stdout, "blamed methods: %v\n", names)
	} else {
		fmt.Fprintln(stdout, "no atomicity violations detected")
	}
	if o.statsJSON {
		stdout.Write(reg.Snapshot().Deterministic().JSON())
	}
	return nil
}

// printViolationSummary prints one result's violation count and blamed
// methods in dcheck's usual format (core.ViolationSummary, shared with the
// dcserve service).
func printViolationSummary(stdout io.Writer, prog *vm.Program, res *core.Result) {
	io.WriteString(stdout, core.ViolationSummary(prog, res))
}

// runDCheckReplay re-checks a recorded trace: the positional argument is a
// .dct file and the analysis consumes its event stream with no VM. With
// -cache-dir, results are read from and written to a content-addressed
// store; a hit renders the identical report without running the check.
func runDCheckReplay(ctx context.Context, o dcheckOpts, reg *telemetry.Registry, stdout io.Writer) error {
	analysis, err := core.ParseAnalysis(o.analysis)
	if err != nil {
		return err
	}
	if o.cacheDir == "" {
		d, err := trace.ReadFile(o.path)
		if err != nil {
			return err
		}
		res, err := core.RunTrace(ctx, d, core.Config{Analysis: analysis, Telemetry: reg, PCDWorkers: o.pcdWorkers, ICDEngine: o.icdEngine})
		if err != nil {
			return err
		}
		io.WriteString(stdout, core.ReplayReport(o.path, d, res))
		if o.statsJSON {
			stdout.Write(res.Telemetry.Deterministic().JSON())
		}
		return nil
	}

	// Cached replay is byte-addressed: the file is read once, the header
	// plus a raw-byte digest form the key, and the full decode only happens
	// on a miss. The one-shot store skips the memory tier (this process
	// serves no second request) and keeps its own counters out of the run's
	// telemetry snapshot.
	raw, err := os.ReadFile(o.path)
	if err != nil {
		return err
	}
	hdr, rest, err := trace.PeekHeader(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("%s: %w", o.path, err)
	}
	cache, err := store.Open(store.Config{Dir: o.cacheDir})
	if err != nil {
		return err
	}
	key := store.TraceKey(hdr, store.BodyDigest(raw), o.analysis)
	// -stats-json reports the metrics of an actual run; a cache hit has
	// none, so the lookup is skipped and the run's result is still stored.
	if !o.statsJSON {
		if e, ok := cache.Get(key); ok {
			io.WriteString(stdout, core.ReplayReportFrom(
				o.path, e.Program, e.Key.Seed, e.Events, e.Key.Source, e.Violations, e.Blamed))
			return nil
		}
	}
	d, err := trace.Read(rest)
	if err != nil {
		return fmt.Errorf("%s: %w", o.path, err)
	}
	res, err := core.RunTrace(ctx, d, core.Config{Analysis: analysis, Telemetry: reg, PCDWorkers: o.pcdWorkers, ICDEngine: o.icdEngine})
	if err != nil {
		return err
	}
	if len(res.PCDQuarantined) == 0 {
		if err := cache.Put(key, &store.Entry{
			Program:    d.Header.Program.Name,
			Events:     d.Counts.Total(),
			Violations: len(res.Violations),
			Blamed:     res.BlamedMethodNames(d.Header.Program),
		}); err != nil {
			return err
		}
	}
	io.WriteString(stdout, core.ReplayReport(o.path, d, res))
	if o.statsJSON {
		stdout.Write(res.Telemetry.Deterministic().JSON())
	}
	return nil
}

func runRefine(ctx context.Context, prog *vm.Program, initial *spec.Spec, o dcheckOpts, stdout io.Writer) error {
	check := func(sp *spec.Spec, trial int) ([]vm.MethodID, error) {
		res, err := core.RunContext(ctx, prog, core.Config{
			Analysis: core.DCSingle,
			Sched:    vm.NewSticky(int64(trial), o.sticky),
			Atomic:   sp.Atomic,
			MaxSteps: o.maxSteps,
		})
		if err != nil {
			return nil, err
		}
		var out []vm.MethodID
		for m := range res.BlamedMethods {
			out = append(out, m)
		}
		return out, nil
	}
	res, err := spec.Refine(initial, check, spec.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "refinement: %d trials, %d steps, %d methods blamed\n",
		res.Trials, res.Steps, len(res.Blamed))
	for _, m := range res.ExclusionOrder {
		fmt.Fprintf(stdout, "  removed from specification: %s\n", prog.MethodName(m))
	}
	fmt.Fprintf(stdout, "final specification: %d atomic methods\n", res.Final.Size())
	return nil
}
